#ifndef SQP_INCLUDE_SQP_SLIM_H_
#define SQP_INCLUDE_SQP_SLIM_H_

/* The slim embedded predictor: the compact serving walk as a
 * dependency-free static library (libsqp_slim.a) behind a stable C ABI.
 *
 * This is the form factor an embedded caller links — a browser omnibox,
 * a mobile keyboard, or a JNI/Python/Rust binding. The library contains
 * only the serve path: blob parsing + validation, the MVMM mixture walk,
 * and top-N ranking. No threads, no mmap, no exceptions/RTTI, no
 * iostreams, and no C++ runtime dependency — it links from a plain C99
 * translation unit against libm alone, which CI asserts with nm.
 *
 * Results are bit-identical to the full engine: both sit on the same
 * core/serving_walk layer, and tests/slim/ pins slim-vs-engine top-10
 * equality (score bits included) on the golden snapshot blob.
 *
 * ## Contract
 *
 * - `blob` is a compact snapshot produced by the engine's SaveCompact
 *   (the same bytes the serving tiers mmap). The CALLER OWNS the buffer:
 *   it must stay alive and unmodified for the predictor's lifetime; the
 *   predictor reads the model arrays in place and never copies them.
 * - The buffer must be at least 8-byte aligned (any malloc'd or mmap'ed
 *   buffer is).
 * - All allocation happens inside sqp_slim_create_from_buffer (a few
 *   malloc calls for derived tables and request scratch, sized from the
 *   model). sqp_slim_recommend never allocates.
 * - A predictor serves ONE request at a time (the request scratch lives
 *   in the handle). For concurrency, create one predictor per thread —
 *   they can share the same blob buffer.
 * - Status codes are the repo-wide pinned taxonomy (sqp/status.h):
 *   corrupt or truncated blobs yield SQP_STATUS_INVALID_ARGUMENT, a
 *   big-endian host SQP_STATUS_FAILED_PRECONDITION, an uncovered context
 *   SQP_STATUS_NOT_FOUND, allocation failure
 *   SQP_STATUS_RESOURCE_EXHAUSTED.
 *
 * ## ABI stability rules
 *
 * - Functions are only added, never removed or re-signatured.
 * - sqp_slim_stats_t may GROW at the end; the struct_size handshake
 *   (caller sets it before the call) keeps old binaries safe.
 * - Status code values are pinned forever (see sqp/status.h).
 */

#include <stddef.h>
#include <stdint.h>

#include "sqp/status.h"

#if defined(__GNUC__) || defined(__clang__)
#define SQP_SLIM_API __attribute__((visibility("default")))
#else
#define SQP_SLIM_API
#endif

#ifdef __cplusplus
extern "C" {
#endif

/* Opaque predictor handle. */
typedef struct sqp_slim_predictor sqp_slim_predictor;

/* Model and footprint counters, filled by sqp_slim_stats. Callers set
 * struct_size = sizeof(sqp_slim_stats_t) before the call; the library
 * fills min(caller size, its size) bytes, so the struct can grow. */
typedef struct sqp_slim_stats_t {
  size_t struct_size;        /* in: sizeof(sqp_slim_stats_t) */
  uint64_t snapshot_version; /* writer-assigned version of the blob */
  uint64_t num_nodes;        /* PST nodes in the compact model */
  uint64_t num_entries;      /* next-query entries (candidates) */
  uint64_t num_edges;        /* child edges */
  uint32_t num_components;   /* mixture components */
  uint32_t dense_merge;      /* 1 = dense accumulation, 0 = sort-merge */
  uint64_t resident_bytes;   /* bytes the predictor allocated at create
                              * (excludes the caller-owned blob) */
} sqp_slim_stats_t;

/* Creates a predictor over a caller-owned snapshot blob. Parses and
 * fully validates the buffer (header, checksums, structural invariants)
 * before the first read of model data; a malformed buffer of any kind
 * yields SQP_STATUS_INVALID_ARGUMENT and *out_predictor untouched.
 * On SQP_STATUS_OK the caller must eventually sqp_slim_destroy the
 * handle, and must keep `blob` alive and unmodified until then. */
SQP_SLIM_API sqp_status_t sqp_slim_create_from_buffer(
    const void* blob, size_t blob_size, sqp_slim_predictor** out_predictor);

/* Serves one recommendation for `context` (least-recent first, the same
 * query-id space the blob was built over). Writes up to `top_n` results
 * ranked score-descending (query-id ascending on ties) into the
 * caller-owned arrays `out_queries` / `out_scores` (capacity `top_n`
 * each; both required when top_n > 0) and the
 * number written into *out_count. *out_matched_len (optional, may be
 * NULL) receives the matched suffix depth.
 *
 * Returns SQP_STATUS_OK when the model covers the context (even with
 * zero results for top_n == 0), SQP_STATUS_NOT_FOUND when it does not
 * (empty context included; *out_count is 0), and
 * SQP_STATUS_INVALID_ARGUMENT on NULL-pointer misuse. Never allocates. */
SQP_SLIM_API sqp_status_t sqp_slim_recommend(
    sqp_slim_predictor* predictor, const uint32_t* context,
    size_t context_len, size_t top_n, uint32_t* out_queries,
    double* out_scores, size_t* out_count, size_t* out_matched_len);

/* Fills *out_stats (see the struct_size handshake above). */
SQP_SLIM_API sqp_status_t sqp_slim_stats(const sqp_slim_predictor* predictor,
                                         sqp_slim_stats_t* out_stats);

/* Releases everything the predictor allocated. NULL is a no-op. The
 * caller's blob buffer is untouched (the library never owned it). */
SQP_SLIM_API void sqp_slim_destroy(sqp_slim_predictor* predictor);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* SQP_INCLUDE_SQP_SLIM_H_ */
