#ifndef SQP_INCLUDE_SQP_STATUS_H_
#define SQP_INCLUDE_SQP_STATUS_H_

/* The canonical status-code taxonomy for the whole repo, pinned once.
 *
 * Three consumers share this table and must never drift:
 *   - util/status.h   (C++ `StatusCode` — enumerator values are pinned
 *                      to these constants by static_assert)
 *   - net/wire_format (the wire protocol's u8 status codes are exactly
 *                      these values; golden frames in tests/data pin them)
 *   - this C header   (the slim embedded predictor ABI, include/sqp/slim.h)
 *
 * The numeric values are a compatibility contract: they are persisted in
 * golden wire frames and compiled into embedded callers. Append new codes
 * at the end with the next value; never renumber or remove entries.
 *
 * This header is pure C89-compatible declarations (enum + one function),
 * usable from C, C++, and any FFI layer that can read a C header.
 */

#ifdef __cplusplus
extern "C" {
#endif

/* X-macro master list: X(enumerator, value, display-name). */
#define SQP_STATUS_CODE_LIST(X)                         \
  X(SQP_STATUS_OK, 0, "OK")                             \
  X(SQP_STATUS_INVALID_ARGUMENT, 1, "InvalidArgument")  \
  X(SQP_STATUS_NOT_FOUND, 2, "NotFound")                \
  X(SQP_STATUS_IO_ERROR, 3, "IOError")                  \
  X(SQP_STATUS_FAILED_PRECONDITION, 4, "FailedPrecondition") \
  X(SQP_STATUS_OUT_OF_RANGE, 5, "OutOfRange")           \
  X(SQP_STATUS_INTERNAL, 6, "Internal")                 \
  X(SQP_STATUS_RESOURCE_EXHAUSTED, 7, "ResourceExhausted") \
  X(SQP_STATUS_DEADLINE_EXCEEDED, 8, "DeadlineExceeded") \
  X(SQP_STATUS_UNAVAILABLE, 9, "Unavailable")           \
  X(SQP_STATUS_DATA_LOSS, 10, "DataLoss")

typedef enum sqp_status_t {
#define SQP_STATUS_DEFINE_ENUM(name, value, str) name = value,
  SQP_STATUS_CODE_LIST(SQP_STATUS_DEFINE_ENUM)
#undef SQP_STATUS_DEFINE_ENUM
} sqp_status_t;

/* Number of codes in the table (== last value + 1; values are dense). */
#define SQP_STATUS_CODE_COUNT 11

/* Stable display name for a status code ("OK", "InvalidArgument", ...).
 * Returns "Unknown" for values outside the table. Never NULL.
 * Default visibility explicitly: the slim library builds with
 * -fvisibility=hidden and this is part of its exported C ABI. */
#if defined(__GNUC__) || defined(__clang__)
__attribute__((visibility("default")))
#endif
const char* sqp_status_name(sqp_status_t status);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* SQP_INCLUDE_SQP_STATUS_H_ */
