#include "core/click_cluster_model.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

/// A small click world: queries a0/a1 click the same URLs (one cluster),
/// b0/b1 share another URL, c clicks something alone.
class ClickClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a0_ = dict_.Intern("alpha query");
    a1_ = dict_.Intern("alpha query two");
    b0_ = dict_.Intern("beta query");
    b1_ = dict_.Intern("beta query two");
    c_ = dict_.Intern("gamma query");
    AddRecord("alpha query", {"www.a.example.com", "www.a2.example.com"});
    AddRecord("alpha query", {"www.a.example.com"});
    AddRecord("alpha query two", {"www.a.example.com", "www.a2.example.com"});
    AddRecord("beta query", {"www.b.example.com", "www.b2.example.com"});
    AddRecord("beta query two", {"www.b.example.com", "www.b2.example.com"});
    AddRecord("gamma query", {"www.c.example.com", "www.c2.example.com"});
    sessions_ = {{{a0_, a1_}, 2}};  // models also need sessions (unused here)
    data_.sessions = &sessions_;
    data_.vocabulary_size = dict_.size();
    data_.records = &records_;
    data_.dictionary = &dict_;
  }

  void AddRecord(const std::string& query,
                 const std::vector<std::string>& urls) {
    RawLogRecord record;
    record.machine_id = 1;
    record.timestamp_ms = static_cast<int64_t>(records_.size()) * 1000;
    record.query = query;
    for (const std::string& url : urls) {
      record.clicks.push_back(
          UrlClick{record.timestamp_ms + 500, url});
    }
    records_.push_back(std::move(record));
  }

  QueryDictionary dict_;
  QueryId a0_, a1_, b0_, b1_, c_;
  std::vector<RawLogRecord> records_;
  std::vector<AggregatedSession> sessions_;
  TrainingData data_;
};

TEST_F(ClickClusterTest, RequiresClickData) {
  ClickClusterModel model;
  TrainingData no_records = data_;
  no_records.records = nullptr;
  EXPECT_EQ(model.Train(no_records).code(), StatusCode::kInvalidArgument);
  TrainingData no_dictionary = data_;
  no_dictionary.dictionary = nullptr;
  EXPECT_EQ(model.Train(no_dictionary).code(), StatusCode::kInvalidArgument);
}

TEST_F(ClickClusterTest, ClustersQueriesSharingUrls) {
  ClickClusterModel model;
  ASSERT_TRUE(model.Train(data_).ok());
  EXPECT_EQ(model.num_clusters(), 2u);
  EXPECT_EQ(model.ClusterOf(a0_), model.ClusterOf(a1_));
  EXPECT_EQ(model.ClusterOf(b0_), model.ClusterOf(b1_));
  EXPECT_NE(model.ClusterOf(a0_), model.ClusterOf(b0_));
  EXPECT_EQ(model.ClusterOf(c_), -1);  // clicks distinct URLs only
}

TEST_F(ClickClusterTest, RecommendsClusterSiblings) {
  ClickClusterModel model;
  ASSERT_TRUE(model.Train(data_).ok());
  const Recommendation rec = model.Recommend(std::vector<QueryId>{a0_}, 5);
  ASSERT_TRUE(rec.covered);
  ASSERT_EQ(rec.queries.size(), 1u);
  EXPECT_EQ(rec.queries[0].query, a1_);
  EXPECT_DOUBLE_EQ(rec.queries[0].score, 1.0);
}

TEST_F(ClickClusterTest, NeverRecommendsTheQueryItself) {
  ClickClusterModel model;
  ASSERT_TRUE(model.Train(data_).ok());
  const Recommendation rec = model.Recommend(std::vector<QueryId>{b0_}, 5);
  for (const ScoredQuery& sq : rec.queries) {
    EXPECT_NE(sq.query, b0_);
  }
}

TEST_F(ClickClusterTest, UnclusteredQueryUncovered) {
  ClickClusterModel model;
  ASSERT_TRUE(model.Train(data_).ok());
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{c_}));
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{999}));
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{}));
}

TEST_F(ClickClusterTest, JaccardThresholdSeparates) {
  // Raise the threshold: a0 clicks {a, a2} twice, a1 clicks {a, a2} once;
  // their URL sets are identical (Jaccard 1.0), so they still cluster.
  ClickClusterOptions options;
  options.min_jaccard = 0.9;
  ClickClusterModel model(options);
  ASSERT_TRUE(model.Train(data_).ok());
  EXPECT_EQ(model.ClusterOf(a0_), model.ClusterOf(a1_));
}

TEST_F(ClickClusterTest, MinClicksFiltersRareQueries) {
  ClickClusterOptions options;
  options.min_clicks = 4;  // only a0 has 3 clicks; everyone below 4
  ClickClusterModel model(options);
  ASSERT_TRUE(model.Train(data_).ok());
  EXPECT_EQ(model.num_clusters(), 0u);
}

TEST_F(ClickClusterTest, ConditionalProbNormalized) {
  ClickClusterModel model;
  ASSERT_TRUE(model.Train(data_).ok());
  double total = 0.0;
  for (QueryId q = 0; q < dict_.size(); ++q) {
    total += model.ConditionalProb(std::vector<QueryId>{a0_}, q);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(ClickClusterTest, StatsAccounting) {
  ClickClusterModel model;
  ASSERT_TRUE(model.Train(data_).ok());
  const ModelStats stats = model.Stats();
  EXPECT_EQ(stats.name, "Click-cluster");
  EXPECT_EQ(stats.num_states, 2u);
  EXPECT_EQ(stats.num_entries, 4u);
}

}  // namespace
}  // namespace sqp
