#include "core/vmm_model.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

constexpr QueryId kQ0 = 0;
constexpr QueryId kQ1 = 1;

std::vector<AggregatedSession> TableIISessions() {
  return {
      {{kQ1, kQ0, kQ0}, 3}, {{kQ1, kQ0, kQ1}, 7}, {{kQ0, kQ0}, 78},
      {{kQ1, kQ0}, 5},      {{kQ0, kQ1, kQ0}, 1}, {{kQ0, kQ1, kQ1}, 1},
      {{kQ1, kQ1}, 3},      {{kQ0}, 10},
  };
}

TrainingData MakeData(const std::vector<AggregatedSession>* sessions,
                      size_t vocab = 2) {
  TrainingData data;
  data.sessions = sessions;
  data.vocabulary_size = vocab;
  return data;
}

TEST(VmmModelTest, NamesMatchPaperConvention) {
  EXPECT_EQ(VmmModel(VmmOptions{.epsilon = 0.05}).Name(), "VMM (0.05)");
  EXPECT_EQ(VmmModel(VmmOptions{.epsilon = 0.0}).Name(), "VMM (0.0)");
  EXPECT_EQ(VmmModel(VmmOptions{.epsilon = 0.1}).Name(), "VMM (0.1)");
  EXPECT_EQ(VmmModel(VmmOptions{.epsilon = 0.1, .max_depth = 2}).Name(),
            "2-bounded VMM (0.1)");
}

TEST(VmmModelTest, PaperExampleRecommendations) {
  // Paper Section IV-B.2: after submitting q0, recommend q0; after
  // [q1, q0], recommend q1.
  const auto sessions = TableIISessions();
  VmmModel model(VmmOptions{.epsilon = 0.1});
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_EQ(model.Recommend(std::vector<QueryId>{kQ0}, 1).queries[0].query,
            kQ0);
  EXPECT_EQ(
      model.Recommend(std::vector<QueryId>{kQ1, kQ0}, 1).queries[0].query,
      kQ1);
}

TEST(VmmModelTest, PartialMatchUsesLongestSuffixState) {
  const auto sessions = TableIISessions();
  VmmModel model(VmmOptions{.epsilon = 0.1});
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  // [q1, q1] is not a state; prediction falls back to state q1.
  const VmmMatch match = model.Match(std::vector<QueryId>{kQ1, kQ1});
  EXPECT_EQ(match.matched_length, 1u);
  EXPECT_EQ(match.state->context, (std::vector<QueryId>{kQ1}));
  EXPECT_LT(match.escape_weight, 1.0);
  EXPECT_GT(match.escape_weight, 0.0);
}

TEST(VmmModelTest, FullMatchHasNoEscapePenalty) {
  const auto sessions = TableIISessions();
  VmmModel model(VmmOptions{.epsilon = 0.1});
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const VmmMatch match = model.Match(std::vector<QueryId>{kQ1, kQ0});
  EXPECT_EQ(match.matched_length, 2u);
  EXPECT_DOUBLE_EQ(match.escape_weight, 1.0);
}

TEST(VmmModelTest, EscapeWeightShrinksWithDisparity) {
  const auto sessions = TableIISessions();
  VmmModel model(VmmOptions{.epsilon = 0.1});
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const double one_drop =
      model.Match(std::vector<QueryId>{kQ1, kQ1}).escape_weight;
  const double two_drops =
      model.Match(std::vector<QueryId>{kQ1, kQ1, kQ1}).escape_weight;
  EXPECT_LT(two_drops, one_drop);
}

TEST(VmmModelTest, CoverageEqualsAdjacencySemantics) {
  const auto sessions = TableIISessions();
  VmmModel model(VmmOptions{.epsilon = 0.05});
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_TRUE(model.Covers(std::vector<QueryId>{kQ0}));
  EXPECT_TRUE(model.Covers(std::vector<QueryId>{kQ1}));
  // Unknown last query: uncovered even though prefix is known.
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{kQ0, 57}));
  // Known last query with unknown prefix: covered (partial match).
  EXPECT_TRUE(model.Covers(std::vector<QueryId>{57, kQ0}));
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{}));
}

TEST(VmmModelTest, RecommendUncoveredIsEmpty) {
  const auto sessions = TableIISessions();
  VmmModel model(VmmOptions{});
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const Recommendation rec = model.Recommend(std::vector<QueryId>{57}, 5);
  EXPECT_FALSE(rec.covered);
  EXPECT_TRUE(rec.queries.empty());
}

TEST(VmmModelTest, SequenceProbMatchesPaperChainAtFullMatch) {
  const auto sessions = TableIISessions();
  VmmModel model(VmmOptions{.epsilon = 0.1});
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  // For the Fig. 3 test sequence every prefix's longest suffix matches a
  // state only partially; with smoothing the probability is close to (but
  // not exactly) the unsmoothed chain product 0.008960.
  const std::vector<QueryId> sequence{kQ0, kQ1, kQ0, kQ1, kQ1, kQ0};
  const double p = model.SequenceProb(sequence);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 0.009);
}

TEST(VmmModelTest, SequenceProbFirstQueryIsFree) {
  const auto sessions = TableIISessions();
  VmmModel model(VmmOptions{.epsilon = 0.1});
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_DOUBLE_EQ(model.SequenceProb(std::vector<QueryId>{kQ0}), 1.0);
  EXPECT_DOUBLE_EQ(model.SequenceProb(std::vector<QueryId>{}), 1.0);
}

TEST(VmmModelTest, ConditionalProbNormalized) {
  const auto sessions = TableIISessions();
  VmmModel model(VmmOptions{.epsilon = 0.05});
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  for (const std::vector<QueryId>& context :
       {std::vector<QueryId>{kQ0}, std::vector<QueryId>{kQ1, kQ0},
        std::vector<QueryId>{kQ1, kQ1}}) {
    double total = 0.0;
    for (QueryId q = 0; q < 2; ++q) {
      total += model.ConditionalProb(context, q);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(VmmModelTest, SharedIndexMatchesLocalIndex) {
  const auto sessions = TableIISessions();
  ContextIndex shared;
  shared.Build(sessions, ContextIndex::Mode::kSubstring);

  VmmModel with_shared(VmmOptions{.epsilon = 0.05});
  TrainingData data = MakeData(&sessions);
  data.substring_index = &shared;
  ASSERT_TRUE(with_shared.Train(data).ok());

  VmmModel with_local(VmmOptions{.epsilon = 0.05});
  ASSERT_TRUE(with_local.Train(MakeData(&sessions)).ok());

  EXPECT_EQ(with_shared.pst().size(), with_local.pst().size());
  const auto rec_shared =
      with_shared.Recommend(std::vector<QueryId>{kQ1, kQ0}, 2);
  const auto rec_local =
      with_local.Recommend(std::vector<QueryId>{kQ1, kQ0}, 2);
  ASSERT_EQ(rec_shared.queries.size(), rec_local.queries.size());
  for (size_t i = 0; i < rec_shared.queries.size(); ++i) {
    EXPECT_EQ(rec_shared.queries[i].query, rec_local.queries[i].query);
    EXPECT_DOUBLE_EQ(rec_shared.queries[i].score, rec_local.queries[i].score);
  }
}

TEST(VmmModelTest, IncompatibleSharedIndexIgnored) {
  const auto sessions = TableIISessions();
  ContextIndex shallow;
  shallow.Build(sessions, ContextIndex::Mode::kSubstring,
                /*max_context_length=*/1);
  VmmModel model(VmmOptions{.epsilon = 0.0, .max_depth = 2});
  TrainingData data = MakeData(&sessions);
  data.substring_index = &shallow;  // too shallow: must be ignored
  ASSERT_TRUE(model.Train(data).ok());
  EXPECT_NE(model.pst().FindNode(std::vector<QueryId>{kQ1, kQ0}), nullptr);
}

TEST(VmmModelTest, DepthBoundLimitsStates) {
  const auto sessions = TableIISessions();
  VmmModel bounded(VmmOptions{.epsilon = 0.0, .max_depth = 1});
  ASSERT_TRUE(bounded.Train(MakeData(&sessions)).ok());
  for (const Pst::Node& node : bounded.pst().nodes()) {
    EXPECT_LE(node.context.size(), 1u);
  }
}

TEST(VmmModelTest, EpsilonExtremesMatchFig4) {
  const auto sessions = TableIISessions();
  VmmModel infinite(VmmOptions{.epsilon = 0.0});
  VmmModel adjacency_like(VmmOptions{.epsilon = 1e9});
  ASSERT_TRUE(infinite.Train(MakeData(&sessions)).ok());
  ASSERT_TRUE(adjacency_like.Train(MakeData(&sessions)).ok());
  EXPECT_GT(infinite.pst().size(), adjacency_like.pst().size());
  for (const Pst::Node& node : adjacency_like.pst().nodes()) {
    EXPECT_LE(node.context.size(), 1u);
  }
}

TEST(VmmModelTest, StatsReflectPstSize) {
  const auto sessions = TableIISessions();
  VmmModel model(VmmOptions{.epsilon = 0.0});
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const ModelStats stats = model.Stats();
  EXPECT_EQ(stats.name, "VMM (0.0)");
  EXPECT_EQ(stats.num_states, model.pst().size());
  EXPECT_GT(stats.memory_bytes, 0u);
}

}  // namespace
}  // namespace sqp
