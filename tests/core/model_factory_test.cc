#include "core/model_factory.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

std::vector<AggregatedSession> SmallCorpus() {
  return {{{0, 1, 2}, 6}, {{1, 2}, 7}, {{0, 2, 1}, 6}, {{3}, 2}};
}

TEST(ModelKindNameTest, AllKindsNamed) {
  EXPECT_EQ(ModelKindName(ModelKind::kAdjacency), "Adjacency");
  EXPECT_EQ(ModelKindName(ModelKind::kCooccurrence), "Co-occurrence");
  EXPECT_EQ(ModelKindName(ModelKind::kNgram), "N-gram");
  EXPECT_EQ(ModelKindName(ModelKind::kVmm), "VMM");
  EXPECT_EQ(ModelKindName(ModelKind::kMvmm), "MVMM");
}

TEST(CreateModelTest, CreatesEveryKind) {
  for (ModelKind kind :
       {ModelKind::kAdjacency, ModelKind::kCooccurrence, ModelKind::kNgram,
        ModelKind::kVmm, ModelKind::kMvmm}) {
    ModelConfig config;
    config.kind = kind;
    auto model = CreateModel(config);
    ASSERT_NE(model, nullptr) << ModelKindName(kind);
  }
}

TEST(CreateModelTest, ConfigIsForwarded) {
  ModelConfig config;
  config.kind = ModelKind::kVmm;
  config.vmm.epsilon = 0.07;
  config.vmm.max_depth = 3;
  auto model = CreateModel(config);
  EXPECT_EQ(model->Name(), "3-bounded VMM (0.07)");
}

TEST(CreatePaperSuiteTest, SevenModelsWithPaperNames) {
  const auto suite = CreatePaperSuite();
  ASSERT_EQ(suite.size(), 7u);
  EXPECT_EQ(suite[0]->Name(), "Adjacency");
  EXPECT_EQ(suite[1]->Name(), "Co-occurrence");
  EXPECT_EQ(suite[2]->Name(), "N-gram");
  EXPECT_EQ(suite[3]->Name(), "VMM (0.0)");
  EXPECT_EQ(suite[4]->Name(), "VMM (0.05)");
  EXPECT_EQ(suite[5]->Name(), "VMM (0.1)");
  EXPECT_EQ(suite[6]->Name(), "MVMM");
}

TEST(TrainAllTest, TrainsEveryModel) {
  const auto sessions = SmallCorpus();
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = 4;
  const auto suite = CreatePaperSuite();
  ASSERT_TRUE(TrainAll(suite, data).ok());
  for (const auto& model : suite) {
    EXPECT_TRUE(model->Covers(std::vector<QueryId>{0}))
        << model->Name();
  }
}

TEST(TrainAllTest, FailsFastOnBadData) {
  const auto suite = CreatePaperSuite();
  TrainingData bad;
  EXPECT_FALSE(TrainAll(suite, bad).ok());
}

}  // namespace
}  // namespace sqp
