#include "core/pst.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sqp {
namespace {

constexpr QueryId kQ0 = 0;
constexpr QueryId kQ1 = 1;

/// The paper's Table II training data.
std::vector<AggregatedSession> TableIISessions() {
  return {
      {{kQ1, kQ0, kQ0}, 3}, {{kQ1, kQ0, kQ1}, 7}, {{kQ0, kQ0}, 78},
      {{kQ1, kQ0}, 5},      {{kQ0, kQ1, kQ0}, 1}, {{kQ0, kQ1, kQ1}, 1},
      {{kQ1, kQ1}, 3},      {{kQ0}, 10},
  };
}

ContextIndex BuildTableIIIndex() {
  ContextIndex index;
  index.Build(TableIISessions(), ContextIndex::Mode::kSubstring);
  return index;
}

double NodeProb(const Pst::Node& node, QueryId next) {
  for (const NextQueryCount& nc : node.nexts) {
    if (nc.query == next) {
      return static_cast<double>(nc.count) /
             static_cast<double>(node.total_count);
    }
  }
  return 0.0;
}

TEST(PstGrowthKlTest, PaperWorkedExampleValues) {
  const ContextIndex index = BuildTableIIIndex();
  const ContextEntry* q0 = index.Lookup(std::vector<QueryId>{kQ0});
  const ContextEntry* q1 = index.Lookup(std::vector<QueryId>{kQ1});
  const ContextEntry* q1q0 = index.Lookup(std::vector<QueryId>{kQ1, kQ0});
  const ContextEntry* q0q1 = index.Lookup(std::vector<QueryId>{kQ0, kQ1});
  ASSERT_NE(q0, nullptr);
  ASSERT_NE(q1, nullptr);
  ASSERT_NE(q1q0, nullptr);
  ASSERT_NE(q0q1, nullptr);
  // Paper Section IV-B.1: D_KL(q0||q1q0) = 0.3449, D_KL(q1||q0q1) = 0.0837.
  EXPECT_NEAR(PstGrowthKl(*q0, *q1q0), 0.3449, 0.0005);
  EXPECT_NEAR(PstGrowthKl(*q1, *q0q1), 0.0837, 0.0005);
}

TEST(PstBuildTest, PaperExampleSuffixSetAtEpsilonPointOne) {
  const ContextIndex index = BuildTableIIIndex();
  Pst pst;
  PstOptions options;
  options.epsilon = 0.1;
  ASSERT_TRUE(pst.Build(index, options).ok());
  // Paper: S = {q1q0, q0, q1} (plus the root).
  EXPECT_EQ(pst.size(), 4u);
  EXPECT_NE(pst.FindNode(std::vector<QueryId>{kQ0}), nullptr);
  EXPECT_NE(pst.FindNode(std::vector<QueryId>{kQ1}), nullptr);
  EXPECT_NE(pst.FindNode(std::vector<QueryId>{kQ1, kQ0}), nullptr);
  EXPECT_EQ(pst.FindNode(std::vector<QueryId>{kQ0, kQ1}), nullptr);
}

TEST(PstBuildTest, PaperExampleNodeProbabilities) {
  const ContextIndex index = BuildTableIIIndex();
  Pst pst;
  PstOptions options;
  options.epsilon = 0.1;
  ASSERT_TRUE(pst.Build(index, options).ok());
  // Fig. 3 node labels: q0 -> (0.9, 0.1); q1 -> (0.8, 0.2);
  // q1q0 -> (0.3, 0.7).
  const Pst::Node* q0 = pst.FindNode(std::vector<QueryId>{kQ0});
  EXPECT_NEAR(NodeProb(*q0, kQ0), 0.9, 1e-9);
  EXPECT_NEAR(NodeProb(*q0, kQ1), 0.1, 1e-9);
  const Pst::Node* q1 = pst.FindNode(std::vector<QueryId>{kQ1});
  EXPECT_NEAR(NodeProb(*q1, kQ0), 0.8, 1e-9);
  EXPECT_NEAR(NodeProb(*q1, kQ1), 0.2, 1e-9);
  const Pst::Node* q1q0 = pst.FindNode(std::vector<QueryId>{kQ1, kQ0});
  EXPECT_NEAR(NodeProb(*q1q0, kQ0), 0.3, 1e-9);
  EXPECT_NEAR(NodeProb(*q1q0, kQ1), 0.7, 1e-9);
}

TEST(PstBuildTest, PaperTestSequenceProbabilityChain) {
  // Fig. 3: P([q0,q1,q0,q1,q1,q0]) = 1 x 0.1 x 0.8 x 0.7 x 0.2 x 0.8 using
  // states e, q0, q1, q1q0, q1, q1.
  const ContextIndex index = BuildTableIIIndex();
  Pst pst;
  PstOptions options;
  options.epsilon = 0.1;
  ASSERT_TRUE(pst.Build(index, options).ok());

  const std::vector<QueryId> sequence{kQ0, kQ1, kQ0, kQ1, kQ1, kQ0};
  const std::vector<double> expected_probs{0.1, 0.8, 0.7, 0.2, 0.8};
  const std::vector<size_t> expected_matched{1, 1, 2, 1, 1};
  double product = 1.0;
  for (size_t i = 1; i < sequence.size(); ++i) {
    size_t matched = 0;
    const Pst::Node* state = pst.MatchLongestSuffix(
        std::span<const QueryId>(sequence.data(), i), &matched);
    EXPECT_EQ(matched, expected_matched[i - 1]) << "step " << i;
    const double p = NodeProb(*state, sequence[i]);
    EXPECT_NEAR(p, expected_probs[i - 1], 1e-9) << "step " << i;
    product *= p;
  }
  EXPECT_NEAR(product, 1.0 * 0.1 * 0.8 * 0.7 * 0.2 * 0.8, 1e-9);
}

TEST(PstBuildTest, EpsilonZeroKeepsAllObservedContexts) {
  const ContextIndex index = BuildTableIIIndex();
  Pst pst;
  PstOptions options;
  options.epsilon = 0.0;
  ASSERT_TRUE(pst.Build(index, options).ok());
  // All 4 observed contexts + root (paper Fig. 4: infinitely bounded VMM).
  EXPECT_EQ(pst.size(), 5u);
  EXPECT_NE(pst.FindNode(std::vector<QueryId>{kQ0, kQ1}), nullptr);
}

TEST(PstBuildTest, HugeEpsilonDegeneratesToOrderOne) {
  const ContextIndex index = BuildTableIIIndex();
  Pst pst;
  PstOptions options;
  options.epsilon = 1e9;
  ASSERT_TRUE(pst.Build(index, options).ok());
  // Only length-1 states survive (paper Fig. 4: Adjacency/2-gram model).
  EXPECT_EQ(pst.size(), 3u);
  for (const Pst::Node& node : pst.nodes()) {
    EXPECT_LE(node.context.size(), 1u);
  }
}

TEST(PstBuildTest, DepthBoundRespected) {
  const ContextIndex index = BuildTableIIIndex();
  Pst pst;
  PstOptions options;
  options.epsilon = 0.0;
  options.max_depth = 1;
  ASSERT_TRUE(pst.Build(index, options).ok());
  for (const Pst::Node& node : pst.nodes()) {
    EXPECT_LE(node.context.size(), 1u);
  }
}

TEST(PstBuildTest, MinSupportFiltersRareContexts) {
  const ContextIndex index = BuildTableIIIndex();
  Pst pst;
  PstOptions options;
  options.epsilon = 0.0;
  options.min_support = 5;
  ASSERT_TRUE(pst.Build(index, options).ok());
  // [q0,q1] has support 2 < 5 and must be filtered even at epsilon 0.
  EXPECT_EQ(pst.FindNode(std::vector<QueryId>{kQ0, kQ1}), nullptr);
  EXPECT_NE(pst.FindNode(std::vector<QueryId>{kQ1, kQ0}), nullptr);
}

TEST(PstBuildTest, SuffixClosureInvariant) {
  const ContextIndex index = BuildTableIIIndex();
  for (double epsilon : {0.0, 0.05, 0.1, 0.5}) {
    Pst pst;
    PstOptions options;
    options.epsilon = epsilon;
    ASSERT_TRUE(pst.Build(index, options).ok());
    for (const Pst::Node& node : pst.nodes()) {
      if (node.context.size() <= 1) continue;
      const std::vector<QueryId> suffix(node.context.begin() + 1,
                                        node.context.end());
      EXPECT_NE(pst.FindNode(suffix), nullptr)
          << "suffix closure violated at epsilon " << epsilon;
    }
  }
}

TEST(PstBuildTest, ParentLinksConsistent) {
  const ContextIndex index = BuildTableIIIndex();
  Pst pst;
  ASSERT_TRUE(pst.Build(index, PstOptions{.epsilon = 0.0}).ok());
  for (size_t i = 1; i < pst.nodes().size(); ++i) {
    const Pst::Node& node = pst.nodes()[i];
    ASSERT_GE(node.parent, 0);
    const Pst::Node& parent = pst.nodes()[static_cast<size_t>(node.parent)];
    EXPECT_EQ(parent.context.size() + 1, node.context.size());
    // Parent context == node context minus its oldest query.
    EXPECT_TRUE(std::equal(node.context.begin() + 1, node.context.end(),
                           parent.context.begin(), parent.context.end()));
  }
}

TEST(PstBuildTest, RootHoldsPriorOverAllQueryOccurrences) {
  const ContextIndex index = BuildTableIIIndex();
  Pst pst;
  ASSERT_TRUE(pst.Build(index, PstOptions{}).ok());
  const Pst::Node& root = pst.root();
  EXPECT_TRUE(root.context.empty());
  EXPECT_GT(root.total_count, 0u);
  EXPECT_EQ(root.nexts.size(), 2u);  // both q0 and q1 occur
  // q0 is overwhelmingly more frequent than q1 in Table II.
  EXPECT_GT(NodeProb(root, kQ0), NodeProb(root, kQ1));
}

TEST(PstBuildTest, RejectsPrefixModeIndex) {
  ContextIndex index;
  index.Build(TableIISessions(), ContextIndex::Mode::kPrefix);
  Pst pst;
  EXPECT_EQ(pst.Build(index, PstOptions{}).code(),
            StatusCode::kInvalidArgument);
}

TEST(PstBuildTest, RejectsShallowIndex) {
  ContextIndex index;
  index.Build(TableIISessions(), ContextIndex::Mode::kSubstring,
              /*max_context_length=*/1);
  Pst pst;
  PstOptions options;
  options.max_depth = 3;
  EXPECT_EQ(pst.Build(index, options).code(), StatusCode::kInvalidArgument);
}

TEST(PstBuildTest, RejectsNegativeEpsilon) {
  const ContextIndex index = BuildTableIIIndex();
  Pst pst;
  PstOptions options;
  options.epsilon = -0.1;
  EXPECT_EQ(pst.Build(index, options).code(), StatusCode::kInvalidArgument);
}

TEST(PstMatchTest, LongestSuffixWalk) {
  const ContextIndex index = BuildTableIIIndex();
  Pst pst;
  ASSERT_TRUE(pst.Build(index, PstOptions{.epsilon = 0.1}).ok());
  // Context [q1, q1]: state q1q1 is not in the tree, so the match stops at
  // q1 (paper Section IV-C.1(b): "the state used for prediction is s = q1").
  size_t matched = 0;
  const Pst::Node* state = pst.MatchLongestSuffix(
      std::vector<QueryId>{kQ1, kQ1}, &matched);
  EXPECT_EQ(matched, 1u);
  EXPECT_EQ(state->context, (std::vector<QueryId>{kQ1}));
}

TEST(PstMatchTest, UnknownQueryMatchesRoot) {
  const ContextIndex index = BuildTableIIIndex();
  Pst pst;
  ASSERT_TRUE(pst.Build(index, PstOptions{}).ok());
  size_t matched = 99;
  const Pst::Node* state =
      pst.MatchLongestSuffix(std::vector<QueryId>{42}, &matched);
  EXPECT_EQ(matched, 0u);
  EXPECT_TRUE(state->context.empty());
}

TEST(PstMatchTest, EmptyContextMatchesRoot) {
  const ContextIndex index = BuildTableIIIndex();
  Pst pst;
  ASSERT_TRUE(pst.Build(index, PstOptions{}).ok());
  size_t matched = 99;
  const Pst::Node* state =
      pst.MatchLongestSuffix(std::vector<QueryId>{}, &matched);
  EXPECT_EQ(matched, 0u);
  EXPECT_EQ(state, &pst.root());
}

TEST(PstStatsTest, EntryAndMemoryAccounting) {
  const ContextIndex index = BuildTableIIIndex();
  Pst small;
  ASSERT_TRUE(small.Build(index, PstOptions{.epsilon = 0.1}).ok());
  Pst full;
  ASSERT_TRUE(full.Build(index, PstOptions{.epsilon = 0.0}).ok());
  EXPECT_GT(full.num_entries(), small.num_entries() - 1);
  EXPECT_GT(full.memory_bytes(), small.memory_bytes());
}

TEST(PstInitFromNodesTest, RoundTripViaNodes) {
  const ContextIndex index = BuildTableIIIndex();
  Pst original;
  ASSERT_TRUE(original.Build(index, PstOptions{.epsilon = 0.0}).ok());
  Pst restored;
  ASSERT_TRUE(
      restored.InitFromNodes(original.nodes(), original.options()).ok());
  ASSERT_EQ(restored.size(), original.size());
  size_t matched = 0;
  const Pst::Node* state = restored.MatchLongestSuffix(
      std::vector<QueryId>{kQ1, kQ0}, &matched);
  EXPECT_EQ(matched, 2u);
  EXPECT_EQ(state->total_count, 10u);
}

TEST(PstInitFromNodesTest, RejectsMalformedInputs) {
  Pst pst;
  EXPECT_FALSE(pst.InitFromNodes({}, PstOptions{}).ok());

  // Root with non-empty context.
  Pst::Node bad_root;
  bad_root.context = {kQ0};
  EXPECT_FALSE(pst.InitFromNodes({bad_root}, PstOptions{}).ok());

  // Child whose context does not extend its parent.
  Pst::Node root;
  root.parent = -1;
  Pst::Node child;
  child.parent = 0;
  child.context = {kQ0, kQ1};  // length 2 but parent is root
  EXPECT_FALSE(pst.InitFromNodes({root, child}, PstOptions{}).ok());

  // Forward parent reference.
  Pst::Node child2;
  child2.parent = 2;
  child2.context = {kQ0};
  EXPECT_FALSE(pst.InitFromNodes({root, child2}, PstOptions{}).ok());
}

}  // namespace
}  // namespace sqp
