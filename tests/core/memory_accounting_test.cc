// The shared footprint helpers must (a) encode the documented formulas and
// (b) actually be what the models report through Stats(), so full and
// compact footprints stay on one comparable scale.

#include <vector>

#include <gtest/gtest.h>

#include "core/memory_accounting.h"
#include "core/pst.h"
#include "log/context_builder.h"

namespace sqp {
namespace {

TEST(MemoryAccountingTest, PstNodeBytesFormula) {
  EXPECT_EQ(PstNodeBytes(0, 0, 0, false), sizeof(Pst::Node));
  EXPECT_EQ(PstNodeBytes(3, 5, 2, false),
            sizeof(Pst::Node) + 3 * sizeof(QueryId) +
                5 * sizeof(NextQueryCount) + 2 * sizeof(Pst::Edge));
  EXPECT_EQ(PstNodeBytes(0, 0, 0, true),
            sizeof(Pst::Node) + sizeof(Pst::ViewMask));
}

TEST(MemoryAccountingTest, ContextTableBytesFormula) {
  EXPECT_EQ(ContextTableBytes(0, 0, 0), 0u);
  EXPECT_EQ(ContextTableBytes(4, 9, 7),
            4 * (sizeof(ContextEntry) + kHashSlotOverheadBytes) +
                7 * sizeof(QueryId) + 9 * sizeof(NextQueryCount));
}

TEST(MemoryAccountingTest, FlatBytesIsSizeTimesElement) {
  std::vector<uint16_t> codes(11);
  std::vector<double> sigmas(3);
  EXPECT_EQ(FlatBytes(codes), 22u);
  EXPECT_EQ(FlatBytes(sigmas), 24u);
}

TEST(MemoryAccountingTest, PstMemoryBytesIsSumOfNodeFootprints) {
  const std::vector<AggregatedSession> sessions = {
      {{1, 2, 3}, 4}, {{2, 3, 1}, 2}, {{1, 2}, 3}, {{3, 1, 2}, 1}};
  ContextIndex index;
  index.Build(sessions, ContextIndex::Mode::kSubstring, 0);
  Pst pst;
  ASSERT_TRUE(pst.Build(index, PstOptions{.epsilon = 0.0}).ok());

  uint64_t expected = 0;
  QueryId max_root_query = 0;
  for (const Pst::Node& node : pst.nodes()) {
    expected += PstNodeBytes(node.context.size(), node.nexts.size(),
                             node.children.size(), /*with_view_mask=*/false);
  }
  for (const Pst::Edge& edge : pst.root().children) {
    max_root_query = edge.query;  // sorted ascending
  }
  // Standalone tree: no view masks, plus the dense root fan-out index.
  expected += (static_cast<uint64_t>(max_root_query) + 1) * sizeof(int32_t);
  EXPECT_EQ(pst.memory_bytes(), expected);
}

TEST(MemoryAccountingTest, SharedTreeChargesOneMaskPerNode) {
  const std::vector<AggregatedSession> sessions = {
      {{1, 2, 3}, 4}, {{2, 3, 1}, 2}, {{1, 2}, 3}};
  ContextIndex index;
  index.Build(sessions, ContextIndex::Mode::kSubstring, 0);
  const std::vector<PstOptions> views = {PstOptions{.epsilon = 0.0},
                                         PstOptions{.epsilon = 0.05}};
  Pst shared;
  ASSERT_TRUE(shared.BuildShared(index, views).ok());

  uint64_t without_masks = 0;
  for (const Pst::Node& node : shared.nodes()) {
    without_masks +=
        PstNodeBytes(node.context.size(), node.nexts.size(),
                     node.children.size(), /*with_view_mask=*/false);
  }
  const uint64_t root_index =
      (static_cast<uint64_t>(shared.root().children.back().query) + 1) *
      sizeof(int32_t);
  EXPECT_EQ(shared.memory_bytes(),
            without_masks + root_index +
                shared.size() * sizeof(Pst::ViewMask));
}

}  // namespace
}  // namespace sqp
