#include "core/serialization.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace sqp {
namespace {

std::vector<AggregatedSession> SmallCorpus() {
  return {{{0, 1, 2}, 6}, {{1, 2}, 7}, {{0, 2, 1}, 6}, {{3}, 2},
          {{2, 0, 1}, 3}};
}

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("sqp_serialization_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()) +
              ".bin"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  VmmModel TrainedModel(double epsilon = 0.0) {
    sessions_ = SmallCorpus();
    TrainingData data;
    data.sessions = &sessions_;
    data.vocabulary_size = 4;
    VmmModel model(VmmOptions{.epsilon = epsilon});
    SQP_CHECK_OK(model.Train(data));
    return model;
  }

  std::vector<AggregatedSession> sessions_;
  std::string path_;
};

TEST_F(SerializationTest, VmmRoundTripPreservesRecommendations) {
  const VmmModel original = TrainedModel();
  ASSERT_TRUE(SaveVmmModel(original, path_).ok());

  VmmModel loaded(VmmOptions{.epsilon = 0.99});  // overwritten on load
  ASSERT_TRUE(LoadVmmModel(path_, &loaded).ok());

  EXPECT_EQ(loaded.Name(), original.Name());
  EXPECT_EQ(loaded.pst().size(), original.pst().size());
  EXPECT_EQ(loaded.vocabulary_size(), original.vocabulary_size());

  const std::vector<std::vector<QueryId>> contexts = {
      {0}, {1}, {2}, {0, 1}, {2, 0, 1}, {1, 1}, {9}};
  for (const auto& context : contexts) {
    const Recommendation a = original.Recommend(context, 5);
    const Recommendation b = loaded.Recommend(context, 5);
    ASSERT_EQ(a.covered, b.covered);
    ASSERT_EQ(a.queries.size(), b.queries.size());
    for (size_t i = 0; i < a.queries.size(); ++i) {
      EXPECT_EQ(a.queries[i].query, b.queries[i].query);
      EXPECT_DOUBLE_EQ(a.queries[i].score, b.queries[i].score);
    }
    EXPECT_DOUBLE_EQ(original.ConditionalProb(context, 1),
                     loaded.ConditionalProb(context, 1));
  }
}

TEST_F(SerializationTest, VmmRoundTripPreservesOptions) {
  const VmmModel original = TrainedModel(0.05);
  ASSERT_TRUE(SaveVmmModel(original, path_).ok());
  VmmModel loaded;
  ASSERT_TRUE(LoadVmmModel(path_, &loaded).ok());
  EXPECT_DOUBLE_EQ(loaded.options().epsilon, 0.05);
  EXPECT_EQ(loaded.options().max_depth, original.options().max_depth);
}

TEST_F(SerializationTest, SaveUntrainedFails) {
  VmmModel untrained;
  EXPECT_EQ(SaveVmmModel(untrained, path_).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SerializationTest, LoadMissingFileFails) {
  VmmModel model;
  EXPECT_EQ(LoadVmmModel("/nonexistent/model.bin", &model).code(),
            StatusCode::kIOError);
}

TEST_F(SerializationTest, LoadRejectsBadMagic) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "NOTAMODELFILE.............";
  }
  VmmModel model;
  EXPECT_EQ(LoadVmmModel(path_, &model).code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializationTest, LoadRejectsTruncatedFile) {
  const VmmModel original = TrainedModel();
  ASSERT_TRUE(SaveVmmModel(original, path_).ok());
  // Truncate to half size.
  const auto full_size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full_size / 2);
  VmmModel model;
  EXPECT_FALSE(LoadVmmModel(path_, &model).ok());
}

TEST_F(SerializationTest, DictionaryRoundTrip) {
  QueryDictionary dict;
  dict.Intern("kidney stones");
  dict.Intern("kidney stone symptoms");
  dict.Intern("nokia n73");
  ASSERT_TRUE(SaveDictionary(dict, path_).ok());

  QueryDictionary loaded;
  ASSERT_TRUE(LoadDictionary(path_, &loaded).ok());
  ASSERT_EQ(loaded.size(), dict.size());
  for (size_t id = 0; id < dict.size(); ++id) {
    EXPECT_EQ(loaded.Text(static_cast<QueryId>(id)),
              dict.Text(static_cast<QueryId>(id)));
  }
}

TEST_F(SerializationTest, DictionaryLoadMissingFileFails) {
  QueryDictionary dict;
  EXPECT_EQ(LoadDictionary("/nonexistent/dict.txt", &dict).code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace sqp
