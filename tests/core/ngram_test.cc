#include "core/ngram_model.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

std::vector<AggregatedSession> SmallCorpus() {
  return {
      {{0, 1, 2}, 3},  // a b c  x3
      {{0, 1, 3}, 1},  // a b d
      {{1, 2}, 2},     // b c    x2
  };
}

TrainingData MakeData(const std::vector<AggregatedSession>* sessions,
                      size_t vocab = 4) {
  TrainingData data;
  data.sessions = sessions;
  data.vocabulary_size = vocab;
  return data;
}

TEST(NgramModelTest, ExactPrefixMatchRequired) {
  const auto sessions = SmallCorpus();
  NgramModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  // [a, b] is a trained prefix context.
  const Recommendation rec = model.Recommend(std::vector<QueryId>{0, 1}, 5);
  ASSERT_TRUE(rec.covered);
  ASSERT_EQ(rec.queries.size(), 2u);
  EXPECT_EQ(rec.queries[0].query, 2u);  // c 3x beats d 1x
  EXPECT_NEAR(rec.queries[0].score, 0.75, 1e-12);
  EXPECT_EQ(rec.matched_length, 2u);
}

TEST(NgramModelTest, NonPrefixSubstringNotCovered) {
  const auto sessions = SmallCorpus();
  NgramModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  // [b] occurs as a prefix only in "b c"; [b] after "a" is not a prefix
  // context, so predictions for [b] come only from the "b c" sessions.
  const Recommendation rec = model.Recommend(std::vector<QueryId>{1}, 5);
  ASSERT_TRUE(rec.covered);
  ASSERT_EQ(rec.queries.size(), 1u);
  EXPECT_EQ(rec.queries[0].query, 2u);
  EXPECT_NEAR(rec.queries[0].score, 1.0, 1e-12);
}

TEST(NgramModelTest, UnseenFullContextUncovered) {
  const auto sessions = SmallCorpus();
  NgramModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  // [b, c] never appears as a prefix with a continuation.
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{1, 2}));
  // Even though its suffix [c] exists nowhere either; and a context with a
  // known tail but unknown head is still uncovered (no back-off).
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{3, 0, 1}));
}

TEST(NgramModelTest, MaxContextLengthBound) {
  const auto sessions = SmallCorpus();
  NgramOptions options;
  options.max_context_length = 1;
  NgramModel model(options);
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_TRUE(model.Covers(std::vector<QueryId>{0}));
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{0, 1}));
}

TEST(NgramModelTest, ConditionalProbNormalized) {
  const auto sessions = SmallCorpus();
  NgramModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  double total = 0.0;
  for (QueryId q = 0; q < 4; ++q) {
    total += model.ConditionalProb(std::vector<QueryId>{0, 1}, q);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(NgramModelTest, UncoveredContextUniformProb) {
  const auto sessions = SmallCorpus();
  NgramModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_NEAR(model.ConditionalProb(std::vector<QueryId>{2, 1}, 0), 0.25,
              1e-12);
}

TEST(NgramModelTest, StatsCountPrefixStates) {
  const auto sessions = SmallCorpus();
  NgramModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const ModelStats stats = model.Stats();
  EXPECT_EQ(stats.name, "N-gram");
  // Prefix contexts: [0], [0,1], [1]  (the 3-query sessions contribute two
  // prefixes each; "b c" contributes one).
  EXPECT_EQ(stats.num_states, 3u);
}

TEST(NgramModelTest, EmptyContextUncovered) {
  const auto sessions = SmallCorpus();
  NgramModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{}));
}

TEST(NgramModelTest, DegeneratesToPrefixAdjacencyAtLengthOne) {
  // With context length 1 the N-gram model is the 2-gram (Adjacency
  // restricted to session-initial pairs), per paper Section IV-A.
  const std::vector<AggregatedSession> sessions{
      {{0, 1}, 4},
      {{2, 0, 3}, 1},  // "0 -> 3" here is NOT a prefix pair
  };
  NgramModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const Recommendation rec = model.Recommend(std::vector<QueryId>{0}, 5);
  ASSERT_TRUE(rec.covered);
  ASSERT_EQ(rec.queries.size(), 1u);
  EXPECT_EQ(rec.queries[0].query, 1u);
}

}  // namespace
}  // namespace sqp
