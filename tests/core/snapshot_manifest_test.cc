// The SnapshotManifest format suite: round-trips, corruption/truncation
// rejection, blob-pin verification, artifact probing — and the committed
// golden 2-shard manifest that pins the manifest format (and the partition
// function behind it) as a compatibility contract, exactly like
// golden_snapshot_v1.blob pins the blob format.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/compact_snapshot.h"
#include "core/snapshot_io.h"
#include "serve/sharded_engine.h"
#include "util/byte_io.h"

namespace sqp {
namespace {

/// Deterministic corpus, as in snapshot_io_test.cc: pure integer
/// arithmetic so the same seed yields the same corpus on any platform —
/// the golden-manifest contract depends on it.
std::vector<AggregatedSession> SeededCorpus(uint64_t seed,
                                            size_t num_sessions,
                                            QueryId vocabulary) {
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::vector<AggregatedSession> sessions;
  sessions.reserve(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    AggregatedSession session;
    const size_t length = 2 + next() % 5;
    session.queries.reserve(length);
    for (size_t q = 0; q < length; ++q) {
      const QueryId a = static_cast<QueryId>(next() % vocabulary);
      const QueryId b = static_cast<QueryId>(next() % vocabulary);
      session.queries.push_back(std::min(a, b));
    }
    session.frequency = 1 + next() % 8;
    sessions.push_back(std::move(session));
  }
  return sessions;
}

class TempDir {
 public:
  TempDir()
      : path_(std::filesystem::temp_directory_path() /
              ("sqp_manifest_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter_++))) {
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::vector<uint8_t> bytes(std::filesystem::file_size(path));
  std::ifstream in(path, std::ios::binary);
  SQP_CHECK(in.read(reinterpret_cast<char*>(bytes.data()),
                    static_cast<std::streamsize>(bytes.size()))
                .good());
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  SQP_CHECK(out.good());
}

ShardedTrainResult TrainFleet(const std::vector<AggregatedSession>& corpus,
                              uint32_t num_shards, uint64_t version) {
  ShardedTrainOptions options;
  options.model.default_max_depth = 4;
  options.num_shards = num_shards;
  options.vocabulary_size = 1 << 10;
  options.version = version;
  auto trained = TrainShardedSnapshots(corpus, options);
  SQP_CHECK(trained.ok());
  return std::move(trained.value());
}

TEST(ManifestTest, SaveLoadRoundTrip) {
  TempDir dir;
  const auto trained = TrainFleet(SeededCorpus(51, 400, 90), 3, 7);
  const std::string path = dir.file("fleet.manifest");
  ASSERT_TRUE(
      SaveShardedSnapshots(trained.shards, CompactOptions{.top_k = 10}, path)
          .ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  const auto loaded = SnapshotIo::LoadManifest(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_shards(), 3u);
  EXPECT_EQ(loaded->partition_function, kShardPartitionLastQueryFnv1a);
  EXPECT_EQ(loaded->version, 7u);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(loaded->shards[s].path,
              "fleet.manifest.shard" + std::to_string(s));
    const std::string blob = ResolveAgainstManifest(path,
                                                    loaded->shards[s].path);
    EXPECT_EQ(loaded->shards[s].file_size,
              std::filesystem::file_size(blob));
    EXPECT_TRUE(SnapshotIo::VerifyBlobRef(loaded->shards[s], blob).ok());
  }
}

TEST(ManifestTest, ProbeClassifiesArtifacts) {
  TempDir dir;
  const auto trained = TrainFleet(SeededCorpus(52, 200, 60), 2, 1);
  const std::string manifest = dir.file("p.manifest");
  ASSERT_TRUE(
      SaveShardedSnapshots(trained.shards, CompactOptions{}, manifest).ok());

  auto kind = SnapshotIo::Probe(manifest);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, SnapshotFileKind::kManifest);
  kind = SnapshotIo::Probe(manifest + ".shard0");
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, SnapshotFileKind::kBlob);

  const std::string junk = dir.file("junk");
  WriteAll(junk, std::vector<uint8_t>(64, 0x41));
  EXPECT_FALSE(SnapshotIo::Probe(junk).ok());
  EXPECT_FALSE(SnapshotIo::Probe(dir.file("missing")).ok());
}

TEST(ManifestTest, CorruptOrTruncatedManifestsAreRejected) {
  TempDir dir;
  const auto trained = TrainFleet(SeededCorpus(53, 200, 60), 2, 1);
  const std::string path = dir.file("c.manifest");
  ASSERT_TRUE(
      SaveShardedSnapshots(trained.shards, CompactOptions{}, path).ok());
  const std::vector<uint8_t> bytes = ReadAll(path);

  // Every single-byte flip must be caught by the CRC trailer (or the
  // magic/format checks before it).
  for (size_t at = 0; at < bytes.size(); ++at) {
    std::vector<uint8_t> mutated = bytes;
    mutated[at] ^= 0x5A;
    WriteAll(path, mutated);
    EXPECT_FALSE(SnapshotIo::LoadManifest(path).ok()) << "byte " << at;
  }
  // Truncations at every interesting boundary.
  for (const size_t keep :
       {size_t{0}, size_t{7}, size_t{8}, size_t{27}, bytes.size() / 2,
        bytes.size() - 1}) {
    WriteAll(path, std::vector<uint8_t>(
                       bytes.begin(),
                       bytes.begin() + static_cast<ptrdiff_t>(keep)));
    EXPECT_FALSE(SnapshotIo::LoadManifest(path).ok()) << "kept " << keep;
  }
  // Trailing garbage shifts the trailer window.
  std::vector<uint8_t> longer = bytes;
  longer.push_back(0x00);
  WriteAll(path, longer);
  EXPECT_FALSE(SnapshotIo::LoadManifest(path).ok());
}

TEST(ManifestTest, StaleBlobPinIsRefused) {
  TempDir dir;
  const std::string path = dir.file("s.manifest");
  const auto corpus = SeededCorpus(54, 300, 70);
  const auto trained = TrainFleet(corpus, 2, 1);
  ASSERT_TRUE(
      SaveShardedSnapshots(trained.shards, CompactOptions{}, path).ok());

  // Swap shard 1's blob for a differently-trained one: the blob itself is
  // valid, but it is not what the manifest pinned.
  const auto other = TrainFleet(SeededCorpus(99, 300, 70), 2, 1);
  const auto packed =
      CompactSnapshot::FromSnapshot(*other.shards[1], CompactOptions{});
  ASSERT_TRUE(SnapshotIo::Save(*packed, path + ".shard1").ok());

  const auto manifest = SnapshotIo::LoadManifest(path);
  ASSERT_TRUE(manifest.ok());
  EXPECT_TRUE(
      SnapshotIo::VerifyBlobRef(manifest->shards[0], path + ".shard0").ok());
  EXPECT_FALSE(
      SnapshotIo::VerifyBlobRef(manifest->shards[1], path + ".shard1").ok());

  // The fleet boot is all-or-nothing: nothing publishes off a stale pin.
  ShardedEngine engine(ShardedEngineOptions{.num_shards = 2});
  EXPECT_FALSE(engine.LoadAndPublish(path).ok());
  EXPECT_EQ(engine.stats().max_version, 0u);
}

TEST(ManifestTest, ShardCountAndPartitionMismatchesAreRefused) {
  TempDir dir;
  const std::string path = dir.file("m.manifest");
  const auto trained = TrainFleet(SeededCorpus(55, 200, 60), 2, 1);
  ASSERT_TRUE(
      SaveShardedSnapshots(trained.shards, CompactOptions{}, path).ok());

  // Engine sized differently than the manifest.
  ShardedEngine wrong_count(ShardedEngineOptions{.num_shards = 3});
  EXPECT_FALSE(wrong_count.LoadAndPublish(path).ok());

  // Unknown partition function id.
  auto manifest = SnapshotIo::LoadManifest(path);
  ASSERT_TRUE(manifest.ok());
  SnapshotManifest altered = *manifest;
  altered.partition_function = 999;
  ASSERT_TRUE(SnapshotIo::SaveManifest(altered, path).ok());
  ShardedEngine engine(ShardedEngineOptions{.num_shards = 2});
  EXPECT_FALSE(engine.LoadAndPublish(path).ok());
  EXPECT_EQ(engine.stats().max_version, 0u);
}

TEST(ManifestTest, ResolveAgainstManifestHandlesRelativeAndAbsolute) {
  EXPECT_EQ(ResolveAgainstManifest("/data/fleet.manifest", "s0.blob"),
            "/data/s0.blob");
  EXPECT_EQ(ResolveAgainstManifest("fleet.manifest", "s0.blob"), "s0.blob");
  EXPECT_EQ(ResolveAgainstManifest("/data/fleet.manifest", "/abs/s0.blob"),
            "/abs/s0.blob");
}

// ------------------------------------------------ format compatibility

/// The committed golden manifest + per-shard blobs: regenerate with
///   SQP_REGEN_GOLDEN=1 ./sqp_core_tests --gtest_filter='*ManifestGolden*'
/// and commit the three files together with a kManifestFormatVersion bump
/// whenever the manifest format intentionally changes. CI runs this in
/// the snapshot-format job: if the current reader cannot boot the golden
/// fleet — or the booted fleet disagrees with a freshly trained one — the
/// manifest format (or the partition function behind it) drifted silently.
constexpr char kGoldenManifestRelPath[] = "/golden_manifest_v1.manifest";
constexpr uint64_t kGoldenSeed = 88;
constexpr size_t kGoldenSessions = 500;
constexpr QueryId kGoldenVocabulary = 100;
constexpr uint32_t kGoldenShards = 2;
constexpr uint64_t kGoldenVersion = 1;

TEST(ManifestGoldenTest, CommittedManifestBootsAndMatchesFreshFleet) {
  const std::string golden_path =
      std::string(SQP_TEST_DATA_DIR) + kGoldenManifestRelPath;
  const auto corpus =
      SeededCorpus(kGoldenSeed, kGoldenSessions, kGoldenVocabulary);
  const auto trained = TrainFleet(corpus, kGoldenShards, kGoldenVersion);
  if (std::getenv("SQP_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(SaveShardedSnapshots(trained.shards,
                                     CompactOptions{.top_k = 10},
                                     golden_path)
                    .ok());
    GTEST_SKIP() << "regenerated " << golden_path << " (+ shard blobs)";
  }
  ASSERT_TRUE(std::filesystem::exists(golden_path))
      << golden_path << " is missing — regenerate with SQP_REGEN_GOLDEN=1";

  auto booted = ShardedEngine::BootFromManifest(golden_path);
  ASSERT_TRUE(booted.ok()) << booted.status().ToString();
  ASSERT_EQ((*booted)->num_shards(), kGoldenShards);
  EXPECT_EQ((*booted)->stats().max_version, kGoldenVersion);

  // Freshly trained + freshly packed must serve exactly what the golden
  // bytes serve (same compact top-K on both sides).
  ShardedEngine fresh(ShardedEngineOptions{.num_shards = kGoldenShards});
  for (size_t s = 0; s < kGoldenShards; ++s) {
    fresh.PublishShard(s, CompactSnapshot::FromSnapshot(
                              *trained.shards[s], CompactOptions{.top_k = 10}));
  }

  size_t checked = 0;
  for (const AggregatedSession& session : corpus) {
    for (size_t len = 1; len <= session.queries.size(); ++len) {
      const std::vector<QueryId> context(
          session.queries.begin(),
          session.queries.begin() + static_cast<ptrdiff_t>(len));
      const Recommendation want = fresh.Recommend(context, 10);
      const Recommendation got = (*booted)->Recommend(context, 10);
      ASSERT_EQ(want.covered, got.covered);
      ASSERT_EQ(want.matched_length, got.matched_length);
      ASSERT_EQ(want.queries.size(), got.queries.size());
      for (size_t i = 0; i < want.queries.size(); ++i) {
        EXPECT_EQ(want.queries[i].query, got.queries[i].query);
        EXPECT_DOUBLE_EQ(want.queries[i].score, got.queries[i].score);
      }
      if (++checked >= 500) return;
    }
  }
}

}  // namespace
}  // namespace sqp
