#include "core/adjacency_model.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

// Sessions: a->b twice, a->c once, b->c once; d is a singleton.
std::vector<AggregatedSession> SmallCorpus() {
  return {
      {{0, 1}, 2},     // a b  x2
      {{0, 2}, 1},     // a c
      {{1, 2}, 1},     // b c
      {{3}, 5},        // d (singleton)
  };
}

TrainingData MakeData(const std::vector<AggregatedSession>* sessions,
                      size_t vocab = 4) {
  TrainingData data;
  data.sessions = sessions;
  data.vocabulary_size = vocab;
  return data;
}

TEST(AdjacencyModelTest, TrainRejectsBadInput) {
  AdjacencyModel model;
  TrainingData data;
  EXPECT_FALSE(model.Train(data).ok());
  std::vector<AggregatedSession> sessions;
  data.sessions = &sessions;
  data.vocabulary_size = 0;
  EXPECT_FALSE(model.Train(data).ok());
}

TEST(AdjacencyModelTest, RecommendsFollowersOfLastQuery) {
  const auto sessions = SmallCorpus();
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const Recommendation rec = model.Recommend(std::vector<QueryId>{0}, 5);
  ASSERT_TRUE(rec.covered);
  ASSERT_EQ(rec.queries.size(), 2u);
  EXPECT_EQ(rec.queries[0].query, 1u);  // b twice beats c once
  EXPECT_EQ(rec.queries[1].query, 2u);
  EXPECT_NEAR(rec.queries[0].score, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(rec.matched_length, 1u);
}

TEST(AdjacencyModelTest, UsesOnlyLastContextQuery) {
  const auto sessions = SmallCorpus();
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const Recommendation with_history =
      model.Recommend(std::vector<QueryId>{2, 3, 0}, 5);
  const Recommendation without =
      model.Recommend(std::vector<QueryId>{0}, 5);
  ASSERT_EQ(with_history.queries.size(), without.queries.size());
  for (size_t i = 0; i < without.queries.size(); ++i) {
    EXPECT_EQ(with_history.queries[i].query, without.queries[i].query);
  }
}

TEST(AdjacencyModelTest, CoverageRules) {
  const auto sessions = SmallCorpus();
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_TRUE(model.Covers(std::vector<QueryId>{0}));
  EXPECT_TRUE(model.Covers(std::vector<QueryId>{1}));
  // c appears only at last positions: nothing ever follows it.
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{2}));
  // d appears only in singleton sessions.
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{3}));
  // unseen query.
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{99}));
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{}));
}

TEST(AdjacencyModelTest, TopNTruncates) {
  const auto sessions = SmallCorpus();
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_EQ(model.Recommend(std::vector<QueryId>{0}, 1).queries.size(), 1u);
}

TEST(AdjacencyModelTest, ConditionalProbSumsToOneOverVocabulary) {
  const auto sessions = SmallCorpus();
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  double total = 0.0;
  for (QueryId q = 0; q < 4; ++q) {
    total += model.ConditionalProb(std::vector<QueryId>{0}, q);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AdjacencyModelTest, ConditionalProbUncoveredIsUniform) {
  const auto sessions = SmallCorpus();
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_NEAR(model.ConditionalProb(std::vector<QueryId>{99}, 0), 0.25,
              1e-12);
}

TEST(AdjacencyModelTest, ObservedBeatsUnobservedProb) {
  const auto sessions = SmallCorpus();
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const double observed = model.ConditionalProb(std::vector<QueryId>{0}, 1);
  const double unobserved = model.ConditionalProb(std::vector<QueryId>{0}, 3);
  EXPECT_GT(observed, unobserved);
}

TEST(AdjacencyModelTest, StatsAccounting) {
  const auto sessions = SmallCorpus();
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const ModelStats stats = model.Stats();
  EXPECT_EQ(stats.name, "Adjacency");
  EXPECT_EQ(stats.num_states, 2u);   // a and b have followers
  EXPECT_EQ(stats.num_entries, 3u);  // a->{b,c}, b->{c}
  EXPECT_GT(stats.memory_bytes, 0u);
}

TEST(AdjacencyModelTest, RetrainReplacesState) {
  const auto sessions = SmallCorpus();
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const std::vector<AggregatedSession> other{{{7, 8}, 1}};
  ASSERT_TRUE(model.Train(MakeData(&other, 9)).ok());
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{0}));
  EXPECT_TRUE(model.Covers(std::vector<QueryId>{7}));
}

TEST(AdjacencyModelTest, RepeatedQueriesCountAdjacency) {
  const std::vector<AggregatedSession> sessions{{{5, 5, 6}, 3}};
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions, 7)).ok());
  const Recommendation rec = model.Recommend(std::vector<QueryId>{5}, 5);
  ASSERT_EQ(rec.queries.size(), 2u);
  // 5 is followed by 5 (once) and 6 (once) per session.
  EXPECT_EQ(rec.queries[0].query, 5u);  // tie broken by ascending id
  EXPECT_EQ(rec.queries[1].query, 6u);
}

}  // namespace
}  // namespace sqp
