// Property sweep over the PST configuration space (epsilon x depth x
// min_support x corpus seed): structural invariants that must hold for
// every valid configuration, checked on randomly generated corpora.

#include <tuple>

#include <gtest/gtest.h>

#include "core/pst.h"
#include "util/random.h"

namespace sqp {
namespace {

/// Random corpus: `num_sessions` sessions over `vocab` queries with
/// geometric-ish lengths, aggregated with random frequencies.
std::vector<AggregatedSession> RandomCorpus(uint64_t seed, size_t vocab,
                                            size_t num_sessions) {
  Rng rng(seed);
  std::vector<AggregatedSession> sessions;
  sessions.reserve(num_sessions);
  for (size_t i = 0; i < num_sessions; ++i) {
    AggregatedSession session;
    const size_t len = 1 + rng.Geometric(0.45) % 8;
    for (size_t j = 0; j < len; ++j) {
      session.queries.push_back(
          static_cast<QueryId>(rng.UniformInt(vocab)));
    }
    session.frequency = 1 + rng.UniformInt(20);
    sessions.push_back(std::move(session));
  }
  return sessions;
}

using PstParam = std::tuple<double /*epsilon*/, size_t /*max_depth*/,
                            uint64_t /*min_support*/, uint64_t /*seed*/>;

class PstPropertyTest : public ::testing::TestWithParam<PstParam> {
 protected:
  void SetUp() override {
    const auto& [epsilon, max_depth, min_support, seed] = GetParam();
    sessions_ = RandomCorpus(seed, /*vocab=*/40, /*num_sessions=*/300);
    index_.Build(sessions_, ContextIndex::Mode::kSubstring);
    options_.epsilon = epsilon;
    options_.max_depth = max_depth;
    options_.min_support = min_support;
    SQP_CHECK_OK(pst_.Build(index_, options_));
  }

  std::vector<AggregatedSession> sessions_;
  ContextIndex index_;
  PstOptions options_;
  Pst pst_;
};

TEST_P(PstPropertyTest, SuffixClosureHolds) {
  for (const Pst::Node& node : pst_.nodes()) {
    if (node.context.size() <= 1) continue;
    std::vector<QueryId> suffix(node.context.begin() + 1,
                                node.context.end());
    while (!suffix.empty()) {
      EXPECT_NE(pst_.FindNode(suffix), nullptr);
      suffix.erase(suffix.begin());
    }
  }
}

TEST_P(PstPropertyTest, DepthBoundRespected) {
  if (options_.max_depth == 0) return;
  for (const Pst::Node& node : pst_.nodes()) {
    EXPECT_LE(node.context.size(), options_.max_depth);
  }
}

TEST_P(PstPropertyTest, MinSupportRespected) {
  for (const Pst::Node& node : pst_.nodes()) {
    if (node.context.empty()) continue;  // root
    // Suffix-closure fill-ins have at least the support of the deep node
    // that pulled them in, which itself passed min_support.
    EXPECT_GE(node.total_count, options_.min_support);
  }
}

TEST_P(PstPropertyTest, NodeCountsConsistent) {
  for (const Pst::Node& node : pst_.nodes()) {
    uint64_t sum = 0;
    for (const NextQueryCount& nc : node.nexts) sum += nc.count;
    EXPECT_EQ(sum, node.total_count);
    EXPECT_LE(node.start_count, node.total_count);
    for (size_t i = 1; i < node.nexts.size(); ++i) {
      const bool sorted =
          node.nexts[i - 1].count > node.nexts[i].count ||
          (node.nexts[i - 1].count == node.nexts[i].count &&
           node.nexts[i - 1].query < node.nexts[i].query);
      EXPECT_TRUE(sorted);
    }
  }
}

TEST_P(PstPropertyTest, ChildEdgesMatchContexts) {
  const auto& nodes = pst_.nodes();
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (const auto& [oldest, child_id] : nodes[i].children) {
      ASSERT_GE(child_id, 1);
      ASSERT_LT(static_cast<size_t>(child_id), nodes.size());
      const Pst::Node& child = nodes[static_cast<size_t>(child_id)];
      ASSERT_FALSE(child.context.empty());
      EXPECT_EQ(child.context.front(), oldest);
      EXPECT_EQ(child.parent, static_cast<int32_t>(i));
      EXPECT_EQ(child.context.size(), nodes[i].context.size() + 1);
    }
  }
}

TEST_P(PstPropertyTest, MatchedStateIsTrueSuffix) {
  Rng rng(std::get<3>(GetParam()) + 99);
  for (int round = 0; round < 100; ++round) {
    std::vector<QueryId> context;
    const size_t len = 1 + rng.UniformInt(6);
    for (size_t j = 0; j < len; ++j) {
      context.push_back(static_cast<QueryId>(rng.UniformInt(45)));
    }
    size_t matched = 0;
    const Pst::Node* state = pst_.MatchLongestSuffix(context, &matched);
    ASSERT_NE(state, nullptr);
    ASSERT_EQ(state->context.size(), matched);
    ASSERT_LE(matched, context.size());
    // The matched state's context equals the trailing `matched` queries.
    EXPECT_TRUE(std::equal(state->context.begin(), state->context.end(),
                           context.end() - static_cast<ptrdiff_t>(matched)));
    // Maximality: extending the match by one more query is not a node.
    if (matched < context.size()) {
      std::vector<QueryId> longer(context.end() - static_cast<ptrdiff_t>(
                                                      matched + 1),
                                  context.end());
      EXPECT_EQ(pst_.FindNode(longer), nullptr);
    }
  }
}

TEST_P(PstPropertyTest, FlatMatchAgreesWithFindNodeOnEveryStoredContext) {
  // The sorted-edge layout must resolve every stored context identically
  // through the suffix walk and through exact lookup.
  for (const Pst::Node& node : pst_.nodes()) {
    if (node.context.empty()) continue;
    size_t matched = 0;
    const Pst::Node* state = pst_.MatchLongestSuffix(node.context, &matched);
    ASSERT_EQ(matched, node.context.size());
    EXPECT_EQ(state, &node);
    EXPECT_EQ(pst_.FindNode(node.context), &node);
  }
}

TEST_P(PstPropertyTest, ChildEdgesSortedByQuery) {
  for (const Pst::Node& node : pst_.nodes()) {
    for (size_t i = 1; i < node.children.size(); ++i) {
      EXPECT_LT(node.children[i - 1].query, node.children[i].query);
    }
  }
}

TEST_P(PstPropertyTest, RebuildIsDeterministic) {
  Pst again;
  SQP_CHECK_OK(again.Build(index_, options_));
  ASSERT_EQ(again.size(), pst_.size());
  for (size_t i = 0; i < pst_.size(); ++i) {
    EXPECT_EQ(again.nodes()[i].context, pst_.nodes()[i].context);
    EXPECT_EQ(again.nodes()[i].total_count, pst_.nodes()[i].total_count);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, PstPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.5),
                       ::testing::Values(size_t{0}, size_t{2}, size_t{4}),
                       ::testing::Values(uint64_t{1}, uint64_t{10}),
                       ::testing::Values(uint64_t{11}, uint64_t{22})));

}  // namespace
}  // namespace sqp
