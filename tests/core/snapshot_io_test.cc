// Persistence suite for the compact snapshot blob (core/snapshot_io): a
// blob restored by copy (Load) or zero-copy (Map) must serve bit-identical
// recommendations to the in-memory CompactSnapshot it was written from,
// property-tested over seeded corpora; corrupt and truncated input must be
// rejected with a Status error — never UB (run under the SQP_ASAN build in
// CI); and the committed golden blob pins the on-disk format as a
// compatibility contract.

#include "core/snapshot_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/compact_snapshot.h"
#include "serve/recommender_engine.h"
#include "serve/retrainer.h"
#include "util/byte_io.h"

namespace sqp {
namespace {

// ------------------------------------------------------------ fixtures

/// Deterministic pseudo-random corpus: sessions of length 2..6 over a
/// bounded id space, frequencies 1..8. Pure integer arithmetic — the same
/// seed yields the same corpus on any platform, which the golden-blob
/// contract below depends on.
std::vector<AggregatedSession> SeededCorpus(uint64_t seed,
                                            size_t num_sessions,
                                            QueryId vocabulary,
                                            QueryId id_offset = 0) {
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::vector<AggregatedSession> sessions;
  sessions.reserve(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    AggregatedSession session;
    const size_t length = 2 + next() % 5;
    session.queries.reserve(length);
    for (size_t q = 0; q < length; ++q) {
      // A skewed draw so popular continuations emerge (min of two draws).
      const QueryId a = static_cast<QueryId>(next() % vocabulary);
      const QueryId b = static_cast<QueryId>(next() % vocabulary);
      session.queries.push_back(id_offset + std::min(a, b));
    }
    session.frequency = 1 + next() % 8;
    sessions.push_back(std::move(session));
  }
  return sessions;
}

std::shared_ptr<const ModelSnapshot> BuildFull(
    const std::vector<AggregatedSession>& sessions, uint64_t version,
    size_t vocabulary_bound, size_t max_depth = 4) {
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = vocabulary_bound;
  MvmmOptions options;
  options.default_max_depth = max_depth;
  auto built = ModelSnapshot::Build(data, options, version);
  SQP_CHECK(built.ok());
  return built.value();
}

/// Session prefixes used as online contexts (covered and uncovered mixes).
std::vector<std::vector<QueryId>> PrefixContexts(
    const std::vector<AggregatedSession>& sessions, size_t limit) {
  std::vector<std::vector<QueryId>> contexts;
  for (const AggregatedSession& session : sessions) {
    for (size_t len = 1; len <= session.queries.size(); ++len) {
      contexts.emplace_back(session.queries.begin(),
                            session.queries.begin() +
                                static_cast<ptrdiff_t>(len));
      if (contexts.size() >= limit) return contexts;
    }
  }
  return contexts;
}

/// Scratch file path under the system temp dir (process-unique, so
/// concurrent ctest runs from different build trees cannot collide);
/// removed by the guard.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("sqp_snapshot_io_" + std::to_string(::getpid()) + "_" +
                name))
                  .string()) {
    std::filesystem::remove(path_);
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    std::filesystem::remove(path_ + ".tmp", ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void ExpectBitIdentical(const ServingSnapshot& expected,
                        const ServingSnapshot& actual,
                        const std::vector<std::vector<QueryId>>& contexts,
                        size_t top_n) {
  SnapshotScratch scratch;
  for (const std::vector<QueryId>& context : contexts) {
    const Recommendation want = expected.Recommend(context, top_n, &scratch);
    const Recommendation got = actual.Recommend(context, top_n, &scratch);
    ASSERT_EQ(want.covered, got.covered);
    ASSERT_EQ(want.matched_length, got.matched_length);
    ASSERT_EQ(want.queries.size(), got.queries.size());
    for (size_t i = 0; i < want.queries.size(); ++i) {
      EXPECT_EQ(want.queries[i].query, got.queries[i].query) << "rank " << i;
      EXPECT_DOUBLE_EQ(want.queries[i].score, got.queries[i].score)
          << "rank " << i;
    }
    EXPECT_EQ(expected.Covers(context), actual.Covers(context));
  }
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::vector<uint8_t> bytes(std::filesystem::file_size(path));
  std::ifstream in(path, std::ios::binary);
  SQP_CHECK(in.read(reinterpret_cast<char*>(bytes.data()),
                    static_cast<std::streamsize>(bytes.size())).good());
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  SQP_CHECK(out.good());
}

// ---------------------------------------------------- round-trip suite

TEST(SnapshotIoTest, SaveLoadMapServeBitIdenticallyOverSeededCorpora) {
  // The acceptance property: for every seeded corpus, a replica booted
  // from the blob (either restore path) serves bit-identical top-10 lists
  // to the in-memory compact snapshot the blob was written from.
  for (const uint64_t seed : {11ull, 23ull, 47ull}) {
    const std::vector<AggregatedSession> corpus =
        SeededCorpus(seed, 600, /*vocabulary=*/120);
    const auto full = BuildFull(corpus, /*version=*/seed, 1 << 10);
    const auto compact =
        CompactSnapshot::FromSnapshot(*full, CompactOptions{.top_k = 10});

    TempFile file("roundtrip_" + std::to_string(seed) + ".blob");
    ASSERT_TRUE(SaveCompactSnapshot(*compact, file.path()).ok());
    EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"))
        << "atomic save must not leave its tmp file behind";

    const auto loaded = LoadCompactSnapshot(file.path());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const auto mapped = MapCompactSnapshot(file.path());
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

    EXPECT_EQ((*loaded)->version(), compact->version());
    EXPECT_EQ((*mapped)->version(), compact->version());
    EXPECT_EQ((*loaded)->num_nodes(), compact->num_nodes());
    EXPECT_EQ((*mapped)->num_nodes(), compact->num_nodes());
    EXPECT_EQ((*loaded)->num_entries(), compact->num_entries());
    EXPECT_EQ((*mapped)->num_entries(), compact->num_entries());
    EXPECT_EQ((*loaded)->sigmas(), compact->sigmas());
    EXPECT_EQ((*mapped)->sigmas(), compact->sigmas());
    EXPECT_EQ((*mapped)->mapped_bytes(),
              std::filesystem::file_size(file.path()));

    const std::vector<std::vector<QueryId>> contexts =
        PrefixContexts(corpus, 400);
    ExpectBitIdentical(*compact, **loaded, contexts, 10);
    ExpectBitIdentical(*compact, **mapped, contexts, 10);
  }
}

TEST(SnapshotIoTest, WideIdPoolsRoundTrip) {
  // Query ids beyond 16 bits force the wide pools — the branch with
  // 4-byte ids throughout, including the root index.
  const std::vector<AggregatedSession> corpus =
      SeededCorpus(5, 200, /*vocabulary=*/60, /*id_offset=*/70000);
  const auto full = BuildFull(corpus, 3, 1 << 18);
  const auto compact =
      CompactSnapshot::FromSnapshot(*full, CompactOptions{.top_k = 0});

  TempFile file("wide.blob");
  ASSERT_TRUE(SaveCompactSnapshot(*compact, file.path()).ok());
  const auto loaded = LoadCompactSnapshot(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto mapped = MapCompactSnapshot(file.path());
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  const std::vector<std::vector<QueryId>> contexts =
      PrefixContexts(corpus, 300);
  ExpectBitIdentical(*compact, **loaded, contexts, 5);
  ExpectBitIdentical(*compact, **mapped, contexts, 5);
}

TEST(SnapshotIoTest, MinimalModelsRoundTrip) {
  // Edge cases of the mmap loader: a root-only tree (sessions with no
  // transitions => no states, nothing to serve) and a single-state tree.
  {
    const std::vector<AggregatedSession> lonely = {{{QueryId{3}}, 5},
                                                   {{QueryId{7}}, 2}};
    const auto full = BuildFull(lonely, 1, 16);
    const auto compact = CompactSnapshot::FromSnapshot(*full);
    ASSERT_EQ(compact->num_nodes(), 1u);  // just the root
    ASSERT_EQ(compact->num_entries(), 0u);

    TempFile file("rootonly.blob");
    ASSERT_TRUE(SaveCompactSnapshot(*compact, file.path()).ok());
    const auto mapped = MapCompactSnapshot(file.path());
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_EQ((*mapped)->num_nodes(), 1u);
    SnapshotScratch scratch;
    const std::vector<QueryId> context = {QueryId{3}};
    EXPECT_FALSE((*mapped)->Recommend(context, 5, &scratch).covered);
    EXPECT_FALSE((*mapped)->Covers(context));
    const auto loaded = LoadCompactSnapshot(file.path());
    ASSERT_TRUE(loaded.ok());
    EXPECT_FALSE((*loaded)->Covers(context));
  }
  {
    const std::vector<AggregatedSession> pair = {{{QueryId{1}, QueryId{2}}, 4}};
    const auto full = BuildFull(pair, 1, 16);
    const auto compact = CompactSnapshot::FromSnapshot(*full);
    TempFile file("single.blob");
    ASSERT_TRUE(SaveCompactSnapshot(*compact, file.path()).ok());
    const auto mapped = MapCompactSnapshot(file.path());
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    const std::vector<std::vector<QueryId>> contexts = {{QueryId{1}},
                                                        {QueryId{2}}};
    ExpectBitIdentical(*compact, **mapped, contexts, 5);
  }
}

TEST(SnapshotIoTest, BlobCarriesItsOwnCorpusVersion) {
  // A blob written at corpus generation 42 must come back as generation 42
  // wherever it is loaded — the version is provenance, not interpreted.
  const std::vector<AggregatedSession> corpus = SeededCorpus(9, 200, 80);
  const auto full = BuildFull(corpus, /*version=*/42, 1 << 10);
  const auto compact = CompactSnapshot::FromSnapshot(*full);
  TempFile file("version.blob");
  ASSERT_TRUE(SaveCompactSnapshot(*compact, file.path()).ok());

  const auto mapped = MapCompactSnapshot(file.path());
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ((*mapped)->version(), 42u);

  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  ASSERT_TRUE(engine.LoadAndPublish(file.path()).ok());
  EXPECT_EQ(engine.current_version(), 42u);
}

TEST(SnapshotIoTest, SkippingChecksumsStillServesIdentically) {
  const std::vector<AggregatedSession> corpus = SeededCorpus(13, 300, 90);
  const auto full = BuildFull(corpus, 1, 1 << 10);
  const auto compact = CompactSnapshot::FromSnapshot(*full);
  TempFile file("nocrc.blob");
  ASSERT_TRUE(SaveCompactSnapshot(*compact, file.path()).ok());
  const auto mapped =
      MapCompactSnapshot(file.path(), {.verify_checksums = false});
  ASSERT_TRUE(mapped.ok());
  ExpectBitIdentical(*compact, **mapped, PrefixContexts(corpus, 200), 10);
}

TEST(SnapshotIoTest, HugepageOptionsServeIdenticallyWhateverTheBacking) {
  // The hugepage knobs only change how the mapping's memory is backed —
  // THP advice, an explicit hugetlb copy, or neither — never the served
  // bytes. Every mode (including silent fallback when the kernel refuses,
  // e.g. an unprovisioned hugetlb pool) must answer bit-identically.
  const std::vector<AggregatedSession> corpus = SeededCorpus(29, 300, 90);
  const auto full = BuildFull(corpus, 1, 1 << 10);
  const auto compact = CompactSnapshot::FromSnapshot(*full);
  TempFile file("hugepage.blob");
  ASSERT_TRUE(SaveCompactSnapshot(*compact, file.path()).ok());
  const std::vector<std::vector<QueryId>> contexts =
      PrefixContexts(corpus, 200);

  const auto plain =
      MapCompactSnapshot(file.path(), {.hugepages = false});
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ((*plain)->hugepage_mode(), HugepageMode::kNone);
  ExpectBitIdentical(*compact, **plain, contexts, 10);

  const auto advised = MapCompactSnapshot(file.path());  // default on
  ASSERT_TRUE(advised.ok());
  EXPECT_NE((*advised)->hugepage_mode(), HugepageMode::kHugetlb);
  ExpectBitIdentical(*compact, **advised, contexts, 10);

  const auto hugetlb =
      MapCompactSnapshot(file.path(), {.hugetlb = true});
  ASSERT_TRUE(hugetlb.ok());  // kHugetlb, or a fallback mode if the pool
                              // is unprovisioned — both must serve
  ExpectBitIdentical(*compact, **hugetlb, contexts, 10);
}

// ---------------------------------------------------- corruption suite

TEST(SnapshotIoTest, CorruptBytesAreRejectedEverywhere) {
  // Flip single bytes across the header, the section table and every
  // section payload: both restore paths must return an error (padding
  // bytes between sections carry no data and are exempt, so the sweep
  // walks the checksummed regions only).
  const std::vector<AggregatedSession> corpus = SeededCorpus(3, 150, 60);
  const auto full = BuildFull(corpus, 1, 1 << 10, /*max_depth=*/3);
  const auto compact = CompactSnapshot::FromSnapshot(*full);
  TempFile file("corrupt.blob");
  ASSERT_TRUE(SaveCompactSnapshot(*compact, file.path()).ok());
  const std::vector<uint8_t> blob = ReadAll(file.path());

  // Covered byte ranges: header, table, and each section payload (decoded
  // from the table we just wrote).
  std::vector<std::pair<size_t, size_t>> regions = {{0, 64}};
  const uint32_t section_count = LoadLE32(blob.data() + 12);
  regions.emplace_back(64, 64 + section_count * 24);
  for (uint32_t i = 0; i < section_count; ++i) {
    const uint8_t* row = blob.data() + 64 + i * 24;
    const uint64_t offset = LoadLE64(row + 8);
    const uint64_t size = LoadLE64(row + 16);
    if (size > 0) {
      regions.emplace_back(static_cast<size_t>(offset),
                           static_cast<size_t>(offset + size));
    }
  }

  size_t flipped = 0;
  for (const auto& [begin, end] : regions) {
    for (size_t at = begin; at < end; at += 97) {  // stride keeps it fast
      std::vector<uint8_t> mutated = blob;
      mutated[at] ^= 0x5A;
      WriteAll(file.path(), mutated);
      EXPECT_FALSE(LoadCompactSnapshot(file.path()).ok())
          << "byte " << at << " flip not detected by Load";
      EXPECT_FALSE(MapCompactSnapshot(file.path()).ok())
          << "byte " << at << " flip not detected by Map";
      ++flipped;
    }
  }
  EXPECT_GT(flipped, 20u);
}

TEST(SnapshotIoTest, TruncatedBlobsAreRejected) {
  const std::vector<AggregatedSession> corpus = SeededCorpus(4, 150, 60);
  const auto full = BuildFull(corpus, 1, 1 << 10, /*max_depth=*/3);
  const auto compact = CompactSnapshot::FromSnapshot(*full);
  TempFile file("truncated.blob");
  ASSERT_TRUE(SaveCompactSnapshot(*compact, file.path()).ok());
  const std::vector<uint8_t> blob = ReadAll(file.path());

  for (const size_t keep :
       {size_t{0}, size_t{1}, size_t{8}, size_t{63}, size_t{64},
        size_t{100}, blob.size() / 2, blob.size() - 1}) {
    std::vector<uint8_t> shorter(blob.begin(),
                                 blob.begin() + static_cast<ptrdiff_t>(keep));
    WriteAll(file.path(), shorter);
    EXPECT_FALSE(LoadCompactSnapshot(file.path()).ok()) << "kept " << keep;
    EXPECT_FALSE(MapCompactSnapshot(file.path()).ok()) << "kept " << keep;
  }

  // Trailing garbage is corruption too (the header pins the exact size).
  std::vector<uint8_t> longer = blob;
  longer.push_back(0xFF);
  WriteAll(file.path(), longer);
  EXPECT_FALSE(LoadCompactSnapshot(file.path()).ok());
  EXPECT_FALSE(MapCompactSnapshot(file.path()).ok());

  EXPECT_FALSE(LoadCompactSnapshot(file.path() + ".does_not_exist").ok());
  EXPECT_FALSE(MapCompactSnapshot(file.path() + ".does_not_exist").ok());
}

TEST(SnapshotIoTest, StructuralValidationCatchesBadIdsEvenWithoutChecksums) {
  // With checksum verification off, the structural pass must still refuse
  // a blob whose edge pool points outside the node table — the invariant
  // the serving walk's memory-safety rests on.
  const std::vector<AggregatedSession> corpus = SeededCorpus(6, 150, 60);
  const auto full = BuildFull(corpus, 1, 1 << 10, /*max_depth=*/3);
  const auto compact = CompactSnapshot::FromSnapshot(*full);
  ASSERT_GT(compact->num_edges(), 0u);
  TempFile file("badid.blob");
  ASSERT_TRUE(SaveCompactSnapshot(*compact, file.path()).ok());
  std::vector<uint8_t> blob = ReadAll(file.path());

  // Locate the edge_child section (id 14) and point its first edge at a
  // node id far past the table.
  const uint32_t section_count = LoadLE32(blob.data() + 12);
  for (uint32_t i = 0; i < section_count; ++i) {
    uint8_t* row = blob.data() + 64 + i * 24;
    if (LoadLE32(row) == 14) {
      const uint64_t offset = LoadLE64(row + 8);
      StoreLE16(blob.data() + offset, 0xFFFF);
      break;
    }
  }
  WriteAll(file.path(), blob);
  const SnapshotLoadOptions no_verify{.verify_checksums = false};
  EXPECT_FALSE(LoadCompactSnapshot(file.path(), no_verify).ok());
  EXPECT_FALSE(MapCompactSnapshot(file.path(), no_verify).ok());
}

TEST(SnapshotIoTest, StructuralValidationCatchesSpikedCsrOffset) {
  // A CSR offset array whose *intermediate* value spikes far past the
  // edge pool while start/terminal values stay valid: the validator must
  // reject it up front without ever indexing the pool at the spiked
  // offset (run under ASan in CI — an out-of-bounds probe would trip).
  const std::vector<AggregatedSession> corpus = SeededCorpus(7, 150, 60);
  const auto full = BuildFull(corpus, 1, 1 << 10, /*max_depth=*/3);
  const auto compact = CompactSnapshot::FromSnapshot(*full);
  ASSERT_GT(compact->num_nodes(), 2u);
  TempFile file("spiked.blob");
  ASSERT_TRUE(SaveCompactSnapshot(*compact, file.path()).ok());
  std::vector<uint8_t> blob = ReadAll(file.path());

  // Locate the child_begin section (id 5) and spike the offset of node 1.
  const uint32_t section_count = LoadLE32(blob.data() + 12);
  for (uint32_t i = 0; i < section_count; ++i) {
    uint8_t* row = blob.data() + 64 + i * 24;
    if (LoadLE32(row) == 5) {
      const uint64_t offset = LoadLE64(row + 8);
      StoreLE32(blob.data() + offset + 4, 0x00F00000u);
      break;
    }
  }
  WriteAll(file.path(), blob);
  const SnapshotLoadOptions no_verify{.verify_checksums = false};
  EXPECT_FALSE(LoadCompactSnapshot(file.path(), no_verify).ok());
  EXPECT_FALSE(MapCompactSnapshot(file.path(), no_verify).ok());
}

// ------------------------------------------------- serving-stack suite

TEST(SnapshotIoTest, EngineColdBootsFromBlobAndKeepsServingOnBadReload) {
  const std::vector<AggregatedSession> corpus = SeededCorpus(8, 400, 100);
  const auto full = BuildFull(corpus, 5, 1 << 10);
  const auto compact =
      CompactSnapshot::FromSnapshot(*full, CompactOptions{.top_k = 10});
  TempFile file("engine.blob");
  ASSERT_TRUE(SaveCompactSnapshot(*compact, file.path()).ok());

  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  ASSERT_TRUE(engine.LoadAndPublish(file.path()).ok());
  EXPECT_EQ(engine.current_version(), 5u);

  // The cold-booted replica answers exactly like the in-memory compact.
  SnapshotScratch scratch;
  for (const std::vector<QueryId>& context : PrefixContexts(corpus, 120)) {
    const Recommendation want = compact->Recommend(context, 10, &scratch);
    const Recommendation got = engine.Recommend(context, 10);
    ASSERT_EQ(want.covered, got.covered);
    ASSERT_EQ(want.queries.size(), got.queries.size());
    for (size_t i = 0; i < want.queries.size(); ++i) {
      EXPECT_EQ(want.queries[i].query, got.queries[i].query);
      EXPECT_DOUBLE_EQ(want.queries[i].score, got.queries[i].score);
    }
  }

  // A failed reload (corrupt file) must leave the current snapshot live.
  std::vector<uint8_t> blob = ReadAll(file.path());
  blob[blob.size() / 2] ^= 0xFF;
  WriteAll(file.path(), blob);
  const std::shared_ptr<const ServingSnapshot> before =
      engine.CurrentSnapshot();
  EXPECT_FALSE(engine.LoadAndPublish(file.path()).ok());
  EXPECT_EQ(engine.CurrentSnapshot().get(), before.get());
  EXPECT_EQ(engine.current_version(), 5u);
}

TEST(SnapshotIoTest, RetrainerPersistsEveryPublishedRebuild) {
  const std::vector<AggregatedSession> base = SeededCorpus(20, 400, 100);
  const std::vector<AggregatedSession> fresh = SeededCorpus(21, 150, 100);

  TempFile file("retrainer.blob");
  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  RetrainerOptions options;
  options.model.default_max_depth = 4;
  options.vocabulary_size = 1 << 10;
  options.publish_compact = true;
  options.compact.top_k = 10;
  options.persist_path = file.path();
  Retrainer retrainer(&engine, options);
  ASSERT_TRUE(retrainer.Bootstrap(base).ok());

  // Generation 1 is on disk, loadable, and identical to what was
  // published.
  {
    const auto mapped = MapCompactSnapshot(file.path());
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_EQ((*mapped)->version(), 1u);
    const auto published = std::dynamic_pointer_cast<const CompactSnapshot>(
        engine.CurrentSnapshot());
    ASSERT_NE(published, nullptr);
    ExpectBitIdentical(*published, **mapped, PrefixContexts(base, 150), 10);
  }

  // A retrain cycle rewrites the blob with generation 2.
  retrainer.AppendSessions(fresh);
  ASSERT_TRUE(retrainer.RetrainOnce().ok());
  {
    const auto mapped = MapCompactSnapshot(file.path());
    ASSERT_TRUE(mapped.ok());
    EXPECT_EQ((*mapped)->version(), 2u);
    // A brand-new replica cold-booted from the persisted blob serves the
    // retrained generation exactly.
    RecommenderEngine replica(EngineOptions{.num_threads = 1});
    ASSERT_TRUE(replica.LoadAndPublish(file.path()).ok());
    EXPECT_EQ(replica.current_version(), 2u);
    for (const std::vector<QueryId>& context : PrefixContexts(fresh, 60)) {
      const Recommendation a = engine.Recommend(context, 10);
      const Recommendation b = replica.Recommend(context, 10);
      ASSERT_EQ(a.covered, b.covered);
      ASSERT_EQ(a.queries.size(), b.queries.size());
      for (size_t i = 0; i < a.queries.size(); ++i) {
        EXPECT_EQ(a.queries[i].query, b.queries[i].query);
      }
    }
  }
}

TEST(SnapshotIoTest, PersistWithFullPublishStillWritesCompactBlob) {
  // persist_path without publish_compact: readers get the full snapshot,
  // the disk gets the compact re-pack.
  const std::vector<AggregatedSession> base = SeededCorpus(30, 300, 80);
  TempFile file("fullpublish.blob");
  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  RetrainerOptions options;
  options.model.default_max_depth = 4;
  options.vocabulary_size = 1 << 10;
  options.persist_path = file.path();
  Retrainer retrainer(&engine, options);
  ASSERT_TRUE(retrainer.Bootstrap(base).ok());

  EXPECT_NE(std::dynamic_pointer_cast<const ModelSnapshot>(
                engine.CurrentSnapshot()),
            nullptr);
  const auto mapped = MapCompactSnapshot(file.path());
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ((*mapped)->version(), 1u);
}

// ------------------------------------------------ format compatibility

/// The committed golden blob: regenerate with
///   SQP_REGEN_GOLDEN=1 ./sqp_core_tests --gtest_filter='*Golden*'
/// and commit the file together with a kSnapshotFormatVersion bump
/// whenever the format intentionally changes. CI runs this test in a
/// dedicated job: if the current reader cannot reproduce the freshly
/// trained model's top-10 lists from the golden bytes, the format drifted
/// silently and the build fails.
constexpr char kGoldenRelPath[] = "/golden_snapshot_v1.blob";
constexpr uint64_t kGoldenSeed = 77;
constexpr size_t kGoldenSessions = 500;
constexpr QueryId kGoldenVocabulary = 100;
constexpr uint64_t kGoldenVersion = 1;

std::shared_ptr<const CompactSnapshot> BuildGoldenCompact() {
  const std::vector<AggregatedSession> corpus =
      SeededCorpus(kGoldenSeed, kGoldenSessions, kGoldenVocabulary);
  const auto full = BuildFull(corpus, kGoldenVersion, 1 << 10);
  return CompactSnapshot::FromSnapshot(*full, CompactOptions{.top_k = 10});
}

TEST(SnapshotGoldenTest, CommittedBlobMatchesFreshlyTrainedModel) {
  const std::string golden_path = std::string(SQP_TEST_DATA_DIR) +
                                  kGoldenRelPath;
  const auto compact = BuildGoldenCompact();
  if (std::getenv("SQP_REGEN_GOLDEN") != nullptr) {
    ASSERT_TRUE(SaveCompactSnapshot(*compact, golden_path).ok());
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  ASSERT_TRUE(std::filesystem::exists(golden_path))
      << golden_path << " is missing — regenerate with SQP_REGEN_GOLDEN=1";

  const auto loaded = LoadCompactSnapshot(golden_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto mapped = MapCompactSnapshot(golden_path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  EXPECT_EQ((*loaded)->version(), kGoldenVersion);
  EXPECT_EQ((*loaded)->num_nodes(), compact->num_nodes());
  EXPECT_EQ((*loaded)->num_entries(), compact->num_entries());
  EXPECT_EQ((*loaded)->sigmas(), compact->sigmas());

  // Identical top-10 lists between the golden bytes and a model trained
  // from scratch on the same seeded corpus, through both restore paths.
  const std::vector<std::vector<QueryId>> contexts = PrefixContexts(
      SeededCorpus(kGoldenSeed, kGoldenSessions, kGoldenVocabulary), 500);
  ExpectBitIdentical(*compact, **loaded, contexts, 10);
  ExpectBitIdentical(*compact, **mapped, contexts, 10);
}

}  // namespace
}  // namespace sqp
