// Unit suite for the SIMD-dispatched scoring kernels
// (core/serve_kernels): dispatch-level naming/parsing/clamping, the
// epoch-stamped dense accumulator's generation semantics (stale
// generations must never leak into a new one, including across the
// uint32 epoch wraparound), and the core bit-exactness property — every
// compiled-in kernel level produces byte-identical scores and identical
// touched lists to the scalar reference on randomized runs.

#include "core/serve_kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace sqp::kernels {
namespace {

/// Pins the active dispatch level for one scope and restores it after.
class ActiveLevelGuard {
 public:
  explicit ActiveLevelGuard(SimdLevel level)
      : previous_(SetActiveLevel(level)) {}
  ~ActiveLevelGuard() { SetActiveLevel(previous_); }

 private:
  SimdLevel previous_;
};

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels;
  for (int i = 0; i < kNumSimdLevels; ++i) {
    const SimdLevel level = static_cast<SimdLevel>(i);
    if (LevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

// ----------------------------------------------------------- dispatch

TEST(SimdDispatchTest, LevelNamesRoundTripThroughParse) {
  for (int i = 0; i < kNumSimdLevels; ++i) {
    const SimdLevel level = static_cast<SimdLevel>(i);
    SimdLevel parsed = SimdLevel::kScalar;
    ASSERT_TRUE(ParseSimdLevel(SimdLevelName(level), &parsed))
        << SimdLevelName(level);
    EXPECT_EQ(parsed, level);
  }
}

TEST(SimdDispatchTest, ParseRejectsUnknownNamesUntouched) {
  SimdLevel parsed = SimdLevel::kAvx2;
  EXPECT_FALSE(ParseSimdLevel("avx512", &parsed));
  EXPECT_FALSE(ParseSimdLevel("", &parsed));
  EXPECT_FALSE(ParseSimdLevel("Scalar", &parsed));  // case-sensitive
  EXPECT_EQ(parsed, SimdLevel::kAvx2);
}

TEST(SimdDispatchTest, ScalarIsAlwaysSupportedAndBestIsSupported) {
  EXPECT_TRUE(LevelSupported(SimdLevel::kScalar));
  EXPECT_TRUE(LevelSupported(BestSupportedLevel()));
}

TEST(SimdDispatchTest, SetActiveLevelClampsToSupportedAndRestores) {
  const SimdLevel original = ActiveLevel();
  for (int i = 0; i < kNumSimdLevels; ++i) {
    const SimdLevel requested = static_cast<SimdLevel>(i);
    ActiveLevelGuard guard(requested);
    const SimdLevel active = ActiveLevel();
    EXPECT_TRUE(LevelSupported(active));
    if (LevelSupported(requested)) {
      EXPECT_EQ(active, requested);
    } else {
      EXPECT_EQ(active, BestSupportedLevel());
    }
  }
  EXPECT_EQ(ActiveLevel(), original);
}

TEST(SimdDispatchTest, EveryLevelResolvesToNonNullKernels) {
  for (int i = 0; i < kNumSimdLevels; ++i) {
    const KernelTable& table = KernelsFor(static_cast<SimdLevel>(i));
    EXPECT_NE(table.score_run_u16, nullptr);
    EXPECT_NE(table.score_run_u32, nullptr);
  }
}

// ----------------------------------------------------- dense accumulator

/// The touched list of a view, as a vector (first-touch order).
std::vector<uint32_t> TouchedOf(const DenseAccumulator& acc) {
  return std::vector<uint32_t>(acc.touched, acc.touched + acc.touched_count);
}

TEST(DenseAccumulatorTest, FirstTouchAssignsLaterTouchesAccumulate) {
  AccumulatorStorage storage;
  DenseAccumulator acc = storage.BeginGeneration(8);
  acc.Add(3, 1.5);
  acc.Add(5, 2.0);
  acc.Add(3, 0.25);
  EXPECT_EQ(acc.score[3], 1.75);
  EXPECT_EQ(acc.score[5], 2.0);
  EXPECT_EQ(TouchedOf(acc), (std::vector<uint32_t>{3, 5}));
}

TEST(DenseAccumulatorTest, NewGenerationNeverLeaksStaleScores) {
  // The regression this scheme must never reintroduce: a slot written in
  // generation N must read as empty in generation N+1 — the first Add of
  // the new generation assigns, it must not accumulate onto the stale
  // value. The epoch lives in the storage, so the guarantee holds across
  // per-request views.
  AccumulatorStorage storage;
  DenseAccumulator acc = storage.BeginGeneration(8);
  acc.Add(3, 100.0);
  acc.Add(6, 7.0);
  acc = storage.BeginGeneration(8);
  EXPECT_EQ(acc.touched_count, 0u);
  acc.Add(3, 0.5);
  EXPECT_EQ(acc.score[3], 0.5) << "stale generation leaked into the sum";
  EXPECT_EQ(TouchedOf(acc), (std::vector<uint32_t>{3}))
      << "slot 6 belongs to the old generation";
}

TEST(DenseAccumulatorTest, EpochWraparoundPaysTheExactReset) {
  AccumulatorStorage storage;
  DenseAccumulator acc = storage.BeginGeneration(4);
  acc.Add(1, 5.0);
  // Simulate a slot last touched ~2^32 generations ago whose stamp would
  // alias the post-wrap epoch value (1) if BeginGeneration skipped the
  // exact reset.
  storage.stamp[2] = 1;
  storage.epoch = std::numeric_limits<uint32_t>::max();
  acc = storage.BeginGeneration(4);
  EXPECT_EQ(acc.epoch, 1u);
  EXPECT_EQ(storage.epoch, 1u) << "wrapped epoch must persist in storage";
  acc.Add(2, 0.75);
  EXPECT_EQ(acc.score[2], 0.75) << "aliased stamp survived the wraparound";
  EXPECT_EQ(TouchedOf(acc), (std::vector<uint32_t>{2}));
}

TEST(DenseAccumulatorTest, LargerBoundRegrowsWithoutStaleLeaks) {
  AccumulatorStorage storage;
  DenseAccumulator acc = storage.BeginGeneration(4);
  acc.Add(2, 3.0);
  // Next request against a bigger model: the storage grows and the new
  // view starts a clean generation — grown slots stamp as never-touched,
  // old slots must not leak their previous-generation scores.
  acc = storage.BeginGeneration(16);
  EXPECT_GE(acc.capacity, 16u);
  acc.Add(12, 1.0);
  acc.Add(2, 0.25);
  EXPECT_EQ(acc.score[12], 1.0);
  EXPECT_EQ(acc.score[2], 0.25) << "stale score from the smaller generation";
  EXPECT_EQ(TouchedOf(acc), (std::vector<uint32_t>{12, 2}));
}

// ------------------------------------------------- kernel bit-exactness

/// Runs one (queries, codes, scale) instance through the kernel of every
/// supported level and asserts byte-identical scores and touched lists
/// against the scalar reference.
template <typename QT>
void ExpectAllLevelsMatchScalar(const std::vector<QT>& queries,
                                const std::vector<uint16_t>& codes,
                                double scale, size_t bound) {
  AccumulatorStorage reference_storage;
  DenseAccumulator reference = reference_storage.BeginGeneration(bound);
  ScoreRun(KernelsFor(SimdLevel::kScalar), queries.data(), codes.data(),
           queries.size(), scale, &reference);

  for (const SimdLevel level : SupportedLevels()) {
    AccumulatorStorage storage;
    DenseAccumulator acc = storage.BeginGeneration(bound);
    ScoreRun(KernelsFor(level), queries.data(), codes.data(), queries.size(),
             scale, &acc);
    ASSERT_EQ(TouchedOf(acc), TouchedOf(reference))
        << "touched order diverged at level " << SimdLevelName(level);
    for (const uint32_t q : TouchedOf(reference)) {
      // operator== (not NEAR): the kernels must agree to the last bit.
      ASSERT_EQ(acc.score[q], reference.score[q])
          << "score diverged at level " << SimdLevelName(level)
          << " for query " << q;
    }
  }
}

TEST(ServeKernelsTest, RandomRunsAreBitIdenticalAcrossLevelsU16) {
  std::mt19937 rng(20260808);
  std::uniform_real_distribution<double> scales(1e-12, 2.0);
  for (int trial = 0; trial < 200; ++trial) {
    // Lengths 0..99 cover every SIMD main-loop/tail split; a small id
    // range forces repeat queries so accumulate-vs-assign is exercised.
    const size_t n = rng() % 100;
    const uint32_t id_range = 1 + rng() % 64;
    std::vector<uint16_t> queries(n);
    std::vector<uint16_t> codes(n);
    for (size_t i = 0; i < n; ++i) {
      queries[i] = static_cast<uint16_t>(rng() % id_range);
      codes[i] = static_cast<uint16_t>(rng() & 0xffff);
    }
    ExpectAllLevelsMatchScalar(queries, codes, scales(rng), id_range);
  }
}

TEST(ServeKernelsTest, RandomRunsAreBitIdenticalAcrossLevelsU32) {
  std::mt19937 rng(20260809);
  std::uniform_real_distribution<double> scales(1e-12, 2.0);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = rng() % 100;
    const uint32_t id_base = 70000 + (rng() % 1000);  // beyond u16 range
    const uint32_t id_range = 1 + rng() % 64;
    std::vector<uint32_t> queries(n);
    std::vector<uint16_t> codes(n);
    for (size_t i = 0; i < n; ++i) {
      queries[i] = id_base + rng() % id_range;
      codes[i] = static_cast<uint16_t>(rng() & 0xffff);
    }
    ExpectAllLevelsMatchScalar(queries, codes, scales(rng),
                               id_base + id_range);
  }
}

TEST(ServeKernelsTest, AccumulationAcrossRunsMatchesScalar) {
  // Multiple ScoreRun calls into one generation — the serving walk's
  // actual shape (one call per matched path level, repeated queries
  // across levels accumulate).
  std::mt19937 rng(77);
  AccumulatorStorage reference_storage;
  AccumulatorStorage storage;
  for (const SimdLevel level : SupportedLevels()) {
    DenseAccumulator reference = reference_storage.BeginGeneration(32);
    DenseAccumulator acc = storage.BeginGeneration(32);
    for (int run = 0; run < 5; ++run) {
      const size_t n = 1 + rng() % 40;
      std::vector<uint16_t> queries(n);
      std::vector<uint16_t> codes(n);
      for (size_t i = 0; i < n; ++i) {
        queries[i] = static_cast<uint16_t>(rng() % 32);
        codes[i] = static_cast<uint16_t>(1 + rng() % 1000);
      }
      const double scale = 1.0 / static_cast<double>(1 + run);
      ScoreRun(KernelsFor(SimdLevel::kScalar), queries.data(), codes.data(),
               n, scale, &reference);
      ScoreRun(KernelsFor(level), queries.data(), codes.data(), n, scale,
               &acc);
    }
    ASSERT_EQ(TouchedOf(acc), TouchedOf(reference));
    for (const uint32_t q : TouchedOf(reference)) {
      ASSERT_EQ(acc.score[q], reference.score[q])
          << "level " << SimdLevelName(level) << " query " << q;
    }
  }
}

}  // namespace
}  // namespace sqp::kernels
