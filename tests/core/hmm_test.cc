#include "core/hmm_model.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

/// Two disjoint "intents": queries {0,1,2} chain together, {3,4,5} chain
/// together. An HMM with enough states separates them.
std::vector<AggregatedSession> TwoIntentCorpus() {
  return {
      {{0, 1, 2}, 30}, {{0, 1}, 20}, {{1, 2}, 20},
      {{3, 4, 5}, 30}, {{3, 4}, 20}, {{4, 5}, 20},
  };
}

TrainingData MakeData(const std::vector<AggregatedSession>* sessions,
                      size_t vocab = 6) {
  TrainingData data;
  data.sessions = sessions;
  data.vocabulary_size = vocab;
  return data;
}

HmmOptions SmallOptions() {
  HmmOptions options;
  options.num_states = 4;
  options.em_iterations = 12;
  return options;
}

TEST(HmmModelTest, TrainRejectsBadInput) {
  HmmModel model(SmallOptions());
  TrainingData bad;
  EXPECT_FALSE(model.Train(bad).ok());
  HmmOptions zero_states;
  zero_states.num_states = 0;
  HmmModel degenerate(zero_states);
  const auto sessions = TwoIntentCorpus();
  EXPECT_FALSE(degenerate.Train(MakeData(&sessions)).ok());
}

TEST(HmmModelTest, EmLogLikelihoodNonDecreasing) {
  const auto sessions = TwoIntentCorpus();
  HmmModel model(SmallOptions());
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const auto& curve = model.log_likelihood_curve();
  ASSERT_GE(curve.size(), 2u);
  for (size_t i = 1; i < curve.size(); ++i) {
    // Additive smoothing perturbs the strict EM guarantee slightly; allow
    // a tiny tolerance.
    EXPECT_GE(curve[i], curve[i - 1] - 1e-6) << "iteration " << i;
  }
}

TEST(HmmModelTest, PredictsWithinTheIntent) {
  const auto sessions = TwoIntentCorpus();
  HmmModel model(SmallOptions());
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  // After [0, 1] the in-intent continuation 2 must outrank everything from
  // the other intent.
  const Recommendation rec = model.Recommend(std::vector<QueryId>{0, 1}, 3);
  ASSERT_TRUE(rec.covered);
  ASSERT_FALSE(rec.queries.empty());
  double score_2 = 0.0;
  double best_other = 0.0;
  for (const ScoredQuery& sq : rec.queries) {
    if (sq.query == 2) score_2 = sq.score;
    if (sq.query >= 3) best_other = std::max(best_other, sq.score);
  }
  EXPECT_GT(score_2, best_other);
}

TEST(HmmModelTest, ContextDisambiguates) {
  const auto sessions = TwoIntentCorpus();
  HmmModel model(SmallOptions());
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  // P(5 | [3,4]) must exceed P(5 | [4]) alone exceeds P(5 | [0,1]).
  const double in_intent =
      model.ConditionalProb(std::vector<QueryId>{3, 4}, 5);
  const double cross_intent =
      model.ConditionalProb(std::vector<QueryId>{0, 1}, 5);
  EXPECT_GT(in_intent, cross_intent);
}

TEST(HmmModelTest, CoverageFollowsSeenQueries) {
  const auto sessions = TwoIntentCorpus();
  HmmModel model(SmallOptions());
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_TRUE(model.Covers(std::vector<QueryId>{0}));
  EXPECT_TRUE(model.Covers(std::vector<QueryId>{99, 4}));  // last seen
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{0, 99}));  // last unseen
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{}));
}

TEST(HmmModelTest, ConditionalProbNormalized) {
  const auto sessions = TwoIntentCorpus();
  HmmModel model(SmallOptions());
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  double total = 0.0;
  for (QueryId q = 0; q < 6; ++q) {
    total += model.ConditionalProb(std::vector<QueryId>{0, 1}, q);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HmmModelTest, DeterministicForSeed) {
  const auto sessions = TwoIntentCorpus();
  HmmModel a(SmallOptions());
  HmmModel b(SmallOptions());
  ASSERT_TRUE(a.Train(MakeData(&sessions)).ok());
  ASSERT_TRUE(b.Train(MakeData(&sessions)).ok());
  const Recommendation ra = a.Recommend(std::vector<QueryId>{0, 1}, 3);
  const Recommendation rb = b.Recommend(std::vector<QueryId>{0, 1}, 3);
  ASSERT_EQ(ra.queries.size(), rb.queries.size());
  for (size_t i = 0; i < ra.queries.size(); ++i) {
    EXPECT_EQ(ra.queries[i].query, rb.queries[i].query);
    EXPECT_DOUBLE_EQ(ra.queries[i].score, rb.queries[i].score);
  }
}

TEST(HmmModelTest, DifferentSeedsMayDiffer) {
  const auto sessions = TwoIntentCorpus();
  HmmOptions other = SmallOptions();
  other.seed = 77;
  HmmModel a(SmallOptions());
  HmmModel b(other);
  ASSERT_TRUE(a.Train(MakeData(&sessions)).ok());
  ASSERT_TRUE(b.Train(MakeData(&sessions)).ok());
  // Both remain valid models regardless of the random start.
  EXPECT_TRUE(a.Covers(std::vector<QueryId>{0}));
  EXPECT_TRUE(b.Covers(std::vector<QueryId>{0}));
}

TEST(HmmModelTest, StatsAccounting) {
  const auto sessions = TwoIntentCorpus();
  HmmModel model(SmallOptions());
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const ModelStats stats = model.Stats();
  EXPECT_EQ(stats.name, "HMM");
  EXPECT_EQ(stats.num_states, 4u);
  EXPECT_EQ(stats.num_entries, 24u);  // 4 states x 6 queries
  EXPECT_GT(stats.memory_bytes, 0u);
}

TEST(HmmModelTest, UncoveredRecommendationEmpty) {
  const auto sessions = TwoIntentCorpus();
  HmmModel model(SmallOptions());
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const Recommendation rec = model.Recommend(std::vector<QueryId>{99}, 5);
  EXPECT_FALSE(rec.covered);
  EXPECT_TRUE(rec.queries.empty());
}

}  // namespace
}  // namespace sqp
