#include "core/cooccurrence_model.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

std::vector<AggregatedSession> SmallCorpus() {
  return {
      {{0, 1}, 2},  // a b  x2
      {{0, 2}, 1},  // a c
      {{1, 2}, 1},  // b c
      {{3}, 5},     // d (singleton)
  };
}

TrainingData MakeData(const std::vector<AggregatedSession>* sessions,
                      size_t vocab = 4) {
  TrainingData data;
  data.sessions = sessions;
  data.vocabulary_size = vocab;
  return data;
}

TEST(CooccurrenceModelTest, CoOccurrenceIsSymmetric) {
  const auto sessions = SmallCorpus();
  CooccurrenceModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  // c co-occurs with a and b, so unlike Adjacency it covers context [c].
  EXPECT_TRUE(model.Covers(std::vector<QueryId>{2}));
  const Recommendation rec = model.Recommend(std::vector<QueryId>{2}, 5);
  ASSERT_EQ(rec.queries.size(), 2u);
}

TEST(CooccurrenceModelTest, HigherCoverageThanAdjacencySemantics) {
  const auto sessions = SmallCorpus();
  CooccurrenceModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_TRUE(model.Covers(std::vector<QueryId>{0}));
  EXPECT_TRUE(model.Covers(std::vector<QueryId>{1}));
  EXPECT_TRUE(model.Covers(std::vector<QueryId>{2}));
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{3}));  // singleton only
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{99}));
}

TEST(CooccurrenceModelTest, CountsWeightedByFrequency) {
  const auto sessions = SmallCorpus();
  CooccurrenceModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const Recommendation rec = model.Recommend(std::vector<QueryId>{0}, 5);
  ASSERT_EQ(rec.queries.size(), 2u);
  EXPECT_EQ(rec.queries[0].query, 1u);  // co-occurs 2x vs c's 1x
  EXPECT_NEAR(rec.queries[0].score, 2.0 / 3.0, 1e-12);
}

TEST(CooccurrenceModelTest, OrderBlind) {
  const std::vector<AggregatedSession> sessions{{{4, 5}, 1}};
  CooccurrenceModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions, 6)).ok());
  // Both directions recommend the other query.
  EXPECT_EQ(model.Recommend(std::vector<QueryId>{4}, 1).queries[0].query, 5u);
  EXPECT_EQ(model.Recommend(std::vector<QueryId>{5}, 1).queries[0].query, 4u);
}

TEST(CooccurrenceModelTest, SelfPairsExcluded) {
  const std::vector<AggregatedSession> sessions{{{7, 7, 8}, 1}};
  CooccurrenceModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions, 9)).ok());
  const Recommendation rec = model.Recommend(std::vector<QueryId>{7}, 5);
  ASSERT_EQ(rec.queries.size(), 1u);
  EXPECT_EQ(rec.queries[0].query, 8u);
}

TEST(CooccurrenceModelTest, DistantQueriesInSessionStillCoOccur) {
  const std::vector<AggregatedSession> sessions{{{1, 2, 3}, 1}};
  CooccurrenceModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const Recommendation rec = model.Recommend(std::vector<QueryId>{1}, 5);
  ASSERT_EQ(rec.queries.size(), 2u);  // both 2 (adjacent) and 3 (distant)
}

TEST(CooccurrenceModelTest, ConditionalProbNormalized) {
  const auto sessions = SmallCorpus();
  CooccurrenceModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  double total = 0.0;
  for (QueryId q = 0; q < 4; ++q) {
    total += model.ConditionalProb(std::vector<QueryId>{2}, q);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(CooccurrenceModelTest, StatsAccounting) {
  const auto sessions = SmallCorpus();
  CooccurrenceModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const ModelStats stats = model.Stats();
  EXPECT_EQ(stats.name, "Co-occurrence");
  EXPECT_EQ(stats.num_states, 3u);  // a, b, c all co-occur with something
  // Symmetric entries: a-{b,c}, b-{a,c}, c-{a,b}.
  EXPECT_EQ(stats.num_entries, 6u);
}

TEST(CooccurrenceModelTest, EmptyContextUncovered) {
  const auto sessions = SmallCorpus();
  CooccurrenceModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{}));
  EXPECT_FALSE(model.Recommend(std::vector<QueryId>{}, 5).covered);
}

}  // namespace
}  // namespace sqp
