#include <memory>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/model_factory.h"
#include "log/context_builder.h"
#include "log/query_dictionary.h"
#include "log/session_aggregator.h"
#include "log/session_segmenter.h"
#include "synth/log_synthesizer.h"

namespace sqp {
namespace {

/// Shared fixture: a small synthetic corpus and the trained paper suite,
/// parameterized by generator seed, so every invariant is checked across
/// genuinely different corpora.
class ModelPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    vocab_ = std::make_unique<Vocabulary>(
        VocabularyConfig{.num_terms = 500, .synonym_fraction = 0.4}, 301);
    topics_ = std::make_unique<TopicModel>(
        vocab_.get(),
        TopicModelConfig{.num_topics = 10,
                         .terms_per_topic = 12,
                         .intents_per_topic = 8,
                         .chain_depth = 4},
        302);
    SynthesizerConfig config;
    config.num_sessions = 4000;
    config.num_machines = 60;
    LogSynthesizer synth(topics_.get(), config);
    const SynthCorpus corpus = synth.Synthesize(GetParam(), nullptr);

    std::vector<Session> segmented;
    SQP_CHECK_OK(
        SessionSegmenter().Segment(corpus.records, &dict_, &segmented));
    SessionAggregator aggregator;
    aggregator.Add(segmented);
    sessions_ = aggregator.Finish();

    data_.sessions = &sessions_;
    data_.vocabulary_size = dict_.size();
    suite_ = CreatePaperSuite(/*vmm_max_depth=*/5);
    SQP_CHECK_OK(TrainAll(suite_, data_));

    // Probe contexts: prefix contexts of aggregated sessions + unknowns.
    for (size_t i = 0; i < sessions_.size() && probes_.size() < 300; i += 3) {
      const auto& q = sessions_[i].queries;
      for (size_t len = 1; len < q.size() && len <= 4; ++len) {
        probes_.emplace_back(q.begin(), q.begin() + static_cast<ptrdiff_t>(len));
      }
    }
    probes_.push_back({static_cast<QueryId>(dict_.size() + 5)});
  }

  // Suffix match so that depth-bounded names like "5-bounded VMM (0.05)"
  // are found by their paper name "VMM (0.05)".
  PredictionModel* Find(std::string_view name) {
    for (const auto& model : suite_) {
      const std::string_view model_name = model->Name();
      if (model_name == name ||
          (model_name.size() > name.size() &&
           model_name.substr(model_name.size() - name.size()) == name)) {
        return model.get();
      }
    }
    return nullptr;
  }

  std::unique_ptr<Vocabulary> vocab_;
  std::unique_ptr<TopicModel> topics_;
  QueryDictionary dict_;
  std::vector<AggregatedSession> sessions_;
  TrainingData data_;
  std::vector<std::unique_ptr<PredictionModel>> suite_;
  std::vector<std::vector<QueryId>> probes_;
};

TEST_P(ModelPropertyTest, RecommendationScoresDescendAndDedup) {
  for (const auto& model : suite_) {
    for (const auto& context : probes_) {
      const Recommendation rec = model->Recommend(context, 5);
      std::unordered_set<QueryId> seen;
      for (size_t i = 0; i < rec.queries.size(); ++i) {
        EXPECT_TRUE(seen.insert(rec.queries[i].query).second)
            << model->Name();
        if (i > 0) {
          EXPECT_GE(rec.queries[i - 1].score, rec.queries[i].score)
              << model->Name();
        }
        EXPECT_GT(rec.queries[i].score, 0.0) << model->Name();
      }
      EXPECT_EQ(rec.covered, !rec.queries.empty()) << model->Name();
    }
  }
}

TEST_P(ModelPropertyTest, CoverageHierarchyMatchesTableVI) {
  PredictionModel* adjacency = Find("Adjacency");
  PredictionModel* cooccurrence = Find("Co-occurrence");
  PredictionModel* ngram = Find("N-gram");
  PredictionModel* vmm = Find("VMM (0.05)");
  PredictionModel* mvmm = Find("MVMM");
  ASSERT_NE(adjacency, nullptr);
  for (const auto& context : probes_) {
    const bool adj = adjacency->Covers(context);
    // N-gram coverage implies Adjacency coverage (reason 4 is extra).
    if (ngram->Covers(context)) {
      EXPECT_TRUE(adj) << "ngram covered but adjacency not";
    }
    // Adjacency coverage implies Co-occurrence coverage (reason 3 is extra).
    if (adj) {
      EXPECT_TRUE(cooccurrence->Covers(context));
    }
    // VMM and MVMM coverage equal Adjacency coverage (paper Fig. 10).
    EXPECT_EQ(vmm->Covers(context), adj);
    EXPECT_EQ(mvmm->Covers(context), adj);
  }
}

TEST_P(ModelPropertyTest, ConditionalProbIsAProbability) {
  for (const auto& model : suite_) {
    for (size_t i = 0; i < probes_.size(); i += 17) {
      const auto& context = probes_[i];
      // Spot-check a few next-query values.
      for (QueryId next : {QueryId{0}, QueryId{1},
                           static_cast<QueryId>(dict_.size() - 1)}) {
        const double p = model->ConditionalProb(context, next);
        EXPECT_GE(p, 0.0) << model->Name();
        EXPECT_LE(p, 1.0 + 1e-9) << model->Name();
      }
    }
  }
}

TEST_P(ModelPropertyTest, RecommendIsDeterministic) {
  for (const auto& model : suite_) {
    for (size_t i = 0; i < probes_.size(); i += 11) {
      const Recommendation a = model->Recommend(probes_[i], 5);
      const Recommendation b = model->Recommend(probes_[i], 5);
      ASSERT_EQ(a.queries.size(), b.queries.size()) << model->Name();
      for (size_t j = 0; j < a.queries.size(); ++j) {
        EXPECT_EQ(a.queries[j].query, b.queries[j].query) << model->Name();
      }
    }
  }
}

TEST_P(ModelPropertyTest, TopNMonotoneInN) {
  for (const auto& model : suite_) {
    for (size_t i = 0; i < probes_.size(); i += 13) {
      const Recommendation top1 = model->Recommend(probes_[i], 1);
      const Recommendation top5 = model->Recommend(probes_[i], 5);
      EXPECT_LE(top1.queries.size(), 1u);
      EXPECT_LE(top1.queries.size(), top5.queries.size());
      if (!top1.queries.empty()) {
        EXPECT_EQ(top1.queries[0].query, top5.queries[0].query)
            << model->Name();
      }
    }
  }
}

TEST_P(ModelPropertyTest, StatsArePopulated) {
  for (const auto& model : suite_) {
    const ModelStats stats = model->Stats();
    EXPECT_FALSE(stats.name.empty());
    EXPECT_GT(stats.num_states, 0u) << model->Name();
    EXPECT_GT(stats.memory_bytes, 0u) << model->Name();
  }
}

TEST_P(ModelPropertyTest, VmmEpsilonMonotoneStateCount) {
  // Growing epsilon prunes the PST monotonically (paper Section V-D).
  const auto* vmm0 = dynamic_cast<const VmmModel*>(Find("VMM (0.0)"));
  const auto* vmm05 = dynamic_cast<const VmmModel*>(Find("VMM (0.05)"));
  const auto* vmm1 = dynamic_cast<const VmmModel*>(Find("VMM (0.1)"));
  ASSERT_NE(vmm0, nullptr);
  EXPECT_GE(vmm0->pst().size(), vmm05->pst().size());
  EXPECT_GE(vmm05->pst().size(), vmm1->pst().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelPropertyTest,
                         ::testing::Values(1001, 2002, 3003));

}  // namespace
}  // namespace sqp
