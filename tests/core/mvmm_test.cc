#include "core/mvmm_model.h"

#include <set>

#include <gtest/gtest.h>

#include "core/adjacency_model.h"

namespace sqp {
namespace {

constexpr QueryId kQ0 = 0;
constexpr QueryId kQ1 = 1;

std::vector<AggregatedSession> TableIISessions() {
  return {
      {{kQ1, kQ0, kQ0}, 3}, {{kQ1, kQ0, kQ1}, 7}, {{kQ0, kQ0}, 78},
      {{kQ1, kQ0}, 5},      {{kQ0, kQ1, kQ0}, 1}, {{kQ0, kQ1, kQ1}, 1},
      {{kQ1, kQ1}, 3},      {{kQ0}, 10},
  };
}

TrainingData MakeData(const std::vector<AggregatedSession>* sessions,
                      size_t vocab = 2) {
  TrainingData data;
  data.sessions = sessions;
  data.vocabulary_size = vocab;
  return data;
}

TEST(MvmmOptionsTest, DefaultComponentsMatchPaper) {
  // 11 components (paper Section V-D) spanning D = 1..5 (Section IV-C.2)
  // and epsilon in {0.0, 0.05, 0.1}.
  const auto components = MvmmOptions::DefaultComponents(0);
  ASSERT_EQ(components.size(), 11u);
  std::set<size_t> depths;
  std::set<double> epsilons;
  for (const VmmOptions& c : components) {
    EXPECT_GE(c.max_depth, 1u);
    EXPECT_LE(c.max_depth, 5u);
    depths.insert(c.max_depth);
    epsilons.insert(c.epsilon);
  }
  EXPECT_EQ(depths.size(), 5u);
  EXPECT_EQ(epsilons, (std::set<double>{0.0, 0.05, 0.1}));
}

TEST(MvmmOptionsTest, DefaultComponentsRespectDepthBound) {
  const auto components = MvmmOptions::DefaultComponents(3);
  ASSERT_EQ(components.size(), 7u);
  for (const VmmOptions& c : components) {
    EXPECT_LE(c.max_depth, 3u);
  }
}

TEST(MvmmModelTest, TrainsElevenComponentsByDefault) {
  const auto sessions = TableIISessions();
  MvmmModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_EQ(model.components().size(), 11u);
  EXPECT_EQ(model.sigmas().size(), 11u);
}

TEST(MvmmModelTest, CustomComponents) {
  MvmmOptions options;
  options.components = {VmmOptions{.epsilon = 0.0, .max_depth = 1},
                        VmmOptions{.epsilon = 0.0, .max_depth = 2}};
  const auto sessions = TableIISessions();
  MvmmModel model(options);
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  ASSERT_EQ(model.components().size(), 2u);
  EXPECT_EQ(model.components()[0]->options().max_depth, 1u);
}

TEST(MvmmModelTest, SigmaFitImprovesObjective) {
  const auto sessions = TableIISessions();
  MvmmModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const MvmmFitReport& report = model.fit_report();
  EXPECT_GE(report.final_objective, report.initial_objective);
  EXPECT_GT(report.iterations, 0u);
}

TEST(MvmmModelTest, SigmasStayAboveFloor) {
  const auto sessions = TableIISessions();
  MvmmModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  for (double sigma : model.sigmas()) {
    EXPECT_GE(sigma, model.options().min_sigma);
  }
}

TEST(MvmmModelTest, MixtureWeightsNormalized) {
  const auto sessions = TableIISessions();
  MvmmModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  for (const std::vector<QueryId>& context :
       {std::vector<QueryId>{kQ0}, std::vector<QueryId>{kQ1, kQ0},
        std::vector<QueryId>{kQ1, kQ1, kQ0}}) {
    const std::vector<double> weights = model.MixtureWeights(context);
    double total = 0.0;
    for (double w : weights) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(MvmmModelTest, RecommendationsCombineComponents) {
  const auto sessions = TableIISessions();
  MvmmModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const Recommendation rec =
      model.Recommend(std::vector<QueryId>{kQ1, kQ0}, 2);
  ASSERT_TRUE(rec.covered);
  ASSERT_EQ(rec.queries.size(), 2u);
  // Every component that matched [q1,q0] fully predicts q1 with 0.7.
  EXPECT_EQ(rec.queries[0].query, kQ1);
  EXPECT_GE(rec.matched_length, 1u);
}

TEST(MvmmModelTest, CoverageMatchesAdjacency) {
  // Paper Fig. 10: Adjacency, VMM and MVMM tie on coverage.
  const auto sessions = TableIISessions();
  MvmmModel mvmm;
  AdjacencyModel adjacency;
  ASSERT_TRUE(mvmm.Train(MakeData(&sessions)).ok());
  ASSERT_TRUE(adjacency.Train(MakeData(&sessions)).ok());
  const std::vector<std::vector<QueryId>> contexts = {
      {kQ0},      {kQ1},       {kQ1, kQ0}, {kQ0, kQ1},
      {57},       {kQ0, 57},   {57, kQ0},  {},
  };
  for (const auto& context : contexts) {
    EXPECT_EQ(mvmm.Covers(context), adjacency.Covers(context))
        << "context size " << context.size();
  }
}

TEST(MvmmModelTest, ConditionalProbNormalized) {
  const auto sessions = TableIISessions();
  MvmmModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  for (const std::vector<QueryId>& context :
       {std::vector<QueryId>{kQ0}, std::vector<QueryId>{kQ1, kQ1}}) {
    double total = 0.0;
    for (QueryId q = 0; q < 2; ++q) {
      total += model.ConditionalProb(context, q);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(MvmmModelTest, MergedStatsBoundedByComponentSum) {
  const auto sessions = TableIISessions();
  MvmmModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const ModelStats stats = model.Stats();
  EXPECT_EQ(stats.name, "MVMM");

  uint64_t max_component_states = 0;
  uint64_t total_component_bytes = 0;
  for (const auto& component : model.components()) {
    const ModelStats cs = component->Stats();
    max_component_states = std::max(max_component_states, cs.num_states);
    total_component_bytes += cs.memory_bytes;
  }
  // The merged PST has as many nodes as the largest component (all
  // components' nodes are subsets of the epsilon = 0 tree) and costs far
  // less than storing all components separately (paper Section V-F.2).
  EXPECT_EQ(stats.num_states, max_component_states);
  EXPECT_LT(stats.memory_bytes, total_component_bytes);
}

TEST(MvmmModelTest, MergedStatsDescribeTheRealSharedStructure) {
  // Satellite check for the merged-PST accounting: Stats() must report the
  // actual shared flat layout — every node stored once (node header,
  // context ids, next counts, child edges), one membership mask per node,
  // and the dense root fan-out index — not an estimate.
  const auto sessions = TableIISessions();
  MvmmModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const std::shared_ptr<const Pst>& shared = model.shared_pst();
  ASSERT_NE(shared, nullptr);
  ASSERT_TRUE(shared->is_shared());

  const ModelStats stats = model.Stats();
  EXPECT_EQ(stats.num_states, shared->size());
  EXPECT_EQ(stats.num_entries, shared->num_entries());
  EXPECT_EQ(stats.memory_bytes, shared->memory_bytes());

  // Recompute the flat-layout accounting independently from the public
  // node data and assert it matches Pst::memory_bytes exactly.
  uint64_t expected = 0;
  for (const Pst::Node& node : shared->nodes()) {
    expected += sizeof(Pst::Node);
    expected += node.context.size() * sizeof(QueryId);
    expected += node.nexts.size() * sizeof(NextQueryCount);
    expected += node.children.size() * sizeof(Pst::Edge);
  }
  expected += shared->size() * sizeof(Pst::ViewMask);
  if (!shared->root().children.empty()) {
    // Dense root fan-out index spans query ids 0..max root child query.
    expected +=
        (shared->root().children.back().query + 1ull) * sizeof(int32_t);
  }
  EXPECT_EQ(stats.memory_bytes, expected);

  // The mask vector is exactly one entry per node, every node belongs to
  // at least one component, and the per-view accounting sums to the
  // components' own stats.
  ASSERT_EQ(shared->view_masks().size(), shared->size());
  for (Pst::ViewMask mask : shared->view_masks()) EXPECT_NE(mask, 0u);
  for (size_t c = 0; c < model.components().size(); ++c) {
    const ModelStats cs = model.components()[c]->Stats();
    EXPECT_EQ(cs.num_states, shared->view_num_states(c));
    EXPECT_EQ(cs.num_entries, shared->view_num_entries(c));
    EXPECT_EQ(cs.memory_bytes, shared->view_memory_bytes(c));
  }
}

TEST(MvmmModelTest, FallbackBeyondMaskWidthStillServes) {
  // More components than the view mask holds (Pst::kMaxViews = 64) take
  // the standalone-component fallback; every serving path must still work.
  MvmmOptions options;
  for (size_t i = 0; i < Pst::kMaxViews + 2; ++i) {
    VmmOptions c;
    c.max_depth = 1 + (i % 5);
    c.epsilon = static_cast<double>(i % 3) * 0.05;
    options.components.push_back(c);
  }
  const auto sessions = TableIISessions();
  MvmmModel model(options);
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  EXPECT_EQ(model.shared_pst(), nullptr);
  EXPECT_EQ(model.components().size(), Pst::kMaxViews + 2);

  EXPECT_TRUE(model.Covers(std::vector<QueryId>{kQ0}));
  EXPECT_FALSE(model.Covers(std::vector<QueryId>{57}));
  const auto weights = model.MixtureWeights(std::vector<QueryId>{kQ1, kQ0});
  double total = 0.0;
  for (double w : weights) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  const Recommendation rec = model.Recommend(std::vector<QueryId>{kQ1, kQ0}, 2);
  ASSERT_TRUE(rec.covered);
  ASSERT_EQ(rec.queries.size(), 2u);
  EXPECT_EQ(rec.queries[0].query, kQ1);
  double p = 0.0;
  for (QueryId q = 0; q < 2; ++q) {
    p += model.ConditionalProb(std::vector<QueryId>{kQ0}, q);
  }
  EXPECT_NEAR(p, 1.0, 1e-9);
  const ModelStats stats = model.Stats();
  EXPECT_GT(stats.num_states, 0u);
  EXPECT_GT(stats.memory_bytes, 0u);
}

TEST(MvmmModelTest, RequiresComponents) {
  MvmmOptions options;
  options.components = {};  // replaced by defaults in the constructor
  MvmmModel model(options);
  const auto sessions = TableIISessions();
  EXPECT_TRUE(model.Train(MakeData(&sessions)).ok());
}

TEST(MvmmModelTest, UncoveredContextEmptyRecommendation) {
  const auto sessions = TableIISessions();
  MvmmModel model;
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const Recommendation rec = model.Recommend(std::vector<QueryId>{57}, 5);
  EXPECT_FALSE(rec.covered);
  EXPECT_TRUE(rec.queries.empty());
}

TEST(MvmmModelTest, ParallelTrainingMatchesSequential) {
  const auto sessions = TableIISessions();
  MvmmModel sequential;
  MvmmOptions parallel_options;
  parallel_options.training_threads = 4;
  MvmmModel parallel(parallel_options);
  ASSERT_TRUE(sequential.Train(MakeData(&sessions)).ok());
  ASSERT_TRUE(parallel.Train(MakeData(&sessions)).ok());
  ASSERT_EQ(sequential.sigmas().size(), parallel.sigmas().size());
  for (size_t i = 0; i < sequential.sigmas().size(); ++i) {
    EXPECT_DOUBLE_EQ(sequential.sigmas()[i], parallel.sigmas()[i]);
  }
  for (const std::vector<QueryId>& context :
       {std::vector<QueryId>{kQ0}, std::vector<QueryId>{kQ1, kQ0},
        std::vector<QueryId>{kQ1, kQ1}}) {
    const Recommendation a = sequential.Recommend(context, 2);
    const Recommendation b = parallel.Recommend(context, 2);
    ASSERT_EQ(a.queries.size(), b.queries.size());
    for (size_t i = 0; i < a.queries.size(); ++i) {
      EXPECT_EQ(a.queries[i].query, b.queries[i].query);
      EXPECT_DOUBLE_EQ(a.queries[i].score, b.queries[i].score);
    }
  }
}

TEST(MvmmModelTest, UniformWeightingIsUniform) {
  const auto sessions = TableIISessions();
  MvmmOptions options;
  options.weighting = MixtureWeighting::kUniform;
  MvmmModel model(options);
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  const auto weights = model.MixtureWeights(std::vector<QueryId>{kQ1, kQ0});
  for (double w : weights) {
    EXPECT_NEAR(w, 1.0 / static_cast<double>(weights.size()), 1e-12);
  }
  // No Newton fit runs under uniform weighting.
  EXPECT_EQ(model.fit_report().iterations, 0u);
}

TEST(MvmmModelTest, LongestMatchWeightingSelectsDeepComponents) {
  const auto sessions = TableIISessions();
  MvmmOptions options;
  options.weighting = MixtureWeighting::kLongestMatch;
  // One depth-1 component and one unbounded component.
  options.components = {VmmOptions{.epsilon = 0.0, .max_depth = 1},
                        VmmOptions{.epsilon = 0.0}};
  MvmmModel model(options);
  ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
  // Context [q1,q0]: the unbounded component matches depth 2, the bounded
  // one only depth 1, so all weight lands on the unbounded component.
  const auto weights = model.MixtureWeights(std::vector<QueryId>{kQ1, kQ0});
  EXPECT_NEAR(weights[0], 0.0, 1e-12);
  EXPECT_NEAR(weights[1], 1.0, 1e-12);
}

TEST(MvmmModelTest, WeightingSchemesAllProduceRecommendations) {
  const auto sessions = TableIISessions();
  for (MixtureWeighting weighting :
       {MixtureWeighting::kGaussianEditDistance, MixtureWeighting::kUniform,
        MixtureWeighting::kLongestMatch}) {
    MvmmOptions options;
    options.weighting = weighting;
    MvmmModel model(options);
    ASSERT_TRUE(model.Train(MakeData(&sessions)).ok());
    const Recommendation rec =
        model.Recommend(std::vector<QueryId>{kQ1, kQ0}, 2);
    EXPECT_TRUE(rec.covered);
    EXPECT_FALSE(rec.queries.empty());
  }
}

TEST(MvmmModelTest, DeterministicAcrossTrainings) {
  const auto sessions = TableIISessions();
  MvmmModel a;
  MvmmModel b;
  ASSERT_TRUE(a.Train(MakeData(&sessions)).ok());
  ASSERT_TRUE(b.Train(MakeData(&sessions)).ok());
  ASSERT_EQ(a.sigmas().size(), b.sigmas().size());
  for (size_t i = 0; i < a.sigmas().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.sigmas()[i], b.sigmas()[i]);
  }
  const auto rec_a = a.Recommend(std::vector<QueryId>{kQ1, kQ1}, 2);
  const auto rec_b = b.Recommend(std::vector<QueryId>{kQ1, kQ1}, 2);
  ASSERT_EQ(rec_a.queries.size(), rec_b.queries.size());
  for (size_t i = 0; i < rec_a.queries.size(); ++i) {
    EXPECT_EQ(rec_a.queries[i].query, rec_b.queries[i].query);
    EXPECT_DOUBLE_EQ(rec_a.queries[i].score, rec_b.queries[i].score);
  }
}

}  // namespace
}  // namespace sqp
