// Property tests for the shared multi-view PST (Pst::BuildShared): every
// view of the shared tree must be indistinguishable from the tree a
// standalone Pst::Build would produce with the same options — same node
// set, same counts, same matches — and the merged accounting must describe
// the real shared structure.

#include <gtest/gtest.h>

#include "core/pst.h"
#include "util/random.h"

namespace sqp {
namespace {

std::vector<AggregatedSession> RandomCorpus(uint64_t seed, size_t vocab,
                                            size_t num_sessions) {
  Rng rng(seed);
  std::vector<AggregatedSession> sessions;
  sessions.reserve(num_sessions);
  for (size_t i = 0; i < num_sessions; ++i) {
    AggregatedSession session;
    const size_t len = 1 + rng.Geometric(0.45) % 8;
    for (size_t j = 0; j < len; ++j) {
      session.queries.push_back(static_cast<QueryId>(rng.UniformInt(vocab)));
    }
    session.frequency = 1 + rng.UniformInt(20);
    sessions.push_back(std::move(session));
  }
  return sessions;
}

std::vector<PstOptions> TestViews() {
  // A spread over every option axis: epsilon x depth x min_support,
  // mirroring the MVMM's heterogeneous component set.
  return {
      PstOptions{.epsilon = 0.0, .max_depth = 1, .min_support = 1},
      PstOptions{.epsilon = 0.0, .max_depth = 3, .min_support = 1},
      PstOptions{.epsilon = 0.0, .max_depth = 5, .min_support = 1},
      PstOptions{.epsilon = 0.05, .max_depth = 3, .min_support = 1},
      PstOptions{.epsilon = 0.05, .max_depth = 5, .min_support = 10},
      PstOptions{.epsilon = 0.1, .max_depth = 5, .min_support = 1},
      PstOptions{.epsilon = 0.5, .max_depth = 4, .min_support = 5},
  };
}

class PstSharedViewTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    sessions_ = RandomCorpus(GetParam(), /*vocab=*/35, /*num_sessions=*/350);
    index_.Build(sessions_, ContextIndex::Mode::kSubstring);
    views_ = TestViews();
    SQP_CHECK_OK(shared_.BuildShared(index_, views_));
    standalone_.resize(views_.size());
    for (size_t v = 0; v < views_.size(); ++v) {
      SQP_CHECK_OK(standalone_[v].Build(index_, views_[v]));
    }
  }

  std::vector<AggregatedSession> sessions_;
  ContextIndex index_;
  std::vector<PstOptions> views_;
  Pst shared_;
  std::vector<Pst> standalone_;
};

TEST_P(PstSharedViewTest, ExtractedViewsEqualStandaloneTrees) {
  for (size_t v = 0; v < views_.size(); ++v) {
    const Pst extracted = shared_.ExtractView(v);
    ASSERT_EQ(extracted.size(), standalone_[v].size()) << "view " << v;
    for (size_t i = 0; i < extracted.size(); ++i) {
      const Pst::Node& a = extracted.nodes()[i];
      const Pst::Node& b = standalone_[v].nodes()[i];
      EXPECT_EQ(a.context, b.context);
      EXPECT_EQ(a.total_count, b.total_count);
      EXPECT_EQ(a.start_count, b.start_count);
      EXPECT_EQ(a.parent, b.parent);
      ASSERT_EQ(a.nexts.size(), b.nexts.size());
      for (size_t j = 0; j < a.nexts.size(); ++j) {
        EXPECT_EQ(a.nexts[j].query, b.nexts[j].query);
        EXPECT_EQ(a.nexts[j].count, b.nexts[j].count);
      }
      ASSERT_EQ(a.children.size(), b.children.size());
      for (size_t j = 0; j < a.children.size(); ++j) {
        EXPECT_EQ(a.children[j].query, b.children[j].query);
        EXPECT_EQ(a.children[j].child, b.children[j].child);
      }
    }
  }
}

TEST_P(PstSharedViewTest, ViewMatchesAgreeWithStandaloneMatches) {
  Rng rng(GetParam() + 17);
  for (int round = 0; round < 200; ++round) {
    std::vector<QueryId> context;
    const size_t len = 1 + rng.UniformInt(7);
    for (size_t j = 0; j < len; ++j) {
      context.push_back(static_cast<QueryId>(rng.UniformInt(40)));
    }
    for (size_t v = 0; v < views_.size(); ++v) {
      size_t shared_matched = 99;
      size_t standalone_matched = 99;
      const Pst::Node* shared_state =
          shared_.MatchLongestSuffixView(context, v, &shared_matched);
      const Pst::Node* standalone_state =
          standalone_[v].MatchLongestSuffix(context, &standalone_matched);
      ASSERT_EQ(shared_matched, standalone_matched) << "view " << v;
      EXPECT_EQ(shared_state->context, standalone_state->context);
      EXPECT_EQ(shared_state->total_count, standalone_state->total_count);
    }
  }
}

TEST_P(PstSharedViewTest, ViewAccountingMatchesStandalone) {
  for (size_t v = 0; v < views_.size(); ++v) {
    EXPECT_EQ(shared_.view_num_states(v), standalone_[v].size());
    EXPECT_EQ(shared_.view_num_entries(v), standalone_[v].num_entries());
    // The per-view byte accounting must equal what the view actually costs
    // as a standalone tree (including its dense root fan-out index).
    EXPECT_EQ(shared_.view_memory_bytes(v), standalone_[v].memory_bytes())
        << "view " << v;
  }
}

TEST_P(PstSharedViewTest, SharedTreeIsTheUnionOfItsViews) {
  // Every node carries at least one view bit (zero-mask nodes are
  // compacted away), and the tree is exactly as large as its largest view
  // demands, never larger.
  ASSERT_EQ(shared_.view_masks().size(), shared_.size());
  size_t max_view_states = 0;
  for (size_t v = 0; v < views_.size(); ++v) {
    max_view_states =
        std::max<size_t>(max_view_states, shared_.view_num_states(v));
  }
  EXPECT_EQ(shared_.size(), max_view_states);  // one view is epsilon-0/deepest
  for (size_t i = 0; i < shared_.size(); ++i) {
    EXPECT_NE(shared_.view_masks()[i], 0u) << "node " << i;
  }
}

TEST_P(PstSharedViewTest, FlatMatchAgreesWithFindNodeOnEveryStoredContext) {
  // The flat edge layout must resolve every stored context both through
  // the longest-suffix walk and through exact lookup.
  for (const Pst::Node& node : shared_.nodes()) {
    if (node.context.empty()) continue;
    size_t matched = 0;
    const Pst::Node* state = shared_.MatchLongestSuffix(node.context, &matched);
    EXPECT_EQ(matched, node.context.size());
    EXPECT_EQ(state, &node);
    EXPECT_EQ(shared_.FindNode(node.context), &node);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, PstSharedViewTest,
                         ::testing::Values(uint64_t{3}, uint64_t{42},
                                           uint64_t{20091}));

}  // namespace
}  // namespace sqp
