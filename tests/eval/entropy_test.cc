#include "eval/entropy.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sqp {
namespace {

TEST(ContextEntropyTest, PaperJavaExample) {
  ContextEntry entry;
  entry.context = {0};
  entry.nexts = {{1, 60}, {2, 40}};
  entry.total_count = 100;
  EXPECT_NEAR(ContextEntropy(entry), 0.292, 0.001);
}

TEST(ContextEntropyTest, DeterministicContextZero) {
  ContextEntry entry;
  entry.nexts = {{1, 10}};
  entry.total_count = 10;
  EXPECT_DOUBLE_EQ(ContextEntropy(entry), 0.0);
}

TEST(AveragePredictionEntropyTest, PaperExampleDropsWithContext) {
  // "Java" alone: 60/40 split; "Indonesia -> Java": 9/1 split. The entropy
  // at context length 2 must drop from ~0.29 to ~0.14 (paper Fig. 2 logic).
  std::vector<AggregatedSession> sessions;
  // Context [java]: followed by sun-java 60x and java-island 40x.
  // Use ids: indonesia=0, java=1, sun java=2, java island=3.
  sessions.push_back({{1, 2}, 51});          // java -> sun java (plain)
  sessions.push_back({{1, 3}, 31});          // java -> java island (plain)
  sessions.push_back({{0, 1, 2}, 1});        // indonesia -> java -> sun java
  sessions.push_back({{0, 1, 3}, 9});        // indonesia -> java -> island
  ContextIndex index;
  index.Build(sessions, ContextIndex::Mode::kSubstring);
  const auto by_length = AveragePredictionEntropyByLength(index);
  // Length-1 contexts include [java] with a 60/40 split.
  ASSERT_TRUE(by_length.count(1));
  ASSERT_TRUE(by_length.count(2));
  EXPECT_GT(by_length.at(1), by_length.at(2));
  // The only length-2 context with successors is [indonesia, java] at 9/1.
  EXPECT_NEAR(by_length.at(2), 0.1412, 0.01);
}

TEST(AveragePredictionEntropyTest, WeightedBySupport) {
  // Two length-1 contexts: one deterministic with high support, one
  // uniform with low support; the average must lean deterministic.
  std::vector<AggregatedSession> sessions;
  sessions.push_back({{0, 1}, 90});  // context [0] always -> 1
  sessions.push_back({{2, 3}, 5});   // context [2] -> 3 or 4 evenly
  sessions.push_back({{2, 4}, 5});
  ContextIndex index;
  index.Build(sessions, ContextIndex::Mode::kPrefix);
  const auto by_length = AveragePredictionEntropyByLength(index);
  // Weighted: (90*0 + 10*log10(2)) / 100.
  EXPECT_NEAR(by_length.at(1), 0.1 * std::log10(2.0), 1e-9);
}

TEST(AveragePredictionEntropyTest, EmptyIndex) {
  ContextIndex index;
  index.Build({}, ContextIndex::Mode::kPrefix);
  EXPECT_TRUE(AveragePredictionEntropyByLength(index).empty());
}

}  // namespace
}  // namespace sqp
