#include "eval/coverage.h"

#include <gtest/gtest.h>

#include "core/adjacency_model.h"
#include "core/cooccurrence_model.h"
#include "core/ngram_model.h"

namespace sqp {
namespace {

// Training corpus:
//   [0 1] x4        -> 0 precedes, 1 final
//   [2]   x3        -> 2 singleton-only
//   [3 0] x2        -> 3 precedes, 0 also final
std::vector<AggregatedSession> TrainCorpus() {
  return {{{0, 1}, 4}, {{2}, 3}, {{3, 0}, 2}};
}

GroundTruthEntry Ctx(std::vector<QueryId> context, uint64_t support = 1) {
  GroundTruthEntry entry;
  entry.context = std::move(context);
  entry.ranked_next = {0};
  entry.support = support;
  return entry;
}

class CoverageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sessions_ = TrainCorpus();
    data_.sessions = &sessions_;
    data_.vocabulary_size = 5;
    SQP_CHECK_OK(adjacency_.Train(data_));
    SQP_CHECK_OK(cooccurrence_.Train(data_));
    SQP_CHECK_OK(ngram_.Train(data_));
    roles_ = ComputeQueryRoles(sessions_);
  }

  std::vector<AggregatedSession> sessions_;
  TrainingData data_;
  AdjacencyModel adjacency_;
  CooccurrenceModel cooccurrence_;
  NgramModel ngram_;
  QueryRoles roles_;
};

TEST_F(CoverageTest, OverallWeightedCoverage) {
  const std::vector<GroundTruthEntry> contexts = {
      Ctx({0}, 6),  // covered by adjacency (0 precedes 1)
      Ctx({1}, 2),  // 1 never precedes: uncovered
      Ctx({9}, 2),  // unseen query: uncovered
  };
  const CoverageResult result = MeasureCoverage(adjacency_, contexts);
  EXPECT_EQ(result.total_weight, 10u);
  EXPECT_NEAR(result.overall, 0.6, 1e-12);
}

TEST_F(CoverageTest, ByContextLength) {
  const std::vector<GroundTruthEntry> contexts = {
      Ctx({0}, 1),
      Ctx({3, 0}, 1),   // covered: last query 0 has followers
      Ctx({9, 9}, 1),   // uncovered
  };
  const CoverageResult result = MeasureCoverage(adjacency_, contexts);
  EXPECT_NEAR(result.by_context_length.at(1), 1.0, 1e-12);
  EXPECT_NEAR(result.by_context_length.at(2), 0.5, 1e-12);
}

TEST_F(CoverageTest, EmptyContextsZero) {
  const CoverageResult result = MeasureCoverage(adjacency_, {});
  EXPECT_DOUBLE_EQ(result.overall, 0.0);
  EXPECT_EQ(result.total_weight, 0u);
}

TEST_F(CoverageTest, ReasonNewQuery) {
  const std::vector<GroundTruthEntry> contexts = {Ctx({9})};
  const ReasonBreakdown breakdown =
      ClassifyUnpredictable(adjacency_, roles_, contexts);
  EXPECT_EQ(breakdown.weight[static_cast<size_t>(
                UnpredictableReason::kNewQuery)],
            1u);
}

TEST_F(CoverageTest, ReasonOnlySingletonSessions) {
  // Query 2 appears only in the singleton session [2].
  const std::vector<GroundTruthEntry> contexts = {Ctx({2})};
  const ReasonBreakdown adj =
      ClassifyUnpredictable(adjacency_, roles_, contexts);
  EXPECT_EQ(adj.weight[static_cast<size_t>(
                UnpredictableReason::kOnlySingletonSessions)],
            1u);
  // Co-occurrence also cannot serve it, same reason (paper Table VI).
  const ReasonBreakdown cooc =
      ClassifyUnpredictable(cooccurrence_, roles_, contexts);
  EXPECT_EQ(cooc.weight[static_cast<size_t>(
                UnpredictableReason::kOnlySingletonSessions)],
            1u);
}

TEST_F(CoverageTest, ReasonOnlyLastPositionSplitsAdjFromCooc) {
  // Query 1 appears only at final positions: Adjacency cannot serve it but
  // Co-occurrence can (paper Table VI reason 3 applies to Adj only).
  const std::vector<GroundTruthEntry> contexts = {Ctx({1})};
  const ReasonBreakdown adj =
      ClassifyUnpredictable(adjacency_, roles_, contexts);
  EXPECT_EQ(adj.weight[static_cast<size_t>(
                UnpredictableReason::kOnlyLastPosition)],
            1u);
  const ReasonBreakdown cooc =
      ClassifyUnpredictable(cooccurrence_, roles_, contexts);
  EXPECT_EQ(cooc.weight[static_cast<size_t>(UnpredictableReason::kCovered)],
            1u);
}

TEST_F(CoverageTest, ReasonUntrainedContextOnlyForNgram) {
  // Context [3, 0] reversed = [0, 3] is not a trained prefix state, but its
  // last query 0 precedes others, so reasons 1-3 do not apply.
  const std::vector<GroundTruthEntry> contexts = {Ctx({1, 0})};
  const ReasonBreakdown ngram =
      ClassifyUnpredictable(ngram_, roles_, contexts);
  EXPECT_EQ(ngram.weight[static_cast<size_t>(
                UnpredictableReason::kUntrainedContext)],
            1u);
  // Adjacency serves it from the last query alone.
  const ReasonBreakdown adj =
      ClassifyUnpredictable(adjacency_, roles_, contexts);
  EXPECT_EQ(adj.weight[static_cast<size_t>(UnpredictableReason::kCovered)],
            1u);
}

TEST_F(CoverageTest, BreakdownWeightsSumToTotal) {
  const std::vector<GroundTruthEntry> contexts = {
      Ctx({0}, 3), Ctx({1}, 2), Ctx({2}, 4), Ctx({9}, 1), Ctx({1, 0}, 5)};
  const ReasonBreakdown breakdown =
      ClassifyUnpredictable(ngram_, roles_, contexts);
  uint64_t total = 0;
  for (uint64_t w : breakdown.weight) total += w;
  EXPECT_EQ(total, breakdown.total_weight);
  EXPECT_EQ(breakdown.total_weight, 15u);
}

TEST_F(CoverageTest, ReasonNamesStable) {
  EXPECT_EQ(UnpredictableReasonName(UnpredictableReason::kCovered), "covered");
  EXPECT_EQ(UnpredictableReasonName(UnpredictableReason::kNewQuery),
            "(1) new query");
  EXPECT_EQ(
      UnpredictableReasonName(UnpredictableReason::kOnlySingletonSessions),
      "(2) only in length-1 sessions");
  EXPECT_EQ(UnpredictableReasonName(UnpredictableReason::kOnlyLastPosition),
            "(3) only at last position");
  EXPECT_EQ(UnpredictableReasonName(UnpredictableReason::kUntrainedContext),
            "(4) context not a trained state");
}

}  // namespace
}  // namespace sqp
