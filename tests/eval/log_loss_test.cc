#include "eval/log_loss.h"

#include <gtest/gtest.h>

#include "core/adjacency_model.h"
#include "core/ngram_model.h"

namespace sqp {
namespace {

TEST(LogLossTest, NearDeterministicCorpusHasLowLoss) {
  // Training and test identical, almost deterministic transitions.
  const std::vector<AggregatedSession> sessions{{{0, 1}, 99}, {{0, 2}, 1}};
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = 3;
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(data).ok());
  const double loss = AverageLogLoss(model, sessions);
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 0.1);  // -log10(~0.99)/2 is tiny
}

TEST(LogLossTest, UniformPredictorHasHighLoss) {
  const std::vector<AggregatedSession> train{{{0, 1}, 10}};
  const std::vector<AggregatedSession> test{{{5, 6}, 10}};  // all unseen
  TrainingData data;
  data.sessions = &train;
  data.vocabulary_size = 1000;
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(data).ok());
  const double loss = AverageLogLoss(model, test);
  // Uncovered context: P = 1/1000, per-session weight 1/|s| = 1/2.
  EXPECT_NEAR(loss, 3.0 / 2.0, 1e-9);
}

TEST(LogLossTest, BetterModelScoresLowerLoss) {
  // Order-2 structure: after [a, b] comes c; after [d, b] comes e. The
  // N-gram model captures it; Adjacency (last query b only) cannot.
  const std::vector<AggregatedSession> sessions{{{0, 1, 2}, 50},
                                                {{3, 1, 4}, 50}};
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = 5;
  AdjacencyModel adjacency;
  NgramModel ngram;
  ASSERT_TRUE(adjacency.Train(data).ok());
  ASSERT_TRUE(ngram.Train(data).ok());
  EXPECT_LT(AverageLogLoss(ngram, sessions),
            AverageLogLoss(adjacency, sessions));
}

TEST(LogLossTest, SingletonSessionsContributeNothing) {
  const std::vector<AggregatedSession> train{{{0, 1}, 10}};
  TrainingData data;
  data.sessions = &train;
  data.vocabulary_size = 2;
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(data).ok());
  const std::vector<AggregatedSession> only_singletons{{{0}, 100}};
  EXPECT_DOUBLE_EQ(AverageLogLoss(model, only_singletons), 0.0);
}

TEST(LogLossTest, EmptyTestSetIsZero) {
  const std::vector<AggregatedSession> train{{{0, 1}, 10}};
  TrainingData data;
  data.sessions = &train;
  data.vocabulary_size = 2;
  AdjacencyModel model;
  ASSERT_TRUE(model.Train(data).ok());
  EXPECT_DOUBLE_EQ(AverageLogLoss(model, {}), 0.0);
}

}  // namespace
}  // namespace sqp
