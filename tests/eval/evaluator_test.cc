#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "core/adjacency_model.h"
#include "core/ngram_model.h"
#include "log/context_builder.h"

namespace sqp {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Train: after 0 comes 1 (mostly) or 2; after [0,1] comes 2.
    train_ = {{{0, 1, 2}, 8}, {{0, 2}, 2}, {{1, 2}, 4}};
    data_.sessions = &train_;
    data_.vocabulary_size = 4;
    SQP_CHECK_OK(adjacency_.Train(data_));
    SQP_CHECK_OK(ngram_.Train(data_));
    // Test ground truth from a matching distribution.
    test_ = {{{0, 1, 2}, 5}, {{0, 2}, 1}, {{1, 2}, 3}};
    truth_ = BuildGroundTruth(test_, 5);
  }

  std::vector<AggregatedSession> train_;
  std::vector<AggregatedSession> test_;
  std::vector<GroundTruthEntry> truth_;
  TrainingData data_;
  AdjacencyModel adjacency_;
  NgramModel ngram_;
};

TEST_F(EvaluatorTest, PerfectlyAlignedModelScoresHigh) {
  AccuracyOptions options;
  const ModelAccuracy acc = EvaluateAccuracy(ngram_, truth_, options);
  EXPECT_EQ(acc.model, "N-gram");
  ASSERT_TRUE(acc.ndcg_overall.count(1));
  EXPECT_GT(acc.ndcg_overall.at(1), 0.9);
}

TEST_F(EvaluatorTest, ResultsKeyedByPositionAndLength) {
  AccuracyOptions options;
  options.ndcg_positions = {1, 3};
  const ModelAccuracy acc = EvaluateAccuracy(adjacency_, truth_, options);
  ASSERT_TRUE(acc.ndcg.count(1));
  ASSERT_TRUE(acc.ndcg.count(3));
  EXPECT_FALSE(acc.ndcg.count(5));
  // Contexts of lengths 1 and 2 exist in the ground truth.
  EXPECT_TRUE(acc.ndcg.at(1).count(1));
  EXPECT_TRUE(acc.ndcg.at(1).count(2));
}

TEST_F(EvaluatorTest, MaxContextLengthSkipsLongContexts) {
  AccuracyOptions options;
  options.max_context_length = 1;
  const ModelAccuracy acc = EvaluateAccuracy(adjacency_, truth_, options);
  for (const auto& [position, by_length] : acc.ndcg) {
    for (const auto& [len, value] : by_length) {
      EXPECT_LE(len, 1u);
    }
  }
}

TEST_F(EvaluatorTest, CoveredOnlySkipsUncoveredContexts) {
  // Add an uncovered context (unknown query) to the truth with huge
  // support; covered_only=true must ignore it, false must count it as 0.
  std::vector<GroundTruthEntry> truth = truth_;
  GroundTruthEntry unknown;
  unknown.context = {9};
  unknown.ranked_next = {1};
  unknown.support = 1000;
  truth.push_back(unknown);

  AccuracyOptions covered_only;
  covered_only.covered_only = true;
  AccuracyOptions strict;
  strict.covered_only = false;

  const double with_skip =
      EvaluateAccuracy(adjacency_, truth, covered_only).ndcg_overall.at(1);
  const double with_zero =
      EvaluateAccuracy(adjacency_, truth, strict).ndcg_overall.at(1);
  EXPECT_GT(with_skip, with_zero);
}

TEST_F(EvaluatorTest, EvaluatedWeightTracksSupport) {
  AccuracyOptions options;
  const ModelAccuracy acc = EvaluateAccuracy(ngram_, truth_, options);
  // Ground truth contexts: [0] (6), [0,1] (5), [1] (3) -- all covered by
  // the N-gram (exact prefixes).
  EXPECT_EQ(acc.evaluated_weight, 14u);
}

TEST_F(EvaluatorTest, EmptyGroundTruth) {
  const ModelAccuracy acc = EvaluateAccuracy(adjacency_, {}, AccuracyOptions{});
  EXPECT_TRUE(acc.ndcg_overall.empty());
  EXPECT_EQ(acc.evaluated_weight, 0u);
}

}  // namespace
}  // namespace sqp
