#include "eval/ndcg.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sqp {
namespace {

GroundTruthEntry Truth(std::vector<QueryId> ranked) {
  GroundTruthEntry entry;
  entry.context = {0};
  entry.ranked_next = std::move(ranked);
  entry.support = 1;
  return entry;
}

TEST(GroundTruthRatingTest, RatingsAreFiveDownToOne) {
  const GroundTruthEntry truth = Truth({10, 11, 12, 13, 14});
  EXPECT_DOUBLE_EQ(GroundTruthRating(truth, 10, 5), 5.0);
  EXPECT_DOUBLE_EQ(GroundTruthRating(truth, 11, 5), 4.0);
  EXPECT_DOUBLE_EQ(GroundTruthRating(truth, 14, 5), 1.0);
  EXPECT_DOUBLE_EQ(GroundTruthRating(truth, 99, 5), 0.0);
}

TEST(GroundTruthRatingTest, PositionBeyondNIsZero) {
  const GroundTruthEntry truth = Truth({10, 11, 12, 13, 14});
  // With n = 3, the 4th/5th truth queries rate 0.
  EXPECT_DOUBLE_EQ(GroundTruthRating(truth, 13, 3), 0.0);
  EXPECT_DOUBLE_EQ(GroundTruthRating(truth, 10, 3), 3.0);
}

TEST(NdcgTest, PerfectRankingScoresOne) {
  const GroundTruthEntry truth = Truth({10, 11, 12, 13, 14});
  const std::vector<QueryId> predicted{10, 11, 12, 13, 14};
  EXPECT_NEAR(NdcgAtN(predicted, truth, 5), 1.0, 1e-12);
  EXPECT_NEAR(NdcgAtN(predicted, truth, 3), 1.0, 1e-12);
  EXPECT_NEAR(NdcgAtN(predicted, truth, 1), 1.0, 1e-12);
}

TEST(NdcgTest, EmptyPredictionScoresZero) {
  const GroundTruthEntry truth = Truth({10, 11});
  EXPECT_DOUBLE_EQ(NdcgAtN({}, truth, 5), 0.0);
}

TEST(NdcgTest, DisjointPredictionScoresZero) {
  const GroundTruthEntry truth = Truth({10, 11, 12});
  const std::vector<QueryId> predicted{20, 21, 22};
  EXPECT_DOUBLE_EQ(NdcgAtN(predicted, truth, 5), 0.0);
}

TEST(NdcgTest, SwappedTopTwoScoresBelowOne) {
  const GroundTruthEntry truth = Truth({10, 11, 12, 13, 14});
  const std::vector<QueryId> swapped{11, 10, 12, 13, 14};
  const double ndcg = NdcgAtN(swapped, truth, 5);
  EXPECT_LT(ndcg, 1.0);
  EXPECT_GT(ndcg, 0.8);
}

TEST(NdcgTest, EarlyPositionsMatterMore) {
  const GroundTruthEntry truth = Truth({10, 11, 12, 13, 14});
  // Best query at rank 1 vs best query at rank 5.
  const double top = NdcgAtN(std::vector<QueryId>{10, 99, 98, 97, 96}, truth, 5);
  const double bottom =
      NdcgAtN(std::vector<QueryId>{99, 98, 97, 96, 10}, truth, 5);
  EXPECT_GT(top, bottom);
}

TEST(NdcgTest, AtOneOnlyFirstPositionCounts) {
  const GroundTruthEntry truth = Truth({10, 11});
  EXPECT_GT(NdcgAtN(std::vector<QueryId>{10, 99}, truth, 1), 0.99);
  EXPECT_DOUBLE_EQ(NdcgAtN(std::vector<QueryId>{99, 10}, truth, 1), 0.0);
}

TEST(NdcgTest, ShortGroundTruthStillNormalizes) {
  // Ground truth with 2 entries, NDCG@5: ideal uses only those 2.
  const GroundTruthEntry truth = Truth({10, 11});
  EXPECT_NEAR(NdcgAtN(std::vector<QueryId>{10, 11}, truth, 5), 1.0, 1e-12);
}

TEST(NdcgTest, EmptyGroundTruthScoresZero) {
  const GroundTruthEntry truth = Truth({});
  EXPECT_DOUBLE_EQ(NdcgAtN(std::vector<QueryId>{1}, truth, 5), 0.0);
}

TEST(NdcgTest, AlwaysInUnitInterval) {
  const GroundTruthEntry truth = Truth({1, 2, 3, 4, 5});
  const std::vector<std::vector<QueryId>> predictions = {
      {5, 4, 3, 2, 1}, {1}, {2, 1}, {9, 9, 9}, {3, 1, 4, 1, 5}};
  for (const auto& predicted : predictions) {
    for (size_t n : {1, 3, 5}) {
      const double ndcg = NdcgAtN(predicted, truth, n);
      EXPECT_GE(ndcg, 0.0);
      EXPECT_LE(ndcg, 1.0 + 1e-12);
    }
  }
}

TEST(NdcgTest, ReversedRankingKnownValue) {
  // Hand-computed: truth {a,b} with ratings {2,1} at n=2; predicted [b,a].
  // DCG = (2^1-1)/log(2) + (2^2-1)/log(3); ideal = (2^2-1)/log(2) +
  // (2^1-1)/log(3).
  const GroundTruthEntry truth = Truth({10, 11});
  const double dcg = 1.0 / std::log(2.0) + 3.0 / std::log(3.0);
  const double ideal = 3.0 / std::log(2.0) + 1.0 / std::log(3.0);
  EXPECT_NEAR(NdcgAtN(std::vector<QueryId>{11, 10}, truth, 2), dcg / ideal,
              1e-12);
}

}  // namespace
}  // namespace sqp
