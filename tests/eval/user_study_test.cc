#include "eval/user_study.h"

#include <gtest/gtest.h>

#include "core/adjacency_model.h"
#include "core/model_factory.h"

namespace sqp {
namespace {

/// Builds a tiny world where the oracle's verdicts are fully known:
/// topic 0 holds queries {a0, a1, a2}; topic 1 holds {b0, b1}.
class UserStudyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a0_ = dict_.Intern("alpha zero");
    a1_ = dict_.Intern("alpha one");
    a2_ = dict_.Intern("alpha two");
    b0_ = dict_.Intern("beta zero");
    b1_ = dict_.Intern("beta one");
    oracle_.RegisterQuery("alpha zero", 0, 0);
    oracle_.RegisterQuery("alpha one", 0, 0);
    oracle_.RegisterQuery("alpha two", 0, 1);
    oracle_.RegisterQuery("beta zero", 1, 2);
    oracle_.RegisterQuery("beta one", 1, 2);

    // Good model: after a0 recommends in-topic queries.
    // Bad model: after a0 recommends cross-topic queries.
    good_sessions_ = {{{a0_, a1_}, 10}, {{a0_, a2_}, 5}};
    bad_sessions_ = {{{a0_, b0_}, 10}, {{a0_, b1_}, 5}};
    TrainingData good_data;
    good_data.sessions = &good_sessions_;
    good_data.vocabulary_size = dict_.size();
    TrainingData bad_data;
    bad_data.sessions = &bad_sessions_;
    bad_data.vocabulary_size = dict_.size();
    SQP_CHECK_OK(good_.Train(good_data));
    SQP_CHECK_OK(bad_.Train(bad_data));

    GroundTruthEntry ctx;
    ctx.context = {a0_};
    ctx.ranked_next = {a1_};
    ctx.support = 10;
    contexts_.push_back(ctx);
  }

  UserStudyOptions NoNoise() {
    UserStudyOptions options;
    options.contexts_per_length = 10;
    options.context_lengths = {1};
    options.labeler_noise = 0.0;
    return options;
  }

  QueryDictionary dict_;
  RelatednessOracle oracle_;
  QueryId a0_, a1_, a2_, b0_, b1_;
  std::vector<AggregatedSession> good_sessions_;
  std::vector<AggregatedSession> bad_sessions_;
  AdjacencyModel good_;
  AdjacencyModel bad_;
  std::vector<GroundTruthEntry> contexts_;
};

TEST_F(UserStudyTest, PerfectModelGetsFullPrecisionWithoutNoise) {
  const UserStudyResult result =
      RunUserStudy({&good_}, contexts_, dict_, oracle_, NoNoise());
  ASSERT_EQ(result.methods.size(), 1u);
  EXPECT_EQ(result.methods[0].overall.num_predicted, 2u);
  EXPECT_EQ(result.methods[0].overall.num_approved, 2u);
  EXPECT_DOUBLE_EQ(result.methods[0].overall.precision(), 1.0);
  EXPECT_DOUBLE_EQ(result.methods[0].overall.recall(), 1.0);
}

TEST_F(UserStudyTest, OffTopicModelGetsZeroPrecisionWithoutNoise) {
  const UserStudyResult result =
      RunUserStudy({&bad_}, contexts_, dict_, oracle_, NoNoise());
  EXPECT_EQ(result.methods[0].overall.num_approved, 0u);
  EXPECT_DOUBLE_EQ(result.methods[0].overall.precision(), 0.0);
}

TEST_F(UserStudyTest, PooledGroundTruthSharedAcrossMethods) {
  const UserStudyResult result =
      RunUserStudy({&good_, &bad_}, contexts_, dict_, oracle_, NoNoise());
  // Only the good model's two predictions are approved; both methods'
  // recall uses that pool of 2.
  EXPECT_EQ(result.pooled_ground_truth, 2u);
  EXPECT_DOUBLE_EQ(result.methods[0].overall.recall(), 1.0);
  EXPECT_DOUBLE_EQ(result.methods[1].overall.recall(), 0.0);
}

TEST_F(UserStudyTest, PrecisionByPositionTracksRanks) {
  const UserStudyResult result =
      RunUserStudy({&good_}, contexts_, dict_, oracle_, NoNoise());
  const MethodUserEval& eval = result.methods[0];
  ASSERT_EQ(eval.precision_by_position.size(), 5u);
  EXPECT_DOUBLE_EQ(eval.precision_by_position[0], 1.0);
  EXPECT_DOUBLE_EQ(eval.precision_by_position[1], 1.0);
  EXPECT_EQ(eval.predicted_by_position[2], 0u);  // only 2 candidates exist
}

TEST_F(UserStudyTest, HeavyNoiseDegradesApproval) {
  UserStudyOptions noisy = NoNoise();
  noisy.labeler_noise = 0.5;  // coin-flip panel
  // With a 30-labeler panel at 50% noise, approvals hover near 50%.
  const UserStudyResult clean =
      RunUserStudy({&good_}, contexts_, dict_, oracle_, NoNoise());
  const UserStudyResult degraded =
      RunUserStudy({&good_}, contexts_, dict_, oracle_, noisy);
  EXPECT_LE(degraded.methods[0].overall.num_approved,
            clean.methods[0].overall.num_approved);
}

TEST_F(UserStudyTest, ModerateNoiseRejectedByMajorityVote) {
  UserStudyOptions noisy = NoNoise();
  noisy.labeler_noise = 0.2;  // panel majority still tracks the oracle
  const UserStudyResult result =
      RunUserStudy({&good_, &bad_}, contexts_, dict_, oracle_, noisy);
  EXPECT_GT(result.methods[0].overall.precision(), 0.9);
  EXPECT_LT(result.methods[1].overall.precision(), 0.1);
}

TEST_F(UserStudyTest, DeterministicForSeed) {
  UserStudyOptions options = NoNoise();
  options.labeler_noise = 0.3;
  const UserStudyResult a =
      RunUserStudy({&good_}, contexts_, dict_, oracle_, options);
  const UserStudyResult b =
      RunUserStudy({&good_}, contexts_, dict_, oracle_, options);
  EXPECT_EQ(a.methods[0].overall.num_approved,
            b.methods[0].overall.num_approved);
}

TEST_F(UserStudyTest, StratifiedSamplingRespectsLengthBuckets) {
  // Add many length-2 contexts; restrict the study to length 1.
  std::vector<GroundTruthEntry> contexts = contexts_;
  for (int i = 0; i < 20; ++i) {
    GroundTruthEntry ctx;
    ctx.context = {a0_, a1_};
    ctx.ranked_next = {a2_};
    ctx.support = 1;
    contexts.push_back(ctx);
  }
  UserStudyOptions options = NoNoise();
  options.context_lengths = {1};
  const UserStudyResult result =
      RunUserStudy({&good_}, contexts, dict_, oracle_, options);
  EXPECT_EQ(result.num_contexts, 1u);  // only the single length-1 context
}

TEST_F(UserStudyTest, ContextsPerLengthCap) {
  std::vector<GroundTruthEntry> contexts;
  for (int i = 0; i < 30; ++i) {
    GroundTruthEntry ctx;
    ctx.context = {a0_};
    ctx.ranked_next = {a1_};
    ctx.support = static_cast<uint64_t>(30 - i);
    contexts.push_back(ctx);
  }
  UserStudyOptions options = NoNoise();
  options.contexts_per_length = 8;
  const UserStudyResult result =
      RunUserStudy({&good_}, contexts, dict_, oracle_, options);
  EXPECT_EQ(result.num_contexts, 8u);
}

}  // namespace
}  // namespace sqp
