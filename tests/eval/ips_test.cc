// The IPS off-policy estimator (eval/ips): on a synthetic exploration log
// with a known click model, the propensity-reweighted estimate must
// recover the target policy's true click rate (unbiasedness), and the
// degenerate logs the estimator refuses — bad propensities, greedy-only
// logs — must come back as the documented typed errors, never as a
// silently wrong number.

#include "eval/ips.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace sqp {
namespace {

// Two-context world with three candidate items per context and known
// per-item click probabilities. The logging policy is epsilon-greedy with
// epsilon = 0.6 over k = 3 (slot-1 pmf: greedy 0.6, others 0.2), so every
// item has coverage and IPS is applicable.
constexpr double kEpsilon = 0.6;
constexpr size_t kItems = 3;

struct World {
  // click_prob[context][item]: chance a user clicks slot 1 when `item`
  // is served there after `context`.
  double click_prob[2][kItems] = {{0.8, 0.4, 0.1}, {0.2, 0.7, 0.3}};
  // The logging policy's greedy choice per context.
  size_t greedy[2] = {0, 1};
};

std::vector<FeedbackRecord> SimulateLog(const World& world, size_t rounds,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<FeedbackRecord> records;
  records.reserve(rounds);
  for (size_t r = 0; r < rounds; ++r) {
    const size_t ctx = rng.UniformInt(2);
    // Sample the slot-1 item from the epsilon-greedy pmf.
    const size_t greedy = world.greedy[ctx];
    size_t winner;
    if (rng.UniformDouble() < kEpsilon) {
      winner = rng.UniformInt(kItems);
    } else {
      winner = greedy;
    }
    const double propensity =
        kEpsilon / kItems + (winner == greedy ? 1.0 - kEpsilon : 0.0);

    FeedbackRecord record;
    record.record_id = r + 1;
    record.policy = ExplorePolicy::kEpsilonGreedy;
    record.policy_param = kEpsilon;
    record.context = {static_cast<QueryId>(100 + ctx)};
    // Items get ids 10*(ctx+1) + item so the two contexts don't collide.
    record.served.resize(kItems);
    record.served[0] = {static_cast<QueryId>(10 * (ctx + 1) + winner), 1.0,
                        propensity};
    size_t slot = 1;
    for (size_t item = 0; item < kItems; ++item) {
      if (item == winner) continue;
      record.served[slot++] = {static_cast<QueryId>(10 * (ctx + 1) + item),
                               0.5, kEpsilon / kItems};
    }
    if (rng.UniformDouble() < world.click_prob[ctx][winner]) {
      record.clicked_position = 0;
    }
    records.push_back(std::move(record));
  }
  return records;
}

/// True expected slot-1 click rate of a deterministic target policy that
/// serves `choice[ctx]` (contexts are uniform).
double TrueValue(const World& world, const size_t choice[2]) {
  return 0.5 * (world.click_prob[0][choice[0]] +
                world.click_prob[1][choice[1]]);
}

TEST(IpsTest, RecoversTheTargetPolicysTrueClickRate) {
  const World world;
  const auto records = SimulateLog(world, 60000, /*seed=*/17);

  // Target A: the logging policy's own greedy arms.
  const size_t greedy_choice[2] = {0, 1};
  const auto greedy_estimate = EstimateIpsAccuracy(
      records, [&](std::span<const QueryId> context) -> QueryId {
        const size_t ctx = context[0] - 100;
        return static_cast<QueryId>(10 * (ctx + 1) + greedy_choice[ctx]);
      });
  ASSERT_TRUE(greedy_estimate.ok());
  EXPECT_EQ(greedy_estimate->records_used, records.size());
  EXPECT_NEAR(greedy_estimate->value, TrueValue(world, greedy_choice), 0.02);
  EXPECT_GT(greedy_estimate->std_error, 0.0);
  EXPECT_LT(greedy_estimate->std_error, 0.02);

  // Target B: a DEVIATING policy the log never served greedily — the
  // whole point of logging propensities is that this is still estimable.
  const size_t deviating_choice[2] = {1, 2};
  const auto deviating_estimate = EstimateIpsAccuracy(
      records, [&](std::span<const QueryId> context) -> QueryId {
        const size_t ctx = context[0] - 100;
        return static_cast<QueryId>(10 * (ctx + 1) + deviating_choice[ctx]);
      });
  ASSERT_TRUE(deviating_estimate.ok());
  EXPECT_NEAR(deviating_estimate->value, TrueValue(world, deviating_choice),
              0.03);

  // And the estimator separates the two policies correctly: target A
  // (0.75 true) beats target B (0.35 true).
  EXPECT_GT(greedy_estimate->value, deviating_estimate->value + 0.2);
}

TEST(IpsTest, ClippedWeightsBoundTheEstimateBelow) {
  const World world;
  const auto records = SimulateLog(world, 20000, /*seed=*/29);
  const size_t choice[2] = {1, 2};
  const auto target = [&](std::span<const QueryId> context) -> QueryId {
    const size_t ctx = context[0] - 100;
    return static_cast<QueryId>(10 * (ctx + 1) + choice[ctx]);
  };
  const auto pure = EstimateIpsAccuracy(records, target);
  ASSERT_TRUE(pure.ok());
  IpsOptions clipped_options;
  clipped_options.clip_weight = 1.0;  // every weight collapses to 1
  const auto clipped = EstimateIpsAccuracy(records, target, clipped_options);
  ASSERT_TRUE(clipped.ok());
  // Clipping can only shrink terms: biased low, never high.
  EXPECT_LE(clipped->value, pure->value);
}

TEST(IpsTest, UncoveredTargetContextsContributeZero) {
  const World world;
  const auto records = SimulateLog(world, 1000, /*seed=*/31);
  const auto estimate = EstimateIpsAccuracy(
      records,
      [](std::span<const QueryId>) -> QueryId { return kInvalidQueryId; });
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->value, 0.0);
  EXPECT_EQ(estimate->records_used, records.size());
}

TEST(IpsTest, TypedErrorsOnUnusableInputs) {
  const auto target = [](std::span<const QueryId>) -> QueryId { return 1; };

  // Empty log.
  EXPECT_EQ(EstimateIpsAccuracy({}, target).status().code(),
            StatusCode::kInvalidArgument);

  // Null target.
  const World world;
  const auto records = SimulateLog(world, 10, /*seed=*/5);
  EXPECT_EQ(EstimateIpsAccuracy(records, TargetTop1()).status().code(),
            StatusCode::kInvalidArgument);

  // Record with no served items.
  {
    std::vector<FeedbackRecord> bad = records;
    bad[3].served.clear();
    EXPECT_EQ(EstimateIpsAccuracy(bad, target).status().code(),
              StatusCode::kInvalidArgument);
  }

  // Nonsensical min_propensity.
  {
    IpsOptions options;
    options.min_propensity = 0.0;
    EXPECT_EQ(EstimateIpsAccuracy(records, target, options).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(IpsTest, DegeneratePropensitiesAreOutOfRange) {
  const World world;
  const auto target = [](std::span<const QueryId>) -> QueryId { return 1; };

  for (const double bad_propensity : {0.0, -0.25, 1.5}) {
    std::vector<FeedbackRecord> records = SimulateLog(world, 10, 7);
    records[4].served[0].propensity = bad_propensity;
    const auto estimate = EstimateIpsAccuracy(records, target);
    EXPECT_EQ(estimate.status().code(), StatusCode::kOutOfRange)
        << "propensity " << bad_propensity;
  }

  // Below min_propensity: valid probability, unusable variance.
  std::vector<FeedbackRecord> records = SimulateLog(world, 10, 7);
  records[2].served[0].propensity = 1e-6;
  EXPECT_EQ(EstimateIpsAccuracy(records, target).status().code(),
            StatusCode::kOutOfRange);
}

TEST(IpsTest, GreedyOnlyLogIsAFailedPrecondition) {
  // Every slot-1 propensity is exactly 1: nothing was ever explored, so
  // no deviating policy is evaluable.
  std::vector<FeedbackRecord> records;
  for (size_t r = 0; r < 20; ++r) {
    FeedbackRecord record;
    record.record_id = r + 1;
    record.context = {1};
    record.served = {{2, 0.9, 1.0}, {3, 0.1, 0.0}};
    if (r % 2 == 0) record.clicked_position = 0;
    records.push_back(std::move(record));
  }
  const auto estimate = EstimateIpsAccuracy(
      records, [](std::span<const QueryId>) -> QueryId { return 2; });
  EXPECT_EQ(estimate.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace sqp
