#include "eval/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace sqp {
namespace {

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter table({"model", "ndcg"});
  table.AddRow({"Adjacency", "0.41"});
  table.AddRow({"MVMM", "0.58"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| model     | ndcg |"), std::string::npos);
  EXPECT_NE(text.find("| Adjacency | 0.41 |"), std::string::npos);
  EXPECT_NE(text.find("| MVMM      | 0.58 |"), std::string::npos);
}

TEST(TablePrinterTest, MissingCellsRenderEmpty) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("| 1 |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TablePrinterTest, ExtraCellsDropped) {
  TablePrinter table({"a"});
  table.AddRow({"1", "overflow"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_EQ(out.str().find("overflow"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"model", "value"});
  table.AddRow({"Adjacency", "1"});
  table.AddRow({"with,comma", "2"});
  std::ostringstream out;
  table.PrintCsv(out);
  EXPECT_EQ(out.str(), "model,value\nAdjacency,1\n\"with,comma\",2\n");
}

TEST(FormatHelpersTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.123456), "0.1235");
  EXPECT_EQ(FormatDouble(0.5, 2), "0.50");
}

TEST(FormatHelpersTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.568), "56.8%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

}  // namespace
}  // namespace sqp
