#ifndef SQP_TESTS_NET_FAULT_TRANSPORT_H_
#define SQP_TESTS_NET_FAULT_TRANSPORT_H_

// Deterministic fault injection at the transport seam: wraps any real
// Transport (loopback in the tests, but TCP works identically) and
// perturbs the byte streams at exact offsets — drop, truncate, delay,
// bit-flip, short read, chunked write. Because the offsets are absolute
// positions in the request/response streams, every failure mode a socket
// can produce is reproduced bit-for-bit on every run: a mid-frame
// disconnect is "truncate the read stream at byte 20", a corrupted
// response is "XOR byte 40 with 0x10", a slow peer is "3-byte write
// chunks with a delay". The suite asserts the client surfaces a clean
// typed status for each — never a hang, never a crash.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "net/transport.h"
#include "util/status.h"

namespace sqp::net_test {

struct FaultPlan {
  /// Deliver at most this many bytes per Read call (short reads; the
  /// client's reassembly must cope with arbitrarily small deliveries).
  size_t max_read_chunk = SIZE_MAX;

  /// Split every Write into chunks of at most this many bytes before
  /// handing them to the inner transport (slow-peer partial writes; the
  /// server's reassembly must cope).
  size_t max_write_chunk = SIZE_MAX;

  /// The connection dies after this many bytes of the response stream
  /// have been delivered (mid-frame disconnect when it lands inside a
  /// frame). Reads at or past the point return kUnavailable.
  std::optional<size_t> truncate_read_at;

  /// The connection dies after this many bytes of the request stream have
  /// been written; the write that crosses the point fails kUnavailable
  /// and the transport is dead from then on.
  std::optional<size_t> fail_write_at;

  /// XOR the response-stream byte at the given absolute offset with the
  /// given mask (corruption in flight; the frame CRC or prelude
  /// validation must catch it).
  std::vector<std::pair<size_t, uint8_t>> flip_read;

  /// Sleep this long before every chunked read/write (slow peer). Keep it
  /// small — the suites stay deterministic regardless, the delay only
  /// widens real interleavings under TSAN.
  std::chrono::microseconds delay{0};
};

class FaultTransport final : public net::Transport {
 public:
  FaultTransport(std::unique_ptr<net::Transport> inner, FaultPlan plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}

  Status Write(std::span<const uint8_t> data) override {
    if (dead_) return Status::Unavailable("connection reset by fault plan");
    size_t sent = 0;
    while (sent < data.size()) {
      if (plan_.delay.count() > 0) std::this_thread::sleep_for(plan_.delay);
      size_t chunk =
          std::min(data.size() - sent, std::max<size_t>(1, plan_.max_write_chunk));
      if (plan_.fail_write_at &&
          write_offset_ + chunk > *plan_.fail_write_at) {
        // Deliver the bytes up to the failure point, then die mid-frame.
        const size_t partial = *plan_.fail_write_at > write_offset_
                                   ? *plan_.fail_write_at - write_offset_
                                   : 0;
        if (partial > 0) {
          (void)inner_->Write(data.subspan(sent, partial));
          write_offset_ += partial;
        }
        dead_ = true;
        inner_->Close();
        return Status::Unavailable("connection reset mid-write");
      }
      Status written = inner_->Write(data.subspan(sent, chunk));
      if (!written.ok()) return written;
      sent += chunk;
      write_offset_ += chunk;
    }
    return Status::OK();
  }

  Result<size_t> Read(uint8_t* out, size_t max) override {
    if (dead_) return Status::Unavailable("connection reset by fault plan");
    if (plan_.delay.count() > 0) std::this_thread::sleep_for(plan_.delay);
    size_t want = std::min(max, std::max<size_t>(1, plan_.max_read_chunk));
    if (plan_.truncate_read_at) {
      if (read_offset_ >= *plan_.truncate_read_at) {
        dead_ = true;
        return Status::Unavailable("connection closed mid-frame");
      }
      want = std::min(want, *plan_.truncate_read_at - read_offset_);
    }
    auto n = inner_->Read(out, want);
    if (!n.ok()) return n;
    for (const auto& [offset, mask] : plan_.flip_read) {
      if (offset >= read_offset_ && offset < read_offset_ + *n) {
        out[offset - read_offset_] ^= mask;
      }
    }
    read_offset_ += *n;
    return n;
  }

  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<net::Transport> inner_;
  FaultPlan plan_;
  size_t read_offset_ = 0;
  size_t write_offset_ = 0;
  bool dead_ = false;
};

/// Wraps a transport factory so every produced connection carries the
/// fault plan. `faulty_connections` bounds how many connections are
/// perturbed — after that many, the factory hands out clean transports
/// (the reconnect-and-recover path).
inline std::function<Result<std::unique_ptr<net::Transport>>(uint32_t)>
FaultyFactory(
    std::function<Result<std::unique_ptr<net::Transport>>(uint32_t)> inner,
    FaultPlan plan, size_t faulty_connections = SIZE_MAX) {
  auto remaining = std::make_shared<size_t>(faulty_connections);
  return [inner = std::move(inner), plan = std::move(plan),
          remaining](uint32_t shard) -> Result<std::unique_ptr<net::Transport>> {
    auto transport = inner(shard);
    if (!transport.ok()) return transport.status();
    if (*remaining == 0) return std::move(*transport);
    --*remaining;
    return std::unique_ptr<net::Transport>(
        new FaultTransport(std::move(*transport), plan));
  };
}

}  // namespace sqp::net_test

#endif  // SQP_TESTS_NET_FAULT_TRANSPORT_H_
