#ifndef SQP_TESTS_NET_NET_TEST_UTIL_H_
#define SQP_TESTS_NET_NET_TEST_UTIL_H_

// Shared substrate for the network-tier tests: a per-process trained
// 2-shard fleet (in-memory snapshots ready to publish), a recursive temp
// directory for on-disk manifests, and helpers to stand up per-shard
// engines for loopback serving. Reuses the serve-layer synthetic corpus
// so networked answers can be compared bit-for-bit against the exact
// same models the in-process suites serve.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "../serve/serve_test_util.h"
#include "serve/recommender_engine.h"
#include "serve/sharded_engine.h"

namespace sqp::net_test {

/// A process-unique temp directory, removed recursively on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_((std::filesystem::temp_directory_path() /
               ("sqp_net_" + std::to_string(::getpid()) + "_" + name))
                  .string()) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return (std::filesystem::path(path_) / name).string();
  }

 private:
  std::string path_;
};

/// Trains one fleet of `num_shards` snapshots from the shared serving
/// corpus. Version tags every shard snapshot and the manifest.
inline ShardedTrainResult TrainFleet(size_t num_shards,
                                     uint64_t version = 1) {
  ShardedTrainOptions options;
  options.num_shards = static_cast<uint32_t>(num_shards);
  options.version = version;
  auto trained =
      TrainShardedSnapshots(serve_test::SharedCorpus().base, options);
  SQP_CHECK_OK(trained.status());
  return std::move(*trained);
}

/// Publishes a trained fleet into fresh single-lane engines (the same
/// configuration a ShardServer embeds) and returns owning + borrowed
/// views. The borrowed vector feeds LoopbackTransportFactory.
struct LoopbackFleet {
  std::vector<std::unique_ptr<RecommenderEngine>> engines;
  std::vector<const RecommenderEngine*> borrowed;
};

inline LoopbackFleet PublishLoopbackFleet(const ShardedTrainResult& trained) {
  LoopbackFleet fleet;
  for (const auto& snapshot : trained.shards) {
    auto engine = std::make_unique<RecommenderEngine>(
        EngineOptions{.num_threads = 1});
    engine->Publish(snapshot);
    fleet.borrowed.push_back(engine.get());
    fleet.engines.push_back(std::move(engine));
  }
  return fleet;
}

/// The reference in-process fleet the networked answers must match.
inline std::unique_ptr<ShardedEngine> PublishReferenceFleet(
    const ShardedTrainResult& trained) {
  auto engine = std::make_unique<ShardedEngine>(
      ShardedEngineOptions{.num_shards = trained.shards.size(),
                           .num_threads = 1});
  for (size_t s = 0; s < trained.shards.size(); ++s) {
    engine->PublishShard(s, trained.shards[s]);
  }
  return engine;
}

/// Online contexts drawn from both corpus periods: covered, drifted and
/// unseen mixes, the same recipe the serve-layer equivalence tests use.
inline std::vector<std::vector<QueryId>> FleetContexts(size_t limit = 400) {
  auto contexts =
      serve_test::CollectContexts(serve_test::SharedCorpus().base, limit / 2);
  auto drifted = serve_test::CollectContexts(
      serve_test::SharedCorpus().drifted, limit - contexts.size());
  contexts.insert(contexts.end(), drifted.begin(), drifted.end());
  return contexts;
}

}  // namespace sqp::net_test

#endif  // SQP_TESTS_NET_NET_TEST_UTIL_H_
