// End-to-end equivalence for the network tier: the same trained fleet
// served three ways — in-process ShardedEngine (the reference), loopback
// transport (full encode/decode pipeline, no sockets), and real TCP
// through ShardServer's epoll loop — must produce bit-identical
// recommendations, statuses, and QoS outcomes for shard counts {1, 2, 4}.
// Plus the cross-process lifecycle: deadline/lane propagation through the
// frame header, graceful shard restart onto a newer manifest generation,
// unpublished shards, and version pinning.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "net/loopback_transport.h"
#include "net/router_client.h"
#include "net/shard_server.h"
#include "net/tcp_transport.h"
#include "net_test_util.h"
#include "serve/deadline.h"

namespace sqp::net_test {
namespace {

using net::LoopbackTransportFactory;
using net::RouterClient;
using net::RouterOptions;
using net::ShardServer;
using net::ShardServerOptions;
using net::TcpTransportFactory;

/// View adapter for the deadline-aware in-process overload, which takes
/// context spans.
std::vector<ContextRef> AsRefs(
    const std::vector<std::vector<QueryId>>& contexts) {
  std::vector<ContextRef> refs;
  refs.reserve(contexts.size());
  for (const auto& context : contexts) {
    refs.emplace_back(context.data(), context.size());
  }
  return refs;
}

/// The full equivalence check: legacy-path reference vs the router's
/// unbounded deadline-aware surface, then a bounded bulk-lane batch vs
/// the in-process deadline-aware reference. Every score must match to
/// the bit (scores travel as raw f64 bits).
void ExpectServesBitIdentical(RouterClient& router,
                              const ShardedEngine& reference,
                              const std::vector<std::vector<QueryId>>& contexts,
                              size_t top_n) {
  const std::vector<Recommendation> expected =
      reference.RecommendMany(contexts, top_n);

  const BatchResult batch = router.RecommendMany(contexts, top_n);
  ASSERT_EQ(batch.results.size(), expected.size());
  EXPECT_TRUE(batch.admission.ok());
  EXPECT_EQ(batch.served, expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(batch.statuses[i], StatusCode::kOk) << "item " << i;
    serve_test::ExpectSameRecommendation(expected[i], batch.results[i]);
  }

  // A generous deadline on the bulk lane must not change a single bit,
  // and the networked QoS outcome must match in-process exactly.
  ServeOptions options;
  options.deadline = Deadline::After(std::chrono::seconds(30));
  options.lane = QosLane::kBulk;
  const BatchResult bounded = router.RecommendMany(contexts, top_n, options);
  const BatchResult in_process =
      reference.RecommendMany(AsRefs(contexts), top_n, options);
  ASSERT_EQ(bounded.results.size(), in_process.results.size());
  EXPECT_EQ(bounded.admission.code(), in_process.admission.code());
  EXPECT_EQ(bounded.served, in_process.served);
  EXPECT_EQ(bounded.degraded, in_process.degraded);
  EXPECT_EQ(bounded.effective_top_n, in_process.effective_top_n);
  for (size_t i = 0; i < in_process.results.size(); ++i) {
    EXPECT_EQ(bounded.statuses[i], in_process.statuses[i]) << "item " << i;
    serve_test::ExpectSameRecommendation(in_process.results[i],
                                         bounded.results[i]);
  }

  // Single-query convenience path (a one-item batch on the wire).
  const auto& context = contexts.front();
  const ServeResult single = router.Recommend(context, top_n);
  const ServeResult want = reference.Recommend(
      ContextRef(context.data(), context.size()), top_n, ServeOptions{});
  EXPECT_EQ(single.status, want.status);
  serve_test::ExpectSameRecommendation(want.recommendation,
                                       single.recommendation);
}

TEST(NetServingTest, LoopbackFleetIsBitIdenticalAcrossShardCounts) {
  const auto contexts = FleetContexts(300);
  for (const size_t num_shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    const ShardedTrainResult trained = TrainFleet(num_shards);
    const LoopbackFleet fleet = PublishLoopbackFleet(trained);
    const auto reference = PublishReferenceFleet(trained);
    RouterClient router(
        static_cast<uint32_t>(num_shards),
        LoopbackTransportFactory(fleet.borrowed, /*fleet_version=*/1));
    ExpectServesBitIdentical(router, *reference, contexts, 7);
    EXPECT_EQ(router.observed_fleet_version(), 1u);
    EXPECT_GE(router.stats().subrequests, num_shards);
  }
}

TEST(NetServingTest, TcpFleetColdBootsFromManifestAndIsBitIdentical) {
  const auto contexts = FleetContexts(300);
  for (const size_t num_shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
    TempDir dir("tcp_equiv_" + std::to_string(num_shards));
    const std::string manifest = dir.file("fleet.manifest");
    const ShardedTrainResult trained = TrainFleet(num_shards);
    ASSERT_TRUE(
        SaveShardedSnapshots(trained.shards, CompactOptions{}, manifest).ok());

    // One real server per shard, each cold-booting its own blob off the
    // shared manifest — the production topology, in one process.
    std::vector<std::unique_ptr<ShardServer>> servers;
    std::vector<uint16_t> ports;
    for (size_t s = 0; s < num_shards; ++s) {
      auto server = std::make_unique<ShardServer>();
      ASSERT_TRUE(
          server->StartFromManifest(manifest, static_cast<uint32_t>(s)).ok());
      EXPECT_EQ(server->fleet_version(), 1u);
      EXPECT_EQ(server->fleet_num_shards(), num_shards);
      ports.push_back(server->port());
      servers.push_back(std::move(server));
    }

    auto reference = ShardedEngine::BootFromManifest(manifest);
    ASSERT_TRUE(reference.ok());
    RouterClient router(static_cast<uint32_t>(num_shards),
                        TcpTransportFactory("127.0.0.1", ports));
    ExpectServesBitIdentical(router, **reference, contexts, 7);
    EXPECT_EQ(router.observed_fleet_version(), 1u);
    for (auto& server : servers) {
      EXPECT_GE(server->stats().frames_served, 1u);
      server->Stop();
    }
  }
}

TEST(NetServingTest, ExpiredDeadlineShedsExactlyLikeInProcess) {
  const ShardedTrainResult trained = TrainFleet(2);
  const LoopbackFleet fleet = PublishLoopbackFleet(trained);
  const auto reference = PublishReferenceFleet(trained);
  const auto contexts = FleetContexts(64);
  RouterClient router(2, LoopbackTransportFactory(fleet.borrowed, 1));

  // A deadline already expired at send time travels as a zero budget and
  // must shed server-side on arrival — the same outcome, per item, as
  // handing the expired deadline to the in-process engine.
  ServeOptions options;
  options.deadline =
      Deadline::At(Deadline::Clock::now() - std::chrono::seconds(1));
  const BatchResult batch = router.RecommendMany(contexts, 5, options);
  const BatchResult in_process =
      reference->RecommendMany(AsRefs(contexts), 5, options);
  EXPECT_EQ(batch.admission.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(batch.admission.code(), in_process.admission.code());
  EXPECT_EQ(batch.served, in_process.served);
  EXPECT_EQ(batch.effective_top_n, in_process.effective_top_n);
  ASSERT_EQ(batch.statuses.size(), in_process.statuses.size());
  for (size_t i = 0; i < batch.statuses.size(); ++i) {
    EXPECT_EQ(batch.statuses[i], StatusCode::kDeadlineExceeded);
    EXPECT_EQ(batch.statuses[i], in_process.statuses[i]);
  }
}

TEST(NetServingTest, UnpublishedShardAnswersUnavailableLikeInProcess) {
  const ShardedTrainResult trained = TrainFleet(2);
  const auto contexts = FleetContexts(200);

  // Shard 1 exists but never published — its routed items must come back
  // kUnavailable with uncovered-empty results, exactly as ShardedEngine
  // treats a dead shard; shard 0's answers are unaffected.
  LoopbackFleet fleet;
  for (size_t s = 0; s < 2; ++s) {
    fleet.engines.push_back(std::make_unique<RecommenderEngine>(
        EngineOptions{.num_threads = 1}));
    fleet.borrowed.push_back(fleet.engines.back().get());
  }
  fleet.engines[0]->Publish(trained.shards[0]);

  auto reference = std::make_unique<ShardedEngine>(
      ShardedEngineOptions{.num_shards = 2, .num_threads = 1});
  reference->PublishShard(0, trained.shards[0]);

  RouterClient router(2, LoopbackTransportFactory(fleet.borrowed, 1));
  const BatchResult batch = router.RecommendMany(contexts, 5);
  const BatchResult in_process =
      reference->RecommendMany(AsRefs(contexts), 5, ServeOptions{});
  ASSERT_EQ(batch.results.size(), in_process.results.size());
  EXPECT_EQ(batch.served, in_process.served);
  size_t unavailable = 0;
  for (size_t i = 0; i < batch.results.size(); ++i) {
    EXPECT_EQ(batch.statuses[i], in_process.statuses[i]) << "item " << i;
    if (batch.statuses[i] == StatusCode::kUnavailable) ++unavailable;
    serve_test::ExpectSameRecommendation(in_process.results[i],
                                         batch.results[i]);
  }
  EXPECT_GT(unavailable, 0u);
  EXPECT_LT(unavailable, batch.results.size());
}

TEST(NetServingTest, FleetVersionPinRejectsMismatchedShards) {
  const ShardedTrainResult trained = TrainFleet(2);
  const LoopbackFleet fleet = PublishLoopbackFleet(trained);
  const auto contexts = FleetContexts(64);

  // The router pins manifest version 2; the fleet serves version 1 — every
  // item must answer kFailedPrecondition, nothing served.
  RouterClient router(2, LoopbackTransportFactory(fleet.borrowed, 1),
                      RouterOptions{.expected_fleet_version = 2});
  const BatchResult batch = router.RecommendMany(contexts, 5);
  EXPECT_EQ(batch.served, 0u);
  EXPECT_EQ(batch.admission.code(), StatusCode::kFailedPrecondition);
  for (const StatusCode status : batch.statuses) {
    EXPECT_EQ(status, StatusCode::kFailedPrecondition);
  }
}

TEST(NetServingTest, GracefulShardRestartReResolvesOntoNewManifest) {
  TempDir dir("restart");
  const std::string manifest = dir.file("fleet.manifest");
  const auto contexts = FleetContexts(200);

  const ShardedTrainResult v1 = TrainFleet(2, /*version=*/1);
  ASSERT_TRUE(SaveShardedSnapshots(v1.shards, CompactOptions{}, manifest).ok());

  auto shard0 = std::make_unique<ShardServer>();
  ASSERT_TRUE(shard0->StartFromManifest(manifest, 0).ok());
  ShardServer shard1;
  ASSERT_TRUE(shard1.StartFromManifest(manifest, 1).ok());
  const uint16_t shard0_port = shard0->port();

  auto reference = ShardedEngine::BootFromManifest(manifest);
  ASSERT_TRUE(reference.ok());

  RouterClient router(
      2, TcpTransportFactory("127.0.0.1", {shard0_port, shard1.port()}),
      RouterOptions{.max_attempts = 2});
  BatchResult before = router.RecommendMany(contexts, 5);
  EXPECT_TRUE(before.admission.ok());
  EXPECT_EQ(router.observed_fleet_version(), 1u);

  // Shard 0 bounces onto a new manifest generation: stop, republish the
  // fleet at version 2, restart on the SAME port. The router's first
  // exchange hits the dead connection, reconnects transparently, and the
  // reply's manifest version tells it the fleet moved.
  shard0->Stop();
  shard0.reset();
  const ShardedTrainResult v2 = TrainFleet(2, /*version=*/2);
  ASSERT_TRUE(SaveShardedSnapshots(v2.shards, CompactOptions{}, manifest).ok());
  ShardServer restarted(ShardServerOptions{.port = shard0_port});
  ASSERT_TRUE(restarted.StartFromManifest(manifest, 0).ok());
  EXPECT_EQ(restarted.port(), shard0_port);
  EXPECT_EQ(restarted.fleet_version(), 2u);

  const BatchResult after = router.RecommendMany(contexts, 5);
  EXPECT_TRUE(after.admission.ok());
  EXPECT_EQ(after.served, contexts.size());
  EXPECT_GE(router.stats().reconnects, 1u);
  EXPECT_EQ(router.observed_fleet_version(), 2u);
  EXPECT_GE(router.stats().version_changes, 1u);  // observed 1 -> 2

  // Same corpus, same options: generation 2 serves the same bits, so the
  // restarted fleet must still match the v1 reference exactly.
  const std::vector<Recommendation> expected =
      (*reference)->RecommendMany(contexts, 5);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(after.statuses[i], StatusCode::kOk) << "item " << i;
    serve_test::ExpectSameRecommendation(expected[i], after.results[i]);
  }
  shard1.Stop();
}

}  // namespace
}  // namespace sqp::net_test
