// The fault matrix: every failure mode a socket can produce, injected
// deterministically at exact byte offsets through FaultTransport, against
// the full client pipeline (router -> wire encode -> transport ->
// reassemble -> decode). The contract under test: each fault surfaces as
// a clean typed status on exactly the affected items — kUnavailable for
// connection-level death (EOF, reset, timeout), kDataLoss for protocol
// corruption — and the client never hangs, never crashes (the suite runs
// under ASan and TSAN in CI) and recovers by reconnecting when the fault
// clears.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "fault_transport.h"
#include "net/loopback_transport.h"
#include "net/router_client.h"
#include "net/shard_server.h"
#include "net/tcp_transport.h"
#include "net_test_util.h"
#include "util/socket.h"

namespace sqp::net_test {
namespace {

using net::LoopbackTransportFactory;
using net::RouterClient;
using net::RouterOptions;
using net::ShardServer;
using net::TcpTransportFactory;

struct Fixture {
  ShardedTrainResult trained = TrainFleet(2);
  LoopbackFleet fleet = PublishLoopbackFleet(trained);
  std::unique_ptr<ShardedEngine> reference = PublishReferenceFleet(trained);
  std::vector<std::vector<QueryId>> contexts = FleetContexts(300);
};

const Fixture& SharedFixture() {
  static const Fixture* fixture = new Fixture();
  return *fixture;
}

RouterClient FaultyRouter(const Fixture& fixture, FaultPlan plan,
                          RouterOptions options = {},
                          size_t faulty_connections = SIZE_MAX) {
  return RouterClient(
      static_cast<uint32_t>(fixture.fleet.borrowed.size()),
      FaultyFactory(LoopbackTransportFactory(fixture.fleet.borrowed,
                                             /*fleet_version=*/1),
                    std::move(plan), faulty_connections),
      options);
}

void ExpectBitIdenticalToReference(const Fixture& fixture,
                                   const BatchResult& batch) {
  const std::vector<Recommendation> expected =
      fixture.reference->RecommendMany(fixture.contexts, 5);
  ASSERT_EQ(batch.results.size(), expected.size());
  EXPECT_EQ(batch.served, expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(batch.statuses[i], StatusCode::kOk) << "item " << i;
    serve_test::ExpectSameRecommendation(expected[i], batch.results[i]);
  }
}

TEST(FaultInjectionTest, SlowPeerPartialWritesAndShortReadsStillServe) {
  const Fixture& fixture = SharedFixture();
  // 3-byte writes, 5-byte reads: every frame crosses the seam in dozens
  // of fragments, exactly what a congested peer produces. Served output
  // must be bit-identical to in-process.
  FaultPlan plan;
  plan.max_write_chunk = 3;
  plan.max_read_chunk = 5;
  RouterClient router = FaultyRouter(fixture, plan);
  const BatchResult batch = router.RecommendMany(fixture.contexts, 5);
  EXPECT_TRUE(batch.admission.ok());
  ExpectBitIdenticalToReference(fixture, batch);
}

TEST(FaultInjectionTest, MidFrameDisconnectSurfacesUnavailable) {
  const Fixture& fixture = SharedFixture();
  // The response dies 4 bytes into its body (prelude is 16). With one
  // attempt and every connection faulty, the affected items must come
  // back kUnavailable — uncovered-empty, never garbage.
  FaultPlan plan;
  plan.truncate_read_at = 20;
  RouterClient router =
      FaultyRouter(fixture, plan, RouterOptions{.max_attempts = 1});
  const BatchResult batch = router.RecommendMany(fixture.contexts, 5);
  EXPECT_EQ(batch.served, 0u);
  EXPECT_EQ(batch.admission.code(), StatusCode::kUnavailable);
  for (const StatusCode status : batch.statuses) {
    EXPECT_EQ(status, StatusCode::kUnavailable);
  }
  EXPECT_GE(router.stats().unavailable, 1u);
}

TEST(FaultInjectionTest, ReconnectAfterMidFrameDisconnectRecovers) {
  const Fixture& fixture = SharedFixture();
  // Only the first connection dialed is faulty (the router dials shards
  // lazily, so that is shard 0's); its reconnect gets a clean stream —
  // the graceful-restart path, ending bit-identical.
  FaultPlan plan;
  plan.truncate_read_at = 20;
  RouterClient router = FaultyRouter(fixture, plan,
                                     RouterOptions{.max_attempts = 2},
                                     /*faulty_connections=*/1);
  const BatchResult batch = router.RecommendMany(fixture.contexts, 5);
  EXPECT_TRUE(batch.admission.ok());
  EXPECT_GE(router.stats().reconnects, 1u);
  ExpectBitIdenticalToReference(fixture, batch);
}

TEST(FaultInjectionTest, WriteFailureMidFrameRecoversOnReconnect) {
  const Fixture& fixture = SharedFixture();
  FaultPlan plan;
  plan.fail_write_at = 10;  // the connection dies mid-prelude of a request
  RouterClient router = FaultyRouter(fixture, plan,
                                     RouterOptions{.max_attempts = 2},
                                     /*faulty_connections=*/1);
  const BatchResult batch = router.RecommendMany(fixture.contexts, 5);
  EXPECT_TRUE(batch.admission.ok());
  EXPECT_GE(router.stats().reconnects, 1u);
  ExpectBitIdenticalToReference(fixture, batch);
}

struct CorruptionCase {
  const char* name;
  size_t offset;
  uint8_t mask;
};

/// Response-stream corruptions that must surface kDataLoss: garbage
/// magic, an unsupported protocol version, an unknown frame type, an
/// oversized length prefix, and a body bit-flip caught by the CRC.
TEST(FaultInjectionTest, CorruptResponsesSurfaceDataLoss) {
  const Fixture& fixture = SharedFixture();
  const CorruptionCase cases[] = {
      {"garbage magic", 0, 0x5A},
      {"version mismatch", 4, 0x03},
      {"unknown frame type", 6, 0x40},
      {"oversized length prefix", 11, 0x7F},
      {"body bit flip", 20, 0x10},
  };
  for (const CorruptionCase& fault : cases) {
    FaultPlan plan;
    plan.flip_read = {{fault.offset, fault.mask}};
    RouterClient router =
        FaultyRouter(fixture, plan, RouterOptions{.max_attempts = 1});
    const BatchResult batch = router.RecommendMany(fixture.contexts, 5);
    EXPECT_EQ(batch.served, 0u) << fault.name;
    EXPECT_EQ(batch.admission.code(), StatusCode::kDataLoss) << fault.name;
    for (const StatusCode status : batch.statuses) {
      EXPECT_EQ(status, StatusCode::kDataLoss) << fault.name;
    }
    EXPECT_GE(router.stats().wire_errors, 1u) << fault.name;
  }
}

TEST(FaultInjectionTest, DataLossNeverRetries) {
  const Fixture& fixture = SharedFixture();
  // Resending bytes cannot repair a corrupt stream, so kDataLoss must
  // surface immediately even with retries budgeted — a retry loop here
  // would mask real protocol bugs as flakiness.
  FaultPlan plan;
  plan.flip_read = {{20, 0x10}};
  RouterClient router =
      FaultyRouter(fixture, plan, RouterOptions{.max_attempts = 5});
  const BatchResult batch = router.RecommendMany(fixture.contexts, 5);
  EXPECT_EQ(batch.served, 0u);
  EXPECT_EQ(router.stats().reconnects, 0u);
  EXPECT_GE(router.stats().wire_errors, 1u);
  for (const StatusCode status : batch.statuses) {
    EXPECT_EQ(status, StatusCode::kDataLoss);
  }
}

// ------------------------------------------------------ real-socket faults

TEST(FaultInjectionTest, ServerDropsGarbageConnectionAndKeepsServing) {
  const Fixture& fixture = SharedFixture();
  ShardServer server;
  ASSERT_TRUE(
      server.StartWithEngine(fixture.fleet.borrowed[0], /*fleet_version=*/1)
          .ok());

  // A peer speaking garbage: the server must close exactly that
  // connection (we observe EOF) and count it dropped.
  auto garbage = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(garbage.ok());
  ASSERT_TRUE(
      SetIoTimeout(garbage->get(), std::chrono::seconds(5)).ok());
  std::vector<uint8_t> noise(64, 0xEE);
  ASSERT_TRUE(WriteAllFd(garbage->get(), noise.data(), noise.size()).ok());
  uint8_t buf[16];
  auto n = ReadSomeFd(garbage->get(), buf, sizeof(buf));
  EXPECT_FALSE(n.ok());  // closed by the server, not answered
  EXPECT_EQ(n.status().code(), StatusCode::kUnavailable);

  // And a well-behaved client is completely unaffected.
  RouterClient router(1,
                      TcpTransportFactory("127.0.0.1", {server.port()}));
  const BatchResult batch = router.RecommendMany(fixture.contexts, 5);
  EXPECT_TRUE(batch.admission.ok());
  EXPECT_EQ(batch.served, fixture.contexts.size());
  EXPECT_GE(server.stats().connections_dropped, 1u);
  server.Stop();
}

TEST(FaultInjectionTest, StalledConnectionTimesOutInsteadOfHanging) {
  const Fixture& fixture = SharedFixture();
  // A listener that accepts but never answers: the router's read must
  // time out (kUnavailable) within the transport's io_timeout — the
  // "never hang" guarantee, bounded well below the test timeout.
  auto listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  auto port = BoundPort(listener->get());
  ASSERT_TRUE(port.ok());

  RouterClient router(
      1,
      TcpTransportFactory("127.0.0.1", {*port},
                          /*io_timeout=*/std::chrono::milliseconds(100)),
      RouterOptions{.max_attempts = 1});
  const auto start = std::chrono::steady_clock::now();
  const BatchResult batch = router.RecommendMany(fixture.contexts, 5);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(batch.served, 0u);
  for (const StatusCode status : batch.statuses) {
    EXPECT_EQ(status, StatusCode::kUnavailable);
  }
  EXPECT_LT(elapsed, std::chrono::seconds(10));
}

}  // namespace
}  // namespace sqp::net_test
