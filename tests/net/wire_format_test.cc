// Wire-format contract tests: round-trips through the real encoders and
// the FrameAssembler, the pinned status-byte mapping, hostile length
// fields, and the committed golden frames with the same exhaustive
// byte-flip + every-prefix-truncation discipline that pins the snapshot
// blob and manifest formats (tests/core/snapshot_io_test.cc).

#include "net/wire_format.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/byte_io.h"

namespace sqp::net {
namespace {

WireRequest CanonicalRequest() {
  WireRequest request;
  request.request_id = 7;
  request.deadline_remaining_us = 250000;
  request.expected_fleet_version = 3;
  request.lane = QosLane::kBulk;
  request.top_n = 5;
  request.contexts = {{1, 2, 3}, {42}, {}, {7, 100000}};
  return request;
}

WireResponse CanonicalResponse() {
  WireResponse response;
  response.request_id = 7;
  response.fleet_version = 3;
  response.admission = StatusCode::kOk;
  response.degraded = true;
  response.effective_top_n = 4;
  response.items = {
      {StatusCode::kOk, true, 2, {{2, 0.5}, {9, 0.25}, {11, 0.125}}},
      {StatusCode::kUnavailable, false, 0, {}},
      {StatusCode::kDeadlineExceeded, false, 0, {}},
      {StatusCode::kOk, true, 1, {{100000, 0.0625}}},
  };
  return response;
}

/// Runs `bytes` through the assembler as one stream and decodes the one
/// frame it must contain. Any framing problem, type mismatch, malformed
/// body, incomplete frame or trailing garbage is an error — the predicate
/// the corruption sweeps assert on.
Status DecodeWholeStream(std::span<const uint8_t> bytes, FrameType want,
                         WireRequest* request, WireResponse* response) {
  FrameAssembler assembler;
  SQP_RETURN_IF_ERROR(assembler.Feed(bytes));
  FrameHeader header;
  std::vector<uint8_t> body;
  bool ready = false;
  SQP_RETURN_IF_ERROR(assembler.Next(&header, &body, &ready));
  if (!ready) return Status::DataLoss("incomplete frame");
  if (header.type != want) return Status::DataLoss("unexpected frame type");
  if (want == FrameType::kRequest) {
    SQP_RETURN_IF_ERROR(DecodeRequestBody(body, request));
  } else {
    SQP_RETURN_IF_ERROR(DecodeResponseBody(body, response));
  }
  if (assembler.buffered_bytes() != 0) {
    return Status::DataLoss("trailing bytes after frame");
  }
  return Status::OK();
}

TEST(WireStatusTest, MappingIsPinnedAndTotal) {
  // The wire bytes are a protocol constant — reordering the C++ enum must
  // not change them. Every pair here is part of golden_frames_v1's
  // contract.
  const struct {
    StatusCode code;
    uint8_t wire;
  } kPinned[] = {
      {StatusCode::kOk, 0},
      {StatusCode::kInvalidArgument, 1},
      {StatusCode::kNotFound, 2},
      {StatusCode::kIOError, 3},
      {StatusCode::kFailedPrecondition, 4},
      {StatusCode::kOutOfRange, 5},
      {StatusCode::kInternal, 6},
      {StatusCode::kResourceExhausted, 7},
      {StatusCode::kDeadlineExceeded, 8},
      {StatusCode::kUnavailable, 9},
      {StatusCode::kDataLoss, 10},
  };
  for (const auto& pin : kPinned) {
    EXPECT_EQ(WireStatusOf(pin.code), pin.wire)
        << StatusCodeName(pin.code);
    StatusCode decoded;
    ASSERT_TRUE(StatusFromWire(pin.wire, &decoded)) << int{pin.wire};
    EXPECT_EQ(decoded, pin.code) << int{pin.wire};
  }
  StatusCode unused;
  for (int wire = 11; wire <= 255; ++wire) {
    EXPECT_FALSE(StatusFromWire(static_cast<uint8_t>(wire), &unused))
        << wire;
  }
}

TEST(WireFormatTest, RequestRoundTrips) {
  const WireRequest request = CanonicalRequest();
  std::vector<uint8_t> frame;
  EncodeRequestFrame(request, &frame);
  WireRequest decoded;
  WireResponse unused;
  ASSERT_TRUE(
      DecodeWholeStream(frame, FrameType::kRequest, &decoded, &unused).ok());
  EXPECT_EQ(decoded, request);
}

TEST(WireFormatTest, ResponseRoundTrips) {
  const WireResponse response = CanonicalResponse();
  std::vector<uint8_t> frame;
  EncodeResponseFrame(response, &frame);
  WireRequest unused;
  WireResponse decoded;
  ASSERT_TRUE(
      DecodeWholeStream(frame, FrameType::kResponse, &unused, &decoded).ok());
  EXPECT_EQ(decoded, response);
}

TEST(WireFormatTest, UnboundedAndMinimalRequestRoundTrips) {
  WireRequest request;  // defaults: unbounded deadline, no contexts
  request.request_id = 1;
  std::vector<uint8_t> frame;
  EncodeRequestFrame(request, &frame);
  WireRequest decoded;
  WireResponse unused;
  ASSERT_TRUE(
      DecodeWholeStream(frame, FrameType::kRequest, &decoded, &unused).ok());
  EXPECT_EQ(decoded.deadline_remaining_us, kUnboundedDeadlineMicros);
  EXPECT_EQ(decoded, request);
}

TEST(FrameAssemblerTest, ReassemblesByteAtATimeDelivery) {
  std::vector<uint8_t> frame;
  EncodeRequestFrame(CanonicalRequest(), &frame);
  FrameAssembler assembler;
  for (uint8_t byte : frame) {
    ASSERT_TRUE(assembler.Feed({&byte, 1}).ok());
  }
  FrameHeader header;
  std::vector<uint8_t> body;
  bool ready = false;
  ASSERT_TRUE(assembler.Next(&header, &body, &ready).ok());
  ASSERT_TRUE(ready);
  EXPECT_EQ(header.type, FrameType::kRequest);
  WireRequest decoded;
  ASSERT_TRUE(DecodeRequestBody(body, &decoded).ok());
  EXPECT_EQ(decoded, CanonicalRequest());
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
}

TEST(FrameAssemblerTest, DrainsPipelinedFramesInOrder) {
  std::vector<uint8_t> first, second, stream;
  WireRequest a = CanonicalRequest();
  a.request_id = 100;
  WireRequest b = CanonicalRequest();
  b.request_id = 101;
  EncodeRequestFrame(a, &first);
  EncodeRequestFrame(b, &second);
  stream = first;
  stream.insert(stream.end(), second.begin(), second.end());

  FrameAssembler assembler;
  // Split at an offset that lands mid-prelude of the second frame.
  const size_t split = first.size() + 7;
  ASSERT_TRUE(assembler.Feed({stream.data(), split}).ok());
  ASSERT_TRUE(
      assembler.Feed({stream.data() + split, stream.size() - split}).ok());
  for (uint64_t want : {uint64_t{100}, uint64_t{101}}) {
    FrameHeader header;
    std::vector<uint8_t> body;
    bool ready = false;
    ASSERT_TRUE(assembler.Next(&header, &body, &ready).ok());
    ASSERT_TRUE(ready);
    WireRequest decoded;
    ASSERT_TRUE(DecodeRequestBody(body, &decoded).ok());
    EXPECT_EQ(decoded.request_id, want);
  }
}

TEST(FrameAssemblerTest, RejectsOversizedBodyLength) {
  std::vector<uint8_t> frame;
  EncodeRequestFrame(CanonicalRequest(), &frame);
  // Claim a body just over the assembler's cap; the prelude alone must
  // poison the stream — no amount of further bytes may produce a frame.
  FrameAssembler assembler(/*max_body_bytes=*/1024);
  StoreLE32(frame.data() + 8, 1025);
  Status fed = assembler.Feed(frame);
  EXPECT_EQ(fed.code(), StatusCode::kDataLoss) << fed.ToString();
  FrameHeader header;
  std::vector<uint8_t> body;
  bool ready = false;
  EXPECT_EQ(assembler.Next(&header, &body, &ready).code(),
            StatusCode::kDataLoss);
  EXPECT_FALSE(ready);
}

TEST(WireFormatTest, HostileCountsAreRejectedWithoutOverRead) {
  // A request body whose context count claims far more data than the body
  // holds: the decoder must reject by arithmetic, not crash or reserve.
  std::vector<uint8_t> body(36, 0);
  StoreLE64(body.data() + 0, 1);                    // request_id
  StoreLE64(body.data() + 8, kUnboundedDeadlineMicros);
  StoreLE64(body.data() + 16, 0);                   // expected version
  body[24] = 0;                                     // lane (+3 reserved)
  StoreLE32(body.data() + 28, 10);                  // top_n
  StoreLE32(body.data() + 32, 0xFFFFFFFFu);         // num_contexts
  WireRequest decoded;
  EXPECT_EQ(DecodeRequestBody(body, &decoded).code(), StatusCode::kDataLoss);

  // Same for a response whose item's query count lies.
  WireResponse response = CanonicalResponse();
  std::vector<uint8_t> frame;
  EncodeResponseFrame(response, &frame);
  std::vector<uint8_t> resp_body(frame.begin() + kFramePreludeBytes,
                                 frame.end());
  // items start at offset 28 in the response body; the first item's query
  // count lives at +8 within the item.
  StoreLE32(resp_body.data() + 28 + 8, 0x7FFFFFFFu);
  WireResponse decoded_response;
  EXPECT_EQ(DecodeResponseBody(resp_body, &decoded_response).code(),
            StatusCode::kDataLoss);
}

// ------------------------------------------------ format compatibility

/// The committed golden frames: one canonical request frame followed by
/// one canonical response frame, byte for byte. Regenerate with
///   SQP_REGEN_GOLDEN=1 ./sqp_net_tests --gtest_filter='*Golden*'
/// and commit the file together with a kWireProtocolVersion bump whenever
/// the encoding intentionally changes.
constexpr char kGoldenRelPath[] = "/golden_frames_v1.bin";

std::vector<uint8_t> GoldenStream() {
  std::vector<uint8_t> request_frame, response_frame;
  EncodeRequestFrame(CanonicalRequest(), &request_frame);
  EncodeResponseFrame(CanonicalResponse(), &response_frame);
  std::vector<uint8_t> stream = request_frame;
  stream.insert(stream.end(), response_frame.begin(), response_frame.end());
  return stream;
}

std::string GoldenPath() {
  return std::string(SQP_TEST_DATA_DIR) + kGoldenRelPath;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

TEST(WireGoldenTest, CommittedFramesMatchCurrentEncoder) {
  const std::vector<uint8_t> stream = GoldenStream();
  if (std::getenv("SQP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(stream.data()),
              static_cast<std::streamsize>(stream.size()));
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }
  ASSERT_TRUE(std::filesystem::exists(GoldenPath()))
      << GoldenPath() << " is missing — regenerate with SQP_REGEN_GOLDEN=1";

  // Byte-for-byte: any encoder change without a version bump fails here.
  const std::vector<uint8_t> committed = ReadAll(GoldenPath());
  ASSERT_EQ(committed.size(), stream.size())
      << "wire encoding changed size — bump kWireProtocolVersion and "
         "regenerate the golden";
  EXPECT_EQ(committed, stream)
      << "wire encoding drifted — bump kWireProtocolVersion and regenerate";

  // And the committed bytes decode to exactly the canonical structs.
  FrameAssembler assembler;
  ASSERT_TRUE(assembler.Feed(committed).ok());
  FrameHeader header;
  std::vector<uint8_t> body;
  bool ready = false;
  ASSERT_TRUE(assembler.Next(&header, &body, &ready).ok() && ready);
  ASSERT_EQ(header.type, FrameType::kRequest);
  WireRequest request;
  ASSERT_TRUE(DecodeRequestBody(body, &request).ok());
  EXPECT_EQ(request, CanonicalRequest());
  ASSERT_TRUE(assembler.Next(&header, &body, &ready).ok() && ready);
  ASSERT_EQ(header.type, FrameType::kResponse);
  WireResponse response;
  ASSERT_TRUE(DecodeResponseBody(body, &response).ok());
  EXPECT_EQ(response, CanonicalResponse());
}

/// Splits the committed golden stream back into its two frames.
void GoldenFrames(std::vector<uint8_t>* request_frame,
                  std::vector<uint8_t>* response_frame) {
  const std::vector<uint8_t> stream =
      std::filesystem::exists(GoldenPath()) ? ReadAll(GoldenPath())
                                            : GoldenStream();
  ASSERT_GT(stream.size(), kFramePreludeBytes);
  const size_t request_size =
      kFramePreludeBytes + LoadLE32(stream.data() + 8);
  ASSERT_LT(request_size, stream.size());
  request_frame->assign(stream.begin(),
                        stream.begin() + static_cast<ptrdiff_t>(request_size));
  response_frame->assign(
      stream.begin() + static_cast<ptrdiff_t>(request_size), stream.end());
}

/// Exhaustive single-bit-flip sweep over both golden frames: every bit of
/// every byte, flipped one at a time, must produce a typed rejection —
/// the prelude by validation, the body by CRC. No flip may decode
/// successfully, hang, or over-read (the suite runs under ASan in CI).
TEST(WireGoldenTest, EverySingleBitFlipIsRejected) {
  std::vector<uint8_t> frames[2];
  GoldenFrames(&frames[0], &frames[1]);
  const FrameType types[2] = {FrameType::kRequest, FrameType::kResponse};
  for (int f = 0; f < 2; ++f) {
    size_t rejected = 0;
    for (size_t at = 0; at < frames[f].size(); ++at) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<uint8_t> mutated = frames[f];
        mutated[at] ^= static_cast<uint8_t>(1u << bit);
        WireRequest request;
        WireResponse response;
        const Status status =
            DecodeWholeStream(mutated, types[f], &request, &response);
        EXPECT_FALSE(status.ok())
            << "frame " << f << " byte " << at << " bit " << bit
            << " flip not detected";
        if (!status.ok()) ++rejected;
      }
    }
    EXPECT_EQ(rejected, frames[f].size() * 8);
  }
}

/// Every-prefix-truncation sweep: no proper prefix of either golden frame
/// may yield a complete decoded frame.
TEST(WireGoldenTest, EveryPrefixTruncationIsRejected) {
  std::vector<uint8_t> frames[2];
  GoldenFrames(&frames[0], &frames[1]);
  const FrameType types[2] = {FrameType::kRequest, FrameType::kResponse};
  for (int f = 0; f < 2; ++f) {
    for (size_t len = 0; len < frames[f].size(); ++len) {
      WireRequest request;
      WireResponse response;
      const Status status = DecodeWholeStream(
          {frames[f].data(), len}, types[f], &request, &response);
      EXPECT_FALSE(status.ok())
          << "frame " << f << " truncated to " << len << " bytes decoded";
    }
  }
}

/// Trailing garbage after a complete frame is visible to the stream
/// helper (a lone frame plus noise never silently passes).
TEST(WireGoldenTest, TrailingGarbageIsRejected) {
  std::vector<uint8_t> frames[2];
  GoldenFrames(&frames[0], &frames[1]);
  std::vector<uint8_t> noisy = frames[0];
  noisy.push_back(0xAB);
  WireRequest request;
  WireResponse response;
  EXPECT_FALSE(
      DecodeWholeStream(noisy, FrameType::kRequest, &request, &response)
          .ok());
}

}  // namespace
}  // namespace sqp::net
