#include <gtest/gtest.h>

#include "core/model_factory.h"
#include "eval/evaluator.h"
#include "log/session_aggregator.h"
#include "log/session_segmenter.h"
#include "synth/log_synthesizer.h"

namespace sqp {
namespace {

/// The library's determinism contract: identical seeds reproduce identical
/// corpora, identical trained models, and identical metric values, end to
/// end. This is what makes every bench binary's output reproducible.
struct PipelineOutput {
  std::vector<AggregatedSession> train;
  std::vector<GroundTruthEntry> truth;
  size_t vocabulary = 0;
  std::map<size_t, double> mvmm_ndcg_at_3;
};

PipelineOutput RunOnce(uint64_t seed) {
  Vocabulary vocab(VocabularyConfig{.num_terms = 600, .synonym_fraction = 0.3},
                   501);
  TopicModel topics(&vocab,
                    TopicModelConfig{.num_topics = 10,
                                     .terms_per_topic = 12,
                                     .intents_per_topic = 10,
                                     .chain_depth = 4},
                    502);
  SynthesizerConfig config;
  config.num_sessions = 5000;
  config.num_machines = 80;
  LogSynthesizer synth(&topics, config);
  const SynthCorpus train_corpus = synth.Synthesize(seed, nullptr);
  const SynthCorpus test_corpus = synth.Synthesize(seed + 1, nullptr);

  PipelineOutput out;
  QueryDictionary dict;
  SessionSegmenter segmenter;
  std::vector<Session> train_sessions;
  std::vector<Session> test_sessions;
  SQP_CHECK_OK(segmenter.Segment(train_corpus.records, &dict, &train_sessions));
  SQP_CHECK_OK(segmenter.Segment(test_corpus.records, &dict, &test_sessions));
  SessionAggregator train_agg;
  train_agg.Add(train_sessions);
  out.train = train_agg.Finish();
  SessionAggregator test_agg;
  test_agg.Add(test_sessions);
  out.truth = BuildGroundTruth(test_agg.Finish(), 5);
  out.vocabulary = dict.size();

  TrainingData data;
  data.sessions = &out.train;
  data.vocabulary_size = dict.size();
  MvmmOptions mvmm_options;
  mvmm_options.default_max_depth = 5;
  MvmmModel mvmm(mvmm_options);
  SQP_CHECK_OK(mvmm.Train(data));

  AccuracyOptions acc_options;
  acc_options.ndcg_positions = {3};
  const ModelAccuracy acc = EvaluateAccuracy(mvmm, out.truth, acc_options);
  if (acc.ndcg.count(3) > 0) out.mvmm_ndcg_at_3 = acc.ndcg.at(3);
  return out;
}

bool SessionsEqual(const std::vector<AggregatedSession>& a,
                   const std::vector<AggregatedSession>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].queries != b[i].queries || a[i].frequency != b[i].frequency) {
      return false;
    }
  }
  return true;
}

TEST(DeterminismTest, IdenticalSeedsIdenticalEverything) {
  const PipelineOutput a = RunOnce(777);
  const PipelineOutput b = RunOnce(777);
  EXPECT_EQ(a.vocabulary, b.vocabulary);
  EXPECT_TRUE(SessionsEqual(a.train, b.train));
  ASSERT_EQ(a.truth.size(), b.truth.size());
  ASSERT_EQ(a.mvmm_ndcg_at_3.size(), b.mvmm_ndcg_at_3.size());
  for (const auto& [len, value] : a.mvmm_ndcg_at_3) {
    ASSERT_TRUE(b.mvmm_ndcg_at_3.count(len));
    EXPECT_DOUBLE_EQ(value, b.mvmm_ndcg_at_3.at(len)) << "length " << len;
  }
}

TEST(DeterminismTest, DifferentSeedsDifferentCorpora) {
  const PipelineOutput a = RunOnce(777);
  const PipelineOutput b = RunOnce(778);
  EXPECT_FALSE(SessionsEqual(a.train, b.train));
}

}  // namespace
}  // namespace sqp
