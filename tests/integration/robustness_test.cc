// Failure injection: the library must degrade with clean Status errors (or
// reject input outright), never crash or silently mis-parse, when fed
// corrupted log files, truncated model files, or adversarial corpora.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/model_factory.h"
#include "core/serialization.h"
#include "eval/evaluator.h"
#include "log/log_io.h"
#include "log/session_segmenter.h"
#include "util/random.h"

namespace sqp {
namespace {

std::string TempPath(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("sqp_robustness_" + tag + ".tmp"))
      .string();
}

/// Byte-level fuzz of a valid log file: flip/delete/insert random bytes and
/// confirm the reader either succeeds or fails cleanly with IOError /
/// InvalidArgument — never crashes, never returns OK with garbage counts.
TEST(LogCorruptionTest, FuzzedFilesFailCleanly) {
  // A valid baseline file.
  std::vector<RawLogRecord> records;
  for (int i = 0; i < 50; ++i) {
    RawLogRecord r;
    r.machine_id = static_cast<uint64_t>(i % 7 + 1);
    r.timestamp_ms = 1000 * i;
    r.query = "query number " + std::to_string(i % 13);
    if (i % 3 == 0) {
      r.clicks.push_back(UrlClick{1000 * i + 100, "www.site.example.com"});
    }
    records.push_back(std::move(r));
  }
  const std::string base_path = TempPath("fuzz_base");
  ASSERT_TRUE(WriteLogFile(base_path, records).ok());
  std::string contents;
  {
    std::ifstream in(base_path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  std::remove(base_path.c_str());

  Rng rng(4242);
  const std::string fuzz_path = TempPath("fuzz");
  for (int round = 0; round < 200; ++round) {
    std::string mutated = contents;
    const size_t mutations = 1 + rng.UniformInt(4);
    for (size_t m = 0; m < mutations && !mutated.empty(); ++m) {
      const size_t pos = rng.UniformInt(mutated.size());
      switch (rng.UniformInt(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.UniformInt(256));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.UniformInt(256)));
          break;
      }
    }
    {
      std::ofstream out(fuzz_path, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    std::vector<RawLogRecord> loaded;
    const Status st = ReadLogFile(fuzz_path, &loaded);  // must not crash
    if (st.ok()) {
      // Whatever parsed must be structurally valid.
      for (const RawLogRecord& r : loaded) {
        EXPECT_FALSE(r.query.empty());
      }
    } else {
      EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    }
  }
  std::remove(fuzz_path.c_str());
}

/// Truncate a serialized VMM at every 64-byte boundary: loading must fail
/// cleanly (or succeed only for the full file).
TEST(ModelCorruptionTest, TruncationSweepFailsCleanly) {
  const std::vector<AggregatedSession> sessions{
      {{0, 1, 2}, 6}, {{1, 2}, 7}, {{0, 2, 1}, 6}, {{2, 0}, 3}};
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = 3;
  VmmModel model(VmmOptions{.epsilon = 0.0});
  ASSERT_TRUE(model.Train(data).ok());
  const std::string path = TempPath("truncate");
  ASSERT_TRUE(SaveVmmModel(model, path).ok());
  const auto full_size = std::filesystem::file_size(path);

  const std::string cut_path = TempPath("truncate_cut");
  for (uintmax_t size = 0; size < full_size; size += 64) {
    std::filesystem::copy_file(
        path, cut_path, std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(cut_path, size);
    VmmModel loaded;
    const Status st = LoadVmmModel(cut_path, &loaded);  // must not crash
    EXPECT_FALSE(st.ok()) << "truncated to " << size << " of " << full_size;
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

/// Bit-flip fuzz of a serialized VMM: load must never crash; a loaded model
/// must serve recommendations without invariant violations.
TEST(ModelCorruptionTest, BitFlipSweepNeverCrashes) {
  const std::vector<AggregatedSession> sessions{
      {{0, 1, 2}, 6}, {{1, 2}, 7}, {{0, 2, 1}, 6}};
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = 3;
  VmmModel model(VmmOptions{.epsilon = 0.0});
  ASSERT_TRUE(model.Train(data).ok());
  const std::string path = TempPath("bitflip_base");
  ASSERT_TRUE(SaveVmmModel(model, path).ok());
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(in), {});
  }
  std::remove(path.c_str());

  Rng rng(777);
  const std::string flip_path = TempPath("bitflip");
  for (int round = 0; round < 100; ++round) {
    std::string mutated = contents;
    // Flip one random bit beyond the magic so the header check can pass.
    const size_t pos = 8 + rng.UniformInt(mutated.size() - 8);
    mutated[pos] = static_cast<char>(
        mutated[pos] ^ static_cast<char>(1 << rng.UniformInt(8)));
    {
      std::ofstream out(flip_path, std::ios::binary | std::ios::trunc);
      out << mutated;
    }
    VmmModel loaded;
    const Status st = LoadVmmModel(flip_path, &loaded);  // must not crash
    if (st.ok()) {
      // A structurally valid mutation: the model must still behave.
      const Recommendation rec =
          loaded.Recommend(std::vector<QueryId>{0}, 5);
      for (size_t i = 1; i < rec.queries.size(); ++i) {
        EXPECT_GE(rec.queries[i - 1].score, rec.queries[i].score);
      }
    }
  }
  std::remove(flip_path.c_str());
}

/// Adversarial corpora: degenerate shapes must train and answer cleanly.
TEST(AdversarialCorpusTest, DegenerateCorporaHandled) {
  const std::vector<std::vector<AggregatedSession>> corpora = {
      {},                                  // empty
      {{{0}, 1000000}},                    // single singleton, huge weight
      {{{0, 0, 0, 0, 0, 0, 0, 0}, 3}},     // one query repeated
      {{{0, 1}, 1}, {{1, 0}, 1}},          // tiny cycle
  };
  for (const auto& sessions : corpora) {
    const auto suite = CreatePaperSuite(5);
    TrainingData data;
    data.sessions = &sessions;
    data.vocabulary_size = 2;
    ASSERT_TRUE(TrainAll(suite, data).ok());
    for (const auto& model : suite) {
      const Recommendation rec =
          model->Recommend(std::vector<QueryId>{0}, 5);
      EXPECT_EQ(rec.covered, !rec.queries.empty()) << model->Name();
      const double p = model->ConditionalProb(std::vector<QueryId>{0}, 1);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0 + 1e-9);
    }
  }
}

/// A context far longer than anything trained must not crash or mis-rank.
TEST(AdversarialCorpusTest, VeryLongContextHandled) {
  const std::vector<AggregatedSession> sessions{{{0, 1}, 5}, {{1, 0}, 5}};
  const auto suite = CreatePaperSuite(5);
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = 2;
  ASSERT_TRUE(TrainAll(suite, data).ok());
  std::vector<QueryId> long_context;
  for (int i = 0; i < 500; ++i) long_context.push_back(i % 2 == 0 ? 0u : 1u);
  for (const auto& model : suite) {
    const Recommendation rec = model->Recommend(long_context, 5);
    for (const ScoredQuery& sq : rec.queries) {
      EXPECT_LE(sq.query, 1u) << model->Name();
    }
  }
}

/// Interleaved, unsorted, multi-machine records with duplicated timestamps
/// must segment deterministically.
TEST(AdversarialCorpusTest, MessyRecordStreamSegments) {
  std::vector<RawLogRecord> records;
  Rng rng(31337);
  for (int i = 0; i < 500; ++i) {
    RawLogRecord r;
    r.machine_id = rng.UniformInt(5) + 1;
    r.timestamp_ms = static_cast<int64_t>(rng.UniformInt(50)) * 60000;
    r.query = "q" + std::to_string(rng.UniformInt(20));
    records.push_back(std::move(r));
  }
  QueryDictionary dict_a;
  QueryDictionary dict_b;
  std::vector<Session> sessions_a;
  std::vector<Session> sessions_b;
  ASSERT_TRUE(SessionSegmenter().Segment(records, &dict_a, &sessions_a).ok());
  ASSERT_TRUE(SessionSegmenter().Segment(records, &dict_b, &sessions_b).ok());
  ASSERT_EQ(sessions_a.size(), sessions_b.size());
  for (size_t i = 0; i < sessions_a.size(); ++i) {
    EXPECT_EQ(sessions_a[i].queries, sessions_b[i].queries);
  }
}

}  // namespace
}  // namespace sqp
