#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/model_factory.h"
#include "eval/coverage.h"
#include "eval/evaluator.h"
#include "eval/log_loss.h"
#include "eval/user_study.h"
#include "log/data_reduction.h"
#include "log/log_io.h"
#include "log/session_aggregator.h"
#include "log/session_segmenter.h"
#include "log/session_stats.h"
#include "synth/log_synthesizer.h"

namespace sqp {
namespace {

/// Full end-to-end exercise of the published pipeline:
/// synthesize raw logs -> write/read the TSV file -> segment -> aggregate
/// -> reduce -> train the paper suite -> evaluate (shape assertions only;
/// exact numbers are checked in the per-module tests and recorded by the
/// bench binaries).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    state_ = new State();
    state_->vocab = std::make_unique<Vocabulary>(
        VocabularyConfig{.num_terms = 900, .synonym_fraction = 0.35}, 401);
    state_->topics = std::make_unique<TopicModel>(
        state_->vocab.get(),
        TopicModelConfig{.num_topics = 15,
                         .terms_per_topic = 14,
                         .intents_per_topic = 12,
                         .chain_depth = 4},
        402);

    SynthesizerConfig train_config;
    train_config.num_sessions = 12000;
    train_config.num_machines = 150;
    SynthesizerConfig test_config = train_config;
    test_config.num_sessions = 3000;

    LogSynthesizer train_synth(state_->topics.get(), train_config);
    LogSynthesizer test_synth(state_->topics.get(), test_config);
    const SynthCorpus train_corpus =
        train_synth.Synthesize(403, &state_->oracle);
    const SynthCorpus test_corpus =
        test_synth.Synthesize(404, &state_->oracle);

    // Round-trip the raw training log through the file format. The path
    // must be process-unique: ctest runs every case of this suite as its
    // own process, and parallel runs otherwise race on one file.
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("sqp_pipeline_test_" + std::to_string(::getpid()) + ".tsv"))
            .string();
    SQP_CHECK_OK(WriteLogFile(path, train_corpus.records));
    std::vector<RawLogRecord> loaded;
    SQP_CHECK_OK(ReadLogFile(path, &loaded));
    std::remove(path.c_str());
    SQP_CHECK(loaded == train_corpus.records);

    // Segment + aggregate both splits.
    SessionSegmenter segmenter;
    std::vector<Session> train_sessions;
    std::vector<Session> test_sessions;
    SQP_CHECK_OK(segmenter.Segment(loaded, &state_->dict, &train_sessions));
    SQP_CHECK_OK(
        segmenter.Segment(test_corpus.records, &state_->dict, &test_sessions));

    SessionAggregator train_agg;
    train_agg.Add(train_sessions);
    SessionAggregator test_agg;
    test_agg.Add(test_sessions);

    // Reduce (scaled-down threshold: this corpus is ~5 orders smaller than
    // the paper's).
    ReductionOptions reduction;
    reduction.min_frequency_exclusive = 1;
    reduction.max_session_length = 10;
    state_->train = ReduceSessions(train_agg.Finish(), reduction,
                                   &state_->train_report);
    // Keep rare test sessions (see bench/harness.cc for the scaling
    // argument): evaluation needs the long-session tail.
    ReductionOptions test_reduction = reduction;
    test_reduction.min_frequency_exclusive = 0;
    state_->test = ReduceSessions(test_agg.Finish(), test_reduction, nullptr);
    state_->truth = BuildGroundTruth(state_->test, 5);
    state_->roles = ComputeQueryRoles(state_->train);

    state_->data.sessions = &state_->train;
    state_->data.vocabulary_size = state_->dict.size();
    state_->suite = CreatePaperSuite(/*vmm_max_depth=*/5);
    SQP_CHECK_OK(TrainAll(state_->suite, state_->data));
  }

  static void TearDownTestSuite() {
    delete state_;
    state_ = nullptr;
  }

  // Suffix match so that depth-bounded names like "5-bounded VMM (0.05)"
  // are found by their paper name "VMM (0.05)".
  PredictionModel* Find(std::string_view name) {
    for (const auto& model : state_->suite) {
      const std::string_view model_name = model->Name();
      if (model_name == name ||
          (model_name.size() > name.size() &&
           model_name.substr(model_name.size() - name.size()) == name)) {
        return model.get();
      }
    }
    SQP_CHECK(false);
    return nullptr;
  }

  struct State {
    std::unique_ptr<Vocabulary> vocab;
    std::unique_ptr<TopicModel> topics;
    RelatednessOracle oracle;
    QueryDictionary dict;
    std::vector<AggregatedSession> train;
    std::vector<AggregatedSession> test;
    std::vector<GroundTruthEntry> truth;
    QueryRoles roles;
    ReductionReport train_report;
    TrainingData data;
    std::vector<std::unique_ptr<PredictionModel>> suite;
  };
  static State* state_;
};

PipelineTest::State* PipelineTest::state_ = nullptr;

TEST_F(PipelineTest, CorpusHasPaperLikeShape) {
  EXPECT_GT(state_->train.size(), 700u);
  EXPECT_GT(state_->dict.size(), 500u);
  const double mean_length = MeanSessionLength(state_->train);
  EXPECT_GT(mean_length, 1.3);
  EXPECT_LT(mean_length, 3.5);
}

TEST_F(PipelineTest, AggregatedFrequencyTailIsHeavy) {
  const double alpha = FrequencyPowerLawAlpha(state_->train, 2);
  // Power-law-ish tail (paper Fig. 6 shows a straight log-log line).
  EXPECT_GT(alpha, 1.2);
  EXPECT_LT(alpha, 4.0);
}

TEST_F(PipelineTest, ReductionKeptMajorityOfWeight) {
  EXPECT_GT(state_->train_report.kept_weight_fraction(), 0.4);
  EXPECT_LT(state_->train_report.sessions_kept,
            state_->train_report.sessions_in);
}

TEST_F(PipelineTest, AllModelsProduceRecommendations) {
  size_t covered_any = 0;
  for (const GroundTruthEntry& entry : state_->truth) {
    for (const auto& model : state_->suite) {
      const Recommendation rec = model->Recommend(entry.context, 5);
      if (rec.covered) {
        ++covered_any;
        break;
      }
    }
  }
  EXPECT_GT(covered_any, state_->truth.size() / 2);
}

TEST_F(PipelineTest, CoverageOrderingMatchesPaperFig10) {
  const auto coverage = [&](std::string_view name) {
    return MeasureCoverage(*Find(name), state_->truth).overall;
  };
  const double cooc = coverage("Co-occurrence");
  const double adj = coverage("Adjacency");
  const double vmm = coverage("VMM (0.05)");
  const double mvmm = coverage("MVMM");
  const double ngram = coverage("N-gram");
  EXPECT_GE(cooc + 1e-12, adj);
  EXPECT_NEAR(adj, vmm, 1e-12);
  EXPECT_NEAR(adj, mvmm, 1e-12);
  EXPECT_LT(ngram, adj);
  EXPECT_GT(adj, 0.3);
  EXPECT_LT(adj, 1.0);
}

TEST_F(PipelineTest, SequenceModelsBeatPairwiseOnLongContexts) {
  AccuracyOptions options;
  options.ndcg_positions = {5};
  const double mvmm =
      EvaluateAccuracy(*Find("MVMM"), state_->truth, options)
          .ndcg_overall.at(5);
  const double cooc =
      EvaluateAccuracy(*Find("Co-occurrence"), state_->truth, options)
          .ndcg_overall.at(5);
  EXPECT_GT(mvmm, cooc);
}

TEST_F(PipelineTest, NgramCoverageCollapsesWithContextLength)
{
  const CoverageResult ngram = MeasureCoverage(*Find("N-gram"), state_->truth);
  const CoverageResult vmm =
      MeasureCoverage(*Find("VMM (0.05)"), state_->truth);
  ASSERT_TRUE(ngram.by_context_length.count(3));
  ASSERT_TRUE(vmm.by_context_length.count(3));
  // Paper Fig. 11: VMM holds up at longer contexts, N-gram collapses.
  EXPECT_GT(vmm.by_context_length.at(3),
            ngram.by_context_length.at(3));
}

TEST_F(PipelineTest, UnpredictableReasonsNested) {
  // Reason sets grow Co-occ -> Adj (paper Table VI): Adjacency's
  // unpredictable weight strictly contains Co-occurrence's.
  const ReasonBreakdown cooc = ClassifyUnpredictable(
      *Find("Co-occurrence"), state_->roles, state_->truth);
  const ReasonBreakdown adj =
      ClassifyUnpredictable(*Find("Adjacency"), state_->roles, state_->truth);
  const auto uncovered = [](const ReasonBreakdown& b) {
    return b.total_weight -
           b.weight[static_cast<size_t>(UnpredictableReason::kCovered)];
  };
  EXPECT_LE(uncovered(cooc), uncovered(adj));
  // Reason (3) never applies to Co-occurrence.
  EXPECT_EQ(cooc.weight[static_cast<size_t>(
                UnpredictableReason::kOnlyLastPosition)],
            0u);
}

TEST_F(PipelineTest, LogLossFiniteAndOrdered) {
  const double mvmm_loss = AverageLogLoss(*Find("MVMM"), state_->test);
  const double cooc_loss =
      AverageLogLoss(*Find("Co-occurrence"), state_->test);
  EXPECT_GT(mvmm_loss, 0.0);
  EXPECT_LT(mvmm_loss, 15.0);
  EXPECT_LT(mvmm_loss, cooc_loss);
}

TEST_F(PipelineTest, UserStudyRunsEndToEnd) {
  UserStudyOptions options;
  options.contexts_per_length = 50;
  options.context_lengths = {1, 2};
  options.labeler_noise = 0.1;
  std::vector<const PredictionModel*> models;
  for (const auto& model : state_->suite) models.push_back(model.get());
  const UserStudyResult result = RunUserStudy(
      models, state_->truth, state_->dict, state_->oracle, options);
  ASSERT_EQ(result.methods.size(), state_->suite.size());
  EXPECT_GT(result.pooled_ground_truth, 0u);
  for (const MethodUserEval& eval : result.methods) {
    EXPECT_GT(eval.overall.num_predicted, 0u) << eval.model;
    EXPECT_LE(eval.overall.precision(), 1.0) << eval.model;
  }
}

}  // namespace
}  // namespace sqp
