#include "util/status.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::NotFound("missing key").message(), "missing key");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::IOError("disk gone").ToString(), "IOError: disk gone");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusCodeNameTest, AllCodesNamed) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> r(std::string("abc"));
  r.value() += "def";
  EXPECT_EQ(*r, "abcdef");
  EXPECT_EQ(r->size(), 6u);
}

TEST(ResultTest, OkStatusConstructionBecomesInternalError) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Status HelperThatFails() { return Status::IOError("inner"); }

Status UsesReturnIfError() {
  SQP_RETURN_IF_ERROR(HelperThatFails());
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kIOError);
}

Status HelperThatSucceeds() { return Status::OK(); }

Status UsesReturnIfErrorOk() {
  SQP_RETURN_IF_ERROR(HelperThatSucceeds());
  return Status::NotFound("fell through");
}

TEST(StatusMacrosTest, ReturnIfErrorFallsThroughOnOk) {
  EXPECT_EQ(UsesReturnIfErrorOk().code(), StatusCode::kNotFound);
}

TEST(StatusMacrosTest, CheckPassesOnTrue) {
  SQP_CHECK(1 + 1 == 2);  // must not abort
  SQP_CHECK_OK(Status::OK());
}

TEST(StatusDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH(SQP_CHECK(false), "SQP_CHECK failed");
}

TEST(StatusDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(SQP_CHECK_OK(Status::Internal("boom")), "boom");
}

}  // namespace
}  // namespace sqp
