#include "util/string_util.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

TEST(SplitTest, BasicTsv) {
  const auto fields = Split("a\tb\tc", '\t');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto fields = Split("a\t\tc\t", '\t');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitTest, NoSeparator) {
  const auto fields = Split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  const auto fields = Split("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(SplitWhitespaceTest, DropsEmptyTokens) {
  const auto tokens = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "foo");
  EXPECT_EQ(tokens[1], "bar");
  EXPECT_EQ(tokens[2], "baz");
}

TEST(SplitWhitespaceTest, AllWhitespace) {
  EXPECT_TRUE(SplitWhitespace(" \t\n ").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(Join(std::vector<std::string>{"solo"}, ","), "solo");
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(ToLowerTest, LowersAsciiOnly) {
  EXPECT_EQ(ToLower("AbC dEf"), "abc def");
  EXPECT_EQ(ToLower("123!"), "123!");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(ParseUint64Test, ValidInputs) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(ParseUint64Test, RejectsMalformed) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64(" 1", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
}

TEST(ParseInt64Test, ValidInputs) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);
}

TEST(ParseInt64Test, RejectsMalformed) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("-", &v));
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));   // overflow
  EXPECT_FALSE(ParseInt64("-9223372036854775809", &v));  // underflow
}

}  // namespace
}  // namespace sqp
