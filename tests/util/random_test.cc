#include "util/random.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace sqp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformIntStaysInBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformInt(bound), bound);
  }
}

TEST(RngTest, UniformIntBoundOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformIntCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliDegenerateEnds) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(29);
  const double p = 0.25;
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Geometric(p));
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(31);
  const double lambda = 2.0;
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(lambda);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(41);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(43);
  Rng fork = a.Fork();
  // The fork differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == fork.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.1);
  double total = 0.0;
  for (size_t k = 0; k < zipf.size(); ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, PmfMonotonicallyDecreasing) {
  ZipfSampler zipf(50, 1.5);
  for (size_t k = 1; k < zipf.size(); ++k) {
    EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1) + 1e-12);
  }
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (size_t k = 0; k < zipf.size(); ++k) {
    EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-9);
  }
}

TEST(ZipfSamplerTest, SingleElementAlwaysZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(47);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

// Parameterized frequency check: empirical head frequency matches the pmf
// across exponents.
class ZipfSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweepTest, EmpiricalHeadMatchesPmf) {
  const double s = GetParam();
  const size_t n = 200;
  ZipfSampler zipf(n, s);
  Rng rng(53);
  std::vector<int> counts(n, 0);
  const int draws = 60000;
  for (int i = 0; i < draws; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t k = 0; k < 3; ++k) {
    const double expected = zipf.Pmf(k);
    const double observed = static_cast<double>(counts[k]) / draws;
    EXPECT_NEAR(observed, expected, 0.015)
        << "s=" << s << " rank=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSweepTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.15, 1.5, 2.0));

}  // namespace
}  // namespace sqp
