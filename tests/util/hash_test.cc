#include "util/hash.h"

#include <vector>

#include <gtest/gtest.h>

namespace sqp {
namespace {

TEST(Fnv1aTest, StableKnownValue) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
}

TEST(Fnv1aTest, DiffersByContent) {
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString("abc"), HashString("ab"));
}

TEST(Fnv1aTest, SameContentSameHash) {
  EXPECT_EQ(HashString("query recommendation"),
            HashString("query recommendation"));
}

TEST(Fnv1aTest, SeedChangesHash) {
  const char data[] = "x";
  EXPECT_NE(Fnv1a64(data, 1, 1), Fnv1a64(data, 1, 2));
}

TEST(HashCombineTest, OrderSensitive) {
  const uint64_t h = 0x1234;
  EXPECT_NE(HashCombine(HashCombine(h, 1), 2),
            HashCombine(HashCombine(h, 2), 1));
}

TEST(HashIdSequenceTest, EmptySequenceStable) {
  std::vector<uint32_t> empty;
  EXPECT_EQ(HashIdSequence(empty), HashIdSequence(empty));
}

TEST(HashIdSequenceTest, LengthDisambiguation) {
  // [0] vs [0, 0] vs [] must all differ (id 0 is a valid QueryId).
  std::vector<uint32_t> none;
  std::vector<uint32_t> one{0};
  std::vector<uint32_t> two{0, 0};
  EXPECT_NE(HashIdSequence(none), HashIdSequence(one));
  EXPECT_NE(HashIdSequence(one), HashIdSequence(two));
}

TEST(HashIdSequenceTest, OrderSensitive) {
  std::vector<uint32_t> ab{1, 2};
  std::vector<uint32_t> ba{2, 1};
  EXPECT_NE(HashIdSequence(ab), HashIdSequence(ba));
}

TEST(IdSequenceHashTest, UsableInUnorderedMap) {
  std::unordered_map<std::vector<uint32_t>, int, IdSequenceHash> map;
  map[{1, 2, 3}] = 7;
  map[{1, 2}] = 8;
  EXPECT_EQ(map.at({1, 2, 3}), 7);
  EXPECT_EQ(map.at({1, 2}), 8);
  EXPECT_EQ(map.size(), 2u);
}

}  // namespace
}  // namespace sqp
