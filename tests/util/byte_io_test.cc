// The shared endian-safe byte I/O layer (util/byte_io.h) backs both
// on-disk formats (VMM files, snapshot blobs): little-endian encoding must
// be exact byte-for-byte, reads must fail cleanly on truncation (never
// touch the output), and CRC32 must match the reference implementation.

#include "util/byte_io.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace sqp {
namespace {

TEST(ByteIoTest, StoreLoadLittleEndianExactBytes) {
  uint8_t buffer[8];
  StoreLE16(buffer, 0x0102);
  EXPECT_EQ(buffer[0], 0x02);
  EXPECT_EQ(buffer[1], 0x01);
  EXPECT_EQ(LoadLE16(buffer), 0x0102);

  StoreLE32(buffer, 0x01020304u);
  EXPECT_EQ(buffer[0], 0x04);
  EXPECT_EQ(buffer[1], 0x03);
  EXPECT_EQ(buffer[2], 0x02);
  EXPECT_EQ(buffer[3], 0x01);
  EXPECT_EQ(LoadLE32(buffer), 0x01020304u);

  StoreLE64(buffer, 0x0102030405060708ull);
  EXPECT_EQ(buffer[0], 0x08);
  EXPECT_EQ(buffer[7], 0x01);
  EXPECT_EQ(LoadLE64(buffer), 0x0102030405060708ull);
}

TEST(ByteIoTest, RoundTripExtremes) {
  uint8_t buffer[8];
  for (const uint64_t v :
       {uint64_t{0}, uint64_t{1}, std::numeric_limits<uint64_t>::max(),
        uint64_t{0x8000000000000000ull}}) {
    StoreLE64(buffer, v);
    EXPECT_EQ(LoadLE64(buffer), v);
  }
  StoreLE16(buffer, 0xffff);
  EXPECT_EQ(LoadLE16(buffer), 0xffff);
  StoreLE32(buffer, 0xffffffffu);
  EXPECT_EQ(LoadLE32(buffer), 0xffffffffu);
}

TEST(ByteIoTest, Crc32MatchesReferenceVector) {
  // The canonical CRC-32 check value (IEEE 802.3, reflected).
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(ByteIoTest, Crc32UpdateChainsLikeOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t one_shot = Crc32(data.data(), data.size());
  for (const size_t split : {size_t{0}, size_t{1}, size_t{10}, data.size()}) {
    uint32_t chained = Crc32(data.data(), split);
    chained = Crc32Update(chained, data.data() + split, data.size() - split);
    EXPECT_EQ(chained, one_shot) << "split at " << split;
  }
}

TEST(ByteIoTest, WriterReaderRoundTripAllFieldTypes) {
  std::stringstream stream;
  ByteWriter writer(&stream);
  writer.U8(0xAB);
  writer.U16(0x1234);
  writer.U32(0xDEADBEEFu);
  writer.U64(0x0123456789ABCDEFull);
  writer.I32(-123456);
  writer.F64(-0.15625);  // exactly representable
  writer.F64(std::numeric_limits<double>::infinity());
  ASSERT_TRUE(writer.good());

  ByteReader reader(&stream);
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  double f64 = 0.0, inf = 0.0;
  ASSERT_TRUE(reader.U8(&u8));
  ASSERT_TRUE(reader.U16(&u16));
  ASSERT_TRUE(reader.U32(&u32));
  ASSERT_TRUE(reader.U64(&u64));
  ASSERT_TRUE(reader.I32(&i32));
  ASSERT_TRUE(reader.F64(&f64));
  ASSERT_TRUE(reader.F64(&inf));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -123456);
  EXPECT_EQ(f64, -0.15625);
  EXPECT_EQ(inf, std::numeric_limits<double>::infinity());
}

TEST(ByteIoTest, TruncatedReadsFailAndLeaveOutputUntouched) {
  // One byte short of a U32: the read must return false and must not
  // scribble on the destination.
  std::stringstream stream;
  stream.write("\x01\x02\x03", 3);
  ByteReader reader(&stream);
  uint32_t value = 0xCAFEBABEu;
  EXPECT_FALSE(reader.U32(&value));
  EXPECT_EQ(value, 0xCAFEBABEu);

  // Empty stream: every field type fails.
  std::stringstream empty;
  ByteReader empty_reader(&empty);
  uint8_t u8 = 7;
  uint64_t u64 = 7;
  double f64 = 7.0;
  EXPECT_FALSE(empty_reader.U8(&u8));
  EXPECT_FALSE(empty_reader.U64(&u64));
  EXPECT_FALSE(empty_reader.F64(&f64));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u64, 7u);
  EXPECT_EQ(f64, 7.0);
}

TEST(ByteIoTest, ReaderStopsAtExactBoundary) {
  std::stringstream stream;
  ByteWriter writer(&stream);
  writer.U32(42);
  ByteReader reader(&stream);
  uint32_t value = 0;
  ASSERT_TRUE(reader.U32(&value));
  EXPECT_EQ(value, 42u);
  EXPECT_FALSE(reader.U32(&value));  // nothing left
}

TEST(ByteIoTest, ByteSwapInPlaceIsSelfInverse) {
  std::vector<uint32_t> values = {0x01020304u, 0xAABBCCDDu, 0u, 0xFFFFFFFFu};
  const std::vector<uint32_t> original = values;
  ByteSwapInPlace(std::span<uint32_t>(values));
  EXPECT_EQ(values[0], 0x04030201u);
  ByteSwapInPlace(std::span<uint32_t>(values));
  EXPECT_EQ(values, original);

  std::vector<uint64_t> wide = {0x0102030405060708ull};
  ByteSwapInPlace(std::span<uint64_t>(wide));
  EXPECT_EQ(wide[0], 0x0807060504030201ull);

  std::vector<uint16_t> narrow = {0x0102};
  ByteSwapInPlace(std::span<uint16_t>(narrow));
  EXPECT_EQ(narrow[0], 0x0201);
}

}  // namespace
}  // namespace sqp
