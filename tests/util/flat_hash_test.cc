#include "util/flat_hash.h"

#include <map>

#include <gtest/gtest.h>

#include "util/random.h"

namespace sqp {
namespace {

TEST(FlatU64MapTest, InsertAndFind) {
  FlatU64Map map;
  EXPECT_TRUE(map.empty());
  map[42] = 7;
  map[0] = 1;  // key 0 is a valid key (only ~0 is reserved)
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(42), nullptr);
  EXPECT_EQ(*map.Find(42), 7u);
  ASSERT_NE(map.Find(0), nullptr);
  EXPECT_EQ(*map.Find(0), 1u);
  EXPECT_EQ(map.Find(43), nullptr);
}

TEST(FlatU64MapTest, OperatorBracketDefaultsToZeroAndAccumulates) {
  FlatU64Map map;
  map[10] += 5;
  map[10] += 3;
  EXPECT_EQ(*map.Find(10), 8u);
}

TEST(FlatU64MapTest, GrowsPreservingContents) {
  FlatU64Map map(2);
  std::map<uint64_t, uint64_t> reference;
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.Next() >> 8;  // never ~0
    const uint64_t bump = 1 + rng.UniformInt(100);
    map[key] += bump;
    reference[key] += bump;
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_NE(map.Find(key), nullptr);
    EXPECT_EQ(*map.Find(key), value);
  }
  size_t visited = 0;
  uint64_t sum = 0;
  map.ForEach([&](uint64_t key, uint64_t value) {
    ++visited;
    sum += value;
    EXPECT_EQ(reference.at(key), value);
  });
  EXPECT_EQ(visited, reference.size());
  uint64_t expected_sum = 0;
  for (const auto& [key, value] : reference) expected_sum += value;
  EXPECT_EQ(sum, expected_sum);
}

TEST(FlatU64MapTest, ResetClears) {
  FlatU64Map map;
  for (uint64_t i = 0; i < 100; ++i) map[i] = i;
  map.Reset();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(5), nullptr);
  map[5] = 6;  // usable after Reset
  EXPECT_EQ(*map.Find(5), 6u);
}

}  // namespace
}  // namespace sqp
