#include "util/edit_distance.h"

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

namespace sqp {
namespace {

using StringCase = std::tuple<std::string, std::string, size_t>;

class StringEditDistanceTest : public ::testing::TestWithParam<StringCase> {};

TEST_P(StringEditDistanceTest, MatchesExpected) {
  const auto& [a, b, expected] = GetParam();
  EXPECT_EQ(EditDistance(std::string_view(a), std::string_view(b)), expected);
}

INSTANTIATE_TEST_SUITE_P(
    KnownCases, StringEditDistanceTest,
    ::testing::Values(
        StringCase{"", "", 0}, StringCase{"a", "", 1}, StringCase{"", "abc", 3},
        StringCase{"abc", "abc", 0}, StringCase{"kitten", "sitting", 3},
        StringCase{"goggle", "google", 1},  // the paper's spelling example
        StringCase{"youtub", "youtube", 1},
        StringCase{"flaw", "lawn", 2}, StringCase{"abc", "cba", 2}));

TEST(StringEditDistanceTest, Symmetry) {
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"abcd", "badc"}, {"query", "queries"}, {"x", "yz"}};
  for (const auto& [a, b] : cases) {
    EXPECT_EQ(EditDistance(std::string_view(a), std::string_view(b)),
              EditDistance(std::string_view(b), std::string_view(a)));
  }
}

TEST(IdEditDistanceTest, EmptySequences) {
  std::vector<uint32_t> empty;
  std::vector<uint32_t> abc{1, 2, 3};
  EXPECT_EQ(EditDistance(std::span<const uint32_t>(empty),
                         std::span<const uint32_t>(empty)),
            0u);
  EXPECT_EQ(EditDistance(std::span<const uint32_t>(abc),
                         std::span<const uint32_t>(empty)),
            3u);
}

TEST(IdEditDistanceTest, SuffixDistanceIsLengthDifference) {
  // The MVMM case: matched state is a suffix of the context.
  std::vector<uint32_t> context{5, 6, 7, 8};
  std::vector<uint32_t> suffix{7, 8};
  EXPECT_EQ(EditDistance(std::span<const uint32_t>(context),
                         std::span<const uint32_t>(suffix)),
            2u);
}

TEST(IdEditDistanceTest, SubstitutionCountsOne) {
  std::vector<uint32_t> a{1, 2, 3};
  std::vector<uint32_t> b{1, 9, 3};
  EXPECT_EQ(EditDistance(std::span<const uint32_t>(a),
                         std::span<const uint32_t>(b)),
            1u);
}

TEST(IdEditDistanceTest, TriangleInequalityHolds) {
  std::vector<uint32_t> a{1, 2, 3, 4};
  std::vector<uint32_t> b{2, 3, 4, 5};
  std::vector<uint32_t> c{9, 9};
  const size_t ab = EditDistance(std::span<const uint32_t>(a),
                                 std::span<const uint32_t>(b));
  const size_t bc = EditDistance(std::span<const uint32_t>(b),
                                 std::span<const uint32_t>(c));
  const size_t ac = EditDistance(std::span<const uint32_t>(a),
                                 std::span<const uint32_t>(c));
  EXPECT_LE(ac, ab + bc);
}

TEST(IdEditDistanceTest, BoundedByMaxLength) {
  std::vector<uint32_t> a{1, 2, 3, 4, 5};
  std::vector<uint32_t> b{6, 7};
  EXPECT_LE(EditDistance(std::span<const uint32_t>(a),
                         std::span<const uint32_t>(b)),
            5u);
}

}  // namespace
}  // namespace sqp
