#include "util/math_util.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace sqp {
namespace {

TEST(EntropyLog10Test, PaperJavaExample) {
  // "Java" followed by "Sun Java" 60 times and "Java island" 40 times:
  // entropy 0.29 in log base 10 (paper Section I-A).
  std::vector<double> counts{60, 40};
  EXPECT_NEAR(EntropyLog10(counts), 0.292, 0.001);
}

TEST(EntropyLog10Test, PaperContextExample) {
  // Given "Indonesia -> Java": 9 vs 1 -> entropy drops to 0.14.
  std::vector<double> counts{9, 1};
  EXPECT_NEAR(EntropyLog10(counts), 0.1412, 0.001);
}

TEST(EntropyLog10Test, DeterministicDistributionIsZero) {
  std::vector<double> counts{100};
  EXPECT_DOUBLE_EQ(EntropyLog10(counts), 0.0);
}

TEST(EntropyLog10Test, UniformIsLog10N) {
  std::vector<double> counts{1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  EXPECT_NEAR(EntropyLog10(counts), 1.0, 1e-9);  // log10(10)
}

TEST(EntropyLog10Test, UnnormalizedInputHandled) {
  std::vector<double> a{6, 4};
  std::vector<double> b{0.6, 0.4};
  EXPECT_NEAR(EntropyLog10(a), EntropyLog10(b), 1e-12);
}

TEST(EntropyLog10Test, EmptyAndZeroInput) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(EntropyLog10(empty), 0.0);
  std::vector<double> zeros{0, 0};
  EXPECT_DOUBLE_EQ(EntropyLog10(zeros), 0.0);
}

TEST(KlDivergenceTest, IdenticalDistributionsZero) {
  std::vector<double> p{0.3, 0.7};
  EXPECT_NEAR(KlDivergenceLog10(p, p), 0.0, 1e-12);
}

TEST(KlDivergenceTest, PaperPstExampleValues) {
  // D_KL(q0 || q1q0): parent (0.9, 0.1) vs child (0.3, 0.7) = 0.3449.
  std::vector<double> parent{81, 9};
  std::vector<double> child{3, 7};
  EXPECT_NEAR(KlDivergenceLog10(parent, child), 0.3449, 0.0005);
  // D_KL(q1 || q0q1): parent (0.8, 0.2) vs child (0.5, 0.5) = 0.0837.
  std::vector<double> parent2{16, 4};
  std::vector<double> child2{1, 1};
  EXPECT_NEAR(KlDivergenceLog10(parent2, child2), 0.0837, 0.0005);
}

TEST(KlDivergenceTest, NonNegative) {
  std::vector<double> p{0.2, 0.5, 0.3};
  std::vector<double> q{0.4, 0.4, 0.2};
  EXPECT_GE(KlDivergenceLog10(p, q), 0.0);
  EXPECT_GE(KlDivergenceLog10(q, p), 0.0);
}

TEST(KlDivergenceTest, Asymmetric) {
  std::vector<double> p{0.9, 0.1};
  std::vector<double> q{0.5, 0.5};
  EXPECT_NE(KlDivergenceLog10(p, q), KlDivergenceLog10(q, p));
}

TEST(KlDivergenceTest, ZeroInChildUsesFloor) {
  std::vector<double> p{0.5, 0.5};
  std::vector<double> q{1.0, 0.0};
  const double kl = KlDivergenceLog10(p, q);
  EXPECT_GT(kl, 1.0);  // large but finite
  EXPECT_TRUE(std::isfinite(kl));
}

TEST(NormalizeInPlaceTest, SumsToOne) {
  std::vector<double> v{2, 3, 5};
  NormalizeInPlace(&v);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-12);
  EXPECT_NEAR(v[2], 0.5, 1e-12);
}

TEST(NormalizeInPlaceTest, ZeroSumIsNoOp) {
  std::vector<double> v{0, 0};
  NormalizeInPlace(&v);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(GaussianPdfTest, PeakAtZero) {
  EXPECT_NEAR(GaussianPdf(0.0, 1.0), 0.3989422804014327, 1e-12);
  EXPECT_GT(GaussianPdf(0.0, 1.0), GaussianPdf(1.0, 1.0));
}

TEST(GaussianPdfTest, WiderSigmaFlatter) {
  EXPECT_GT(GaussianPdf(3.0, 3.0), GaussianPdf(3.0, 0.5));
  EXPECT_LT(GaussianPdf(0.0, 3.0), GaussianPdf(0.0, 0.5));
}

TEST(SolveLinearSystemTest, Identity) {
  std::vector<double> a{1, 0, 0, 1};
  std::vector<double> b{3, 4};
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, b, 2, &x));
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 4.0, 1e-12);
}

TEST(SolveLinearSystemTest, General3x3) {
  // A = [[2,1,0],[1,3,1],[0,1,2]], b = A * [1,2,3].
  std::vector<double> a{2, 1, 0, 1, 3, 1, 0, 1, 2};
  std::vector<double> b{4, 10, 8};
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, b, 3, &x));
  EXPECT_NEAR(x[0], 1.0, 1e-9);
  EXPECT_NEAR(x[1], 2.0, 1e-9);
  EXPECT_NEAR(x[2], 3.0, 1e-9);
}

TEST(SolveLinearSystemTest, RequiresPivoting) {
  // Leading zero forces a row swap.
  std::vector<double> a{0, 1, 1, 0};
  std::vector<double> b{5, 7};
  std::vector<double> x;
  ASSERT_TRUE(SolveLinearSystem(a, b, 2, &x));
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(SolveLinearSystemTest, SingularFails) {
  std::vector<double> a{1, 2, 2, 4};
  std::vector<double> b{1, 2};
  std::vector<double> x;
  EXPECT_FALSE(SolveLinearSystem(a, b, 2, &x));
}

TEST(PowerLawAlphaTest, RecoversSyntheticExponent) {
  // Build a discrete power law with alpha = 2.0: count(f) ~ f^-2.
  std::vector<std::pair<double, double>> samples;
  for (int f = 2; f <= 2000; ++f) {
    samples.emplace_back(f, 1e7 * std::pow(f, -2.0));
  }
  const double alpha = EstimatePowerLawAlpha(samples, 2.0);
  EXPECT_NEAR(alpha, 2.0, 0.1);
}

TEST(PowerLawAlphaTest, NotEnoughDataReturnsZero) {
  std::vector<std::pair<double, double>> empty;
  EXPECT_DOUBLE_EQ(EstimatePowerLawAlpha(empty, 2.0), 0.0);
}

}  // namespace
}  // namespace sqp
