// The slim embedded predictor's contract suite (include/sqp/slim.h):
//
//   - equivalence: slim serves bit-identical top-10 lists (score bits
//     included) to the engine's CompactSnapshot on the committed golden
//     blob, over the same seeded context sweep the persistence suite uses;
//   - robustness: truncated and byte-flipped buffers never crash and the
//     two consumers agree on acceptance — whatever the engine loader
//     rejects as InvalidArgument, slim rejects as
//     SQP_STATUS_INVALID_ARGUMENT (both sit on core/blob_format, so this
//     pins that neither grows private validation);
//   - C-ABI hygiene: argument policing, the stats struct_size handshake,
//     and NULL-safe destroy.
//
// The pure-C side of the story (C99 TU, no libstdc++ on the link line)
// lives in slim_c_smoke.c.

#include "sqp/slim.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/compact_snapshot.h"
#include "core/snapshot_io.h"
#include "log/types.h"
#include "util/status.h"

namespace sqp {
namespace {

constexpr char kGoldenRelPath[] = "/golden_snapshot_v1.blob";
constexpr uint64_t kGoldenSeed = 77;
constexpr size_t kGoldenSessions = 500;
constexpr QueryId kGoldenVocabulary = 100;

std::string GoldenPath() {
  return std::string(SQP_TEST_DATA_DIR) + kGoldenRelPath;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

/// The same deterministic corpus generator the persistence suite seeds its
/// golden contexts from (tests/core/snapshot_io_test.cc) — kept in sync by
/// the shared constants above and the golden top-10 comparison below.
std::vector<std::vector<QueryId>> GoldenContexts(size_t limit) {
  uint64_t state = kGoldenSeed * 6364136223846793005ull +
                   1442695040888963407ull;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::vector<std::vector<QueryId>> contexts;
  for (size_t s = 0; s < kGoldenSessions; ++s) {
    std::vector<QueryId> session;
    const size_t length = 2 + next() % 5;
    session.reserve(length);
    for (size_t q = 0; q < length; ++q) {
      const QueryId a = static_cast<QueryId>(next() % kGoldenVocabulary);
      const QueryId b = static_cast<QueryId>(next() % kGoldenVocabulary);
      session.push_back(std::min(a, b));
    }
    next();  // the corpus draw for `frequency`, unused here
    for (size_t len = 1; len <= session.size(); ++len) {
      contexts.emplace_back(session.begin(),
                            session.begin() + static_cast<ptrdiff_t>(len));
      if (contexts.size() >= limit) return contexts;
    }
  }
  return contexts;
}

class SlimPredictorHandle {
 public:
  explicit SlimPredictorHandle(const std::vector<uint8_t>& blob) {
    status_ = sqp_slim_create_from_buffer(blob.data(), blob.size(), &p_);
  }
  ~SlimPredictorHandle() { sqp_slim_destroy(p_); }
  sqp_status_t status() const { return status_; }
  sqp_slim_predictor* get() const { return p_; }

 private:
  sqp_slim_predictor* p_ = nullptr;
  sqp_status_t status_ = SQP_STATUS_OK;
};

// --------------------------------------------------------- equivalence

TEST(SlimApiTest, BitIdenticalTopTenToEngineOnGoldenBlob) {
  const std::vector<uint8_t> blob = ReadFileBytes(GoldenPath());
  ASSERT_FALSE(blob.empty());

  const auto loaded = LoadCompactSnapshot(GoldenPath());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  SlimPredictorHandle slim(blob);
  ASSERT_EQ(slim.status(), SQP_STATUS_OK);

  SnapshotScratch scratch;
  uint32_t queries[10];
  double scores[10];
  size_t served = 0;
  size_t covered_contexts = 0;
  for (const std::vector<QueryId>& context : GoldenContexts(500)) {
    const Recommendation expected =
        (*loaded)->Recommend(context, 10, &scratch);

    size_t count = 0;
    size_t matched = 0;
    const sqp_status_t status =
        sqp_slim_recommend(slim.get(), context.data(), context.size(), 10,
                           queries, scores, &count, &matched);
    if (expected.covered) {
      ASSERT_EQ(status, SQP_STATUS_OK);
      ASSERT_EQ(count, expected.queries.size());
      EXPECT_EQ(matched, expected.matched_length);
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(queries[i], expected.queries[i].query);
        // Bit equality, not tolerance: both consumers run the same
        // serving_walk arithmetic in the same order.
        EXPECT_EQ(scores[i], expected.queries[i].score);
      }
      ++covered_contexts;
      served += count;
    } else {
      EXPECT_EQ(status, SQP_STATUS_NOT_FOUND);
      EXPECT_EQ(count, 0u);
    }
  }
  // The sweep must actually exercise the model, not vacuously pass.
  EXPECT_GT(covered_contexts, 100u);
  EXPECT_GT(served, 1000u);
}

TEST(SlimApiTest, StatsMatchEngineCounters) {
  const std::vector<uint8_t> blob = ReadFileBytes(GoldenPath());
  const auto loaded = LoadCompactSnapshot(GoldenPath());
  ASSERT_TRUE(loaded.ok());

  SlimPredictorHandle slim(blob);
  ASSERT_EQ(slim.status(), SQP_STATUS_OK);

  sqp_slim_stats_t stats;
  stats.struct_size = sizeof(stats);
  ASSERT_EQ(sqp_slim_stats(slim.get(), &stats), SQP_STATUS_OK);
  EXPECT_EQ(stats.struct_size, sizeof(stats));
  EXPECT_EQ(stats.snapshot_version, (*loaded)->version());
  EXPECT_EQ(stats.num_nodes, (*loaded)->num_nodes());
  EXPECT_EQ(stats.num_entries, (*loaded)->num_entries());
  EXPECT_EQ(stats.num_components, (*loaded)->sigmas().size());
  EXPECT_GT(stats.resident_bytes, 0u);
}

// ---------------------------------------------------------- robustness

/// Writes `bytes` to a scratch file and reports whether the engine loader
/// accepts them (every rejection must be InvalidArgument — the taxonomy
/// slim mirrors).
bool EngineAccepts(const std::vector<uint8_t>& bytes,
                   const std::string& tag) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("sqp_slim_corrupt_" + std::to_string(::getpid()) + "_" + tag))
          .string();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  const auto loaded = LoadCompactSnapshot(path);
  std::filesystem::remove(path);
  if (!loaded.ok()) {
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << tag << ": " << loaded.status().ToString();
  }
  return loaded.ok();
}

TEST(SlimApiTest, TruncatedBuffersAreTypedErrorsAndAgreeWithEngine) {
  const std::vector<uint8_t> blob = ReadFileBytes(GoldenPath());
  ASSERT_FALSE(blob.empty());
  const size_t cuts[] = {1,  8,   63,  64,  65,  blob.size() / 4,
                         blob.size() / 2, blob.size() - 64,
                         blob.size() - 1};
  for (const size_t cut : cuts) {
    ASSERT_LT(cut, blob.size());
    const std::vector<uint8_t> truncated(blob.begin(),
                                         blob.begin() +
                                             static_cast<ptrdiff_t>(cut));
    SlimPredictorHandle slim(truncated);
    EXPECT_EQ(slim.status(), SQP_STATUS_INVALID_ARGUMENT)
        << "cut=" << cut;
    EXPECT_FALSE(EngineAccepts(truncated, "trunc" + std::to_string(cut)))
        << "cut=" << cut;
  }
}

TEST(SlimApiTest, ByteFlippedBuffersAgreeWithEngine) {
  const std::vector<uint8_t> blob = ReadFileBytes(GoldenPath());
  ASSERT_FALSE(blob.empty());
  size_t rejected = 0;
  // A stride sweep over the whole file. Flips landing in the alignment
  // padding between sections are legitimately invisible to both readers
  // (no CRC covers padding); the contract under test is that slim and
  // the engine always AGREE, and reject with the same typed error.
  for (size_t offset = 0; offset < blob.size();
       offset += 1 + blob.size() / 97) {
    std::vector<uint8_t> flipped = blob;
    flipped[offset] ^= 0x40;
    SlimPredictorHandle slim(flipped);
    const bool engine_ok =
        EngineAccepts(flipped, "flip" + std::to_string(offset));
    if (engine_ok) {
      EXPECT_EQ(slim.status(), SQP_STATUS_OK) << "offset=" << offset;
    } else {
      EXPECT_EQ(slim.status(), SQP_STATUS_INVALID_ARGUMENT)
          << "offset=" << offset;
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 10u);  // the sweep must hit CRC-covered bytes
}

TEST(SlimApiTest, GarbageBuffersAreRejected) {
  const std::vector<uint8_t> zeros(4096, 0);
  SlimPredictorHandle slim(zeros);
  EXPECT_EQ(slim.status(), SQP_STATUS_INVALID_ARGUMENT);
}

// ------------------------------------------------------------ C hygiene

TEST(SlimApiTest, ArgumentPolicing) {
  const std::vector<uint8_t> blob = ReadFileBytes(GoldenPath());
  sqp_slim_predictor* p = nullptr;
  EXPECT_EQ(sqp_slim_create_from_buffer(nullptr, blob.size(), &p),
            SQP_STATUS_INVALID_ARGUMENT);
  EXPECT_EQ(sqp_slim_create_from_buffer(blob.data(), 0, &p),
            SQP_STATUS_INVALID_ARGUMENT);
  EXPECT_EQ(sqp_slim_create_from_buffer(blob.data(), blob.size(), nullptr),
            SQP_STATUS_INVALID_ARGUMENT);

  SlimPredictorHandle slim(blob);
  ASSERT_EQ(slim.status(), SQP_STATUS_OK);
  uint32_t queries[4];
  double scores[4];
  size_t count = 0;
  const uint32_t context[] = {1, 2};
  EXPECT_EQ(sqp_slim_recommend(nullptr, context, 2, 4, queries, scores,
                               &count, nullptr),
            SQP_STATUS_INVALID_ARGUMENT);
  EXPECT_EQ(sqp_slim_recommend(slim.get(), nullptr, 2, 4, queries, scores,
                               &count, nullptr),
            SQP_STATUS_INVALID_ARGUMENT);
  EXPECT_EQ(sqp_slim_recommend(slim.get(), context, 2, 4, nullptr, scores,
                               &count, nullptr),
            SQP_STATUS_INVALID_ARGUMENT);
  EXPECT_EQ(sqp_slim_recommend(slim.get(), context, 2, 4, queries, nullptr,
                               &count, nullptr),
            SQP_STATUS_INVALID_ARGUMENT);
  EXPECT_EQ(sqp_slim_recommend(slim.get(), context, 2, 4, queries, scores,
                               nullptr, nullptr),
            SQP_STATUS_INVALID_ARGUMENT);
  // Empty context: well-formed but never covered.
  EXPECT_EQ(sqp_slim_recommend(slim.get(), nullptr, 0, 4, queries, scores,
                               &count, nullptr),
            SQP_STATUS_NOT_FOUND);
  EXPECT_EQ(count, 0u);

  sqp_slim_stats_t stats;
  EXPECT_EQ(sqp_slim_stats(nullptr, &stats), SQP_STATUS_INVALID_ARGUMENT);
  EXPECT_EQ(sqp_slim_stats(slim.get(), nullptr),
            SQP_STATUS_INVALID_ARGUMENT);

  sqp_slim_destroy(nullptr);  // must be a no-op
}

TEST(SlimApiTest, TopNZeroIsCoveredWithEmptyList) {
  const std::vector<uint8_t> blob = ReadFileBytes(GoldenPath());
  SlimPredictorHandle slim(blob);
  ASSERT_EQ(slim.status(), SQP_STATUS_OK);

  // Find one covered context via the sweep generator.
  for (const std::vector<QueryId>& context : GoldenContexts(100)) {
    size_t count = 7;
    size_t matched = 0;
    const sqp_status_t status = sqp_slim_recommend(
        slim.get(), context.data(), context.size(), 0, nullptr, nullptr,
        &count, &matched);
    if (status == SQP_STATUS_OK) {
      EXPECT_EQ(count, 0u);
      EXPECT_GT(matched, 0u);
      return;
    }
    EXPECT_EQ(status, SQP_STATUS_NOT_FOUND);
  }
  FAIL() << "no covered context in the sweep";
}

TEST(SlimApiTest, StatusNamesArePinned) {
  EXPECT_STREQ(sqp_status_name(SQP_STATUS_OK), "OK");
  EXPECT_STREQ(sqp_status_name(SQP_STATUS_INVALID_ARGUMENT),
               "InvalidArgument");
  EXPECT_STREQ(sqp_status_name(SQP_STATUS_NOT_FOUND), "NotFound");
  EXPECT_STREQ(sqp_status_name(static_cast<sqp_status_t>(255)), "Unknown");
}

}  // namespace
}  // namespace sqp
