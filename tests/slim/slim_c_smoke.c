/* Pure-C smoke test for the slim embedded predictor (include/sqp/slim.h).
 *
 * Compiled as C99 and linked against libsqp_slim.a + libm ONLY — no
 * libstdc++, no pthread, no gtest. The link line is half the test: if the
 * slim library ever grows a C++-runtime or threading dependency, this
 * target stops linking, and CI's slim-abi job additionally inspects the
 * archive's undefined symbols with nm.
 *
 * Usage: sqp_slim_c_smoke <path-to-golden-blob>
 * Exits 0 on success; prints the failing check and exits 1 otherwise.
 */

#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#include "sqp/slim.h"

#define CHECK(cond)                                                   \
  do {                                                                \
    if (!(cond)) {                                                    \
      fprintf(stderr, "FAILED at %s:%d: %s\n", __FILE__, __LINE__,    \
              #cond);                                                 \
      return 1;                                                       \
    }                                                                 \
  } while (0)

static uint8_t* read_file(const char* path, size_t* out_size) {
  FILE* f = fopen(path, "rb");
  if (f == NULL) return NULL;
  if (fseek(f, 0, SEEK_END) != 0) {
    fclose(f);
    return NULL;
  }
  long size = ftell(f);
  if (size <= 0) {
    fclose(f);
    return NULL;
  }
  rewind(f);
  uint8_t* data = (uint8_t*)malloc((size_t)size); /* malloc: 8+ aligned */
  if (data == NULL) {
    fclose(f);
    return NULL;
  }
  if (fread(data, 1, (size_t)size, f) != (size_t)size) {
    free(data);
    fclose(f);
    return NULL;
  }
  fclose(f);
  *out_size = (size_t)size;
  return data;
}

int main(int argc, char** argv) {
  if (argc != 2) {
    fprintf(stderr, "usage: %s <golden_snapshot.blob>\n", argv[0]);
    return 1;
  }

  size_t blob_size = 0;
  uint8_t* blob = read_file(argv[1], &blob_size);
  CHECK(blob != NULL);

  /* Status names come from the shared pinned table. */
  CHECK(strcmp(sqp_status_name(SQP_STATUS_OK), "OK") == 0);
  CHECK(strcmp(sqp_status_name(SQP_STATUS_INVALID_ARGUMENT),
               "InvalidArgument") == 0);

  /* Create over the caller-owned buffer. */
  sqp_slim_predictor* predictor = NULL;
  sqp_status_t status =
      sqp_slim_create_from_buffer(blob, blob_size, &predictor);
  CHECK(status == SQP_STATUS_OK);
  CHECK(predictor != NULL);

  /* Stats: plausible model counters and a real resident footprint. */
  sqp_slim_stats_t stats;
  memset(&stats, 0, sizeof(stats));
  stats.struct_size = sizeof(stats);
  CHECK(sqp_slim_stats(predictor, &stats) == SQP_STATUS_OK);
  CHECK(stats.num_nodes > 0);
  CHECK(stats.num_entries > 0);
  CHECK(stats.num_components > 0);
  CHECK(stats.resident_bytes > 0);

  /* Serve: sweep single-query contexts until the model covers one (the
   * golden corpus draws ids from a small vocabulary, so this always
   * terminates quickly), then check the ranked list invariants. */
  uint32_t queries[10];
  double scores[10];
  size_t count = 0;
  size_t matched = 0;
  int served_one = 0;
  uint32_t q;
  for (q = 0; q < 100 && !served_one; ++q) {
    uint32_t context[1];
    context[0] = q;
    status = sqp_slim_recommend(predictor, context, 1, 10, queries, scores,
                                &count, &matched);
    if (status == SQP_STATUS_NOT_FOUND) continue;
    CHECK(status == SQP_STATUS_OK);
    CHECK(count > 0);
    CHECK(count <= 10);
    CHECK(matched == 1);
    {
      size_t i;
      for (i = 0; i < count; ++i) {
        CHECK(scores[i] > 0.0);
        if (i > 0) {
          /* Score-descending, query-ascending on ties. */
          CHECK(scores[i - 1] > scores[i] ||
                (scores[i - 1] == scores[i] && queries[i - 1] < queries[i]));
        }
      }
    }
    served_one = 1;
  }
  CHECK(served_one);

  /* Determinism: the same context twice yields the same bits. */
  {
    uint32_t context[1];
    uint32_t queries2[10];
    double scores2[10];
    size_t count2 = 0;
    size_t i;
    context[0] = q - 1; /* the context that served above */
    status = sqp_slim_recommend(predictor, context, 1, 10, queries2,
                                scores2, &count2, NULL);
    CHECK(status == SQP_STATUS_OK);
    CHECK(count2 == count);
    for (i = 0; i < count; ++i) {
      CHECK(queries2[i] == queries[i]);
      CHECK(scores2[i] == scores[i]);
    }
  }

  /* Typed errors, not crashes, on malformed input. */
  {
    sqp_slim_predictor* bad = NULL;
    CHECK(sqp_slim_create_from_buffer(blob, blob_size / 2, &bad) ==
          SQP_STATUS_INVALID_ARGUMENT);
    CHECK(bad == NULL);
    CHECK(sqp_slim_create_from_buffer(NULL, blob_size, &bad) ==
          SQP_STATUS_INVALID_ARGUMENT);
    blob[blob_size - 1] ^= 0xFF;
    blob[64] ^= 0xFF; /* inside the section table: CRC-covered */
    CHECK(sqp_slim_create_from_buffer(blob, blob_size, &bad) ==
          SQP_STATUS_INVALID_ARGUMENT);
  }

  sqp_slim_destroy(predictor);
  sqp_slim_destroy(NULL); /* no-op by contract */
  free(blob);
  printf("slim C smoke: OK\n");
  return 0;
}
