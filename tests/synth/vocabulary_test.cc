#include "synth/vocabulary.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace sqp {
namespace {

TEST(VocabularyTest, GeneratesRequestedSize) {
  VocabularyConfig config;
  config.num_terms = 500;
  Vocabulary vocab(config, 1);
  EXPECT_EQ(vocab.size(), 500u);
}

TEST(VocabularyTest, TermsAreUniqueAndNonEmpty) {
  VocabularyConfig config;
  config.num_terms = 1000;
  Vocabulary vocab(config, 2);
  std::unordered_set<std::string> seen;
  for (size_t i = 0; i < vocab.size(); ++i) {
    EXPECT_FALSE(vocab.term(i).empty());
    EXPECT_TRUE(seen.insert(vocab.term(i)).second) << vocab.term(i);
  }
}

TEST(VocabularyTest, DeterministicForSeed) {
  VocabularyConfig config;
  config.num_terms = 200;
  Vocabulary a(config, 42);
  Vocabulary b(config, 42);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.term(i), b.term(i));
    EXPECT_EQ(a.Synonym(i), b.Synonym(i));
  }
}

TEST(VocabularyTest, DifferentSeedsDiffer) {
  VocabularyConfig config;
  config.num_terms = 200;
  Vocabulary a(config, 1);
  Vocabulary b(config, 2);
  size_t same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.term(i) == b.term(i)) ++same;
  }
  EXPECT_LT(same, 20u);
}

TEST(VocabularyTest, SynonymFractionApproximate) {
  VocabularyConfig config;
  config.num_terms = 2000;
  config.synonym_fraction = 0.3;
  Vocabulary vocab(config, 3);
  size_t with_synonym = 0;
  for (size_t i = 0; i < vocab.size(); ++i) {
    if (vocab.HasSynonym(i)) ++with_synonym;
  }
  const double fraction = static_cast<double>(with_synonym) / 2000.0;
  EXPECT_NEAR(fraction, 0.3, 0.04);
}

TEST(VocabularyTest, SynonymDiffersFromAllTerms) {
  VocabularyConfig config;
  config.num_terms = 300;
  config.synonym_fraction = 1.0;
  Vocabulary vocab(config, 4);
  std::unordered_set<std::string> terms;
  for (size_t i = 0; i < vocab.size(); ++i) terms.insert(vocab.term(i));
  for (size_t i = 0; i < vocab.size(); ++i) {
    ASSERT_TRUE(vocab.HasSynonym(i));
    EXPECT_EQ(terms.count(*vocab.Synonym(i)), 0u);
  }
}

TEST(VocabularyTest, ZeroSynonymFraction) {
  VocabularyConfig config;
  config.num_terms = 100;
  config.synonym_fraction = 0.0;
  Vocabulary vocab(config, 5);
  for (size_t i = 0; i < vocab.size(); ++i) {
    EXPECT_FALSE(vocab.HasSynonym(i));
    EXPECT_FALSE(vocab.Synonym(i).has_value());
  }
}

TEST(VocabularyTest, MisspellAlwaysDiffers) {
  VocabularyConfig config;
  config.num_terms = 100;
  Vocabulary vocab(config, 6);
  Rng rng(7);
  for (size_t i = 0; i < vocab.size(); ++i) {
    for (int round = 0; round < 5; ++round) {
      EXPECT_NE(vocab.Misspell(vocab.term(i), &rng), vocab.term(i));
    }
  }
}

TEST(VocabularyTest, MisspellIsSmallEdit) {
  VocabularyConfig config;
  config.num_terms = 50;
  Vocabulary vocab(config, 8);
  Rng rng(9);
  for (size_t i = 0; i < vocab.size(); ++i) {
    const std::string typo = vocab.Misspell(vocab.term(i), &rng);
    const size_t diff =
        typo.size() > vocab.term(i).size() ? typo.size() - vocab.term(i).size()
                                           : vocab.term(i).size() - typo.size();
    EXPECT_LE(diff, 2u);
  }
}

}  // namespace
}  // namespace sqp
