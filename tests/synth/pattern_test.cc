#include "synth/pattern.h"

#include <map>

#include <gtest/gtest.h>

#include "util/edit_distance.h"

namespace sqp {
namespace {

class PatternTest : public ::testing::Test {
 protected:
  PatternTest()
      : vocab_(VocabularyConfig{.num_terms = 600, .synonym_fraction = 0.5},
               21),
        topics_(&vocab_,
                TopicModelConfig{.num_topics = 8,
                                 .terms_per_topic = 12,
                                 .intents_per_topic = 10,
                                 .chain_depth = 4},
                22),
        generator_(&topics_) {}

  Vocabulary vocab_;
  TopicModel topics_;
  PatternGenerator generator_;
};

TEST_F(PatternTest, NamesAreStable) {
  EXPECT_EQ(PatternTypeName(PatternType::kSpellingChange), "Spelling change");
  EXPECT_EQ(PatternTypeName(PatternType::kParallelMovement),
            "Parallel movement");
  EXPECT_EQ(PatternTypeName(PatternType::kGeneralization), "Generalization");
  EXPECT_EQ(PatternTypeName(PatternType::kSpecialization), "Specialization");
  EXPECT_EQ(PatternTypeName(PatternType::kSynonymSubstitution),
            "Synonym substitution");
  EXPECT_EQ(PatternTypeName(PatternType::kRepeatedQuery), "Repeated query");
  EXPECT_EQ(PatternTypeName(PatternType::kOthers), "Others");
}

TEST_F(PatternTest, DefaultWeightsMatchPaperOrderSensitiveShare) {
  PatternWeights weights;
  double total = 0.0;
  for (double w : weights.weight) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
  const double order_sensitive =
      weights.weight[static_cast<size_t>(PatternType::kSpellingChange)] +
      weights.weight[static_cast<size_t>(PatternType::kGeneralization)] +
      weights.weight[static_cast<size_t>(PatternType::kSpecialization)];
  EXPECT_NEAR(order_sensitive, 0.3434, 1e-9);  // 34.34% in paper Fig. 1
}

TEST_F(PatternTest, WeightSamplingMatchesDistribution) {
  PatternWeights weights;
  Rng rng(23);
  std::map<PatternType, int> counts;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[weights.Sample(&rng)];
  for (size_t t = 0; t < kNumPatternTypes; ++t) {
    const double expected = weights.weight[t];
    const double observed =
        static_cast<double>(counts[static_cast<PatternType>(t)]) / draws;
    EXPECT_NEAR(observed, expected, 0.01)
        << PatternTypeName(static_cast<PatternType>(t));
  }
}

TEST_F(PatternTest, SpellingChangeStartsWithTypo) {
  Rng rng(29);
  for (size_t intent = 0; intent < 20; ++intent) {
    const PatternResult result =
        generator_.Generate(PatternType::kSpellingChange, intent, &rng);
    ASSERT_GE(result.queries.size(), 2u);
    const std::string& base = topics_.intent(intent).chain[0];
    EXPECT_NE(result.queries[0], base);
    EXPECT_EQ(result.queries[1], base);
    EXPECT_LE(EditDistance(std::string_view(result.queries[0]),
                           std::string_view(base)),
              2u);
  }
}

TEST_F(PatternTest, ParallelMovementHopsWithinTopic) {
  Rng rng(31);
  for (size_t intent = 0; intent < 20; ++intent) {
    const PatternResult result =
        generator_.Generate(PatternType::kParallelMovement, intent, &rng);
    ASSERT_GE(result.queries.size(), 2u);
    ASSERT_EQ(result.queries.size(), result.intents.size());
    const size_t topic = topics_.intent(intent).topic;
    for (size_t provenance : result.intents) {
      EXPECT_EQ(topics_.intent(provenance).topic, topic);
    }
    EXPECT_NE(result.intents[1], result.intents[0]);
  }
}

TEST_F(PatternTest, GeneralizationShortensQueries) {
  Rng rng(37);
  for (size_t intent = 0; intent < 20; ++intent) {
    const PatternResult result =
        generator_.Generate(PatternType::kGeneralization, intent, &rng);
    ASSERT_GE(result.queries.size(), 2u);
    for (size_t i = 1; i < result.queries.size(); ++i) {
      EXPECT_LT(result.queries[i].size(), result.queries[i - 1].size());
    }
  }
}

TEST_F(PatternTest, SpecializationExtendsQueries) {
  Rng rng(41);
  for (size_t intent = 0; intent < 20; ++intent) {
    const PatternResult result =
        generator_.Generate(PatternType::kSpecialization, intent, &rng);
    ASSERT_GE(result.queries.size(), 2u);
    for (size_t i = 1; i < result.queries.size(); ++i) {
      // Each query extends the previous (prefix relation).
      EXPECT_EQ(result.queries[i].substr(0, result.queries[i - 1].size()),
                result.queries[i - 1]);
    }
  }
}

TEST_F(PatternTest, SynonymSubstitutionEndsWithCanonical) {
  Rng rng(43);
  for (size_t intent = 0; intent < topics_.num_intents(); ++intent) {
    if (!generator_.Supports(PatternType::kSynonymSubstitution, intent)) {
      continue;
    }
    const PatternResult result =
        generator_.Generate(PatternType::kSynonymSubstitution, intent, &rng);
    ASSERT_GE(result.queries.size(), 2u);
    EXPECT_EQ(result.queries[1], topics_.intent(intent).chain[0]);
    EXPECT_NE(result.queries[0], result.queries[1]);
  }
}

TEST_F(PatternTest, RepeatedQueryHasConsecutiveRepeat) {
  Rng rng(47);
  for (size_t intent = 0; intent < 20; ++intent) {
    const PatternResult result =
        generator_.Generate(PatternType::kRepeatedQuery, intent, &rng);
    ASSERT_GE(result.queries.size(), 3u);
    bool has_repeat = false;
    for (size_t i = 1; i < result.queries.size(); ++i) {
      if (result.queries[i] == result.queries[i - 1]) has_repeat = true;
    }
    EXPECT_TRUE(has_repeat);
  }
}

TEST_F(PatternTest, OthersCrossesTopics) {
  Rng rng(53);
  for (size_t intent = 0; intent < 20; ++intent) {
    const PatternResult result =
        generator_.Generate(PatternType::kOthers, intent, &rng);
    ASSERT_EQ(result.queries.size(), 2u);
    EXPECT_NE(topics_.intent(result.intents[0]).topic,
              topics_.intent(result.intents[1]).topic);
  }
}

TEST_F(PatternTest, IntentsParallelQueries) {
  Rng rng(59);
  for (size_t t = 0; t < kNumPatternTypes; ++t) {
    const PatternResult result =
        generator_.Generate(static_cast<PatternType>(t), 3, &rng);
    EXPECT_EQ(result.queries.size(), result.intents.size())
        << PatternTypeName(static_cast<PatternType>(t));
  }
}

// Every pattern type yields a session of at least 2 queries (sweep across
// types and seeds).
class PatternSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(PatternSweepTest, AlwaysMultiQuery) {
  const auto [type_index, seed] = GetParam();
  Vocabulary vocab(VocabularyConfig{.num_terms = 600, .synonym_fraction = 0.5},
                   61);
  TopicModel topics(&vocab,
                    TopicModelConfig{.num_topics = 8,
                                     .terms_per_topic = 12,
                                     .intents_per_topic = 10,
                                     .chain_depth = 4},
                    62);
  PatternGenerator generator(&topics);
  Rng rng(seed);
  for (size_t intent = 0; intent < topics.num_intents(); intent += 3) {
    const PatternResult result = generator.Generate(
        static_cast<PatternType>(type_index), intent, &rng);
    EXPECT_GE(result.queries.size(), 2u);
    for (const std::string& q : result.queries) EXPECT_FALSE(q.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndSeeds, PatternSweepTest,
    ::testing::Combine(::testing::Range<size_t>(0, kNumPatternTypes),
                       ::testing::Values(101, 202, 303)));

}  // namespace
}  // namespace sqp
