#include "synth/oracle.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two topics; topic 0 has intents 0 and 1, topic 1 has intent 2.
    oracle_.RegisterQuery("smtp server", /*topic=*/0, /*intent=*/0);
    oracle_.RegisterQuery("smtp server setup", 0, 0);
    oracle_.RegisterQuery("pop3 server", 0, 1);
    oracle_.RegisterQuery("muzzle brake", 1, 2);
  }

  std::vector<std::string> Ctx(std::initializer_list<const char*> queries) {
    return std::vector<std::string>(queries.begin(), queries.end());
  }

  RelatednessOracle oracle_;
};

TEST_F(OracleTest, SameIntentRelated) {
  const auto ctx = Ctx({"smtp server"});
  EXPECT_TRUE(oracle_.IsRelated(ctx, "smtp server setup"));
}

TEST_F(OracleTest, SameTopicRelated) {
  const auto ctx = Ctx({"smtp server"});
  EXPECT_TRUE(oracle_.IsRelated(ctx, "pop3 server"));
}

TEST_F(OracleTest, DifferentTopicUnrelated) {
  const auto ctx = Ctx({"smtp server"});
  EXPECT_FALSE(oracle_.IsRelated(ctx, "muzzle brake"));
}

TEST_F(OracleTest, RepeatedQueryRelated) {
  const auto ctx = Ctx({"muzzle brake"});
  EXPECT_TRUE(oracle_.IsRelated(ctx, "muzzle brake"));
}

TEST_F(OracleTest, SpellingVariantRelated) {
  // "smtp server" vs "smpt server" (edit distance 2 via transposition).
  const auto ctx = Ctx({"smpt server"});
  EXPECT_TRUE(oracle_.IsRelated(ctx, "smtp server"));
}

TEST_F(OracleTest, AnyContextQueryCanRelate) {
  const auto ctx = Ctx({"muzzle brake", "smtp server"});
  EXPECT_TRUE(oracle_.IsRelated(ctx, "pop3 server"));
}

TEST_F(OracleTest, UnknownCandidateUnrelatedUnlessStringMatch) {
  const auto ctx = Ctx({"smtp server"});
  EXPECT_FALSE(oracle_.IsRelated(ctx, "completely different query"));
}

TEST_F(OracleTest, EmptyContextUnrelated) {
  std::vector<std::string> empty;
  EXPECT_FALSE(oracle_.IsRelated(empty, "smtp server"));
}

TEST_F(OracleTest, NormalizationApplied) {
  const auto ctx = Ctx({"  SMTP   Server "});
  EXPECT_TRUE(oracle_.IsRelated(ctx, "POP3 SERVER"));
}

TEST_F(OracleTest, RegistrationIsIdempotentAndCounted) {
  EXPECT_EQ(oracle_.num_registered(), 4u);
  oracle_.RegisterQuery("smtp server", 0, 0);
  EXPECT_EQ(oracle_.num_registered(), 4u);
}

TEST_F(OracleTest, QueryInMultipleTopicsRelatesToBoth) {
  oracle_.RegisterQuery("java", 0, 0);
  oracle_.RegisterQuery("java", 1, 2);
  EXPECT_TRUE(oracle_.IsRelated(Ctx({"smtp server"}), "java"));
  EXPECT_TRUE(oracle_.IsRelated(Ctx({"muzzle brake"}), "java"));
}

TEST_F(OracleTest, IdBasedJudgment) {
  QueryDictionary dict;
  const QueryId smtp = dict.Intern("smtp server");
  const QueryId pop3 = dict.Intern("pop3 server");
  const QueryId brake = dict.Intern("muzzle brake");
  const std::vector<QueryId> ctx{smtp};
  EXPECT_TRUE(oracle_.IsRelatedIds(dict, ctx, pop3));
  EXPECT_FALSE(oracle_.IsRelatedIds(dict, ctx, brake));
}

TEST_F(OracleTest, IdBasedJudgmentRejectsUnknownIds) {
  QueryDictionary dict;
  dict.Intern("smtp server");
  const std::vector<QueryId> ctx{0};
  EXPECT_FALSE(oracle_.IsRelatedIds(dict, ctx, 999));
}

}  // namespace
}  // namespace sqp
