#include "synth/session_generator.h"

#include <map>

#include <gtest/gtest.h>

namespace sqp {
namespace {

class SessionGeneratorTest : public ::testing::Test {
 protected:
  SessionGeneratorTest()
      : vocab_(VocabularyConfig{.num_terms = 800, .synonym_fraction = 0.4},
               71),
        topics_(&vocab_,
                TopicModelConfig{.num_topics = 12,
                                 .terms_per_topic = 12,
                                 .intents_per_topic = 10,
                                 .chain_depth = 4},
                72) {}

  Vocabulary vocab_;
  TopicModel topics_;
};

TEST_F(SessionGeneratorTest, SingletonRateMatchesConfig) {
  SessionGeneratorConfig config;
  config.singleton_prob = 0.4;
  SessionGenerator generator(&topics_, config);
  Rng rng(73);
  int singletons = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const GeneratedSession s = generator.Generate(&rng);
    if (s.singleton) {
      ++singletons;
      EXPECT_EQ(s.queries.size(), 1u);
    } else {
      EXPECT_GE(s.queries.size(), 2u);
    }
  }
  EXPECT_NEAR(static_cast<double>(singletons) / n, 0.4, 0.02);
}

TEST_F(SessionGeneratorTest, PatternDistributionMatchesWeights) {
  SessionGeneratorConfig config;
  config.singleton_prob = 0.0;
  SessionGenerator generator(&topics_, config);
  Rng rng(79);
  std::map<PatternType, int> counts;
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[generator.Generate(&rng).type];
  for (size_t t = 0; t < kNumPatternTypes; ++t) {
    const double expected = config.pattern_weights.weight[t];
    const double observed =
        static_cast<double>(counts[static_cast<PatternType>(t)]) / n;
    EXPECT_NEAR(observed, expected, 0.012)
        << PatternTypeName(static_cast<PatternType>(t));
  }
}

TEST_F(SessionGeneratorTest, ZipfPopularityConcentratesOnHeadIntents) {
  SessionGeneratorConfig config;
  config.zipf_s = 1.2;
  SessionGenerator generator(&topics_, config);
  Rng rng(83);
  std::map<size_t, int> intent_counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++intent_counts[generator.Generate(&rng).primary_intent];
  }
  // Intent 0 must dominate intent 50 by a wide margin under Zipf(1.2).
  EXPECT_GT(intent_counts[0], 20 * std::max(1, intent_counts[50]));
}

TEST_F(SessionGeneratorTest, IntentsParallelQueries) {
  SessionGenerator generator(&topics_, SessionGeneratorConfig{});
  Rng rng(89);
  for (int i = 0; i < 500; ++i) {
    const GeneratedSession s = generator.Generate(&rng);
    EXPECT_EQ(s.queries.size(), s.intents.size());
    EXPECT_FALSE(s.queries.empty());
  }
}

TEST_F(SessionGeneratorTest, DeterministicForSeed) {
  SessionGenerator generator(&topics_, SessionGeneratorConfig{});
  Rng a(97);
  Rng b(97);
  for (int i = 0; i < 200; ++i) {
    const GeneratedSession sa = generator.Generate(&a);
    const GeneratedSession sb = generator.Generate(&b);
    EXPECT_EQ(sa.queries, sb.queries);
    EXPECT_EQ(sa.type, sb.type);
    EXPECT_EQ(sa.singleton, sb.singleton);
  }
}

TEST_F(SessionGeneratorTest, MeanLengthInPaperRange) {
  // Paper Section I-A: average query session length is 2-3; with singleton
  // sessions included our generator should land in [1.5, 3.2].
  SessionGenerator generator(&topics_, SessionGeneratorConfig{});
  Rng rng(101);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += static_cast<double>(generator.Generate(&rng).queries.size());
  }
  const double mean = total / n;
  EXPECT_GT(mean, 1.5);
  EXPECT_LT(mean, 3.2);
}

}  // namespace
}  // namespace sqp
