#include "synth/topic_model.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

class TopicModelTest : public ::testing::Test {
 protected:
  TopicModelTest()
      : vocab_(VocabularyConfig{.num_terms = 800, .synonym_fraction = 0.5},
               11),
        topics_(&vocab_,
                TopicModelConfig{.num_topics = 10,
                                 .terms_per_topic = 12,
                                 .intents_per_topic = 8,
                                 .chain_depth = 4},
                12) {}

  Vocabulary vocab_;
  TopicModel topics_;
};

TEST_F(TopicModelTest, IntentCount) {
  EXPECT_EQ(topics_.num_intents(), 80u);
  EXPECT_EQ(topics_.num_topics(), 10u);
}

TEST_F(TopicModelTest, ChainsHaveConfiguredDepth) {
  for (size_t i = 0; i < topics_.num_intents(); ++i) {
    EXPECT_EQ(topics_.intent(i).chain.size(), 4u);
  }
}

TEST_F(TopicModelTest, ChainIsProgressiveSpecialization) {
  for (size_t i = 0; i < topics_.num_intents(); ++i) {
    const Intent& intent = topics_.intent(i);
    for (size_t d = 1; d < intent.chain.size(); ++d) {
      // Each deeper query strictly extends the previous with " <term>".
      const std::string& shorter = intent.chain[d - 1];
      const std::string& longer = intent.chain[d];
      ASSERT_GT(longer.size(), shorter.size());
      EXPECT_EQ(longer.substr(0, shorter.size()), shorter);
      EXPECT_EQ(longer[shorter.size()], ' ');
    }
  }
}

TEST_F(TopicModelTest, BaseQueryUsesBaseTerms) {
  for (size_t i = 0; i < topics_.num_intents(); ++i) {
    const Intent& intent = topics_.intent(i);
    std::string expected;
    for (size_t t : intent.base_terms) {
      if (!expected.empty()) expected += ' ';
      expected += vocab_.term(t);
    }
    EXPECT_EQ(intent.chain[0], expected);
  }
}

TEST_F(TopicModelTest, SiblingStaysInTopic) {
  Rng rng(13);
  for (size_t i = 0; i < topics_.num_intents(); i += 7) {
    const size_t sibling = topics_.SampleSibling(i, &rng);
    EXPECT_EQ(topics_.intent(sibling).topic, topics_.intent(i).topic);
    EXPECT_NE(sibling, i);  // 8 intents per topic: a sibling must exist
  }
}

TEST_F(TopicModelTest, UnrelatedLeavesTopic) {
  Rng rng(17);
  for (size_t i = 0; i < topics_.num_intents(); i += 7) {
    const size_t other = topics_.SampleUnrelated(i, &rng);
    EXPECT_NE(topics_.intent(other).topic, topics_.intent(i).topic);
  }
}

TEST_F(TopicModelTest, SynonymVariantDiffersFromBase) {
  size_t variants = 0;
  for (size_t i = 0; i < topics_.num_intents(); ++i) {
    if (!topics_.HasSynonymVariant(i)) continue;
    const auto variant = topics_.SynonymVariant(i);
    ASSERT_TRUE(variant.has_value());
    EXPECT_NE(*variant, topics_.intent(i).chain[0]);
    ++variants;
  }
  // With synonym_fraction = 0.5, a majority of intents should have one.
  EXPECT_GT(variants, topics_.num_intents() / 4);
}

TEST_F(TopicModelTest, UrlEncodesTopicAndSite) {
  EXPECT_EQ(topics_.Url(17, 3), "www.topic17-site3.example.com");
}

TEST_F(TopicModelTest, DeterministicForSeed) {
  TopicModel again(&vocab_,
                   TopicModelConfig{.num_topics = 10,
                                    .terms_per_topic = 12,
                                    .intents_per_topic = 8,
                                    .chain_depth = 4},
                   12);
  for (size_t i = 0; i < topics_.num_intents(); ++i) {
    EXPECT_EQ(again.intent(i).chain, topics_.intent(i).chain);
  }
}

}  // namespace
}  // namespace sqp
