#include "synth/log_synthesizer.h"

#include <map>

#include <gtest/gtest.h>

#include "log/session_segmenter.h"

namespace sqp {
namespace {

constexpr int64_t kMinute = 60 * 1000;

class LogSynthesizerTest : public ::testing::Test {
 protected:
  LogSynthesizerTest()
      : vocab_(VocabularyConfig{.num_terms = 800, .synonym_fraction = 0.4},
               111),
        topics_(&vocab_,
                TopicModelConfig{.num_topics = 12,
                                 .terms_per_topic = 12,
                                 .intents_per_topic = 10,
                                 .chain_depth = 4},
                112) {}

  SynthesizerConfig SmallConfig() {
    SynthesizerConfig config;
    config.num_sessions = 2000;
    config.num_machines = 50;
    return config;
  }

  Vocabulary vocab_;
  TopicModel topics_;
};

TEST_F(LogSynthesizerTest, EmitsOneRecordPerQuery) {
  LogSynthesizer synth(&topics_, SmallConfig());
  const SynthCorpus corpus = synth.Synthesize(1, nullptr);
  size_t expected_records = 0;
  for (const GeneratedSession& s : corpus.sessions) {
    expected_records += s.queries.size();
  }
  EXPECT_EQ(corpus.records.size(), expected_records);
  EXPECT_EQ(corpus.sessions.size(), 2000u);
}

TEST_F(LogSynthesizerTest, DeterministicForSeed) {
  LogSynthesizer synth(&topics_, SmallConfig());
  const SynthCorpus a = synth.Synthesize(7, nullptr);
  const SynthCorpus b = synth.Synthesize(7, nullptr);
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(a.records, b.records);
}

TEST_F(LogSynthesizerTest, DifferentSeedsDiffer) {
  LogSynthesizer synth(&topics_, SmallConfig());
  const SynthCorpus a = synth.Synthesize(1, nullptr);
  const SynthCorpus b = synth.Synthesize(2, nullptr);
  EXPECT_NE(a.records, b.records);
}

TEST_F(LogSynthesizerTest, MachineIdsWithinRange) {
  LogSynthesizer synth(&topics_, SmallConfig());
  const SynthCorpus corpus = synth.Synthesize(3, nullptr);
  for (const RawLogRecord& r : corpus.records) {
    EXPECT_GE(r.machine_id, 1u);
    EXPECT_LE(r.machine_id, 50u);
  }
}

TEST_F(LogSynthesizerTest, ClicksFollowTheirQuery) {
  LogSynthesizer synth(&topics_, SmallConfig());
  const SynthCorpus corpus = synth.Synthesize(4, nullptr);
  size_t clicks = 0;
  for (const RawLogRecord& r : corpus.records) {
    for (const UrlClick& c : r.clicks) {
      EXPECT_GT(c.timestamp_ms, r.timestamp_ms);
      EXPECT_NE(c.url.find("www.topic"), std::string::npos);
      ++clicks;
    }
  }
  EXPECT_GT(clicks, 0u);
}

TEST_F(LogSynthesizerTest, SegmentationRecoversGeneratedSessions) {
  // The end-to-end contract: rendering sessions to a raw click-stream and
  // segmenting it back with the 30-minute rule must reproduce the generated
  // session structure exactly.
  LogSynthesizer synth(&topics_, SmallConfig());
  const SynthCorpus corpus = synth.Synthesize(5, nullptr);

  QueryDictionary dict;
  std::vector<Session> segmented;
  ASSERT_TRUE(
      SessionSegmenter().Segment(corpus.records, &dict, &segmented).ok());
  ASSERT_EQ(segmented.size(), corpus.sessions.size());

  // Compare multisets of normalized query sequences (segmenter output is
  // grouped by machine, generator output is chronological).
  std::map<std::vector<std::string>, int> expected;
  for (const GeneratedSession& s : corpus.sessions) {
    std::vector<std::string> queries;
    for (const std::string& q : s.queries) {
      queries.push_back(QueryDictionary::Normalize(q));
    }
    ++expected[queries];
  }
  std::map<std::vector<std::string>, int> actual;
  for (const Session& s : segmented) {
    std::vector<std::string> queries;
    for (QueryId q : s.queries) queries.push_back(dict.Text(q));
    ++actual[queries];
  }
  EXPECT_EQ(actual, expected);
}

TEST_F(LogSynthesizerTest, IntraSessionGapsStayUnderThirtyMinutes) {
  LogSynthesizer synth(&topics_, SmallConfig());
  const SynthCorpus corpus = synth.Synthesize(6, nullptr);
  // Reconstruct per-machine streams and verify no *intra-session* gap can
  // split: every record pair closer than 30 minutes must be intentional.
  // (Full structural equality is covered by the recovery test above; here
  // we check the timing floor/cap contract on consecutive records.)
  std::map<uint64_t, int64_t> last_ts;
  for (const RawLogRecord& r : corpus.records) {
    auto it = last_ts.find(r.machine_id);
    if (it != last_ts.end()) {
      EXPECT_GE(r.timestamp_ms, it->second);  // per machine, time advances
    }
    last_ts[r.machine_id] = r.timestamp_ms;
  }
}

TEST_F(LogSynthesizerTest, OracleRegistersEveryQuery) {
  LogSynthesizer synth(&topics_, SmallConfig());
  RelatednessOracle oracle;
  const SynthCorpus corpus = synth.Synthesize(8, &oracle);
  EXPECT_GT(oracle.num_registered(), 0u);
  // Every emitted query must be judged related to itself in context.
  for (size_t i = 0; i < 50 && i < corpus.records.size(); ++i) {
    const std::vector<std::string> ctx{corpus.records[i].query};
    EXPECT_TRUE(oracle.IsRelated(ctx, corpus.records[i].query));
  }
}

TEST_F(LogSynthesizerTest, TimestampsStartAtConfiguredEpoch) {
  SynthesizerConfig config = SmallConfig();
  config.start_timestamp_ms = 1000000;
  LogSynthesizer synth(&topics_, config);
  const SynthCorpus corpus = synth.Synthesize(9, nullptr);
  for (const RawLogRecord& r : corpus.records) {
    EXPECT_GE(r.timestamp_ms, config.start_timestamp_ms);
    // Machines are desynchronized within a day, sessions spread beyond.
  }
}

TEST_F(LogSynthesizerTest, SessionsOnOneMachineSeparatedByTimeout) {
  // With a single machine, consecutive sessions are strictly separated by
  // more than 30 minutes of inactivity.
  SynthesizerConfig config = SmallConfig();
  config.num_machines = 1;
  config.num_sessions = 50;
  LogSynthesizer synth(&topics_, config);
  const SynthCorpus corpus = synth.Synthesize(10, nullptr);

  size_t record_index = 0;
  int64_t previous_last_activity = -1;
  for (const GeneratedSession& s : corpus.sessions) {
    const RawLogRecord& first = corpus.records[record_index];
    if (previous_last_activity >= 0) {
      EXPECT_GT(first.timestamp_ms - previous_last_activity, 30 * kMinute);
    }
    // Advance to the session's last record and its last activity.
    const RawLogRecord& last =
        corpus.records[record_index + s.queries.size() - 1];
    previous_last_activity = last.timestamp_ms;
    for (const UrlClick& c : last.clicks) {
      previous_last_activity = std::max(previous_last_activity, c.timestamp_ms);
    }
    record_index += s.queries.size();
  }
}

}  // namespace
}  // namespace sqp
