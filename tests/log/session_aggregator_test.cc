#include "log/session_aggregator.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

Session MakeSession(std::vector<QueryId> queries, uint64_t machine = 1) {
  Session s;
  s.machine_id = machine;
  s.queries = std::move(queries);
  return s;
}

TEST(SessionAggregatorTest, MergesIdenticalSequences) {
  SessionAggregator agg;
  agg.AddSession(MakeSession({1, 2}));
  agg.AddSession(MakeSession({1, 2}, 2));
  agg.AddSession(MakeSession({1, 3}));
  const auto merged = agg.Finish();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].queries, (std::vector<QueryId>{1, 2}));
  EXPECT_EQ(merged[0].frequency, 2u);
  EXPECT_EQ(merged[1].frequency, 1u);
}

TEST(SessionAggregatorTest, OrderSensitive) {
  SessionAggregator agg;
  agg.AddSession(MakeSession({1, 2}));
  agg.AddSession(MakeSession({2, 1}));
  EXPECT_EQ(agg.Finish().size(), 2u);
}

TEST(SessionAggregatorTest, SummaryStatistics) {
  SessionAggregator agg;
  agg.AddSession(MakeSession({1, 2, 3}));
  agg.AddSession(MakeSession({1, 2, 3}));
  agg.AddSession(MakeSession({4}));
  const SessionSummary summary = agg.Summary();
  EXPECT_EQ(summary.num_sessions, 3u);
  EXPECT_EQ(summary.num_searches, 7u);
  EXPECT_EQ(summary.num_unique_queries, 4u);
  EXPECT_EQ(summary.num_unique_sessions, 2u);
}

TEST(SessionAggregatorTest, EmptySessionsIgnored) {
  SessionAggregator agg;
  agg.AddSession(MakeSession({}));
  EXPECT_EQ(agg.Summary().num_sessions, 0u);
  EXPECT_TRUE(agg.Finish().empty());
}

TEST(SessionAggregatorTest, DeterministicOrdering) {
  SessionAggregator agg;
  agg.AddSession(MakeSession({5}));
  agg.AddSession(MakeSession({3}));
  agg.AddSession(MakeSession({3}));
  agg.AddSession(MakeSession({4}));
  agg.AddSession(MakeSession({4}));
  const auto merged = agg.Finish();
  ASSERT_EQ(merged.size(), 3u);
  // Descending frequency, then lexicographic sequence.
  EXPECT_EQ(merged[0].queries, (std::vector<QueryId>{3}));
  EXPECT_EQ(merged[1].queries, (std::vector<QueryId>{4}));
  EXPECT_EQ(merged[2].queries, (std::vector<QueryId>{5}));
}

TEST(SessionAggregatorTest, AddBatch) {
  SessionAggregator agg;
  std::vector<Session> batch{MakeSession({1}), MakeSession({1}),
                             MakeSession({2})};
  agg.Add(batch);
  EXPECT_EQ(agg.Summary().num_sessions, 3u);
  EXPECT_EQ(agg.Finish().size(), 2u);
}

TEST(SessionAggregatorTest, FinishIsNonDestructive) {
  SessionAggregator agg;
  agg.AddSession(MakeSession({1, 2}));
  EXPECT_EQ(agg.Finish().size(), 1u);
  agg.AddSession(MakeSession({3, 4}));
  EXPECT_EQ(agg.Finish().size(), 2u);
}

TEST(SessionAggregatorTest, RepeatedQueriesWithinSessionDistinct) {
  SessionAggregator agg;
  agg.AddSession(MakeSession({1, 1}));
  agg.AddSession(MakeSession({1}));
  const auto merged = agg.Finish();
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_EQ(agg.Summary().num_unique_queries, 1u);
}

}  // namespace
}  // namespace sqp
