// The query-id partition function is a persisted routing contract (the
// manifest records its id), so these tests pin its exact values and the
// corpus-partitioning invariants the bit-identical sharded serving
// guarantee rests on.

#include "log/shard_partitioner.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sqp {
namespace {

TEST(ShardPartitionerTest, ShardOfQueryIsPinned) {
  // FNV-1a over the id's little-endian bytes, mod the shard count. These
  // literals are the contract: changing the hash, seed or byte order is a
  // new partition function id, not an edit to this one.
  EXPECT_EQ(ShardOfQuery(0, 2), 1u);
  EXPECT_EQ(ShardOfQuery(1, 2), 0u);
  EXPECT_EQ(ShardOfQuery(2, 4), 3u);
  EXPECT_EQ(ShardOfQuery(3, 7), 4u);
  EXPECT_EQ(ShardOfQuery(42, 7), 6u);
  EXPECT_EQ(ShardOfQuery(65535, 4), 3u);
  EXPECT_EQ(ShardOfQuery(1u << 20, 7), 1u);
}

TEST(ShardPartitionerTest, SingleShardOwnsEverything) {
  for (QueryId q = 0; q < 100; ++q) {
    EXPECT_EQ(ShardOfQuery(q, 1), 0u);
  }
}

TEST(ShardPartitionerTest, ShardOfContextUsesMostRecentQuery) {
  const std::vector<QueryId> context = {7, 3, 42};
  EXPECT_EQ(ShardOfContext(context, 7), ShardOfQuery(42, 7));
  EXPECT_EQ(ShardOfContext(std::span<const QueryId>{}, 7), 0u);
}

TEST(ShardPartitionerTest, OwningShardsAreNonFinalQueryOwners) {
  // Session [a, b, c]: counting only ever ends a context at a non-final
  // position, so c's owner has no stake unless it also owns a or b.
  const AggregatedSession session{{0, 1, 2}, 3};
  std::vector<uint32_t> owners;
  OwningShards(session, 7, &owners);
  std::set<uint32_t> expected = {ShardOfQuery(0, 7), ShardOfQuery(1, 7)};
  EXPECT_EQ(std::set<uint32_t>(owners.begin(), owners.end()), expected);
  // Sorted and deduplicated.
  EXPECT_TRUE(std::is_sorted(owners.begin(), owners.end()));
  EXPECT_EQ(owners.size(), expected.size());

  // Single-query sessions carry no prediction evidence.
  OwningShards(AggregatedSession{{5}, 10}, 7, &owners);
  EXPECT_TRUE(owners.empty());
}

TEST(ShardPartitionerTest, PartitionCoversEveryCountedOccurrence) {
  // The exactness invariant: for every session and every non-final
  // position i, the session must be present in shard(q_i)'s corpus —
  // that shard owns every context ending at position i.
  std::vector<AggregatedSession> sessions;
  uint64_t state = 12345;
  for (size_t s = 0; s < 200; ++s) {
    AggregatedSession session;
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const size_t len = 1 + (state >> 33) % 6;
    for (size_t i = 0; i < len; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      session.queries.push_back(static_cast<QueryId>((state >> 33) % 50));
    }
    session.frequency = 1 + s % 4;
    sessions.push_back(std::move(session));
  }

  for (const uint32_t num_shards : {1u, 2u, 4u, 7u}) {
    const std::vector<std::vector<AggregatedSession>> corpora =
        PartitionSessionsByShard(sessions, num_shards);
    ASSERT_EQ(corpora.size(), num_shards);

    const auto shard_contains = [&](uint32_t shard,
                                    const AggregatedSession& session) {
      for (const AggregatedSession& candidate : corpora[shard]) {
        if (candidate.queries == session.queries &&
            candidate.frequency == session.frequency) {
          return true;
        }
      }
      return false;
    };
    for (const AggregatedSession& session : sessions) {
      if (session.queries.size() < 2) continue;
      for (size_t i = 0; i + 1 < session.queries.size(); ++i) {
        EXPECT_TRUE(shard_contains(
            ShardOfQuery(session.queries[i], num_shards), session));
      }
    }

    // And nothing lands where it has no stake: every member session has
    // at least one owned non-final query.
    for (uint32_t shard = 0; shard < num_shards; ++shard) {
      for (const AggregatedSession& member : corpora[shard]) {
        bool owned = false;
        for (size_t i = 0; i + 1 < member.queries.size(); ++i) {
          owned |= ShardOfQuery(member.queries[i], num_shards) == shard;
        }
        EXPECT_TRUE(owned);
      }
    }
  }
}

}  // namespace
}  // namespace sqp
