#include "log/query_dictionary.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

TEST(NormalizeTest, TrimsAndCollapsesWhitespace) {
  EXPECT_EQ(QueryDictionary::Normalize("  foo   bar  "), "foo bar");
  EXPECT_EQ(QueryDictionary::Normalize("a\tb"), "a b");
  EXPECT_EQ(QueryDictionary::Normalize("a \t \n b"), "a b");
}

TEST(NormalizeTest, LowerCases) {
  EXPECT_EQ(QueryDictionary::Normalize("New York Times"), "new york times");
}

TEST(NormalizeTest, EmptyStaysEmpty) {
  EXPECT_EQ(QueryDictionary::Normalize(""), "");
  EXPECT_EQ(QueryDictionary::Normalize("   "), "");
}

TEST(QueryDictionaryTest, InternAssignsDenseIds) {
  QueryDictionary dict;
  EXPECT_EQ(dict.Intern("alpha"), 0u);
  EXPECT_EQ(dict.Intern("beta"), 1u);
  EXPECT_EQ(dict.Intern("gamma"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(QueryDictionaryTest, InternIsIdempotent) {
  QueryDictionary dict;
  const QueryId id = dict.Intern("query one");
  EXPECT_EQ(dict.Intern("query one"), id);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(QueryDictionaryTest, InternNormalizesBeforeLookup) {
  QueryDictionary dict;
  const QueryId id = dict.Intern("Sign Language");
  EXPECT_EQ(dict.Intern("  sign   language "), id);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(QueryDictionaryTest, LookupFindsInternedOnly) {
  QueryDictionary dict;
  dict.Intern("kidney stones");
  EXPECT_TRUE(dict.Lookup("KIDNEY STONES").has_value());
  EXPECT_FALSE(dict.Lookup("kidney stone symptoms").has_value());
}

TEST(QueryDictionaryTest, TextRoundTrips) {
  QueryDictionary dict;
  const QueryId id = dict.Intern("Nokia N73 Themes");
  EXPECT_EQ(dict.Text(id), "nokia n73 themes");
}

TEST(QueryDictionaryTest, MoveTransfersState) {
  QueryDictionary dict;
  dict.Intern("a");
  dict.Intern("b");
  QueryDictionary moved = std::move(dict);
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved.Text(0), "a");
}

TEST(QueryDictionaryDeathTest, TextOnInvalidIdAborts) {
  QueryDictionary dict;
  dict.Intern("only");
  EXPECT_DEATH(dict.Text(5), "SQP_CHECK");
}

}  // namespace
}  // namespace sqp
