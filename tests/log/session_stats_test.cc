#include "log/session_stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sqp {
namespace {

std::vector<AggregatedSession> SampleSessions() {
  return {
      {{1}, 10},
      {{1, 2}, 5},
      {{1, 2, 3}, 2},
      {{4, 5}, 5},
  };
}

TEST(SessionLengthHistogramTest, WeightedByFrequency) {
  const auto hist = SessionLengthHistogram(SampleSessions());
  EXPECT_EQ(hist.at(1), 10u);
  EXPECT_EQ(hist.at(2), 10u);
  EXPECT_EQ(hist.at(3), 2u);
  EXPECT_EQ(hist.size(), 3u);
}

TEST(SessionFrequencyHistogramTest, CountsUniqueSessions) {
  const auto hist = SessionFrequencyHistogram(SampleSessions());
  EXPECT_EQ(hist.at(10), 1u);
  EXPECT_EQ(hist.at(5), 2u);
  EXPECT_EQ(hist.at(2), 1u);
}

TEST(MeanSessionLengthTest, WeightedMean) {
  // (1*10 + 2*5 + 3*2 + 2*5) / 22 = 36/22.
  EXPECT_NEAR(MeanSessionLength(SampleSessions()), 36.0 / 22.0, 1e-12);
}

TEST(MeanSessionLengthTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(MeanSessionLength({}), 0.0);
}

TEST(FrequencyPowerLawAlphaTest, RecoversPlantedExponent) {
  // Plant count(f) ~ f^-2.5 over f in [2, 60]; stop once the planted count
  // would round below one unique session so the tail is not flattened.
  std::vector<AggregatedSession> sessions;
  QueryId next_query = 0;
  for (uint64_t f = 2; f <= 60; ++f) {
    const uint64_t sessions_with_f = static_cast<uint64_t>(
        2e4 * std::pow(static_cast<double>(f), -2.5));
    if (sessions_with_f == 0) break;
    for (uint64_t i = 0; i < sessions_with_f; ++i) {
      sessions.push_back({{next_query, next_query + 1}, f});
      next_query += 2;
    }
  }
  const double alpha = FrequencyPowerLawAlpha(sessions, 2);
  EXPECT_NEAR(alpha, 2.5, 0.25);
}

TEST(FrequencyPowerLawAlphaTest, DegenerateInputIsZero) {
  EXPECT_DOUBLE_EQ(FrequencyPowerLawAlpha({}, 2), 0.0);
  // All sessions have frequency 1, below x_min = 2.
  EXPECT_DOUBLE_EQ(FrequencyPowerLawAlpha({{{1}, 1}}, 2), 0.0);
}

}  // namespace
}  // namespace sqp
