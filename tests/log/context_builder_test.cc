#include "log/context_builder.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

constexpr QueryId kQ0 = 0;
constexpr QueryId kQ1 = 1;

/// The paper's Table II training data (used for the PST worked example).
std::vector<AggregatedSession> TableIISessions() {
  return {
      {{kQ1, kQ0, kQ0}, 3}, {{kQ1, kQ0, kQ1}, 7}, {{kQ0, kQ0}, 78},
      {{kQ1, kQ0}, 5},      {{kQ0, kQ1, kQ0}, 1}, {{kQ0, kQ1, kQ1}, 1},
      {{kQ1, kQ1}, 3},      {{kQ0}, 10},
  };
}

uint64_t CountFor(const ContextEntry* entry, QueryId next) {
  for (const NextQueryCount& nc : entry->nexts) {
    if (nc.query == next) return nc.count;
  }
  return 0;
}

TEST(ContextIndexSubstringTest, TableIILengthOneCounts) {
  ContextIndex index;
  index.Build(TableIISessions(), ContextIndex::Mode::kSubstring);

  // P(q0|q0) = 81/90 = 0.9 and P(q1|q0) = 9/90 = 0.1 in the paper.
  const ContextEntry* q0 = index.Lookup(std::vector<QueryId>{kQ0});
  ASSERT_NE(q0, nullptr);
  EXPECT_EQ(CountFor(q0, kQ0), 81u);
  EXPECT_EQ(CountFor(q0, kQ1), 9u);
  EXPECT_EQ(q0->total_count, 90u);

  // P(q0|q1) = 16/20 = 0.8 and P(q1|q1) = 4/20 = 0.2 in the paper.
  const ContextEntry* q1 = index.Lookup(std::vector<QueryId>{kQ1});
  ASSERT_NE(q1, nullptr);
  EXPECT_EQ(CountFor(q1, kQ0), 16u);
  EXPECT_EQ(CountFor(q1, kQ1), 4u);
  EXPECT_EQ(q1->total_count, 20u);
}

TEST(ContextIndexSubstringTest, TableIILengthTwoCounts) {
  ContextIndex index;
  index.Build(TableIISessions(), ContextIndex::Mode::kSubstring);

  // P(q0|[q1,q0]) = 3/10 in the paper.
  const ContextEntry* q1q0 = index.Lookup(std::vector<QueryId>{kQ1, kQ0});
  ASSERT_NE(q1q0, nullptr);
  EXPECT_EQ(CountFor(q1q0, kQ0), 3u);
  EXPECT_EQ(CountFor(q1q0, kQ1), 7u);
  EXPECT_EQ(q1q0->total_count, 10u);

  const ContextEntry* q0q1 = index.Lookup(std::vector<QueryId>{kQ0, kQ1});
  ASSERT_NE(q0q1, nullptr);
  EXPECT_EQ(CountFor(q0q1, kQ0), 1u);
  EXPECT_EQ(CountFor(q0q1, kQ1), 1u);
}

TEST(ContextIndexSubstringTest, MaximumContextLengthIsTwo) {
  // The last query of any session has no prediction evidence, so the
  // deepest usable context in Table II has length 2 (paper Section IV-B.1).
  ContextIndex index;
  index.Build(TableIISessions(), ContextIndex::Mode::kSubstring);
  for (const ContextEntry* entry : index.SortedEntries()) {
    EXPECT_LE(entry->context.size(), 2u);
  }
  EXPECT_EQ(index.Lookup(std::vector<QueryId>{kQ0, kQ0}), nullptr);
}

TEST(ContextIndexSubstringTest, StartCounts) {
  ContextIndex index;
  index.Build(TableIISessions(), ContextIndex::Mode::kSubstring);
  // q0 at session start with a successor: q0q0 (78) + q0q1q0 (1) + q0q1q1
  // (1); the singleton session [q0] x10 has no successor.
  EXPECT_EQ(index.Lookup(std::vector<QueryId>{kQ0})->start_count, 80u);
  // q1 at start: q1q0q0 (3) + q1q0q1 (7) + q1q0 (5) + q1q1 (3).
  EXPECT_EQ(index.Lookup(std::vector<QueryId>{kQ1})->start_count, 18u);
  EXPECT_EQ(
      index.Lookup(std::vector<QueryId>{kQ1, kQ0})->start_count, 10u);
}

TEST(ContextIndexPrefixTest, OnlyPrefixOccurrencesCounted) {
  ContextIndex index;
  index.Build(TableIISessions(), ContextIndex::Mode::kPrefix);
  const ContextEntry* q0 = index.Lookup(std::vector<QueryId>{kQ0});
  ASSERT_NE(q0, nullptr);
  // Prefix occurrences only: q0q0 (78), q0q1* (2); the inner q0 of q1q0q0
  // does not count.
  EXPECT_EQ(CountFor(q0, kQ0), 78u);
  EXPECT_EQ(CountFor(q0, kQ1), 2u);
  EXPECT_EQ(q0->total_count, 80u);
}

TEST(ContextIndexPrefixTest, PrefixContextsAlwaysStartSessions) {
  ContextIndex index;
  index.Build(TableIISessions(), ContextIndex::Mode::kPrefix);
  for (const ContextEntry* entry : index.SortedEntries()) {
    EXPECT_EQ(entry->start_count, entry->total_count);
  }
}

TEST(ContextIndexTest, MaxContextLengthBound) {
  ContextIndex index;
  index.Build(TableIISessions(), ContextIndex::Mode::kSubstring,
              /*max_context_length=*/1);
  EXPECT_EQ(index.Lookup(std::vector<QueryId>{kQ1, kQ0}), nullptr);
  EXPECT_NE(index.Lookup(std::vector<QueryId>{kQ0}), nullptr);
  EXPECT_EQ(index.max_context_length(), 1u);
}

TEST(ContextIndexTest, NextsSortedByCountThenId) {
  ContextIndex index;
  index.Build(TableIISessions(), ContextIndex::Mode::kSubstring);
  for (const ContextEntry* entry : index.SortedEntries()) {
    for (size_t i = 1; i < entry->nexts.size(); ++i) {
      const auto& prev = entry->nexts[i - 1];
      const auto& cur = entry->nexts[i];
      EXPECT_TRUE(prev.count > cur.count ||
                  (prev.count == cur.count && prev.query < cur.query));
    }
  }
}

TEST(ContextIndexTest, SortedEntriesDeterministicOrder) {
  ContextIndex index;
  index.Build(TableIISessions(), ContextIndex::Mode::kSubstring);
  const auto entries = index.SortedEntries();
  for (size_t i = 1; i < entries.size(); ++i) {
    const bool shorter =
        entries[i - 1]->context.size() < entries[i]->context.size();
    const bool same_len_lex =
        entries[i - 1]->context.size() == entries[i]->context.size() &&
        entries[i - 1]->context < entries[i]->context;
    EXPECT_TRUE(shorter || same_len_lex);
  }
}

TEST(ContextIndexTest, SingletonSessionsProduceNoContexts) {
  ContextIndex index;
  index.Build({{{kQ0}, 100}}, ContextIndex::Mode::kSubstring);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.total_occurrences(), 0u);
}

TEST(BuildGroundTruthTest, RanksByFrequency) {
  std::vector<AggregatedSession> test_sessions{
      {{kQ0, kQ1}, 10},  // q0 -> q1 ten times
      {{kQ0, kQ0}, 3},   // q0 -> q0 three times
  };
  const auto truth = BuildGroundTruth(test_sessions, /*n=*/5);
  ASSERT_EQ(truth.size(), 1u);
  EXPECT_EQ(truth[0].context, (std::vector<QueryId>{kQ0}));
  ASSERT_EQ(truth[0].ranked_next.size(), 2u);
  EXPECT_EQ(truth[0].ranked_next[0], kQ1);
  EXPECT_EQ(truth[0].ranked_next[1], kQ0);
  EXPECT_EQ(truth[0].support, 13u);
}

TEST(BuildGroundTruthTest, TruncatesToTopN) {
  std::vector<AggregatedSession> test_sessions;
  for (QueryId next = 1; next <= 8; ++next) {
    test_sessions.push_back({{kQ0, next}, next});
  }
  const auto truth = BuildGroundTruth(test_sessions, /*n=*/5);
  ASSERT_EQ(truth.size(), 1u);
  ASSERT_EQ(truth[0].ranked_next.size(), 5u);
  EXPECT_EQ(truth[0].ranked_next[0], 8u);  // highest frequency first
  EXPECT_EQ(truth[0].ranked_next[4], 4u);
}

TEST(BuildGroundTruthTest, LongerContextsIncluded) {
  std::vector<AggregatedSession> test_sessions{{{kQ0, kQ1, kQ0, kQ1}, 2}};
  const auto truth = BuildGroundTruth(test_sessions, 5);
  // Prefix contexts of lengths 1, 2, 3.
  ASSERT_EQ(truth.size(), 3u);
  EXPECT_EQ(truth[0].context.size(), 1u);
  EXPECT_EQ(truth[2].context.size(), 3u);
}

TEST(QueryRolesTest, RolesComputed) {
  std::vector<AggregatedSession> sessions{
      {{kQ0, kQ1}, 1},  // q0 non-last, q1 last
      {{2}, 1},         // singleton
  };
  const QueryRoles roles = ComputeQueryRoles(sessions);
  EXPECT_TRUE(roles.seen.count(kQ0));
  EXPECT_TRUE(roles.seen.count(kQ1));
  EXPECT_TRUE(roles.seen.count(2));
  EXPECT_TRUE(roles.in_multi_session.count(kQ0));
  EXPECT_TRUE(roles.in_multi_session.count(kQ1));
  EXPECT_FALSE(roles.in_multi_session.count(2));
  EXPECT_TRUE(roles.at_non_last.count(kQ0));
  EXPECT_FALSE(roles.at_non_last.count(kQ1));
  EXPECT_FALSE(roles.at_non_last.count(2));
}

}  // namespace
}  // namespace sqp
