// Sharded parallel counting and incremental append must be indistinguishable
// from the single-threaded from-scratch pass: identical entries (contexts,
// continuation counts, start counts), identical lookups, and identical PSTs
// built from the index, for any worker count and any batch split.

#include <vector>

#include <gtest/gtest.h>

#include "core/pst.h"
#include "log/context_builder.h"
#include "util/random.h"

namespace sqp {
namespace {

std::vector<AggregatedSession> MakeSessions(uint64_t seed, size_t count,
                                            QueryId vocabulary = 40) {
  Rng rng(seed);
  std::vector<AggregatedSession> sessions;
  sessions.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    AggregatedSession session;
    const size_t length = 1 + static_cast<size_t>(rng.UniformInt(8));
    session.queries.reserve(length);
    for (size_t j = 0; j < length; ++j) {
      session.queries.push_back(static_cast<QueryId>(
          rng.UniformInt(vocabulary)));
    }
    session.frequency = 1 + rng.UniformInt(4);
    sessions.push_back(std::move(session));
  }
  return sessions;
}

void ExpectSameIndex(const ContextIndex& expected, const ContextIndex& actual,
                     const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(expected.size(), actual.size());
  EXPECT_EQ(expected.total_occurrences(), actual.total_occurrences());
  EXPECT_EQ(expected.mode(), actual.mode());
  EXPECT_EQ(expected.max_context_length(), actual.max_context_length());
  for (size_t i = 0; i < expected.size(); ++i) {
    const ContextEntry& e = expected.sorted_entry(i);
    const ContextEntry& a = actual.sorted_entry(i);
    ASSERT_EQ(e.context, a.context) << "entry " << i;
    EXPECT_EQ(e.total_count, a.total_count) << "entry " << i;
    EXPECT_EQ(e.start_count, a.start_count) << "entry " << i;
    ASSERT_EQ(e.nexts.size(), a.nexts.size()) << "entry " << i;
    for (size_t j = 0; j < e.nexts.size(); ++j) {
      EXPECT_EQ(e.nexts[j].query, a.nexts[j].query) << "entry " << i;
      EXPECT_EQ(e.nexts[j].count, a.nexts[j].count) << "entry " << i;
    }
    // Trie numbering may differ between worker counts; the trie walk
    // (Lookup) must nevertheless resolve every context to the same entry.
    const ContextEntry* looked = actual.Lookup(e.context);
    ASSERT_NE(looked, nullptr) << "entry " << i;
    EXPECT_EQ(looked->total_count, e.total_count) << "entry " << i;
  }
}

void ExpectSamePst(const Pst& expected, const Pst& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  ASSERT_EQ(expected.view_masks().size(), actual.view_masks().size());
  for (size_t i = 0; i < expected.size(); ++i) {
    const Pst::Node& e = expected.nodes()[i];
    const Pst::Node& a = actual.nodes()[i];
    ASSERT_EQ(e.context, a.context) << "node " << i;
    EXPECT_EQ(e.parent, a.parent) << "node " << i;
    EXPECT_EQ(e.total_count, a.total_count) << "node " << i;
    EXPECT_EQ(e.start_count, a.start_count) << "node " << i;
    ASSERT_EQ(e.nexts.size(), a.nexts.size()) << "node " << i;
    for (size_t j = 0; j < e.nexts.size(); ++j) {
      EXPECT_EQ(e.nexts[j].query, a.nexts[j].query) << "node " << i;
      EXPECT_EQ(e.nexts[j].count, a.nexts[j].count) << "node " << i;
    }
    ASSERT_EQ(e.children.size(), a.children.size()) << "node " << i;
    for (size_t j = 0; j < e.children.size(); ++j) {
      EXPECT_EQ(e.children[j].query, a.children[j].query) << "node " << i;
      EXPECT_EQ(e.children[j].child, a.children[j].child) << "node " << i;
    }
  }
  for (size_t i = 0; i < expected.view_masks().size(); ++i) {
    EXPECT_EQ(expected.view_masks()[i], actual.view_masks()[i])
        << "mask " << i;
  }
}

TEST(ParallelCountTest, ShardedBuildMatchesSingleThreaded) {
  const std::vector<AggregatedSession> sessions = MakeSessions(131, 600);
  for (const ContextIndex::Mode mode :
       {ContextIndex::Mode::kPrefix, ContextIndex::Mode::kSubstring}) {
    for (const size_t max_length : {size_t{0}, size_t{3}}) {
      ContextIndex baseline;
      baseline.Build(sessions, mode, max_length, /*num_workers=*/1);
      for (const size_t workers : {size_t{2}, size_t{8}}) {
        ContextIndex sharded;
        sharded.Build(sessions, mode, max_length, workers);
        ExpectSameIndex(baseline, sharded,
                        "mode=" + std::to_string(static_cast<int>(mode)) +
                            " depth=" + std::to_string(max_length) +
                            " workers=" + std::to_string(workers));
      }
    }
  }
}

TEST(ParallelCountTest, ShardedBuildYieldsIdenticalSharedPst) {
  const std::vector<AggregatedSession> sessions = MakeSessions(223, 800);
  ContextIndex baseline;
  baseline.Build(sessions, ContextIndex::Mode::kSubstring, 0,
                 /*num_workers=*/1);
  ContextIndex sharded;
  sharded.Build(sessions, ContextIndex::Mode::kSubstring, 0,
                /*num_workers=*/8);

  const std::vector<PstOptions> views = {
      PstOptions{.epsilon = 0.0, .max_depth = 3, .min_support = 1},
      PstOptions{.epsilon = 0.05, .max_depth = 5, .min_support = 1},
      PstOptions{.epsilon = 0.1, .max_depth = 5, .min_support = 2},
  };
  Pst expected;
  ASSERT_TRUE(expected.BuildShared(baseline, views).ok());
  Pst actual;
  ASSERT_TRUE(actual.BuildShared(sharded, views).ok());
  ExpectSamePst(expected, actual);
}

TEST(ParallelCountTest, AppendMatchesFromScratchBuild) {
  const std::vector<AggregatedSession> all = MakeSessions(317, 900);
  const size_t cut1 = 500;
  const size_t cut2 = 750;
  const std::vector<AggregatedSession> first(all.begin(), all.begin() + cut1);
  const std::vector<AggregatedSession> second(all.begin() + cut1,
                                              all.begin() + cut2);
  const std::vector<AggregatedSession> third(all.begin() + cut2, all.end());

  for (const ContextIndex::Mode mode :
       {ContextIndex::Mode::kPrefix, ContextIndex::Mode::kSubstring}) {
    ContextIndex reference;
    reference.Build(all, mode, /*max_context_length=*/5);

    ContextIndex incremental;
    incremental.Build(first, mode, /*max_context_length=*/5);
    incremental.Append(second);
    incremental.Append(third);
    ExpectSameIndex(reference, incremental, "sequential append");

    // Appending in parallel shards, onto a parallel-built base, changes
    // nothing either.
    ContextIndex parallel;
    parallel.Build(first, mode, /*max_context_length=*/5, /*num_workers=*/4);
    parallel.Append(second, /*num_workers=*/8);
    parallel.Append(third, /*num_workers=*/2);
    ExpectSameIndex(reference, parallel, "parallel append");
  }
}

TEST(ParallelCountTest, AppendExtendsLookupsAndPst) {
  const std::vector<AggregatedSession> base = MakeSessions(401, 400);
  const std::vector<AggregatedSession> extra = MakeSessions(402, 300);
  std::vector<AggregatedSession> all = base;
  all.insert(all.end(), extra.begin(), extra.end());

  ContextIndex incremental;
  incremental.Build(base, ContextIndex::Mode::kSubstring, 0);
  incremental.Append(extra);
  ContextIndex reference;
  reference.Build(all, ContextIndex::Mode::kSubstring, 0);

  const std::vector<PstOptions> views = {
      PstOptions{.epsilon = 0.05, .max_depth = 5, .min_support = 1},
  };
  Pst expected;
  ASSERT_TRUE(expected.BuildShared(reference, views).ok());
  Pst actual;
  ASSERT_TRUE(actual.BuildShared(incremental, views).ok());
  ExpectSamePst(expected, actual);
}

TEST(ParallelCountTest, WorkerCountBeyondSessionsIsSafe) {
  const std::vector<AggregatedSession> sessions = MakeSessions(551, 3);
  ContextIndex baseline;
  baseline.Build(sessions, ContextIndex::Mode::kSubstring, 0);
  ContextIndex sharded;
  sharded.Build(sessions, ContextIndex::Mode::kSubstring, 0,
                /*num_workers=*/16);
  ExpectSameIndex(baseline, sharded, "workers > sessions");

  ContextIndex empty;
  empty.Build({}, ContextIndex::Mode::kSubstring, 0, /*num_workers=*/8);
  EXPECT_EQ(empty.size(), 0u);
}

}  // namespace
}  // namespace sqp
