#include "log/data_reduction.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

AggregatedSession Make(std::vector<QueryId> queries, uint64_t freq) {
  return AggregatedSession{std::move(queries), freq};
}

TEST(DataReductionTest, DropsLowFrequencySessions) {
  ReductionOptions options;
  options.min_frequency_exclusive = 5;
  options.max_session_length = 0;
  std::vector<AggregatedSession> sessions{Make({1}, 5), Make({2}, 6),
                                          Make({3}, 100)};
  ReductionReport report;
  const auto kept = ReduceSessions(sessions, options, &report);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].queries, (std::vector<QueryId>{2}));
  EXPECT_EQ(report.sessions_in, 3u);
  EXPECT_EQ(report.sessions_kept, 2u);
  EXPECT_EQ(report.weight_in, 111u);
  EXPECT_EQ(report.weight_kept, 106u);
}

TEST(DataReductionTest, ThresholdIsExclusive) {
  ReductionOptions options;
  options.min_frequency_exclusive = 5;
  std::vector<AggregatedSession> sessions{Make({1}, 6)};
  ReductionReport report;
  EXPECT_EQ(ReduceSessions(sessions, options, &report).size(), 1u);
}

TEST(DataReductionTest, DropsSuperLongSessions) {
  ReductionOptions options;
  options.min_frequency_exclusive = 0;
  options.max_session_length = 3;
  std::vector<AggregatedSession> sessions{Make({1, 2, 3}, 10),
                                          Make({1, 2, 3, 4}, 10)};
  const auto kept = ReduceSessions(sessions, options, nullptr);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].queries.size(), 3u);
}

TEST(DataReductionTest, ZeroLengthCutKeepsAll) {
  ReductionOptions options;
  options.min_frequency_exclusive = 0;
  options.max_session_length = 0;
  std::vector<AggregatedSession> sessions{
      Make({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, 1)};
  EXPECT_EQ(ReduceSessions(sessions, options, nullptr).size(), 1u);
}

TEST(DataReductionTest, KeptWeightFraction) {
  ReductionOptions options;
  options.min_frequency_exclusive = 1;
  std::vector<AggregatedSession> sessions{Make({1}, 1), Make({2}, 9)};
  ReductionReport report;
  ReduceSessions(sessions, options, &report);
  EXPECT_NEAR(report.kept_weight_fraction(), 0.9, 1e-12);
}

TEST(DataReductionTest, EmptyInput) {
  ReductionReport report;
  EXPECT_TRUE(ReduceSessions({}, ReductionOptions{}, &report).empty());
  EXPECT_EQ(report.sessions_in, 0u);
  EXPECT_DOUBLE_EQ(report.kept_weight_fraction(), 0.0);
}

TEST(DataReductionTest, PreservesInputOrder) {
  ReductionOptions options;
  options.min_frequency_exclusive = 0;
  std::vector<AggregatedSession> sessions{Make({9}, 2), Make({1}, 3),
                                          Make({5}, 2)};
  const auto kept = ReduceSessions(sessions, options, nullptr);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].queries, (std::vector<QueryId>{9}));
  EXPECT_EQ(kept[2].queries, (std::vector<QueryId>{5}));
}

}  // namespace
}  // namespace sqp
