#include "log/log_record.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

RawLogRecord SampleRecord() {
  RawLogRecord record;
  record.machine_id = 77;
  record.timestamp_ms = 1220583600000LL;
  record.query = "kidney stone symptoms";
  record.clicks.push_back(UrlClick{1220583625000LL, "www.health.example.com"});
  record.clicks.push_back(UrlClick{1220583640000LL, "www.mayo.example.com"});
  return record;
}

TEST(LogRecordTest, RoundTripWithClicks) {
  const RawLogRecord original = SampleRecord();
  RawLogRecord parsed;
  ASSERT_TRUE(RecordFromTsv(RecordToTsv(original), &parsed).ok());
  EXPECT_EQ(parsed, original);
}

TEST(LogRecordTest, RoundTripWithoutClicks) {
  RawLogRecord original = SampleRecord();
  original.clicks.clear();
  RawLogRecord parsed;
  ASSERT_TRUE(RecordFromTsv(RecordToTsv(original), &parsed).ok());
  EXPECT_EQ(parsed, original);
}

TEST(LogRecordTest, TsvLayoutMatchesTableIII) {
  RawLogRecord record;
  record.machine_id = 1;
  record.timestamp_ms = 521000;
  record.query = "q1";
  record.clicks.push_back(UrlClick{546000, "aaa.com"});
  EXPECT_EQ(RecordToTsv(record), "1\t521000\tq1\t1\t546000\taaa.com");
}

TEST(LogRecordTest, QueryMayContainSpaces) {
  RawLogRecord record;
  record.machine_id = 2;
  record.timestamp_ms = 1;
  record.query = "learn sign language";
  RawLogRecord parsed;
  ASSERT_TRUE(RecordFromTsv(RecordToTsv(record), &parsed).ok());
  EXPECT_EQ(parsed.query, "learn sign language");
}

struct MalformedCase {
  const char* name;
  const char* line;
};

class MalformedRecordTest : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(MalformedRecordTest, Rejected) {
  RawLogRecord record;
  const Status st = RecordFromTsv(GetParam().line, &record);
  EXPECT_FALSE(st.ok()) << GetParam().name;
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MalformedRecordTest,
    ::testing::Values(
        MalformedCase{"empty", ""},
        MalformedCase{"too_few_fields", "1\t2\tq"},
        MalformedCase{"bad_machine", "x\t2\tq\t0"},
        MalformedCase{"bad_timestamp", "1\tx\tq\t0"},
        MalformedCase{"empty_query", "1\t2\t\t0"},
        MalformedCase{"bad_click_count", "1\t2\tq\tx"},
        MalformedCase{"click_count_mismatch_low", "1\t2\tq\t1"},
        MalformedCase{"click_count_mismatch_high",
                      "1\t2\tq\t0\t3\turl.com"},
        MalformedCase{"bad_click_timestamp", "1\t2\tq\t1\tx\turl.com"},
        MalformedCase{"empty_click_url", "1\t2\tq\t1\t3\t"}),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      return info.param.name;
    });

TEST(LogRecordTest, ErrorMessageNamesField) {
  RawLogRecord record;
  const Status st = RecordFromTsv("abc\t2\tq\t0", &record);
  EXPECT_NE(st.message().find("machine_id"), std::string::npos);
}

}  // namespace
}  // namespace sqp
