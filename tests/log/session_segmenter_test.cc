#include "log/session_segmenter.h"

#include <gtest/gtest.h>

namespace sqp {
namespace {

constexpr int64_t kMinute = 60 * 1000;

RawLogRecord MakeRecord(uint64_t machine, int64_t ts_ms,
                        const std::string& query) {
  RawLogRecord r;
  r.machine_id = machine;
  r.timestamp_ms = ts_ms;
  r.query = query;
  return r;
}

TEST(SessionSegmenterTest, SingleSessionWithinTimeout) {
  std::vector<RawLogRecord> records{
      MakeRecord(1, 0, "a"),
      MakeRecord(1, 5 * kMinute, "b"),
      MakeRecord(1, 12 * kMinute, "c"),
  };
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(SessionSegmenter().Segment(records, &dict, &sessions).ok());
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].queries.size(), 3u);
  EXPECT_EQ(sessions[0].machine_id, 1u);
  EXPECT_EQ(sessions[0].start_ms, 0);
}

TEST(SessionSegmenterTest, CutsAfterThirtyMinuteGap) {
  std::vector<RawLogRecord> records{
      MakeRecord(1, 0, "a"),
      MakeRecord(1, 31 * kMinute, "b"),
  };
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(SessionSegmenter().Segment(records, &dict, &sessions).ok());
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].queries.size(), 1u);
  EXPECT_EQ(sessions[1].queries.size(), 1u);
}

TEST(SessionSegmenterTest, ExactlyThirtyMinutesStaysOneSession) {
  std::vector<RawLogRecord> records{
      MakeRecord(1, 0, "a"),
      MakeRecord(1, 30 * kMinute, "b"),  // not *more than* 30 minutes
  };
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(SessionSegmenter().Segment(records, &dict, &sessions).ok());
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].queries.size(), 2u);
}

TEST(SessionSegmenterTest, ClickActivityExtendsSession) {
  // Query at t=0 with a click at t=25min; next query at t=50min is within
  // 30 minutes of the *click*, so the session continues.
  RawLogRecord first = MakeRecord(1, 0, "a");
  first.clicks.push_back(UrlClick{25 * kMinute, "www.x.example.com"});
  std::vector<RawLogRecord> records{first, MakeRecord(1, 50 * kMinute, "b")};
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(SessionSegmenter().Segment(records, &dict, &sessions).ok());
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].queries.size(), 2u);
}

TEST(SessionSegmenterTest, WithoutClickSameGapSplits) {
  std::vector<RawLogRecord> records{MakeRecord(1, 0, "a"),
                                    MakeRecord(1, 50 * kMinute, "b")};
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(SessionSegmenter().Segment(records, &dict, &sessions).ok());
  EXPECT_EQ(sessions.size(), 2u);
}

TEST(SessionSegmenterTest, MachinesAreIndependent) {
  std::vector<RawLogRecord> records{
      MakeRecord(1, 0, "a"),
      MakeRecord(2, kMinute, "x"),
      MakeRecord(1, 2 * kMinute, "b"),
      MakeRecord(2, 3 * kMinute, "y"),
  };
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(SessionSegmenter().Segment(records, &dict, &sessions).ok());
  ASSERT_EQ(sessions.size(), 2u);
  for (const Session& s : sessions) {
    EXPECT_EQ(s.queries.size(), 2u);
  }
}

TEST(SessionSegmenterTest, OutOfOrderTimestampsAreSorted) {
  std::vector<RawLogRecord> records{
      MakeRecord(1, 10 * kMinute, "b"),
      MakeRecord(1, 0, "a"),
  };
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(SessionSegmenter().Segment(records, &dict, &sessions).ok());
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(dict.Text(sessions[0].queries[0]), "a");
  EXPECT_EQ(dict.Text(sessions[0].queries[1]), "b");
}

TEST(SessionSegmenterTest, RepeatedQueriesKept) {
  // The "Repeated query" pattern must survive segmentation.
  std::vector<RawLogRecord> records{
      MakeRecord(1, 0, "aim"),
      MakeRecord(1, kMinute, "myspace"),
      MakeRecord(1, 2 * kMinute, "myspace"),
      MakeRecord(1, 3 * kMinute, "photobucket"),
  };
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(SessionSegmenter().Segment(records, &dict, &sessions).ok());
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].queries.size(), 4u);
  EXPECT_EQ(sessions[0].queries[1], sessions[0].queries[2]);
}

TEST(SessionSegmenterTest, MaxSessionLengthDropsLongSessions) {
  SegmenterOptions options;
  options.max_session_length = 2;
  std::vector<RawLogRecord> records{
      MakeRecord(1, 0, "a"),
      MakeRecord(1, kMinute, "b"),
      MakeRecord(1, 2 * kMinute, "c"),
      MakeRecord(2, 0, "x"),
  };
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(
      SessionSegmenter(options).Segment(records, &dict, &sessions).ok());
  ASSERT_EQ(sessions.size(), 1u);  // machine 1's 3-query session is dropped
  EXPECT_EQ(sessions[0].machine_id, 2u);
}

TEST(SessionSegmenterTest, EmptyQueryRejected) {
  std::vector<RawLogRecord> records{MakeRecord(1, 0, "   ")};
  QueryDictionary dict;
  std::vector<Session> sessions;
  EXPECT_EQ(SessionSegmenter().Segment(records, &dict, &sessions).code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionSegmenterTest, ClickBeforeQueryRejected) {
  RawLogRecord bad = MakeRecord(1, kMinute, "a");
  bad.clicks.push_back(UrlClick{0, "www.early.example.com"});
  QueryDictionary dict;
  std::vector<Session> sessions;
  EXPECT_EQ(SessionSegmenter().Segment({bad}, &dict, &sessions).code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionSegmenterTest, EmptyInputYieldsNoSessions) {
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(SessionSegmenter().Segment({}, &dict, &sessions).ok());
  EXPECT_TRUE(sessions.empty());
}

TEST(SessionSegmenterTest, CustomTimeout) {
  SegmenterOptions options;
  options.timeout_ms = 5 * kMinute;
  std::vector<RawLogRecord> records{MakeRecord(1, 0, "a"),
                                    MakeRecord(1, 6 * kMinute, "b")};
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(
      SessionSegmenter(options).Segment(records, &dict, &sessions).ok());
  EXPECT_EQ(sessions.size(), 2u);
}

TEST(SegmentationStrategyTest, NamesStable) {
  EXPECT_EQ(SegmentationStrategyName(SegmentationStrategy::kTimeGap),
            "30-minute rule");
  EXPECT_EQ(SegmentationStrategyName(SegmentationStrategy::kFixedWindow),
            "fixed window");
  EXPECT_EQ(
      SegmentationStrategyName(SegmentationStrategy::kSimilarityAssisted),
      "similarity-assisted");
}

TEST(SessionSegmenterTest, FixedWindowCutsLongSessions) {
  SegmenterOptions options;
  options.strategy = SegmentationStrategy::kFixedWindow;
  options.window_ms = 20 * kMinute;
  // Queries every 10 minutes: the time-gap rule would keep one session;
  // the fixed window cuts after 20 minutes of session duration.
  std::vector<RawLogRecord> records{
      MakeRecord(1, 0, "a"),
      MakeRecord(1, 10 * kMinute, "b"),
      MakeRecord(1, 25 * kMinute, "c"),  // beyond the 20-minute window
      MakeRecord(1, 30 * kMinute, "d"),
  };
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(
      SessionSegmenter(options).Segment(records, &dict, &sessions).ok());
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].queries.size(), 2u);
  EXPECT_EQ(sessions[1].queries.size(), 2u);
}

TEST(SessionSegmenterTest, SimilarityAssistedCutsTopicShift) {
  SegmenterOptions options;
  options.strategy = SegmentationStrategy::kSimilarityAssisted;
  options.soft_timeout_ms = 10 * kMinute;
  // 15-minute gap + no shared term: cut. Same gap with a shared term: keep.
  std::vector<RawLogRecord> records{
      MakeRecord(1, 0, "kidney stones"),
      MakeRecord(1, 15 * kMinute, "muzzle brake"),  // topic shift: cut
      MakeRecord(1, 16 * kMinute, "muzzle brake reviews"),  // shares a term
  };
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(
      SessionSegmenter(options).Segment(records, &dict, &sessions).ok());
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].queries.size(), 1u);
  EXPECT_EQ(sessions[1].queries.size(), 2u);
}

TEST(SessionSegmenterTest, SimilarityAssistedKeepsRelatedAcrossSoftGap) {
  SegmenterOptions options;
  options.strategy = SegmentationStrategy::kSimilarityAssisted;
  options.soft_timeout_ms = 10 * kMinute;
  std::vector<RawLogRecord> records{
      MakeRecord(1, 0, "kidney stones"),
      MakeRecord(1, 15 * kMinute, "kidney stone symptoms"),  // shared term
  };
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(
      SessionSegmenter(options).Segment(records, &dict, &sessions).ok());
  EXPECT_EQ(sessions.size(), 1u);
}

TEST(SessionSegmenterTest, SimilarityAssistedStillHonorsHardTimeout) {
  SegmenterOptions options;
  options.strategy = SegmentationStrategy::kSimilarityAssisted;
  // Shared term but a gap beyond the hard 30-minute timeout: cut.
  std::vector<RawLogRecord> records{
      MakeRecord(1, 0, "kidney stones"),
      MakeRecord(1, 31 * kMinute, "kidney stone symptoms"),
  };
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(
      SessionSegmenter(options).Segment(records, &dict, &sessions).ok());
  EXPECT_EQ(sessions.size(), 2u);
}

TEST(SessionSegmenterTest, SimilarityAssistedShortGapKeepsAnyTopic) {
  SegmenterOptions options;
  options.strategy = SegmentationStrategy::kSimilarityAssisted;
  options.soft_timeout_ms = 10 * kMinute;
  std::vector<RawLogRecord> records{
      MakeRecord(1, 0, "kidney stones"),
      MakeRecord(1, 2 * kMinute, "muzzle brake"),  // quick topic hop: keep
  };
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(
      SessionSegmenter(options).Segment(records, &dict, &sessions).ok());
  EXPECT_EQ(sessions.size(), 1u);
}

TEST(SessionSegmenterTest, AppendsToExistingSessions) {
  QueryDictionary dict;
  std::vector<Session> sessions;
  ASSERT_TRUE(
      SessionSegmenter().Segment({MakeRecord(1, 0, "a")}, &dict, &sessions)
          .ok());
  ASSERT_TRUE(
      SessionSegmenter().Segment({MakeRecord(2, 0, "b")}, &dict, &sessions)
          .ok());
  EXPECT_EQ(sessions.size(), 2u);
}

}  // namespace
}  // namespace sqp
