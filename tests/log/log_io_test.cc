#include "log/log_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace sqp {
namespace {

class LogIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("sqp_log_io_test_" +
              std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
              ".tsv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<RawLogRecord> SampleRecords() {
    std::vector<RawLogRecord> records;
    for (int i = 0; i < 5; ++i) {
      RawLogRecord r;
      r.machine_id = static_cast<uint64_t>(i % 2 + 1);
      r.timestamp_ms = 1000 * i;
      r.query = "query " + std::to_string(i);
      if (i % 2 == 0) {
        r.clicks.push_back(UrlClick{1000 * i + 500, "www.site.example.com"});
      }
      records.push_back(std::move(r));
    }
    return records;
  }

  std::string path_;
};

TEST_F(LogIoTest, WriteReadRoundTrip) {
  const std::vector<RawLogRecord> records = SampleRecords();
  ASSERT_TRUE(WriteLogFile(path_, records).ok());
  std::vector<RawLogRecord> loaded;
  ASSERT_TRUE(ReadLogFile(path_, &loaded).ok());
  EXPECT_EQ(loaded, records);
}

TEST_F(LogIoTest, WriterCountsRecords) {
  LogWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  for (const RawLogRecord& r : SampleRecords()) {
    ASSERT_TRUE(writer.Write(r).ok());
  }
  EXPECT_EQ(writer.records_written(), 5u);
  EXPECT_TRUE(writer.Close().ok());
}

TEST_F(LogIoTest, WriteWithoutOpenFails) {
  LogWriter writer;
  RawLogRecord r;
  r.machine_id = 1;
  r.query = "q";
  EXPECT_EQ(writer.Write(r).code(), StatusCode::kFailedPrecondition);
}

TEST_F(LogIoTest, WriterRejectsTabInQuery) {
  LogWriter writer;
  ASSERT_TRUE(writer.Open(path_).ok());
  RawLogRecord r;
  r.machine_id = 1;
  r.query = "bad\tquery";
  EXPECT_EQ(writer.Write(r).code(), StatusCode::kInvalidArgument);
}

TEST_F(LogIoTest, ReaderSkipsBlankLines) {
  {
    std::ofstream out(path_);
    out << "1\t100\tq1\t0\n\n   \n2\t200\tq2\t0\n";
  }
  std::vector<RawLogRecord> loaded;
  ASSERT_TRUE(ReadLogFile(path_, &loaded).ok());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].query, "q1");
  EXPECT_EQ(loaded[1].query, "q2");
}

TEST_F(LogIoTest, ReaderReportsLineNumberOnError) {
  {
    std::ofstream out(path_);
    out << "1\t100\tq1\t0\n";
    out << "garbage line\n";
  }
  std::vector<RawLogRecord> loaded;
  const Status st = ReadLogFile(path_, &loaded);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
}

TEST_F(LogIoTest, ReadSignalsEof) {
  ASSERT_TRUE(WriteLogFile(path_, {}).ok());
  LogReader reader;
  ASSERT_TRUE(reader.Open(path_).ok());
  RawLogRecord record;
  bool eof = false;
  ASSERT_TRUE(reader.Read(&record, &eof).ok());
  EXPECT_TRUE(eof);
}

TEST_F(LogIoTest, OpenMissingFileFails) {
  LogReader reader;
  EXPECT_EQ(reader.Open("/nonexistent/dir/file.tsv").code(),
            StatusCode::kIOError);
}

TEST_F(LogIoTest, OpenUnwritablePathFails) {
  LogWriter writer;
  EXPECT_EQ(writer.Open("/nonexistent/dir/file.tsv").code(),
            StatusCode::kIOError);
}

TEST_F(LogIoTest, LargeBatchRoundTrip) {
  std::vector<RawLogRecord> records;
  for (int i = 0; i < 2000; ++i) {
    RawLogRecord r;
    r.machine_id = static_cast<uint64_t>(i);
    r.timestamp_ms = i;
    r.query = "q" + std::to_string(i % 97);
    records.push_back(std::move(r));
  }
  ASSERT_TRUE(WriteLogFile(path_, records).ok());
  std::vector<RawLogRecord> loaded;
  ASSERT_TRUE(ReadLogFile(path_, &loaded).ok());
  EXPECT_EQ(loaded.size(), records.size());
  EXPECT_EQ(loaded, records);
}

}  // namespace
}  // namespace sqp
