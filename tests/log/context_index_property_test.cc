// Property tests for the arena-trie ContextIndex: its counts must be
// byte-identical to a straightforward map-based reference implementation
// (the pre-arena algorithm) on randomly synthesized logs, and its trie
// accessors must agree with the materialized entries.

#include <algorithm>
#include <map>
#include <unordered_map>

#include <gtest/gtest.h>

#include "log/context_builder.h"
#include "util/hash.h"
#include "util/random.h"

namespace sqp {
namespace {

/// Reference counting: the original nested-map algorithm, kept verbatim in
/// spirit (hash context vectors, nested next maps) as the ground truth the
/// arena trie must reproduce exactly.
struct ReferenceEntry {
  std::vector<NextQueryCount> nexts;
  uint64_t total_count = 0;
  uint64_t start_count = 0;
};

std::map<std::vector<QueryId>, ReferenceEntry> ReferenceIndex(
    const std::vector<AggregatedSession>& sessions, ContextIndex::Mode mode,
    size_t max_context_length) {
  std::unordered_map<std::vector<QueryId>,
                     std::unordered_map<QueryId, uint64_t>, IdSequenceHash>
      counts;
  std::unordered_map<std::vector<QueryId>, uint64_t, IdSequenceHash>
      start_counts;
  std::vector<QueryId> key;
  for (const AggregatedSession& session : sessions) {
    const std::vector<QueryId>& q = session.queries;
    if (q.size() < 2) continue;
    for (size_t end = 1; end < q.size(); ++end) {
      const size_t max_len =
          max_context_length == 0 ? end : std::min(end, max_context_length);
      if (mode == ContextIndex::Mode::kPrefix) {
        if (max_context_length != 0 && end > max_context_length) continue;
        key.assign(q.begin(), q.begin() + static_cast<ptrdiff_t>(end));
        counts[key][q[end]] += session.frequency;
        start_counts[key] += session.frequency;
      } else {
        for (size_t len = 1; len <= max_len; ++len) {
          const size_t start = end - len;
          key.assign(q.begin() + static_cast<ptrdiff_t>(start),
                     q.begin() + static_cast<ptrdiff_t>(end));
          counts[key][q[end]] += session.frequency;
          if (start == 0) start_counts[key] += session.frequency;
        }
      }
    }
  }
  std::map<std::vector<QueryId>, ReferenceEntry> reference;
  for (const auto& [context, next_map] : counts) {
    ReferenceEntry entry;
    for (const auto& [next, count] : next_map) {
      entry.nexts.push_back(NextQueryCount{next, count});
      entry.total_count += count;
    }
    std::sort(entry.nexts.begin(), entry.nexts.end(),
              [](const NextQueryCount& a, const NextQueryCount& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.query < b.query;
              });
    auto it = start_counts.find(context);
    entry.start_count = it == start_counts.end() ? 0 : it->second;
    reference.emplace(context, std::move(entry));
  }
  return reference;
}

std::vector<AggregatedSession> RandomCorpus(uint64_t seed, size_t vocab,
                                            size_t num_sessions) {
  Rng rng(seed);
  std::vector<AggregatedSession> sessions;
  sessions.reserve(num_sessions);
  for (size_t i = 0; i < num_sessions; ++i) {
    AggregatedSession session;
    const size_t len = 1 + rng.Geometric(0.4) % 9;
    for (size_t j = 0; j < len; ++j) {
      session.queries.push_back(static_cast<QueryId>(rng.UniformInt(vocab)));
    }
    session.frequency = 1 + rng.UniformInt(30);
    sessions.push_back(std::move(session));
  }
  return sessions;
}

using IndexParam = std::tuple<int /*mode*/, size_t /*max_len*/,
                              uint64_t /*seed*/>;

class ContextIndexPropertyTest : public ::testing::TestWithParam<IndexParam> {
 protected:
  void SetUp() override {
    const auto& [mode, max_len, seed] = GetParam();
    mode_ = mode == 0 ? ContextIndex::Mode::kPrefix
                      : ContextIndex::Mode::kSubstring;
    max_len_ = max_len;
    sessions_ = RandomCorpus(seed, /*vocab=*/30, /*num_sessions=*/400);
    index_.Build(sessions_, mode_, max_len_);
  }

  std::vector<AggregatedSession> sessions_;
  ContextIndex index_;
  ContextIndex::Mode mode_ = ContextIndex::Mode::kPrefix;
  size_t max_len_ = 0;
};

TEST_P(ContextIndexPropertyTest, MatchesReferenceCountsExactly) {
  const auto reference = ReferenceIndex(sessions_, mode_, max_len_);
  const auto entries = index_.SortedEntries();
  ASSERT_EQ(entries.size(), reference.size());
  uint64_t total = 0;
  for (const ContextEntry* entry : entries) {
    const auto it = reference.find(entry->context);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(entry->total_count, it->second.total_count);
    EXPECT_EQ(entry->start_count, it->second.start_count);
    ASSERT_EQ(entry->nexts.size(), it->second.nexts.size());
    for (size_t i = 0; i < entry->nexts.size(); ++i) {
      EXPECT_EQ(entry->nexts[i].query, it->second.nexts[i].query);
      EXPECT_EQ(entry->nexts[i].count, it->second.nexts[i].count);
    }
    total += entry->total_count;
  }
  EXPECT_EQ(index_.total_occurrences(), total);
}

TEST_P(ContextIndexPropertyTest, LookupFindsEveryEntryAndOnlyEntries) {
  for (const ContextEntry* entry : index_.SortedEntries()) {
    EXPECT_EQ(index_.Lookup(entry->context), entry);
  }
  // A context extended by an unseen query must miss.
  for (const ContextEntry* entry : index_.SortedEntries()) {
    std::vector<QueryId> extended = entry->context;
    extended.push_back(9999);
    EXPECT_EQ(index_.Lookup(extended), nullptr);
  }
}

TEST_P(ContextIndexPropertyTest, TrieAccessorsConsistentWithEntries) {
  for (size_t i = 0; i < index_.size(); ++i) {
    const ContextEntry& entry = index_.sorted_entry(i);
    const int32_t node = index_.sorted_entry_node(i);
    EXPECT_EQ(index_.entry_at(node), &entry);
    EXPECT_EQ(index_.trie_depth(node), entry.context.size());
    // The trie parent must hold the context minus its oldest query.
    const int32_t parent = index_.trie_parent(node);
    if (entry.context.size() == 1) {
      EXPECT_EQ(parent, 0);
    } else {
      const ContextEntry* parent_entry = index_.entry_at(parent);
      if (mode_ == ContextIndex::Mode::kSubstring) {
        // Substring counting is suffix-closed: the parent context is
        // always an entry itself.
        ASSERT_NE(parent_entry, nullptr);
        EXPECT_TRUE(std::equal(entry.context.begin() + 1,
                               entry.context.end(),
                               parent_entry->context.begin(),
                               parent_entry->context.end()));
      }
      EXPECT_EQ(index_.trie_depth(parent), entry.context.size() - 1);
    }
  }
}

TEST_P(ContextIndexPropertyTest, TrieChildEdgesSortedAndLinked) {
  for (size_t node = 0; node < index_.num_trie_nodes(); ++node) {
    const auto kids = index_.trie_children(static_cast<int32_t>(node));
    for (size_t i = 0; i < kids.size(); ++i) {
      if (i > 0) EXPECT_LT(kids[i - 1].query, kids[i].query);
      EXPECT_EQ(index_.trie_parent(kids[i].node), static_cast<int32_t>(node));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModeSweep, ContextIndexPropertyTest,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(size_t{0}, size_t{2}, size_t{5}),
                       ::testing::Values(uint64_t{7}, uint64_t{1234})));

}  // namespace
}  // namespace sqp
