// Concurrency stress for admission control: bounded-deadline batches on
// both lanes (small capacities force real sheds), deadline-free legacy
// batches, and single-query QoS traffic all race snapshot publishes.
// Invariants checked per response, not per schedule — the interleaving is
// whatever the machine gives us (run under the SQP_TSAN build in CI):
//   - legacy (deadline-free) batches ALWAYS complete in full,
//   - every QoS batch accounts for every item (served == #kOk, the rest
//     carry an explicit shed/expiry status),
//   - every kOk answer matches one fully-published generation bit-exactly,
//   - nothing deadlocks: all threads join after fixed iteration counts.

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/recommender_engine.h"
#include "serve_test_util.h"

namespace sqp {
namespace {

using serve_test::CollectContexts;
using serve_test::SameRecommendation;
using serve_test::SharedCorpus;

constexpr size_t kVocabularyBound = 1 << 20;
// degrade_min_top_n (3) == the serving top_n, so degradation can trigger
// without changing answer shapes — kOk answers stay bit-comparable.
constexpr size_t kTopN = 3;

std::shared_ptr<const ModelSnapshot> BuildSnapshot(
    const std::vector<AggregatedSession>& sessions, uint64_t version) {
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = kVocabularyBound;
  MvmmOptions options;
  options.default_max_depth = 5;
  auto built = ModelSnapshot::Build(data, options, version);
  SQP_CHECK(built.ok());
  return built.value();
}

bool OkOrShed(StatusCode code) {
  return code == StatusCode::kOk || code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kResourceExhausted;
}

TEST(AdmissionStressTest, ShedAdmitAndPublishRaceCleanly) {
  std::vector<AggregatedSession> grown = SharedCorpus().base;
  grown.insert(grown.end(), SharedCorpus().drifted.begin(),
               SharedCorpus().drifted.end());
  const std::vector<std::shared_ptr<const ModelSnapshot>> snapshots = {
      BuildSnapshot(SharedCorpus().base, 1), BuildSnapshot(grown, 2)};

  const std::vector<std::vector<QueryId>> contexts =
      CollectContexts(grown, 256);
  // expected[v][i]: the exact answer generation v+1 gives context i.
  std::vector<std::vector<Recommendation>> expected(snapshots.size());
  {
    SnapshotScratch scratch;
    for (size_t v = 0; v < snapshots.size(); ++v) {
      for (const std::vector<QueryId>& context : contexts) {
        expected[v].push_back(
            snapshots[v]->Recommend(context, kTopN, &scratch));
      }
    }
  }

  EngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.admission.interactive_capacity = 2;
  engine_options.admission.bulk_capacity = 1;
  RecommenderEngine engine(engine_options);
  engine.Publish(snapshots[0]);

  std::atomic<size_t> violations{0};
  std::atomic<size_t> ok_items{0};
  std::atomic<size_t> shed_or_expired{0};

  const auto check_batch = [&](const BatchResult& batch, size_t offset,
                               size_t n) {
    if (batch.statuses.size() != n || batch.results.size() != n) {
      violations.fetch_add(1);
      return;
    }
    size_t ok = 0;
    for (size_t i = 0; i < n; ++i) {
      const StatusCode code = batch.statuses[i];
      if (!OkOrShed(code) ||
          (!batch.admission.ok() && code == StatusCode::kOk)) {
        violations.fetch_add(1);
        return;
      }
      if (code != StatusCode::kOk) {
        shed_or_expired.fetch_add(1);
        continue;
      }
      ++ok;
      const uint64_t v = batch.served_version;
      if (v < 1 || v > snapshots.size() ||
          !SameRecommendation(expected[v - 1][(offset + i) % contexts.size()],
                              batch.results[i])) {
        violations.fetch_add(1);
        return;
      }
    }
    if (ok != batch.served) violations.fetch_add(1);
    ok_items.fetch_add(ok);
  };

  std::vector<ContextRef> refs;
  refs.reserve(contexts.size());
  for (const std::vector<QueryId>& context : contexts) {
    refs.emplace_back(context.data(), context.size());
  }
  const auto slice = [&](size_t offset, size_t n) {
    std::vector<ContextRef> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(refs[(offset + i) % refs.size()]);
    }
    return out;
  };

  std::vector<std::thread> threads;
  // Bulk QoS pressure: big batches under tight-ish deadlines.
  for (size_t t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (size_t it = 0; it < 25; ++it) {
        const size_t offset = t * 97 + it * 31;
        const std::vector<ContextRef> batch_refs = slice(offset, 192);
        ServeOptions options;
        options.lane = QosLane::kBulk;
        options.deadline = Deadline::After(std::chrono::milliseconds(4));
        check_batch(
            engine.RecommendMany(std::span<const ContextRef>(batch_refs),
                                 kTopN, options),
            offset, batch_refs.size());
      }
    });
  }
  // Interactive QoS traffic: small batches, shorter deadlines.
  for (size_t t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (size_t it = 0; it < 60; ++it) {
        const size_t offset = t * 53 + it * 11;
        const std::vector<ContextRef> batch_refs = slice(offset, 48);
        ServeOptions options;
        options.lane = QosLane::kInteractive;
        options.deadline = Deadline::After(std::chrono::milliseconds(2));
        check_batch(
            engine.RecommendMany(std::span<const ContextRef>(batch_refs),
                                 kTopN, options),
            offset, batch_refs.size());
      }
    });
  }
  // Legacy deadline-free batches: sheds and deadlines must never touch
  // them — full results every time, from one generation.
  for (size_t t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (size_t it = 0; it < 20; ++it) {
        uint64_t version = 0;
        const std::vector<Recommendation> batch = engine.RecommendMany(
            std::span<const ContextRef>(refs), kTopN, &version);
        if (batch.size() != refs.size() || version < 1 ||
            version > snapshots.size()) {
          violations.fetch_add(1);
          continue;
        }
        for (size_t i = 0; i < batch.size(); ++i) {
          if (!SameRecommendation(expected[version - 1][i], batch[i])) {
            violations.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  // Deadline-aware single queries riding alongside.
  threads.emplace_back([&] {
    for (size_t it = 0; it < 400; ++it) {
      ServeOptions options;
      options.deadline = Deadline::After(std::chrono::milliseconds(1));
      const ServeResult served =
          engine.Recommend(refs[it % refs.size()], kTopN, options);
      if (served.status == StatusCode::kOk) {
        const uint64_t v = served.served_version;
        if (v < 1 || v > snapshots.size() ||
            !SameRecommendation(expected[v - 1][it % refs.size()],
                                served.recommendation)) {
          violations.fetch_add(1);
        }
      } else if (served.status == StatusCode::kDeadlineExceeded) {
        shed_or_expired.fetch_add(1);
      } else {
        violations.fetch_add(1);
      }
    }
  });
  // The publisher, swapping generations under everything above.
  threads.emplace_back([&] {
    for (size_t swap = 0; swap < 200; ++swap) {
      engine.Publish(snapshots[swap % snapshots.size()]);
      std::this_thread::yield();
    }
  });

  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(ok_items.load(), 0u);

  // Counter cross-check: every admitted batch landed in a lane histogram,
  // and the shed counters saw whatever the threads saw.
  const AdmissionStats stats = engine.stats().admission;
  uint64_t histogram_total = 0;
  for (size_t l = 0; l < kNumQosLanes; ++l) {
    const LaneCounters& lane = stats.lanes[l];
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      histogram_total += lane.latency_hist[b];
    }
  }
  const uint64_t admitted =
      stats.lane(QosLane::kInteractive).admitted +
      stats.lane(QosLane::kBulk).admitted;
  EXPECT_EQ(histogram_total, admitted);
  EXPECT_GT(admitted, 0u);
}

}  // namespace
}  // namespace sqp
