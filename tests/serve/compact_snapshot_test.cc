// Equivalence suite for the compact serving snapshot: the CSR/top-K/16-bit
// re-pack must preserve the served rankings (top-N identical to the full
// ModelSnapshot for N <= K), track full-precision scores tightly, shrink
// the footprint by a large factor, and plug into the engine/retrainer
// publish seam unchanged.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/compact_snapshot.h"
#include "serve/recommender_engine.h"
#include "serve/retrainer.h"
#include "serve_test_util.h"

namespace sqp {
namespace {

using serve_test::CollectContexts;
using serve_test::SharedCorpus;

constexpr size_t kVocabularyBound = 1 << 20;

std::shared_ptr<const ModelSnapshot> BuildFull(
    const std::vector<AggregatedSession>& sessions, uint64_t version = 1) {
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = kVocabularyBound;
  MvmmOptions options;
  options.default_max_depth = 5;
  auto built = ModelSnapshot::Build(data, options, version);
  SQP_CHECK(built.ok());
  return built.value();
}

/// The per-binary full snapshot over the base corpus.
const std::shared_ptr<const ModelSnapshot>& SharedFull() {
  static const auto* snapshot = new std::shared_ptr<const ModelSnapshot>(
      BuildFull(SharedCorpus().base));
  return *snapshot;
}

/// Mixed covered/uncovered contexts: base prefixes plus drifted prefixes.
std::vector<std::vector<QueryId>> TestContexts() {
  std::vector<std::vector<QueryId>> contexts =
      CollectContexts(SharedCorpus().base, 600);
  const std::vector<std::vector<QueryId>> drifted =
      CollectContexts(SharedCorpus().drifted, 200);
  contexts.insert(contexts.end(), drifted.begin(), drifted.end());
  return contexts;
}

TEST(CompactSnapshotTest, TopKTruncationPreservesTopNForNUpToK) {
  const auto compact =
      CompactSnapshot::FromSnapshot(*SharedFull(), CompactOptions{.top_k = 10});
  SnapshotScratch scratch;
  size_t covered = 0;
  for (const std::vector<QueryId>& context : TestContexts()) {
    for (const size_t n : {size_t{1}, size_t{5}, size_t{10}}) {
      const Recommendation full = SharedFull()->Recommend(context, n, &scratch);
      const Recommendation packed = compact->Recommend(context, n, &scratch);
      ASSERT_EQ(full.covered, packed.covered);
      ASSERT_EQ(full.matched_length, packed.matched_length);
      ASSERT_EQ(full.queries.size(), packed.queries.size());
      for (size_t i = 0; i < full.queries.size(); ++i) {
        EXPECT_EQ(full.queries[i].query, packed.queries[i].query)
            << "rank " << i << " at top-" << n;
      }
      covered += full.covered ? 1 : 0;
    }
  }
  EXPECT_GT(covered, 0u);
}

TEST(CompactSnapshotTest, QuantizedServingIsBitExactWhenCountsFit16Bits) {
  // Unbounded K isolates quantization from truncation. Every count on this
  // corpus fits 16 bits, so dequantization is exact and the compact ranking
  // arithmetic must reproduce the full snapshot bit-for-bit — scores,
  // order, tie-breaks, everything.
  const auto compact =
      CompactSnapshot::FromSnapshot(*SharedFull(), CompactOptions{.top_k = 0});
  SnapshotScratch scratch;
  size_t compared = 0;
  for (const std::vector<QueryId>& context : TestContexts()) {
    serve_test::ExpectSameRecommendation(
        SharedFull()->Recommend(context, 10, &scratch),
        compact->Recommend(context, 10, &scratch));
    ++compared;
  }
  EXPECT_GT(compared, 100u);
}

TEST(CompactSnapshotTest, WideIdPoolsAndWideMasksServeIdentically) {
  // Query ids beyond 16 bits force the wide id pools, and more than 16
  // components force the 64-bit mask array — the branches the synthetic
  // corpora never reach. Both must serve bit-identically to the full
  // snapshot (all counts fit 16 bits, so the shift is 0).
  const QueryId base = 70000;  // > 65535
  const std::vector<AggregatedSession> sessions = {
      {{base, base + 1, base + 2}, 5},
      {{base + 1, base + 3}, 3},
      {{base, base + 1, base + 3}, 2},
      {{base + 2, base + 1, base + 2}, 4},
      {{base + 3, base, base + 1}, 1}};
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = kVocabularyBound;
  MvmmOptions options;
  for (size_t depth = 1; depth <= 3; ++depth) {
    for (double epsilon : {0.0, 0.01, 0.02, 0.03, 0.04, 0.05}) {
      VmmOptions vmm;
      vmm.epsilon = epsilon;
      vmm.max_depth = depth;
      options.components.push_back(vmm);
    }
  }
  ASSERT_GT(options.components.size(), 16u);  // 18 components -> mask64
  const auto full = ModelSnapshot::Build(data, options, 7).value();
  const auto compact =
      CompactSnapshot::FromSnapshot(*full, CompactOptions{.top_k = 0});

  SnapshotScratch scratch;
  const std::vector<std::vector<QueryId>> contexts = {
      {base},
      {base, base + 1},
      {base + 2, base + 1},
      {base + 3, base, base + 1},
      {base + 500},  // unseen id inside the root index range or beyond
      {base + 1, base + 2}};
  for (const std::vector<QueryId>& context : contexts) {
    serve_test::ExpectSameRecommendation(
        full->Recommend(context, 5, &scratch),
        compact->Recommend(context, 5, &scratch));
    EXPECT_EQ(full->Covers(context), compact->Covers(context));
  }
  EXPECT_EQ(compact->version(), 7u);
}

TEST(CompactSnapshotTest, BlockShiftHandlesCountsBeyond16Bits) {
  // Counts above 65535 force a per-node block shift; ranking order must
  // survive and dequantized probabilities stay within one code step.
  const std::vector<AggregatedSession> sessions = {
      {{1, 2}, 200001}, {{1, 3}, 70003}, {{1, 4}, 5}, {{1, 5}, 1}};
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = 64;
  MvmmOptions options;
  options.default_max_depth = 3;
  const auto full = ModelSnapshot::Build(data, options, 1).value();
  const auto compact =
      CompactSnapshot::FromSnapshot(*full, CompactOptions{.top_k = 0});

  SnapshotScratch scratch;
  const std::vector<QueryId> context = {1};
  const Recommendation exact = full->Recommend(context, 4, &scratch);
  const Recommendation packed = compact->Recommend(context, 4, &scratch);
  ASSERT_EQ(exact.queries.size(), packed.queries.size());
  for (size_t i = 0; i < exact.queries.size(); ++i) {
    EXPECT_EQ(exact.queries[i].query, packed.queries[i].query) << "rank " << i;
    // One code step of the shifted scale, relative to the node total.
    EXPECT_NEAR(packed.queries[i].score, exact.queries[i].score,
                exact.queries[i].score * (1.0 / 65535.0) + 1e-4);
  }
}

TEST(CompactSnapshotTest, CoversMatchesFullSnapshot) {
  const auto compact =
      CompactSnapshot::FromSnapshot(*SharedFull(), CompactOptions{.top_k = 8});
  for (const std::vector<QueryId>& context : TestContexts()) {
    EXPECT_EQ(SharedFull()->Covers(context), compact->Covers(context));
  }
  EXPECT_FALSE(compact->Covers({}));
}

TEST(CompactSnapshotTest, FootprintShrinksSeveralFold) {
  const auto compact = CompactSnapshot::FromSnapshot(
      *SharedFull(), CompactOptions{.top_k = 10});
  const ModelStats full = SharedFull()->Stats();
  const ModelStats packed = compact->Stats();
  EXPECT_EQ(packed.num_states, full.num_states);
  EXPECT_LE(packed.num_entries, full.num_entries);
  // The acceptance bar on the (larger) default bench corpus is >= 4x; the
  // small test corpus must already clear it comfortably.
  EXPECT_GE(static_cast<double>(full.memory_bytes),
            4.0 * static_cast<double>(packed.memory_bytes))
      << "full " << full.memory_bytes << "B vs compact "
      << packed.memory_bytes << "B";
  // Version and metadata carry over.
  EXPECT_EQ(compact->version(), SharedFull()->version());
  EXPECT_EQ(compact->sigmas(), SharedFull()->sigmas());
}

TEST(CompactSnapshotTest, UnboundedKKeepsEveryServedEntry) {
  // top_k = 0 keeps every entry serving can read: everything except the
  // root's prior distribution (ranking levels are non-root path nodes).
  const auto compact =
      CompactSnapshot::FromSnapshot(*SharedFull(), CompactOptions{.top_k = 0});
  EXPECT_EQ(compact->num_entries(),
            SharedFull()->Stats().num_entries -
                SharedFull()->pst()->root().nexts.size());
}

TEST(CompactSnapshotTest, EnginePublishesEitherVariantThroughOneSeam) {
  const auto compact =
      CompactSnapshot::FromSnapshot(*SharedFull(), CompactOptions{.top_k = 10});
  RecommenderEngine engine(EngineOptions{.num_threads = 1});

  engine.Publish(SharedFull());
  const std::vector<std::vector<QueryId>> contexts =
      CollectContexts(SharedCorpus().base, 32);
  SnapshotScratch scratch;
  for (const std::vector<QueryId>& context : contexts) {
    serve_test::ExpectSameRecommendation(
        SharedFull()->Recommend(context, 5, &scratch),
        engine.Recommend(context, 5));
  }

  engine.Publish(compact);  // hot swap full -> compact, readers unchanged
  EXPECT_EQ(engine.CurrentSnapshot().get(), compact.get());
  for (const std::vector<QueryId>& context : contexts) {
    serve_test::ExpectSameRecommendation(
        compact->Recommend(context, 5, &scratch),
        engine.Recommend(context, 5));
  }
}

TEST(CompactSnapshotTest, RetrainerPublishesCompactRebuilds) {
  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  RetrainerOptions options;
  options.model.default_max_depth = 5;
  options.vocabulary_size = kVocabularyBound;
  options.publish_compact = true;
  options.compact.top_k = 10;
  Retrainer retrainer(&engine, options);
  ASSERT_TRUE(retrainer.Bootstrap(SharedCorpus().base).ok());

  // The published serving state is the compact variant of the bootstrap
  // model: identical rankings to the full reference, compact type/footprint.
  const auto published = std::dynamic_pointer_cast<const CompactSnapshot>(
      engine.CurrentSnapshot());
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(published->version(), 1u);
  SnapshotScratch scratch;
  for (const std::vector<QueryId>& context :
       CollectContexts(SharedCorpus().base, 64)) {
    const Recommendation full =
        SharedFull()->Recommend(context, 5, &scratch);
    const Recommendation served = engine.Recommend(context, 5);
    ASSERT_EQ(full.covered, served.covered);
    ASSERT_EQ(full.queries.size(), served.queries.size());
    for (size_t i = 0; i < full.queries.size(); ++i) {
      EXPECT_EQ(full.queries[i].query, served.queries[i].query);
    }
  }

  // A retrain cycle publishes the next compact generation.
  retrainer.AppendSessions(SharedCorpus().drifted);
  ASSERT_TRUE(retrainer.RetrainOnce().ok());
  EXPECT_EQ(engine.current_version(), 2u);
  EXPECT_NE(std::dynamic_pointer_cast<const CompactSnapshot>(
                engine.CurrentSnapshot()),
            nullptr);
}

}  // namespace
}  // namespace sqp
