// The exploration-aware reranker (serve/explorer). Load-bearing
// properties: disabled exploration (policy none, epsilon 0) NEVER touches
// a served list — same order, same score bits — because the epsilon=0
// serving path must stay bit-identical to a build without the explorer;
// reranking is a pure function of (seed, record id, list) so logged
// streams replay exactly; and every policy's propensities are a true pmf
// over the list (they are what makes the feedback log IPS-evaluatable).

#include "serve/explorer.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace sqp {
namespace {

std::vector<ScoredQuery> FiveItems() {
  return {{10, 0.40}, {11, 0.25}, {12, 0.20}, {13, 0.10}, {14, 0.05}};
}

double SumOf(const std::vector<double>& values) {
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum;
}

TEST(ExplorerSpecTest, ParsesEveryPolicySpelling) {
  auto spec = ParseExplorerSpec("none");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->policy, ExplorePolicy::kNone);

  spec = ParseExplorerSpec("epsilon:0.1");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->policy, ExplorePolicy::kEpsilonGreedy);
  EXPECT_DOUBLE_EQ(spec->param, 0.1);

  spec = ParseExplorerSpec("epsilon_greedy:0.5", /*seed=*/99);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->policy, ExplorePolicy::kEpsilonGreedy);
  EXPECT_EQ(spec->seed, 99u);

  spec = ParseExplorerSpec("softmax:8");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->policy, ExplorePolicy::kSoftmax);
  EXPECT_DOUBLE_EQ(spec->param, 8.0);

  spec = ParseExplorerSpec("bag:4");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->policy, ExplorePolicy::kBag);
  EXPECT_DOUBLE_EQ(spec->param, 4.0);
}

TEST(ExplorerSpecTest, RejectsMalformedAndOutOfDomainSpecs) {
  EXPECT_EQ(ParseExplorerSpec("thompson:1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseExplorerSpec("epsilon").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseExplorerSpec("epsilon:").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseExplorerSpec("epsilon:0.1x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseExplorerSpec("epsilon:1.5").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ParseExplorerSpec("epsilon:-0.1").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ParseExplorerSpec("softmax:-1").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ParseExplorerSpec("bag:0").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ParseExplorerSpec("bag:65").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ParseExplorerSpec("bag:2.5").status().code(),
            StatusCode::kOutOfRange);
}

TEST(ExplorerTest, DisabledPoliciesNeverTouchTheListBitForBit) {
  for (const ExplorerOptions options :
       {ExplorerOptions{.policy = ExplorePolicy::kNone},
        ExplorerOptions{.policy = ExplorePolicy::kEpsilonGreedy,
                        .param = 0.0}}) {
    const Explorer explorer(options);
    EXPECT_FALSE(explorer.enabled());
    const std::vector<ScoredQuery> original = FiveItems();
    for (uint64_t record_id = 1; record_id <= 200; ++record_id) {
      std::vector<ScoredQuery> list = original;
      std::vector<double> propensities;
      explorer.Rerank(record_id, &list, &propensities);
      ASSERT_EQ(list.size(), original.size());
      for (size_t i = 0; i < list.size(); ++i) {
        EXPECT_EQ(list[i].query, original[i].query);
        // Bit-identity, not approximate equality: the epsilon=0 serving
        // invariant is about score *bits*.
        EXPECT_EQ(std::bit_cast<uint64_t>(list[i].score),
                  std::bit_cast<uint64_t>(original[i].score));
      }
      ASSERT_EQ(propensities.size(), list.size());
      EXPECT_EQ(propensities[0], 1.0);
      for (size_t i = 1; i < propensities.size(); ++i) {
        EXPECT_EQ(propensities[i], 0.0);
      }
    }
  }
}

TEST(ExplorerTest, RerankIsDeterministicPerRecordIdAndVariesAcrossIds) {
  const Explorer explorer(
      {.policy = ExplorePolicy::kEpsilonGreedy, .param = 0.8, .seed = 42});
  ASSERT_TRUE(explorer.enabled());

  bool any_perturbed = false;
  for (uint64_t record_id = 1; record_id <= 100; ++record_id) {
    std::vector<ScoredQuery> a = FiveItems();
    std::vector<ScoredQuery> b = FiveItems();
    std::vector<double> pa, pb;
    explorer.Rerank(record_id, &a, &pa);
    explorer.Rerank(record_id, &b, &pb);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].query, b[i].query) << "record " << record_id;
      EXPECT_EQ(a[i].score, b[i].score);
      EXPECT_EQ(pa[i], pb[i]);
    }
    if (a[0].query != FiveItems()[0].query) any_perturbed = true;
  }
  // epsilon 0.8 over 100 records: the greedy arm cannot have won every
  // draw.
  EXPECT_TRUE(any_perturbed);
}

TEST(ExplorerTest, RerankIsASwapAndScoresTravelWithTheirItems) {
  const Explorer explorer(
      {.policy = ExplorePolicy::kSoftmax, .param = 2.0, .seed = 7});
  const std::vector<ScoredQuery> original = FiveItems();
  std::map<QueryId, double> score_of;
  for (const ScoredQuery& sq : original) score_of[sq.query] = sq.score;

  for (uint64_t record_id = 1; record_id <= 300; ++record_id) {
    std::vector<ScoredQuery> list = original;
    std::vector<double> propensities;
    explorer.Rerank(record_id, &list, &propensities);
    ASSERT_EQ(list.size(), original.size());
    ASSERT_EQ(propensities.size(), original.size());
    // VW cb_sample semantics: the winner is SWAPPED to slot 1; every
    // other slot is untouched, and every item keeps its model score.
    size_t diffs = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      EXPECT_EQ(list[i].score, score_of.at(list[i].query));
      if (list[i].query != original[i].query) ++diffs;
    }
    EXPECT_TRUE(diffs == 0 || diffs == 2) << "not a single swap";
    EXPECT_NEAR(SumOf(propensities), 1.0, 1e-12);
  }
}

TEST(ExplorerTest, EpsilonGreedyPmfMatchesTheClosedForm) {
  const Explorer explorer(
      {.policy = ExplorePolicy::kEpsilonGreedy, .param = 0.2, .seed = 1});
  std::vector<double> pmf;
  explorer.SlotOnePmf(FiveItems(), &pmf);
  ASSERT_EQ(pmf.size(), 5u);
  // epsilon/k on everyone plus (1 - epsilon) on the greedy arm.
  EXPECT_NEAR(pmf[0], 0.8 + 0.2 / 5, 1e-12);
  for (size_t i = 1; i < 5; ++i) EXPECT_NEAR(pmf[i], 0.2 / 5, 1e-12);

  // Empirical slot-1 frequencies converge to the pmf.
  std::map<QueryId, int> wins;
  const int kRounds = 20000;
  for (int r = 1; r <= kRounds; ++r) {
    std::vector<ScoredQuery> list = FiveItems();
    std::vector<double> propensities;
    explorer.Rerank(static_cast<uint64_t>(r), &list, &propensities);
    ++wins[list[0].query];
    // The logged propensity of the winner is its pmf mass.
    const size_t winner_index = static_cast<size_t>(
        list[0].query - 10);  // FiveItems ids are 10..14
    EXPECT_NEAR(propensities[0], pmf[winner_index], 1e-12);
  }
  EXPECT_NEAR(static_cast<double>(wins[10]) / kRounds, pmf[0], 0.02);
  EXPECT_NEAR(static_cast<double>(wins[14]) / kRounds, pmf[4], 0.01);
}

TEST(ExplorerTest, SoftmaxPmfIsScoreMonotoneAndLambdaZeroIsUniform) {
  const Explorer uniform(
      {.policy = ExplorePolicy::kSoftmax, .param = 0.0, .seed = 1});
  std::vector<double> pmf;
  uniform.SlotOnePmf(FiveItems(), &pmf);
  for (double p : pmf) EXPECT_NEAR(p, 0.2, 1e-12);

  const Explorer sharp(
      {.policy = ExplorePolicy::kSoftmax, .param = 10.0, .seed = 1});
  sharp.SlotOnePmf(FiveItems(), &pmf);
  EXPECT_NEAR(SumOf(pmf), 1.0, 1e-12);
  for (size_t i = 1; i < pmf.size(); ++i) {
    EXPECT_GT(pmf[i - 1], pmf[i]);  // higher score, more slot-1 mass
  }
  // Closed form for adjacent items: pmf ratio = exp(lambda * score gap).
  EXPECT_NEAR(pmf[0] / pmf[1], std::exp(10.0 * (0.40 - 0.25)), 1e-9);
}

TEST(ExplorerTest, BagPropensitiesAreEmpiricalVoteShares) {
  const Explorer explorer(
      {.policy = ExplorePolicy::kBag, .param = 8.0, .seed = 3});
  ASSERT_TRUE(explorer.enabled());
  for (uint64_t record_id = 1; record_id <= 200; ++record_id) {
    std::vector<ScoredQuery> list = FiveItems();
    std::vector<double> propensities;
    explorer.Rerank(record_id, &list, &propensities);
    EXPECT_NEAR(SumOf(propensities), 1.0, 1e-12);
    // 8 votes: every propensity is a multiple of 1/8, and the winner got
    // at least one vote.
    for (double p : propensities) {
      EXPECT_NEAR(p * 8.0, std::round(p * 8.0), 1e-9);
    }
    EXPECT_GE(propensities[0], 1.0 / 8.0);
  }
}

TEST(ExplorerTest, DegenerateListsAreHandled) {
  const Explorer explorer(
      {.policy = ExplorePolicy::kEpsilonGreedy, .param = 0.5, .seed = 1});
  std::vector<ScoredQuery> empty;
  std::vector<double> propensities;
  explorer.Rerank(1, &empty, &propensities);
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(propensities.empty());

  std::vector<ScoredQuery> one = {{10, 0.4}};
  explorer.Rerank(1, &one, &propensities);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].query, 10u);
  ASSERT_EQ(propensities.size(), 1u);
  EXPECT_EQ(propensities[0], 1.0);
}

}  // namespace
}  // namespace sqp
