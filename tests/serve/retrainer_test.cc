// The streaming retrain/swap engine. The load-bearing property: appending a
// drifted log slice and completing one retrain cycle must yield a snapshot
// equivalent to a from-scratch MvmmModel::Train on the concatenated corpus
// — the incremental counting path (ContextIndex::Append) and the shared
// rebuild consume the same canonical entries either way.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/mvmm_model.h"
#include "serve/recommender_engine.h"
#include "serve/retrainer.h"
#include "serve_test_util.h"

namespace sqp {
namespace {

using serve_test::CollectContexts;
using serve_test::ExpectSameRecommendation;
using serve_test::SharedCorpus;

constexpr size_t kVocabularyBound = 1 << 20;

RetrainerOptions TestOptions() {
  RetrainerOptions options;
  options.model.default_max_depth = 5;
  options.vocabulary_size = kVocabularyBound;
  return options;
}

TEST(RetrainerTest, BootstrapPublishesVersionOneEquivalentToTrain) {
  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  Retrainer retrainer(&engine, TestOptions());
  ASSERT_TRUE(retrainer.Bootstrap(SharedCorpus().base).ok());
  EXPECT_EQ(retrainer.published_version(), 1u);
  EXPECT_EQ(engine.current_version(), 1u);
  EXPECT_EQ(retrainer.corpus_size(), SharedCorpus().base.size());

  MvmmOptions model_options;
  model_options.default_max_depth = 5;
  MvmmModel reference(model_options);
  TrainingData data;
  data.sessions = &SharedCorpus().base;
  data.vocabulary_size = kVocabularyBound;
  ASSERT_TRUE(reference.Train(data).ok());

  for (const std::vector<QueryId>& context :
       CollectContexts(SharedCorpus().base, 200)) {
    ExpectSameRecommendation(reference.Recommend(context, 5),
                             engine.Recommend(context, 5));
  }
}

TEST(RetrainerTest, RetrainEquivalentToFromScratchOnConcatenatedCorpus) {
  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  RetrainerOptions options = TestOptions();
  options.count_workers = 4;  // incremental counting may be sharded too
  Retrainer retrainer(&engine, options);
  ASSERT_TRUE(retrainer.Bootstrap(SharedCorpus().base).ok());

  retrainer.AppendSessions(SharedCorpus().drifted);
  EXPECT_EQ(retrainer.pending_sessions(), SharedCorpus().drifted.size());
  ASSERT_TRUE(retrainer.RetrainOnce().ok());
  EXPECT_EQ(retrainer.pending_sessions(), 0u);
  EXPECT_EQ(retrainer.published_version(), 2u);
  EXPECT_EQ(engine.current_version(), 2u);
  EXPECT_EQ(retrainer.corpus_size(),
            SharedCorpus().base.size() + SharedCorpus().drifted.size());

  // From-scratch reference on the concatenation, same options.
  std::vector<AggregatedSession> concatenated = SharedCorpus().base;
  concatenated.insert(concatenated.end(), SharedCorpus().drifted.begin(),
                      SharedCorpus().drifted.end());
  MvmmOptions model_options;
  model_options.default_max_depth = 5;
  MvmmModel reference(model_options);
  TrainingData data;
  data.sessions = &concatenated;
  data.vocabulary_size = kVocabularyBound;
  ASSERT_TRUE(reference.Train(data).ok());

  const std::shared_ptr<const ModelSnapshot> published =
      std::dynamic_pointer_cast<const ModelSnapshot>(engine.CurrentSnapshot());
  ASSERT_NE(published, nullptr);

  // Sigmas and structure must agree exactly...
  ASSERT_EQ(published->sigmas().size(), reference.sigmas().size());
  for (size_t i = 0; i < published->sigmas().size(); ++i) {
    EXPECT_DOUBLE_EQ(published->sigmas()[i], reference.sigmas()[i]);
  }
  EXPECT_EQ(published->Stats().num_states, reference.Stats().num_states);
  EXPECT_EQ(published->Stats().num_entries, reference.Stats().num_entries);

  // ...and so must the served recommendations, on both stale and drifted
  // contexts (the drifted slice is what the retrain absorbed).
  size_t covered = 0;
  for (const std::vector<QueryId>& context :
       CollectContexts(concatenated, 250)) {
    const Recommendation expected = reference.Recommend(context, 5);
    ExpectSameRecommendation(expected, engine.Recommend(context, 5));
    covered += expected.covered ? 1 : 0;
  }
  for (const std::vector<QueryId>& context :
       CollectContexts(SharedCorpus().drifted, 150)) {
    ExpectSameRecommendation(reference.Recommend(context, 5),
                             engine.Recommend(context, 5));
  }
  EXPECT_GT(covered, 0u);
}

TEST(RetrainerTest, RetrainOnceWithoutPendingIsANoop) {
  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  Retrainer retrainer(&engine, TestOptions());
  ASSERT_TRUE(retrainer.Bootstrap(SharedCorpus().base).ok());
  const std::shared_ptr<const ServingSnapshot> before =
      engine.CurrentSnapshot();
  ASSERT_TRUE(retrainer.RetrainOnce().ok());
  EXPECT_EQ(retrainer.published_version(), 1u);
  EXPECT_EQ(engine.CurrentSnapshot().get(), before.get());
}

TEST(RetrainerTest, LifecycleErrorsAreReported) {
  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  Retrainer retrainer(&engine, TestOptions());
  EXPECT_FALSE(retrainer.RetrainOnce().ok());  // before Bootstrap
  EXPECT_FALSE(retrainer.Bootstrap({}).ok());  // empty corpus
  ASSERT_TRUE(retrainer.Bootstrap(SharedCorpus().base).ok());
  EXPECT_FALSE(retrainer.Bootstrap(SharedCorpus().base).ok());  // twice
}

TEST(RetrainerTest, PersistFailuresRetryWithBackoffThenRecover) {
  // A persist path whose parent directory does not exist: every Save
  // attempt fails (the atomic tmp file cannot even be opened) — the
  // injection point for "disk is broken, then comes back".
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("sqp_retrainer_persist_" + std::to_string(::getpid()));
  std::filesystem::create_directories(root);
  const std::filesystem::path missing_dir = root / "missing";
  const std::string persist_path = (missing_dir / "model.blob").string();

  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  RetrainerOptions options = TestOptions();
  options.persist_path = persist_path;
  options.persist_max_retries = 2;
  options.persist_retry_backoff = std::chrono::milliseconds(1);
  Retrainer retrainer(&engine, options);

  // Bootstrap: the rebuild publishes (serving goes live), the persist
  // exhausts its retries and the failure is surfaced — not swallowed.
  const Status boot = retrainer.Bootstrap(SharedCorpus().base);
  EXPECT_FALSE(boot.ok());
  EXPECT_EQ(retrainer.published_version(), 1u);
  EXPECT_EQ(engine.current_version(), 1u);
  EXPECT_FALSE(retrainer.last_status().ok());

  RetrainerStats stats = retrainer.stats();
  EXPECT_EQ(stats.rebuilds, 1u);
  EXPECT_EQ(stats.persist_retries, 2u);  // persist_max_retries extra tries
  EXPECT_EQ(stats.persist_failures, 1u);
  EXPECT_EQ(stats.retrain_failures, 0u);

  // The disk "recovers": the next cycle persists first try and the
  // blob cold-boots a replica at the new version.
  std::filesystem::create_directories(missing_dir);
  retrainer.AppendSessions(SharedCorpus().drifted);
  ASSERT_TRUE(retrainer.RetrainOnce().ok());
  EXPECT_TRUE(retrainer.last_status().ok());
  EXPECT_EQ(retrainer.published_version(), 2u);

  stats = retrainer.stats();
  EXPECT_EQ(stats.rebuilds, 2u);
  EXPECT_EQ(stats.persist_retries, 2u);   // unchanged: no new failures
  EXPECT_EQ(stats.persist_failures, 1u);
  EXPECT_EQ(stats.retrain_failures, 0u);

  RecommenderEngine replica(EngineOptions{.num_threads = 1});
  ASSERT_TRUE(replica.LoadAndPublish(persist_path).ok());
  EXPECT_EQ(replica.current_version(), 2u);

  std::error_code ec;
  std::filesystem::remove_all(root, ec);
}

TEST(RetrainerTest, AfterPersistHookSeesNewVersionAcrossRetriedPersist) {
  // Regression: the after_persist hook used to fire before the caller
  // advanced published_version(), so a hook re-pinning a manifest (the
  // ShardedRetrainerSet wiring) recorded the PREVIOUS version. The hook
  // must fire exactly once per successful persist, only after the blob
  // exists, and observe the version the persisted blob carries — even
  // when the persist only succeeds on a backoff retry mid-republish.
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("sqp_retrainer_hook_" + std::to_string(::getpid()));
  const std::filesystem::path blob_dir = root / "blobs";
  std::filesystem::create_directories(blob_dir);
  const std::string persist_path = (blob_dir / "model.blob").string();

  std::atomic<uint64_t> hook_fires{0};
  std::atomic<uint64_t> hook_version{0};
  std::atomic<bool> hook_saw_blob{false};

  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  RetrainerOptions options = TestOptions();
  options.persist_path = persist_path;
  options.persist_max_retries = 20;
  options.persist_retry_backoff = std::chrono::milliseconds(5);
  Retrainer* observed = nullptr;
  options.after_persist = [&] {
    hook_fires.fetch_add(1);
    hook_version.store(observed->published_version());
    hook_saw_blob.store(std::filesystem::exists(persist_path));
  };
  Retrainer hooked(&engine, options);
  observed = &hooked;

  ASSERT_TRUE(hooked.Bootstrap(SharedCorpus().base).ok());
  EXPECT_EQ(hook_fires.load(), 1u);
  EXPECT_EQ(hook_version.load(), 1u);
  EXPECT_TRUE(hook_saw_blob.load());

  // Break the disk mid-republish: the retrain publishes version 2, the
  // persist fails and backs off until the directory reappears.
  hooked.AppendSessions(SharedCorpus().drifted);
  std::filesystem::remove_all(blob_dir);
  std::thread heal([&] {
    // Wait for the first failed attempt (persist_retries moves before the
    // backoff sleep), then bring the disk back so a retry succeeds.
    while (hooked.stats().persist_retries == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::filesystem::create_directories(blob_dir);
  });
  ASSERT_TRUE(hooked.RetrainOnce().ok());
  heal.join();

  EXPECT_GE(hooked.stats().persist_retries, 1u);
  EXPECT_EQ(hooked.stats().persist_failures, 0u);
  EXPECT_EQ(hook_fires.load(), 2u);  // once per successful persist
  EXPECT_EQ(hook_version.load(), 2u);  // the version the blob carries
  EXPECT_TRUE(hook_saw_blob.load());

  RecommenderEngine replica(EngineOptions{.num_threads = 1});
  ASSERT_TRUE(replica.LoadAndPublish(persist_path).ok());
  EXPECT_EQ(replica.current_version(), 2u);

  std::error_code ec;
  std::filesystem::remove_all(root, ec);
}

TEST(RetrainerTest, BackgroundWorkerRetrainsAppendedSessions) {
  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  RetrainerOptions options = TestOptions();
  options.poll_interval = std::chrono::milliseconds(5);
  Retrainer retrainer(&engine, options);
  ASSERT_TRUE(retrainer.Bootstrap(SharedCorpus().base).ok());

  retrainer.Start();
  EXPECT_TRUE(retrainer.running());
  retrainer.AppendSessions(SharedCorpus().drifted);
  retrainer.WaitForVersionAtLeast(2);
  // Serving keeps answering while (and after) the background cycle runs.
  const std::vector<QueryId> context =
      CollectContexts(SharedCorpus().base, 1)[0];
  uint64_t version = 0;
  engine.Recommend(context, 5, &version);
  EXPECT_GE(version, 1u);
  retrainer.Stop();
  EXPECT_FALSE(retrainer.running());

  EXPECT_GE(retrainer.published_version(), 2u);
  EXPECT_TRUE(retrainer.last_status().ok());
  EXPECT_EQ(engine.current_version(), retrainer.published_version());
}

}  // namespace
}  // namespace sqp
