// AdmissionQueue unit tests: grant/priority/FIFO order, shed-on-arrival
// (expired and EWMA-unmeetable deadlines), shed-on-overflow, expiry while
// queued, EWMA updates, and the degrade ladder. Threads are used only
// where a waiter must actually wait; every ordering the tests assert is
// forced by explicit holder/release sequencing, not timing luck.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/admission_queue.h"

namespace sqp {
namespace {

using std::chrono::milliseconds;

Deadline FarDeadline() { return Deadline::After(std::chrono::seconds(30)); }

/// Spin until `queue` shows `jobs` waiters in `lane` (the enqueue happens
/// on another thread; Admit holds no lock while its waiter blocks).
void AwaitWaiters(const AdmissionQueue& queue, QosLane lane, size_t jobs) {
  while (queue.waiting_jobs(lane) < jobs) {
    std::this_thread::yield();
  }
}

TEST(AdmissionQueueTest, GrantsImmediatelyWhenIdle) {
  AdmissionQueue queue;
  ASSERT_TRUE(queue.Admit(QosLane::kInteractive, FarDeadline(), 10).ok());
  queue.Release(10, 5.0);
  ASSERT_TRUE(queue.Admit(QosLane::kBulk, Deadline::None(), 10).ok());
  queue.Release(10, 5.0);
}

TEST(AdmissionQueueTest, ShedsOnArrivalWhenDeadlineAlreadyExpired) {
  AdmissionQueue queue;
  const Deadline expired =
      Deadline::At(Deadline::Clock::now() - milliseconds(1));
  const Status status = queue.Admit(QosLane::kInteractive, expired, 1);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(queue.stats().lane(QosLane::kInteractive).shed_deadline, 1u);
  // The slot was never taken; a live request still gets in.
  ASSERT_TRUE(queue.Admit(QosLane::kInteractive, FarDeadline(), 1).ok());
  queue.Release(1, 1.0);
}

TEST(AdmissionQueueTest, ShedsOnArrivalWhenEstimateOverrunsDeadline) {
  AdmissionOptions options;
  options.initial_service_us_per_item = 1e6;  // 1 s per item
  AdmissionQueue queue(options);
  // 100 items at 1 s each cannot finish within 10 ms.
  const Status status =
      queue.Admit(QosLane::kBulk, Deadline::After(milliseconds(10)), 100);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(queue.stats().lane(QosLane::kBulk).shed_deadline, 1u);
  // The same job with no deadline is admitted regardless of the estimate.
  ASSERT_TRUE(queue.Admit(QosLane::kBulk, Deadline::None(), 100).ok());
  queue.Release(100, 100.0);
}

TEST(AdmissionQueueTest, ShedsOnOverflowButNeverShedsUnboundedJobs) {
  AdmissionOptions options;
  options.bulk_capacity = 1;
  AdmissionQueue queue(options);
  ASSERT_TRUE(queue.Admit(QosLane::kBulk, Deadline::None(), 1).ok());

  // One waiter fills the bulk lane.
  std::thread waiter([&] {
    ASSERT_TRUE(queue.Admit(QosLane::kBulk, FarDeadline(), 1).ok());
    queue.Release(1, 1.0);
  });
  AwaitWaiters(queue, QosLane::kBulk, 1);

  // A deadline-carrying arrival at the full lane is refused...
  const Status overflow = queue.Admit(QosLane::kBulk, FarDeadline(), 1);
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.stats().lane(QosLane::kBulk).shed_queue_full, 1u);

  // ...but an unbounded-deadline one just waits (legacy contract).
  std::thread legacy([&] {
    ASSERT_TRUE(queue.Admit(QosLane::kBulk, Deadline::None(), 1).ok());
    queue.Release(1, 1.0);
  });
  AwaitWaiters(queue, QosLane::kBulk, 2);

  queue.Release(1, 1.0);
  waiter.join();
  legacy.join();
}

TEST(AdmissionQueueTest, ExpiresWhileQueuedWithoutTakingTheSlot) {
  AdmissionQueue queue;
  ASSERT_TRUE(queue.Admit(QosLane::kBulk, Deadline::None(), 1).ok());

  const Status status =
      queue.Admit(QosLane::kInteractive, Deadline::After(milliseconds(20)),
                  1);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(queue.stats().lane(QosLane::kInteractive).expired_in_queue, 1u);
  EXPECT_EQ(queue.waiting_jobs(QosLane::kInteractive), 0u);

  queue.Release(1, 1.0);
  // The expired waiter must not have consumed the freed slot.
  ASSERT_TRUE(queue.Admit(QosLane::kInteractive, FarDeadline(), 1).ok());
  queue.Release(1, 1.0);
}

TEST(AdmissionQueueTest, InteractiveIsGrantedBeforeEarlierBulk) {
  AdmissionQueue queue;
  ASSERT_TRUE(queue.Admit(QosLane::kBulk, Deadline::None(), 1).ok());

  std::atomic<int> order{0};
  int bulk_order = 0;
  int interactive_order = 0;
  std::thread bulk([&] {
    ASSERT_TRUE(queue.Admit(QosLane::kBulk, Deadline::None(), 1).ok());
    bulk_order = order.fetch_add(1) + 1;
    queue.Release(1, 1.0);
  });
  AwaitWaiters(queue, QosLane::kBulk, 1);  // bulk waiter is queued first
  std::thread interactive([&] {
    ASSERT_TRUE(
        queue.Admit(QosLane::kInteractive, Deadline::None(), 1).ok());
    interactive_order = order.fetch_add(1) + 1;
    queue.Release(1, 1.0);
  });
  AwaitWaiters(queue, QosLane::kInteractive, 1);

  queue.Release(1, 1.0);
  bulk.join();
  interactive.join();
  EXPECT_EQ(interactive_order, 1);  // jumped ahead of the earlier bulk job
  EXPECT_EQ(bulk_order, 2);
}

TEST(AdmissionQueueTest, FifoWithinOneLane) {
  AdmissionQueue queue;
  ASSERT_TRUE(queue.Admit(QosLane::kBulk, Deadline::None(), 1).ok());

  std::atomic<int> order{0};
  std::vector<int> granted(3, 0);
  std::vector<std::thread> waiters;
  for (int w = 0; w < 3; ++w) {
    waiters.emplace_back([&, w] {
      ASSERT_TRUE(queue.Admit(QosLane::kBulk, Deadline::None(), 1).ok());
      granted[static_cast<size_t>(w)] = order.fetch_add(1) + 1;
      queue.Release(1, 1.0);
    });
    AwaitWaiters(queue, QosLane::kBulk, static_cast<size_t>(w) + 1);
  }
  queue.Release(1, 1.0);
  for (std::thread& waiter : waiters) waiter.join();
  EXPECT_EQ(granted[0], 1);
  EXPECT_EQ(granted[1], 2);
  EXPECT_EQ(granted[2], 3);
}

TEST(AdmissionQueueTest, ReleaseFeedsTheEwmaEstimate) {
  AdmissionOptions options;
  options.initial_service_us_per_item = 0.5;
  options.ewma_alpha = 0.5;
  AdmissionQueue queue(options);
  ASSERT_TRUE(queue.Admit(QosLane::kBulk, Deadline::None(), 10).ok());
  queue.Release(10, 1000.0);  // 100 us/item observed
  // 0.5 * 100 + 0.5 * 0.5 = 50.25
  EXPECT_NEAR(queue.stats().ewma_service_us_per_item, 50.25, 1e-9);
  // A fully expired job (0 served) must not poison the estimate.
  ASSERT_TRUE(queue.Admit(QosLane::kBulk, Deadline::None(), 10).ok());
  queue.Release(0, 1000.0);
  EXPECT_NEAR(queue.stats().ewma_service_us_per_item, 50.25, 1e-9);
}

TEST(AdmissionQueueTest, DegradeLadderHalvesTopNUnderPressure) {
  AdmissionOptions options;
  options.interactive_capacity = 1;
  options.bulk_capacity = 1;
  options.degrade_pressure = 0.5;  // one waiting job is enough
  options.degrade_min_top_n = 3;
  AdmissionQueue queue(options);

  // Idle: full top_n for everyone.
  EXPECT_EQ(queue.DegradedTopN(10, FarDeadline()), 10u);
  EXPECT_EQ(queue.DegradedTopN(10, Deadline::None()), 10u);

  ASSERT_TRUE(queue.Admit(QosLane::kBulk, Deadline::None(), 1).ok());
  std::thread waiter([&] {
    ASSERT_TRUE(queue.Admit(QosLane::kBulk, Deadline::None(), 1).ok());
    queue.Release(1, 1.0);
  });
  AwaitWaiters(queue, QosLane::kBulk, 1);

  // Under pressure: deadline-carrying requests degrade (floored), the
  // unbounded legacy path never does.
  EXPECT_EQ(queue.DegradedTopN(10, FarDeadline()), 5u);
  EXPECT_EQ(queue.DegradedTopN(5, FarDeadline()), 3u);
  EXPECT_EQ(queue.DegradedTopN(3, FarDeadline()), 3u);
  EXPECT_EQ(queue.DegradedTopN(10, Deadline::None()), 10u);

  queue.Release(1, 1.0);
  waiter.join();
}

TEST(AdmissionQueueTest, LatencyBucketsAreLogarithmic) {
  EXPECT_EQ(LatencyBucket(0.0), 0u);
  EXPECT_EQ(LatencyBucket(0.7), 0u);
  EXPECT_EQ(LatencyBucket(1.5), 1u);
  EXPECT_EQ(LatencyBucket(3.0), 2u);
  EXPECT_EQ(LatencyBucket(1000.0), 10u);
  EXPECT_EQ(LatencyBucket(1e12), kLatencyBuckets - 1);
}

TEST(AdmissionQueueTest, StatsMergeSumsLanes) {
  AdmissionQueue a;
  AdmissionQueue b;
  a.RecordServed(QosLane::kInteractive, 10.0, true, 2);
  b.RecordServed(QosLane::kInteractive, 10.0, false, 0);
  b.CountShed(QosLane::kBulk, StatusCode::kDeadlineExceeded);
  AdmissionStats merged = a.stats();
  merged.MergeFrom(b.stats());
  EXPECT_EQ(merged.lane(QosLane::kInteractive).admitted, 2u);
  EXPECT_EQ(merged.lane(QosLane::kInteractive).degraded, 1u);
  EXPECT_EQ(merged.lane(QosLane::kInteractive).expired_items, 2u);
  EXPECT_EQ(merged.lane(QosLane::kBulk).shed_deadline, 1u);
  EXPECT_EQ(merged.lane(QosLane::kBulk).shed_total(), 1u);
}

}  // namespace
}  // namespace sqp
