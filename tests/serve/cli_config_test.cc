// Argument-validation contract of recommender_cli (serve/cli_config): a
// flag that would be silently ignored is an explicit error naming the
// flag, never a silent default.

#include "serve/cli_config.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sqp {
namespace {

Result<RecommenderCliConfig> Parse(std::vector<std::string> args) {
  return ParseRecommenderCliArgs(args);
}

TEST(CliConfigTest, DefaultsAndBasicFlags) {
  const auto config = Parse({});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->threads, 1u);
  EXPECT_EQ(config->batch, 1u);
  EXPECT_EQ(config->shards, 1u);
  EXPECT_FALSE(config->tail);
  EXPECT_FALSE(config->compact);

  const auto parsed = Parse({"--threads", "8", "--batch", "64", "--shards",
                             "4", "--tail", "--compact"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->threads, 8u);
  EXPECT_EQ(parsed->batch, 64u);
  EXPECT_EQ(parsed->shards, 4u);
  EXPECT_TRUE(parsed->tail);
  EXPECT_TRUE(parsed->compact);
}

TEST(CliConfigTest, LaterFlagsOverrideEarlierOnes) {
  const auto parsed = Parse({"--threads", "2", "--threads", "6"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->threads, 6u);
}

TEST(CliConfigTest, UnknownFlagsAndBadCountsAreNamedInTheError) {
  auto bad = Parse({"--frobnicate"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("--frobnicate"), std::string::npos);

  bad = Parse({"--threads"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("--threads"), std::string::npos);

  for (const std::string value : {"0", "-3", "65", "abc", "4x"}) {
    bad = Parse({"--threads", value});
    ASSERT_FALSE(bad.ok()) << value;
    EXPECT_NE(bad.status().message().find("--threads"), std::string::npos);
    EXPECT_NE(bad.status().message().find(value), std::string::npos);
  }
  EXPECT_FALSE(Parse({"--shards", "4097"}).ok());
  EXPECT_FALSE(Parse({"--batch", "65537"}).ok());
}

TEST(CliConfigTest, LoadSnapshotRejectsIgnoredFlags) {
  // Each invalid combination must produce an error that names the
  // conflicting flag — the "clear error, not a silent default" contract.
  const struct {
    std::vector<std::string> args;
    std::string must_mention;
  } cases[] = {
      {{"--load-snapshot", "x.blob", "--tail"}, "--tail"},
      {{"--load-snapshot", "x.blob", "--save-snapshot", "y.blob"},
       "--save-snapshot"},
      {{"--load-snapshot", "x.blob", "--compact"}, "--compact"},
      {{"--load-snapshot", "x.manifest", "--shards", "2"}, "--shards"},
  };
  for (const auto& test : cases) {
    const auto parsed = Parse(test.args);
    ASSERT_FALSE(parsed.ok()) << test.must_mention;
    EXPECT_NE(parsed.status().message().find(test.must_mention),
              std::string::npos)
        << parsed.status().message();
  }
}

TEST(CliConfigTest, DeadlineAndLaneFlags) {
  // Defaults: unbounded budget, interactive lane.
  const auto defaults = Parse({});
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults->deadline_us, 0u);
  EXPECT_EQ(defaults->lane, QosLane::kInteractive);

  const auto parsed =
      Parse({"--deadline-us", "2500", "--lane", "bulk"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->deadline_us, 2500u);
  EXPECT_EQ(parsed->lane, QosLane::kBulk);

  EXPECT_EQ(Parse({"--lane", "interactive"})->lane, QosLane::kInteractive);

  for (const std::string value : {"0", "-5", "soon", "1000000001"}) {
    const auto bad = Parse({"--deadline-us", value});
    ASSERT_FALSE(bad.ok()) << value;
    EXPECT_NE(bad.status().message().find("--deadline-us"),
              std::string::npos);
  }
  const auto bad_lane = Parse({"--lane", "express"});
  ASSERT_FALSE(bad_lane.ok());
  EXPECT_NE(bad_lane.status().message().find("--lane"), std::string::npos);
  EXPECT_NE(bad_lane.status().message().find("express"), std::string::npos);
}

TEST(CliConfigTest, LoadSnapshotWithServingFlagsIsFine) {
  // --threads and --batch configure serving, which a cold-booted replica
  // still does; they must not be rejected.
  const auto parsed = Parse(
      {"--load-snapshot", "x.manifest", "--threads", "4", "--batch", "32"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->load_snapshot, "x.manifest");
  EXPECT_EQ(parsed->threads, 4u);
}

TEST(CliConfigTest, ServePortParsesAndRequiresLoadSnapshot) {
  const auto parsed =
      Parse({"--load-snapshot", "fleet.manifest", "--serve-port", "7400",
             "--threads", "2"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->serve_port, 7400u);
  EXPECT_EQ(parsed->threads, 2u);

  const auto bare = Parse({"--serve-port", "7400"});
  ASSERT_FALSE(bare.ok());
  EXPECT_NE(bare.status().message().find("--serve-port"), std::string::npos);
  EXPECT_NE(bare.status().message().find("--load-snapshot"),
            std::string::npos);

  EXPECT_FALSE(Parse({"--serve-port", "0"}).ok());
  EXPECT_FALSE(Parse({"--serve-port", "65536"}).ok());
}

TEST(CliConfigTest, ConnectParsesHostPortAndRequiresLoadSnapshot) {
  const auto parsed = Parse(
      {"--load-snapshot", "fleet.manifest", "--connect", "10.0.0.7:7400"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->connect_host, "10.0.0.7");
  EXPECT_EQ(parsed->connect_port, 7400u);

  const auto bare = Parse({"--connect", "localhost:7400"});
  ASSERT_FALSE(bare.ok());
  EXPECT_NE(bare.status().message().find("--connect"), std::string::npos);

  for (const std::string value : {"nohost", ":7400", "host:", "host:0",
                                  "host:65536", "host:abc"}) {
    const auto bad = Parse({"--load-snapshot", "m", "--connect", value});
    ASSERT_FALSE(bad.ok()) << value;
    EXPECT_NE(bad.status().message().find("--connect"), std::string::npos);
  }
}

TEST(CliConfigTest, ServeAndConnectModesRejectIgnoredFlags) {
  const auto both = Parse({"--load-snapshot", "m", "--serve-port", "7400",
                           "--connect", "host:7400"});
  ASSERT_FALSE(both.ok());
  EXPECT_NE(both.status().message().find("mutually exclusive"),
            std::string::npos);

  // A shard server has no stdin loop: client-side batching/QoS flags
  // would be silently ignored.
  for (const std::vector<std::string> extra :
       {std::vector<std::string>{"--batch", "8"},
        std::vector<std::string>{"--deadline-us", "100"},
        std::vector<std::string>{"--lane", "bulk"}}) {
    std::vector<std::string> args = {"--load-snapshot", "m", "--serve-port",
                                     "7400"};
    args.insert(args.end(), extra.begin(), extra.end());
    const auto bad = Parse(args);
    ASSERT_FALSE(bad.ok()) << extra[0];
    EXPECT_NE(bad.status().message().find(extra[0]), std::string::npos)
        << bad.status().message();
  }

  // The router client has no engine lanes.
  const auto threads = Parse({"--load-snapshot", "m", "--connect",
                              "host:7400", "--threads", "4"});
  ASSERT_FALSE(threads.ok());
  EXPECT_NE(threads.status().message().find("--threads"), std::string::npos);

  // Client-side QoS flags DO apply in connect mode.
  const auto ok = Parse({"--load-snapshot", "m", "--connect", "host:7400",
                         "--batch", "16", "--deadline-us", "5000", "--lane",
                         "bulk"});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(CliConfigTest, ClosedLoopFlagsParseAndValidate) {
  const auto parsed =
      Parse({"--feedback-log", "/tmp/fb", "--explore", "epsilon:0.1"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->feedback_log, "/tmp/fb");
  EXPECT_EQ(parsed->explore, "epsilon:0.1");

  // A feedback log without exploration is fine (greedy logging).
  const auto log_only = Parse({"--feedback-log", "/tmp/fb"});
  ASSERT_TRUE(log_only.ok());
  EXPECT_TRUE(log_only->explore.empty());

  // Missing values are named errors.
  auto bad = Parse({"--feedback-log"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("--feedback-log"),
            std::string::npos);
  bad = Parse({"--explore"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("--explore"), std::string::npos);
}

TEST(CliConfigTest, ExploreWithoutFeedbackLogIsRejected) {
  // Exploring without logging propensities would perturb traffic while
  // making it unevaluatable.
  const auto bad = Parse({"--explore", "epsilon:0.1"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("--explore"), std::string::npos);
  EXPECT_NE(bad.status().message().find("--feedback-log"),
            std::string::npos);
}

TEST(CliConfigTest, MalformedExploreSpecsFailAtParseTimeNotServeTime) {
  for (const std::string spec : {"thompson:1", "epsilon:nope",
                                 "epsilon:1.5", "bag:0"}) {
    const auto bad = Parse({"--feedback-log", "/tmp/fb", "--explore", spec});
    ASSERT_FALSE(bad.ok()) << spec;
  }
  // Every valid policy spelling passes.
  for (const std::string spec :
       {"none", "epsilon:0", "epsilon:1", "softmax:8", "bag:4"}) {
    const auto ok = Parse({"--feedback-log", "/tmp/fb", "--explore", spec});
    ASSERT_TRUE(ok.ok()) << spec << ": " << ok.status().ToString();
  }
}

TEST(CliConfigTest, ConnectModeRejectsFeedbackFlags) {
  // A routing client never serves, so it has nothing truthful to log;
  // feedback belongs to the --serve-port side.
  const auto bad = Parse({"--load-snapshot", "m", "--connect", "host:7400",
                          "--feedback-log", "/tmp/fb"});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("--feedback-log"),
            std::string::npos);

  // But a serving fleet CAN log feedback.
  const auto ok = Parse({"--load-snapshot", "m", "--serve-port", "7400",
                         "--feedback-log", "/tmp/fb", "--explore",
                         "softmax:4"});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

}  // namespace
}  // namespace sqp
