// The closed-loop feedback log (serve/feedback): bounded, crash-safe,
// append-only segments. The load-bearing properties: every intact record
// survives a roundtrip byte-exactly; a torn or corrupt tail is detected
// and dropped, never decoded as garbage; rotation keeps the disk
// footprint bounded; a reopened log continues record ids where the
// previous writer stopped; and the committed golden segment pins the
// on-disk byte layout (docs/FEEDBACK.md) against format drift.

#include "serve/feedback.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace sqp {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir()
      : path_(fs::temp_directory_path() /
              ("sqp_feedback_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter_++))) {}
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
  static inline int counter_ = 0;
};

FeedbackRecord MakeImpression(uint64_t record_id,
                              std::vector<QueryId> context,
                              std::vector<ServedItem> served) {
  FeedbackRecord record;
  record.record_id = record_id;
  record.snapshot_version = 7;
  record.policy = ExplorePolicy::kEpsilonGreedy;
  record.policy_param = 0.25;
  record.context = std::move(context);
  record.served = std::move(served);
  return record;
}

std::vector<ServedItem> ThreeItems() {
  return {{10, 0.5, 0.9}, {11, 0.3, 0.05}, {12, 0.2, 0.05}};
}

std::vector<fs::path> SegmentFiles(const std::string& dir) {
  std::vector<fs::path> files;
  if (!fs::exists(dir)) return files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FeedbackLogTest, RoundtripJoinsClicksFirstClickWins) {
  TempDir dir;
  auto log = FeedbackLog::Open({.dir = dir.str()});
  ASSERT_TRUE(log.ok());

  const uint64_t id1 = (*log)->NextRecordId();
  const uint64_t id2 = (*log)->NextRecordId();
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(id2, 2u);
  const FeedbackRecord first = MakeImpression(id1, {1, 2, 3}, ThreeItems());
  const FeedbackRecord second = MakeImpression(id2, {4}, ThreeItems());
  ASSERT_TRUE((*log)->AppendImpression(first).ok());
  ASSERT_TRUE((*log)->AppendImpression(second).ok());
  ASSERT_TRUE((*log)->RecordClick(id1, 2).ok());
  // Duplicate click (a retry): the first click wins, this one is inert.
  ASSERT_TRUE((*log)->RecordClick(id1, 0).ok());
  // Click referencing an impression that was never logged.
  ASSERT_TRUE((*log)->RecordClick(999, 0).ok());
  ASSERT_TRUE((*log)->Flush().ok());

  FeedbackReadReport report;
  const auto records = ReadFeedbackLog(dir.str(), &report);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ(report.impressions, 2u);
  EXPECT_EQ(report.clicks, 3u);
  EXPECT_EQ(report.unmatched_clicks, 1u);
  EXPECT_EQ(report.torn_records, 0u);

  FeedbackRecord want_first = first;
  want_first.clicked_position = 2;
  EXPECT_EQ((*records)[0], want_first);
  FeedbackRecord want_second = second;
  want_second.clicked_position = kFeedbackNoClick;
  EXPECT_EQ((*records)[1], want_second);

  const FeedbackLogStats stats = (*log)->stats();
  EXPECT_EQ(stats.impressions_appended, 2u);
  EXPECT_EQ(stats.clicks_appended, 3u);
  EXPECT_EQ(stats.dropped_appends, 0u);
}

TEST(FeedbackLogTest, MissingDirectoryReadsEmpty) {
  TempDir dir;  // never created on disk
  FeedbackReadReport report;
  const auto records = ReadFeedbackLog(dir.str() + "/nonexistent", &report);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  EXPECT_EQ(report.impressions, 0u);
}

TEST(FeedbackLogTest, TornTailIsDroppedNotDecoded) {
  TempDir dir;
  {
    auto log = FeedbackLog::Open({.dir = dir.str()});
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*log)
                      ->AppendImpression(MakeImpression(
                          (*log)->NextRecordId(), {1, 2}, ThreeItems()))
                      .ok());
    }
    ASSERT_TRUE((*log)->Seal().ok());
  }
  const std::vector<fs::path> files = SegmentFiles(dir.str());
  fs::path sealed;
  for (const fs::path& f : files) {
    if (f.extension() == ".seg") sealed = f;
  }
  ASSERT_FALSE(sealed.empty());

  // Tear the last record: chop 5 bytes off the end (mid-CRC).
  const uintmax_t size = fs::file_size(sealed);
  fs::resize_file(sealed, size - 5);

  FeedbackReadReport report;
  const auto records = ReadFeedbackLog(dir.str(), &report);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);  // the intact prefix survives
  EXPECT_EQ(report.torn_records, 1u);
}

TEST(FeedbackLogTest, CrcCorruptionEndsTheSegmentScan) {
  TempDir dir;
  {
    auto log = FeedbackLog::Open({.dir = dir.str()});
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*log)
                      ->AppendImpression(MakeImpression(
                          (*log)->NextRecordId(), {1, 2}, ThreeItems()))
                      .ok());
    }
    ASSERT_TRUE((*log)->Seal().ok());
  }
  fs::path sealed;
  for (const fs::path& f : SegmentFiles(dir.str())) {
    if (f.extension() == ".seg") sealed = f;
  }
  ASSERT_FALSE(sealed.empty());

  // Flip one byte inside the second record's body. Records are equal-sized
  // here; the first body starts at header(8) + len(4).
  const uintmax_t size = fs::file_size(sealed);
  const uintmax_t record_bytes = (size - 8) / 3;
  {
    std::fstream f(sealed, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(8 + record_bytes + 10));
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(8 + record_bytes + 10));
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xff);
    f.seekp(static_cast<std::streamoff>(8 + record_bytes + 10));
    f.write(&byte, 1);
  }

  FeedbackReadReport report;
  const auto records = ReadFeedbackLog(dir.str(), &report);
  ASSERT_TRUE(records.ok());
  // Only the record before the corruption survives: a CRC failure ends
  // that segment's scan (framing after it cannot be trusted).
  EXPECT_EQ(records->size(), 1u);
  EXPECT_EQ(report.torn_records, 1u);
}

TEST(FeedbackLogTest, RotationSealsSegmentsAndBoundsDiskFootprint) {
  TempDir dir;
  FeedbackLogOptions options;
  options.dir = dir.str();
  options.max_segment_bytes = 256;  // a few records per segment
  options.max_segments = 3;
  auto log = FeedbackLog::Open(options);
  ASSERT_TRUE(log.ok());

  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE((*log)
                    ->AppendImpression(MakeImpression(
                        (*log)->NextRecordId(), {1, 2, 3}, ThreeItems()))
                    .ok());
  }
  const FeedbackLogStats stats = (*log)->stats();
  EXPECT_GT(stats.segments_sealed, 3u);
  EXPECT_GT(stats.segments_deleted, 0u);
  EXPECT_EQ(stats.segments_sealed - stats.segments_deleted, 3u);

  // On disk: at most max_segments sealed + 1 active.
  size_t sealed = 0, open = 0;
  for (const fs::path& f : SegmentFiles(dir.str())) {
    if (f.extension() == ".seg") ++sealed;
    if (f.extension() == ".open") ++open;
  }
  EXPECT_EQ(sealed, 3u);
  EXPECT_EQ(open, 1u);

  // The retained tail is still fully readable.
  const auto records = ReadFeedbackLog(dir.str());
  ASSERT_TRUE(records.ok());
  EXPECT_GT(records->size(), 0u);
  EXPECT_LT(records->size(), 64u);  // oldest segments rotated out
  // Newest records survive; read is sorted by record id.
  EXPECT_EQ(records->back().record_id, 64u);
}

TEST(FeedbackLogTest, ReopenRecoversOpenSegmentAndContinuesRecordIds) {
  TempDir dir;
  {
    auto log = FeedbackLog::Open({.dir = dir.str()});
    ASSERT_TRUE(log.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*log)
                      ->AppendImpression(MakeImpression(
                          (*log)->NextRecordId(), {5, 6}, ThreeItems()))
                      .ok());
    }
    // Destroyed without Seal: the .open segment stays behind.
  }
  {
    std::vector<fs::path> files = SegmentFiles(dir.str());
    ASSERT_EQ(files.size(), 1u);
    EXPECT_EQ(files[0].extension(), ".open");
    // Simulate a crash mid-append: tear the tail of the leftover segment.
    fs::resize_file(files[0], fs::file_size(files[0]) - 3);
  }

  auto reopened = FeedbackLog::Open({.dir = dir.str()});
  ASSERT_TRUE(reopened.ok());
  // Record 4 was torn away with the tail; the valid prefix (ids 1-3) got
  // sealed, and ids continue after the largest *recovered* one.
  EXPECT_EQ((*reopened)->NextRecordId(), 4u);
  ASSERT_TRUE((*reopened)
                  ->AppendImpression(
                      MakeImpression(4, {7}, ThreeItems()))
                  .ok());
  ASSERT_TRUE((*reopened)->Flush().ok());

  FeedbackReadReport report;
  const auto records = ReadFeedbackLog(dir.str(), &report);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 4u);  // 3 recovered + 1 new
  EXPECT_EQ(report.torn_records, 0u);  // the torn tail was truncated away
  EXPECT_EQ((*records)[0].record_id, 1u);
  EXPECT_EQ((*records)[3].record_id, 4u);
}

TEST(FeedbackLogTest, SealIsIdempotentAndEmptySegmentsAreNotSealed) {
  TempDir dir;
  auto log = FeedbackLog::Open({.dir = dir.str()});
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->Seal().ok());  // nothing to seal
  ASSERT_TRUE((*log)->Seal().ok());
  EXPECT_EQ((*log)->stats().segments_sealed, 0u);

  ASSERT_TRUE((*log)
                  ->AppendImpression(MakeImpression(
                      (*log)->NextRecordId(), {1}, ThreeItems()))
                  .ok());
  ASSERT_TRUE((*log)->Seal().ok());
  ASSERT_TRUE((*log)->Seal().ok());  // second seal: empty active, no-op
  EXPECT_EQ((*log)->stats().segments_sealed, 1u);
}

TEST(FeedbackLogTest, SessionsFromFeedbackSkipsUnusableRecords) {
  std::vector<FeedbackRecord> records;
  // Clicked slot 1 -> session {1, 2, 11}.
  records.push_back(MakeImpression(1, {1, 2}, ThreeItems()));
  records.back().clicked_position = 1;
  // No click: contributes nothing.
  records.push_back(MakeImpression(2, {3}, ThreeItems()));
  // Out-of-range click position: contributes nothing.
  records.push_back(MakeImpression(3, {4}, ThreeItems()));
  records.back().clicked_position = 9;
  // Empty context: contributes nothing.
  records.push_back(MakeImpression(4, {}, ThreeItems()));
  records.back().clicked_position = 0;
  // Clicked slot 0 -> session {5, 10}.
  records.push_back(MakeImpression(5, {5}, ThreeItems()));
  records.back().clicked_position = 0;

  const std::vector<AggregatedSession> sessions =
      SessionsFromFeedback(records);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].queries, (std::vector<QueryId>{1, 2, 11}));
  EXPECT_EQ(sessions[0].frequency, 1u);
  EXPECT_EQ(sessions[1].queries, (std::vector<QueryId>{5, 10}));
}

TEST(FeedbackLogTest, RejectsInvalidAppendsAndOptions) {
  EXPECT_EQ(FeedbackLog::Open({.dir = ""}).status().code(),
            StatusCode::kInvalidArgument);
  TempDir dir;
  FeedbackLogOptions options;
  options.dir = dir.str();
  options.max_segments = 0;
  EXPECT_EQ(FeedbackLog::Open(options).status().code(),
            StatusCode::kInvalidArgument);

  auto log = FeedbackLog::Open({.dir = dir.str()});
  ASSERT_TRUE(log.ok());
  FeedbackRecord no_id = MakeImpression(0, {1}, ThreeItems());
  EXPECT_EQ((*log)->AppendImpression(no_id).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*log)->RecordClick(0, 0).code(), StatusCode::kInvalidArgument);
}

/// The committed golden segment: regenerate with
///   SQP_REGEN_GOLDEN=1 ./sqp_serve_tests --gtest_filter='*GoldenSegment*'
/// and commit the new tests/data/golden_feedback_v1.seg ONLY for a
/// deliberate, versioned format change (docs/FEEDBACK.md documents the
/// layout). If this test fails, the writer's byte output drifted — v1
/// readers in the field would stop understanding live logs.
TEST(FeedbackLogTest, GoldenSegmentBytesArePinned) {
  const std::string golden_path =
      std::string(SQP_TEST_DATA_DIR) + "/golden_feedback_v1.seg";

  // A fixed record set with every field exercised: both record types,
  // a duplicate click, non-trivial doubles (exact binary64 values).
  TempDir dir;
  {
    auto log = FeedbackLog::Open({.dir = dir.str()});
    ASSERT_TRUE(log.ok());
    FeedbackRecord first;
    first.record_id = (*log)->NextRecordId();
    first.snapshot_version = 3;
    first.policy = ExplorePolicy::kEpsilonGreedy;
    first.policy_param = 0.125;
    first.context = {17, 42, 99};
    first.served = {{7, 1.5, 0.90625}, {8, 0.75, 0.046875},
                    {9, 0.25, 0.046875}};
    ASSERT_TRUE((*log)->AppendImpression(first).ok());
    FeedbackRecord second;
    second.record_id = (*log)->NextRecordId();
    second.snapshot_version = 3;
    second.policy = ExplorePolicy::kSoftmax;
    second.policy_param = 8.0;
    second.context = {1};
    second.served = {{2, -0.5, 1.0}};
    ASSERT_TRUE((*log)->AppendImpression(second).ok());
    ASSERT_TRUE((*log)->RecordClick(first.record_id, 1).ok());
    ASSERT_TRUE((*log)->RecordClick(first.record_id, 0).ok());
    ASSERT_TRUE((*log)->Seal().ok());
  }
  std::string written_path;
  for (const fs::path& f : SegmentFiles(dir.str())) {
    if (f.extension() == ".seg") written_path = f.string();
  }
  ASSERT_FALSE(written_path.empty());

  const auto read_all = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  if (std::getenv("SQP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
    out << read_all(written_path);
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  ASSERT_TRUE(fs::exists(golden_path))
      << golden_path << " is missing — regenerate with SQP_REGEN_GOLDEN=1";

  // Byte-identical: today's writer must produce exactly the v1 bytes.
  EXPECT_EQ(read_all(written_path), read_all(golden_path))
      << "feedback segment byte layout drifted from the committed v1 "
         "golden — this breaks live-log compatibility";

  // And today's reader must decode the golden bytes into the records
  // above, clicks joined.
  TempDir golden_dir;
  fs::create_directories(golden_dir.path());
  fs::copy_file(golden_path, golden_dir.path() / "feedback.000001.seg");
  const auto records = ReadFeedbackLog(golden_dir.str());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].record_id, 1u);
  EXPECT_EQ((*records)[0].policy, ExplorePolicy::kEpsilonGreedy);
  EXPECT_EQ((*records)[0].policy_param, 0.125);
  EXPECT_EQ((*records)[0].context, (std::vector<QueryId>{17, 42, 99}));
  EXPECT_EQ((*records)[0].clicked_position, 1u);  // first click won
  EXPECT_EQ((*records)[0].served[0].propensity, 0.90625);
  EXPECT_EQ((*records)[1].record_id, 2u);
  EXPECT_EQ((*records)[1].policy, ExplorePolicy::kSoftmax);
  EXPECT_EQ((*records)[1].clicked_position, kFeedbackNoClick);
}

}  // namespace
}  // namespace sqp
