// The serve -> log -> retrain loop end to end. Two hard invariants ride
// on this file:
//  1. A ServeOptions::feedback hook with exploration disabled (no
//     explorer, or epsilon 0) is BIT-identical to serving with no hook at
//     all — same query ids, same score bits — on both engines and both
//     the single and batched paths. The hook appends observations; it may
//     never change the greedy answer.
//  2. Retrainer::ConsumeFeedback(log) publishes the same snapshot as
//     AppendSessions on the equivalent sessions directly — the closed
//     loop trains on exactly what SessionsFromFeedback says it does.

#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/explorer.h"
#include "serve/feedback.h"
#include "serve/recommender_engine.h"
#include "serve/retrainer.h"
#include "serve/sharded_engine.h"
#include "serve_test_util.h"

namespace sqp {
namespace {

namespace fs = std::filesystem;

using serve_test::CollectContexts;
using serve_test::ExpectSameRecommendation;
using serve_test::SameRecommendation;
using serve_test::SharedCorpus;

constexpr size_t kVocabularyBound = 1 << 20;

class TempDir {
 public:
  TempDir()
      : path_(fs::temp_directory_path() /
              ("sqp_closed_loop_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter_++))) {}
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
  static inline int counter_ = 0;
};

RetrainerOptions TestOptions() {
  RetrainerOptions options;
  options.model.default_max_depth = 5;
  options.vocabulary_size = kVocabularyBound;
  return options;
}

/// Exact (bit-level) score compare on top of the id compare.
void ExpectBitIdentical(const Recommendation& expected,
                        const Recommendation& actual) {
  EXPECT_EQ(expected.covered, actual.covered);
  ASSERT_EQ(expected.queries.size(), actual.queries.size());
  for (size_t i = 0; i < expected.queries.size(); ++i) {
    EXPECT_EQ(expected.queries[i].query, actual.queries[i].query);
    EXPECT_EQ(std::bit_cast<uint64_t>(expected.queries[i].score),
              std::bit_cast<uint64_t>(actual.queries[i].score))
        << "score bits differ at rank " << i;
  }
}

TEST(ClosedLoopTest, DisabledHookIsBitIdenticalOnBothEnginesAndPaths) {
  RecommenderEngine engine(EngineOptions{.num_threads = 2});
  Retrainer retrainer(&engine, TestOptions());
  ASSERT_TRUE(retrainer.Bootstrap(SharedCorpus().base).ok());

  ShardedEngine sharded(ShardedEngineOptions{.num_shards = 4});
  ShardedRetrainerSet sharded_retrainers(&sharded, TestOptions());
  ASSERT_TRUE(sharded_retrainers.Bootstrap(SharedCorpus().base).ok());

  TempDir dir;
  auto log = FeedbackLog::Open({.dir = dir.str()});
  ASSERT_TRUE(log.ok());
  // Three disabled spellings: log only (no explorer), explicit kNone,
  // epsilon-greedy at epsilon == 0.
  const Explorer none({.policy = ExplorePolicy::kNone});
  const Explorer eps0(
      {.policy = ExplorePolicy::kEpsilonGreedy, .param = 0.0, .seed = 5});
  FeedbackHook log_only;
  log_only.log = log->get();
  FeedbackHook with_none;
  with_none.log = log->get();
  with_none.explorer = &none;
  FeedbackHook with_eps0;
  with_eps0.log = log->get();
  with_eps0.explorer = &eps0;

  const auto contexts = CollectContexts(SharedCorpus().base, 150);
  for (const std::vector<QueryId>& context : contexts) {
    const ContextRef ref(context.data(), context.size());
    const ServeResult plain = engine.Recommend(ref, 5, ServeOptions{});
    for (const FeedbackHook* hook : {&log_only, &with_none, &with_eps0}) {
      ServeOptions options;
      options.feedback = hook;
      const ServeResult hooked = engine.Recommend(ref, 5, options);
      ASSERT_EQ(hooked.status, plain.status);
      ExpectBitIdentical(plain.recommendation, hooked.recommendation);

      const ServeResult sharded_hooked = sharded.Recommend(ref, 5, options);
      ASSERT_EQ(sharded_hooked.status, plain.status);
      ExpectBitIdentical(plain.recommendation, sharded_hooked.recommendation);
    }
  }

  // The batched path too: one RecommendMany with and without the hook.
  std::vector<ContextRef> refs;
  refs.reserve(contexts.size());
  for (const std::vector<QueryId>& c : contexts) {
    refs.emplace_back(c.data(), c.size());
  }
  const BatchResult plain_batch = engine.RecommendMany(
      std::span<const ContextRef>(refs), 5, ServeOptions{});
  ServeOptions options;
  options.feedback = &with_eps0;
  const BatchResult hooked_batch =
      engine.RecommendMany(std::span<const ContextRef>(refs), 5, options);
  const BatchResult sharded_batch =
      sharded.RecommendMany(std::span<const ContextRef>(refs), 5, options);
  ASSERT_EQ(hooked_batch.results.size(), plain_batch.results.size());
  ASSERT_EQ(sharded_batch.results.size(), plain_batch.results.size());
  for (size_t i = 0; i < plain_batch.results.size(); ++i) {
    ExpectBitIdentical(plain_batch.results[i], hooked_batch.results[i]);
    ExpectBitIdentical(plain_batch.results[i], sharded_batch.results[i]);
  }

  // And the hook really observed the traffic it rode along with.
  EXPECT_GT(log->get()->stats().impressions_appended, 0u);
}

TEST(ClosedLoopTest, HookLogsImpressionsWithGreedyPropensities) {
  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  Retrainer retrainer(&engine, TestOptions());
  ASSERT_TRUE(retrainer.Bootstrap(SharedCorpus().base).ok());

  TempDir dir;
  auto log = FeedbackLog::Open({.dir = dir.str()});
  ASSERT_TRUE(log.ok());
  FeedbackHook hook;
  hook.log = log->get();
  ServeOptions options;
  options.feedback = &hook;

  const auto contexts = CollectContexts(SharedCorpus().base, 20);
  size_t covered = 0;
  std::vector<uint64_t> record_ids;
  for (const std::vector<QueryId>& context : contexts) {
    const ServeResult served =
        engine.Recommend(ContextRef(context.data(), context.size()), 5,
                         options);
    if (served.recommendation.covered &&
        !served.recommendation.queries.empty()) {
      ++covered;
      EXPECT_GT(served.feedback_record_id, 0u);
      record_ids.push_back(served.feedback_record_id);
    } else {
      EXPECT_EQ(served.feedback_record_id, 0u);
    }
  }
  ASSERT_GT(covered, 0u);
  ASSERT_TRUE(log->get()->RecordClick(record_ids[0], 0).ok());
  ASSERT_TRUE(log->get()->Flush().ok());

  const auto records = ReadFeedbackLog(dir.str());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), covered);
  for (const FeedbackRecord& record : *records) {
    EXPECT_EQ(record.policy, ExplorePolicy::kNone);
    EXPECT_EQ(record.snapshot_version, engine.current_version());
    ASSERT_FALSE(record.served.empty());
    // Greedy serving: the slot-1 item was served with certainty.
    EXPECT_EQ(record.served[0].propensity, 1.0);
    for (size_t i = 1; i < record.served.size(); ++i) {
      EXPECT_EQ(record.served[i].propensity, 0.0);
    }
    EXPECT_FALSE(record.context.empty());
  }
  EXPECT_EQ((*records)[0].clicked_position, 0u);
}

TEST(ClosedLoopTest, ExploringHookLogsTheRerankedListItServed) {
  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  Retrainer retrainer(&engine, TestOptions());
  ASSERT_TRUE(retrainer.Bootstrap(SharedCorpus().base).ok());

  TempDir dir;
  auto log = FeedbackLog::Open({.dir = dir.str()});
  ASSERT_TRUE(log.ok());
  const Explorer explorer(
      {.policy = ExplorePolicy::kEpsilonGreedy, .param = 0.9, .seed = 11});
  FeedbackHook hook;
  hook.log = log->get();
  hook.explorer = &explorer;
  ServeOptions options;
  options.feedback = &hook;

  std::vector<std::pair<uint64_t, Recommendation>> served_lists;
  for (const std::vector<QueryId>& context :
       CollectContexts(SharedCorpus().base, 60)) {
    const ServeResult served =
        engine.Recommend(ContextRef(context.data(), context.size()), 5,
                         options);
    if (served.feedback_record_id != 0) {
      served_lists.emplace_back(served.feedback_record_id,
                                served.recommendation);
    }
  }
  ASSERT_FALSE(served_lists.empty());
  ASSERT_TRUE(log->get()->Flush().ok());

  const auto records = ReadFeedbackLog(dir.str());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), served_lists.size());
  // What the log says was served is exactly what the caller got back —
  // the impression is written AFTER the rerank, propensities attached.
  for (size_t i = 0; i < records->size(); ++i) {
    const FeedbackRecord& record = (*records)[i];
    const Recommendation& answer = served_lists[i].second;
    EXPECT_EQ(record.record_id, served_lists[i].first);
    EXPECT_EQ(record.policy, ExplorePolicy::kEpsilonGreedy);
    EXPECT_EQ(record.policy_param, 0.9);
    ASSERT_EQ(record.served.size(), answer.queries.size());
    double sum = 0.0;
    for (size_t j = 0; j < record.served.size(); ++j) {
      EXPECT_EQ(record.served[j].query, answer.queries[j].query);
      EXPECT_EQ(std::bit_cast<uint64_t>(record.served[j].score),
                std::bit_cast<uint64_t>(answer.queries[j].score));
      sum += record.served[j].propensity;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

/// The property test the issue names: consuming a feedback log is
/// *exactly* appending SessionsFromFeedback(log) — same corpus, same
/// published snapshot, same answers to every probe.
TEST(ClosedLoopTest, ConsumeFeedbackEqualsDirectAppendAndIsIdempotent) {
  // Write a log whose clicked impressions we also keep in memory.
  TempDir dir;
  std::vector<FeedbackRecord> written;
  {
    auto log = FeedbackLog::Open({.dir = dir.str()});
    ASSERT_TRUE(log.ok());
    const auto contexts = CollectContexts(SharedCorpus().drifted, 120);
    for (size_t i = 0; i < contexts.size(); ++i) {
      FeedbackRecord record;
      record.record_id = (*log)->NextRecordId();
      record.snapshot_version = 1;
      record.context = contexts[i];
      // Served list: three arbitrary known queries.
      record.served = {{contexts[i][0], 0.5, 0.8},
                       {contexts[i].back(), 0.3, 0.1},
                       {contexts[i][0] + 1, 0.2, 0.1}};
      ASSERT_TRUE((*log)->AppendImpression(record).ok());
      // Click on a rotating subset — some impressions stay unclicked.
      if (i % 3 != 0) {
        const uint32_t position = static_cast<uint32_t>(i % 3 - 1);
        ASSERT_TRUE((*log)->RecordClick(record.record_id, position).ok());
        record.clicked_position = position;
      }
      written.push_back(std::move(record));
    }
    ASSERT_TRUE((*log)->Seal().ok());
  }

  // Engine A consumes the log; engine B appends the equivalent sessions.
  RecommenderEngine engine_a(EngineOptions{.num_threads = 1});
  Retrainer retrainer_a(&engine_a, TestOptions());
  ASSERT_TRUE(retrainer_a.Bootstrap(SharedCorpus().base).ok());
  RecommenderEngine engine_b(EngineOptions{.num_threads = 1});
  Retrainer retrainer_b(&engine_b, TestOptions());
  ASSERT_TRUE(retrainer_b.Bootstrap(SharedCorpus().base).ok());

  const auto consumed = retrainer_a.ConsumeFeedback(dir.str());
  ASSERT_TRUE(consumed.ok());
  const std::vector<AggregatedSession> expected_sessions =
      SessionsFromFeedback(written);
  ASSERT_GT(expected_sessions.size(), 0u);
  EXPECT_EQ(*consumed, expected_sessions.size());
  retrainer_b.AppendSessions(expected_sessions);

  ASSERT_TRUE(retrainer_a.RetrainOnce().ok());
  ASSERT_TRUE(retrainer_b.RetrainOnce().ok());
  EXPECT_EQ(retrainer_a.corpus_size(), retrainer_b.corpus_size());

  for (const std::vector<QueryId>& context :
       CollectContexts(SharedCorpus().drifted, 200)) {
    ExpectSameRecommendation(engine_b.Recommend(context, 5),
                             engine_a.Recommend(context, 5));
  }

  // Idempotency: the watermark advanced past every record (clicked or
  // not), so a second consume of the same log is a no-op.
  const auto again = retrainer_a.ConsumeFeedback(dir.str());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);

  // New feedback after the watermark IS picked up.
  {
    auto log = FeedbackLog::Open({.dir = dir.str()});
    ASSERT_TRUE(log.ok());
    FeedbackRecord record;
    record.record_id = (*log)->NextRecordId();
    record.context = {written[0].context[0]};
    record.served = {{written[0].context[0] + 1, 0.4, 1.0}};
    ASSERT_TRUE((*log)->AppendImpression(record).ok());
    ASSERT_TRUE((*log)->RecordClick(record.record_id, 0).ok());
    ASSERT_TRUE((*log)->Seal().ok());
  }
  const auto incremental = retrainer_a.ConsumeFeedback(dir.str());
  ASSERT_TRUE(incremental.ok());
  EXPECT_EQ(*incremental, 1u);
}

TEST(ClosedLoopTest, ShardedConsumeFeedbackMatchesSingleEngineAnswers) {
  TempDir dir;
  {
    auto log = FeedbackLog::Open({.dir = dir.str()});
    ASSERT_TRUE(log.ok());
    for (const std::vector<QueryId>& context :
         CollectContexts(SharedCorpus().drifted, 80)) {
      FeedbackRecord record;
      record.record_id = (*log)->NextRecordId();
      record.context = context;
      record.served = {{context.back(), 0.6, 0.7},
                       {context[0], 0.4, 0.3}};
      ASSERT_TRUE((*log)->AppendImpression(record).ok());
      ASSERT_TRUE(
          (*log)->RecordClick(record.record_id, record.record_id % 2).ok());
    }
    ASSERT_TRUE((*log)->Seal().ok());
  }

  // The 4-shard fleet and the single engine consume the same log; the
  // sharded topology must not change any answer (its standing contract).
  // The fleet pins its sigma vector at Bootstrap and every incremental
  // rebuild reuses it, so the unsharded reference gets the same pinned
  // sigmas (the fleet-equivalence contract is always stated under them).
  ShardedEngine sharded(ShardedEngineOptions{.num_shards = 4});
  ShardedRetrainerSet sharded_retrainers(&sharded, TestOptions());
  ASSERT_TRUE(sharded_retrainers.Bootstrap(SharedCorpus().base).ok());

  RecommenderEngine single(EngineOptions{.num_threads = 1});
  RetrainerOptions single_options = TestOptions();
  single_options.model.fixed_sigmas = sharded_retrainers.sigmas();
  Retrainer single_retrainer(&single, single_options);
  ASSERT_TRUE(single_retrainer.Bootstrap(SharedCorpus().base).ok());

  const auto single_consumed = single_retrainer.ConsumeFeedback(dir.str());
  ASSERT_TRUE(single_consumed.ok());
  const auto sharded_consumed = sharded_retrainers.ConsumeFeedback(dir.str());
  ASSERT_TRUE(sharded_consumed.ok());
  EXPECT_EQ(*sharded_consumed, *single_consumed);
  EXPECT_GT(*sharded_consumed, 0u);

  ASSERT_TRUE(single_retrainer.RetrainOnce().ok());
  ASSERT_TRUE(sharded_retrainers.RetrainAll().ok());

  size_t mismatches = 0;
  for (const std::vector<QueryId>& context :
       CollectContexts(SharedCorpus().drifted, 300)) {
    if (!SameRecommendation(single.Recommend(context, 5),
                            sharded.Recommend(context, 5))) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);

  // Fleet idempotency too.
  const auto again = sharded_retrainers.ConsumeFeedback(dir.str());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

}  // namespace
}  // namespace sqp
