// ModelSnapshot must be a faithful, immutable extraction of the MVMM's
// trained state: building one off to the side reproduces MvmmModel exactly
// (recommendations, conditionals, sigmas, stats), and MvmmModel itself now
// serves by delegating to the snapshot it trained.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_snapshot.h"
#include "core/mvmm_model.h"
#include "serve_test_util.h"

namespace sqp {
namespace {

using serve_test::CollectContexts;
using serve_test::ExpectSameRecommendation;
using serve_test::SharedCorpus;

constexpr size_t kVocabularyBound = 1 << 20;

TrainingData DataFor(const std::vector<AggregatedSession>& sessions) {
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = kVocabularyBound;
  return data;
}

MvmmOptions TestOptions() {
  MvmmOptions options;
  options.default_max_depth = 5;
  return options;
}

TEST(ModelSnapshotTest, BuildMatchesMvmmTraining) {
  const TrainingData data = DataFor(SharedCorpus().base);

  MvmmModel model(TestOptions());
  ASSERT_TRUE(model.Train(data).ok());
  const Result<std::shared_ptr<const ModelSnapshot>> built =
      ModelSnapshot::Build(data, TestOptions(), /*version=*/42);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::shared_ptr<const ModelSnapshot>& snapshot = built.value();

  EXPECT_EQ(snapshot->version(), 42u);
  EXPECT_EQ(snapshot->num_components(), 11u);
  ASSERT_EQ(snapshot->sigmas().size(), model.sigmas().size());
  for (size_t i = 0; i < snapshot->sigmas().size(); ++i) {
    EXPECT_DOUBLE_EQ(snapshot->sigmas()[i], model.sigmas()[i]);
  }
  const ModelStats expected_stats = model.Stats();
  const ModelStats actual_stats = snapshot->Stats();
  EXPECT_EQ(expected_stats.num_states, actual_stats.num_states);
  EXPECT_EQ(expected_stats.num_entries, actual_stats.num_entries);
  EXPECT_EQ(expected_stats.memory_bytes, actual_stats.memory_bytes);

  SnapshotScratch scratch;
  size_t covered = 0;
  for (const std::vector<QueryId>& context :
       CollectContexts(SharedCorpus().base, 400)) {
    const Recommendation expected = model.Recommend(context, 5);
    const Recommendation actual = snapshot->Recommend(context, 5, &scratch);
    ExpectSameRecommendation(expected, actual);
    covered += actual.covered ? 1 : 0;
    EXPECT_EQ(model.Covers(context), snapshot->Covers(context));
    if (!expected.queries.empty()) {
      const QueryId next = expected.queries[0].query;
      EXPECT_DOUBLE_EQ(model.ConditionalProb(context, next),
                       snapshot->ConditionalProb(context, next, &scratch));
    }
  }
  EXPECT_GT(covered, 0u);  // the context sample must exercise the model
}

TEST(ModelSnapshotTest, MvmmModelExposesItsSnapshot) {
  MvmmModel model(TestOptions());
  ASSERT_TRUE(model.Train(DataFor(SharedCorpus().base)).ok());
  ASSERT_NE(model.snapshot(), nullptr);
  EXPECT_EQ(model.snapshot()->pst(), model.shared_pst());
  EXPECT_EQ(model.snapshot()->version(), 0u);
  EXPECT_EQ(model.snapshot()->vocabulary_size(), kVocabularyBound);
}

TEST(ModelSnapshotTest, RejectsMoreComponentsThanViewMask) {
  MvmmOptions options;
  for (size_t i = 0; i < Pst::kMaxViews + 1; ++i) {
    VmmOptions vmm;
    vmm.max_depth = 2;
    options.components.push_back(vmm);
  }
  const Result<std::shared_ptr<const ModelSnapshot>> built =
      ModelSnapshot::Build(DataFor(SharedCorpus().base), options);
  EXPECT_FALSE(built.ok());
}

TEST(ModelSnapshotTest, ReusesCompatibleSharedIndex) {
  const std::vector<AggregatedSession>& sessions = SharedCorpus().base;
  ContextIndex index;
  index.Build(sessions, ContextIndex::Mode::kSubstring, 5,
              /*num_workers=*/4);
  TrainingData with_index = DataFor(sessions);
  with_index.substring_index = &index;

  const auto from_index =
      ModelSnapshot::Build(with_index, TestOptions(), /*version=*/1);
  const auto from_scratch =
      ModelSnapshot::Build(DataFor(sessions), TestOptions(), /*version=*/1);
  ASSERT_TRUE(from_index.ok());
  ASSERT_TRUE(from_scratch.ok());

  SnapshotScratch scratch;
  for (const std::vector<QueryId>& context : CollectContexts(sessions, 200)) {
    ExpectSameRecommendation(
        from_scratch.value()->Recommend(context, 5, &scratch),
        from_index.value()->Recommend(context, 5, &scratch));
  }
  EXPECT_EQ(from_scratch.value()->Stats().num_states,
            from_index.value()->Stats().num_states);
}

}  // namespace
}  // namespace sqp
