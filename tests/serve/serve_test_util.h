#ifndef SQP_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define SQP_TESTS_SERVE_SERVE_TEST_UTIL_H_

// Shared substrate for the serving-layer tests: a small deterministic
// two-period synthetic corpus (a base period plus a drifted period sharing
// one query-id space), and exact-equality helpers for recommendations.

#include <gtest/gtest.h>

#include <vector>

#include "core/prediction_model.h"
#include "log/query_dictionary.h"
#include "log/session_aggregator.h"
#include "log/session_segmenter.h"
#include "synth/log_synthesizer.h"

namespace sqp::serve_test {

struct ServeCorpus {
  QueryDictionary dictionary;  // shared id space across both periods
  std::vector<AggregatedSession> base;
  std::vector<AggregatedSession> drifted;
};

inline std::vector<AggregatedSession> SynthPeriod(TopicModel* topics,
                                                  QueryDictionary* dictionary,
                                                  size_t num_sessions,
                                                  size_t head_intents,
                                                  double novel_fraction,
                                                  uint64_t seed) {
  SynthesizerConfig config;
  config.num_sessions = num_sessions;
  config.num_machines = 300;
  config.session.head_intents = head_intents;
  config.session.novel_fraction = novel_fraction;
  LogSynthesizer synthesizer(topics, config);
  const SynthCorpus corpus = synthesizer.Synthesize(seed, nullptr);
  SessionSegmenter segmenter;
  std::vector<Session> segmented;
  SQP_CHECK_OK(segmenter.Segment(corpus.records, dictionary, &segmented));
  SessionAggregator aggregator;
  aggregator.Add(segmented);
  return aggregator.Finish();
}

inline ServeCorpus MakeServeCorpus(size_t base_sessions = 6000,
                                   size_t drifted_sessions = 3000) {
  Vocabulary vocabulary(
      VocabularyConfig{.num_terms = 800, .synonym_fraction = 0.3}, 71);
  TopicModel topics(&vocabulary, TopicModelConfig{}, 72);
  ServeCorpus out;
  const size_t head =
      static_cast<size_t>(0.6 * static_cast<double>(topics.num_intents()));
  out.base = SynthPeriod(&topics, &out.dictionary, base_sessions, head,
                         /*novel_fraction=*/0.0, 9301);
  out.drifted = SynthPeriod(&topics, &out.dictionary, drifted_sessions, head,
                            /*novel_fraction=*/0.3, 9302);
  return out;
}

/// The per-process corpus; synthesized once and shared by every test in the
/// binary.
inline const ServeCorpus& SharedCorpus() {
  static const ServeCorpus* corpus = new ServeCorpus(MakeServeCorpus());
  return *corpus;
}

/// Session prefixes (length 1..5) drawn from `sessions`, used as online
/// contexts: every model sees a mix of covered and drifted contexts.
inline std::vector<std::vector<QueryId>> CollectContexts(
    const std::vector<AggregatedSession>& sessions, size_t limit) {
  std::vector<std::vector<QueryId>> contexts;
  for (const AggregatedSession& session : sessions) {
    for (size_t len = 1; len <= session.queries.size() && len <= 5; ++len) {
      contexts.emplace_back(session.queries.begin(),
                            session.queries.begin() +
                                static_cast<ptrdiff_t>(len));
      if (contexts.size() >= limit) return contexts;
    }
  }
  return contexts;
}

inline void ExpectSameRecommendation(const Recommendation& expected,
                                     const Recommendation& actual) {
  EXPECT_EQ(expected.covered, actual.covered);
  EXPECT_EQ(expected.matched_length, actual.matched_length);
  ASSERT_EQ(expected.queries.size(), actual.queries.size());
  for (size_t i = 0; i < expected.queries.size(); ++i) {
    EXPECT_EQ(expected.queries[i].query, actual.queries[i].query)
        << "rank " << i;
    EXPECT_DOUBLE_EQ(expected.queries[i].score, actual.queries[i].score)
        << "rank " << i;
  }
}

/// Exact comparison as a bool (for stress loops where per-field EXPECTs
/// would flood the log).
inline bool SameRecommendation(const Recommendation& expected,
                               const Recommendation& actual) {
  if (expected.covered != actual.covered) return false;
  if (expected.matched_length != actual.matched_length) return false;
  if (expected.queries.size() != actual.queries.size()) return false;
  for (size_t i = 0; i < expected.queries.size(); ++i) {
    if (expected.queries[i].query != actual.queries[i].query) return false;
    if (expected.queries[i].score != actual.queries[i].score) return false;
  }
  return true;
}

}  // namespace sqp::serve_test

#endif  // SQP_TESTS_SERVE_SERVE_TEST_UTIL_H_
