// Concurrency stress for the serving swap: N reader threads hammer
// Recommend / RecommendMany while snapshots are published underneath them.
// Every answer must be attributable to exactly one fully-published snapshot
// — we precompute the expected result per (version, context) and fail on
// any response that matches no published generation. Run this binary under
// ThreadSanitizer in CI (the SQP_TSAN build) to catch ordering bugs the
// assertions can't see.

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/compact_snapshot.h"
#include "core/snapshot_io.h"
#include "serve/recommender_engine.h"
#include "serve/retrainer.h"
#include "serve_test_util.h"

namespace sqp {
namespace {

using serve_test::CollectContexts;
using serve_test::SameRecommendation;
using serve_test::SharedCorpus;

constexpr size_t kVocabularyBound = 1 << 20;

std::shared_ptr<const ModelSnapshot> BuildSnapshot(
    const std::vector<AggregatedSession>& sessions, uint64_t version) {
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = kVocabularyBound;
  MvmmOptions options;
  options.default_max_depth = 5;
  auto built = ModelSnapshot::Build(data, options, version);
  SQP_CHECK(built.ok());
  return built.value();
}

TEST(EngineStressTest, ReadersAlwaysSeeFullyPublishedSnapshots) {
  // Three model generations over growing corpora, versions 1..3.
  std::vector<std::vector<AggregatedSession>> corpora;
  corpora.push_back(SharedCorpus().base);
  {
    std::vector<AggregatedSession> grown = corpora.back();
    const auto& drifted = SharedCorpus().drifted;
    grown.insert(grown.end(), drifted.begin(),
                 drifted.begin() + static_cast<ptrdiff_t>(drifted.size() / 2));
    corpora.push_back(grown);
    grown.insert(grown.end(),
                 drifted.begin() + static_cast<ptrdiff_t>(drifted.size() / 2),
                 drifted.end());
    corpora.push_back(grown);
  }
  // Generation 2 is a compact re-pack and generation 4 a memory-mapped
  // blob restored from disk, so the swap loop keeps hot-swapping
  // full -> compact -> full -> mapped serving variants underneath the
  // readers — the publish seam must not care which variant is live, and a
  // cold-booted (mmap) replica must behave like any other snapshot under
  // concurrent readers.
  std::vector<std::shared_ptr<const ServingSnapshot>> snapshots;
  for (size_t i = 0; i < corpora.size(); ++i) {
    const std::shared_ptr<const ModelSnapshot> full =
        BuildSnapshot(corpora[i], i + 1);
    if (i == 1) {
      snapshots.push_back(
          CompactSnapshot::FromSnapshot(*full, CompactOptions{.top_k = 10}));
    } else {
      snapshots.push_back(full);
    }
  }
  // Process-unique path: concurrent ctest runs (e.g. release and ASan
  // trees on one machine) must not race on one blob file.
  const std::string blob_path =
      (std::filesystem::temp_directory_path() /
       ("sqp_stress_gen4_" + std::to_string(::getpid()) + ".blob"))
          .string();
  {
    const std::shared_ptr<const ModelSnapshot> full =
        BuildSnapshot(corpora.back(), snapshots.size() + 1);
    const auto compact =
        CompactSnapshot::FromSnapshot(*full, CompactOptions{.top_k = 10});
    ASSERT_TRUE(SaveCompactSnapshot(*compact, blob_path).ok());
    auto mapped = MapCompactSnapshot(blob_path);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    snapshots.push_back(std::move(mapped.value()));
  }

  const std::vector<std::vector<QueryId>> contexts =
      CollectContexts(corpora.back(), 64);
  // expected[v][i]: the answer version v+1 must give for context i.
  std::vector<std::vector<Recommendation>> expected(snapshots.size());
  {
    SnapshotScratch scratch;
    for (size_t v = 0; v < snapshots.size(); ++v) {
      for (const std::vector<QueryId>& context : contexts) {
        expected[v].push_back(snapshots[v]->Recommend(context, 5, &scratch));
      }
    }
  }

  RecommenderEngine engine(EngineOptions{.num_threads = 2});
  engine.Publish(snapshots[0]);

  constexpr size_t kReaders = 4;
  constexpr size_t kIterations = 400;
  std::atomic<bool> done{false};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> queries{0};

  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (size_t it = 0; it < kIterations && !done.load(); ++it) {
        const size_t i = (r * 131 + it * 17) % contexts.size();
        uint64_t version = 0;
        const Recommendation rec = engine.Recommend(contexts[i], 5, &version);
        queries.fetch_add(1);
        if (version < 1 || version > snapshots.size() ||
            !SameRecommendation(expected[version - 1][i], rec)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  // A batch reader: every result in a batch must come from ONE version.
  std::thread batch_reader([&] {
    std::vector<ContextRef> refs;
    for (const std::vector<QueryId>& context : contexts) {
      refs.emplace_back(context.data(), context.size());
    }
    for (size_t it = 0; it < 60; ++it) {
      uint64_t version = 0;
      const std::vector<Recommendation> batch = engine.RecommendMany(
          std::span<const ContextRef>(refs), 5, &version);
      queries.fetch_add(batch.size());
      if (version < 1 || version > snapshots.size()) {
        mismatches.fetch_add(1);
        continue;
      }
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!SameRecommendation(expected[version - 1][i], batch[i])) {
          mismatches.fetch_add(1);
        }
      }
    }
  });

  // The "retrainer": keep swapping generations under the readers.
  for (size_t swap = 0; swap < 150; ++swap) {
    engine.Publish(snapshots[swap % snapshots.size()]);
    std::this_thread::yield();
  }

  for (std::thread& reader : readers) reader.join();
  batch_reader.join();
  done.store(true);

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GE(queries.load(), kReaders * kIterations);
  EXPECT_GE(engine.stats().snapshots_published, 151u);

  // The mapped generation must have served during the rotation; drop the
  // engine's reference before removing the backing file.
  engine.Publish(snapshots[0]);
  std::error_code ec;
  std::filesystem::remove(blob_path, ec);
}

TEST(EngineStressTest, ReadersHammerWhileRealRetrainerSwaps) {
  // End-to-end variant: a live Retrainer rebuilds and publishes while
  // readers serve. Answers must come from a published generation (any
  // version >= 1) and never block on the rebuild.
  RecommenderEngine engine(EngineOptions{.num_threads = 2});
  RetrainerOptions options;
  options.model.default_max_depth = 5;
  options.vocabulary_size = kVocabularyBound;
  options.count_workers = 2;
  Retrainer retrainer(&engine, options);
  ASSERT_TRUE(retrainer.Bootstrap(SharedCorpus().base).ok());

  const std::vector<std::vector<QueryId>> contexts =
      CollectContexts(SharedCorpus().base, 48);

  std::atomic<bool> stop{false};
  std::atomic<size_t> bad{0};
  std::atomic<size_t> served{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      size_t it = 0;
      while (!stop.load()) {
        uint64_t version = 0;
        const Recommendation rec =
            engine.Recommend(contexts[(r + it++) % contexts.size()], 5,
                             &version);
        (void)rec;
        served.fetch_add(1);
        if (version == 0) bad.fetch_add(1);  // must never see "no snapshot"
      }
    });
  }

  // Feed three slices and complete three synchronous retrain cycles while
  // the readers run.
  const auto& drifted = SharedCorpus().drifted;
  const size_t slice = drifted.size() / 3;
  for (size_t s = 0; s < 3; ++s) {
    const auto begin = drifted.begin() + static_cast<ptrdiff_t>(s * slice);
    const auto end = s == 2 ? drifted.end()
                            : drifted.begin() +
                                  static_cast<ptrdiff_t>((s + 1) * slice);
    retrainer.AppendSessions(std::vector<AggregatedSession>(begin, end));
    ASSERT_TRUE(retrainer.RetrainOnce().ok());
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(served.load(), 0u);
  EXPECT_EQ(retrainer.published_version(), 4u);
  EXPECT_EQ(engine.current_version(), 4u);
}

}  // namespace
}  // namespace sqp
