// Concurrency stress for the sharded serving layer: reader threads hammer
// cross-shard Recommend / RecommendMany batches while ONE shard is
// hot-swapped between generations (full -> compact -> full) underneath
// them. Contexts owned by untouched shards must answer bit-identically
// throughout; contexts owned by the swapped shard must always match one
// of its fully-published generations. Runs under ThreadSanitizer in CI
// (the SQP_TSAN build) with the rest of sqp_serve_tests.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/compact_snapshot.h"
#include "serve/sharded_engine.h"
#include "serve_test_util.h"

namespace sqp {
namespace {

using serve_test::CollectContexts;
using serve_test::SameRecommendation;
using serve_test::SharedCorpus;

constexpr size_t kVocabularyBound = 1 << 20;
constexpr uint32_t kShards = 4;

TEST(ShardedStressTest, SwappingOneShardNeverDisturbsCrossShardBatches) {
  // Generation 1: the fleet trained on the base corpus. Generation 2 (for
  // the swapped shard only): trained on base + drifted under the same
  // pinned global sigmas, published alternately as the full snapshot and
  // its compact re-pack.
  ShardedTrainOptions train;
  train.model.default_max_depth = 5;
  train.num_shards = kShards;
  train.vocabulary_size = kVocabularyBound;
  auto gen1 = TrainShardedSnapshots(SharedCorpus().base, train);
  ASSERT_TRUE(gen1.ok());

  std::vector<AggregatedSession> grown = SharedCorpus().base;
  grown.insert(grown.end(), SharedCorpus().drifted.begin(),
               SharedCorpus().drifted.end());
  train.model.fixed_sigmas = gen1->sigmas;
  train.version = 2;
  auto gen2 = TrainShardedSnapshots(grown, train);
  ASSERT_TRUE(gen2.ok());

  constexpr uint32_t kSwapShard = 1;
  const std::shared_ptr<const ServingSnapshot> swap_variants[2] = {
      gen2->shards[kSwapShard],
      CompactSnapshot::FromSnapshot(*gen2->shards[kSwapShard],
                                    CompactOptions{.top_k = 8})};

  ShardedEngine engine(
      ShardedEngineOptions{.num_shards = kShards, .num_threads = 2});
  for (size_t s = 0; s < kShards; ++s) {
    engine.PublishShard(s, gen1->shards[s]);
  }

  // Contexts from both periods; precompute the acceptable answers: the
  // stable generation for unswapped shards, both generations (and both
  // variants) for the swapped one.
  std::vector<std::vector<QueryId>> contexts = CollectContexts(grown, 96);
  struct Expected {
    uint32_t shard = 0;
    Recommendation stable;              // unswapped shards
    std::vector<Recommendation> valid;  // swapped shard: any of these
  };
  std::vector<Expected> expected(contexts.size());
  {
    SnapshotScratch scratch;
    for (size_t i = 0; i < contexts.size(); ++i) {
      expected[i].shard = engine.OwningShard(contexts[i]);
      if (expected[i].shard == kSwapShard) {
        expected[i].valid.push_back(
            gen1->shards[kSwapShard]->Recommend(contexts[i], 5, &scratch));
        for (const auto& variant : swap_variants) {
          expected[i].valid.push_back(
              variant->Recommend(contexts[i], 5, &scratch));
        }
      } else {
        expected[i].stable = gen1->shards[expected[i].shard]->Recommend(
            contexts[i], 5, &scratch);
      }
    }
  }

  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> served{0};
  std::atomic<bool> done{false};

  const auto check = [&](size_t i, const Recommendation& rec) {
    if (expected[i].shard != kSwapShard) {
      if (!SameRecommendation(expected[i].stable, rec)) {
        mismatches.fetch_add(1);
      }
      return;
    }
    for (const Recommendation& valid : expected[i].valid) {
      if (SameRecommendation(valid, rec)) return;
    }
    mismatches.fetch_add(1);
  };

  std::vector<std::thread> readers;
  for (size_t r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      for (size_t it = 0; it < 300 && !done.load(); ++it) {
        const size_t i = (r * 131 + it * 17) % contexts.size();
        check(i, engine.Recommend(contexts[i], 5));
        served.fetch_add(1);
      }
    });
  }
  std::thread batch_reader([&] {
    for (size_t it = 0; it < 80; ++it) {
      const std::vector<Recommendation> batch =
          engine.RecommendMany(contexts, 5);
      for (size_t i = 0; i < batch.size(); ++i) check(i, batch[i]);
      served.fetch_add(batch.size());
    }
  });

  // The swapper: hot-swap the one shard between generations/variants
  // while everything above reads.
  for (size_t swap = 0; swap < 200; ++swap) {
    if (swap % 3 == 0) {
      engine.PublishShard(kSwapShard, gen1->shards[kSwapShard]);
    } else {
      engine.PublishShard(kSwapShard, swap_variants[swap % 2]);
    }
    std::this_thread::yield();
  }

  for (std::thread& reader : readers) reader.join();
  batch_reader.join();
  done.store(true);

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(served.load(), 0u);
  EXPECT_GE(engine.shard(kSwapShard)->stats().snapshots_published, 201u);
}

}  // namespace
}  // namespace sqp
