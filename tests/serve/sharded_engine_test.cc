// The sharded serving suite: the acceptance property is that a fleet of N
// engine shards answers every context bit-identically to the unsharded
// model — top-10 lists, scores, matched lengths, coverage — for shard
// counts {1, 2, 4, 7}, through the in-memory, compact and manifest-booted
// (mmap) serving variants; plus the independent-rebuild story (per-shard
// retrainers, bounded stale-shard skew).

#include "serve/sharded_engine.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/compact_snapshot.h"
#include "serve_test_util.h"

namespace sqp {
namespace {

using serve_test::CollectContexts;
using serve_test::ExpectSameRecommendation;
using serve_test::SharedCorpus;

constexpr size_t kVocabularyBound = 1 << 20;
constexpr size_t kShardCounts[] = {1, 2, 4, 7};

MvmmOptions DefaultModel() {
  MvmmOptions options;
  options.default_max_depth = 5;
  return options;
}

std::shared_ptr<const ModelSnapshot> BuildUnsharded(
    const std::vector<AggregatedSession>& sessions, uint64_t version = 1) {
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = kVocabularyBound;
  auto built = ModelSnapshot::Build(data, DefaultModel(), version);
  SQP_CHECK(built.ok());
  return built.value();
}

ShardedTrainResult TrainSharded(const std::vector<AggregatedSession>& corpus,
                                uint32_t num_shards, uint64_t version = 1) {
  ShardedTrainOptions options;
  options.model = DefaultModel();
  // Train the fleets with workers while the unsharded reference stays
  // sequential: the parallel counting pass and the parallel routed sigma
  // fit both claim bit-identical results, so equivalence must survive.
  options.model.training_threads = 2;
  options.num_shards = num_shards;
  options.vocabulary_size = kVocabularyBound;
  options.version = version;
  auto trained = TrainShardedSnapshots(corpus, options);
  SQP_CHECK(trained.ok());
  return std::move(trained.value());
}

class TempDir {
 public:
  TempDir()
      : path_(std::filesystem::temp_directory_path() /
              ("sqp_sharded_" + std::to_string(::getpid()) + "_" +
               std::to_string(counter_++))) {
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

// ----------------------------------------------------------- equivalence

TEST(ShardedEngineTest, TopNBitIdenticalToUnshardedForEveryShardCount) {
  const std::vector<AggregatedSession>& corpus = SharedCorpus().base;
  const auto full = BuildUnsharded(corpus);
  // Covered and drifted (partially uncovered) contexts alike must agree.
  std::vector<std::vector<QueryId>> contexts = CollectContexts(corpus, 500);
  const auto drifted = CollectContexts(SharedCorpus().drifted, 200);
  contexts.insert(contexts.end(), drifted.begin(), drifted.end());

  SnapshotScratch scratch;
  for (const size_t num_shards : kShardCounts) {
    const ShardedTrainResult trained =
        TrainSharded(corpus, static_cast<uint32_t>(num_shards));
    ASSERT_EQ(trained.shards.size(), num_shards);
    // The routed global sigma fit must reproduce the unsharded Newton fit
    // exactly — this is what makes every served score equal, not close.
    EXPECT_EQ(trained.sigmas, full->sigmas()) << num_shards << " shards";

    ShardedEngine engine(ShardedEngineOptions{.num_shards = num_shards,
                                              .num_threads = 2});
    ASSERT_EQ(engine.num_shards(), num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      engine.PublishShard(s, trained.shards[s]);
    }

    for (const std::vector<QueryId>& context : contexts) {
      const Recommendation want = full->Recommend(context, 10, &scratch);
      const Recommendation got = engine.Recommend(context, 10);
      ExpectSameRecommendation(want, got);
    }

    // The batched path routes and merges back positionally; results must
    // be the same answers in the same slots.
    const std::vector<Recommendation> batch =
        engine.RecommendMany(contexts, 10);
    ASSERT_EQ(batch.size(), contexts.size());
    for (size_t i = 0; i < contexts.size(); ++i) {
      const Recommendation want = full->Recommend(contexts[i], 10, &scratch);
      ExpectSameRecommendation(want, batch[i]);
    }
  }
}

TEST(ShardedEngineTest, ManifestBootedFleetServesIdentically) {
  const std::vector<AggregatedSession>& corpus = SharedCorpus().base;
  const auto full = BuildUnsharded(corpus, /*version=*/3);
  const auto full_compact =
      CompactSnapshot::FromSnapshot(*full, CompactOptions{.top_k = 10});
  const std::vector<std::vector<QueryId>> contexts =
      CollectContexts(corpus, 400);
  SnapshotScratch scratch;

  for (const size_t num_shards : {size_t{2}, size_t{4}}) {
    const ShardedTrainResult trained =
        TrainSharded(corpus, static_cast<uint32_t>(num_shards),
                     /*version=*/3);
    TempDir dir;
    const std::string manifest_path = dir.file("fleet.manifest");
    ASSERT_TRUE(SaveShardedSnapshots(trained.shards,
                                     CompactOptions{.top_k = 10},
                                     manifest_path)
                    .ok());

    // One call boots the whole fleet (shard count from the manifest).
    auto booted = ShardedEngine::BootFromManifest(manifest_path);
    ASSERT_TRUE(booted.ok()) << booted.status().ToString();
    ASSERT_EQ((*booted)->num_shards(), num_shards);
    EXPECT_EQ((*booted)->stats().min_version, 3u);
    EXPECT_EQ((*booted)->stats().max_version, 3u);

    // The mapped fleet serves exactly like the unsharded *compact*
    // snapshot (same top-K truncation on both sides).
    for (const std::vector<QueryId>& context : contexts) {
      const Recommendation want =
          full_compact->Recommend(context, 10, &scratch);
      const Recommendation got = (*booted)->Recommend(context, 10);
      ExpectSameRecommendation(want, got);
    }
  }
}

TEST(ShardedEngineTest, EmptyAndUnknownContextsBehaveLikeUnsharded) {
  const ShardedTrainResult trained = TrainSharded(SharedCorpus().base, 4);
  ShardedEngine engine(ShardedEngineOptions{.num_shards = 4});
  for (size_t s = 0; s < 4; ++s) engine.PublishShard(s, trained.shards[s]);

  EXPECT_FALSE(engine.Recommend({}, 5).covered);
  const std::vector<QueryId> unknown = {kInvalidQueryId - 1};
  EXPECT_FALSE(engine.Recommend(unknown, 5).covered);
}

TEST(ShardedEngineTest, UnpublishedShardAnswersUncovered) {
  const std::vector<AggregatedSession>& corpus = SharedCorpus().base;
  const ShardedTrainResult trained = TrainSharded(corpus, 4);
  ShardedEngine engine(ShardedEngineOptions{.num_shards = 4});
  // Publish every shard but 0: contexts owned by shard 0 must answer
  // uncovered (version 0), everything else normally — readers of healthy
  // shards are unaffected by a missing one.
  for (size_t s = 1; s < 4; ++s) engine.PublishShard(s, trained.shards[s]);

  size_t unowned_covered = 0;
  for (const std::vector<QueryId>& context : CollectContexts(corpus, 300)) {
    uint64_t version = 0;
    const Recommendation rec = engine.Recommend(context, 5, &version);
    if (engine.OwningShard(context) == 0) {
      EXPECT_FALSE(rec.covered);
      EXPECT_EQ(version, 0u);
    } else if (rec.covered) {
      EXPECT_EQ(version, 1u);
      ++unowned_covered;
    }
  }
  EXPECT_GT(unowned_covered, 0u);
  const std::vector<Recommendation> batch =
      engine.RecommendMany(CollectContexts(corpus, 300), 5);
  EXPECT_EQ(batch.size(), 300u);
}

// ------------------------------------------------------- fixed sigma seam

TEST(ShardedEngineTest, FixedSigmasSkipTheFitAndServeIdentically) {
  const std::vector<AggregatedSession>& corpus = SharedCorpus().base;
  const auto fitted = BuildUnsharded(corpus);

  TrainingData data;
  data.sessions = &corpus;
  data.vocabulary_size = kVocabularyBound;
  MvmmOptions pinned = DefaultModel();
  pinned.fixed_sigmas = fitted->sigmas();
  auto rebuilt = ModelSnapshot::Build(data, pinned, 1);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ((*rebuilt)->sigmas(), fitted->sigmas());

  SnapshotScratch scratch;
  for (const std::vector<QueryId>& context : CollectContexts(corpus, 200)) {
    ExpectSameRecommendation(fitted->Recommend(context, 10, &scratch),
                             (*rebuilt)->Recommend(context, 10, &scratch));
  }

  // Mis-sized vectors are rejected, in Build and in WithSigmas.
  pinned.fixed_sigmas.push_back(1.0);
  EXPECT_FALSE(ModelSnapshot::Build(data, pinned, 1).ok());
  EXPECT_FALSE(fitted->WithSigmas({1.0, 2.0}).ok());

  // WithSigmas shares the tree (no copy) and swaps only the weights.
  auto stamped = fitted->WithSigmas(fitted->sigmas());
  ASSERT_TRUE(stamped.ok());
  EXPECT_EQ((*stamped)->pst().get(), fitted->pst().get());
}

// --------------------------------------------- independent shard rebuilds

/// Sessions whose non-final queries all belong to `shard` (so appending
/// them dirties exactly that shard), drawn from the drifted period.
std::vector<AggregatedSession> SessionsOwnedBy(uint32_t shard,
                                               uint32_t num_shards,
                                               size_t limit) {
  std::vector<AggregatedSession> out;
  std::vector<uint32_t> owners;
  for (const AggregatedSession& session : SharedCorpus().drifted) {
    OwningShards(session, num_shards, &owners);
    if (owners.size() == 1 && owners[0] == shard) {
      out.push_back(session);
      if (out.size() >= limit) break;
    }
  }
  return out;
}

TEST(ShardedRetrainerSetTest, OneShardRebuildsWhileOthersStayBitFrozen) {
  constexpr uint32_t kShards = 4;
  ShardedEngine engine(ShardedEngineOptions{.num_shards = kShards});
  RetrainerOptions base;
  base.model = DefaultModel();
  base.vocabulary_size = kVocabularyBound;
  ShardedRetrainerSet retrainers(&engine, base);
  ASSERT_TRUE(retrainers.Bootstrap(SharedCorpus().base).ok());
  EXPECT_EQ(retrainers.sigmas().size(), DefaultModel()
                                            .DefaultComponents(5)
                                            .size());
  EXPECT_EQ(engine.stats().min_version, 1u);
  EXPECT_EQ(engine.stats().max_version, 1u);

  // The bootstrapped fleet equals the unsharded model (the retrainers
  // rebuild under the pinned global sigmas).
  const auto full = BuildUnsharded(SharedCorpus().base);
  SnapshotScratch scratch;
  const std::vector<std::vector<QueryId>> contexts =
      CollectContexts(SharedCorpus().base, 300);
  for (const std::vector<QueryId>& context : contexts) {
    ExpectSameRecommendation(full->Recommend(context, 10, &scratch),
                             engine.Recommend(context, 10));
  }

  // Pick a target shard with single-owner drift sessions available.
  uint32_t target = 0;
  std::vector<AggregatedSession> fresh;
  for (uint32_t s = 0; s < kShards && fresh.empty(); ++s) {
    fresh = SessionsOwnedBy(s, kShards, 40);
    target = s;
  }
  ASSERT_FALSE(fresh.empty());

  // Freeze the answers every non-target shard currently gives.
  std::vector<Recommendation> before;
  before.reserve(contexts.size());
  for (const std::vector<QueryId>& context : contexts) {
    before.push_back(engine.Recommend(context, 10));
  }

  retrainers.AppendSessions(fresh);
  for (uint32_t s = 0; s < kShards; ++s) {
    if (s != target) {
      EXPECT_EQ(retrainers.shard_retrainer(s)->pending_sessions(), 0u);
    }
  }
  ASSERT_TRUE(retrainers.RetrainShard(target).ok());

  // Bounded skew: exactly the target advanced.
  const ShardedStats stats = engine.stats();
  EXPECT_EQ(stats.shard_versions[target], 2u);
  EXPECT_EQ(stats.min_version, 1u);
  EXPECT_EQ(stats.max_version, 2u);

  // Non-target shards answer bit-identically to before the rebuild; the
  // target shard now serves the grown corpus (equal to an unsharded model
  // trained on base + fresh under the same pinned sigmas, restricted to
  // its contexts).
  std::vector<AggregatedSession> grown = SharedCorpus().base;
  grown.insert(grown.end(), fresh.begin(), fresh.end());
  TrainingData grown_data;
  grown_data.sessions = &grown;
  grown_data.vocabulary_size = kVocabularyBound;
  MvmmOptions pinned = DefaultModel();
  pinned.fixed_sigmas = retrainers.sigmas();
  auto grown_full = ModelSnapshot::Build(grown_data, pinned, 2);
  ASSERT_TRUE(grown_full.ok());

  for (size_t i = 0; i < contexts.size(); ++i) {
    const Recommendation now = engine.Recommend(contexts[i], 10);
    if (engine.OwningShard(contexts[i]) == target) {
      ExpectSameRecommendation(
          (*grown_full)->Recommend(contexts[i], 10, &scratch), now);
    } else {
      ExpectSameRecommendation(before[i], now);
    }
  }
}

TEST(ShardedRetrainerSetTest, PersistedFleetColdBootsAfterShardRebuild) {
  constexpr uint32_t kShards = 2;
  TempDir dir;
  const std::string manifest_path = dir.file("fleet.manifest");

  ShardedEngine engine(ShardedEngineOptions{.num_shards = kShards});
  RetrainerOptions base;
  base.model = DefaultModel();
  base.vocabulary_size = kVocabularyBound;
  base.persist_path = manifest_path;  // per-shard blobs + manifest naming
  ShardedRetrainerSet retrainers(&engine, base);
  // Bootstrap persists every shard blob AND the manifest indexing them.
  ASSERT_TRUE(retrainers.Bootstrap(SharedCorpus().base).ok());

  {
    auto booted = ShardedEngine::BootFromManifest(manifest_path);
    ASSERT_TRUE(booted.ok()) << booted.status().ToString();
    EXPECT_EQ((*booted)->stats().max_version, 1u);
  }

  // Rebuild one shard: its blob on disk changes AND the manifest is
  // re-pinned automatically (the after_persist hook), so the on-disk
  // fleet stays cold-bootable at every moment — not just at clean exit.
  std::vector<AggregatedSession> fresh;
  uint32_t target = 0;
  for (uint32_t s = 0; s < kShards && fresh.empty(); ++s) {
    fresh = SessionsOwnedBy(s, kShards, 20);
    target = s;
  }
  ASSERT_FALSE(fresh.empty());
  retrainers.AppendSessions(fresh);
  ASSERT_TRUE(retrainers.RetrainShard(target).ok());

  auto rebooted = ShardedEngine::BootFromManifest(manifest_path);
  ASSERT_TRUE(rebooted.ok()) << rebooted.status().ToString();
  const std::vector<uint64_t> versions = (*rebooted)->shard_versions();
  EXPECT_EQ(versions[target], 2u);
  EXPECT_EQ(versions[1 - target], 1u);

  // The cold-booted fleet serves what the live fleet serves (compact
  // truncation on both sides: compare against the live engines'
  // re-packed snapshots via the blobs themselves — spot-check coverage
  // and exact agreement on the batch path).
  const std::vector<std::vector<QueryId>> contexts =
      CollectContexts(SharedCorpus().base, 150);
  const std::vector<Recommendation> live =
      engine.RecommendMany(contexts, 10);
  const std::vector<Recommendation> cold =
      (*rebooted)->RecommendMany(contexts, 10);
  size_t covered = 0;
  for (size_t i = 0; i < contexts.size(); ++i) {
    if (live[i].covered) ++covered;
    EXPECT_EQ(live[i].covered, cold[i].covered);
    if (live[i].covered && cold[i].covered) {
      ASSERT_GE(live[i].queries.size(), 1u);
      ASSERT_GE(cold[i].queries.size(), 1u);
      EXPECT_EQ(live[i].queries[0].query, cold[i].queries[0].query);
    }
  }
  EXPECT_GT(covered, 0u);
}

TEST(ShardedRetrainerSetTest, ManifestRePinRecordsRepublishedShardVersion) {
  // Regression: the automatic manifest re-pin runs inside the retrainer's
  // after_persist hook, which used to fire before published_version()
  // advanced — so a shard republishing version 2 re-pinned the manifest
  // tagged version 1. The manifest version must equal the newest shard
  // version the moment the hook-driven re-pin lands, with no manual
  // RefreshManifest() call.
  constexpr uint32_t kShards = 2;
  TempDir dir;
  const std::string manifest_path = dir.file("repin.manifest");

  ShardedEngine engine(ShardedEngineOptions{.num_shards = kShards});
  RetrainerOptions base;
  base.model = DefaultModel();
  base.vocabulary_size = kVocabularyBound;
  base.persist_path = manifest_path;
  ShardedRetrainerSet retrainers(&engine, base);
  ASSERT_TRUE(retrainers.Bootstrap(SharedCorpus().base).ok());
  {
    auto manifest = SnapshotIo::LoadManifest(manifest_path);
    ASSERT_TRUE(manifest.ok());
    EXPECT_EQ(manifest->version, 1u);
  }

  std::vector<AggregatedSession> fresh;
  uint32_t target = 0;
  for (uint32_t s = 0; s < kShards && fresh.empty(); ++s) {
    fresh = SessionsOwnedBy(s, kShards, 20);
    target = s;
  }
  ASSERT_FALSE(fresh.empty());
  retrainers.AppendSessions(fresh);
  ASSERT_TRUE(retrainers.RetrainShard(target).ok());
  ASSERT_TRUE(retrainers.last_manifest_status().ok());

  auto manifest = SnapshotIo::LoadManifest(manifest_path);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->version, 2u);  // stale (1) before the ordering fix

  // And the re-pinned fleet cold-boots at the mixed shard versions.
  auto booted = ShardedEngine::BootFromManifest(manifest_path);
  ASSERT_TRUE(booted.ok()) << booted.status().ToString();
  const std::vector<uint64_t> versions = (*booted)->shard_versions();
  EXPECT_EQ(versions[target], 2u);
  EXPECT_EQ(versions[1 - target], 1u);
}

TEST(ShardedRetrainerSetTest, EmptyShardSlicesPersistAndBootstrapLazily) {
  // A corpus over two distinct queries: with 7 shards, most slices are
  // empty. Every shard must still publish AND persist at bootstrap (the
  // manifest needs all blobs), and an empty shard must fold in its first
  // routed sessions instead of queueing them forever.
  constexpr uint32_t kShards = 7;
  const std::vector<AggregatedSession> tiny = {
      {{QueryId{0}, QueryId{1}}, 5},
      {{QueryId{1}, QueryId{0}}, 3},
  };
  TempDir dir;
  const std::string manifest_path = dir.file("tiny.manifest");

  ShardedEngine engine(ShardedEngineOptions{.num_shards = kShards});
  RetrainerOptions base;
  base.model = DefaultModel();
  base.vocabulary_size = 16;
  base.persist_path = manifest_path;
  ShardedRetrainerSet retrainers(&engine, base);
  ASSERT_TRUE(retrainers.Bootstrap(tiny).ok());

  // All 7 blobs + the manifest exist and the fleet cold-boots whole.
  auto booted = ShardedEngine::BootFromManifest(manifest_path);
  ASSERT_TRUE(booted.ok()) << booted.status().ToString();
  EXPECT_EQ((*booted)->num_shards(), kShards);
  EXPECT_EQ(engine.stats().min_version, 1u);

  // Route sessions to a shard whose slice was empty: query id 3 hashes
  // to shard 4 (see ShardPartitionerTest), owned by neither query 0 nor 1.
  const uint32_t lazy_shard = ShardOfQuery(3, kShards);
  ASSERT_EQ(retrainers.shard_retrainer(lazy_shard)->published_version(), 0u)
      << "test premise: shard owning query 3 bootstrapped empty";
  const std::vector<QueryId> context = {3};
  EXPECT_FALSE(engine.Recommend(context, 5).covered);

  retrainers.AppendSessions({AggregatedSession{{3, 4}, 4}});
  // The lazy bootstrap is synchronous: the shard serves immediately.
  EXPECT_GE(retrainers.shard_retrainer(lazy_shard)->published_version(), 1u);
  const Recommendation rec = engine.Recommend(context, 5);
  EXPECT_TRUE(rec.covered);
  ASSERT_FALSE(rec.queries.empty());
  EXPECT_EQ(rec.queries[0].query, 4u);

  // The lazy publish also persisted + re-pinned the manifest.
  auto rebooted = ShardedEngine::BootFromManifest(manifest_path);
  ASSERT_TRUE(rebooted.ok()) << rebooted.status().ToString();
  EXPECT_TRUE((*rebooted)->Recommend(context, 5).covered);
}

// --------------------------------------------------- partial-fleet boots

TEST(ShardedEngineTest, FleetBootsDegradedAroundOneDeadShard) {
  const std::vector<AggregatedSession>& corpus = SharedCorpus().base;
  constexpr size_t kShards = 4;
  const ShardedTrainResult trained =
      TrainSharded(corpus, kShards, /*version=*/2);
  TempDir dir;
  const std::string manifest_path = dir.file("fleet.manifest");
  ASSERT_TRUE(SaveShardedSnapshots(trained.shards,
                                   CompactOptions{.top_k = 10},
                                   manifest_path)
                  .ok());

  // Kill shard 1's blob (truncate it) WITHOUT touching the manifest: the
  // strict boot refuses the whole fleet, the degraded boot serves around
  // the hole.
  const std::string dead_blob = manifest_path + ".shard1";
  ASSERT_TRUE(std::filesystem::exists(dead_blob));
  std::filesystem::resize_file(dead_blob,
                               std::filesystem::file_size(dead_blob) / 2);

  ShardedEngine strict(ShardedEngineOptions{.num_shards = kShards});
  EXPECT_FALSE(strict.LoadAndPublish(manifest_path).ok());
  EXPECT_EQ(strict.shard_versions(), std::vector<uint64_t>(kShards, 0u));

  ShardedEngine engine(ShardedEngineOptions{.num_shards = kShards});
  auto report = engine.LoadAndPublishAvailable(manifest_path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->healthy_shards, kShards - 1);
  ASSERT_EQ(report->shard_status.size(), kShards);
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(report->shard_status[s].ok(), s != 1) << "shard " << s;
  }

  // Healthy shards serve bit-identically to the full compact model; the
  // dead shard's contexts answer uncovered-empty (legacy API) and
  // kUnavailable (deadline-aware API).
  const auto full = BuildUnsharded(corpus, /*version=*/2);
  const auto full_compact =
      CompactSnapshot::FromSnapshot(*full, CompactOptions{.top_k = 10});
  SnapshotScratch scratch;
  size_t healthy_checked = 0;
  size_t dead_checked = 0;
  for (const std::vector<QueryId>& context : CollectContexts(corpus, 300)) {
    const Recommendation got = engine.Recommend(context, 10);
    if (engine.OwningShard(context) == 1) {
      EXPECT_FALSE(got.covered);
      EXPECT_TRUE(got.queries.empty());
      ServeOptions qos;
      qos.deadline = Deadline::After(std::chrono::seconds(30));
      EXPECT_EQ(engine.Recommend(context, 10, qos).status,
                StatusCode::kUnavailable);
      ++dead_checked;
    } else {
      ExpectSameRecommendation(full_compact->Recommend(context, 10, &scratch),
                               got);
      ++healthy_checked;
    }
  }
  EXPECT_GT(healthy_checked, 0u);
  EXPECT_GT(dead_checked, 0u);

  // Healing the blob lets the SAME engine boot the full fleet strictly.
  ASSERT_TRUE(SaveShardedSnapshots(trained.shards,
                                   CompactOptions{.top_k = 10},
                                   manifest_path)
                  .ok());
  ASSERT_TRUE(engine.LoadAndPublish(manifest_path).ok());
  EXPECT_EQ(engine.shard_versions(), std::vector<uint64_t>(kShards, 2u));
}

TEST(ShardedEngineTest, AllDeadBootReturnsTheFirstShardError) {
  const ShardedTrainResult trained = TrainSharded(SharedCorpus().base, 2);
  TempDir dir;
  const std::string manifest_path = dir.file("fleet.manifest");
  ASSERT_TRUE(SaveShardedSnapshots(trained.shards, CompactOptions{},
                                   manifest_path)
                  .ok());
  for (size_t s = 0; s < 2; ++s) {
    std::filesystem::remove(manifest_path + ".shard" + std::to_string(s));
  }
  ShardedEngine engine(ShardedEngineOptions{.num_shards = 2});
  const auto report = engine.LoadAndPublishAvailable(manifest_path);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(engine.shard_versions(), std::vector<uint64_t>(2, 0u));
}

// ------------------------------------------------------------------ stats

TEST(ShardedEngineTest, StatsAggregateAcrossShards) {
  const ShardedTrainResult trained = TrainSharded(SharedCorpus().base, 2);
  ShardedEngine engine(ShardedEngineOptions{.num_shards = 2});
  for (size_t s = 0; s < 2; ++s) engine.PublishShard(s, trained.shards[s]);

  const std::vector<std::vector<QueryId>> contexts =
      CollectContexts(SharedCorpus().base, 64);
  for (size_t i = 0; i < 10; ++i) engine.Recommend(contexts[i], 5);
  engine.RecommendMany(contexts, 5);

  const ShardedStats stats = engine.stats();
  EXPECT_EQ(stats.queries_served, 10u + contexts.size());
  EXPECT_EQ(stats.batches_served, 1u);
  EXPECT_EQ(stats.shard_versions, std::vector<uint64_t>({1u, 1u}));
}

}  // namespace
}  // namespace sqp
