// RecommenderEngine basics: snapshot publish/swap semantics, single-query
// serving parity with the underlying snapshot, and batched RecommendMany
// parity across pool configurations.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "serve/recommender_engine.h"
#include "serve_test_util.h"

namespace sqp {
namespace {

using serve_test::CollectContexts;
using serve_test::ExpectSameRecommendation;
using serve_test::SharedCorpus;

constexpr size_t kVocabularyBound = 1 << 20;

std::shared_ptr<const ModelSnapshot> BuildSnapshot(
    const std::vector<AggregatedSession>& sessions, uint64_t version) {
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = kVocabularyBound;
  MvmmOptions options;
  options.default_max_depth = 5;
  auto built = ModelSnapshot::Build(data, options, version);
  SQP_CHECK(built.ok());
  return built.value();
}

TEST(RecommenderEngineTest, UnpublishedEngineServesEmpty) {
  RecommenderEngine engine(EngineOptions{.num_threads = 2});
  EXPECT_EQ(engine.CurrentSnapshot(), nullptr);
  EXPECT_EQ(engine.current_version(), 0u);

  const std::vector<QueryId> context = {1, 2, 3};
  uint64_t version = 99;
  const Recommendation rec = engine.Recommend(context, 5, &version);
  EXPECT_FALSE(rec.covered);
  EXPECT_TRUE(rec.queries.empty());
  EXPECT_EQ(version, 0u);

  const auto batch = engine.RecommendMany(
      std::vector<std::vector<QueryId>>{{1}, {2}}, 5, &version);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FALSE(batch[0].covered);
  EXPECT_EQ(version, 0u);
}

TEST(RecommenderEngineTest, SingleQueryMatchesSnapshot) {
  const auto snapshot = BuildSnapshot(SharedCorpus().base, 7);
  RecommenderEngine engine(EngineOptions{.num_threads = 2});
  engine.Publish(snapshot);
  EXPECT_EQ(engine.current_version(), 7u);

  SnapshotScratch scratch;
  for (const std::vector<QueryId>& context :
       CollectContexts(SharedCorpus().base, 200)) {
    uint64_t version = 0;
    const Recommendation actual = engine.Recommend(context, 5, &version);
    EXPECT_EQ(version, 7u);
    ExpectSameRecommendation(snapshot->Recommend(context, 5, &scratch),
                             actual);
  }
  EXPECT_GE(engine.stats().queries_served, 200u);
}

TEST(RecommenderEngineTest, BatchedMatchesSingleAcrossPoolConfigs) {
  const auto snapshot = BuildSnapshot(SharedCorpus().base, 3);
  const std::vector<std::vector<QueryId>> contexts =
      CollectContexts(SharedCorpus().base, 300);

  SnapshotScratch scratch;
  std::vector<Recommendation> expected;
  expected.reserve(contexts.size());
  for (const std::vector<QueryId>& context : contexts) {
    expected.push_back(snapshot->Recommend(context, 5, &scratch));
  }

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    RecommenderEngine engine(EngineOptions{.num_threads = threads});
    engine.Publish(snapshot);
    uint64_t version = 0;
    const std::vector<Recommendation> actual =
        engine.RecommendMany(contexts, 5, &version);
    EXPECT_EQ(version, 3u);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < actual.size(); ++i) {
      ExpectSameRecommendation(expected[i], actual[i]);
    }
  }

  // Below the fan-out threshold the batch runs inline; results are the same.
  RecommenderEngine engine(
      EngineOptions{.num_threads = 4, .min_batch_fanout = 1 << 20});
  engine.Publish(snapshot);
  const std::vector<Recommendation> inline_results =
      engine.RecommendMany(contexts, 5);
  for (size_t i = 0; i < inline_results.size(); ++i) {
    ExpectSameRecommendation(expected[i], inline_results[i]);
  }
}

TEST(RecommenderEngineTest, PublishSwapsAtomicallyBetweenVersions) {
  const auto v1 = BuildSnapshot(SharedCorpus().base, 1);
  std::vector<AggregatedSession> all = SharedCorpus().base;
  all.insert(all.end(), SharedCorpus().drifted.begin(),
             SharedCorpus().drifted.end());
  const auto v2 = BuildSnapshot(all, 2);

  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  engine.Publish(v1);
  EXPECT_EQ(engine.current_version(), 1u);
  EXPECT_EQ(engine.CurrentSnapshot().get(), v1.get());
  engine.Publish(v2);
  EXPECT_EQ(engine.current_version(), 2u);
  EXPECT_EQ(engine.CurrentSnapshot().get(), v2.get());
  EXPECT_EQ(engine.stats().snapshots_published, 2u);

  // The old snapshot object stays valid for holders of the pointer.
  SnapshotScratch scratch;
  const std::vector<QueryId> context = CollectContexts(all, 1)[0];
  EXPECT_NO_FATAL_FAILURE(v1->Recommend(context, 5, &scratch));
}

TEST(RecommenderEngineTest, EmptyBatchIsFine) {
  RecommenderEngine engine(EngineOptions{.num_threads = 2});
  engine.Publish(BuildSnapshot(SharedCorpus().base, 1));
  const std::vector<std::vector<QueryId>> none;
  EXPECT_TRUE(engine.RecommendMany(none, 5).empty());
}

}  // namespace
}  // namespace sqp
