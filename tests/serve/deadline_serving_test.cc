// Deadline-aware serving: the acceptance property is that with no
// overload the QoS paths are bit-identical to the legacy API on both
// engines (unbounded AND generously-bounded deadlines), and that under
// pressure the engine sheds whole requests, cuts batches mid-flight with
// explicit per-item statuses, and degrades top_n — never deadlocking and
// never touching deadline-free traffic.

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/recommender_engine.h"
#include "serve/sharded_engine.h"
#include "serve_test_util.h"

namespace sqp {
namespace {

using serve_test::CollectContexts;
using serve_test::ExpectSameRecommendation;
using serve_test::SharedCorpus;

constexpr size_t kVocabularyBound = 1 << 20;

std::shared_ptr<const ModelSnapshot> BuildSnapshot(
    const std::vector<AggregatedSession>& sessions, uint64_t version) {
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = kVocabularyBound;
  MvmmOptions options;
  options.default_max_depth = 5;
  auto built = ModelSnapshot::Build(data, options, version);
  SQP_CHECK(built.ok());
  return built.value();
}

Deadline Generous() { return Deadline::After(std::chrono::seconds(30)); }

// ------------------------------------------------- no-overload equivalence

TEST(DeadlineServingTest, EngineQosMatchesLegacyWithoutOverload) {
  const auto snapshot = BuildSnapshot(SharedCorpus().base, 7);
  RecommenderEngine engine(EngineOptions{.num_threads = 2});
  engine.Publish(snapshot);

  const std::vector<std::vector<QueryId>> contexts =
      CollectContexts(SharedCorpus().base, 300);
  uint64_t version = 0;
  const std::vector<Recommendation> legacy =
      engine.RecommendMany(contexts, 5, &version);
  ASSERT_EQ(version, 7u);

  // Unbounded deadline (the legacy contract spelled out) and a generous
  // bounded one, on both lanes: same answers, same order, same scores.
  for (const Deadline& deadline : {Deadline::None(), Generous()}) {
    for (const QosLane lane : {QosLane::kInteractive, QosLane::kBulk}) {
      ServeOptions options;
      options.deadline = deadline;
      options.lane = lane;
      const BatchResult batch = engine.RecommendMany(contexts, 5, options);
      ASSERT_TRUE(batch.admission.ok()) << batch.admission.ToString();
      EXPECT_EQ(batch.served, contexts.size());
      EXPECT_EQ(batch.served_version, 7u);
      EXPECT_EQ(batch.effective_top_n, 5u);
      EXPECT_FALSE(batch.degraded);
      ASSERT_EQ(batch.results.size(), contexts.size());
      ASSERT_EQ(batch.statuses.size(), contexts.size());
      for (size_t i = 0; i < contexts.size(); ++i) {
        EXPECT_EQ(batch.statuses[i], StatusCode::kOk);
        ExpectSameRecommendation(legacy[i], batch.results[i]);
      }
    }
  }

  // Single-query parity.
  for (size_t i = 0; i < 50; ++i) {
    ServeOptions options;
    options.deadline = Generous();
    const ServeResult served = engine.Recommend(contexts[i], 5, options);
    EXPECT_EQ(served.status, StatusCode::kOk);
    EXPECT_EQ(served.served_version, 7u);
    EXPECT_FALSE(served.degraded);
    ExpectSameRecommendation(legacy[i], served.recommendation);
  }
}

TEST(DeadlineServingTest, ShardedQosMatchesLegacyWithoutOverload) {
  const std::vector<AggregatedSession>& corpus = SharedCorpus().base;
  ShardedTrainOptions train;
  train.model.default_max_depth = 5;
  train.num_shards = 4;
  train.vocabulary_size = kVocabularyBound;
  auto trained = TrainShardedSnapshots(corpus, train);
  ASSERT_TRUE(trained.ok());

  ShardedEngine engine(
      ShardedEngineOptions{.num_shards = 4, .num_threads = 2});
  for (size_t s = 0; s < 4; ++s) {
    engine.PublishShard(s, trained->shards[s]);
  }

  const std::vector<std::vector<QueryId>> owned =
      CollectContexts(corpus, 300);
  std::vector<ContextRef> contexts(owned.begin(), owned.end());
  const std::vector<Recommendation> legacy =
      engine.RecommendMany(owned, 5);

  for (const Deadline& deadline : {Deadline::None(), Generous()}) {
    ServeOptions options;
    options.deadline = deadline;
    const BatchResult batch = engine.RecommendMany(
        std::span<const ContextRef>(contexts), 5, options);
    ASSERT_TRUE(batch.admission.ok()) << batch.admission.ToString();
    EXPECT_EQ(batch.served, owned.size());
    ASSERT_EQ(batch.results.size(), owned.size());
    for (size_t i = 0; i < owned.size(); ++i) {
      EXPECT_EQ(batch.statuses[i], StatusCode::kOk);
      ExpectSameRecommendation(legacy[i], batch.results[i]);
    }
  }

  for (size_t i = 0; i < 50; ++i) {
    ServeOptions options;
    options.deadline = Generous();
    const ServeResult served = engine.Recommend(contexts[i], 5, options);
    EXPECT_EQ(served.status, StatusCode::kOk);
    ExpectSameRecommendation(legacy[i], served.recommendation);
  }
}

// ----------------------------------------------------------- shed paths

TEST(DeadlineServingTest, EngineShedsRequestsThatArriveExpired) {
  RecommenderEngine engine(EngineOptions{.num_threads = 2});
  engine.Publish(BuildSnapshot(SharedCorpus().base, 1));
  const std::vector<std::vector<QueryId>> contexts =
      CollectContexts(SharedCorpus().base, 40);

  ServeOptions options;
  options.deadline =
      Deadline::At(Deadline::Clock::now() - std::chrono::milliseconds(1));
  const BatchResult batch = engine.RecommendMany(contexts, 5, options);
  EXPECT_EQ(batch.admission.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(batch.served, 0u);
  ASSERT_EQ(batch.statuses.size(), contexts.size());
  for (const StatusCode code : batch.statuses) {
    EXPECT_EQ(code, StatusCode::kDeadlineExceeded);
  }

  const ServeResult single = engine.Recommend(contexts[0], 5, options);
  EXPECT_EQ(single.status, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(single.recommendation.queries.empty());

  const AdmissionStats stats = engine.stats().admission;
  EXPECT_GE(stats.lane(QosLane::kInteractive).shed_deadline, 2u);
  // The legacy path is oblivious: same engine, same instant, full answer.
  EXPECT_EQ(engine.RecommendMany(contexts, 5).size(), contexts.size());
}

TEST(DeadlineServingTest, UnpublishedEnginesReportUnavailable) {
  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  ServeOptions options;
  options.deadline = Generous();
  const std::vector<QueryId> context = {1, 2, 3};
  const ServeResult single = engine.Recommend(context, 5, options);
  EXPECT_EQ(single.status, StatusCode::kUnavailable);
  EXPECT_FALSE(single.recommendation.covered);

  const BatchResult batch = engine.RecommendMany(
      std::vector<std::vector<QueryId>>{{1}, {2}}, 5, options);
  ASSERT_TRUE(batch.admission.ok());
  EXPECT_EQ(batch.served, 0u);
  for (const StatusCode code : batch.statuses) {
    EXPECT_EQ(code, StatusCode::kUnavailable);
  }
}

TEST(DeadlineServingTest, ShardWithNoSnapshotIsUnavailableOthersServe) {
  const std::vector<AggregatedSession>& corpus = SharedCorpus().base;
  ShardedTrainOptions train;
  train.model.default_max_depth = 5;
  train.num_shards = 4;
  train.vocabulary_size = kVocabularyBound;
  auto trained = TrainShardedSnapshots(corpus, train);
  ASSERT_TRUE(trained.ok());

  ShardedEngine engine(
      ShardedEngineOptions{.num_shards = 4, .num_threads = 2});
  for (size_t s = 1; s < 4; ++s) {
    engine.PublishShard(s, trained->shards[s]);
  }

  const std::vector<std::vector<QueryId>> owned =
      CollectContexts(corpus, 200);
  std::vector<ContextRef> contexts(owned.begin(), owned.end());
  ServeOptions options;
  options.deadline = Generous();
  const BatchResult batch = engine.RecommendMany(
      std::span<const ContextRef>(contexts), 5, options);
  ASSERT_TRUE(batch.admission.ok());
  ASSERT_EQ(batch.statuses.size(), owned.size());

  size_t unavailable = 0;
  for (size_t i = 0; i < owned.size(); ++i) {
    if (engine.OwningShard(contexts[i]) == 0) {
      EXPECT_EQ(batch.statuses[i], StatusCode::kUnavailable);
      EXPECT_FALSE(batch.results[i].covered);
      ++unavailable;
    } else {
      EXPECT_EQ(batch.statuses[i], StatusCode::kOk);
    }
  }
  EXPECT_GT(unavailable, 0u);
  EXPECT_EQ(batch.served, owned.size() - unavailable);

  // Single-query routing to the dead shard reports the same.
  for (size_t i = 0; i < owned.size(); ++i) {
    if (engine.OwningShard(contexts[i]) == 0) {
      const ServeResult served = engine.Recommend(contexts[i], 5, options);
      EXPECT_EQ(served.status, StatusCode::kUnavailable);
      break;
    }
  }
}

// ------------------------------------------------------ mid-batch expiry

TEST(DeadlineServingTest, BatchIsCutMidFlightWhenTheDeadlineExpires) {
  RecommenderEngine engine(EngineOptions{.num_threads = 1});
  engine.Publish(BuildSnapshot(SharedCorpus().base, 1));

  // ~240k items: far more work than 25 ms even on the fastest box, so the
  // deadline lands mid-batch. Build the ContextRef view *before* starting
  // the clock — on a loaded CI box the O(n) setup alone can otherwise eat
  // the whole budget and the request is shed on arrival instead of cut.
  const std::vector<std::vector<QueryId>> seed =
      CollectContexts(SharedCorpus().base, 4000);
  std::vector<std::vector<QueryId>> contexts;
  contexts.reserve(seed.size() * 60);
  for (int rep = 0; rep < 60; ++rep) {
    contexts.insert(contexts.end(), seed.begin(), seed.end());
  }
  std::vector<ContextRef> refs;
  refs.reserve(contexts.size());
  for (const auto& context : contexts) refs.emplace_back(context);

  ServeOptions options;
  options.deadline = Deadline::After(std::chrono::milliseconds(25));
  const BatchResult batch = engine.RecommendMany(
      std::span<const ContextRef>(refs), 5, options);
  ASSERT_TRUE(batch.admission.ok()) << batch.admission.ToString();
  EXPECT_GT(batch.served, 0u);          // made real progress...
  EXPECT_LT(batch.served, contexts.size());  // ...but not the whole batch
  ASSERT_EQ(batch.statuses.size(), contexts.size());
  EXPECT_EQ(batch.statuses.back(), StatusCode::kDeadlineExceeded);

  // Served prefix is exact; expired suffix is explicit and empty.
  const std::vector<Recommendation> legacy = engine.RecommendMany(seed, 5);
  size_t checked = 0;
  for (size_t i = 0; i < contexts.size(); ++i) {
    if (batch.statuses[i] == StatusCode::kOk) {
      ExpectSameRecommendation(legacy[i % seed.size()], batch.results[i]);
      if (++checked >= 64) break;  // spot-check; the full loop is O(n^2) logs
    } else {
      EXPECT_EQ(batch.statuses[i], StatusCode::kDeadlineExceeded);
      EXPECT_TRUE(batch.results[i].queries.empty());
    }
  }
  EXPECT_GT(checked, 0u);

  const AdmissionStats stats = engine.stats().admission;
  EXPECT_GT(stats.lane(QosLane::kInteractive).expired_items, 0u);
}

// ------------------------------------------- convoy fairness (regression)

// The pre-QoS engine serialized batches on a plain mutex: a convoy of
// large batches could starve small ones indefinitely. Now every caller
// either holds the slot or waits in a bounded lane; all of them finish,
// and interactive batches are never shed by deadline-free bulk traffic.
TEST(DeadlineServingTest, ConcurrentBatchCallersAllMakeProgress) {
  const auto snapshot = BuildSnapshot(SharedCorpus().base, 1);
  RecommenderEngine engine(EngineOptions{.num_threads = 4});
  engine.Publish(snapshot);

  const std::vector<std::vector<QueryId>> seed =
      CollectContexts(SharedCorpus().base, 2048);
  const std::vector<std::vector<QueryId>> small(seed.begin(),
                                                seed.begin() + 40);
  const std::vector<Recommendation> expected_small =
      engine.RecommendMany(small, 5);

  std::atomic<size_t> bulk_done{0};
  std::atomic<size_t> interactive_done{0};
  std::atomic<bool> interactive_clean{true};

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        const std::vector<Recommendation> got =
            engine.RecommendMany(seed, 5);
        if (got.size() == seed.size()) bulk_done.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 15; ++round) {
        ServeOptions options;
        options.deadline = Generous();
        options.lane = QosLane::kInteractive;
        const BatchResult got = engine.RecommendMany(small, 5, options);
        if (!got.admission.ok() || got.served != small.size()) {
          interactive_clean.store(false);
          continue;
        }
        for (size_t i = 0; i < small.size(); ++i) {
          if (!serve_test::SameRecommendation(expected_small[i],
                                              got.results[i])) {
            interactive_clean.store(false);
          }
        }
        interactive_done.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(bulk_done.load(), 9u);
  EXPECT_EQ(interactive_done.load(), 45u);
  EXPECT_TRUE(interactive_clean.load());
}

// -------------------------------------------------- degrade under pressure

TEST(DeadlineServingTest, BoundedRequestsDegradeTopNUnderPressure) {
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  engine_options.admission.interactive_capacity = 1;
  engine_options.admission.bulk_capacity = 1;
  // Threshold = ceil(0.5 * 2) = 1 waiting job triggers the ladder.
  engine_options.admission.degrade_pressure = 0.5;
  RecommenderEngine engine(engine_options);
  engine.Publish(BuildSnapshot(SharedCorpus().base, 1));

  const std::vector<std::vector<QueryId>> seed =
      CollectContexts(SharedCorpus().base, 4000);
  std::vector<std::vector<QueryId>> huge;
  huge.reserve(seed.size() * 25);
  for (int rep = 0; rep < 25; ++rep) {
    huge.insert(huge.end(), seed.begin(), seed.end());
  }
  const std::vector<std::vector<QueryId>> small(seed.begin(),
                                                seed.begin() + 4);

  // A holds the batch slot for the duration of a ~100k-item batch; B
  // queues behind it (deadline-free: it just waits). While B waits, a
  // bounded request must see the degrade ladder.
  std::atomic<int> giants_done{0};
  std::thread holder([&] {
    engine.RecommendMany(huge, 10);
    giants_done.fetch_add(1);
  });
  std::thread waiter([&] {
    engine.RecommendMany(huge, 10);
    giants_done.fetch_add(1);
  });

  bool saw_degraded = false;
  while (!saw_degraded && giants_done.load() < 2) {
    ServeOptions options;
    options.deadline = Generous();
    // 4 contexts < min_batch_fanout: runs inline, never queues, so this
    // probe can't deadlock no matter what the slot is doing.
    const BatchResult probe = engine.RecommendMany(small, 10, options);
    if (probe.degraded) {
      EXPECT_EQ(probe.effective_top_n, 5u);
      for (size_t i = 0; i < small.size(); ++i) {
        EXPECT_EQ(probe.statuses[i], StatusCode::kOk);
        EXPECT_LE(probe.results[i].queries.size(), 5u);
      }
      saw_degraded = true;
    }
  }
  holder.join();
  waiter.join();

  EXPECT_TRUE(saw_degraded)
      << "no degraded probe observed while a batch was queued";
  EXPECT_GT(engine.stats().admission.lane(QosLane::kInteractive).degraded,
            0u);

  // Pressure gone: the same probe serves the full top_n again.
  ServeOptions options;
  options.deadline = Generous();
  const BatchResult after = engine.RecommendMany(small, 10, options);
  EXPECT_FALSE(after.degraded);
  EXPECT_EQ(after.effective_top_n, 10u);
}

}  // namespace
}  // namespace sqp
