// Property suite pinning the dense-accumulator SIMD serving walk to the
// pre-SIMD reference: for every compiled-in dispatch level, the compact
// snapshot's recommendations (scores, order, tie-breaks, covered flags)
// must be bit-identical to the legacy push_back + sort-merge path — across
// synthetic corpora, narrow and wide id pools, owned and mapped storage,
// and reused scratch (the generation-reset property end to end).

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/compact_snapshot.h"
#include "core/serve_kernels.h"
#include "core/snapshot_io.h"
#include "serve_test_util.h"

namespace sqp {
namespace {

using serve_test::CollectContexts;
using serve_test::SameRecommendation;
using serve_test::SharedCorpus;

constexpr size_t kVocabularyBound = 1 << 20;

/// Pins the dispatch level for one scope.
class ActiveLevelGuard {
 public:
  explicit ActiveLevelGuard(kernels::SimdLevel level)
      : previous_(kernels::SetActiveLevel(level)) {}
  ~ActiveLevelGuard() { kernels::SetActiveLevel(previous_); }

 private:
  kernels::SimdLevel previous_;
};

/// Routes the compact walk through the legacy sparse merge for one scope.
class ForceSparseGuard {
 public:
  ForceSparseGuard() {
    internal::ForceSparseMergeForTest().store(true,
                                              std::memory_order_relaxed);
  }
  ~ForceSparseGuard() {
    internal::ForceSparseMergeForTest().store(false,
                                              std::memory_order_relaxed);
  }
};

std::vector<kernels::SimdLevel> SupportedLevels() {
  std::vector<kernels::SimdLevel> levels;
  for (int i = 0; i < kernels::kNumSimdLevels; ++i) {
    const auto level = static_cast<kernels::SimdLevel>(i);
    if (kernels::LevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

std::shared_ptr<const ModelSnapshot> BuildFull(
    const std::vector<AggregatedSession>& sessions, uint64_t version = 1) {
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = kVocabularyBound;
  MvmmOptions options;
  options.default_max_depth = 5;
  auto built = ModelSnapshot::Build(data, options, version);
  SQP_CHECK(built.ok());
  return built.value();
}

const std::shared_ptr<const ModelSnapshot>& SharedFull() {
  static const auto* snapshot = new std::shared_ptr<const ModelSnapshot>(
      BuildFull(SharedCorpus().base));
  return *snapshot;
}

std::vector<std::vector<QueryId>> TestContexts() {
  std::vector<std::vector<QueryId>> contexts =
      CollectContexts(SharedCorpus().base, 500);
  const std::vector<std::vector<QueryId>> drifted =
      CollectContexts(SharedCorpus().drifted, 150);
  contexts.insert(contexts.end(), drifted.begin(), drifted.end());
  return contexts;
}

/// The sparse-path reference answers for `contexts` (dispatch-independent:
/// the legacy path never touches a kernel).
std::vector<Recommendation> SparseReference(
    const CompactServingBase& snapshot,
    const std::vector<std::vector<QueryId>>& contexts, size_t top_n) {
  ForceSparseGuard sparse;
  SnapshotScratch scratch;
  std::vector<Recommendation> out;
  out.reserve(contexts.size());
  for (const std::vector<QueryId>& context : contexts) {
    out.push_back(snapshot.Recommend(context, top_n, &scratch));
  }
  return out;
}

/// Asserts the dense walk reproduces `reference` bit-for-bit at every
/// supported dispatch level, reusing one scratch across all contexts (so a
/// stale accumulator generation would corrupt a later answer and fail).
void ExpectDenseMatchesReferenceAtEveryLevel(
    const CompactServingBase& snapshot,
    const std::vector<std::vector<QueryId>>& contexts, size_t top_n,
    const std::vector<Recommendation>& reference) {
  for (const kernels::SimdLevel level : SupportedLevels()) {
    ActiveLevelGuard guard(level);
    SnapshotScratch scratch;
    size_t mismatches = 0;
    for (size_t i = 0; i < contexts.size(); ++i) {
      const Recommendation dense =
          snapshot.Recommend(contexts[i], top_n, &scratch);
      if (!SameRecommendation(reference[i], dense)) ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u)
        << "dense walk diverged from the sparse reference at level "
        << kernels::SimdLevelName(level);
  }
}

TEST(KernelEquivalenceTest, DenseWalkMatchesSparseReferenceNarrowPools) {
  // The synthetic corpus stays within 16-bit ids, so this exercises the
  // narrow (u16) kernels, with truncation (top_k=10) and without.
  for (const size_t top_k : {size_t{10}, size_t{0}}) {
    const auto compact = CompactSnapshot::FromSnapshot(
        *SharedFull(), CompactOptions{.top_k = top_k});
    const std::vector<std::vector<QueryId>> contexts = TestContexts();
    for (const size_t top_n : {size_t{1}, size_t{10}}) {
      const std::vector<Recommendation> reference =
          SparseReference(*compact, contexts, top_n);
      ExpectDenseMatchesReferenceAtEveryLevel(*compact, contexts, top_n,
                                              reference);
    }
  }
}

TEST(KernelEquivalenceTest, DenseWalkMatchesFullModelBitExactly) {
  // Transitivity check against the original serving arithmetic: with
  // unbounded K and 16-bit-exact counts the compact walk reproduces the
  // full ModelSnapshot bit-for-bit — and therefore so must the dense walk
  // at every dispatch level.
  const auto compact =
      CompactSnapshot::FromSnapshot(*SharedFull(), CompactOptions{.top_k = 0});
  const std::vector<std::vector<QueryId>> contexts = TestContexts();
  SnapshotScratch scratch;
  std::vector<Recommendation> reference;
  reference.reserve(contexts.size());
  for (const std::vector<QueryId>& context : contexts) {
    reference.push_back(SharedFull()->Recommend(context, 10, &scratch));
  }
  ExpectDenseMatchesReferenceAtEveryLevel(*compact, contexts, 10, reference);
}

TEST(KernelEquivalenceTest, DenseWalkMatchesSparseReferenceWidePools) {
  // Ids beyond 65535 force the wide (u32) pools — the u32 kernel slot.
  const QueryId base = 70000;
  const std::vector<AggregatedSession> sessions = {
      {{base, base + 1, base + 2}, 5},
      {{base + 1, base + 3}, 3},
      {{base, base + 1, base + 3}, 2},
      {{base + 2, base + 1, base + 2}, 4},
      {{base + 1, base + 2, base + 4}, 6},
      {{base + 3, base, base + 1}, 1}};
  const auto full = BuildFull(sessions, /*version=*/7);
  const auto compact =
      CompactSnapshot::FromSnapshot(*full, CompactOptions{.top_k = 0});
  std::vector<std::vector<QueryId>> contexts;
  for (const AggregatedSession& session : sessions) {
    for (size_t len = 1; len <= session.queries.size(); ++len) {
      contexts.emplace_back(session.queries.begin(),
                            session.queries.begin() +
                                static_cast<ptrdiff_t>(len));
    }
  }
  const std::vector<Recommendation> reference =
      SparseReference(*compact, contexts, 5);
  ExpectDenseMatchesReferenceAtEveryLevel(*compact, contexts, 5, reference);
}

TEST(KernelEquivalenceTest, MappedSnapshotServesDenseWalkIdentically) {
  // The zero-copy replica runs the same dense walk off mapped storage;
  // its bind-time derivations (FinalizeDerived) must land it on the same
  // answers as the owned snapshot.
  const auto compact =
      CompactSnapshot::FromSnapshot(*SharedFull(), CompactOptions{.top_k = 10});
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("sqp_kernel_equiv_" + std::to_string(::getpid()) + ".blob"))
          .string();
  ASSERT_TRUE(SaveCompactSnapshot(*compact, path).ok());
  const auto mapped = MapCompactSnapshot(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  const std::vector<std::vector<QueryId>> contexts = TestContexts();
  const std::vector<Recommendation> reference =
      SparseReference(*compact, contexts, 10);
  ExpectDenseMatchesReferenceAtEveryLevel(**mapped, contexts, 10, reference);

  std::error_code ec;
  std::filesystem::remove(path, ec);
}

TEST(KernelEquivalenceTest, ReusedScratchNeverLeaksAcrossRequests) {
  // Serve the same context list twice through one scratch, interleaved
  // with unrelated contexts, and require answer stability — a stale
  // accumulator generation or un-reset touched list would break this.
  const auto compact =
      CompactSnapshot::FromSnapshot(*SharedFull(), CompactOptions{.top_k = 10});
  const std::vector<std::vector<QueryId>> contexts = TestContexts();
  SnapshotScratch reused;
  std::vector<Recommendation> first;
  first.reserve(contexts.size());
  for (const std::vector<QueryId>& context : contexts) {
    first.push_back(compact->Recommend(context, 10, &reused));
  }
  size_t mismatches = 0;
  for (size_t i = contexts.size(); i-- > 0;) {  // reversed: different
    const Recommendation again =                // interleaving of slots
        compact->Recommend(contexts[i], 10, &reused);
    if (!SameRecommendation(first[i], again)) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);
}

}  // namespace
}  // namespace sqp
