// Figure 8: NDCG@1/3/5 versus context length for the pair-wise baselines
// (Adjacency, Co-occurrence) against the sequence-wise methods (N-gram,
// MVMM).

#include <iostream>

#include "eval/evaluator.h"
#include "eval/table_printer.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness,
              "Figure 8: accuracy of pair-wise vs sequence-wise methods",
              "sequence methods beat pair-wise by a wide margin at every "
              "position; Adjacency > Co-occurrence; pair-wise accuracy "
              "declines with context length");

  const std::vector<PredictionModel*> models = {
      harness.Adjacency(), harness.Cooccurrence(), harness.Ngram(),
      harness.Mvmm()};
  AccuracyOptions options;
  options.ndcg_positions = {1, 3, 5};
  options.max_context_length = 4;

  for (size_t position : options.ndcg_positions) {
    std::cout << "\nNDCG@" << position << " by context length\n";
    TablePrinter table({"model", "len 1", "len 2", "len 3", "len 4",
                        "overall"});
    for (PredictionModel* model : models) {
      const ModelAccuracy acc = EvaluateAccuracy(*model, harness.truth(),
                                                 options);
      std::vector<std::string> row{std::string(model->Name())};
      for (size_t len = 1; len <= 4; ++len) {
        const auto& by_length = acc.ndcg.at(position);
        row.push_back(by_length.count(len) ? FormatDouble(by_length.at(len))
                                           : "-");
      }
      row.push_back(FormatDouble(acc.ndcg_overall.at(position)));
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
  }

  // Headline check: the sequence-wise advantage ("up to 40% higher
  // accuracy ... across all context lengths"). Report the largest
  // per-(position, length) relative gain of MVMM over Adjacency.
  AccuracyOptions overall;
  const ModelAccuracy mvmm =
      EvaluateAccuracy(*harness.Mvmm(), harness.truth(), overall);
  const ModelAccuracy adjacency =
      EvaluateAccuracy(*harness.Adjacency(), harness.truth(), overall);
  double best_gain = 0.0;
  size_t best_position = 0;
  size_t best_length = 0;
  for (const auto& [position, by_length] : mvmm.ndcg) {
    for (const auto& [len, value] : by_length) {
      if (adjacency.ndcg.count(position) == 0 ||
          adjacency.ndcg.at(position).count(len) == 0) {
        continue;
      }
      const double base = adjacency.ndcg.at(position).at(len);
      if (base <= 0.0) continue;
      const double gain = value / base - 1.0;
      if (gain > best_gain) {
        best_gain = gain;
        best_position = position;
        best_length = len;
      }
    }
  }
  std::cout << "\nLargest MVMM gain over Adjacency: +"
            << FormatPercent(best_gain, 1) << " at NDCG@" << best_position
            << ", context length " << best_length
            << " (paper: up to ~40%)\n";
  return 0;
}
