// Closed-loop serving bench + self-check: the cost of the feedback path
// (log append ns/record, exploration rerank ns/call, retrain-from-
// feedback wall time) and the two hard correctness bars the loop rides
// on, enforced by exit code so CI fails even before the JSON gate runs:
//
//  1. closed_loop_equivalence — serving with a ServeOptions::feedback
//     hook whose exploration is disabled (no explorer, or epsilon 0) is
//     BIT-identical (query ids AND score bits) to serving with no hook,
//     on both the single engine and the sharded fleet.
//  2. consume_equivalence — Retrainer::ConsumeFeedback(log) publishes a
//     snapshot bit-identical to AppendSessions of the same sessions
//     appended directly.
//
// Emits BENCH_feedback.json (see bench/README.md); gated in
// bench/baselines.json with equal >= 1 (zero-margin) plus generous
// nanosecond bounds on the mechanical costs.

#include <bit>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "harness.h"
#include "serve/explorer.h"
#include "serve/feedback.h"
#include "serve/recommender_engine.h"
#include "serve/retrainer.h"
#include "serve/sharded_engine.h"
#include "util/timer.h"

namespace {

using namespace sqp;
using sqp::bench::Harness;

struct Measurement {
  std::string name;
  std::string detail;
  double value = 0.0;
  std::string metric;  // JSON key the value is reported under
};

/// Covered test contexts (length <= 5).
std::vector<std::vector<QueryId>> Contexts(const Harness& harness,
                                           size_t limit) {
  std::vector<std::vector<QueryId>> out;
  for (const auto& entry : harness.truth()) {
    if (entry.context.size() <= 5) out.push_back(entry.context);
    if (out.size() >= limit) break;
  }
  return out;
}

bool BitIdentical(const Recommendation& a, const Recommendation& b) {
  if (a.covered != b.covered) return false;
  if (a.queries.size() != b.queries.size()) return false;
  for (size_t i = 0; i < a.queries.size(); ++i) {
    if (a.queries[i].query != b.queries[i].query) return false;
    if (std::bit_cast<uint64_t>(a.queries[i].score) !=
        std::bit_cast<uint64_t>(b.queries[i].score)) {
      return false;
    }
  }
  return true;
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() /
              ("sqp_bench_feedback_" + tag)) {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

void WriteJson(const std::vector<Measurement>& measurements) {
  std::FILE* out = std::fopen("BENCH_feedback.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_feedback.json\n");
    return;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(out,
                 "  {\"name\": \"%s\", \"detail\": \"%s\", \"%s\": %.3f}%s\n",
                 m.name.c_str(), m.detail.c_str(), m.metric.c_str(), m.value,
                 i + 1 == measurements.size() ? "" : ",");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("JSON results written to BENCH_feedback.json\n");
}

}  // namespace

int main() {
  Harness harness;
  sqp::bench::PrintBanner(
      harness, "closed-loop serving (feedback log + exploration + retrain)",
      "exploration-disabled serving is bit-identical to pre-feedback "
      "serving; ConsumeFeedback equals direct appends; log/rerank costs "
      "stay in the serving-hot-path class");

  MvmmOptions model_options;
  model_options.default_max_depth = harness.config().vmm_max_depth;
  auto built = ModelSnapshot::Build(harness.training_data(), model_options, 1);
  SQP_CHECK(built.ok());
  const std::shared_ptr<const ModelSnapshot> model = built.value();
  const std::vector<std::vector<QueryId>> contexts = Contexts(harness, 2048);
  SQP_CHECK(!contexts.empty());

  std::vector<Measurement> measurements;
  bool all_ok = true;

  // ---------------------------------------------------------------------
  // Bar 1: exploration-disabled hook serving is bit-identical, both
  // engines, single and batched paths.
  {
    TempDir dir("equiv");
    auto log = FeedbackLog::Open({.dir = dir.str()});
    SQP_CHECK(log.ok());
    const Explorer eps0(
        {.policy = ExplorePolicy::kEpsilonGreedy, .param = 0.0, .seed = 1});
    FeedbackHook log_only;
    log_only.log = log->get();
    FeedbackHook eps0_hook;
    eps0_hook.log = log->get();
    eps0_hook.explorer = &eps0;

    RecommenderEngine single(EngineOptions{.num_threads = 1});
    single.Publish(model);
    ShardedEngine sharded(ShardedEngineOptions{.num_shards = 4});
    {
      // Each engine is compared against itself (hooked vs plain), so the
      // fleet just needs *a* corpus; bootstrap then let the set go.
      ShardedRetrainerSet retrainers(&sharded, RetrainerOptions{
          .model = model_options,
          .vocabulary_size = harness.training_data().vocabulary_size});
      SQP_CHECK_OK(retrainers.Bootstrap(harness.train()));
    }

    size_t mismatches_single = 0;
    size_t mismatches_sharded = 0;
    for (const std::vector<QueryId>& context : contexts) {
      const ContextRef ref(context.data(), context.size());
      const ServeResult plain = single.Recommend(ref, 5, ServeOptions{});
      const ServeResult sharded_plain =
          sharded.Recommend(ref, 5, ServeOptions{});
      for (const FeedbackHook* hook : {&log_only, &eps0_hook}) {
        ServeOptions options;
        options.feedback = hook;
        if (!BitIdentical(plain.recommendation,
                          single.Recommend(ref, 5, options).recommendation)) {
          ++mismatches_single;
        }
        if (!BitIdentical(
                sharded_plain.recommendation,
                sharded.Recommend(ref, 5, options).recommendation)) {
          ++mismatches_sharded;
        }
      }
    }
    const bool single_ok = mismatches_single == 0;
    const bool sharded_ok = mismatches_sharded == 0;
    all_ok = all_ok && single_ok && sharded_ok;
    std::printf("closed_loop_equivalence single:  %s (%zu contexts)\n",
                single_ok ? "bit-identical" : "MISMATCH",
                contexts.size());
    std::printf("closed_loop_equivalence sharded: %s (%zu contexts)\n",
                sharded_ok ? "bit-identical" : "MISMATCH",
                contexts.size());
    measurements.push_back({"closed_loop_equivalence", "single",
                            single_ok ? 1.0 : 0.0, "equal"});
    measurements.push_back({"closed_loop_equivalence", "sharded",
                            sharded_ok ? 1.0 : 0.0, "equal"});
  }

  // ---------------------------------------------------------------------
  // Cost 1: feedback log append, ns/record on the serving thread.
  {
    TempDir dir("write");
    auto log = FeedbackLog::Open({.dir = dir.str()});
    SQP_CHECK(log.ok());
    FeedbackRecord record;
    record.snapshot_version = 1;
    record.context = {1, 2, 3};
    record.served = {{10, 0.5, 0.9}, {11, 0.3, 0.05}, {12, 0.1, 0.03},
                     {13, 0.05, 0.01}, {14, 0.05, 0.01}};
    const size_t rounds = 20000;
    WallTimer timer;
    for (size_t i = 0; i < rounds; ++i) {
      record.record_id = (*log)->NextRecordId();
      SQP_CHECK_OK((*log)->AppendImpression(record));
    }
    const double ns = timer.ElapsedSeconds() * 1e9 / rounds;
    std::printf("feedback_log_write: %.0f ns/record (%zu records)\n", ns,
                rounds);
    measurements.push_back(
        {"feedback_log_write", "5-item impression", ns, "write_ns"});
  }

  // ---------------------------------------------------------------------
  // Cost 2: exploration rerank, ns/call (epsilon 0.1 over 5 items).
  {
    const Explorer explorer(
        {.policy = ExplorePolicy::kEpsilonGreedy, .param = 0.1, .seed = 7});
    std::vector<ScoredQuery> base = {
        {10, 0.40}, {11, 0.25}, {12, 0.20}, {13, 0.10}, {14, 0.05}};
    std::vector<ScoredQuery> list;
    std::vector<double> propensities;
    const size_t rounds = 200000;
    WallTimer timer;
    for (size_t i = 1; i <= rounds; ++i) {
      list = base;
      explorer.Rerank(i, &list, &propensities);
    }
    const double ns = timer.ElapsedSeconds() * 1e9 / rounds;
    std::printf("rerank: %.0f ns/call (epsilon 0.1, 5 items)\n", ns);
    measurements.push_back(
        {"rerank", "epsilon 0.1 over 5 items", ns, "rerank_ns"});
  }

  // ---------------------------------------------------------------------
  // Bar 2 + cost 3: ConsumeFeedback equals direct appends, and its wall
  // time. The log carries clicked impressions derived from harness test
  // sessions.
  {
    TempDir dir("consume");
    std::vector<FeedbackRecord> written;
    {
      auto log = FeedbackLog::Open({.dir = dir.str()});
      SQP_CHECK(log.ok());
      size_t count = 0;
      for (const AggregatedSession& session : harness.test()) {
        if (count >= 2000) break;
        if (session.queries.size() < 2) continue;
        FeedbackRecord record;
        record.record_id = (*log)->NextRecordId();
        record.snapshot_version = 1;
        record.context.assign(session.queries.begin(),
                              session.queries.end() - 1);
        record.served = {{session.queries.back(), 0.6, 0.8},
                         {session.queries.front(), 0.4, 0.2}};
        SQP_CHECK_OK((*log)->AppendImpression(record));
        if (count % 2 == 0) {
          SQP_CHECK_OK((*log)->RecordClick(record.record_id, 0));
          record.clicked_position = 0;
        }
        written.push_back(std::move(record));
        ++count;
      }
      SQP_CHECK_OK((*log)->Seal());
    }
    SQP_CHECK(!written.empty());

    RecommenderEngine engine_consume(EngineOptions{.num_threads = 1});
    RetrainerOptions retrain_options;
    retrain_options.model = model_options;
    retrain_options.vocabulary_size = harness.training_data().vocabulary_size;
    Retrainer consume_retrainer(&engine_consume, retrain_options);
    SQP_CHECK_OK(consume_retrainer.Bootstrap(harness.train()));

    RecommenderEngine engine_direct(EngineOptions{.num_threads = 1});
    Retrainer direct_retrainer(&engine_direct, retrain_options);
    SQP_CHECK_OK(direct_retrainer.Bootstrap(harness.train()));

    WallTimer timer;
    const auto consumed = consume_retrainer.ConsumeFeedback(dir.str());
    SQP_CHECK(consumed.ok());
    SQP_CHECK_OK(consume_retrainer.RetrainOnce());
    const double consume_ms = timer.ElapsedSeconds() * 1e3;

    direct_retrainer.AppendSessions(SessionsFromFeedback(written));
    SQP_CHECK_OK(direct_retrainer.RetrainOnce());

    size_t mismatches = 0;
    for (const std::vector<QueryId>& context : contexts) {
      const ContextRef ref(context.data(), context.size());
      if (!BitIdentical(
              engine_consume.Recommend(ref, 5, ServeOptions{}).recommendation,
              engine_direct.Recommend(ref, 5, ServeOptions{})
                  .recommendation)) {
        ++mismatches;
      }
    }
    const bool consume_ok = mismatches == 0;
    all_ok = all_ok && consume_ok;
    std::printf("consume_equivalence: %s (%zu clicked of %zu records, "
                "retrain %.1f ms)\n",
                consume_ok ? "bit-identical" : "MISMATCH",
                static_cast<size_t>(*consumed), written.size(), consume_ms);
    measurements.push_back({"consume_equivalence", "retrainer",
                            consume_ok ? 1.0 : 0.0, "equal"});
    measurements.push_back({"retrain_from_feedback",
                            "consume + one retrain cycle", consume_ms,
                            "ms"});
  }

  WriteJson(measurements);
  if (!all_ok) {
    std::fprintf(stderr,
                 "FAIL: a closed-loop equivalence bar was violated (the "
                 "feedback hook changed a served answer, or "
                 "ConsumeFeedback diverged from direct appends)\n");
    return 1;
  }
  return 0;
}
