// Shard-scaling bench: batch QPS and single-query latency percentiles of
// the sharded serving layer (serve/sharded_engine) as the shard count
// grows, plus the cost side of sharding (training wall time and the
// corpus duplication factor of the session partitioner). Every row also
// re-verifies the subsystem's core claim — the fleet's answers are
// bit-identical to the unsharded model — and the binary exits non-zero on
// any mismatch. Emits BENCH_shard.json (see bench/README.md).
//
// On a 1-core container the QPS rows measure routing overhead, not
// scale-out; the JSON records hardware_threads so cross-PR comparisons
// can normalize (as BENCH_serve.json does).

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "serve/sharded_engine.h"
#include "util/timer.h"

namespace {

using namespace sqp;
using sqp::bench::Harness;

struct Measurement {
  size_t shards = 0;
  size_t threads = 0;
  double train_ms = 0.0;
  double duplication = 0.0;  // sum of shard corpus sizes / corpus size
  double batch_qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  bool equivalent = false;
};

double Percentile(std::vector<double>* sorted_in_place, double q) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t at = std::min(
      sorted_in_place->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_in_place->size())));
  return (*sorted_in_place)[at];
}

std::vector<std::vector<QueryId>> Contexts(const Harness& harness) {
  std::vector<std::vector<QueryId>> out;
  for (const auto& entry : harness.truth()) {
    if (entry.context.size() <= 5) out.push_back(entry.context);
    if (out.size() >= 4096) break;
  }
  return out;
}

bool SameRecommendation(const Recommendation& a, const Recommendation& b) {
  if (a.covered != b.covered || a.matched_length != b.matched_length ||
      a.queries.size() != b.queries.size()) {
    return false;
  }
  for (size_t i = 0; i < a.queries.size(); ++i) {
    if (a.queries[i].query != b.queries[i].query ||
        a.queries[i].score != b.queries[i].score) {
      return false;
    }
  }
  return true;
}

void WriteJson(const std::vector<Measurement>& measurements,
               size_t hardware_threads) {
  std::FILE* out = std::fopen("BENCH_shard.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_shard.json\n");
    return;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(
        out,
        "  {\"name\": \"shard_serving\", \"shards\": %zu, \"threads\": %zu, "
        "\"train_ms\": %.3f, \"corpus_duplication\": %.3f, "
        "\"batch_qps\": %.1f, \"p50_us\": %.3f, \"p99_us\": %.3f, "
        "\"equivalent_to_unsharded\": %d, \"hardware_threads\": %zu}%s\n",
        m.shards, m.threads, m.train_ms, m.duplication, m.batch_qps,
        m.p50_us, m.p99_us, m.equivalent ? 1 : 0, hardware_threads,
        i + 1 == measurements.size() ? "" : ",");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("JSON results written to BENCH_shard.json\n");
}

}  // namespace

int main() {
  Harness harness;
  sqp::bench::PrintBanner(
      harness, "sharded serving layer (QPS / p99 / equivalence vs shards)",
      "every shard count serves bit-identical top-10 lists to the "
      "unsharded model; QPS stays flat (routing is O(1)) and scales with "
      "lanes up to the core count");

  const size_t hardware =
      std::max<unsigned>(1, std::thread::hardware_concurrency());
  std::printf("hardware threads: %zu\n\n", hardware);

  // The unsharded reference: the exact model every fleet must reproduce.
  MvmmOptions options;
  options.default_max_depth = harness.config().vmm_max_depth;
  auto built = ModelSnapshot::Build(harness.training_data(), options, 1);
  SQP_CHECK(built.ok());
  const std::shared_ptr<const ModelSnapshot> reference = built.value();
  const std::vector<std::vector<QueryId>> contexts = Contexts(harness);
  SQP_CHECK(!contexts.empty());

  bool all_equivalent = true;
  std::vector<Measurement> measurements;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    Measurement m;
    m.shards = shards;

    ShardedTrainOptions train;
    train.model = options;
    train.num_shards = static_cast<uint32_t>(shards);
    train.vocabulary_size = harness.training_data().vocabulary_size;
    WallTimer train_timer;
    auto trained = TrainShardedSnapshots(harness.train(), train);
    SQP_CHECK(trained.ok());
    m.train_ms = train_timer.ElapsedMillis();

    {
      size_t total = 0;
      for (const auto& corpus : trained->corpora) total += corpus.size();
      m.duplication = static_cast<double>(total) /
                      static_cast<double>(harness.train().size());
    }

    ShardedEngine engine(ShardedEngineOptions{
        .num_shards = shards, .num_threads = std::min<size_t>(hardware, 4)});
    m.threads = engine.num_threads();
    for (size_t s = 0; s < shards; ++s) {
      engine.PublishShard(s, trained->shards[s]);
    }

    // Equivalence first (it is the claim the QPS numbers rest on).
    m.equivalent = true;
    {
      SnapshotScratch scratch;
      for (const std::vector<QueryId>& context : contexts) {
        if (!SameRecommendation(
                reference->Recommend(context, 10, &scratch),
                engine.Recommend(context, 10))) {
          m.equivalent = false;
          all_equivalent = false;
          break;
        }
      }
    }

    // Batched QPS through the cross-shard fan-out.
    {
      std::vector<ContextRef> refs;
      size_t cursor = 0;
      uint64_t served = 0;
      WallTimer timer;
      while (timer.ElapsedSeconds() < 0.8) {
        refs.clear();
        for (size_t i = 0; i < 256; ++i) {
          const std::vector<QueryId>& context = contexts[cursor];
          refs.emplace_back(context.data(), context.size());
          cursor = (cursor + 1) % contexts.size();
        }
        served += engine.RecommendMany(std::span<const ContextRef>(refs), 5)
                      .size();
      }
      m.batch_qps = static_cast<double>(served) / timer.ElapsedSeconds();
    }

    // Single-query latency through the routing front door.
    {
      std::vector<double> latencies_us;
      latencies_us.reserve(1 << 20);
      size_t cursor = 0;
      WallTimer total;
      while (total.ElapsedSeconds() < 0.8) {
        WallTimer timer;
        const Recommendation rec = engine.Recommend(contexts[cursor], 5);
        latencies_us.push_back(timer.ElapsedSeconds() * 1e6);
        (void)rec;
        cursor = (cursor + 1) % contexts.size();
      }
      m.p50_us = Percentile(&latencies_us, 0.50);
      m.p99_us = Percentile(&latencies_us, 0.99);
    }

    std::printf(
        "shards=%zu  train=%.0fms  dup=%.2fx  batch_qps=%.0f  "
        "p50=%.3fus  p99=%.3fus  equivalent=%s\n",
        m.shards, m.train_ms, m.duplication, m.batch_qps, m.p50_us, m.p99_us,
        m.equivalent ? "yes" : "NO");
    measurements.push_back(m);
  }

  WriteJson(measurements, hardware);

  if (!all_equivalent) {
    std::fprintf(stderr,
                 "ERROR: a sharded fleet diverged from the unsharded "
                 "model's answers\n");
    return 1;
  }
  return 0;
}
