// Figure 1: distribution of the seven query-session pattern types.
// The paper sampled 20,000 sessions and had 30 labelers classify them; we
// report the generator's latent labels over an equally sized sample.

#include <array>
#include <iostream>

#include "eval/table_printer.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Figure 1: distribution of session pattern types",
              "spelling change + generalization + specialization (the "
              "order-sensitive types) account for 34.34% of multi-query "
              "sessions");

  std::array<uint64_t, kNumPatternTypes> counts{};
  uint64_t total = 0;
  const size_t sample = 20000;  // the paper's user-study sample size
  for (const GeneratedSession& session : harness.train_generated()) {
    if (session.singleton) continue;  // patterns describe reformulations
    ++counts[static_cast<size_t>(session.type)];
    if (++total >= sample) break;
  }

  TablePrinter table({"pattern", "sessions", "share"});
  for (size_t t = 0; t < kNumPatternTypes; ++t) {
    table.AddRow({std::string(PatternTypeName(static_cast<PatternType>(t))),
                  std::to_string(counts[t]),
                  FormatPercent(static_cast<double>(counts[t]) /
                                static_cast<double>(total))});
  }
  table.Print(std::cout);

  const double order_sensitive =
      static_cast<double>(
          counts[static_cast<size_t>(PatternType::kSpellingChange)] +
          counts[static_cast<size_t>(PatternType::kGeneralization)] +
          counts[static_cast<size_t>(PatternType::kSpecialization)]) /
      static_cast<double>(total);
  std::cout << "\nOrder-sensitive share (spelling+generalization+"
            << "specialization): " << FormatPercent(order_sensitive, 2)
            << "  (paper: 34.34%)\n";
  return 0;
}
