// Figure 5: session count versus session length for the training and test
// splits (before data reduction).

#include <algorithm>
#include <iostream>

#include "eval/table_printer.h"
#include "harness.h"
#include "log/session_stats.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Figure 5: session count vs session length",
              "mode at short sessions (length 1-2) with a heavy tail of "
              "longer sessions");

  const auto train_hist = SessionLengthHistogram(harness.train_unreduced());
  const auto test_hist = SessionLengthHistogram(harness.test_unreduced());
  size_t max_length = 0;
  for (const auto& [len, count] : train_hist) {
    max_length = std::max(max_length, len);
  }

  TablePrinter table({"session length", "train sessions", "test sessions"});
  for (size_t len = 1; len <= max_length; ++len) {
    const uint64_t train_count =
        train_hist.count(len) ? train_hist.at(len) : 0;
    const uint64_t test_count = test_hist.count(len) ? test_hist.at(len) : 0;
    table.AddRow({std::to_string(len), std::to_string(train_count),
                  std::to_string(test_count)});
  }
  table.Print(std::cout);
  return 0;
}
