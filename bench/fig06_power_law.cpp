// Figure 6: power-law distribution of aggregated session frequencies.
// Prints the (frequency, #unique sessions) histogram in log-log-friendly
// rows and the MLE tail exponent.

#include <cmath>
#include <iostream>

#include "eval/table_printer.h"
#include "harness.h"
#include "log/session_stats.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Figure 6: power law of aggregated session frequency",
              "a straight line in log-log space (heavy-tailed repetition of "
              "popular sessions)");

  for (const auto& [name, sessions] :
       {std::pair<const char*, const std::vector<AggregatedSession>*>{
            "training", &harness.train_unreduced()},
        {"test", &harness.test_unreduced()}}) {
    const auto hist = SessionFrequencyHistogram(*sessions);
    TablePrinter table({"frequency", "# unique sessions", "log10 f",
                        "log10 count"});
    size_t rows = 0;
    uint64_t previous_bucket = 0;
    for (const auto& [frequency, count] : hist) {
      // Log-spaced row selection to keep the table readable.
      const uint64_t bucket = static_cast<uint64_t>(
          std::floor(std::log(static_cast<double>(frequency)) / std::log(1.6)));
      if (frequency > 2 && bucket == previous_bucket) continue;
      previous_bucket = bucket;
      table.AddRow({std::to_string(frequency), std::to_string(count),
                    FormatDouble(std::log10(static_cast<double>(frequency)), 2),
                    FormatDouble(std::log10(static_cast<double>(count)), 2)});
      if (++rows >= 20) break;
    }
    std::cout << "\n[" << name << " split]\n";
    table.Print(std::cout);
    std::cout << "MLE power-law exponent alpha (f >= 2): "
              << FormatDouble(FrequencyPowerLawAlpha(*sessions, 2), 2)
              << "\n";
  }
  return 0;
}
