// Online prediction latency per method (supports the paper's Section V-G
// claim that online prediction is O(D) with D around 5 — constant time,
// fast enough for real-time deployment).

#include <benchmark/benchmark.h>

#include <vector>

#include "harness.h"
#include "json_report.h"

namespace {

using sqp::PredictionModel;
using sqp::QueryId;
using sqp::bench::Harness;

Harness& SharedHarness() {
  static Harness* harness = new Harness();
  return *harness;
}

/// Covered test contexts of each length, cycled through during timing.
const std::vector<std::vector<QueryId>>& Contexts() {
  static std::vector<std::vector<QueryId>>* contexts = [] {
    auto* out = new std::vector<std::vector<QueryId>>();
    for (const auto& entry : SharedHarness().truth()) {
      if (entry.context.size() <= 5) out->push_back(entry.context);
      if (out->size() >= 4096) break;
    }
    return out;
  }();
  return *contexts;
}

PredictionModel* ModelFor(int index) {
  Harness& harness = SharedHarness();
  switch (index) {
    case 0:
      return harness.Adjacency();
    case 1:
      return harness.Cooccurrence();
    case 2:
      return harness.Ngram();
    case 3:
      return harness.Vmm(0.05);
    default:
      return harness.Mvmm();
  }
}

void BM_Recommend(benchmark::State& state) {
  PredictionModel* model = ModelFor(static_cast<int>(state.range(0)));
  const auto& contexts = Contexts();
  size_t i = 0;
  for (auto _ : state) {
    const auto rec = model->Recommend(contexts[i], 5);
    benchmark::DoNotOptimize(rec);
    i = (i + 1) % contexts.size();
  }
  state.SetLabel(std::string(model->Name()));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  const sqp::ModelStats stats = model->Stats();
  state.counters["model_states"] = static_cast<double>(stats.num_states);
  state.counters["model_bytes"] = static_cast<double>(stats.memory_bytes);
}

}  // namespace

BENCHMARK(BM_Recommend)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  return sqp::bench::RunBenchmarksWithJson(argc, argv, "BENCH_latency.json");
}
