#!/usr/bin/env python3
"""Bench-regression gate: compare BENCH_*.json outputs against committed
baseline thresholds (bench/baselines.json) and fail on regression.

Usage:
    python3 bench/check_regression.py [--dir BUILD_DIR] [--baselines PATH]

Every check names a BENCH file, a row selector (all key/value pairs must
match the row), a metric and a min or max bound. All matching rows must
satisfy the bound, and at least one row must match — a renamed or dropped
bench phase fails the gate instead of silently losing coverage. Bounds are
intentionally generous (see baselines.json): this gate catches
order-of-magnitude regressions, not runner noise.
"""

import argparse
import json
import os
import sys


def load_json(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def matches(row, select):
    return all(row.get(key) == value for key, value in select.items())


def run_checks(build_dir, baselines_path):
    baselines = load_json(baselines_path)
    failures = []
    lines = []
    cache = {}
    for check in baselines["checks"]:
        name = f'{check["file"]} {check["select"]} -> {check["metric"]}'
        path = os.path.join(build_dir, check["file"])
        if check["file"] not in cache:
            if not os.path.exists(path):
                failures.append(f"{name}: missing bench output {path}")
                continue
            cache[check["file"]] = load_json(path)
        rows = [r for r in cache[check["file"]] if matches(r, check["select"])]
        if not rows:
            failures.append(f"{name}: no row matches the selector "
                            f"(bench phase renamed or dropped?)")
            continue
        for row in rows:
            if check["metric"] not in row:
                failures.append(f"{name}: metric absent from row {row}")
                continue
            value = row[check["metric"]]
            bound_kind = "min" if "min" in check else "max"
            bound = check[bound_kind]
            ok = value >= bound if bound_kind == "min" else value <= bound
            verdict = "ok" if ok else "REGRESSION"
            lines.append(f"  [{verdict:>10}] {name}: {value:g} "
                         f"({bound_kind} {bound:g}) — {check.get('why', '')}")
            if not ok:
                failures.append(
                    f"{name}: {value:g} violates {bound_kind} {bound:g} "
                    f"({check.get('why', 'no rationale recorded')})")
    return lines, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default="build",
                        help="directory holding the BENCH_*.json outputs")
    parser.add_argument(
        "--baselines",
        default=os.path.join(os.path.dirname(__file__), "baselines.json"))
    args = parser.parse_args()

    lines, failures = run_checks(args.dir, args.baselines)
    print(f"bench-regression gate over {args.dir} "
          f"(baselines: {args.baselines})")
    for line in lines:
        print(line)
    if failures:
        print(f"\n{len(failures)} regression check(s) FAILED:",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(lines)} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
