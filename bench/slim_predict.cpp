// Embedded-predictor bench: the slim C API (libsqp_slim) serving the same
// compact snapshot the engine serves, from one malloc'd blob buffer. Emits
// BENCH_slim.json (see bench/README.md) with the ns/recommend cost of the
// dependency-free walk and the bytes the predictor keeps resident beyond
// the caller's blob.
//
// The binary also self-enforces the split's correctness bar: before any
// timing is reported it replays every bench context through both the slim
// predictor and the engine-side CompactSnapshot and requires bit-identical
// top-10 lists (query ids AND score bits), exiting nonzero on mismatch.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/compact_snapshot.h"
#include "core/snapshot_io.h"
#include "harness.h"
#include "sqp/slim.h"
#include "util/timer.h"

namespace {

using namespace sqp;
using sqp::bench::Harness;

struct Row {
  std::string name;
  double recommend_ns = 0.0;
  double qps = 0.0;
  uint64_t resident_bytes = 0;
  uint64_t blob_bytes = 0;
  int ok = -1;  // equivalence rows: 1/0; -1 = field unused
};

/// Covered test contexts (length <= 5), as in hot_path / serve_throughput.
std::vector<std::vector<QueryId>> Contexts(const Harness& harness) {
  std::vector<std::vector<QueryId>> out;
  for (const auto& entry : harness.truth()) {
    if (entry.context.size() <= 5) out.push_back(entry.context);
    if (out.size() >= 4096) break;
  }
  return out;
}

/// Round-trips the compact snapshot through the on-disk blob format and
/// reads it back into one malloc'd buffer — the exact byte stream an
/// embedding caller would hand sqp_slim_create_from_buffer.
std::vector<uint8_t> BlobBytes(const CompactSnapshot& snapshot) {
  const std::string path = "/tmp/sqp_slim_bench.blob";
  SQP_CHECK(SaveCompactSnapshot(snapshot, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  SQP_CHECK(f != nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  SQP_CHECK(std::fread(bytes.data(), 1, bytes.size(), f) == bytes.size());
  std::fclose(f);
  std::remove(path.c_str());
  return bytes;
}

// -------------------------------------------------- equivalence check

bool SlimMatchesEngineEverywhere(
    sqp_slim_predictor* slim, const CompactSnapshot& snapshot,
    const std::vector<std::vector<QueryId>>& contexts) {
  SnapshotScratch scratch;
  uint32_t queries[10];
  double scores[10];
  size_t mismatches = 0;
  for (const std::vector<QueryId>& context : contexts) {
    const Recommendation ref = snapshot.Recommend(context, 10, &scratch);
    size_t count = 0;
    size_t matched = 0;
    const sqp_status_t status =
        sqp_slim_recommend(slim, context.data(), context.size(), 10, queries,
                           scores, &count, &matched);
    bool same;
    if (!ref.covered) {
      same = status == SQP_STATUS_NOT_FOUND && count == 0;
    } else if (status != SQP_STATUS_OK || count != ref.queries.size() ||
               matched != ref.matched_length) {
      same = false;
    } else {
      same = true;
      for (size_t i = 0; i < count; ++i) {
        if (queries[i] != ref.queries[i].query ||
            std::memcmp(&scores[i], &ref.queries[i].score, sizeof(double)) !=
                0) {
          same = false;
          break;
        }
      }
    }
    if (!same) ++mismatches;
  }
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "EQUIVALENCE FAILURE: %zu/%zu contexts diverged between "
                 "the slim C API and the engine CompactSnapshot\n",
                 mismatches, contexts.size());
  }
  return mismatches == 0;
}

// ------------------------------------------------------ latency probe

double MeasureRecommendNs(sqp_slim_predictor* slim,
                          const std::vector<std::vector<QueryId>>& contexts,
                          double seconds, double* qps_out) {
  uint32_t queries[10];
  double scores[10];
  size_t count = 0;
  size_t cursor = 0;
  uint64_t served = 0;
  WallTimer timer;
  while (timer.ElapsedSeconds() < seconds) {
    for (size_t burst = 0; burst < 256; ++burst) {
      const std::vector<QueryId>& context = contexts[cursor];
      (void)sqp_slim_recommend(slim, context.data(), context.size(), 10,
                               queries, scores, &count, nullptr);
      cursor = (cursor + 1) % contexts.size();
      ++served;
    }
  }
  const double total = timer.ElapsedSeconds();
  if (qps_out != nullptr) *qps_out = static_cast<double>(served) / total;
  return total * 1e9 / static_cast<double>(served);
}

void WriteJson(const std::vector<Row>& rows) {
  std::FILE* out = std::fopen("BENCH_slim.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_slim.json\n");
    return;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out, "  {\"name\": \"%s\"", r.name.c_str());
    if (r.recommend_ns != 0.0) {
      std::fprintf(out, ", \"recommend_ns\": %.1f, \"qps\": %.0f",
                   r.recommend_ns, r.qps);
    }
    if (r.resident_bytes != 0) {
      std::fprintf(out, ", \"resident_bytes\": %llu, \"blob_bytes\": %llu",
                   static_cast<unsigned long long>(r.resident_bytes),
                   static_cast<unsigned long long>(r.blob_bytes));
    }
    if (r.ok >= 0) std::fprintf(out, ", \"ok\": %d", r.ok);
    std::fprintf(out, "}%s\n", i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("JSON results written to BENCH_slim.json\n");
}

}  // namespace

int main() {
  Harness harness;
  sqp::bench::PrintBanner(
      harness, "slim embedded predictor (stable C API over one blob buffer)",
      "the dependency-free serve-only walk answers bit-identically to the "
      "engine CompactSnapshot at comparable per-recommend cost");

  MvmmOptions options;
  options.default_max_depth = harness.config().vmm_max_depth;
  auto built = ModelSnapshot::Build(harness.training_data(), options, 1);
  SQP_CHECK(built.ok());
  const auto compact = CompactSnapshot::FromSnapshot(*built.value());
  const std::vector<std::vector<QueryId>> contexts = Contexts(harness);
  SQP_CHECK(!contexts.empty());

  const std::vector<uint8_t> blob = BlobBytes(*compact);
  sqp_slim_predictor* slim = nullptr;
  const sqp_status_t created =
      sqp_slim_create_from_buffer(blob.data(), blob.size(), &slim);
  if (created != SQP_STATUS_OK) {
    std::fprintf(stderr, "slim create failed: %s\n", sqp_status_name(created));
    return 1;
  }
  sqp_slim_stats_t stats;
  std::memset(&stats, 0, sizeof(stats));
  stats.struct_size = sizeof(stats);
  SQP_CHECK(sqp_slim_stats(slim, &stats) == SQP_STATUS_OK);

  std::vector<Row> rows;

  // Correctness first: no timing is worth reporting off a divergent walk.
  const bool equivalent = SlimMatchesEngineEverywhere(slim, *compact, contexts);
  {
    Row r;
    r.name = "slim_equivalence";
    r.ok = equivalent ? 1 : 0;
    rows.push_back(r);
  }
  std::printf("equivalence (slim C API vs engine, top-10 bits): %s\n\n",
              equivalent ? "ok" : "FAILED");

  {
    Row r;
    r.name = "slim_predict";
    r.recommend_ns =
        MeasureRecommendNs(slim, contexts, /*seconds=*/0.6, &r.qps);
    r.resident_bytes = stats.resident_bytes;
    r.blob_bytes = blob.size();
    rows.push_back(r);
    std::printf("slim    recommend=%.0fns qps=%.0f resident=%lluB "
                "(blob=%lluB, nodes=%llu, entries=%llu)\n",
                r.recommend_ns, r.qps,
                static_cast<unsigned long long>(r.resident_bytes),
                static_cast<unsigned long long>(r.blob_bytes),
                static_cast<unsigned long long>(stats.num_nodes),
                static_cast<unsigned long long>(stats.num_entries));
  }

  sqp_slim_destroy(slim);
  WriteJson(rows);
  return equivalent ? 0 : 1;
}
