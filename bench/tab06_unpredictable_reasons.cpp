// Table VI: reasons for unpredictable queries, per model. The reason set
// grows from Co-occurrence (reasons 1-2) to Adjacency/VMM/MVMM (1-3) to
// N-gram (1-4).

#include <iostream>

#include "eval/coverage.h"
#include "eval/table_printer.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Table VI: reasons for unpredictable queries",
              "reason sets are nested: Co-occ {1,2} < Adj/VMM/MVMM {1,2,3} "
              "< N-gram {1,2,3,4}");

  TablePrinter table({"model", "covered", "(1) new query",
                      "(2) singleton-only", "(3) last-position-only",
                      "(4) untrained context"});
  for (PredictionModel* model : harness.AllMethods()) {
    const ReasonBreakdown breakdown =
        ClassifyUnpredictable(*model, harness.roles(), harness.truth());
    std::vector<std::string> row{std::string(model->Name())};
    for (size_t reason = 0; reason < kNumUnpredictableReasons; ++reason) {
      row.push_back(FormatPercent(
          static_cast<double>(breakdown.weight[reason]) /
          static_cast<double>(breakdown.total_weight)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\nNote: reason (3) must be zero for Co-occurrence and reason "
               "(4) only appears for N-gram, mirroring the paper's Table "
               "VI.\n";
  return 0;
}
