// Figure 7: session count versus session length after data reduction —
// the distribution keeps its shape, only rare and super-long sessions
// disappear.

#include <algorithm>
#include <iostream>

#include "eval/table_printer.h"
#include "harness.h"
#include "log/session_stats.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Figure 7: session length histogram after data "
                       "reduction",
              "shape preserved; rare and super-long sessions dropped (the "
              "paper kept 60.48% of training weight)");

  const auto before = SessionLengthHistogram(harness.train_unreduced());
  const auto after = SessionLengthHistogram(harness.train());
  size_t max_length = 0;
  for (const auto& [len, count] : before) {
    max_length = std::max(max_length, len);
  }

  TablePrinter table({"session length", "before reduction", "after reduction",
                      "kept"});
  for (size_t len = 1; len <= max_length; ++len) {
    const uint64_t b = before.count(len) ? before.at(len) : 0;
    const uint64_t a = after.count(len) ? after.at(len) : 0;
    table.AddRow({std::to_string(len), std::to_string(b), std::to_string(a),
                  b == 0 ? "-"
                         : FormatPercent(static_cast<double>(a) /
                                         static_cast<double>(b))});
  }
  table.Print(std::cout);

  const ReductionReport& report = harness.train_reduction_report();
  std::cout << "\nTotal weight kept: "
            << FormatPercent(report.kept_weight_fraction(), 2)
            << "  (unique sessions kept: " << report.sessions_kept << "/"
            << report.sessions_in << ")\n";
  return 0;
}
