// Table VIII: user labeling distribution over the four methods of the
// simulated user study (Adjacency, Co-occurrence, N-gram, MVMM): number of
// predicted queries and number approved by the labeler panel.

#include <iostream>

#include "eval/table_printer.h"
#include "eval/user_study.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Table VIII: user labeling distribution",
              "pair-wise methods predict more queries; MVMM has the most "
              "approved per predicted");

  std::vector<const PredictionModel*> models;
  for (PredictionModel* model : harness.UserStudyMethods()) {
    models.push_back(model);
  }
  UserStudyOptions options;  // 500 contexts per length 1..4, 30 labelers
  const UserStudyResult result = RunUserStudy(
      models, harness.truth(), harness.dictionary(), harness.oracle(),
      options);

  TablePrinter table({"", "Co-occ.", "Adj.", "N-gram", "MVMM"});
  // Reorder columns to the paper's layout.
  const auto find = [&](std::string_view name) -> const MethodUserEval& {
    for (const MethodUserEval& eval : result.methods) {
      if (eval.model == name) return eval;
    }
    SQP_CHECK(false);
    return result.methods.front();
  };
  const MethodUserEval& cooc = find("Co-occurrence");
  const MethodUserEval& adj = find("Adjacency");
  const MethodUserEval& ngram = find("N-gram");
  const MethodUserEval& mvmm = find("MVMM");
  table.AddRow({"# predicted queries",
                std::to_string(cooc.overall.num_predicted),
                std::to_string(adj.overall.num_predicted),
                std::to_string(ngram.overall.num_predicted),
                std::to_string(mvmm.overall.num_predicted)});
  table.AddRow({"# approved queries",
                std::to_string(cooc.overall.num_approved),
                std::to_string(adj.overall.num_approved),
                std::to_string(ngram.overall.num_approved),
                std::to_string(mvmm.overall.num_approved)});
  table.Print(std::cout);

  std::cout << "\nSampled contexts: " << result.num_contexts
            << "; pooled unique approved (context, query) pairs: "
            << result.pooled_ground_truth << "\n";
  std::cout << "Paper: 2000 contexts; 26,193 predicted; MVMM leads approvals "
               "(5238 of 6086).\n";
  return 0;
}
