// Figure 14: user-evaluation precision at each of the top-5 recommendation
// positions. Paper: sequence-based models are strongest at position 1 (the
// position that matters most); pair-wise methods are inconsistent across
// positions.

#include <iostream>

#include "eval/table_printer.h"
#include "eval/user_study.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Figure 14: precision over top-5 positions",
              "sequence models strongest at position 1; pair-wise methods "
              "inconsistent");

  std::vector<const PredictionModel*> models;
  for (PredictionModel* model : harness.UserStudyMethods()) {
    models.push_back(model);
  }
  const UserStudyResult result =
      RunUserStudy(models, harness.truth(), harness.dictionary(),
                   harness.oracle(), UserStudyOptions{});

  TablePrinter table({"model", "pos 1", "pos 2", "pos 3", "pos 4", "pos 5"});
  for (const MethodUserEval& eval : result.methods) {
    std::vector<std::string> row{eval.model};
    for (size_t pos = 0; pos < eval.precision_by_position.size(); ++pos) {
      if (eval.predicted_by_position[pos] == 0) {
        row.push_back("-");
      } else {
        row.push_back(FormatPercent(eval.precision_by_position[pos]));
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}
