// Table I: one sample query chain per search-sequence pattern type.

#include <iostream>

#include "eval/table_printer.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Table I: sample search sequence patterns",
              "one plausible reformulation chain per pattern type");

  PatternGenerator generator(&harness.topics());
  Rng rng(2009);
  TablePrinter table({"search sequence pattern", "example"});
  for (size_t t = 0; t < kNumPatternTypes; ++t) {
    const PatternType type = static_cast<PatternType>(t);
    // Find an intent that supports the pattern (synonym needs aliases).
    size_t intent = rng.UniformInt(harness.topics().num_intents());
    while (!generator.Supports(type, intent)) {
      intent = rng.UniformInt(harness.topics().num_intents());
    }
    const PatternResult result = generator.Generate(type, intent, &rng);
    std::string example;
    for (const std::string& query : result.queries) {
      if (!example.empty()) example += " => ";
      example += query;
    }
    table.AddRow({std::string(PatternTypeName(type)), example});
  }
  table.Print(std::cout);
  return 0;
}
