// Serving-layer throughput/latency bench: batch RecommendMany QPS as the
// engine's worker-lane count grows, single-query Recommend latency
// percentiles, the same two off the CompactSnapshot serving layout (the
// quantized/truncated variant must serve within a few percent of the full
// snapshot), and both again while a live Retrainer rebuilds and swaps
// snapshots underneath the readers. Emits BENCH_serve.json (see
// bench/README.md) as the tracked perf surface of the serve/ subsystem.
//
// Thread-scaling expectations depend on the machine: lanes beyond the
// physical core count (e.g. the 8-lane row on a 1-core container) measure
// oversubscription overhead, not speedup — the JSON records
// hardware_threads so cross-PR comparisons can normalize.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/compact_snapshot.h"
#include "harness.h"
#include "serve/recommender_engine.h"
#include "serve/retrainer.h"
#include "util/timer.h"

namespace {

using namespace sqp;
using sqp::bench::Harness;

struct Measurement {
  std::string name;
  size_t threads = 0;
  size_t batch = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t snapshot_swaps = 0;
};

double Percentile(std::vector<double>* sorted_in_place, double q) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t at = std::min(
      sorted_in_place->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_in_place->size())));
  return (*sorted_in_place)[at];
}

/// Covered test contexts (length <= 5), as in latency_online_prediction.
std::vector<std::vector<QueryId>> Contexts(const Harness& harness) {
  std::vector<std::vector<QueryId>> out;
  for (const auto& entry : harness.truth()) {
    if (entry.context.size() <= 5) out.push_back(entry.context);
    if (out.size() >= 4096) break;
  }
  return out;
}

/// Batched QPS at a fixed engine lane count, over `seconds` of wall time.
Measurement MeasureBatchQps(const std::shared_ptr<const ServingSnapshot>& model,
                            const std::vector<std::vector<QueryId>>& contexts,
                            size_t threads, size_t batch, double seconds) {
  RecommenderEngine engine(EngineOptions{.num_threads = threads});
  engine.Publish(model);
  std::vector<ContextRef> refs;
  refs.reserve(batch);
  size_t cursor = 0;
  uint64_t served = 0;
  WallTimer timer;
  while (timer.ElapsedSeconds() < seconds) {
    refs.clear();
    for (size_t i = 0; i < batch; ++i) {
      const std::vector<QueryId>& context = contexts[cursor];
      refs.emplace_back(context.data(), context.size());
      cursor = (cursor + 1) % contexts.size();
    }
    const auto results =
        engine.RecommendMany(std::span<const ContextRef>(refs), 5);
    served += results.size();
  }
  Measurement m;
  m.name = "batch_qps";
  m.threads = engine.num_threads();
  m.batch = batch;
  m.qps = static_cast<double>(served) / timer.ElapsedSeconds();
  return m;
}

/// Single-query latency percentiles on the calling thread; optionally with
/// a retrainer swapping snapshots in the background.
Measurement MeasureSingleLatency(RecommenderEngine* engine,
                                 const std::vector<std::vector<QueryId>>& contexts,
                                 double seconds, const std::string& name) {
  std::vector<double> latencies_us;
  latencies_us.reserve(1 << 20);
  size_t cursor = 0;
  WallTimer total;
  uint64_t served = 0;
  while (total.ElapsedSeconds() < seconds) {
    WallTimer timer;
    const Recommendation rec = engine->Recommend(contexts[cursor], 5);
    latencies_us.push_back(timer.ElapsedSeconds() * 1e6);
    (void)rec;
    ++served;
    cursor = (cursor + 1) % contexts.size();
  }
  Measurement m;
  m.name = name;
  m.threads = 1;
  m.batch = 1;
  m.qps = static_cast<double>(served) / total.ElapsedSeconds();
  m.p50_us = Percentile(&latencies_us, 0.50);
  m.p99_us = Percentile(&latencies_us, 0.99);
  return m;
}

void WriteJson(const std::vector<Measurement>& measurements,
               size_t hardware_threads) {
  std::FILE* out = std::fopen("BENCH_serve.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(out,
                 "  {\"name\": \"%s\", \"threads\": %zu, \"batch\": %zu, "
                 "\"qps\": %.1f, \"p50_us\": %.3f, \"p99_us\": %.3f, "
                 "\"snapshot_swaps\": %llu, \"hardware_threads\": %zu}%s\n",
                 m.name.c_str(), m.threads, m.batch, m.qps, m.p50_us,
                 m.p99_us, static_cast<unsigned long long>(m.snapshot_swaps),
                 hardware_threads, i + 1 == measurements.size() ? "" : ",");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("JSON results written to BENCH_serve.json\n");
}

}  // namespace

int main() {
  Harness harness;
  sqp::bench::PrintBanner(
      harness, "serving-layer throughput (batch fan-out + snapshot swap)",
      "batch QPS grows with worker lanes up to the physical core count; "
      "p99 stays flat while the retrainer swaps snapshots");

  const size_t hardware = std::max<unsigned>(1, std::thread::hardware_concurrency());
  std::printf("hardware threads: %zu\n\n", hardware);

  // One snapshot for all read-only phases, built like the harness MVMM.
  MvmmOptions options;
  options.default_max_depth = harness.config().vmm_max_depth;
  auto built = ModelSnapshot::Build(harness.training_data(), options, 1);
  SQP_CHECK(built.ok());
  const std::shared_ptr<const ModelSnapshot> model = built.value();
  const std::vector<std::vector<QueryId>> contexts = Contexts(harness);
  SQP_CHECK(!contexts.empty());

  std::vector<Measurement> measurements;

  // Phase 1: batch QPS vs engine lanes.
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    Measurement m = MeasureBatchQps(model, contexts, threads, /*batch=*/256,
                                    /*seconds=*/0.8);
    std::printf("batch_qps      threads=%zu  batch=%zu  qps=%.0f\n",
                m.threads, m.batch, m.qps);
    measurements.push_back(m);
  }

  // Phase 1b: the same single-lane batch workload off the compact serving
  // layout — the claim is that the quantized/truncated variant serves
  // within a few percent of the full snapshot (compare against the
  // threads=1 batch_qps row).
  const std::shared_ptr<const CompactSnapshot> compact =
      CompactSnapshot::FromSnapshot(*model, CompactOptions{});
  {
    Measurement m = MeasureBatchQps(compact, contexts, /*threads=*/1,
                                    /*batch=*/256, /*seconds=*/0.8);
    m.name = "batch_qps_compact";
    std::printf("batch_compact  threads=%zu  batch=%zu  qps=%.0f\n",
                m.threads, m.batch, m.qps);
    measurements.push_back(m);
  }

  // Phase 2: single-query latency, steady snapshot — full, then compact.
  {
    RecommenderEngine engine(EngineOptions{.num_threads = 1});
    engine.Publish(model);
    Measurement m = MeasureSingleLatency(&engine, contexts, /*seconds=*/1.0,
                                         "single_latency");
    std::printf("single_latency qps=%.0f  p50=%.3fus  p99=%.3fus\n", m.qps,
                m.p50_us, m.p99_us);
    measurements.push_back(m);
  }
  {
    RecommenderEngine engine(EngineOptions{.num_threads = 1});
    engine.Publish(compact);
    Measurement m = MeasureSingleLatency(&engine, contexts, /*seconds=*/1.0,
                                         "single_latency_compact");
    std::printf("single_compact qps=%.0f  p50=%.3fus  p99=%.3fus\n", m.qps,
                m.p50_us, m.p99_us);
    measurements.push_back(m);
  }

  // Phase 3: single-query latency while a live retrainer rebuilds and
  // publishes snapshots from appended (drifted) test sessions.
  {
    RecommenderEngine engine(EngineOptions{.num_threads = 1});
    RetrainerOptions retrain_options;
    retrain_options.model = options;
    retrain_options.vocabulary_size = harness.training_data().vocabulary_size;
    retrain_options.poll_interval = std::chrono::milliseconds(1);
    Retrainer retrainer(&engine, retrain_options);
    SQP_CHECK_OK(retrainer.Bootstrap(harness.train()));
    retrainer.Start();

    // Feed the drifted test sessions in slices while measuring.
    const std::vector<AggregatedSession>& drift = harness.test();
    std::atomic<bool> stop{false};
    std::thread feeder([&] {
      const size_t slice = std::max<size_t>(1, drift.size() / 16);
      size_t at = 0;
      while (!stop.load()) {
        const size_t end = std::min(drift.size(), at + slice);
        retrainer.AppendSessions(std::vector<AggregatedSession>(
            drift.begin() + static_cast<ptrdiff_t>(at),
            drift.begin() + static_cast<ptrdiff_t>(end)));
        at = end % drift.size();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });

    Measurement m = MeasureSingleLatency(&engine, contexts, /*seconds=*/2.0,
                                         "single_latency_under_retrain");
    stop.store(true);
    feeder.join();
    retrainer.Stop();
    m.snapshot_swaps = engine.stats().snapshots_published;
    std::printf(
        "under_retrain  qps=%.0f  p50=%.3fus  p99=%.3fus  swaps=%llu\n",
        m.qps, m.p50_us, m.p99_us,
        static_cast<unsigned long long>(m.snapshot_swaps));
    measurements.push_back(m);
  }

  WriteJson(measurements, hardware);
  return 0;
}
