// Hot-path bench for the SIMD-vectorized compact serving walk: per-kernel
// microbenchmarks (ns/entry per dispatch level x id width x run length),
// the end-to-end walk at every dispatch level with its cost split into
// descent (MatchedDepth) vs score+merge, the legacy sparse sort-merge for
// comparison, and a self-reported speedup row (vectorized over forced
// scalar, dense over sparse). Emits BENCH_hotpath.json (see bench/README.md)
// as the tracked perf surface of the scoring kernels.
//
// The binary also self-enforces the correctness bar: before any timing is
// reported it replays every context through the dense walk at every
// supported dispatch level and requires bit-identical recommendations to
// the legacy sparse path, exiting nonzero on any mismatch.

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/compact_snapshot.h"
#include "core/serve_kernels.h"
#include "harness.h"
#include "util/timer.h"

namespace {

using namespace sqp;
using sqp::bench::Harness;

struct Row {
  std::string name;
  std::string level;    // dispatch level ("" = not level-specific)
  std::string width;    // kernel rows: "u16" / "u32"
  std::string variant;  // walk rows: "dense" / "sparse"
  size_t run_len = 0;
  double ns_per_entry = 0.0;
  double recommend_ns = 0.0;
  double match_ns = 0.0;
  double merge_score_ns = 0.0;
  double qps = 0.0;
  double vectorized_over_scalar = 0.0;
  double dense_over_sparse = 0.0;
  int ok = -1;  // equivalence rows: 1/0; -1 = field unused
};

std::vector<kernels::SimdLevel> SupportedLevels() {
  std::vector<kernels::SimdLevel> levels;
  for (int i = 0; i < kernels::kNumSimdLevels; ++i) {
    const auto level = static_cast<kernels::SimdLevel>(i);
    if (kernels::LevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

/// Covered test contexts (length <= 5), as in serve_throughput.
std::vector<std::vector<QueryId>> Contexts(const Harness& harness) {
  std::vector<std::vector<QueryId>> out;
  for (const auto& entry : harness.truth()) {
    if (entry.context.size() <= 5) out.push_back(entry.context);
    if (out.size() >= 4096) break;
  }
  return out;
}

// ------------------------------------------------- kernel microbenchmark

/// ns/entry of one kernel over a synthetic run of `run_len` entries,
/// repeated until ~10ms of work. Query ids repeat (range run_len/2) so the
/// accumulate branch is exercised like a real multi-level walk.
template <typename QT>
double MeasureKernelNs(const kernels::KernelTable& table, size_t run_len,
                       uint64_t seed) {
  std::mt19937 rng(static_cast<uint32_t>(seed));
  const uint32_t id_range = std::max<uint32_t>(1, run_len / 2);
  std::vector<QT> queries(run_len);
  std::vector<uint16_t> codes(run_len);
  for (size_t i = 0; i < run_len; ++i) {
    queries[i] = static_cast<QT>(rng() % id_range);
    codes[i] = static_cast<uint16_t>(1 + rng() % 60000);
  }
  kernels::AccumulatorStorage storage;
  // Warm-up + calibration.
  kernels::DenseAccumulator acc = storage.BeginGeneration(id_range);
  ScoreRun(table, queries.data(), codes.data(), run_len, 1e-3, &acc);
  const size_t iters = std::max<size_t>(1, 2'000'000 / run_len);
  WallTimer timer;
  for (size_t it = 0; it < iters; ++it) {
    acc = storage.BeginGeneration(id_range);
    ScoreRun(table, queries.data(), codes.data(), run_len, 1e-3, &acc);
  }
  const double seconds = timer.ElapsedSeconds();
  return seconds * 1e9 / static_cast<double>(iters * run_len);
}

// ------------------------------------------------------ walk benchmark

struct WalkCost {
  double recommend_ns = 0.0;
  double match_ns = 0.0;
  double qps = 0.0;
};

WalkCost MeasureWalk(const CompactServingBase& snapshot,
                     const std::vector<std::vector<QueryId>>& contexts,
                     double seconds) {
  SnapshotScratch scratch;
  size_t cursor = 0;
  uint64_t served = 0;
  WallTimer timer;
  while (timer.ElapsedSeconds() < seconds) {
    for (size_t burst = 0; burst < 256; ++burst) {
      const Recommendation rec =
          snapshot.Recommend(contexts[cursor], 5, &scratch);
      (void)rec;
      cursor = (cursor + 1) % contexts.size();
      ++served;
    }
  }
  WalkCost cost;
  const double total = timer.ElapsedSeconds();
  cost.recommend_ns = total * 1e9 / static_cast<double>(served);
  cost.qps = static_cast<double>(served) / total;

  // Descent-only probe over the same context stream: the walk minus the
  // scoring and ranking. The difference is the score+merge share.
  uint64_t matched = 0;
  cursor = 0;
  uint64_t probes = 0;
  WallTimer match_timer;
  while (match_timer.ElapsedSeconds() < seconds * 0.5) {
    for (size_t burst = 0; burst < 256; ++burst) {
      matched += snapshot.MatchedDepth(contexts[cursor]);
      cursor = (cursor + 1) % contexts.size();
      ++probes;
    }
  }
  cost.match_ns =
      match_timer.ElapsedSeconds() * 1e9 / static_cast<double>(probes);
  if (matched == 0) std::fprintf(stderr, "warning: no context matched\n");
  return cost;
}

// -------------------------------------------------- equivalence check

bool DenseMatchesSparseEverywhere(
    const CompactServingBase& snapshot,
    const std::vector<std::vector<QueryId>>& contexts) {
  SnapshotScratch scratch;
  std::vector<Recommendation> reference;
  reference.reserve(contexts.size());
  internal::ForceSparseMergeForTest().store(true);
  for (const std::vector<QueryId>& context : contexts) {
    reference.push_back(snapshot.Recommend(context, 10, &scratch));
  }
  internal::ForceSparseMergeForTest().store(false);

  const auto same = [](const Recommendation& a, const Recommendation& b) {
    if (a.covered != b.covered || a.matched_length != b.matched_length ||
        a.queries.size() != b.queries.size()) {
      return false;
    }
    for (size_t i = 0; i < a.queries.size(); ++i) {
      if (a.queries[i].query != b.queries[i].query ||
          a.queries[i].score != b.queries[i].score) {
        return false;
      }
    }
    return true;
  };

  bool all_equal = true;
  for (const kernels::SimdLevel level : SupportedLevels()) {
    const kernels::SimdLevel previous = kernels::SetActiveLevel(level);
    size_t mismatches = 0;
    for (size_t i = 0; i < contexts.size(); ++i) {
      if (!same(reference[i],
                snapshot.Recommend(contexts[i], 10, &scratch))) {
        ++mismatches;
      }
    }
    kernels::SetActiveLevel(previous);
    if (mismatches != 0) {
      std::fprintf(stderr,
                   "EQUIVALENCE FAILURE: %zu/%zu contexts diverged from the "
                   "sparse reference at level %s\n",
                   mismatches, contexts.size(),
                   kernels::SimdLevelName(level));
      all_equal = false;
    }
  }
  return all_equal;
}

void WriteJson(const std::vector<Row>& rows) {
  std::FILE* out = std::fopen("BENCH_hotpath.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_hotpath.json\n");
    return;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out, "  {\"name\": \"%s\"", r.name.c_str());
    if (!r.level.empty()) std::fprintf(out, ", \"level\": \"%s\"", r.level.c_str());
    if (!r.width.empty()) std::fprintf(out, ", \"width\": \"%s\"", r.width.c_str());
    if (!r.variant.empty()) {
      std::fprintf(out, ", \"variant\": \"%s\"", r.variant.c_str());
    }
    if (r.run_len != 0) std::fprintf(out, ", \"run_len\": %zu", r.run_len);
    if (r.ns_per_entry != 0.0) {
      std::fprintf(out, ", \"ns_per_entry\": %.4f", r.ns_per_entry);
    }
    if (r.recommend_ns != 0.0) {
      std::fprintf(out, ", \"recommend_ns\": %.1f, \"match_ns\": %.1f, "
                        "\"merge_score_ns\": %.1f, \"qps\": %.0f",
                   r.recommend_ns, r.match_ns, r.merge_score_ns, r.qps);
    }
    if (r.vectorized_over_scalar != 0.0) {
      std::fprintf(out, ", \"vectorized_over_scalar\": %.3f", r.vectorized_over_scalar);
    }
    if (r.dense_over_sparse != 0.0) {
      std::fprintf(out, ", \"dense_over_sparse\": %.3f", r.dense_over_sparse);
    }
    if (r.ok >= 0) std::fprintf(out, ", \"ok\": %d", r.ok);
    std::fprintf(out, "}%s\n", i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("JSON results written to BENCH_hotpath.json\n");
}

}  // namespace

int main() {
  Harness harness;
  sqp::bench::PrintBanner(
      harness,
      "compact-walk hot-path kernels (SIMD dispatch, dense accumulation)",
      "every dispatch level serves bit-identically; the vectorized dense "
      "walk beats the forced-scalar and legacy sparse paths");

  std::printf("dispatch: best=%s active=%s\n",
              kernels::SimdLevelName(kernels::BestSupportedLevel()),
              kernels::SimdLevelName(kernels::ActiveLevel()));

  MvmmOptions options;
  options.default_max_depth = harness.config().vmm_max_depth;
  auto built = ModelSnapshot::Build(harness.training_data(), options, 1);
  SQP_CHECK(built.ok());
  const auto compact = CompactSnapshot::FromSnapshot(*built.value());
  const std::vector<std::vector<QueryId>> contexts = Contexts(harness);
  SQP_CHECK(!contexts.empty());

  std::vector<Row> rows;

  // Correctness first: no timing is worth reporting off a wrong walk.
  const bool equivalent = DenseMatchesSparseEverywhere(*compact, contexts);
  {
    Row r;
    r.name = "hotpath_equivalence";
    r.ok = equivalent ? 1 : 0;
    rows.push_back(r);
  }
  std::printf("equivalence (dense vs sparse, all levels): %s\n\n",
              equivalent ? "ok" : "FAILED");

  // Phase 1: kernel microbenchmark per level x width x run length.
  for (const kernels::SimdLevel level : SupportedLevels()) {
    const kernels::KernelTable& table = kernels::KernelsFor(level);
    for (const size_t run_len : {size_t{8}, size_t{64}, size_t{512}}) {
      Row u16;
      u16.name = "kernel";
      u16.level = kernels::SimdLevelName(level);
      u16.width = "u16";
      u16.run_len = run_len;
      u16.ns_per_entry = MeasureKernelNs<uint16_t>(table, run_len, 11);
      rows.push_back(u16);
      Row u32 = u16;
      u32.width = "u32";
      u32.ns_per_entry = MeasureKernelNs<uint32_t>(table, run_len, 13);
      rows.push_back(u32);
      std::printf("kernel  %-6s run=%-4zu u16=%.3f ns/entry  u32=%.3f ns/entry\n",
                  u16.level.c_str(), run_len, u16.ns_per_entry,
                  u32.ns_per_entry);
    }
  }
  std::printf("\n");

  // Phase 2: the end-to-end walk per dispatch level, split into descent
  // (MatchedDepth) and score+merge.
  double scalar_ns = 0.0;
  double best_ns = 0.0;
  for (const kernels::SimdLevel level : SupportedLevels()) {
    const kernels::SimdLevel previous = kernels::SetActiveLevel(level);
    const WalkCost cost = MeasureWalk(*compact, contexts, /*seconds=*/0.6);
    kernels::SetActiveLevel(previous);
    Row r;
    r.name = "hotpath_walk";
    r.level = kernels::SimdLevelName(level);
    r.variant = "dense";
    r.recommend_ns = cost.recommend_ns;
    r.match_ns = cost.match_ns;
    r.merge_score_ns = std::max(0.0, cost.recommend_ns - cost.match_ns);
    r.qps = cost.qps;
    rows.push_back(r);
    std::printf("walk    %-6s recommend=%.0fns match=%.0fns score+merge=%.0fns "
                "qps=%.0f\n",
                r.level.c_str(), r.recommend_ns, r.match_ns, r.merge_score_ns,
                r.qps);
    if (level == kernels::SimdLevel::kScalar) scalar_ns = cost.recommend_ns;
    if (level == kernels::BestSupportedLevel()) best_ns = cost.recommend_ns;
  }

  // Phase 2b: the legacy sparse sort-merge walk (pre-dense reference).
  internal::ForceSparseMergeForTest().store(true);
  const WalkCost sparse = MeasureWalk(*compact, contexts, /*seconds=*/0.6);
  internal::ForceSparseMergeForTest().store(false);
  {
    Row r;
    r.name = "hotpath_walk";
    r.level = "scalar";
    r.variant = "sparse";
    r.recommend_ns = sparse.recommend_ns;
    r.match_ns = sparse.match_ns;
    r.merge_score_ns = std::max(0.0, sparse.recommend_ns - sparse.match_ns);
    r.qps = sparse.qps;
    rows.push_back(r);
    std::printf("walk    sparse recommend=%.0fns match=%.0fns "
                "score+merge=%.0fns qps=%.0f\n",
                r.recommend_ns, r.match_ns, r.merge_score_ns, r.qps);
  }

  // Phase 3: self-reported speedups.
  {
    Row r;
    r.name = "hotpath_speedup";
    r.level = kernels::SimdLevelName(kernels::BestSupportedLevel());
    r.vectorized_over_scalar = best_ns > 0.0 ? scalar_ns / best_ns : 0.0;
    r.dense_over_sparse =
        best_ns > 0.0 ? sparse.recommend_ns / best_ns : 0.0;
    rows.push_back(r);
    std::printf("\nspeedup: vectorized(%s)/scalar = %.2fx, dense/sparse = "
                "%.2fx\n",
                r.level.c_str(), r.vectorized_over_scalar,
                r.dense_over_sparse);
  }

  WriteJson(rows);
  return equivalent ? 0 : 1;
}
