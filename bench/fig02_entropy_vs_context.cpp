// Figure 2: average prediction entropy of the next query versus context
// length. The paper's curve drops dramatically as contexts lengthen,
// motivating sequence-wise (rather than pair-wise) prediction.

#include <iostream>

#include "eval/entropy.h"
#include "eval/table_printer.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Figure 2: average prediction entropy vs context "
                       "length",
              "entropy (log10) drops sharply as the context grows");

  ContextIndex index;
  index.Build(harness.train(), ContextIndex::Mode::kPrefix,
              /*max_context_length=*/5);
  const auto entropy_by_length = AveragePredictionEntropyByLength(index);

  TablePrinter table({"context length", "avg prediction entropy (log10)"});
  double previous = -1.0;
  bool monotone = true;
  for (const auto& [length, entropy] : entropy_by_length) {
    table.AddRow({std::to_string(length), FormatDouble(entropy)});
    // Tail lengths carry almost no weight; tolerate sub-0.01 jitter there.
    if (previous >= 0.0 && entropy > previous + 0.01) monotone = false;
    previous = entropy;
  }
  table.Print(std::cout);
  std::cout << "\nMonotone decrease with context length: "
            << (monotone ? "yes (matches the paper)" : "no") << "\n";
  return 0;
}
