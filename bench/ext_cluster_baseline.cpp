// Extension: click-through cluster baseline (paper Section II). The paper
// argues cluster-based approaches find *similar* queries — right for query
// substitution, wrong for recommending what a user asks *next*. This bench
// quantifies that argument by scoring the click-cluster model with the
// paper's next-query evaluation.

#include <iostream>

#include "eval/coverage.h"
#include "eval/evaluator.h"
#include "eval/table_printer.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Extension: click-through cluster baseline",
              "cluster-based recommendation trails the session-based "
              "methods on next-query accuracy (the paper's Section II "
              "argument, quantified)");

  const std::vector<PredictionModel*> models = {
      harness.ClickCluster(), harness.Cooccurrence(), harness.Adjacency(),
      harness.Mvmm()};
  TablePrinter table({"model", "NDCG@1", "NDCG@5", "coverage", "states"});
  for (PredictionModel* model : models) {
    const ModelAccuracy acc =
        EvaluateAccuracy(*model, harness.truth(), AccuracyOptions{});
    const CoverageResult coverage = MeasureCoverage(*model, harness.truth());
    table.AddRow({std::string(model->Name()),
                  FormatDouble(acc.ndcg_overall.at(1)),
                  FormatDouble(acc.ndcg_overall.at(5)),
                  FormatPercent(coverage.overall),
                  std::to_string(model->Stats().num_states)});
  }
  table.Print(std::cout);
  return 0;
}
