// Table V: sample sessions of each length (2..5), rendered from the
// aggregated training corpus.

#include <iostream>

#include "eval/table_printer.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Table V: sample sessions by length",
              "plausible refinement chains of lengths 2-5");

  TablePrinter table({"length", "frequency", "session"});
  for (size_t target_length = 2; target_length <= 5; ++target_length) {
    // The aggregate is sorted by descending frequency: the first hit is the
    // most popular session of that length.
    for (const AggregatedSession& session : harness.train_unreduced()) {
      if (session.queries.size() != target_length) continue;
      std::string rendered;
      for (QueryId q : session.queries) {
        if (!rendered.empty()) rendered += " => ";
        rendered += harness.dictionary().Text(q);
      }
      table.AddRow({std::to_string(target_length),
                    std::to_string(session.frequency), rendered});
      break;
    }
  }
  table.Print(std::cout);
  return 0;
}
