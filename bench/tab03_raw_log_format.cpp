// Table III: the raw search-log record format (machine id, query
// timestamp, query, clicked URLs with click timestamps), shown on real
// synthesized records in the TSV serialization.

#include <iostream>

#include "eval/table_printer.h"
#include "harness.h"
#include "log/log_record.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Table III: raw search-log record format",
              "machine id | query timestamp | query | clicks "
              "(timestamp, url)*");

  TablePrinter table(
      {"machine", "query ts (ms)", "query", "#clicks", "first click"});
  size_t shown = 0;
  for (const RawLogRecord& record : harness.train_records()) {
    if (record.clicks.empty() && shown % 2 == 0) continue;  // mix both kinds
    std::string first_click = "-";
    if (!record.clicks.empty()) {
      first_click = std::to_string(record.clicks[0].timestamp_ms) + " " +
                    record.clicks[0].url;
    }
    table.AddRow({std::to_string(record.machine_id),
                  std::to_string(record.timestamp_ms), record.query,
                  std::to_string(record.clicks.size()), first_click});
    if (++shown >= 6) break;
  }
  table.Print(std::cout);

  std::cout << "\nTSV wire format of the first record:\n  "
            << RecordToTsv(harness.train_records().front()) << "\n";
  return 0;
}
