// Figure 10: overall coverage of every method on the test contexts.
// The paper reports Co-occurrence highest (60.6%), Adjacency/VMM/MVMM tied
// second (56.8%), N-gram far behind.

#include <iostream>

#include "eval/coverage.h"
#include "eval/table_printer.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Figure 10: coverage of all methods",
              "Co-occurrence highest; Adjacency = VMM = MVMM tied second; "
              "N-gram far behind");

  TablePrinter table({"model", "coverage"});
  for (PredictionModel* model : harness.AllMethods()) {
    const CoverageResult result = MeasureCoverage(*model, harness.truth());
    table.AddRow({std::string(model->Name()), FormatPercent(result.overall)});
  }
  table.Print(std::cout);

  const double adj = MeasureCoverage(*harness.Adjacency(),
                                     harness.truth()).overall;
  const double vmm = MeasureCoverage(*harness.Vmm(0.05),
                                     harness.truth()).overall;
  const double mvmm = MeasureCoverage(*harness.Mvmm(),
                                      harness.truth()).overall;
  std::cout << "\nAdjacency / VMM / MVMM tie (paper: exactly equal): "
            << FormatPercent(adj, 2) << " / " << FormatPercent(vmm, 2)
            << " / " << FormatPercent(mvmm, 2) << "\n";
  return 0;
}
