// Ablation: data-reduction threshold. The paper discards aggregated
// sessions with frequency <= 5 (on a 2-billion-session corpus) and argues
// the loss is safe. This ablation sweeps the threshold on our corpus and
// reports the accuracy/coverage trade-off for the MVMM.

#include <iostream>

#include "core/mvmm_model.h"
#include "eval/coverage.h"
#include "eval/evaluator.h"
#include "eval/table_printer.h"
#include "harness.h"
#include "log/data_reduction.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Ablation: data-reduction frequency threshold",
              "mild reduction keeps accuracy while shrinking the model; "
              "aggressive reduction costs coverage");

  TablePrinter table({"min freq (exclusive)", "unique sessions kept",
                      "weight kept", "NDCG@5", "coverage", "PST states"});
  for (uint64_t threshold : {0ull, 1ull, 2ull, 5ull}) {
    ReductionOptions reduction;
    reduction.min_frequency_exclusive = threshold;
    reduction.max_session_length = harness.config().reduction_max_length;
    ReductionReport report;
    const std::vector<AggregatedSession> train =
        ReduceSessions(harness.train_unreduced(), reduction, &report);

    TrainingData data;
    data.sessions = &train;
    data.vocabulary_size = harness.dictionary().size();
    MvmmOptions options;
    options.default_max_depth = harness.config().vmm_max_depth;
    MvmmModel model(options);
    SQP_CHECK_OK(model.Train(data));

    const ModelAccuracy acc =
        EvaluateAccuracy(model, harness.truth(), AccuracyOptions{});
    const CoverageResult coverage = MeasureCoverage(model, harness.truth());
    table.AddRow({std::to_string(threshold),
                  std::to_string(report.sessions_kept),
                  FormatPercent(report.kept_weight_fraction()),
                  FormatDouble(acc.ndcg_overall.at(5)),
                  FormatPercent(coverage.overall),
                  std::to_string(model.Stats().num_states)});
  }
  table.Print(std::cout);
  return 0;
}
