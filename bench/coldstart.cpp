// Cold-start bench: what it costs to boot a serving replica, with and
// without the persisted snapshot blob (core/snapshot_io). The
// train-from-scratch path pays corpus counting + shared-PST build + sigma
// fit + compact packing on every replica; the blob paths pay one Save on
// the trainer and then O(file size) page-ins per replica — the ROADMAP
// "snapshot persistence" claim, tracked as BENCH_coldstart.json (see
// bench/README.md). The acceptance bar is mmap boot >= 10x faster than
// train-from-scratch boot on the default corpus.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/compact_snapshot.h"
#include "core/snapshot_io.h"
#include "harness.h"
#include "serve/recommender_engine.h"
#include "util/timer.h"

namespace {

using namespace sqp;
using sqp::bench::Harness;

constexpr char kBlobPath[] = "coldstart_snapshot.blob";

struct Measurement {
  std::string name;
  double boot_ms = 0.0;
  uint64_t blob_bytes = 0;
  double first_query_us = 0.0;
  double speedup_vs_train = 0.0;
};

/// One covered context for the first-query probe.
std::vector<QueryId> FirstContext(const Harness& harness) {
  for (const auto& entry : harness.truth()) {
    if (!entry.context.empty() && entry.context.size() <= 5) {
      return entry.context;
    }
  }
  SQP_CHECK(false && "no covered context in the harness truth set");
  return {};
}

double FirstQueryMicros(const RecommenderEngine& engine,
                        const std::vector<QueryId>& context) {
  WallTimer timer;
  const Recommendation rec = engine.Recommend(context, 5);
  const double us = timer.ElapsedSeconds() * 1e6;
  SQP_CHECK(rec.covered);
  return us;
}

void WriteJson(const std::vector<Measurement>& measurements) {
  std::FILE* out = std::fopen("BENCH_coldstart.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_coldstart.json\n");
    return;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(out,
                 "  {\"name\": \"%s\", \"boot_ms\": %.3f, "
                 "\"blob_bytes\": %llu, \"first_query_us\": %.3f, "
                 "\"speedup_vs_train\": %.1f}%s\n",
                 m.name.c_str(), m.boot_ms,
                 static_cast<unsigned long long>(m.blob_bytes),
                 m.first_query_us, m.speedup_vs_train,
                 i + 1 == measurements.size() ? "" : ",");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("JSON results written to BENCH_coldstart.json\n");
}

}  // namespace

int main() {
  Harness harness;
  sqp::bench::PrintBanner(
      harness, "cold-start cost of a serving replica (train vs snapshot blob)",
      "booting from a memory-mapped blob is >= 10x faster than "
      "train-from-scratch and serves the identical model");

  // Train-from-scratch boot: everything a blob-less replica must do before
  // its first answer — corpus counting (no prebuilt index), shared-PST
  // build, sigma fit, compact pack, publish. Best of three runs.
  TrainingData scratch_data;
  scratch_data.sessions = &harness.train();
  scratch_data.vocabulary_size = harness.training_data().vocabulary_size;
  MvmmOptions options;
  options.default_max_depth = harness.config().vmm_max_depth;

  const std::vector<QueryId> probe = FirstContext(harness);
  std::shared_ptr<const CompactSnapshot> trained_compact;
  Measurement train;
  train.name = "train_boot";
  train.boot_ms = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    RecommenderEngine engine(EngineOptions{.num_threads = 1});
    WallTimer timer;
    auto built = ModelSnapshot::Build(scratch_data, options, /*version=*/1);
    SQP_CHECK(built.ok());
    trained_compact =
        CompactSnapshot::FromSnapshot(*built.value(), CompactOptions{});
    engine.Publish(trained_compact);
    const double ms = timer.ElapsedMillis();
    const double first_us = FirstQueryMicros(engine, probe);
    if (ms < train.boot_ms) {
      train.boot_ms = ms;
      train.first_query_us = first_us;
    }
  }
  train.speedup_vs_train = 1.0;
  std::printf("train_boot     %9.3f ms   first query %7.3f us\n",
              train.boot_ms, train.first_query_us);

  // One Save on the "trainer" side; replicas then boot from the blob.
  Measurement save;
  save.name = "save";
  {
    WallTimer timer;
    SQP_CHECK_OK(SaveCompactSnapshot(*trained_compact, kBlobPath));
    save.boot_ms = timer.ElapsedMillis();
  }
  save.blob_bytes = std::filesystem::file_size(kBlobPath);
  std::printf("save           %9.3f ms   blob %llu bytes\n", save.boot_ms,
              static_cast<unsigned long long>(save.blob_bytes));

  // Blob boots, best of several runs each: mmap (zero-copy, the cold-boot
  // path LoadAndPublish uses) and copy (owned arrays).
  const auto measure_boot = [&](const std::string& name, auto boot) {
    Measurement m;
    m.name = name;
    m.blob_bytes = save.blob_bytes;
    m.boot_ms = 1e300;
    for (int rep = 0; rep < 10; ++rep) {
      RecommenderEngine engine(EngineOptions{.num_threads = 1});
      WallTimer timer;
      boot(&engine);
      const double ms = timer.ElapsedMillis();
      const double first_us = FirstQueryMicros(engine, probe);
      if (ms < m.boot_ms) {
        m.boot_ms = ms;
        m.first_query_us = first_us;
      }
    }
    m.speedup_vs_train = train.boot_ms / m.boot_ms;
    std::printf("%-14s %9.3f ms   first query %7.3f us   %.0fx vs train\n",
                name.c_str(), m.boot_ms, m.first_query_us,
                m.speedup_vs_train);
    return m;
  };

  const Measurement mmap_boot =
      measure_boot("mmap_boot", [](RecommenderEngine* engine) {
        SQP_CHECK_OK(engine->LoadAndPublish(kBlobPath));
      });
  const Measurement copy_boot =
      measure_boot("copy_boot", [](RecommenderEngine* engine) {
        auto loaded = LoadCompactSnapshot(kBlobPath);
        SQP_CHECK(loaded.ok());
        engine->Publish(std::move(loaded.value()));
      });

  // Sanity: the blob-booted replica is the trained model, bit for bit.
  {
    RecommenderEngine replica(EngineOptions{.num_threads = 1});
    SQP_CHECK_OK(replica.LoadAndPublish(kBlobPath));
    SnapshotScratch scratch;
    size_t checked = 0;
    for (const auto& entry : harness.truth()) {
      if (entry.context.empty() || entry.context.size() > 5) continue;
      const Recommendation want =
          trained_compact->Recommend(entry.context, 10, &scratch);
      const Recommendation got = replica.Recommend(entry.context, 10);
      SQP_CHECK(want.covered == got.covered);
      SQP_CHECK(want.queries.size() == got.queries.size());
      for (size_t i = 0; i < want.queries.size(); ++i) {
        SQP_CHECK(want.queries[i].query == got.queries[i].query);
        SQP_CHECK(want.queries[i].score == got.queries[i].score);
      }
      if (++checked >= 2048) break;
    }
    std::printf("verified %zu contexts bit-identical after mmap boot\n",
                checked);
  }

  WriteJson({train, save, mmap_boot, copy_boot});
  std::filesystem::remove(kBlobPath);

  if (mmap_boot.speedup_vs_train < 10.0) {
    std::fprintf(stderr,
                 "WARNING: mmap boot speedup %.1fx below the 10x target\n",
                 mmap_boot.speedup_vs_train);
    return 1;
  }
  return 0;
}
