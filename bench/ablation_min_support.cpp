// Ablation: PST candidate support threshold (paper stage (a): "a user
// threshold could be set to filter those infrequent training sequences").
// Sweeps min_support for a single VMM (0.05) and reports size vs quality.

#include <iostream>

#include "core/vmm_model.h"
#include "eval/coverage.h"
#include "eval/evaluator.h"
#include "eval/table_printer.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Ablation: PST candidate min-support",
              "raising the support floor shrinks the PST sharply before it "
              "hurts accuracy/coverage");

  TablePrinter table({"min support", "PST states", "memory (MB)", "NDCG@5",
                      "coverage"});
  for (uint64_t min_support : {1ull, 2ull, 3ull, 5ull, 10ull}) {
    VmmOptions options;
    options.epsilon = 0.05;
    options.max_depth = harness.config().vmm_max_depth;
    options.min_support = min_support;
    VmmModel model(options);
    SQP_CHECK_OK(model.Train(harness.training_data()));
    const ModelAccuracy acc =
        EvaluateAccuracy(model, harness.truth(), AccuracyOptions{});
    const CoverageResult coverage = MeasureCoverage(model, harness.truth());
    const ModelStats stats = model.Stats();
    table.AddRow({std::to_string(min_support),
                  std::to_string(stats.num_states),
                  FormatDouble(static_cast<double>(stats.memory_bytes) /
                                   1048576.0, 2),
                  FormatDouble(acc.ndcg_overall.at(5)),
                  FormatPercent(coverage.overall)});
  }
  table.Print(std::cout);
  return 0;
}
