// Figure 13: overall user-evaluation precision and recall per method.
// Paper: sequence-based models have much higher precision and moderately
// higher recall; MVMM best overall (86.1% precision, 55.2% recall).

#include <iostream>

#include "eval/table_printer.h"
#include "eval/user_study.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Figure 13: user-evaluation precision and recall",
              "sequence models: much higher precision, comparable or better "
              "recall; MVMM best");

  std::vector<const PredictionModel*> models;
  for (PredictionModel* model : harness.UserStudyMethods()) {
    models.push_back(model);
  }
  const UserStudyResult result =
      RunUserStudy(models, harness.truth(), harness.dictionary(),
                   harness.oracle(), UserStudyOptions{});

  TablePrinter table({"model", "precision", "recall", "# predicted",
                      "# approved"});
  for (const MethodUserEval& eval : result.methods) {
    table.AddRow({eval.model, FormatPercent(eval.overall.precision()),
                  FormatPercent(eval.overall.recall()),
                  std::to_string(eval.overall.num_predicted),
                  std::to_string(eval.overall.num_approved)});
  }
  table.Print(std::cout);
  std::cout << "\nPaper reference points: Co-occ 60.9% / 50.6%; MVMM 86.1% / "
               "55.2% (precision / recall).\n";
  return 0;
}
