// Network-tier bench: QPS and round-trip latency of the wire-protocol
// serving path (net/shard_server + net/router_client) against the same
// fleet served in-process, as the number of client connections grows.
// Every run first re-verifies the tier's core claim — the networked
// answers are bit-identical to in-process sharded serving, over loopback
// AND real TCP — and exits non-zero on any mismatch. Emits
// BENCH_net.json (see bench/README.md).
//
// On a 1-core container the connection-scaling rows measure protocol +
// epoll overhead, not parallel speedup; hardware_threads is recorded so
// cross-PR comparisons can normalize.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "net/loopback_transport.h"
#include "net/router_client.h"
#include "net/shard_server.h"
#include "net/tcp_transport.h"
#include "serve/sharded_engine.h"
#include "util/timer.h"

namespace {

using namespace sqp;
using sqp::bench::Harness;

constexpr size_t kShards = 2;
constexpr size_t kBatch = 256;
constexpr double kWindowSeconds = 0.8;

struct Measurement {
  std::string transport;
  size_t connections = 0;
  double qps = 0.0;       // items served per second, all connections
  double p50_us = 0.0;    // round-trip micros per 256-item batch
  double p99_us = 0.0;
};

double Percentile(std::vector<double>* sorted_in_place, double q) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t at = std::min(
      sorted_in_place->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_in_place->size())));
  return (*sorted_in_place)[at];
}

std::vector<std::vector<QueryId>> Contexts(const Harness& harness) {
  std::vector<std::vector<QueryId>> out;
  for (const auto& entry : harness.truth()) {
    if (entry.context.size() <= 5) out.push_back(entry.context);
    if (out.size() >= 4096) break;
  }
  return out;
}

bool SameRecommendation(const Recommendation& a, const Recommendation& b) {
  if (a.covered != b.covered || a.matched_length != b.matched_length ||
      a.queries.size() != b.queries.size()) {
    return false;
  }
  for (size_t i = 0; i < a.queries.size(); ++i) {
    if (a.queries[i].query != b.queries[i].query ||
        a.queries[i].score != b.queries[i].score) {
      return false;
    }
  }
  return true;
}

/// True when the router answers every context exactly as the in-process
/// fleet does (all items kOk, every recommendation bit-identical).
bool RouterMatchesReference(net::RouterClient* router,
                            const ShardedEngine& reference,
                            const std::vector<std::vector<QueryId>>& contexts) {
  for (size_t start = 0; start < contexts.size(); start += kBatch) {
    const size_t n = std::min(kBatch, contexts.size() - start);
    const std::vector<std::vector<QueryId>> slice(
        contexts.begin() + static_cast<ptrdiff_t>(start),
        contexts.begin() + static_cast<ptrdiff_t>(start + n));
    const BatchResult batch = router->RecommendMany(slice, 5);
    const std::vector<Recommendation> expected =
        reference.RecommendMany(slice, 5);
    if (batch.results.size() != expected.size()) return false;
    for (size_t i = 0; i < expected.size(); ++i) {
      if (batch.statuses[i] != StatusCode::kOk) return false;
      if (!SameRecommendation(expected[i], batch.results[i])) return false;
    }
  }
  return true;
}

/// One serving window: `connections` clients (one thread + one
/// RouterClient each) pump 256-context batches as fast as the fleet
/// answers. Returns total items/s and per-batch round-trip percentiles.
Measurement Pump(const std::string& transport, size_t connections,
                 const std::function<net::RouterClient::TransportFactory()>&
                     make_factory,
                 const std::vector<std::vector<QueryId>>& contexts) {
  std::vector<uint64_t> served(connections, 0);
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      net::RouterClient router(kShards, make_factory());
      std::vector<ContextRef> refs;
      size_t cursor = c * 37;  // stagger the request mixes
      WallTimer window;
      while (window.ElapsedSeconds() < kWindowSeconds) {
        refs.clear();
        for (size_t i = 0; i < kBatch; ++i) {
          const std::vector<QueryId>& context =
              contexts[cursor % contexts.size()];
          refs.emplace_back(context.data(), context.size());
          ++cursor;
        }
        WallTimer timer;
        const BatchResult batch =
            router.RecommendMany(std::span<const ContextRef>(refs), 5);
        latencies[c].push_back(timer.ElapsedSeconds() * 1e6);
        served[c] += batch.served;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  Measurement m;
  m.transport = transport;
  m.connections = connections;
  uint64_t total = 0;
  std::vector<double> merged;
  for (size_t c = 0; c < connections; ++c) {
    total += served[c];
    merged.insert(merged.end(), latencies[c].begin(), latencies[c].end());
  }
  m.qps = static_cast<double>(total) / kWindowSeconds;
  m.p50_us = Percentile(&merged, 0.50);
  m.p99_us = Percentile(&merged, 0.99);
  return m;
}

void WriteJson(bool equivalent, const std::vector<Measurement>& measurements,
               size_t hardware_threads) {
  std::FILE* out = std::fopen("BENCH_net.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_net.json\n");
    return;
  }
  std::fprintf(out, "[\n");
  std::fprintf(out,
               "  {\"name\": \"net_equivalence\", \"shards\": %zu, "
               "\"equal\": %d},\n",
               kShards, equivalent ? 1 : 0);
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    std::fprintf(
        out,
        "  {\"name\": \"net_serving\", \"transport\": \"%s\", "
        "\"connections\": %zu, \"shards\": %zu, \"batch\": %zu, "
        "\"qps\": %.1f, \"p50_us\": %.3f, \"p99_us\": %.3f, "
        "\"hardware_threads\": %zu}%s\n",
        m.transport.c_str(), m.connections, kShards, kBatch, m.qps, m.p50_us,
        m.p99_us, hardware_threads, i + 1 == measurements.size() ? "" : ",");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("JSON results written to BENCH_net.json\n");
}

}  // namespace

int main() {
  // A wedged socket must fail the bench run, never hang the CI job.
  ::alarm(180);

  Harness harness;
  sqp::bench::PrintBanner(
      harness, "network serving tier (QPS / p99 vs client connections)",
      "the TCP fleet serves bit-identical answers to in-process sharded "
      "serving; throughput is protocol + event-loop overhead on top of "
      "the same engine walk");

  const size_t hardware =
      std::max<unsigned>(1, std::thread::hardware_concurrency());
  std::printf("hardware threads: %zu\n\n", hardware);

  MvmmOptions options;
  options.default_max_depth = harness.config().vmm_max_depth;
  ShardedTrainOptions train;
  train.model = options;
  train.num_shards = kShards;
  train.vocabulary_size = harness.training_data().vocabulary_size;
  auto trained = TrainShardedSnapshots(harness.train(), train);
  SQP_CHECK(trained.ok());

  ShardedEngine reference(
      ShardedEngineOptions{.num_shards = kShards, .num_threads = 1});
  std::vector<std::unique_ptr<RecommenderEngine>> loopback_engines;
  std::vector<const RecommenderEngine*> loopback_borrowed;
  for (size_t s = 0; s < kShards; ++s) {
    reference.PublishShard(s, trained->shards[s]);
    loopback_engines.push_back(std::make_unique<RecommenderEngine>(
        EngineOptions{.num_threads = 1}));
    loopback_engines.back()->Publish(trained->shards[s]);
    loopback_borrowed.push_back(loopback_engines.back().get());
  }

  // The TCP fleet cold-boots off a manifest, exactly like production.
  const std::string manifest =
      (std::filesystem::temp_directory_path() /
       ("sqp_bench_net_" + std::to_string(::getpid()) + ".manifest"))
          .string();
  SQP_CHECK_OK(
      SaveShardedSnapshots(trained->shards, CompactOptions{}, manifest));
  std::vector<std::unique_ptr<net::ShardServer>> servers;
  std::vector<uint16_t> ports;
  for (uint32_t s = 0; s < kShards; ++s) {
    auto server = std::make_unique<net::ShardServer>();
    SQP_CHECK_OK(server->StartFromManifest(manifest, s));
    ports.push_back(server->port());
    servers.push_back(std::move(server));
  }

  const std::vector<std::vector<QueryId>> contexts = Contexts(harness);
  SQP_CHECK(!contexts.empty());

  const auto tcp_factory = [&] {
    return net::TcpTransportFactory("127.0.0.1", ports);
  };
  const auto loopback_factory = [&] {
    return net::LoopbackTransportFactory(loopback_borrowed,
                                         /*fleet_version=*/1);
  };

  // Equivalence first — the claim every throughput number rests on.
  bool equivalent = true;
  {
    net::RouterClient tcp(kShards, tcp_factory());
    net::RouterClient loopback(kShards, loopback_factory());
    equivalent = RouterMatchesReference(&loopback, reference, contexts) &&
                 RouterMatchesReference(&tcp, reference, contexts);
    std::printf("equivalence (loopback + tcp vs in-process): %s\n\n",
                equivalent ? "bit-identical" : "MISMATCH");
  }

  std::vector<Measurement> measurements;
  measurements.push_back(Pump("loopback", 1, loopback_factory, contexts));
  for (const size_t connections : {size_t{1}, size_t{2}, size_t{4}}) {
    measurements.push_back(Pump("tcp", connections, tcp_factory, contexts));
  }
  for (const Measurement& m : measurements) {
    std::printf("%-9s connections=%zu  qps=%.0f  batch_p50=%.0fus  "
                "batch_p99=%.0fus\n",
                m.transport.c_str(), m.connections, m.qps, m.p50_us,
                m.p99_us);
  }

  WriteJson(equivalent, measurements, hardware);
  for (auto& server : servers) server->Stop();
  std::error_code ec;
  std::filesystem::remove(manifest, ec);
  for (uint32_t s = 0; s < kShards; ++s) {
    std::filesystem::remove(manifest + ".shard" + std::to_string(s), ec);
  }
  if (!equivalent) {
    std::fprintf(stderr,
                 "FAIL: networked serving diverged from in-process\n");
    return 1;
  }
  return 0;
}
