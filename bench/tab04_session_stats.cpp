// Table IV: summary statistics of the segmented sessions for the training
// (120-day analog) and test (30-day analog) splits.

#include <iostream>

#include "eval/table_printer.h"
#include "harness.h"
#include "log/session_stats.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Table IV: summary statistics of segmented sessions",
              "#searches > #sessions > #unique queries ordering; test split "
              "about 1/4 of the training split");

  TablePrinter table(
      {"data", "# sessions", "# searches", "# unique queries",
       "# unique sessions", "mean length"});
  const auto add_row = [&](const char* name, const SessionSummary& summary,
                           const std::vector<AggregatedSession>& sessions) {
    table.AddRow({name, std::to_string(summary.num_sessions),
                  std::to_string(summary.num_searches),
                  std::to_string(summary.num_unique_queries),
                  std::to_string(summary.num_unique_sessions),
                  FormatDouble(MeanSessionLength(sessions), 2)});
  };
  add_row("training", harness.train_summary(), harness.train_unreduced());
  add_row("test", harness.test_summary(), harness.test_unreduced());
  table.Print(std::cout);

  std::cout << "\nPaper (at commercial-log scale): training 2.0B sessions / "
               "3.9B searches / 1.1B unique queries; test 486M / 1.1B / "
               "356M. The ordering and the ~4:1 split ratio are the "
               "reproduced shape.\n";
  return 0;
}
