// Ablation: MVMM mixture weighting scheme. The paper weighs components by
// a Gaussian of the edit distance between the context and each component's
// matched state (Eq. 4), with widths learned by Newton iteration. This
// ablation compares that scheme against uniform weights and
// longest-match-takes-all.

#include <iostream>

#include "core/mvmm_model.h"
#include "eval/evaluator.h"
#include "eval/table_printer.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Ablation: MVMM mixture weighting scheme",
              "the learned Gaussian weighting should match or beat the "
              "naive schemes, justifying Eq. 4 + the Newton fit");

  const std::vector<std::pair<MixtureWeighting, const char*>> schemes = {
      {MixtureWeighting::kGaussianEditDistance,
       "Gaussian(edit distance), learned sigma (paper)"},
      {MixtureWeighting::kUniform, "uniform"},
      {MixtureWeighting::kLongestMatch, "longest match takes all"},
  };

  TablePrinter table({"weighting", "NDCG@1", "NDCG@3", "NDCG@5"});
  for (const auto& [weighting, label] : schemes) {
    MvmmOptions options;
    options.default_max_depth = harness.config().vmm_max_depth;
    options.weighting = weighting;
    MvmmModel model(options);
    SQP_CHECK_OK(model.Train(harness.training_data()));
    const ModelAccuracy acc =
        EvaluateAccuracy(model, harness.truth(), AccuracyOptions{});
    table.AddRow({label, FormatDouble(acc.ndcg_overall.at(1)),
                  FormatDouble(acc.ndcg_overall.at(3)),
                  FormatDouble(acc.ndcg_overall.at(5))});
  }
  table.Print(std::cout);
  return 0;
}
