// Extension: HMM with hidden intent states — the paper's named future-work
// direction (Section VI: "more sophisticated Markov models such as HMM ...
// It remains to be seen whether more sophisticated models can further
// raise the performance bar"). This bench answers that question on the
// synthetic corpus.

#include <iostream>

#include "eval/coverage.h"
#include "eval/evaluator.h"
#include "eval/log_loss.h"
#include "eval/table_printer.h"
#include "harness.h"
#include "util/timer.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Extension (future work): HMM vs the paper's models",
              "does a latent-intent HMM raise the bar over MVMM?");

  WallTimer hmm_timer;
  PredictionModel* hmm = harness.Hmm();
  const double hmm_train_ms = hmm_timer.ElapsedMillis();

  const std::vector<PredictionModel*> models = {
      harness.Adjacency(), harness.Mvmm(), hmm};
  TablePrinter table(
      {"model", "NDCG@1", "NDCG@5", "coverage", "log-loss", "memory (MB)"});
  for (PredictionModel* model : models) {
    const ModelAccuracy acc =
        EvaluateAccuracy(*model, harness.truth(), AccuracyOptions{});
    const CoverageResult coverage = MeasureCoverage(*model, harness.truth());
    table.AddRow(
        {std::string(model->Name()), FormatDouble(acc.ndcg_overall.at(1)),
         FormatDouble(acc.ndcg_overall.at(5)),
         FormatPercent(coverage.overall),
         FormatDouble(AverageLogLoss(*model, harness.test()), 3),
         FormatDouble(static_cast<double>(model->Stats().memory_bytes) /
                          1048576.0, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nHMM training (incl. corpus-shared overheads): "
            << FormatDouble(hmm_train_ms, 0) << " ms\n";
  std::cout << "Interpretation: the HMM smooths across latent intents, "
               "which helps log-loss on sparse contexts but blurs the "
               "sharp next-query ranking the PST models exploit.\n";
  return 0;
}
