// Table VII: memory footprint of every method. The paper: MVMM costs only
// marginally more than a single VMM thanks to the merged PST (nodes shared
// across components with a small per-component tag); VMM-family models cost
// about twice the pair-wise/N-gram models.

#include <iostream>

#include "eval/table_printer.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Table VII: memory footprint for all methods",
              "MVMM marginally above a single VMM (merged PST); VMM family "
              "heavier than pair-wise / N-gram");

  TablePrinter table({"model", "memory (MB)", "states", "count entries"});
  for (PredictionModel* model : harness.AllMethods()) {
    const ModelStats stats = model->Stats();
    table.AddRow({stats.name,
                  FormatDouble(static_cast<double>(stats.memory_bytes) /
                                   1048576.0, 2),
                  std::to_string(stats.num_states),
                  std::to_string(stats.num_entries)});
  }
  table.Print(std::cout);

  const uint64_t mvmm_nodes = harness.Mvmm()->Stats().num_states;
  const uint64_t vmm0_nodes = harness.Vmm(0.0)->Stats().num_states;
  std::cout << "\nMerged-PST check (paper Section V-F.2): MVMM nodes ("
            << mvmm_nodes << ") == full VMM(0.0) nodes (" << vmm0_nodes
            << "): " << (mvmm_nodes == vmm0_nodes ? "yes" : "no") << "\n";
  return 0;
}
