// Table VII: memory footprint of every method. The paper: MVMM costs only
// marginally more than a single VMM thanks to the merged PST (nodes shared
// across components with a small per-component tag); VMM-family models cost
// about twice the pair-wise/N-gram models.
//
// Beyond the paper's table, this binary is the repo's tracked memory
// surface: it additionally packs the trained MVMM snapshot into the
// CompactSnapshot serving layout (CSR arrays + ancestor-closed top-K +
// 16-bit quantized counts) at several K, verifies the served top-10 lists
// against the full model over the ground-truth contexts, and emits
// BENCH_memory.json — bytes, bytes/state and bytes/entry per model plus
// the full-vs-compact compression ratio and top-10 agreement rate, for
// cross-PR trend tracking (see bench/README.md).

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/compact_snapshot.h"
#include "eval/table_printer.h"
#include "harness.h"

namespace {

using namespace sqp;
using namespace sqp::bench;

struct MemoryRow {
  std::string name;
  uint64_t memory_bytes = 0;
  uint64_t num_states = 0;
  uint64_t num_entries = 0;
  size_t top_k = 0;               // compact rows only
  double compression_ratio = 0.0; // vs the full MVMM snapshot
  double top10_agreement = -1.0;  // fraction of contexts with identical top-10
};

MemoryRow RowFromStats(const ModelStats& stats) {
  MemoryRow row;
  row.name = stats.name;
  row.memory_bytes = stats.memory_bytes;
  row.num_states = stats.num_states;
  row.num_entries = stats.num_entries;
  return row;
}

double BytesPer(uint64_t bytes, uint64_t denom) {
  return denom == 0 ? 0.0 : static_cast<double>(bytes) /
                                static_cast<double>(denom);
}

/// Fraction of contexts whose top-10 recommendation list (query ids, in
/// order) is identical between the full and the compact snapshot.
double Top10Agreement(const ModelSnapshot& full, const CompactSnapshot& compact,
                      const std::vector<std::vector<QueryId>>& contexts) {
  SnapshotScratch scratch;
  size_t same = 0;
  for (const std::vector<QueryId>& context : contexts) {
    const Recommendation a = full.Recommend(context, 10, &scratch);
    const Recommendation b = compact.Recommend(context, 10, &scratch);
    bool equal = a.queries.size() == b.queries.size();
    for (size_t i = 0; equal && i < a.queries.size(); ++i) {
      equal = a.queries[i].query == b.queries[i].query;
    }
    same += equal ? 1 : 0;
  }
  return contexts.empty() ? 1.0
                          : static_cast<double>(same) /
                                static_cast<double>(contexts.size());
}

void WriteJson(const std::vector<MemoryRow>& rows) {
  std::FILE* out = std::fopen("BENCH_memory.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_memory.json\n");
    return;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const MemoryRow& r = rows[i];
    std::fprintf(out,
                 "  {\"name\": \"%s\", \"memory_bytes\": %llu, "
                 "\"states\": %llu, \"entries\": %llu, "
                 "\"bytes_per_state\": %.2f, \"bytes_per_entry\": %.2f",
                 r.name.c_str(),
                 static_cast<unsigned long long>(r.memory_bytes),
                 static_cast<unsigned long long>(r.num_states),
                 static_cast<unsigned long long>(r.num_entries),
                 BytesPer(r.memory_bytes, r.num_states),
                 BytesPer(r.memory_bytes, r.num_entries));
    if (r.top_k != 0) {
      std::fprintf(out,
                   ", \"top_k\": %zu, \"compression_ratio\": %.2f, "
                   "\"top10_agreement\": %.4f",
                   r.top_k, r.compression_ratio, r.top10_agreement);
    }
    std::fprintf(out, "}%s\n", i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("JSON results written to BENCH_memory.json\n");
}

}  // namespace

int main() {
  Harness harness;
  PrintBanner(harness, "Table VII: memory footprint for all methods",
              "MVMM marginally above a single VMM (merged PST); VMM family "
              "heavier than pair-wise / N-gram; compact serving snapshot "
              ">= 4x below the full MVMM");

  std::vector<MemoryRow> rows;
  TablePrinter table({"model", "memory (MB)", "states", "count entries"});
  for (PredictionModel* model : harness.AllMethods()) {
    const ModelStats stats = model->Stats();
    table.AddRow({stats.name,
                  FormatDouble(static_cast<double>(stats.memory_bytes) /
                                   1048576.0, 2),
                  std::to_string(stats.num_states),
                  std::to_string(stats.num_entries)});
    rows.push_back(RowFromStats(stats));
  }
  table.Print(std::cout);

  const uint64_t mvmm_nodes = harness.Mvmm()->Stats().num_states;
  const uint64_t vmm0_nodes = harness.Vmm(0.0)->Stats().num_states;
  std::cout << "\nMerged-PST check (paper Section V-F.2): MVMM nodes ("
            << mvmm_nodes << ") == full VMM(0.0) nodes (" << vmm0_nodes
            << "): " << (mvmm_nodes == vmm0_nodes ? "yes" : "no") << "\n";

  // The serving pair: the full ModelSnapshot the engine would publish, and
  // its CompactSnapshot re-packs at several top-K settings.
  MvmmOptions options;
  options.default_max_depth = harness.config().vmm_max_depth;
  auto built = ModelSnapshot::Build(harness.training_data(), options, 1);
  SQP_CHECK(built.ok());
  const std::shared_ptr<const ModelSnapshot> full = built.value();
  const ModelStats full_stats = full->Stats();
  {
    MemoryRow row = RowFromStats(full_stats);
    row.name = "MVMM snapshot (full)";
    rows.push_back(row);
  }

  std::vector<std::vector<QueryId>> contexts;
  for (const auto& entry : harness.truth()) {
    if (entry.context.size() <= 5) contexts.push_back(entry.context);
    if (contexts.size() >= 4096) break;
  }

  std::printf("\nCompact serving snapshot vs full (%llu bytes):\n",
              static_cast<unsigned long long>(full_stats.memory_bytes));
  for (const size_t top_k : {size_t{10}, size_t{16}, size_t{32}}) {
    const auto compact =
        CompactSnapshot::FromSnapshot(*full, CompactOptions{.top_k = top_k});
    MemoryRow row = RowFromStats(compact->Stats());
    row.name = "MVMM snapshot (compact K=" + std::to_string(top_k) + ")";
    row.top_k = top_k;
    row.compression_ratio =
        BytesPer(full_stats.memory_bytes, row.memory_bytes);
    row.top10_agreement = Top10Agreement(*full, *compact, contexts);
    std::printf(
        "  K=%-3zu %8llu bytes  ratio %.2fx  top-10 agreement %.4f "
        "(%zu contexts)\n",
        top_k, static_cast<unsigned long long>(row.memory_bytes),
        row.compression_ratio, row.top10_agreement, contexts.size());
    rows.push_back(row);
  }

  WriteJson(rows);
  return 0;
}
