#include "harness.h"

#include <cstdio>
#include <cstdlib>

#include "log/session_segmenter.h"

namespace sqp::bench {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

}  // namespace

HarnessConfig HarnessConfig::FromEnv() {
  HarnessConfig config;
  config.train_sessions =
      EnvSize("SQP_BENCH_TRAIN_SESSIONS", config.train_sessions);
  config.test_sessions =
      EnvSize("SQP_BENCH_TEST_SESSIONS", config.test_sessions);
  return config;
}

Harness::Harness(HarnessConfig config) : config_(config) {
  vocabulary_ = std::make_unique<Vocabulary>(
      VocabularyConfig{.num_terms = 2500, .synonym_fraction = 0.3},
      config_.vocabulary_seed);
  topics_ = std::make_unique<TopicModel>(vocabulary_.get(), TopicModelConfig{},
                                         config_.topic_seed);

  const size_t head_intents = static_cast<size_t>(
      static_cast<double>(topics_->num_intents()) *
      config_.established_intent_fraction);

  SynthesizerConfig train_synth;
  train_synth.num_sessions = config_.train_sessions;
  train_synth.num_machines = config_.train_sessions / 25 + 1;
  train_synth.session.head_intents = head_intents;
  LogSynthesizer train_synthesizer(topics_.get(), train_synth);
  train_corpus_ = train_synthesizer.Synthesize(config_.train_seed, &oracle_);

  SynthesizerConfig test_synth = train_synth;
  test_synth.num_sessions = config_.test_sessions;
  test_synth.num_machines = config_.test_sessions / 25 + 1;
  test_synth.session.novel_fraction = config_.test_novel_fraction;
  LogSynthesizer test_synthesizer(topics_.get(), test_synth);
  test_corpus_ = test_synthesizer.Synthesize(config_.test_seed, &oracle_);

  SessionSegmenter segmenter;
  std::vector<Session> train_segmented;
  std::vector<Session> test_segmented;
  SQP_CHECK_OK(
      segmenter.Segment(train_corpus_.records, &dictionary_, &train_segmented));
  SQP_CHECK_OK(
      segmenter.Segment(test_corpus_.records, &dictionary_, &test_segmented));

  SessionAggregator train_aggregator;
  train_aggregator.Add(train_segmented);
  train_unreduced_ = train_aggregator.Finish();
  train_summary_ = train_aggregator.Summary();
  SessionAggregator test_aggregator;
  test_aggregator.Add(test_segmented);
  test_unreduced_ = test_aggregator.Finish();
  test_summary_ = test_aggregator.Summary();

  ReductionOptions reduction;
  reduction.min_frequency_exclusive = config_.reduction_min_frequency;
  reduction.max_session_length = config_.reduction_max_length;
  train_ = ReduceSessions(train_unreduced_, reduction,
                          &train_reduction_report_);
  // The test split keeps rare sessions: at 5 orders of magnitude below the
  // paper's corpus, a frequency cut on one month of data would erase the
  // long-session tail entirely (the paper's cut at <=5 on 486M sessions
  // still left tens of millions of rare long sessions to evaluate on).
  ReductionOptions test_reduction = reduction;
  test_reduction.min_frequency_exclusive = 0;
  test_ = ReduceSessions(test_unreduced_, test_reduction, nullptr);
  truth_ = BuildGroundTruth(test_, 5);
  roles_ = ComputeQueryRoles(train_);
}

TrainingData Harness::training_data() const {
  TrainingData data;
  data.sessions = &train_;
  data.vocabulary_size = dictionary_.size();
  data.records = &train_corpus_.records;
  data.dictionary = &dictionary_;
  return data;
}

PredictionModel* Harness::GetOrTrain(const std::string& key,
                                     const ModelConfig& config) {
  auto it = models_.find(key);
  if (it != models_.end()) return it->second.get();
  std::unique_ptr<PredictionModel> model = CreateModel(config);
  SQP_CHECK(model != nullptr);
  SQP_CHECK_OK(model->Train(training_data()));
  PredictionModel* raw = model.get();
  models_.emplace(key, std::move(model));
  return raw;
}

PredictionModel* Harness::Adjacency() {
  ModelConfig config;
  config.kind = ModelKind::kAdjacency;
  return GetOrTrain("adjacency", config);
}

PredictionModel* Harness::Cooccurrence() {
  ModelConfig config;
  config.kind = ModelKind::kCooccurrence;
  return GetOrTrain("cooccurrence", config);
}

PredictionModel* Harness::Ngram() {
  ModelConfig config;
  config.kind = ModelKind::kNgram;
  return GetOrTrain("ngram", config);
}

PredictionModel* Harness::Vmm(double epsilon) {
  ModelConfig config;
  config.kind = ModelKind::kVmm;
  config.vmm.epsilon = epsilon;
  config.vmm.max_depth = config_.vmm_max_depth;
  return GetOrTrain("vmm-" + std::to_string(epsilon), config);
}

PredictionModel* Harness::Mvmm() {
  ModelConfig config;
  config.kind = ModelKind::kMvmm;
  config.mvmm.default_max_depth = config_.vmm_max_depth;
  return GetOrTrain("mvmm", config);
}

PredictionModel* Harness::ClickCluster() {
  ModelConfig config;
  config.kind = ModelKind::kClickCluster;
  return GetOrTrain("click-cluster", config);
}

PredictionModel* Harness::Hmm() {
  ModelConfig config;
  config.kind = ModelKind::kHmm;
  // More latent states than the library default: the corpus has thousands
  // of latent intents, so give the HMM a fair chance.
  config.hmm.num_states = 48;
  return GetOrTrain("hmm", config);
}

std::vector<PredictionModel*> Harness::UserStudyMethods() {
  return {Adjacency(), Cooccurrence(), Ngram(), Mvmm()};
}

std::vector<PredictionModel*> Harness::AllMethods() {
  return {Adjacency(), Cooccurrence(), Ngram(),
          Vmm(0.0),    Vmm(0.05),      Vmm(0.1), Mvmm()};
}

void PrintBanner(const Harness& harness, const std::string& what,
                 const std::string& expectation) {
  std::printf("================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("Reproduction of He, Jiang, Liao, Hoi, Chang, Lim, Li:\n");
  std::printf("\"Web Query Recommendation via Sequential Query Prediction\",\n");
  std::printf("ICDE 2009. Synthetic corpus: %zu train / %zu test sessions,\n",
              harness.config().train_sessions, harness.config().test_sessions);
  std::printf("%zu unique queries.\n", harness.dictionary().size());
  if (!expectation.empty()) {
    std::printf("Paper shape to reproduce: %s\n", expectation.c_str());
  }
  std::printf("================================================================\n");
}

}  // namespace sqp::bench
