// Overload / QoS bench for the admission-controlled serving layer: drives
// the batch execution slot past saturation with unbounded bulk pressure
// and measures what the QoS machinery does to deadline-carrying traffic —
// admitted-request latency percentiles per lane, shed/expired/degraded
// counts, and the shed rate as the bulk pressure grows. Two claims are
// enforced in-binary (non-zero exit on violation), mirroring coldstart's
// self-enforcing style:
//
//  1. No-overload equivalence: with an idle queue and a generous deadline,
//     the deadline-aware Recommend/RecommendMany answers of BOTH engines
//     (single + sharded) are bit-identical to the legacy deadline-free
//     paths.
//  2. Bounded tail under overload: past saturation the p99 latency of
//     ADMITTED interactive requests stays within a small multiple of the
//     deadline (waiting is capped by expiry-in-queue, execution by the
//     mid-batch cut), while excess load is shed explicitly rather than
//     convoying — and every request is accounted for as exactly one of
//     admitted / shed.
//
// A watchdog thread hard-exits(3) if the run wedges (a deadlock in the
// shed/admit/grant path is precisely the regression this bench guards
// against). Emits BENCH_overload.json (see bench/README.md).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "serve/recommender_engine.h"
#include "serve/sharded_engine.h"
#include "util/timer.h"

namespace {

using namespace sqp;
using sqp::bench::Harness;

constexpr double kInteractiveDeadlineUs = 5000.0;   // 5 ms budget
constexpr double kBulkDeadlineUs = 8000.0;          // 8 ms budget
constexpr double kMaxP99OverDeadline = 8.0;         // in-binary tail bound

double Percentile(std::vector<double>* sorted_in_place, double q) {
  if (sorted_in_place->empty()) return 0.0;
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  const size_t at = std::min(
      sorted_in_place->size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_in_place->size())));
  return (*sorted_in_place)[at];
}

std::vector<std::vector<QueryId>> Contexts(const Harness& harness) {
  std::vector<std::vector<QueryId>> out;
  for (const auto& entry : harness.truth()) {
    if (entry.context.size() <= 5) out.push_back(entry.context);
    if (out.size() >= 4096) break;
  }
  return out;
}

std::vector<ContextRef> MakeRefs(
    const std::vector<std::vector<QueryId>>& contexts, size_t count) {
  std::vector<ContextRef> refs;
  refs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const std::vector<QueryId>& context = contexts[i % contexts.size()];
    refs.emplace_back(context.data(), context.size());
  }
  return refs;
}

bool SameRecommendation(const Recommendation& a, const Recommendation& b) {
  if (a.covered != b.covered || a.matched_length != b.matched_length ||
      a.queries.size() != b.queries.size()) {
    return false;
  }
  for (size_t i = 0; i < a.queries.size(); ++i) {
    if (a.queries[i].query != b.queries[i].query ||
        a.queries[i].score != b.queries[i].score) {
      return false;
    }
  }
  return true;
}

/// Phase A: with no overload, the QoS paths must be invisible.
bool CheckNoOverloadEquivalence(
    const std::shared_ptr<const ModelSnapshot>& model,
    const std::vector<AggregatedSession>& corpus,
    const MvmmOptions& model_options, size_t vocabulary_size,
    const std::vector<std::vector<QueryId>>& contexts) {
  ServeOptions generous;
  generous.deadline = Deadline::After(std::chrono::seconds(30));
  const std::vector<ContextRef> refs = MakeRefs(contexts, contexts.size());

  bool equal = true;
  {
    RecommenderEngine engine(EngineOptions{.num_threads = 2});
    engine.Publish(model);
    const std::vector<Recommendation> legacy =
        engine.RecommendMany(std::span<const ContextRef>(refs), 5);
    for (const QosLane lane : {QosLane::kInteractive, QosLane::kBulk}) {
      ServeOptions options = generous;
      options.lane = lane;
      const BatchResult qos = engine.RecommendMany(
          std::span<const ContextRef>(refs), 5, options);
      if (!qos.admission.ok() || qos.served != refs.size() || qos.degraded) {
        equal = false;
      }
      for (size_t i = 0; i < refs.size() && equal; ++i) {
        if (qos.statuses[i] != StatusCode::kOk ||
            !SameRecommendation(legacy[i], qos.results[i])) {
          equal = false;
        }
      }
    }
    for (size_t i = 0; i < 512 && equal; ++i) {
      const ServeResult single = engine.Recommend(refs[i], 5, generous);
      if (single.status != StatusCode::kOk || single.degraded ||
          !SameRecommendation(engine.Recommend(refs[i], 5),
                              single.recommendation)) {
        equal = false;
      }
    }
  }
  {
    ShardedTrainOptions train;
    train.model = model_options;
    train.num_shards = 2;
    train.vocabulary_size = vocabulary_size;
    auto trained = TrainShardedSnapshots(corpus, train);
    SQP_CHECK(trained.ok());
    ShardedEngine engine(
        ShardedEngineOptions{.num_shards = 2, .num_threads = 2});
    for (size_t s = 0; s < 2; ++s) {
      engine.PublishShard(s, trained->shards[s]);
    }
    const std::vector<Recommendation> legacy =
        engine.RecommendMany(std::span<const ContextRef>(refs), 5);
    const BatchResult qos =
        engine.RecommendMany(std::span<const ContextRef>(refs), 5, generous);
    if (!qos.admission.ok() || qos.served != refs.size()) equal = false;
    for (size_t i = 0; i < refs.size() && equal; ++i) {
      if (qos.statuses[i] != StatusCode::kOk ||
          !SameRecommendation(legacy[i], qos.results[i])) {
        equal = false;
      }
    }
  }
  return equal;
}

/// One lane's outcome over an overload run.
struct LaneOutcome {
  uint64_t issued = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;       // refused at admission (any reason)
  uint64_t degraded = 0;   // admitted with reduced top_n
  std::vector<double> admitted_latency_us;
};

struct OverloadResult {
  LaneOutcome interactive;
  LaneOutcome bulk;
  uint64_t saturator_batches = 0;  // unbounded bulk batches (never shed)
  uint64_t violations = 0;         // per-batch contract violations
  AdmissionStats engine_stats;
};

/// Phase B: saturate the slot with unbounded bulk batches while bounded
/// interactive + bulk producers race the deadline machinery. Producers are
/// paced (a real client backs off after a shed; a busy-spin would only
/// measure how fast the refusal path is) and the saturator sleeps briefly
/// between batches so admit windows exist even on a 1-core box.
OverloadResult RunOverload(const std::shared_ptr<const ModelSnapshot>& model,
                           const std::vector<std::vector<QueryId>>& contexts,
                           size_t saturator_threads, size_t saturator_items,
                           double seconds) {
  EngineOptions options;
  options.num_threads = 2;
  // Tiny lanes so overflow shedding is reachable with a handful of
  // producer threads; the defaults are sized for a fleet front-end.
  options.admission.interactive_capacity = 2;
  options.admission.bulk_capacity = 1;
  RecommenderEngine engine(options);
  engine.Publish(model);

  const std::vector<ContextRef> saturator_refs =
      MakeRefs(contexts, saturator_items);
  const std::vector<ContextRef> interactive_refs = MakeRefs(contexts, 64);
  const std::vector<ContextRef> bulk_refs = MakeRefs(contexts, 2048);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> saturator_batches{0};
  std::atomic<uint64_t> violations{0};
  std::mutex outcome_mu;
  LaneOutcome interactive_outcome;
  LaneOutcome bulk_outcome;

  // Bounded producer loop, shared by both lanes.
  const auto producer = [&](QosLane lane, const std::vector<ContextRef>& refs,
                            double deadline_us, LaneOutcome* outcome) {
    LaneOutcome local;
    while (!stop.load(std::memory_order_relaxed)) {
      ServeOptions serve;
      serve.lane = lane;
      serve.deadline = Deadline::After(std::chrono::microseconds(
          static_cast<int64_t>(deadline_us)));
      WallTimer timer;
      const BatchResult batch = engine.RecommendMany(
          std::span<const ContextRef>(refs), 10, serve);
      const double latency_us = timer.ElapsedSeconds() * 1e6;
      ++local.issued;

      // Contract checks (cheap enough to run on every batch).
      uint64_t bad = 0;
      if (batch.results.size() != refs.size() ||
          batch.statuses.size() != refs.size()) {
        ++bad;
      }
      size_t ok_items = 0;
      for (size_t i = 0; i < batch.statuses.size(); ++i) {
        if (batch.statuses[i] == StatusCode::kOk) {
          ++ok_items;
          if (batch.results[i].queries.size() > batch.effective_top_n) ++bad;
        } else if (!batch.results[i].queries.empty()) {
          ++bad;  // a non-served item must be uncovered-empty
        }
      }
      if (ok_items != batch.served) ++bad;

      if (batch.admission.ok()) {
        ++local.admitted;
        if (batch.degraded) ++local.degraded;
        local.admitted_latency_us.push_back(latency_us);
      } else {
        ++local.shed;
        if (batch.admission.code() != StatusCode::kDeadlineExceeded &&
            batch.admission.code() != StatusCode::kResourceExhausted) {
          ++bad;
        }
        if (batch.served != 0) ++bad;  // a shed batch serves nothing
      }
      if (bad != 0) violations.fetch_add(bad);
      std::this_thread::sleep_for(std::chrono::microseconds(
          lane == QosLane::kInteractive ? 500 : 2000));
    }
    std::lock_guard<std::mutex> lock(outcome_mu);
    outcome->issued += local.issued;
    outcome->admitted += local.admitted;
    outcome->shed += local.shed;
    outcome->degraded += local.degraded;
    outcome->admitted_latency_us.insert(outcome->admitted_latency_us.end(),
                                        local.admitted_latency_us.begin(),
                                        local.admitted_latency_us.end());
  };

  std::vector<std::thread> threads;
  for (size_t t = 0; t < saturator_threads; ++t) {
    threads.emplace_back([&] {
      // Legacy deadline-free batches: exempt from all shedding, they are
      // the pressure the bounded traffic must survive.
      while (!stop.load(std::memory_order_relaxed)) {
        const auto results = engine.RecommendMany(
            std::span<const ContextRef>(saturator_refs), 10);
        if (results.size() != saturator_refs.size()) violations.fetch_add(1);
        saturator_batches.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(producer, QosLane::kInteractive,
                         std::cref(interactive_refs), kInteractiveDeadlineUs,
                         &interactive_outcome);
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back(producer, QosLane::kBulk, std::cref(bulk_refs),
                         kBulkDeadlineUs, &bulk_outcome);
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1e3)));
  stop.store(true);
  for (std::thread& thread : threads) thread.join();

  OverloadResult result;
  result.interactive = std::move(interactive_outcome);
  result.bulk = std::move(bulk_outcome);
  result.saturator_batches = saturator_batches.load();
  result.violations = violations.load();
  result.engine_stats = engine.stats().admission;
  return result;
}

struct LaneRow {
  std::string load;
  const char* lane;
  double deadline_us;
  LaneOutcome outcome;
  LaneCounters counters;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

void FinishRow(LaneRow* row) {
  row->p50_us = Percentile(&row->outcome.admitted_latency_us, 0.50);
  row->p99_us = Percentile(&row->outcome.admitted_latency_us, 0.99);
}

void WriteJson(int equal, const std::vector<LaneRow>& rows,
               uint64_t total_violations, size_t hardware_threads) {
  std::FILE* out = std::fopen("BENCH_overload.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_overload.json\n");
    return;
  }
  std::fprintf(out, "[\n");
  std::fprintf(out,
               "  {\"name\": \"no_overload_equivalence\", \"equal\": %d, "
               "\"hardware_threads\": %zu},\n",
               equal, hardware_threads);
  for (const LaneRow& row : rows) {
    std::fprintf(
        out,
        "  {\"name\": \"overload_%s\", \"load\": \"%s\", "
        "\"deadline_us\": %.0f, \"issued\": %llu, \"admitted\": %llu, "
        "\"shed\": %llu, \"shed_queue_full\": %llu, "
        "\"shed_deadline\": %llu, \"expired_in_queue\": %llu, "
        "\"expired_items\": %llu, \"degraded\": %llu, "
        "\"shed_rate\": %.3f, \"p50_admitted_us\": %.1f, "
        "\"p99_admitted_us\": %.1f, \"p99_over_deadline\": %.3f},\n",
        row.lane, row.load.c_str(), row.deadline_us,
        static_cast<unsigned long long>(row.outcome.issued),
        static_cast<unsigned long long>(row.outcome.admitted),
        static_cast<unsigned long long>(row.outcome.shed),
        static_cast<unsigned long long>(row.counters.shed_queue_full),
        static_cast<unsigned long long>(row.counters.shed_deadline),
        static_cast<unsigned long long>(row.counters.expired_in_queue),
        static_cast<unsigned long long>(row.counters.expired_items),
        static_cast<unsigned long long>(row.outcome.degraded),
        row.outcome.issued == 0
            ? 0.0
            : static_cast<double>(row.outcome.shed) /
                  static_cast<double>(row.outcome.issued),
        row.p50_us, row.p99_us, row.p99_us / row.deadline_us);
  }
  std::fprintf(out,
               "  {\"name\": \"shed_correctness\", \"ok\": %d, "
               "\"violations\": %llu}\n",
               total_violations == 0 ? 1 : 0,
               static_cast<unsigned long long>(total_violations));
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("JSON results written to BENCH_overload.json\n");
}

}  // namespace

int main() {
  // If any part of the admission path deadlocks, fail loudly instead of
  // hanging the CI job until its global timeout.
  std::atomic<bool> done{false};
  std::thread watchdog([&done] {
    for (int i = 0; i < 120 && !done.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
    }
    if (!done.load()) {
      std::fprintf(stderr,
                   "ERROR: overload bench wedged (>120s) — admission "
                   "deadlock?\n");
      _exit(3);
    }
  });

  Harness harness;
  sqp::bench::PrintBanner(
      harness, "overload shedding / QoS lanes (admission-controlled slot)",
      "no-overload QoS answers are bit-identical to the legacy paths; past "
      "saturation, admitted interactive p99 stays within a small multiple "
      "of the deadline while excess load is shed explicitly");

  const size_t hardware =
      std::max<unsigned>(1, std::thread::hardware_concurrency());
  std::printf("hardware threads: %zu\n\n", hardware);

  MvmmOptions model_options;
  model_options.default_max_depth = harness.config().vmm_max_depth;
  auto built = ModelSnapshot::Build(harness.training_data(), model_options, 1);
  SQP_CHECK(built.ok());
  const std::shared_ptr<const ModelSnapshot> model = built.value();
  const std::vector<std::vector<QueryId>> contexts = Contexts(harness);
  SQP_CHECK(!contexts.empty());

  // Phase A: the QoS layer must be invisible without overload.
  const bool equal = CheckNoOverloadEquivalence(
      model, harness.train(), model_options,
      harness.training_data().vocabulary_size, contexts);
  std::printf("no_overload_equivalence  equal=%s\n", equal ? "yes" : "NO");

  // Phase B: two pressure levels — the shed rate must respond to load,
  // the admitted tail must not. The saturator batch sizes bracket the
  // interactive deadline: the light hold usually fits inside it (most
  // arrivals admitted), the heavy hold overruns it on any machine speed
  // (the EWMA projection sheds most arrivals on sight).
  struct LoadLevel {
    const char* load;
    size_t saturators;
    size_t saturator_items;
  };
  std::vector<LaneRow> rows;
  uint64_t total_violations = 0;
  uint64_t interactive_admitted = 0;
  uint64_t total_shed = 0;
  double light_shed_rate = 0.0;
  double heavy_shed_rate = 0.0;
  double worst_p99_ratio = 0.0;
  for (const LoadLevel& level : {LoadLevel{"light", 1, 8 * 1024},
                                 LoadLevel{"heavy", 2, 32 * 1024}}) {
    OverloadResult result = RunOverload(model, contexts, level.saturators,
                                        level.saturator_items,
                                        /*seconds=*/1.5);
    const char* load = level.load;
    total_violations += result.violations;

    LaneRow interactive{load, "interactive", kInteractiveDeadlineUs,
                        std::move(result.interactive),
                        result.engine_stats.lane(QosLane::kInteractive)};
    FinishRow(&interactive);
    LaneRow bulk{load, "bulk", kBulkDeadlineUs, std::move(result.bulk),
                 result.engine_stats.lane(QosLane::kBulk)};
    FinishRow(&bulk);

    for (const LaneRow& row : {interactive, bulk}) {
      std::printf(
          "overload[%s] %-11s issued=%-5llu admitted=%-5llu shed=%-5llu "
          "degraded=%-4llu p99=%.0fus (%.2fx deadline)\n",
          row.load.c_str(), row.lane,
          static_cast<unsigned long long>(row.outcome.issued),
          static_cast<unsigned long long>(row.outcome.admitted),
          static_cast<unsigned long long>(row.outcome.shed),
          static_cast<unsigned long long>(row.outcome.degraded), row.p99_us,
          row.p99_us / row.deadline_us);
    }
    std::printf("overload[%s] saturator batches=%llu  violations=%llu\n",
                load, static_cast<unsigned long long>(result.saturator_batches),
                static_cast<unsigned long long>(result.violations));

    interactive_admitted += interactive.outcome.admitted;
    total_shed += interactive.outcome.shed + bulk.outcome.shed;
    // The p99 bound only means something with a real sample count; a row
    // that admitted almost nothing contributes shed evidence instead.
    if (interactive.outcome.admitted >= 100) {
      worst_p99_ratio = std::max(
          worst_p99_ratio, interactive.p99_us / kInteractiveDeadlineUs);
    }
    const double shed_rate =
        interactive.outcome.issued == 0
            ? 0.0
            : static_cast<double>(interactive.outcome.shed) /
                  static_cast<double>(interactive.outcome.issued);
    (std::string(load) == "heavy" ? heavy_shed_rate : light_shed_rate) =
        shed_rate;
    rows.push_back(std::move(interactive));
    rows.push_back(std::move(bulk));
  }

  WriteJson(equal ? 1 : 0, rows, total_violations, hardware);
  done.store(true);
  watchdog.join();

  bool failed = false;
  if (!equal) {
    std::fprintf(stderr,
                 "ERROR: deadline-aware answers diverged from the legacy "
                 "paths without overload\n");
    failed = true;
  }
  if (total_violations != 0) {
    std::fprintf(stderr, "ERROR: %llu shed/serve contract violation(s)\n",
                 static_cast<unsigned long long>(total_violations));
    failed = true;
  }
  if (interactive_admitted < 100 || total_shed == 0) {
    std::fprintf(stderr,
                 "ERROR: the run must both admit interactive traffic and "
                 "shed excess load (admitted=%llu shed=%llu) — saturation "
                 "not reached, or everything shed?\n",
                 static_cast<unsigned long long>(interactive_admitted),
                 static_cast<unsigned long long>(total_shed));
    failed = true;
  }
  if (heavy_shed_rate + 0.05 < light_shed_rate) {
    std::fprintf(stderr,
                 "ERROR: shed rate fell as pressure grew (light %.3f -> "
                 "heavy %.3f) — the ladder is not responding to load\n",
                 light_shed_rate, heavy_shed_rate);
    failed = true;
  }
  if (worst_p99_ratio > kMaxP99OverDeadline) {
    std::fprintf(stderr,
                 "ERROR: admitted interactive p99 is %.2fx the deadline "
                 "(bound %.1fx) — the tail is not bounded\n",
                 worst_p99_ratio, kMaxP99OverDeadline);
    failed = true;
  }
  return failed ? 1 : 0;
}
