// Extension: retraining frequency under query drift — the paper's
// deployment question (Section VI: "the analysis on the frequency of
// retraining the data to adapt to new query trends would be also
// necessary"). We generate consecutive periods with growing drift, train
// an MVMM on period 0, measure its accuracy decay over later periods, and
// compare against a model retrained each period.

#include <iostream>

#include "core/mvmm_model.h"
#include "eval/coverage.h"
#include "eval/evaluator.h"
#include "eval/table_printer.h"
#include "harness.h"
#include "log/session_aggregator.h"
#include "log/session_segmenter.h"

namespace {

using namespace sqp;

struct Period {
  std::vector<AggregatedSession> sessions;
  std::vector<GroundTruthEntry> truth;
};

Period MakePeriod(const TopicModel& topics, size_t head_intents,
                  double novel_fraction, uint64_t seed) {
  SynthesizerConfig config;
  config.num_sessions = 15000;
  config.num_machines = 600;
  config.session.head_intents = head_intents;
  config.session.novel_fraction = novel_fraction;
  LogSynthesizer synthesizer(&topics, config);
  const SynthCorpus corpus = synthesizer.Synthesize(seed, nullptr);
  static QueryDictionary dictionary;  // shared id space across periods
  SessionSegmenter segmenter;
  std::vector<Session> segmented;
  SQP_CHECK_OK(segmenter.Segment(corpus.records, &dictionary, &segmented));
  SessionAggregator aggregator;
  aggregator.Add(segmented);
  Period period;
  period.sessions = aggregator.Finish();
  period.truth = BuildGroundTruth(period.sessions, 5);
  return period;
}

double Ndcg5(const PredictionModel& model,
             const std::vector<GroundTruthEntry>& truth) {
  AccuracyOptions options;
  options.ndcg_positions = {5};
  const ModelAccuracy acc = EvaluateAccuracy(model, truth, options);
  return acc.ndcg_overall.count(5) ? acc.ndcg_overall.at(5) : 0.0;
}

}  // namespace

int main() {
  using namespace sqp::bench;
  Harness harness;  // reuse the shared topic model + banner
  PrintBanner(harness, "Extension (future work): retraining under drift",
              "a stale model loses coverage period over period; periodic "
              "retraining recovers it");

  const size_t total_intents = harness.topics().num_intents();
  const size_t head = static_cast<size_t>(0.6 * total_intents);
  // Five consecutive periods; drift (novel-intent share) grows over time.
  std::vector<Period> periods;
  for (size_t p = 0; p < 5; ++p) {
    periods.push_back(MakePeriod(harness.topics(), head,
                                 0.12 * static_cast<double>(p),
                                 9100 + p));
  }

  // Stale model: trained once on period 0.
  MvmmOptions options;
  options.default_max_depth = 5;
  MvmmModel stale(options);
  TrainingData stale_data;
  stale_data.sessions = &periods[0].sessions;
  stale_data.vocabulary_size = 1 << 20;  // shared id space upper bound
  SQP_CHECK_OK(stale.Train(stale_data));

  TablePrinter table({"period", "novel share", "stale coverage",
                      "stale NDCG@5", "retrained coverage",
                      "retrained NDCG@5"});
  for (size_t p = 1; p < periods.size(); ++p) {
    // Retrained model: trained on the *previous* period (fresh data).
    MvmmModel fresh(options);
    TrainingData fresh_data;
    fresh_data.sessions = &periods[p - 1].sessions;
    fresh_data.vocabulary_size = 1 << 20;
    SQP_CHECK_OK(fresh.Train(fresh_data));

    const CoverageResult stale_cov =
        MeasureCoverage(stale, periods[p].truth);
    const CoverageResult fresh_cov =
        MeasureCoverage(fresh, periods[p].truth);
    table.AddRow({std::to_string(p),
                  FormatPercent(0.12 * static_cast<double>(p)),
                  FormatPercent(stale_cov.overall),
                  FormatDouble(Ndcg5(stale, periods[p].truth)),
                  FormatPercent(fresh_cov.overall),
                  FormatDouble(Ndcg5(fresh, periods[p].truth))});
  }
  table.Print(std::cout);
  std::cout << "\nReading: the stale model's coverage decays as novel "
               "intents take over; retraining each period tracks the "
               "drift.\n";
  return 0;
}
