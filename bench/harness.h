#ifndef SQP_BENCH_HARNESS_H_
#define SQP_BENCH_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/model_factory.h"
#include "log/context_builder.h"
#include "log/data_reduction.h"
#include "log/query_dictionary.h"
#include "log/session_aggregator.h"
#include "synth/log_synthesizer.h"

namespace sqp::bench {

/// Shared experiment configuration. Every bench binary regenerates the same
/// deterministic corpus from these seeds, so results are comparable across
/// binaries and runs. Scale with SQP_BENCH_TRAIN_SESSIONS /
/// SQP_BENCH_TEST_SESSIONS environment variables.
struct HarnessConfig {
  size_t train_sessions = 50000;   // the paper's 120-day split
  size_t test_sessions = 12500;    // the paper's 30-day split (1/4)
  size_t vmm_max_depth = 5;        // "D is typically around 5" (Sec. V-G)
  uint64_t vocabulary_seed = 20091;
  uint64_t topic_seed = 20092;
  uint64_t train_seed = 20093;
  uint64_t test_seed = 20094;
  uint64_t reduction_min_frequency = 1;  // scaled-down analog of the <=5 cut
  size_t reduction_max_length = 10;

  /// Temporal drift between splits: training samples the most popular
  /// `established_intent_fraction` of intents; the test period additionally
  /// draws `test_novel_fraction` of its sessions from intents unseen in
  /// training (real logs churn: most of the paper's 356M unique test
  /// queries never occur in the training months).
  double established_intent_fraction = 0.7;
  double test_novel_fraction = 0.35;

  static HarnessConfig FromEnv();
};

/// Builds the full experimental substrate once per process: synthetic raw
/// logs for a train and a test period, the log-processing pipeline outputs,
/// and lazily-trained models.
class Harness {
 public:
  explicit Harness(HarnessConfig config = HarnessConfig::FromEnv());

  const HarnessConfig& config() const { return config_; }
  const QueryDictionary& dictionary() const { return dictionary_; }
  const RelatednessOracle& oracle() const { return oracle_; }
  const TopicModel& topics() const { return *topics_; }
  const Vocabulary& vocabulary() const { return *vocabulary_; }

  /// Latent generated sessions (with pattern labels) for each split.
  const std::vector<GeneratedSession>& train_generated() const {
    return train_corpus_.sessions;
  }
  const std::vector<RawLogRecord>& train_records() const {
    return train_corpus_.records;
  }
  const std::vector<RawLogRecord>& test_records() const {
    return test_corpus_.records;
  }

  /// Pipeline outputs.
  const SessionSummary& train_summary() const { return train_summary_; }
  const SessionSummary& test_summary() const { return test_summary_; }
  const std::vector<AggregatedSession>& train_unreduced() const {
    return train_unreduced_;
  }
  const std::vector<AggregatedSession>& test_unreduced() const {
    return test_unreduced_;
  }
  const std::vector<AggregatedSession>& train() const { return train_; }
  const std::vector<AggregatedSession>& test() const { return test_; }
  const ReductionReport& train_reduction_report() const {
    return train_reduction_report_;
  }
  const std::vector<GroundTruthEntry>& truth() const { return truth_; }
  const QueryRoles& roles() const { return roles_; }
  TrainingData training_data() const;

  /// Lazily-trained models, cached per harness.
  PredictionModel* Adjacency();
  PredictionModel* Cooccurrence();
  PredictionModel* Ngram();
  PredictionModel* Vmm(double epsilon);
  PredictionModel* Mvmm();
  /// Extensions: the click-through cluster baseline (related work) and the
  /// HMM (future work).
  PredictionModel* ClickCluster();
  PredictionModel* Hmm();

  /// The four methods of the paper's user study (Section V-H).
  std::vector<PredictionModel*> UserStudyMethods();
  /// All seven evaluated models (Figs. 8-10, Table VII).
  std::vector<PredictionModel*> AllMethods();

 private:
  PredictionModel* GetOrTrain(const std::string& key,
                              const ModelConfig& config);

  HarnessConfig config_;
  std::unique_ptr<Vocabulary> vocabulary_;
  std::unique_ptr<TopicModel> topics_;
  RelatednessOracle oracle_;
  SynthCorpus train_corpus_;
  SynthCorpus test_corpus_;
  QueryDictionary dictionary_;
  SessionSummary train_summary_;
  SessionSummary test_summary_;
  std::vector<AggregatedSession> train_unreduced_;
  std::vector<AggregatedSession> test_unreduced_;
  std::vector<AggregatedSession> train_;
  std::vector<AggregatedSession> test_;
  ReductionReport train_reduction_report_;
  std::vector<GroundTruthEntry> truth_;
  QueryRoles roles_;
  std::map<std::string, std::unique_ptr<PredictionModel>> models_;
};

/// Prints the standard bench banner ("Reproduces <what> of He et al.,
/// ICDE 2009" plus corpus scale).
void PrintBanner(const Harness& harness, const std::string& what,
                 const std::string& expectation);

}  // namespace sqp::bench

#endif  // SQP_BENCH_HARNESS_H_
