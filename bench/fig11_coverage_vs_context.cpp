// Figure 11: coverage versus context length for the sequence-wise models.
// The paper: VMM/MVMM decay sub-linearly (still ~45% at long contexts);
// N-gram collapses below 1% beyond length 3.

#include <iostream>

#include "eval/coverage.h"
#include "eval/table_printer.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Figure 11: coverage vs context length",
              "VMM/MVMM hold up on long contexts via partial matching; "
              "N-gram collapses");

  const std::vector<PredictionModel*> models = {
      harness.Ngram(), harness.Vmm(0.05), harness.Mvmm(),
      harness.Adjacency()};
  TablePrinter table({"model", "len 1", "len 2", "len 3", "len 4", "len 5"});
  for (PredictionModel* model : models) {
    const CoverageResult result = MeasureCoverage(*model, harness.truth());
    std::vector<std::string> row{std::string(model->Name())};
    for (size_t len = 1; len <= 5; ++len) {
      row.push_back(result.by_context_length.count(len)
                        ? FormatPercent(result.by_context_length.at(len))
                        : "-");
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  const CoverageResult ngram = MeasureCoverage(*harness.Ngram(),
                                               harness.truth());
  const CoverageResult mvmm = MeasureCoverage(*harness.Mvmm(),
                                              harness.truth());
  if (ngram.by_context_length.count(4) && mvmm.by_context_length.count(4)) {
    std::cout << "\nAt context length 4: N-gram "
              << FormatPercent(ngram.by_context_length.at(4)) << " vs MVMM "
              << FormatPercent(mvmm.by_context_length.at(4))
              << " (paper: <1% vs ~45%)\n";
  }
  return 0;
}
