// Extension: session-extraction strategy ablation (paper Section II cites
// three segmentation approaches; Jansen et al. report that the choice
// changes the measured session statistics). We segment the same raw
// click-stream with all three strategies and compare session statistics
// and downstream MVMM quality.

#include <iostream>

#include "core/mvmm_model.h"
#include "eval/coverage.h"
#include "eval/evaluator.h"
#include "eval/table_printer.h"
#include "harness.h"
#include "log/session_aggregator.h"
#include "log/session_segmenter.h"
#include "log/session_stats.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Extension: session segmentation strategy ablation",
              "segmentation choice shifts session statistics (Jansen et "
              "al.) and propagates into model quality");

  const std::vector<SegmentationStrategy> strategies = {
      SegmentationStrategy::kTimeGap, SegmentationStrategy::kFixedWindow,
      SegmentationStrategy::kSimilarityAssisted};

  TablePrinter table({"strategy", "# sessions", "mean length",
                      "MVMM coverage", "MVMM NDCG@5"});
  for (SegmentationStrategy strategy : strategies) {
    SegmenterOptions options;
    options.strategy = strategy;
    SessionSegmenter segmenter(options);

    QueryDictionary dictionary;
    std::vector<Session> train_segmented;
    std::vector<Session> test_segmented;
    SQP_CHECK_OK(segmenter.Segment(harness.train_records(), &dictionary,
                                   &train_segmented));
    SQP_CHECK_OK(segmenter.Segment(harness.test_records(), &dictionary,
                                   &test_segmented));
    SessionAggregator train_aggregator;
    train_aggregator.Add(train_segmented);
    SessionAggregator test_aggregator;
    test_aggregator.Add(test_segmented);
    const std::vector<AggregatedSession> train = train_aggregator.Finish();
    const std::vector<AggregatedSession> test = test_aggregator.Finish();
    const std::vector<GroundTruthEntry> truth = BuildGroundTruth(test, 5);

    TrainingData data;
    data.sessions = &train;
    data.vocabulary_size = dictionary.size();
    MvmmOptions mvmm_options;
    mvmm_options.default_max_depth = 5;
    MvmmModel model(mvmm_options);
    SQP_CHECK_OK(model.Train(data));

    AccuracyOptions accuracy_options;
    accuracy_options.ndcg_positions = {5};
    const ModelAccuracy acc = EvaluateAccuracy(model, truth,
                                               accuracy_options);
    const CoverageResult coverage = MeasureCoverage(model, truth);
    table.AddRow({std::string(SegmentationStrategyName(strategy)),
                  std::to_string(train_aggregator.Summary().num_sessions),
                  FormatDouble(MeanSessionLength(train), 2),
                  FormatPercent(coverage.overall),
                  FormatDouble(acc.ndcg_overall.at(5))});
  }
  table.Print(std::cout);
  return 0;
}
