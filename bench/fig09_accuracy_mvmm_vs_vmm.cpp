// Figure 9: NDCG@1/3/5 of MVMM against single VMMs with epsilon 0.0, 0.05
// and 0.1 — the epsilon-sensitivity experiment that motivates the mixture.

#include <iostream>

#include "eval/evaluator.h"
#include "eval/table_printer.h"
#include "harness.h"

int main() {
  using namespace sqp;
  using namespace sqp::bench;
  Harness harness;
  PrintBanner(harness, "Figure 9: MVMM vs VMM under different epsilon",
              "VMM is sensitive to epsilon (a moderate value wins); MVMM "
              "tracks the best component without tuning and wins at "
              "NDCG@5");

  const std::vector<PredictionModel*> models = {
      harness.Vmm(0.0), harness.Vmm(0.05), harness.Vmm(0.1), harness.Mvmm()};
  AccuracyOptions options;
  options.ndcg_positions = {1, 3, 5};
  options.max_context_length = 4;

  for (size_t position : options.ndcg_positions) {
    std::cout << "\nNDCG@" << position << " by context length\n";
    TablePrinter table({"model", "len 1", "len 2", "len 3", "len 4",
                        "overall"});
    for (PredictionModel* model : models) {
      const ModelAccuracy acc =
          EvaluateAccuracy(*model, harness.truth(), options);
      std::vector<std::string> row{std::string(model->Name())};
      for (size_t len = 1; len <= 4; ++len) {
        const auto& by_length = acc.ndcg.at(position);
        row.push_back(by_length.count(len) ? FormatDouble(by_length.at(len))
                                           : "-");
      }
      row.push_back(FormatDouble(acc.ndcg_overall.at(position)));
      table.AddRow(std::move(row));
    }
    table.Print(std::cout);
  }

  std::cout << "\nPST sizes (epsilon sensitivity, paper Section V-D): ";
  for (double epsilon : {0.0, 0.05, 0.1}) {
    std::cout << "eps=" << epsilon << " -> "
              << harness.Vmm(epsilon)->Stats().num_states << " states  ";
  }
  std::cout << "\n";
  return 0;
}
