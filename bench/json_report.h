#ifndef SQP_BENCH_JSON_REPORT_H_
#define SQP_BENCH_JSON_REPORT_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace sqp::bench {

/// Console reporter that additionally captures every measured run so the
/// perf-tracked benches can emit a machine-readable sidecar file
/// (BENCH_*.json) for cross-PR trend tracking.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) runs_.push_back(run);
    ConsoleReporter::ReportRuns(runs);
  }
  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Runs the registered benchmarks with console output plus a JSON dump at
/// `json_path`: one object per measurement with wall/cpu time (in the
/// benchmark's declared unit), iteration count, display label and every
/// user counter (e.g. model_states / model_bytes).
inline int RunBenchmarksWithJson(int argc, char** argv,
                                 const std::string& json_path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  bool first = true;
  for (const auto& run : reporter.runs()) {
    if (run.run_type != benchmark::BenchmarkReporter::Run::RT_Iteration) {
      continue;
    }
    std::fprintf(out,
                 "%s  {\"name\": \"%s\", \"label\": \"%s\", "
                 "\"iterations\": %lld, \"real_time\": %.6f, "
                 "\"cpu_time\": %.6f, \"time_unit\": \"%s\"",
                 first ? "" : ",\n",
                 JsonEscape(run.benchmark_name()).c_str(),
                 JsonEscape(run.report_label).c_str(),
                 static_cast<long long>(run.iterations),
                 run.GetAdjustedRealTime(), run.GetAdjustedCPUTime(),
                 benchmark::GetTimeUnitString(run.time_unit));
    for (const auto& [name, counter] : run.counters) {
      std::fprintf(out, ", \"%s\": %.6f", JsonEscape(name).c_str(),
                   static_cast<double>(counter));
    }
    std::fprintf(out, "}");
    first = false;
  }
  std::fprintf(out, "\n]\n");
  std::fclose(out);
  std::printf("JSON results written to %s\n", json_path.c_str());
  benchmark::Shutdown();
  return 0;
}

}  // namespace sqp::bench

#endif  // SQP_BENCH_JSON_REPORT_H_
