// Figure 12: training time versus amount of training data for every
// method. The paper: all methods scale linearly with data; MVMM costs
// roughly K times a single VMM (K = 11 components); VMM costs more than
// pair-wise / N-gram because of PST construction.
//
// Implemented with google-benchmark: one benchmark per (model, data
// fraction), a single training run per measurement.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "json_report.h"

namespace {

using sqp::AggregatedSession;
using sqp::CreateModel;
using sqp::ModelConfig;
using sqp::ModelKind;
using sqp::ModelKindName;
using sqp::TrainingData;
using sqp::bench::Harness;

Harness& SharedHarness() {
  static Harness* harness = new Harness();
  return *harness;
}

/// Uniform stride-sample of the aggregated corpus at fraction k/4, cached.
const std::vector<AggregatedSession>& Subset(int quarter) {
  static std::map<int, std::vector<AggregatedSession>>* cache =
      new std::map<int, std::vector<AggregatedSession>>();
  auto it = cache->find(quarter);
  if (it != cache->end()) return it->second;
  const auto& full = SharedHarness().train();
  std::vector<AggregatedSession> subset;
  if (quarter >= 4) {
    subset = full;
  } else {
    const size_t stride = 4 / static_cast<size_t>(quarter);
    for (size_t i = 0; i < full.size(); i += stride) {
      subset.push_back(full[i]);
    }
  }
  return cache->emplace(quarter, std::move(subset)).first->second;
}

ModelConfig ConfigFor(int kind_index) {
  ModelConfig config;
  switch (kind_index) {
    case 0:
      config.kind = ModelKind::kAdjacency;
      break;
    case 1:
      config.kind = ModelKind::kCooccurrence;
      break;
    case 2:
      config.kind = ModelKind::kNgram;
      break;
    case 3:
      config.kind = ModelKind::kVmm;
      config.vmm.epsilon = 0.05;
      config.vmm.max_depth = 5;
      break;
    default:
      config.kind = ModelKind::kMvmm;
      config.mvmm.default_max_depth = 5;
      break;
  }
  return config;
}

void BM_Train(benchmark::State& state) {
  const int kind_index = static_cast<int>(state.range(0));
  const int quarter = static_cast<int>(state.range(1));
  const std::vector<AggregatedSession>& sessions = Subset(quarter);
  TrainingData data;
  data.sessions = &sessions;
  data.vocabulary_size = SharedHarness().dictionary().size();
  std::unique_ptr<sqp::PredictionModel> model;
  for (auto _ : state) {
    model = CreateModel(ConfigFor(kind_index));
    SQP_CHECK_OK(model->Train(data));
    benchmark::DoNotOptimize(model);
  }
  state.SetLabel(std::string(ModelKindName(ConfigFor(kind_index).kind)) +
                 " @" + std::to_string(quarter * 25) + "% data (" +
                 std::to_string(sessions.size()) + " unique sessions)");
  state.counters["unique_sessions"] =
      static_cast<double>(sessions.size());
  const sqp::ModelStats stats = model->Stats();
  state.counters["model_states"] = static_cast<double>(stats.num_states);
  state.counters["model_bytes"] = static_cast<double>(stats.memory_bytes);
}

}  // namespace

BENCHMARK(BM_Train)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1, 2, 3, 4}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

int main(int argc, char** argv) {
  return sqp::bench::RunBenchmarksWithJson(argc, argv, "BENCH_train.json");
}
