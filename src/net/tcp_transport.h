#ifndef SQP_NET_TCP_TRANSPORT_H_
#define SQP_NET_TCP_TRANSPORT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/transport.h"
#include "util/socket.h"
#include "util/status.h"

namespace sqp::net {

/// The remote half of the transport seam: one TCP connection to a
/// ShardServer. Every blocking operation is bounded by `io_timeout`, so a
/// stalled or half-dead peer surfaces as kUnavailable instead of hanging
/// the router. Not thread-safe (one connection, one thread at a time).
class TcpTransport final : public Transport {
 public:
  /// Connects to `host`:`port` (IPv4 dotted quad, e.g. "127.0.0.1").
  static Result<std::unique_ptr<Transport>> Connect(
      const std::string& host, uint16_t port,
      std::chrono::microseconds io_timeout = std::chrono::seconds(5));

  Status Write(std::span<const uint8_t> data) override;
  Result<size_t> Read(uint8_t* out, size_t max) override;
  void Close() override { fd_.Reset(); }

 private:
  explicit TcpTransport(OwnedFd fd) : fd_(std::move(fd)) {}
  OwnedFd fd_;
};

/// RouterClient transport factory over TCP: shard `s` dials
/// `host`:`ports[s]`. Reconnects (after a shard restart) simply dial the
/// same address again.
std::function<Result<std::unique_ptr<Transport>>(uint32_t)>
TcpTransportFactory(std::string host, std::vector<uint16_t> ports,
                    std::chrono::microseconds io_timeout =
                        std::chrono::seconds(5));

}  // namespace sqp::net

#endif  // SQP_NET_TCP_TRANSPORT_H_
