#include "net/router_client.h"

#include <algorithm>
#include <utility>

#include "log/shard_partitioner.h"

namespace sqp::net {

RouterClient::RouterClient(uint32_t num_shards, TransportFactory factory,
                           RouterOptions options)
    : num_shards_(num_shards == 0 ? 1 : num_shards),
      factory_(std::move(factory)),
      options_(options),
      transports_(num_shards_) {}

Result<WireResponse> RouterClient::Exchange(uint32_t shard,
                                            std::span<const uint8_t> frame) {
  Status last = Status::Unavailable("no attempt made");
  const int attempts = std::max(1, options_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (!transports_[shard]) {
      auto fresh = factory_(shard);
      if (!fresh.ok()) {
        last = fresh.status();
        continue;
      }
      transports_[shard] = std::move(*fresh);
    }
    Transport& transport = *transports_[shard];
    Status written = transport.Write(frame);
    if (!written.ok()) {
      transports_[shard].reset();
      ++stats_.reconnects;
      last = written;
      continue;
    }
    FrameAssembler assembler(options_.max_frame_body_bytes);
    FrameHeader header;
    std::vector<uint8_t> body;
    uint8_t buf[16 * 1024];
    while (true) {
      bool ready = false;
      Status next = assembler.Next(&header, &body, &ready);
      if (!next.ok()) {
        // Corrupt stream: close and surface — no retry can help.
        transports_[shard].reset();
        ++stats_.wire_errors;
        return next;
      }
      if (ready) break;
      auto n = transport.Read(buf, sizeof(buf));
      if (!n.ok()) {
        transports_[shard].reset();
        ++stats_.reconnects;
        last = n.status();
        break;
      }
      Status fed = assembler.Feed({buf, *n});
      if (!fed.ok()) {
        transports_[shard].reset();
        ++stats_.wire_errors;
        return fed;
      }
    }
    if (!transports_[shard]) continue;  // read failed; retry
    if (header.type != FrameType::kResponse) {
      transports_[shard].reset();
      ++stats_.wire_errors;
      return Status::DataLoss("expected a response frame");
    }
    WireResponse response;
    Status decoded = DecodeResponseBody(body, &response);
    if (!decoded.ok()) {
      transports_[shard].reset();
      ++stats_.wire_errors;
      return decoded;
    }
    if (response.fleet_version > observed_fleet_version_) {
      if (observed_fleet_version_ != 0) ++stats_.version_changes;
      observed_fleet_version_ = response.fleet_version;
    }
    return response;
  }
  if (last.code() == StatusCode::kUnavailable) ++stats_.unavailable;
  return last;
}

BatchResult RouterClient::RecommendMany(std::span<const ContextRef> contexts,
                                        size_t top_n,
                                        const ServeOptions& options) {
  const size_t n = contexts.size();
  BatchResult out;
  out.results.resize(n);
  out.statuses.assign(n, StatusCode::kOk);
  out.effective_top_n = top_n;
  ++stats_.batches;
  if (n == 0) return out;

  // Submission-order routing: each shard's sub-batch lists its items in
  // the order they appear in `contexts`, and replies scatter back through
  // the same index lists — positional alignment survives the fan-out.
  std::vector<std::vector<size_t>> by_shard(num_shards_);
  for (size_t i = 0; i < n; ++i) {
    by_shard[ShardOfContext(contexts[i], num_shards_)].push_back(i);
  }

  size_t effective = top_n;
  bool any_ok_subbatch = false;
  Status first_failed_admission;
  std::vector<uint8_t> frame;
  for (uint32_t shard = 0; shard < num_shards_; ++shard) {
    const std::vector<size_t>& indices = by_shard[shard];
    if (indices.empty()) continue;

    WireRequest request;
    request.request_id = next_request_id_++;
    request.expected_fleet_version = options_.expected_fleet_version;
    request.lane = options.lane;
    request.top_n = static_cast<uint32_t>(top_n);
    if (options.deadline.bounded()) {
      // Remaining budget at send time; a deadline already expired ships a
      // zero budget and the shard sheds it on arrival, exactly like the
      // in-process expired-at-admission path.
      const double remaining = options.deadline.RemainingMicros();
      request.deadline_remaining_us =
          remaining <= 0 ? 0 : static_cast<uint64_t>(remaining);
    }
    request.contexts.reserve(indices.size());
    for (size_t i : indices) {
      request.contexts.emplace_back(contexts[i].begin(), contexts[i].end());
    }
    EncodeRequestFrame(request, &frame);
    ++stats_.subrequests;

    auto response = Exchange(shard, frame);
    StatusCode failure = StatusCode::kUnavailable;
    bool failed = false;
    if (!response.ok()) {
      failure = response.status().code();
      failed = true;
    } else if (response->request_id != request.request_id ||
               response->items.size() != indices.size()) {
      ++stats_.wire_errors;
      failure = StatusCode::kDataLoss;
      failed = true;
    }
    if (failed) {
      for (size_t i : indices) out.statuses[i] = failure;
      if (first_failed_admission.ok()) {
        first_failed_admission =
            Status(failure, "shard " + std::to_string(shard) + " sub-batch failed");
      }
      continue;
    }

    WireResponse& reply = *response;
    if (reply.admission == StatusCode::kOk) {
      any_ok_subbatch = true;
      effective = std::min(effective, size_t{reply.effective_top_n});
      out.degraded |= reply.degraded;
    } else if (first_failed_admission.ok()) {
      first_failed_admission =
          Status(reply.admission,
                 "shard " + std::to_string(shard) + " shed the sub-batch");
    }
    for (size_t k = 0; k < indices.size(); ++k) {
      const WireItem& item = reply.items[k];
      const size_t i = indices[k];
      out.statuses[i] = item.status;
      out.results[i].covered = item.covered;
      out.results[i].matched_length = item.matched_length;
      out.results[i].queries = std::move(reply.items[k].queries);
    }
  }

  out.effective_top_n = any_ok_subbatch ? effective : top_n;
  // The batch as a whole was admitted if any shard served its slice;
  // all-shards-failed reports the first failure, like a shed batch.
  if (!any_ok_subbatch && !first_failed_admission.ok()) {
    out.admission = first_failed_admission;
  }
  for (const StatusCode code : out.statuses) {
    if (code == StatusCode::kOk) ++out.served;
  }
  return out;
}

BatchResult RouterClient::RecommendMany(
    const std::vector<std::vector<QueryId>>& contexts, size_t top_n,
    const ServeOptions& options) {
  std::vector<ContextRef> refs;
  refs.reserve(contexts.size());
  for (const std::vector<QueryId>& context : contexts) {
    refs.emplace_back(context.data(), context.size());
  }
  return RecommendMany(std::span<const ContextRef>(refs), top_n, options);
}

ServeResult RouterClient::Recommend(ContextRef context, size_t top_n,
                                    const ServeOptions& options) {
  const ContextRef refs[1] = {context};
  BatchResult batch = RecommendMany(std::span<const ContextRef>(refs, 1),
                                    top_n, options);
  ServeResult result;
  result.recommendation = std::move(batch.results[0]);
  result.status = batch.statuses[0];
  result.degraded = batch.degraded;
  return result;
}

}  // namespace sqp::net
