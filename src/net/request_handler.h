#ifndef SQP_NET_REQUEST_HANDLER_H_
#define SQP_NET_REQUEST_HANDLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "net/wire_format.h"
#include "serve/recommender_engine.h"
#include "util/status.h"

namespace sqp::net {

/// The transport-independent serving core of a shard: decode one request
/// body, serve it through the embedded engine, encode the response frame.
/// Both the TCP server's event loop and the in-process LoopbackTransport
/// run requests through this one class — the reason the loopback path
/// proves exactly the pipeline the TCP path ships.
///
/// Thread-safe: the engine is concurrent and the handler itself is
/// stateless beyond configuration.
class ShardRequestHandler {
 public:
  /// `engine` must outlive the handler and have a published snapshot (or
  /// answer kUnavailable, which the wire carries faithfully).
  /// `fleet_version` is the manifest version this shard was booted from,
  /// echoed in every response so routers can observe restarts.
  /// `feedback` (optional, must outlive the handler) is the closed-loop
  /// hook (serve/feedback.h) applied to every served request — feedback
  /// logging and exploration are a server-side concern, invisible on the
  /// wire beyond the explored answers themselves.
  ShardRequestHandler(const RecommenderEngine* engine, uint64_t fleet_version,
                      const FeedbackHook* feedback = nullptr)
      : engine_(engine), fleet_version_(fleet_version), feedback_(feedback) {}

  /// Serves one request frame body. On success `response_frame` holds the
  /// complete encoded response. kDataLoss when the body is malformed —
  /// the connection carrying it must be closed.
  Status HandleRequest(std::span<const uint8_t> body,
                       std::vector<uint8_t>* response_frame) const;

  uint64_t fleet_version() const { return fleet_version_; }

 private:
  const RecommenderEngine* engine_;
  uint64_t fleet_version_;
  const FeedbackHook* feedback_;
};

}  // namespace sqp::net

#endif  // SQP_NET_REQUEST_HANDLER_H_
