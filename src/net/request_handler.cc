#include "net/request_handler.h"

#include <chrono>
#include <utility>

namespace sqp::net {

Status ShardRequestHandler::HandleRequest(
    std::span<const uint8_t> body, std::vector<uint8_t>* response_frame) const {
  WireRequest request;
  SQP_RETURN_IF_ERROR(DecodeRequestBody(body, &request));

  WireResponse response;
  response.request_id = request.request_id;
  response.fleet_version = fleet_version_;

  if (request.expected_fleet_version != 0 &&
      request.expected_fleet_version != fleet_version_) {
    // The router pinned a manifest version this shard no longer serves —
    // tell it to re-resolve instead of silently answering off-version.
    response.admission = StatusCode::kFailedPrecondition;
    response.effective_top_n = 0;
    response.items.assign(request.contexts.size(),
                          WireItem{StatusCode::kFailedPrecondition});
  } else {
    // The deadline traveled as a remaining-microsecond budget; it becomes
    // absolute again here, so queue wait on the server burns it exactly
    // like in-process serving.
    ServeOptions options;
    options.lane = request.lane;
    options.feedback = feedback_;
    if (request.deadline_remaining_us != kUnboundedDeadlineMicros) {
      options.deadline = Deadline::After(
          std::chrono::microseconds(request.deadline_remaining_us));
    }
    BatchResult batch =
        engine_->RecommendMany(request.contexts, request.top_n, options);
    response.admission = batch.admission.code();
    response.degraded = batch.degraded;
    response.effective_top_n = static_cast<uint32_t>(batch.effective_top_n);
    response.items.resize(batch.results.size());
    for (size_t i = 0; i < batch.results.size(); ++i) {
      WireItem& item = response.items[i];
      item.status = batch.statuses[i];
      item.covered = batch.results[i].covered;
      item.matched_length =
          static_cast<uint32_t>(batch.results[i].matched_length);
      item.queries = std::move(batch.results[i].queries);
    }
  }

  EncodeResponseFrame(response, response_frame);
  return Status::OK();
}

}  // namespace sqp::net
