#ifndef SQP_NET_ROUTER_CLIENT_H_
#define SQP_NET_ROUTER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/transport.h"
#include "net/wire_format.h"
#include "serve/deadline.h"
#include "serve/recommender_engine.h"
#include "util/status.h"

namespace sqp::net {

struct RouterOptions {
  /// Attempts per shard sub-batch. Attempt 2+ asks the factory for a
  /// fresh transport — the graceful-restart path: a shard bouncing onto a
  /// new manifest answers the retry, and the response's fleet version
  /// tells the router the fleet moved. Only connection-level failures
  /// (kUnavailable) retry; a protocol violation (kDataLoss) surfaces
  /// immediately, because resending bytes cannot fix a corrupt stream.
  int max_attempts = 2;

  /// Frame-body cap enforced on responses.
  size_t max_frame_body_bytes = kMaxFrameBodyBytes;

  /// When nonzero, every request pins this manifest version and a shard
  /// serving a different one answers kFailedPrecondition (see
  /// ShardRequestHandler). 0 = serve whatever is published.
  uint64_t expected_fleet_version = 0;
};

struct RouterStats {
  uint64_t batches = 0;           // RecommendMany calls
  uint64_t subrequests = 0;       // per-shard request frames sent
  uint64_t reconnects = 0;        // fresh transports after a failure
  uint64_t wire_errors = 0;       // sub-batches failed with kDataLoss
  uint64_t unavailable = 0;       // sub-batches failed with kUnavailable
  uint64_t version_changes = 0;   // observed fleet version moved
};

/// The client half of the network tier: speaks the wire protocol to N
/// shard servers (one Transport per shard, TCP or loopback — the router
/// cannot tell) and presents the same deadline-aware RecommendMany
/// surface as ShardedEngine. Contexts are routed by ShardOfContext,
/// bundled into one request frame per shard, and the replies are merged
/// back in submission order — bit-identical to in-process sharded
/// serving, because each shard's embedded engine answers its contexts
/// with the unsharded model's exact scores.
///
/// Deadlines travel as remaining-microsecond budgets captured at send
/// time, so server-side queue wait burns the same budget it would have
/// in-process. A sub-batch whose shard cannot be reached (after
/// max_attempts) marks exactly its own items kUnavailable/kDataLoss;
/// other shards' answers are unaffected — the same isolation a dead
/// shard has in ShardedEngine.
///
/// Not thread-safe: one RouterClient per client thread (connections are
/// serial request/response streams). The bench opens one per connection.
class RouterClient {
 public:
  /// Produces a connection to shard `s`. Called lazily on first use and
  /// again after a connection-level failure (reconnect).
  using TransportFactory =
      std::function<Result<std::unique_ptr<Transport>>(uint32_t shard)>;

  RouterClient(uint32_t num_shards, TransportFactory factory,
               RouterOptions options = {});

  /// Deadline-aware batched serving over the fleet; mirrors
  /// ShardedEngine::RecommendMany (positional results, per-item statuses,
  /// BatchResult::served_version = 0).
  BatchResult RecommendMany(std::span<const ContextRef> contexts,
                            size_t top_n, const ServeOptions& options = {});
  BatchResult RecommendMany(const std::vector<std::vector<QueryId>>& contexts,
                            size_t top_n, const ServeOptions& options = {});

  /// Single-query convenience (a one-item batch on the wire).
  ServeResult Recommend(ContextRef context, size_t top_n,
                        const ServeOptions& options = {});

  uint32_t num_shards() const { return num_shards_; }

  /// Highest manifest version any response has reported — how the router
  /// observes a shard restarting onto a newer snapshot generation.
  uint64_t observed_fleet_version() const { return observed_fleet_version_; }

  RouterStats stats() const { return stats_; }

 private:
  /// One request/response exchange with `shard`, reconnecting per
  /// RouterOptions. The returned status code is what the sub-batch's
  /// items are marked with on failure.
  Result<WireResponse> Exchange(uint32_t shard,
                                std::span<const uint8_t> frame);

  uint32_t num_shards_;
  TransportFactory factory_;
  RouterOptions options_;
  std::vector<std::unique_ptr<Transport>> transports_;
  uint64_t next_request_id_ = 1;
  uint64_t observed_fleet_version_ = 0;
  RouterStats stats_;
};

}  // namespace sqp::net

#endif  // SQP_NET_ROUTER_CLIENT_H_
