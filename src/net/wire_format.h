#ifndef SQP_NET_WIRE_FORMAT_H_
#define SQP_NET_WIRE_FORMAT_H_

/// The cross-process wire protocol for the recommendation fleet: binary,
/// little-endian, length-prefixed frames carrying one `RecommendMany`
/// sub-batch per request and one `BatchResult` worth of answers per
/// response. The format is pinned by a golden artifact
/// (tests/data/golden_frames_v1.bin) exactly like the snapshot blob and
/// manifest formats — any byte-level change requires a protocol version
/// bump and a new golden.
///
/// Frame layout (all integers little-endian):
///
///   offset size field
///   0      4    magic 'S' 'Q' 'P' 'W'
///   4      2    protocol version (kWireProtocolVersion)
///   6      1    frame type (1 = request, 2 = response)
///   7      1    reserved, must be 0
///   8      4    body size in bytes (bounded by kMaxFrameBodyBytes)
///   12     4    CRC-32 of the body
///   16     ...  body
///
/// Request body:
///   u64 request_id            echoed verbatim in the response
///   u64 deadline_remaining_us remaining budget at send time;
///                             kUnboundedDeadlineMicros = no deadline
///   u64 expected_fleet_version  0 = serve whatever is published
///   u8  lane (QosLane)        u8[3] reserved (0)
///   u32 top_n (>= 1)
///   u32 num_contexts, then per context: u32 len, len x u32 query id
///
/// Response body:
///   u64 request_id            u64 fleet_version (manifest version served)
///   u8  admission status      u8 degraded (0/1)        u16 reserved (0)
///   u32 effective_top_n
///   u32 num_items, then per item:
///     u8 status, u8 covered (0/1), u16 reserved (0)
///     u32 matched_length
///     u32 num_queries, then per query: u32 query id, u64 score bits (f64)
///
/// Decode failures are typed, never UB: corrupt or malformed bytes are
/// kDataLoss; a stream that simply ends is "not ready" and surfaces as the
/// transport's kUnavailable. Decoders are cursor-bounded — a hostile
/// length field can never cause a read past the supplied span.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/prediction_model.h"
#include "log/types.h"
#include "serve/deadline.h"
#include "util/status.h"

namespace sqp::net {

inline constexpr uint8_t kWireMagic[4] = {'S', 'Q', 'P', 'W'};
inline constexpr uint16_t kWireProtocolVersion = 1;
inline constexpr size_t kFramePreludeBytes = 16;
/// Upper bound on a frame body; a length prefix above this is corruption
/// (or an unreasonable request) and kills the connection.
inline constexpr size_t kMaxFrameBodyBytes = 16u << 20;
inline constexpr uint64_t kUnboundedDeadlineMicros = ~uint64_t{0};

enum class FrameType : uint8_t { kRequest = 1, kResponse = 2 };

struct FrameHeader {
  FrameType type = FrameType::kRequest;
  uint32_t body_size = 0;
  uint32_t body_crc = 0;
};

/// One routed sub-batch: the contexts a single shard owns.
struct WireRequest {
  uint64_t request_id = 0;
  uint64_t deadline_remaining_us = kUnboundedDeadlineMicros;
  uint64_t expected_fleet_version = 0;
  QosLane lane = QosLane::kInteractive;
  uint32_t top_n = 1;
  std::vector<std::vector<QueryId>> contexts;

  bool operator==(const WireRequest&) const = default;
};

/// One item of a response, mirroring ServeResult + Recommendation.
struct WireItem {
  StatusCode status = StatusCode::kOk;
  bool covered = false;
  uint32_t matched_length = 0;
  std::vector<ScoredQuery> queries;

  bool operator==(const WireItem& other) const;
};

/// Mirrors BatchResult for the sub-batch, plus the fleet version served
/// so the router can detect a shard restart onto a newer manifest.
struct WireResponse {
  uint64_t request_id = 0;
  uint64_t fleet_version = 0;
  StatusCode admission = StatusCode::kOk;
  bool degraded = false;
  uint32_t effective_top_n = 0;
  std::vector<WireItem> items;

  bool operator==(const WireResponse&) const = default;
};

/// StatusCode <-> wire byte. The wire values are pinned independently of
/// the C++ enum order (an enum reorder must not silently change the
/// protocol). WireStatusOf is total; StatusFromWire returns false for
/// bytes no release has ever emitted.
uint8_t WireStatusOf(StatusCode code);
bool StatusFromWire(uint8_t wire, StatusCode* out);

/// Serializes a complete frame (prelude + body) into `out` (overwritten).
void EncodeRequestFrame(const WireRequest& request, std::vector<uint8_t>* out);
void EncodeResponseFrame(const WireResponse& response,
                         std::vector<uint8_t>* out);

/// Body decoders. The span is exactly the frame body (prelude already
/// validated and CRC already checked by FrameAssembler). kDataLoss on any
/// malformed field, including trailing bytes.
Status DecodeRequestBody(std::span<const uint8_t> body, WireRequest* out);
Status DecodeResponseBody(std::span<const uint8_t> body, WireResponse* out);

/// Incremental frame reassembly over an arbitrary byte stream. Both sides
/// of the connection use one assembler per peer: feed whatever chunk the
/// transport produced (a single byte is fine), then drain complete frames
/// with Next(). The prelude is validated as soon as its 16 bytes arrive —
/// garbage magic, an unsupported version, an unknown frame type, a
/// nonzero reserved byte or an oversized body length poison the stream
/// with a sticky kDataLoss, because after framing is lost no later byte
/// can be trusted.
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_body_bytes = kMaxFrameBodyBytes)
      : max_body_bytes_(max_body_bytes) {}

  /// Appends stream bytes. Returns the sticky stream status.
  Status Feed(std::span<const uint8_t> bytes);

  /// Pops the next complete frame into header/body and sets *ready=true;
  /// sets *ready=false when more bytes are needed. kDataLoss if the
  /// stream is poisoned or the body CRC does not match.
  Status Next(FrameHeader* header, std::vector<uint8_t>* body, bool* ready);

  /// Bytes buffered but not yet returned (0 on a frame boundary).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  Status ValidatePrelude(const uint8_t* prelude);

  size_t max_body_bytes_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
  bool have_header_ = false;
  FrameHeader header_;
  Status error_;
};

}  // namespace sqp::net

#endif  // SQP_NET_WIRE_FORMAT_H_
