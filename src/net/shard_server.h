#ifndef SQP_NET_SHARD_SERVER_H_
#define SQP_NET_SHARD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "net/request_handler.h"
#include "net/wire_format.h"
#include "serve/recommender_engine.h"
#include "util/socket.h"
#include "util/status.h"

namespace sqp::net {

struct ShardServerOptions {
  /// Address to bind. Port 0 binds an ephemeral port — read the real one
  /// back with port() after Start (the pattern every test and the bench
  /// use to avoid port collisions).
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// The embedded engine built by StartFromManifest. One worker lane by
  /// default: a shard process is already one slice of the fleet, and the
  /// admission queue still applies its deadline/lane policy to pool-sized
  /// batches when more lanes are configured.
  EngineOptions engine = {.num_threads = 1};

  /// Frame-body cap enforced on incoming requests.
  size_t max_frame_body_bytes = kMaxFrameBodyBytes;

  /// Optional closed-loop hook (serve/feedback.h): every request this
  /// server serves is passed through it (exploration rerank + impression
  /// logging). Must outlive the server. Null = serve exactly as before.
  const FeedbackHook* feedback = nullptr;
};

struct ShardServerStats {
  uint64_t connections_accepted = 0;
  /// Connections closed because the peer sent a poisoned stream (bad
  /// magic/version/oversized length/CRC mismatch/malformed body).
  uint64_t connections_dropped = 0;
  uint64_t frames_served = 0;
};

/// One shard of the fleet as a network service: cold-boots its snapshot
/// blob off the shared SnapshotManifest and serves request frames over
/// TCP from a nonblocking epoll event loop on a background thread.
/// Requests are decoded, served through the embedded RecommenderEngine
/// (deadline budgets from the frame header re-anchored into absolute
/// deadlines, lanes mapped onto the admission queue) and answered on the
/// same connection; responses to pipelined requests come back in request
/// order. A connection that sends garbage is closed — the router sees
/// kUnavailable and reconnects; other connections are unaffected.
class ShardServer {
 public:
  explicit ShardServer(ShardServerOptions options = {});
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Cold-boots shard `shard_index` of the fleet pinned by
  /// `manifest_path` (zero-copy map of its blob, exactly like
  /// ShardedEngine::LoadAndPublish does in-process) and starts accepting
  /// connections. The manifest's model version becomes the fleet version
  /// echoed in every response.
  Status StartFromManifest(const std::string& manifest_path,
                           uint32_t shard_index);

  /// Serves an externally owned, already published engine (a single-blob
  /// deployment, or tests that built their snapshot in memory). `engine`
  /// must outlive the server.
  Status StartWithEngine(const RecommenderEngine* engine,
                         uint64_t fleet_version, uint32_t shard_index = 0);

  /// Stops accepting, closes every connection and joins the event loop.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// The port actually bound (resolves an ephemeral request).
  uint16_t port() const { return port_; }
  uint32_t shard_index() const { return shard_index_; }
  uint64_t fleet_version() const { return fleet_version_; }
  /// Shard count of the manifest served, 1 for StartWithEngine.
  uint32_t fleet_num_shards() const { return fleet_num_shards_; }
  ShardServerStats stats() const;

 private:
  Status Start();
  void EventLoop();

  ShardServerOptions options_;
  std::unique_ptr<RecommenderEngine> owned_engine_;
  std::unique_ptr<ShardRequestHandler> handler_;
  uint64_t fleet_version_ = 0;
  uint32_t shard_index_ = 0;
  uint32_t fleet_num_shards_ = 1;
  uint16_t port_ = 0;

  OwnedFd listener_;
  OwnedFd wake_;
  std::thread loop_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_dropped_{0};
  std::atomic<uint64_t> frames_served_{0};
};

}  // namespace sqp::net

#endif  // SQP_NET_SHARD_SERVER_H_
