#ifndef SQP_NET_LOOPBACK_TRANSPORT_H_
#define SQP_NET_LOOPBACK_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/request_handler.h"
#include "net/transport.h"
#include "net/wire_format.h"
#include "serve/recommender_engine.h"

namespace sqp::net {

/// The embedded half of the transport seam: an in-process connection to
/// one shard engine. Bytes written are reassembled into request frames
/// (through the same FrameAssembler the TCP server uses), served through
/// a ShardRequestHandler on the calling thread, and the encoded response
/// bytes become what Read() returns. Chunked or byte-at-a-time writes
/// are handled exactly like a socket would deliver them — the only thing
/// loopback skips is the kernel.
///
/// Not thread-safe; a router uses each transport from one thread at a
/// time, which is the contract TcpTransport has too.
class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport(const RecommenderEngine* engine, uint64_t fleet_version,
                    size_t max_body_bytes = kMaxFrameBodyBytes)
      : handler_(engine, fleet_version), assembler_(max_body_bytes) {}

  Status Write(std::span<const uint8_t> data) override;
  Result<size_t> Read(uint8_t* out, size_t max) override;
  void Close() override { closed_ = true; }

 private:
  ShardRequestHandler handler_;
  FrameAssembler assembler_;
  std::deque<uint8_t> outbox_;
  bool closed_ = false;
};

/// RouterClient transport factory over per-shard engines: shard `s`
/// connects to `shard_engines[s]` in-process. The engines must outlive
/// every transport the factory produces.
std::function<Result<std::unique_ptr<Transport>>(uint32_t)>
LoopbackTransportFactory(std::vector<const RecommenderEngine*> shard_engines,
                         uint64_t fleet_version);

}  // namespace sqp::net

#endif  // SQP_NET_LOOPBACK_TRANSPORT_H_
