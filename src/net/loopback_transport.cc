#include "net/loopback_transport.h"

#include <algorithm>
#include <utility>

namespace sqp::net {

std::function<Result<std::unique_ptr<Transport>>(uint32_t)>
LoopbackTransportFactory(std::vector<const RecommenderEngine*> shard_engines,
                         uint64_t fleet_version) {
  return [engines = std::move(shard_engines),
          fleet_version](uint32_t shard) -> Result<std::unique_ptr<Transport>> {
    if (shard >= engines.size()) {
      return Status::InvalidArgument("no engine for shard " +
                                     std::to_string(shard));
    }
    return std::unique_ptr<Transport>(
        new LoopbackTransport(engines[shard], fleet_version));
  };
}

Status LoopbackTransport::Write(std::span<const uint8_t> data) {
  if (closed_) return Status::Unavailable("loopback transport closed");
  // A real server closes the connection on a poisoned stream; loopback
  // mirrors that by failing the write and everything after it.
  Status fed = assembler_.Feed(data);
  if (!fed.ok()) {
    closed_ = true;
    return Status::Unavailable("peer closed connection: " + fed.message());
  }
  FrameHeader header;
  std::vector<uint8_t> body, response;
  bool ready = false;
  while (true) {
    Status next = assembler_.Next(&header, &body, &ready);
    if (!next.ok()) {
      closed_ = true;
      return Status::Unavailable("peer closed connection: " + next.message());
    }
    if (!ready) break;
    if (header.type != FrameType::kRequest) {
      closed_ = true;
      return Status::Unavailable("peer closed connection: not a request");
    }
    Status served = handler_.HandleRequest(body, &response);
    if (!served.ok()) {
      closed_ = true;
      return Status::Unavailable("peer closed connection: " +
                                 served.message());
    }
    outbox_.insert(outbox_.end(), response.begin(), response.end());
  }
  return Status::OK();
}

Result<size_t> LoopbackTransport::Read(uint8_t* out, size_t max) {
  if (max == 0) return Status::InvalidArgument("zero-byte read");
  if (outbox_.empty()) {
    // A socket would block here; in-process there is nothing that could
    // ever produce more bytes, so the stream is over.
    return Status::Unavailable(closed_ ? "loopback transport closed"
                                       : "no response pending");
  }
  const size_t n = std::min(max, outbox_.size());
  std::copy_n(outbox_.begin(), n, out);
  outbox_.erase(outbox_.begin(), outbox_.begin() + static_cast<ptrdiff_t>(n));
  return n;
}

}  // namespace sqp::net
