#include "net/tcp_transport.h"

#include <utility>

namespace sqp::net {

Result<std::unique_ptr<Transport>> TcpTransport::Connect(
    const std::string& host, uint16_t port,
    std::chrono::microseconds io_timeout) {
  auto fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  SQP_RETURN_IF_ERROR(SetIoTimeout(fd->get(), io_timeout));
  return std::unique_ptr<Transport>(new TcpTransport(std::move(*fd)));
}

std::function<Result<std::unique_ptr<Transport>>(uint32_t)>
TcpTransportFactory(std::string host, std::vector<uint16_t> ports,
                    std::chrono::microseconds io_timeout) {
  return [host = std::move(host), ports = std::move(ports),
          io_timeout](uint32_t shard) -> Result<std::unique_ptr<Transport>> {
    if (shard >= ports.size()) {
      return Status::InvalidArgument("no port for shard " +
                                     std::to_string(shard));
    }
    return TcpTransport::Connect(host, ports[shard], io_timeout);
  };
}

Status TcpTransport::Write(std::span<const uint8_t> data) {
  if (!fd_.valid()) return Status::Unavailable("transport closed");
  return WriteAllFd(fd_.get(), data.data(), data.size());
}

Result<size_t> TcpTransport::Read(uint8_t* out, size_t max) {
  if (!fd_.valid()) return Status::Unavailable("transport closed");
  return ReadSomeFd(fd_.get(), out, max);
}

}  // namespace sqp::net
