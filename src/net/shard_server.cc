#include "net/shard_server.h"

#include <cerrno>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/snapshot_io.h"
#include "log/shard_partitioner.h"

namespace sqp::net {
namespace {

/// Per-connection state: reassembly of the inbound stream and the
/// outbound bytes not yet accepted by the socket.
struct Connection {
  explicit Connection(OwnedFd fd, size_t max_body)
      : fd(std::move(fd)), assembler(max_body) {}
  OwnedFd fd;
  FrameAssembler assembler;
  std::vector<uint8_t> out;
  size_t out_pos = 0;

  bool has_pending_out() const { return out_pos < out.size(); }
};

}  // namespace

ShardServer::ShardServer(ShardServerOptions options)
    : options_(std::move(options)) {}

ShardServer::~ShardServer() { Stop(); }

Status ShardServer::StartFromManifest(const std::string& manifest_path,
                                      uint32_t shard_index) {
  if (handler_) return Status::FailedPrecondition("server already started");
  auto manifest = SnapshotIo::LoadManifest(manifest_path);
  if (!manifest.ok()) return manifest.status();
  if (manifest->partition_function != kShardPartitionLastQueryFnv1a) {
    return Status::InvalidArgument(
        "manifest uses unknown partition function " +
        std::to_string(manifest->partition_function));
  }
  if (shard_index >= manifest->num_shards()) {
    return Status::InvalidArgument(
        "shard index " + std::to_string(shard_index) + " out of range for " +
        std::to_string(manifest->num_shards()) + "-shard manifest");
  }
  const ShardBlobRef& ref = manifest->shards[shard_index];
  const std::string blob_path = ResolveAgainstManifest(manifest_path, ref.path);
  SQP_RETURN_IF_ERROR(SnapshotIo::VerifyBlobRef(ref, blob_path));
  owned_engine_ = std::make_unique<RecommenderEngine>(options_.engine);
  SQP_RETURN_IF_ERROR(owned_engine_->LoadAndPublish(blob_path));
  fleet_version_ = manifest->version;
  fleet_num_shards_ = manifest->num_shards();
  shard_index_ = shard_index;
  handler_ = std::make_unique<ShardRequestHandler>(
      owned_engine_.get(), fleet_version_, options_.feedback);
  return Start();
}

Status ShardServer::StartWithEngine(const RecommenderEngine* engine,
                                    uint64_t fleet_version,
                                    uint32_t shard_index) {
  if (handler_) return Status::FailedPrecondition("server already started");
  fleet_version_ = fleet_version;
  fleet_num_shards_ = 1;
  shard_index_ = shard_index;
  handler_ = std::make_unique<ShardRequestHandler>(engine, fleet_version,
                                                   options_.feedback);
  return Start();
}

Status ShardServer::Start() {
  auto listener = ListenTcp(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  SQP_RETURN_IF_ERROR(SetNonBlocking(listener_.get()));
  auto port = BoundPort(listener_.get());
  if (!port.ok()) return port.status();
  port_ = *port;
  wake_ = OwnedFd(::eventfd(0, EFD_NONBLOCK));
  if (!wake_.valid()) return Status::IOError("eventfd failed");
  stopping_.store(false, std::memory_order_relaxed);
  loop_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void ShardServer::Stop() {
  if (!loop_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_.get(), &one, sizeof(one));
  loop_.join();
  listener_.Reset();
  wake_.Reset();
}

void ShardServer::EventLoop() {
  OwnedFd epoll(::epoll_create1(0));
  if (!epoll.valid()) return;
  auto add = [&](int fd, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, fd, &ev);
  };
  auto mod = [&](int fd, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(epoll.get(), EPOLL_CTL_MOD, fd, &ev);
  };
  add(listener_.get(), EPOLLIN);
  add(wake_.get(), EPOLLIN);

  std::unordered_map<int, Connection> conns;
  auto close_conn = [&](int fd, bool dropped) {
    ::epoll_ctl(epoll.get(), EPOLL_CTL_DEL, fd, nullptr);
    conns.erase(fd);
    if (dropped) {
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  };
  // Writes as much of conn.out as the socket accepts; toggles EPOLLOUT
  // interest to match what is left. Returns false when the peer died.
  auto flush = [&](Connection& conn) {
    while (conn.has_pending_out()) {
      ssize_t n = ::send(conn.fd.get(), conn.out.data() + conn.out_pos,
                         conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;
      }
      conn.out_pos += static_cast<size_t>(n);
    }
    if (!conn.has_pending_out()) {
      conn.out.clear();
      conn.out_pos = 0;
      mod(conn.fd.get(), EPOLLIN);
    } else {
      mod(conn.fd.get(), EPOLLIN | EPOLLOUT);
    }
    return true;
  };

  std::vector<epoll_event> events(64);
  std::vector<uint8_t> rdbuf(64 * 1024);
  std::vector<uint8_t> body, response;
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll.get(), events.data(),
                         static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == wake_.get()) {
        uint64_t drain;
        [[maybe_unused]] ssize_t r = ::read(wake_.get(), &drain, sizeof(drain));
        continue;
      }
      if (fd == listener_.get()) {
        while (true) {
          auto accepted = AcceptTcp(listener_.get());
          if (!accepted.ok()) break;
          int cfd = accepted->get();
          if (!SetNonBlocking(cfd).ok()) continue;
          conns.emplace(cfd, Connection(std::move(*accepted),
                                        options_.max_frame_body_bytes));
          add(cfd, EPOLLIN);
          connections_accepted_.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      auto it = conns.find(fd);
      if (it == conns.end()) continue;
      Connection& conn = it->second;
      if (ev & (EPOLLERR | EPOLLHUP)) {
        close_conn(fd, false);
        continue;
      }
      bool closed = false;
      if (ev & EPOLLIN) {
        while (true) {
          ssize_t r = ::recv(fd, rdbuf.data(), rdbuf.size(), 0);
          if (r < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            close_conn(fd, false);
            closed = true;
            break;
          }
          if (r == 0) {  // peer closed
            close_conn(fd, false);
            closed = true;
            break;
          }
          if (!conn.assembler
                   .Feed({rdbuf.data(), static_cast<size_t>(r)})
                   .ok()) {
            close_conn(fd, true);
            closed = true;
            break;
          }
          bool poisoned = false;
          while (true) {
            FrameHeader header;
            bool ready = false;
            if (!conn.assembler.Next(&header, &body, &ready).ok()) {
              poisoned = true;
              break;
            }
            if (!ready) break;
            if (header.type != FrameType::kRequest ||
                !handler_->HandleRequest(body, &response).ok()) {
              poisoned = true;
              break;
            }
            conn.out.insert(conn.out.end(), response.begin(), response.end());
            frames_served_.fetch_add(1, std::memory_order_relaxed);
          }
          if (poisoned) {
            close_conn(fd, true);
            closed = true;
            break;
          }
        }
      }
      if (closed) continue;
      if (!flush(conn)) close_conn(fd, false);
    }
  }
}

ShardServerStats ShardServer::stats() const {
  ShardServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_dropped = connections_dropped_.load(std::memory_order_relaxed);
  s.frames_served = frames_served_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sqp::net
