#ifndef SQP_NET_TRANSPORT_H_
#define SQP_NET_TRANSPORT_H_

/// The embedded-vs-remote seam of the network tier. A Transport is one
/// bidirectional byte stream between a router and a single shard; the
/// RouterClient speaks the wire protocol over whichever implementation it
/// is handed. Two live behind the interface:
///
///   - LoopbackTransport (loopback_transport.h): in-process, frames are
///     decoded and served by a ShardRequestHandler on the calling thread.
///   - TcpTransport (tcp_transport.h): a real socket to a ShardServer.
///
/// The seam invariant: every byte the router writes crosses the full
/// encode -> reassemble -> decode pipeline on both transports, so the
/// loopback path exercises exactly the wire format the TCP path ships —
/// which is what lets the equivalence suites prove the networked fleet
/// bit-identical to in-process serving on either implementation.

#include <cstdint>
#include <span>

#include "util/status.h"

namespace sqp::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Writes the whole buffer or fails. kUnavailable when the peer is gone
  /// (the router treats that as "shard restarting" and may reconnect).
  virtual Status Write(std::span<const uint8_t> data) = 0;

  /// Blocks until at least one byte is available, returning how many were
  /// read (1..max). Never returns 0: end-of-stream, reset and timeout are
  /// all kUnavailable — the framing layer decides whether the stream died
  /// mid-frame. Implementations must bound the wait (never hang).
  virtual Result<size_t> Read(uint8_t* out, size_t max) = 0;

  /// Releases the connection. Further Read/Write fail kUnavailable.
  virtual void Close() = 0;
};

}  // namespace sqp::net

#endif  // SQP_NET_TRANSPORT_H_
