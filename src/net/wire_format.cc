#include "net/wire_format.h"

#include <bit>
#include <cstring>

#include "util/byte_io.h"

namespace sqp::net {
namespace {

// ---------------------------------------------------------------- encode

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  uint8_t b[2];
  StoreLE16(b, v);
  out->insert(out->end(), b, b + sizeof(b));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  uint8_t b[4];
  StoreLE32(b, v);
  out->insert(out->end(), b, b + sizeof(b));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  uint8_t b[8];
  StoreLE64(b, v);
  out->insert(out->end(), b, b + sizeof(b));
}

/// Bounds-checked little-endian reader over a frame body. Every getter
/// returns false instead of reading past the span.
class ByteCursor {
 public:
  explicit ByteCursor(std::span<const uint8_t> data) : data_(data) {}

  bool U8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = data_[pos_++];
    return true;
  }
  bool U16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = LoadLE16(data_.data() + pos_);
    pos_ += 2;
    return true;
  }
  bool U32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = LoadLE32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = LoadLE64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

Status Malformed(const char* what) {
  return Status::DataLoss(std::string("malformed frame body: ") + what);
}

/// Writes the 16-byte prelude in front of the body already appended at
/// out[16..], then stamps size + CRC.
void FinishFrame(FrameType type, std::vector<uint8_t>* out) {
  uint8_t* p = out->data();
  std::memcpy(p, kWireMagic, sizeof(kWireMagic));
  StoreLE16(p + 4, kWireProtocolVersion);
  p[6] = static_cast<uint8_t>(type);
  p[7] = 0;
  const size_t body_size = out->size() - kFramePreludeBytes;
  StoreLE32(p + 8, static_cast<uint32_t>(body_size));
  StoreLE32(p + 12, Crc32(p + kFramePreludeBytes, body_size));
}

}  // namespace

bool WireItem::operator==(const WireItem& other) const {
  if (status != other.status || covered != other.covered ||
      matched_length != other.matched_length ||
      queries.size() != other.queries.size()) {
    return false;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].query != other.queries[i].query ||
        queries[i].score != other.queries[i].score) {
      return false;
    }
  }
  return true;
}

// The wire protocol persists StatusCode values verbatim as u8 — safe only
// because the C++ enum is pinned to the canonical table in
// include/sqp/status.h, whose values are frozen (golden frames in
// tests/data encode them). Pin every wire value here so a taxonomy edit
// that would silently shift the wire format fails to compile instead.
#define SQP_STATUS_PIN_WIRE_VALUE(name, value, str)                        \
  static_assert(static_cast<uint8_t>(static_cast<StatusCode>(name)) ==     \
                    (value),                                               \
                "wire status code drifted from include/sqp/status.h: " str);
SQP_STATUS_CODE_LIST(SQP_STATUS_PIN_WIRE_VALUE)
#undef SQP_STATUS_PIN_WIRE_VALUE

uint8_t WireStatusOf(StatusCode code) {
  const auto wire = static_cast<uint32_t>(code);
  if (wire >= SQP_STATUS_CODE_COUNT) return SQP_STATUS_INTERNAL;
  return static_cast<uint8_t>(wire);
}

bool StatusFromWire(uint8_t wire, StatusCode* out) {
  if (wire >= SQP_STATUS_CODE_COUNT) return false;
  *out = static_cast<StatusCode>(wire);
  return true;
}

void EncodeRequestFrame(const WireRequest& request,
                        std::vector<uint8_t>* out) {
  out->clear();
  out->resize(kFramePreludeBytes);
  PutU64(out, request.request_id);
  PutU64(out, request.deadline_remaining_us);
  PutU64(out, request.expected_fleet_version);
  PutU8(out, static_cast<uint8_t>(request.lane));
  PutU8(out, 0);
  PutU8(out, 0);
  PutU8(out, 0);
  PutU32(out, request.top_n);
  PutU32(out, static_cast<uint32_t>(request.contexts.size()));
  for (const auto& context : request.contexts) {
    PutU32(out, static_cast<uint32_t>(context.size()));
    for (QueryId id : context) PutU32(out, id);
  }
  FinishFrame(FrameType::kRequest, out);
}

void EncodeResponseFrame(const WireResponse& response,
                         std::vector<uint8_t>* out) {
  out->clear();
  out->resize(kFramePreludeBytes);
  PutU64(out, response.request_id);
  PutU64(out, response.fleet_version);
  PutU8(out, WireStatusOf(response.admission));
  PutU8(out, response.degraded ? 1 : 0);
  PutU16(out, 0);
  PutU32(out, response.effective_top_n);
  PutU32(out, static_cast<uint32_t>(response.items.size()));
  for (const WireItem& item : response.items) {
    PutU8(out, WireStatusOf(item.status));
    PutU8(out, item.covered ? 1 : 0);
    PutU16(out, 0);
    PutU32(out, item.matched_length);
    PutU32(out, static_cast<uint32_t>(item.queries.size()));
    for (const ScoredQuery& sq : item.queries) {
      PutU32(out, sq.query);
      PutU64(out, std::bit_cast<uint64_t>(sq.score));
    }
  }
  FinishFrame(FrameType::kResponse, out);
}

Status DecodeRequestBody(std::span<const uint8_t> body, WireRequest* out) {
  ByteCursor cursor(body);
  WireRequest request;
  uint8_t lane, r0, r1, r2;
  uint32_t num_contexts;
  if (!cursor.U64(&request.request_id) ||
      !cursor.U64(&request.deadline_remaining_us) ||
      !cursor.U64(&request.expected_fleet_version) || !cursor.U8(&lane) ||
      !cursor.U8(&r0) || !cursor.U8(&r1) || !cursor.U8(&r2) ||
      !cursor.U32(&request.top_n) || !cursor.U32(&num_contexts)) {
    return Malformed("request header truncated");
  }
  if (lane > static_cast<uint8_t>(QosLane::kBulk)) {
    return Malformed("unknown lane");
  }
  if ((r0 | r1 | r2) != 0) return Malformed("nonzero reserved byte");
  if (request.top_n == 0) return Malformed("top_n is zero");
  request.lane = static_cast<QosLane>(lane);
  // Each context costs at least 4 bytes, so this bound makes a hostile
  // count harmless before any reserve.
  if (num_contexts > cursor.remaining() / 4) {
    return Malformed("context count exceeds body");
  }
  request.contexts.resize(num_contexts);
  for (auto& context : request.contexts) {
    uint32_t len;
    if (!cursor.U32(&len)) return Malformed("context length truncated");
    if (len > cursor.remaining() / 4) {
      return Malformed("context length exceeds body");
    }
    context.resize(len);
    for (QueryId& id : context) {
      if (!cursor.U32(&id)) return Malformed("context ids truncated");
    }
  }
  if (cursor.remaining() != 0) return Malformed("trailing bytes");
  *out = std::move(request);
  return Status::OK();
}

Status DecodeResponseBody(std::span<const uint8_t> body, WireResponse* out) {
  ByteCursor cursor(body);
  WireResponse response;
  uint8_t admission, degraded;
  uint16_t reserved;
  uint32_t num_items;
  if (!cursor.U64(&response.request_id) ||
      !cursor.U64(&response.fleet_version) || !cursor.U8(&admission) ||
      !cursor.U8(&degraded) || !cursor.U16(&reserved) ||
      !cursor.U32(&response.effective_top_n) || !cursor.U32(&num_items)) {
    return Malformed("response header truncated");
  }
  if (!StatusFromWire(admission, &response.admission)) {
    return Malformed("unknown admission status");
  }
  if (degraded > 1) return Malformed("degraded flag out of range");
  if (reserved != 0) return Malformed("nonzero reserved bytes");
  response.degraded = degraded == 1;
  // Each item costs at least 12 bytes.
  if (num_items > cursor.remaining() / 12) {
    return Malformed("item count exceeds body");
  }
  response.items.resize(num_items);
  for (WireItem& item : response.items) {
    uint8_t status, covered;
    uint16_t item_reserved;
    uint32_t num_queries;
    if (!cursor.U8(&status) || !cursor.U8(&covered) ||
        !cursor.U16(&item_reserved) || !cursor.U32(&item.matched_length) ||
        !cursor.U32(&num_queries)) {
      return Malformed("item header truncated");
    }
    if (!StatusFromWire(status, &item.status)) {
      return Malformed("unknown item status");
    }
    if (covered > 1) return Malformed("covered flag out of range");
    if (item_reserved != 0) return Malformed("nonzero reserved bytes");
    item.covered = covered == 1;
    // Each scored query costs 12 bytes.
    if (num_queries > cursor.remaining() / 12) {
      return Malformed("query count exceeds body");
    }
    item.queries.resize(num_queries);
    for (ScoredQuery& sq : item.queries) {
      if (!cursor.U32(&sq.query) || !cursor.F64(&sq.score)) {
        return Malformed("scored query truncated");
      }
    }
  }
  if (cursor.remaining() != 0) return Malformed("trailing bytes");
  *out = std::move(response);
  return Status::OK();
}

Status FrameAssembler::ValidatePrelude(const uint8_t* p) {
  if (std::memcmp(p, kWireMagic, sizeof(kWireMagic)) != 0) {
    return Status::DataLoss("bad frame magic");
  }
  const uint16_t version = LoadLE16(p + 4);
  if (version != kWireProtocolVersion) {
    return Status::DataLoss("unsupported wire protocol version " +
                            std::to_string(version));
  }
  const uint8_t type = p[6];
  if (type != static_cast<uint8_t>(FrameType::kRequest) &&
      type != static_cast<uint8_t>(FrameType::kResponse)) {
    return Status::DataLoss("unknown frame type");
  }
  if (p[7] != 0) return Status::DataLoss("nonzero reserved prelude byte");
  const uint32_t body_size = LoadLE32(p + 8);
  if (body_size > max_body_bytes_) {
    return Status::DataLoss("frame body of " + std::to_string(body_size) +
                            " bytes exceeds limit");
  }
  header_.type = static_cast<FrameType>(type);
  header_.body_size = body_size;
  header_.body_crc = LoadLE32(p + 12);
  return Status::OK();
}

Status FrameAssembler::Feed(std::span<const uint8_t> bytes) {
  if (!error_.ok()) return error_;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  if (!have_header_ && buffer_.size() - consumed_ >= kFramePreludeBytes) {
    error_ = ValidatePrelude(buffer_.data() + consumed_);
    if (!error_.ok()) return error_;
    consumed_ += kFramePreludeBytes;
    have_header_ = true;
  }
  return Status::OK();
}

Status FrameAssembler::Next(FrameHeader* header, std::vector<uint8_t>* body,
                            bool* ready) {
  *ready = false;
  if (!error_.ok()) return error_;
  if (!have_header_ || buffer_.size() - consumed_ < header_.body_size) {
    return Status::OK();
  }
  const uint8_t* begin = buffer_.data() + consumed_;
  if (Crc32(begin, header_.body_size) != header_.body_crc) {
    error_ = Status::DataLoss("frame body CRC mismatch");
    return error_;
  }
  *header = header_;
  body->assign(begin, begin + header_.body_size);
  consumed_ += header_.body_size;
  have_header_ = false;
  // Compact, then eagerly validate the next prelude if it already arrived
  // (keeps Feed/Next order-insensitive for pipelined frames).
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
  consumed_ = 0;
  if (buffer_.size() >= kFramePreludeBytes) {
    error_ = ValidatePrelude(buffer_.data());
    if (error_.ok()) {
      consumed_ = kFramePreludeBytes;
      have_header_ = true;
    }
  }
  *ready = true;
  return Status::OK();
}

}  // namespace sqp::net
