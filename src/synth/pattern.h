#ifndef SQP_SYNTH_PATTERN_H_
#define SQP_SYNTH_PATTERN_H_

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "synth/topic_model.h"
#include "util/random.h"

namespace sqp {

/// The seven session reformulation patterns of the paper (Table I / Fig. 1,
/// after Rieh & Xie and Teevan et al.).
enum class PatternType {
  kSpellingChange = 0,
  kParallelMovement,
  kGeneralization,
  kSpecialization,
  kSynonymSubstitution,
  kRepeatedQuery,
  kOthers,
};

inline constexpr size_t kNumPatternTypes = 7;

std::string_view PatternTypeName(PatternType type);

/// Sampling weights over the pattern types. The defaults reproduce the
/// paper's headline constraint that the three order-sensitive types
/// (spelling change + generalization + specialization) account for 34.34%
/// of sessions (Fig. 1).
struct PatternWeights {
  std::array<double, kNumPatternTypes> weight = {
      0.08,    // spelling change
      0.12,    // parallel movement
      0.0834,  // generalization
      0.18,    // specialization
      0.08,    // synonym substitution
      0.25,    // repeated query
      0.2066,  // others
  };

  /// Draws a pattern type (weights need not be normalized).
  PatternType Sample(Rng* rng) const;
};

/// A generated in-session query chain with per-query intent provenance
/// (used to register queries with the relatedness oracle).
struct PatternResult {
  std::vector<std::string> queries;
  std::vector<size_t> intents;  // parallel to `queries`
};

/// Renders one session's query chain for a given (intent, pattern type).
/// All randomness flows through the caller's Rng, so generation is
/// reproducible.
class PatternGenerator {
 public:
  explicit PatternGenerator(const TopicModel* topics);

  PatternResult Generate(PatternType type, size_t intent, Rng* rng) const;

  /// True iff `type` can be rendered faithfully for `intent` (only the
  /// synonym pattern has a structural requirement).
  bool Supports(PatternType type, size_t intent) const;

 private:
  PatternResult SpellingChange(size_t intent, Rng* rng) const;
  PatternResult ParallelMovement(size_t intent, Rng* rng) const;
  PatternResult Generalization(size_t intent, Rng* rng) const;
  PatternResult Specialization(size_t intent, Rng* rng) const;
  PatternResult SynonymSubstitution(size_t intent, Rng* rng) const;
  PatternResult RepeatedQuery(size_t intent, Rng* rng) const;
  PatternResult Others(size_t intent, Rng* rng) const;

  const TopicModel* topics_;
};

}  // namespace sqp

#endif  // SQP_SYNTH_PATTERN_H_
