#include "synth/session_generator.h"

#include "util/status.h"

namespace sqp {

namespace {

size_t EffectiveHead(const TopicModel* topics,
                     const SessionGeneratorConfig& config) {
  const size_t n = topics->num_intents();
  if (config.head_intents == 0 || config.head_intents > n) return n;
  return config.head_intents;
}

}  // namespace

SessionGenerator::SessionGenerator(const TopicModel* topics,
                                   const SessionGeneratorConfig& config)
    : topics_(topics),
      config_(config),
      patterns_(topics),
      intent_sampler_(EffectiveHead(topics, config), config.zipf_s) {
  SQP_CHECK(topics_ != nullptr);
  const size_t head = EffectiveHead(topics, config);
  SQP_CHECK(config.novel_fraction == 0.0 || head < topics->num_intents());
  if (config.novel_fraction > 0.0) {
    novel_sampler_.emplace(topics->num_intents() - head, config.zipf_s);
  }
}

size_t SessionGenerator::SampleIntent(Rng* rng) const {
  if (novel_sampler_.has_value() && rng->Bernoulli(config_.novel_fraction)) {
    return intent_sampler_.size() + novel_sampler_->Sample(rng);
  }
  return intent_sampler_.Sample(rng);
}

GeneratedSession SessionGenerator::Generate(Rng* rng) const {
  GeneratedSession session;
  size_t intent = SampleIntent(rng);
  session.primary_intent = intent;

  if (rng->Bernoulli(config_.singleton_prob)) {
    // A one-shot lookup: any node of the intent's chain.
    const Intent& in = topics_->intent(intent);
    const size_t depth = rng->UniformInt(in.chain.size());
    session.queries.push_back(in.chain[depth]);
    session.intents.push_back(intent);
    session.singleton = true;
    return session;
  }

  PatternType type = config_.pattern_weights.Sample(rng);
  // The synonym pattern needs an intent whose base terms have aliases;
  // resample the intent a few times to honor the requested type.
  for (int attempt = 0; attempt < 16 && !patterns_.Supports(type, intent);
       ++attempt) {
    intent = SampleIntent(rng);
  }
  session.primary_intent = intent;
  session.type = type;
  PatternResult result = patterns_.Generate(type, intent, rng);
  session.queries = std::move(result.queries);
  session.intents = std::move(result.intents);

  // Compound sessions: the user moves on to a second reformulation chain
  // within the same session (half the time staying near the first topic).
  if (rng->Bernoulli(config_.compound_prob)) {
    size_t next_intent = rng->Bernoulli(0.7)
                             ? topics_->SampleSibling(intent, rng)
                             : SampleIntent(rng);
    PatternType next_type = config_.pattern_weights.Sample(rng);
    for (int attempt = 0;
         attempt < 16 && !patterns_.Supports(next_type, next_intent);
         ++attempt) {
      next_intent = SampleIntent(rng);
    }
    PatternResult extension = patterns_.Generate(next_type, next_intent, rng);
    for (size_t i = 0; i < extension.queries.size(); ++i) {
      if (session.queries.size() >= config_.max_session_length) break;
      session.queries.push_back(std::move(extension.queries[i]));
      session.intents.push_back(extension.intents[i]);
    }
  }
  return session;
}

}  // namespace sqp
