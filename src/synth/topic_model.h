#ifndef SQP_SYNTH_TOPIC_MODEL_H_
#define SQP_SYNTH_TOPIC_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "synth/vocabulary.h"
#include "util/random.h"

namespace sqp {

/// Configuration of the latent topic/intent structure behind the synthetic
/// query stream.
struct TopicModelConfig {
  size_t num_topics = 120;
  size_t terms_per_topic = 18;
  size_t intents_per_topic = 25;
  /// Length of the specialization chain per intent (chain[0] is the base
  /// query; each later step appends one topic term, e.g. "O2" -> "O2
  /// mobile" -> "O2 mobile phones").
  size_t chain_depth = 5;
  /// Query ambiguity (the paper's "Java" phenomenon): with this probability
  /// an intent's base query is a *single shared term* drawn from a global
  /// pool, so the same query string belongs to many intents across topics.
  /// Pair-wise predictors pool the continuations of all those intents;
  /// sequence predictors disambiguate from the preceding queries.
  double shared_base_prob = 0.3;
  /// Size of the shared ambiguous-term pool.
  size_t num_shared_terms = 150;
};

/// One latent search intent: a topic, a base query, and its specialization
/// chain of progressively more specific reformulations.
struct Intent {
  size_t topic = 0;
  std::vector<size_t> base_terms;   // global term indices (1-2)
  std::vector<std::string> chain;   // chain[0] = base query
};

/// The generator's hidden semantic model: topics own term sets; intents own
/// reformulation chains. Sessions are emitted by walking this structure, so
/// the structure itself doubles as the ground-truth relatedness oracle for
/// the simulated user study.
class TopicModel {
 public:
  TopicModel(const Vocabulary* vocabulary, const TopicModelConfig& config,
             uint64_t seed);

  // Not copyable (holds a vocabulary pointer and large derived state).
  TopicModel(const TopicModel&) = delete;
  TopicModel& operator=(const TopicModel&) = delete;

  size_t num_intents() const { return intents_.size(); }
  size_t num_topics() const { return config_.num_topics; }
  const Intent& intent(size_t i) const;
  const Vocabulary& vocabulary() const { return *vocabulary_; }
  const TopicModelConfig& config() const { return config_; }

  /// A different intent from the same topic ("parallel movement", e.g.
  /// SMTP -> POP3). Falls back to the input when the topic has one intent.
  size_t SampleSibling(size_t intent, Rng* rng) const;

  /// An intent from a different topic (the "Others" pattern).
  size_t SampleUnrelated(size_t intent, Rng* rng) const;

  /// Base query with one base term replaced by its synonym alias, if any
  /// base term has one.
  std::optional<std::string> SynonymVariant(size_t intent) const;

  /// True iff SynonymVariant(intent) would produce a value.
  bool HasSynonymVariant(size_t intent) const;

  /// A clicked-result URL for a topic ("www.topic17-site3.example.com").
  std::string Url(size_t topic, size_t site) const;

 private:
  const Vocabulary* vocabulary_;
  TopicModelConfig config_;
  std::vector<Intent> intents_;
  std::vector<std::vector<size_t>> topic_intents_;  // topic -> intent ids
};

}  // namespace sqp

#endif  // SQP_SYNTH_TOPIC_MODEL_H_
