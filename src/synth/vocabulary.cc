#include "synth/vocabulary.h"

#include <unordered_set>

#include "util/status.h"

namespace sqp {
namespace {

constexpr const char* kSyllables[] = {
    "ba", "ru", "ko", "sta", "mi",  "lor", "net", "zen", "tra", "vel",
    "pho", "dex", "qui", "mar", "sol", "tek", "van", "pli", "gor", "hu",
    "ras", "mel", "dan", "cy",  "ber", "lin", "tor", "fi",  "ges", "nu"};
constexpr size_t kNumSyllables = sizeof(kSyllables) / sizeof(kSyllables[0]);

std::string MakeWord(Rng* rng) {
  const size_t syllable_count = 2 + rng->UniformInt(3);  // 2..4
  std::string word;
  for (size_t i = 0; i < syllable_count; ++i) {
    word += kSyllables[rng->UniformInt(kNumSyllables)];
  }
  return word;
}

}  // namespace

Vocabulary::Vocabulary(const VocabularyConfig& config, uint64_t seed) {
  SQP_CHECK(config.num_terms > 0);
  Rng rng(seed);
  std::unordered_set<std::string> used;
  terms_.reserve(config.num_terms);
  while (terms_.size() < config.num_terms) {
    std::string word = MakeWord(&rng);
    if (used.insert(word).second) terms_.push_back(std::move(word));
  }
  synonyms_.assign(config.num_terms, std::string());
  for (size_t i = 0; i < config.num_terms; ++i) {
    if (!rng.Bernoulli(config.synonym_fraction)) continue;
    std::string alias = MakeWord(&rng);
    while (!used.insert(alias).second) alias = MakeWord(&rng);
    synonyms_[i] = std::move(alias);
  }
}

const std::string& Vocabulary::term(size_t i) const {
  SQP_CHECK(i < terms_.size());
  return terms_[i];
}

bool Vocabulary::HasSynonym(size_t i) const {
  SQP_CHECK(i < synonyms_.size());
  return !synonyms_[i].empty();
}

std::optional<std::string> Vocabulary::Synonym(size_t i) const {
  SQP_CHECK(i < synonyms_.size());
  if (synonyms_[i].empty()) return std::nullopt;
  return synonyms_[i];
}

std::string Vocabulary::Misspell(const std::string& word, Rng* rng) const {
  if (word.size() < 2) return word + word;  // degenerate but different
  std::string out = word;
  const size_t kind = rng->UniformInt(4);
  const size_t pos = rng->UniformInt(out.size() - 1);
  switch (kind) {
    case 0:  // swap adjacent characters
      if (out[pos] != out[pos + 1]) {
        std::swap(out[pos], out[pos + 1]);
      } else {
        out.erase(pos, 1);
      }
      break;
    case 1:  // drop one character
      out.erase(pos, 1);
      break;
    case 2:  // duplicate one character
      out.insert(out.begin() + static_cast<ptrdiff_t>(pos), out[pos]);
      break;
    default: {  // replace with a different letter
      const char replacement =
          static_cast<char>('a' + rng->UniformInt(26));
      if (replacement == out[pos]) {
        out.erase(pos, 1);
      } else {
        out[pos] = replacement;
      }
      break;
    }
  }
  if (out == word) out.erase(0, 1);  // last-resort guarantee of difference
  return out;
}

}  // namespace sqp
