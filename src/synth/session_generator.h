#ifndef SQP_SYNTH_SESSION_GENERATOR_H_
#define SQP_SYNTH_SESSION_GENERATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "synth/pattern.h"
#include "synth/topic_model.h"
#include "util/random.h"

namespace sqp {

/// Knobs for the session sampler.
struct SessionGeneratorConfig {
  PatternWeights pattern_weights;
  /// Probability of a single-query session (no reformulation). Real logs
  /// are dominated by these; they also populate Table VI's reason (2).
  double singleton_prob = 0.38;
  /// Zipf exponent for intent popularity. Drives the aggregated-session
  /// power law of Fig. 6.
  double zipf_s = 1.15;
  /// Number of "established" intents the Zipf popularity ranks over
  /// (0 = all intents). Intents beyond this index are reserved for the
  /// novel-intent mechanism below.
  size_t head_intents = 0;
  /// Temporal drift: with this probability a session comes from a *novel*
  /// intent drawn (Zipf-distributed, like trending new topics) from
  /// [head_intents, num_intents). Real query logs churn heavily between
  /// periods (the paper's test month contains 356M unique queries, most
  /// unseen in training); a test-period generator sets this > 0 so that
  /// coverage < 100%, as in the paper's Fig. 10.
  double novel_fraction = 0.0;
  /// Probability that a multi-query session continues with a *second*
  /// reformulation pattern (same topic or a drift to another one). This
  /// produces the long-session tail of the paper's Fig. 5 and the
  /// combinatorial context diversity that makes exact-context (N-gram)
  /// coverage collapse on long contexts (Fig. 11).
  double compound_prob = 0.3;
  /// Hard cap on session length.
  size_t max_session_length = 8;
};

/// One generated session with its latent labels.
struct GeneratedSession {
  std::vector<std::string> queries;
  std::vector<size_t> intents;  // per-query provenance
  PatternType type = PatternType::kOthers;
  bool singleton = false;
  size_t primary_intent = 0;
};

/// Samples labeled sessions from the topic/intent model: intent ~ Zipf,
/// pattern type ~ PatternWeights, query chain via PatternGenerator.
class SessionGenerator {
 public:
  SessionGenerator(const TopicModel* topics,
                   const SessionGeneratorConfig& config);

  GeneratedSession Generate(Rng* rng) const;

  const SessionGeneratorConfig& config() const { return config_; }

 private:
  size_t SampleIntent(Rng* rng) const;

  const TopicModel* topics_;
  SessionGeneratorConfig config_;
  PatternGenerator patterns_;
  ZipfSampler intent_sampler_;
  /// Present iff novel_fraction > 0: Zipf over the novel intent range.
  std::optional<ZipfSampler> novel_sampler_;
};

}  // namespace sqp

#endif  // SQP_SYNTH_SESSION_GENERATOR_H_
