#ifndef SQP_SYNTH_ORACLE_H_
#define SQP_SYNTH_ORACLE_H_

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "log/query_dictionary.h"
#include "log/types.h"

namespace sqp {

/// Ground-truth relatedness judge backed by the generator's latent
/// intent/topic structure. Substitutes for the paper's 30 human labelers
/// (Section V-H): a predicted query is "appropriate in context" iff it is
/// related to the session so far under the generating model.
///
/// Relatedness rules, in decreasing strength:
///  1. shares a latent intent with some context query;
///  2. shares a latent topic with some context query;
///  3. is a small-edit-distance variant of some context query (the
///     spelling-correction case, e.g. youtub -> youtube);
///  4. equals a context query (the repeat case).
///
/// One overriding *rejection* rule emulates the labelers' judgment of
/// usefulness, not just topicality: recommending a strict generalization of
/// the user's latest query (a term-prefix of it, e.g. "O2" after the user
/// already typed "O2 mobile phones") is a backward move and is rejected.
/// This is the judgment that separates order-aware methods from
/// order-blind co-occurrence in the paper's Figs. 13-14.
class RelatednessOracle {
 public:
  RelatednessOracle() = default;

  /// Registers one generated query with its latent provenance. Called by
  /// the synthesizer for every emitted query; idempotent.
  void RegisterQuery(std::string_view query, size_t topic, size_t intent);

  /// Judges a candidate string against a context of query strings.
  bool IsRelated(std::span<const std::string> context,
                 std::string_view candidate) const;

  /// Id-based judgment for evaluation pipelines that operate on interned
  /// ids. Unknown ids/queries are never related.
  bool IsRelatedIds(const QueryDictionary& dictionary,
                    std::span<const QueryId> context,
                    QueryId candidate) const;

  size_t num_registered() const { return provenance_.size(); }

 private:
  struct Provenance {
    std::unordered_set<size_t> topics;
    std::unordered_set<size_t> intents;
  };

  const Provenance* Find(std::string_view query) const;

  std::unordered_map<std::string, Provenance> provenance_;
};

}  // namespace sqp

#endif  // SQP_SYNTH_ORACLE_H_
