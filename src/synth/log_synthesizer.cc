#include "synth/log_synthesizer.h"

#include <algorithm>

#include "util/status.h"

namespace sqp {

LogSynthesizer::LogSynthesizer(const TopicModel* topics,
                               const SynthesizerConfig& config)
    : topics_(topics),
      config_(config),
      session_generator_(topics, config.session) {
  SQP_CHECK(topics_ != nullptr);
  SQP_CHECK(config.num_machines > 0);
  SQP_CHECK(config.mean_intra_gap_minutes > 0.0);
  SQP_CHECK(config.mean_intra_gap_minutes < 25.0);
}

SynthCorpus LogSynthesizer::Synthesize(uint64_t seed,
                                       RelatednessOracle* oracle) const {
  Rng rng(seed);
  SynthCorpus corpus;
  corpus.sessions.reserve(config_.num_sessions);

  // Per-machine clock: next time the "user" is at the keyboard.
  std::vector<int64_t> machine_clock(config_.num_machines,
                                     config_.start_timestamp_ms);
  const int64_t kMinute = 60 * 1000;
  const int64_t kSessionCutFloor = 31 * kMinute;  // > the 30-minute rule

  for (size_t s = 0; s < config_.num_sessions; ++s) {
    GeneratedSession session = session_generator_.Generate(&rng);
    const size_t machine = rng.UniformInt(config_.num_machines);
    // Desynchronize machine start times on first use.
    if (machine_clock[machine] == config_.start_timestamp_ms) {
      machine_clock[machine] +=
          static_cast<int64_t>(rng.UniformInt(24 * 60)) * kMinute;
    }
    int64_t now = machine_clock[machine];
    int64_t last_activity = now;

    for (size_t qi = 0; qi < session.queries.size(); ++qi) {
      RawLogRecord record;
      record.machine_id = machine + 1;  // ids are 1-based like real logs
      record.timestamp_ms = now;
      record.query = session.queries[qi];

      const size_t intent = session.intents[qi];
      const size_t topic = topics_->intent(intent).topic;
      if (oracle != nullptr) {
        oracle->RegisterQuery(record.query, topic, intent);
      }

      last_activity = now;
      if (rng.Bernoulli(config_.click_prob)) {
        const size_t clicks = 1 + rng.UniformInt(config_.max_clicks_per_query);
        int64_t click_time = now;
        for (size_t c = 0; c < clicks; ++c) {
          click_time += 5000 + static_cast<int64_t>(rng.UniformInt(110000));
          UrlClick click;
          click.timestamp_ms = click_time;
          click.url = topics_->Url(topic, rng.UniformInt(8));
          record.clicks.push_back(std::move(click));
        }
        last_activity = click_time;
      }
      corpus.records.push_back(std::move(record));

      // Gap to the next query of this session: exponential around the mean,
      // floored at 20s and capped at 25 minutes (stays one session).
      const double gap_min =
          rng.Exponential(1.0 / config_.mean_intra_gap_minutes);
      const int64_t gap_ms = std::clamp<int64_t>(
          static_cast<int64_t>(gap_min * static_cast<double>(kMinute)),
          20 * 1000, 25 * kMinute);
      now = last_activity + gap_ms;
    }

    // Idle period before this machine's next session: guaranteed to break
    // the 30-minute rule.
    const double idle_min =
        rng.Exponential(1.0 / config_.mean_inter_gap_minutes);
    machine_clock[machine] =
        last_activity + kSessionCutFloor +
        static_cast<int64_t>(idle_min * static_cast<double>(kMinute));

    corpus.sessions.push_back(std::move(session));
  }
  return corpus;
}

}  // namespace sqp
