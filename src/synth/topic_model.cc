#include "synth/topic_model.h"

#include <algorithm>
#include <unordered_set>

#include "util/status.h"
#include "util/string_util.h"

namespace sqp {

TopicModel::TopicModel(const Vocabulary* vocabulary,
                       const TopicModelConfig& config, uint64_t seed)
    : vocabulary_(vocabulary), config_(config) {
  SQP_CHECK(vocabulary_ != nullptr);
  SQP_CHECK(config.num_topics > 0);
  SQP_CHECK(config.terms_per_topic >= config.chain_depth + 2);
  SQP_CHECK(vocabulary_->size() >= config.terms_per_topic);
  Rng rng(seed);

  // Assign each topic a random subset of terms (topics may share terms,
  // like real verticals share words).
  std::vector<std::vector<size_t>> topic_terms(config.num_topics);
  for (auto& terms : topic_terms) {
    std::unordered_set<size_t> chosen;
    while (chosen.size() < config.terms_per_topic) {
      chosen.insert(rng.UniformInt(vocabulary_->size()));
    }
    terms.assign(chosen.begin(), chosen.end());
    std::sort(terms.begin(), terms.end());
  }

  // Global pool of ambiguous base terms (the "Java" phenomenon): queries
  // made of one of these terms recur across topics.
  std::vector<size_t> shared_pool;
  if (config.shared_base_prob > 0.0 && config.num_shared_terms > 0) {
    std::unordered_set<size_t> chosen;
    const size_t pool_size =
        std::min(config.num_shared_terms, vocabulary_->size());
    while (chosen.size() < pool_size) {
      chosen.insert(rng.UniformInt(vocabulary_->size()));
    }
    shared_pool.assign(chosen.begin(), chosen.end());
    std::sort(shared_pool.begin(), shared_pool.end());
  }

  topic_intents_.resize(config.num_topics);
  intents_.reserve(config.num_topics * config.intents_per_topic);
  for (size_t topic = 0; topic < config.num_topics; ++topic) {
    for (size_t k = 0; k < config.intents_per_topic; ++k) {
      Intent intent;
      intent.topic = topic;
      const std::vector<size_t>& terms = topic_terms[topic];
      std::vector<size_t> order(terms.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      rng.Shuffle(&order);
      size_t chain_terms_begin = 0;
      if (!shared_pool.empty() && rng.Bernoulli(config.shared_base_prob)) {
        // Ambiguous base: one term shared corpus-wide.
        intent.base_terms.push_back(
            shared_pool[rng.UniformInt(shared_pool.size())]);
      } else {
        // Regular base: 1-2 distinct topic terms.
        const size_t base_size = 1 + rng.UniformInt(2);
        for (size_t i = 0; i < base_size; ++i) {
          intent.base_terms.push_back(terms[order[i]]);
        }
        chain_terms_begin = base_size;
      }
      // Specialization chain: append one fresh topic term per level.
      std::string query;
      for (size_t t : intent.base_terms) {
        if (!query.empty()) query += ' ';
        query += vocabulary_->term(t);
      }
      intent.chain.push_back(query);
      for (size_t depth = 1; depth < config.chain_depth; ++depth) {
        query += ' ';
        query += vocabulary_->term(terms[order[chain_terms_begin + depth - 1]]);
        intent.chain.push_back(query);
      }
      topic_intents_[topic].push_back(intents_.size());
      intents_.push_back(std::move(intent));
    }
  }
}

const Intent& TopicModel::intent(size_t i) const {
  SQP_CHECK(i < intents_.size());
  return intents_[i];
}

size_t TopicModel::SampleSibling(size_t intent, Rng* rng) const {
  const size_t topic = this->intent(intent).topic;
  const std::vector<size_t>& pool = topic_intents_[topic];
  if (pool.size() <= 1) return intent;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const size_t candidate = pool[rng->UniformInt(pool.size())];
    if (candidate != intent) return candidate;
  }
  return intent;
}

size_t TopicModel::SampleUnrelated(size_t intent, Rng* rng) const {
  const size_t topic = this->intent(intent).topic;
  if (config_.num_topics <= 1) return intent;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const size_t candidate = rng->UniformInt(intents_.size());
    if (intents_[candidate].topic != topic) return candidate;
  }
  return intent;
}

bool TopicModel::HasSynonymVariant(size_t intent) const {
  for (size_t term : this->intent(intent).base_terms) {
    if (vocabulary_->HasSynonym(term)) return true;
  }
  return false;
}

std::optional<std::string> TopicModel::SynonymVariant(size_t intent) const {
  const Intent& in = this->intent(intent);
  for (size_t i = 0; i < in.base_terms.size(); ++i) {
    const std::optional<std::string> alias =
        vocabulary_->Synonym(in.base_terms[i]);
    if (!alias.has_value()) continue;
    std::string query;
    for (size_t j = 0; j < in.base_terms.size(); ++j) {
      if (!query.empty()) query += ' ';
      query += (i == j) ? *alias : vocabulary_->term(in.base_terms[j]);
    }
    return query;
  }
  return std::nullopt;
}

std::string TopicModel::Url(size_t topic, size_t site) const {
  return StrFormat("www.topic%zu-site%zu.example.com", topic, site);
}

}  // namespace sqp
