#include "synth/oracle.h"

#include "util/edit_distance.h"

namespace sqp {

void RelatednessOracle::RegisterQuery(std::string_view query, size_t topic,
                                      size_t intent) {
  Provenance& p = provenance_[QueryDictionary::Normalize(query)];
  p.topics.insert(topic);
  p.intents.insert(intent);
}

const RelatednessOracle::Provenance* RelatednessOracle::Find(
    std::string_view query) const {
  auto it = provenance_.find(QueryDictionary::Normalize(query));
  if (it == provenance_.end()) return nullptr;
  return &it->second;
}

bool RelatednessOracle::IsRelated(std::span<const std::string> context,
                                  std::string_view candidate) const {
  if (context.empty()) return false;
  const std::string candidate_norm = QueryDictionary::Normalize(candidate);

  // Rejection rule: a strict generalization of the user's latest query
  // (term-prefix) walks backward through the refinement the user already
  // made; labelers judge it inappropriate.
  {
    const std::string last_norm = QueryDictionary::Normalize(context.back());
    if (candidate_norm.size() < last_norm.size() &&
        last_norm.compare(0, candidate_norm.size(), candidate_norm) == 0 &&
        last_norm[candidate_norm.size()] == ' ') {
      return false;
    }
  }

  // Repeats and spelling variants are always appropriate.
  for (const std::string& ctx_query : context) {
    const std::string ctx_norm = QueryDictionary::Normalize(ctx_query);
    if (ctx_norm == candidate_norm) return true;  // repeated query
    if (ctx_norm.size() <= 24 &&
        EditDistance(std::string_view(ctx_norm), candidate_norm) <= 2) {
      return true;  // spelling variant
    }
  }

  const Provenance* cp = Find(candidate_norm);
  if (cp == nullptr) return false;

  // Context-sensitive judgment: the session's latent need is the
  // *intersection* of the context queries' possible intents (the paper's
  // "Indonesia => Java" example: the context pins down which Java). If the
  // intersection is empty at the intent level, fall back to the topic
  // level; if the session is topically incoherent (drift), judge against
  // the latest query alone (the user's current need).
  std::unordered_set<size_t> session_intents;
  std::unordered_set<size_t> session_topics;
  bool first_known = true;
  for (const std::string& ctx_query : context) {
    const Provenance* xp = Find(QueryDictionary::Normalize(ctx_query));
    if (xp == nullptr) continue;
    if (first_known) {
      session_intents = xp->intents;
      session_topics = xp->topics;
      first_known = false;
      continue;
    }
    std::erase_if(session_intents,
                  [&](size_t i) { return xp->intents.count(i) == 0; });
    std::erase_if(session_topics,
                  [&](size_t t) { return xp->topics.count(t) == 0; });
  }
  if (session_topics.empty()) {
    // Topically incoherent context: fall back to the latest known query.
    for (auto it = context.rbegin(); it != context.rend(); ++it) {
      const Provenance* xp = Find(QueryDictionary::Normalize(*it));
      if (xp != nullptr) {
        session_intents = xp->intents;
        session_topics = xp->topics;
        break;
      }
    }
  }

  if (!session_intents.empty()) {
    for (size_t intent : cp->intents) {
      if (session_intents.count(intent) > 0) return true;
    }
  }
  for (size_t topic : cp->topics) {
    if (session_topics.count(topic) > 0) return true;
  }
  return false;
}

bool RelatednessOracle::IsRelatedIds(const QueryDictionary& dictionary,
                                     std::span<const QueryId> context,
                                     QueryId candidate) const {
  if (candidate >= dictionary.size()) return false;
  std::vector<std::string> context_strings;
  context_strings.reserve(context.size());
  for (QueryId q : context) {
    if (q >= dictionary.size()) continue;
    context_strings.push_back(dictionary.Text(q));
  }
  return IsRelated(context_strings, dictionary.Text(candidate));
}

}  // namespace sqp
