#ifndef SQP_SYNTH_VOCABULARY_H_
#define SQP_SYNTH_VOCABULARY_H_

#include <optional>
#include <string>
#include <vector>

#include "util/random.h"

namespace sqp {

/// Configuration of the synthetic term vocabulary.
struct VocabularyConfig {
  /// Number of distinct search terms.
  size_t num_terms = 2000;
  /// Fraction of terms that receive a synonym alias (drives the paper's
  /// "synonym substitution" pattern, e.g. BAMC -> Brooke Army Medical
  /// Center).
  double synonym_fraction = 0.3;
};

/// A deterministic synthetic vocabulary of pronounceable terms, with
/// synonym aliases and misspelling support. Substitutes for the natural-
/// language queries of a real search log: models only see interned ids, so
/// the linguistic surface just needs to be distinct, stable strings with
/// the term-composition structure query reformulation operates on.
class Vocabulary {
 public:
  Vocabulary(const VocabularyConfig& config, uint64_t seed);

  size_t size() const { return terms_.size(); }
  const std::string& term(size_t i) const;

  /// Synonym alias of term i, if it has one.
  std::optional<std::string> Synonym(size_t i) const;
  bool HasSynonym(size_t i) const;

  /// Returns a typo'd variant of `word` (swap / drop / duplicate / replace
  /// one character). Always differs from the input for words of length
  /// >= 2.
  std::string Misspell(const std::string& word, Rng* rng) const;

 private:
  std::vector<std::string> terms_;
  std::vector<std::string> synonyms_;  // empty string = no synonym
};

}  // namespace sqp

#endif  // SQP_SYNTH_VOCABULARY_H_
