#include "synth/pattern.h"

#include "util/status.h"

namespace sqp {

std::string_view PatternTypeName(PatternType type) {
  switch (type) {
    case PatternType::kSpellingChange:
      return "Spelling change";
    case PatternType::kParallelMovement:
      return "Parallel movement";
    case PatternType::kGeneralization:
      return "Generalization";
    case PatternType::kSpecialization:
      return "Specialization";
    case PatternType::kSynonymSubstitution:
      return "Synonym substitution";
    case PatternType::kRepeatedQuery:
      return "Repeated query";
    case PatternType::kOthers:
      return "Others";
  }
  return "Unknown";
}

PatternType PatternWeights::Sample(Rng* rng) const {
  double total = 0.0;
  for (double w : weight) total += w;
  SQP_CHECK(total > 0.0);
  double u = rng->UniformDouble() * total;
  for (size_t i = 0; i < kNumPatternTypes; ++i) {
    u -= weight[i];
    if (u < 0.0) return static_cast<PatternType>(i);
  }
  return PatternType::kOthers;
}

PatternGenerator::PatternGenerator(const TopicModel* topics)
    : topics_(topics) {
  SQP_CHECK(topics_ != nullptr);
}

bool PatternGenerator::Supports(PatternType type, size_t intent) const {
  if (type == PatternType::kSynonymSubstitution) {
    return topics_->HasSynonymVariant(intent);
  }
  return true;
}

PatternResult PatternGenerator::Generate(PatternType type, size_t intent,
                                         Rng* rng) const {
  switch (type) {
    case PatternType::kSpellingChange:
      return SpellingChange(intent, rng);
    case PatternType::kParallelMovement:
      return ParallelMovement(intent, rng);
    case PatternType::kGeneralization:
      return Generalization(intent, rng);
    case PatternType::kSpecialization:
      return Specialization(intent, rng);
    case PatternType::kSynonymSubstitution:
      return SynonymSubstitution(intent, rng);
    case PatternType::kRepeatedQuery:
      return RepeatedQuery(intent, rng);
    case PatternType::kOthers:
      return Others(intent, rng);
  }
  return {};
}

// goggle => google (then sometimes a refinement step).
PatternResult PatternGenerator::SpellingChange(size_t intent,
                                               Rng* rng) const {
  const Intent& in = topics_->intent(intent);
  PatternResult out;
  out.queries.push_back(
      topics_->vocabulary().Misspell(in.chain[0], rng));
  out.queries.push_back(in.chain[0]);
  out.intents.assign(2, intent);
  if (in.chain.size() > 1 && rng->Bernoulli(0.3)) {
    out.queries.push_back(in.chain[1]);
    out.intents.push_back(intent);
  }
  return out;
}

// SMTP => POP3: sibling intents within one topic.
PatternResult PatternGenerator::ParallelMovement(size_t intent,
                                                 Rng* rng) const {
  PatternResult out;
  out.queries.push_back(topics_->intent(intent).chain[0]);
  out.intents.push_back(intent);
  const size_t hops = rng->Bernoulli(0.3) ? 2 : 1;
  size_t current = intent;
  for (size_t i = 0; i < hops; ++i) {
    current = topics_->SampleSibling(current, rng);
    out.queries.push_back(topics_->intent(current).chain[0]);
    out.intents.push_back(current);
  }
  return out;
}

// "washington mutual home loans" => "home loans": walk the chain upward.
PatternResult PatternGenerator::Generalization(size_t intent,
                                               Rng* rng) const {
  const Intent& in = topics_->intent(intent);
  const size_t max_depth = in.chain.size() - 1;
  size_t depth = 1 + rng->UniformInt(max_depth);  // starting specificity
  PatternResult out;
  while (true) {
    out.queries.push_back(in.chain[depth]);
    out.intents.push_back(intent);
    if (depth == 0 || (out.queries.size() >= 2 && rng->Bernoulli(0.5))) break;
    --depth;
  }
  return out;
}

// O2 => O2 mobile => O2 mobile phones: walk the chain downward.
PatternResult PatternGenerator::Specialization(size_t intent,
                                               Rng* rng) const {
  const Intent& in = topics_->intent(intent);
  const size_t steps =
      1 + rng->UniformInt(in.chain.size() - 1);  // 1..chain_depth-1
  PatternResult out;
  for (size_t depth = 0; depth <= steps; ++depth) {
    out.queries.push_back(in.chain[depth]);
    out.intents.push_back(intent);
    if (out.queries.size() >= 5) break;
  }
  return out;
}

// BAMC => Brooke Army Medical Center: alias first, canonical second.
PatternResult PatternGenerator::SynonymSubstitution(size_t intent,
                                                    Rng* rng) const {
  const Intent& in = topics_->intent(intent);
  const std::optional<std::string> variant = topics_->SynonymVariant(intent);
  PatternResult out;
  if (variant.has_value()) {
    out.queries.push_back(*variant);
  } else {
    // Structural fallback for intents without synonyms: behave like a
    // one-step refinement so the session stays intent-coherent.
    out.queries.push_back(in.chain.size() > 1 ? in.chain[1] : in.chain[0]);
  }
  out.queries.push_back(in.chain[0]);
  out.intents.assign(2, intent);
  if (rng->Bernoulli(0.2) && in.chain.size() > 1) {
    out.queries.push_back(in.chain[1]);
    out.intents.push_back(intent);
  }
  return out;
}

// aim => myspace => myspace => photobucket: drifting intents with one
// consecutive repeat.
PatternResult PatternGenerator::RepeatedQuery(size_t intent, Rng* rng) const {
  PatternResult out;
  size_t current = intent;
  const size_t distinct = 2 + rng->UniformInt(2);  // 2..3 distinct queries
  for (size_t i = 0; i < distinct; ++i) {
    out.queries.push_back(topics_->intent(current).chain[0]);
    out.intents.push_back(current);
    current = rng->Bernoulli(0.5) ? topics_->SampleSibling(current, rng)
                                  : topics_->SampleUnrelated(current, rng);
  }
  // Repeat one of the queries immediately after itself.
  const size_t repeat_at = rng->UniformInt(out.queries.size());
  out.queries.insert(out.queries.begin() + static_cast<ptrdiff_t>(repeat_at),
                     out.queries[repeat_at]);
  out.intents.insert(out.intents.begin() + static_cast<ptrdiff_t>(repeat_at),
                     out.intents[repeat_at]);
  return out;
}

// muzzle brake => shared calendars: topically unrelated hops.
PatternResult PatternGenerator::Others(size_t intent, Rng* rng) const {
  PatternResult out;
  out.queries.push_back(topics_->intent(intent).chain[0]);
  out.intents.push_back(intent);
  const size_t unrelated = topics_->SampleUnrelated(intent, rng);
  out.queries.push_back(topics_->intent(unrelated).chain[0]);
  out.intents.push_back(unrelated);
  return out;
}

}  // namespace sqp
