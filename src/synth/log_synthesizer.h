#ifndef SQP_SYNTH_LOG_SYNTHESIZER_H_
#define SQP_SYNTH_LOG_SYNTHESIZER_H_

#include <vector>

#include "log/types.h"
#include "synth/oracle.h"
#include "synth/session_generator.h"
#include "synth/topic_model.h"

namespace sqp {

/// Knobs for rendering sessions into a raw timestamped click-stream.
struct SynthesizerConfig {
  size_t num_sessions = 100000;
  size_t num_machines = 4000;
  /// Epoch of the first record (2008-09-05, inside the paper's log window).
  int64_t start_timestamp_ms = 1220583600000LL;
  /// Mean gap between consecutive queries of a session (must stay well
  /// under the 30-minute segmentation rule).
  double mean_intra_gap_minutes = 3.0;
  /// Mean extra idle time between sessions of one machine, added on top of
  /// the 31-minute floor that guarantees a session cut.
  double mean_inter_gap_minutes = 90.0;
  /// Probability that a query produces at least one click.
  double click_prob = 0.7;
  size_t max_clicks_per_query = 3;

  SessionGeneratorConfig session;
};

/// A rendered corpus: the raw records plus the latent session structure
/// they were rendered from (the synthetic ground truth).
struct SynthCorpus {
  std::vector<RawLogRecord> records;
  std::vector<GeneratedSession> sessions;
};

/// Renders generated sessions into RawLogRecords with realistic timing:
/// intra-session gaps of a few minutes, inter-session idle gaps beyond the
/// 30-minute rule, and per-query clicks on topic-derived URLs. Optionally
/// registers every emitted query with a RelatednessOracle.
class LogSynthesizer {
 public:
  LogSynthesizer(const TopicModel* topics, const SynthesizerConfig& config);

  /// Generates `config.num_sessions` sessions and renders them. Determined
  /// entirely by `seed`.
  SynthCorpus Synthesize(uint64_t seed, RelatednessOracle* oracle) const;

  const SynthesizerConfig& config() const { return config_; }

 private:
  const TopicModel* topics_;
  SynthesizerConfig config_;
  SessionGenerator session_generator_;
};

}  // namespace sqp

#endif  // SQP_SYNTH_LOG_SYNTHESIZER_H_
