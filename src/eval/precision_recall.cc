// precision_recall is header-only; this TU anchors the target.
#include "eval/precision_recall.h"
