#include "eval/ndcg.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace sqp {
namespace {

double Gain(double rating) { return std::exp2(rating) - 1.0; }

double Discount(size_t position_1based) {
  return std::log(1.0 + static_cast<double>(position_1based));
}

}  // namespace

double GroundTruthRating(const GroundTruthEntry& truth, QueryId query,
                         size_t n) {
  const size_t limit = std::min(n, truth.ranked_next.size());
  for (size_t j = 0; j < limit; ++j) {
    if (truth.ranked_next[j] == query) {
      return static_cast<double>(n - j);
    }
  }
  return 0.0;
}

double NdcgAtN(std::span<const QueryId> predicted,
               const GroundTruthEntry& truth, size_t n) {
  SQP_CHECK(n > 0);
  if (truth.ranked_next.empty()) return 0.0;

  double dcg = 0.0;
  const size_t prediction_limit = std::min(n, predicted.size());
  for (size_t j = 0; j < prediction_limit; ++j) {
    const double rating = GroundTruthRating(truth, predicted[j], n);
    dcg += Gain(rating) / Discount(j + 1);
  }

  // Ideal DCG: ground-truth ratings are n, n-1, ... by construction, so the
  // ideal ordering is the ground-truth order itself.
  double ideal = 0.0;
  const size_t truth_limit = std::min(n, truth.ranked_next.size());
  for (size_t j = 0; j < truth_limit; ++j) {
    ideal += Gain(static_cast<double>(n - j)) / Discount(j + 1);
  }
  if (ideal <= 0.0) return 0.0;
  return dcg / ideal;
}

}  // namespace sqp
