#include "eval/user_study.h"

#include <algorithm>
#include <unordered_set>

#include "util/hash.h"

namespace sqp {
namespace {

/// Majority vote of a noisy labeler panel over the oracle's verdict.
bool PanelApproves(bool oracle_verdict, const UserStudyOptions& options,
                   Rng* rng) {
  size_t approvals = 0;
  for (size_t labeler = 0; labeler < options.num_labelers; ++labeler) {
    const bool flips = rng->Bernoulli(options.labeler_noise);
    const bool vote = flips ? !oracle_verdict : oracle_verdict;
    if (vote) ++approvals;
  }
  return approvals * 2 > options.num_labelers;
}

}  // namespace

UserStudyResult RunUserStudy(
    const std::vector<const PredictionModel*>& models,
    std::span<const GroundTruthEntry> test_contexts,
    const QueryDictionary& dictionary, const RelatednessOracle& oracle,
    const UserStudyOptions& options) {
  Rng rng(options.seed);
  UserStudyResult result;

  // Step 1: stratified context sample. Within each length bucket, prefer
  // high-support contexts (they are what users actually type), then fill
  // randomly for variety.
  std::vector<const GroundTruthEntry*> sample;
  for (size_t length : options.context_lengths) {
    std::vector<const GroundTruthEntry*> bucket;
    for (const GroundTruthEntry& entry : test_contexts) {
      if (entry.context.size() == length) bucket.push_back(&entry);
    }
    std::sort(bucket.begin(), bucket.end(),
              [](const GroundTruthEntry* a, const GroundTruthEntry* b) {
                if (a->support != b->support) return a->support > b->support;
                return a->context < b->context;
              });
    const size_t head = std::min(bucket.size(), options.contexts_per_length / 2);
    std::vector<const GroundTruthEntry*> chosen(bucket.begin(),
                                                bucket.begin() + head);
    if (bucket.size() > head) {
      std::vector<const GroundTruthEntry*> tail(bucket.begin() + head,
                                                bucket.end());
      rng.Shuffle(&tail);
      const size_t fill =
          std::min(tail.size(), options.contexts_per_length - head);
      chosen.insert(chosen.end(), tail.begin(), tail.begin() + fill);
    }
    sample.insert(sample.end(), chosen.begin(), chosen.end());
  }
  result.num_contexts = sample.size();

  // Step 2: predict and label. Approved (context, query) pairs pool into
  // the shared ground truth.
  struct MethodCounts {
    uint64_t predicted = 0;
    uint64_t approved = 0;
    std::vector<uint64_t> predicted_at;
    std::vector<uint64_t> approved_at;
  };
  std::vector<MethodCounts> counts(models.size());
  for (MethodCounts& c : counts) {
    c.predicted_at.assign(options.top_n, 0);
    c.approved_at.assign(options.top_n, 0);
  }
  std::unordered_set<uint64_t> pooled;  // hash of (context, query)

  for (const GroundTruthEntry* entry : sample) {
    for (size_t m = 0; m < models.size(); ++m) {
      const Recommendation rec =
          models[m]->Recommend(entry->context, options.top_n);
      for (size_t pos = 0; pos < rec.queries.size(); ++pos) {
        const QueryId predicted = rec.queries[pos].query;
        ++counts[m].predicted;
        ++counts[m].predicted_at[pos];
        const bool oracle_verdict =
            oracle.IsRelatedIds(dictionary, entry->context, predicted);
        if (PanelApproves(oracle_verdict, options, &rng)) {
          ++counts[m].approved;
          ++counts[m].approved_at[pos];
          const uint64_t key =
              HashCombine(HashIdSequence(entry->context), predicted + 1);
          pooled.insert(key);
        }
      }
    }
  }
  result.pooled_ground_truth = pooled.size();

  // Step 3: per-method precision/recall against the pooled ground truth.
  for (size_t m = 0; m < models.size(); ++m) {
    MethodUserEval eval;
    eval.model = std::string(models[m]->Name());
    eval.overall.num_predicted = counts[m].predicted;
    eval.overall.num_approved = counts[m].approved;
    eval.overall.ground_truth_size = result.pooled_ground_truth;
    eval.predicted_by_position = counts[m].predicted_at;
    eval.approved_by_position = counts[m].approved_at;
    eval.precision_by_position.assign(options.top_n, 0.0);
    for (size_t pos = 0; pos < options.top_n; ++pos) {
      if (counts[m].predicted_at[pos] > 0) {
        eval.precision_by_position[pos] =
            static_cast<double>(counts[m].approved_at[pos]) /
            static_cast<double>(counts[m].predicted_at[pos]);
      }
    }
    result.methods.push_back(std::move(eval));
  }
  return result;
}

}  // namespace sqp
