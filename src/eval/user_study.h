#ifndef SQP_EVAL_USER_STUDY_H_
#define SQP_EVAL_USER_STUDY_H_

#include <span>
#include <string>
#include <vector>

#include "core/prediction_model.h"
#include "eval/precision_recall.h"
#include "log/context_builder.h"
#include "log/query_dictionary.h"
#include "synth/oracle.h"
#include "util/random.h"

namespace sqp {

/// Parameters of the simulated user evaluation (paper Section V-H).
struct UserStudyOptions {
  /// Sampled contexts per context length (paper: 500 each of 1..4).
  size_t contexts_per_length = 500;
  std::vector<size_t> context_lengths = {1, 2, 3, 4};
  size_t top_n = 5;
  /// Panel size and per-labeler disagreement rate with the latent oracle
  /// (emulates the paper's 30 human volunteers); a prediction is approved
  /// if a strict majority of labelers approves.
  size_t num_labelers = 30;
  double labeler_noise = 0.1;
  uint64_t seed = 20090329;  // first day of ICDE'09
};

/// Per-method outcome (paper Table VIII + Figs. 13-14).
struct MethodUserEval {
  std::string model;
  PrecisionRecall overall;
  /// Precision at each recommendation rank 1..top_n (Fig. 14).
  std::vector<double> precision_by_position;
  std::vector<uint64_t> predicted_by_position;
  std::vector<uint64_t> approved_by_position;
};

struct UserStudyResult {
  std::vector<MethodUserEval> methods;
  uint64_t pooled_ground_truth = 0;  // unique approved (context, query) pairs
  uint64_t num_contexts = 0;
};

/// Runs the three-step protocol: (1) sample test contexts stratified by
/// length, (2) have every model predict top-N and a noisy labeler panel
/// judge each prediction against the latent relatedness oracle, (3) pool
/// the approved predictions into a deduplicated ground-truth set and score
/// precision/recall per method.
///
/// Note: the paper deduplicates pooled ground truth by *query string*; we
/// deduplicate by (context, query) pair since approval is context-specific.
/// This scales both recalls identically and preserves the ranking.
UserStudyResult RunUserStudy(
    const std::vector<const PredictionModel*>& models,
    std::span<const GroundTruthEntry> test_contexts,
    const QueryDictionary& dictionary, const RelatednessOracle& oracle,
    const UserStudyOptions& options);

}  // namespace sqp

#endif  // SQP_EVAL_USER_STUDY_H_
