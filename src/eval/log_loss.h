#ifndef SQP_EVAL_LOG_LOSS_H_
#define SQP_EVAL_LOG_LOSS_H_

#include <span>

#include "core/prediction_model.h"
#include "log/types.h"

namespace sqp {

/// Average log-loss rate of a model over test sessions (Eq. 1, log base
/// 10): l = -(1/|T|) sum_s (1/|s|) sum_{j>=2} log10 P(q_j | q_1..q_{j-1}).
/// Sessions are weighted by their aggregated frequency; sessions shorter
/// than 2 queries contribute nothing. Lower is better.
double AverageLogLoss(const PredictionModel& model,
                      std::span<const AggregatedSession> test_sessions);

}  // namespace sqp

#endif  // SQP_EVAL_LOG_LOSS_H_
