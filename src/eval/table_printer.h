#ifndef SQP_EVAL_TABLE_PRINTER_H_
#define SQP_EVAL_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace sqp {

/// Fixed-width console table used by every bench binary to print the
/// paper's rows. Also emits CSV for downstream plotting.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Renders an aligned ASCII table.
  void Print(std::ostream& out) const;

  /// Renders comma-separated values (cells containing commas are quoted).
  void PrintCsv(std::ostream& out) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double value, int digits = 4);

/// Formats a fraction as a percentage string ("56.8%").
std::string FormatPercent(double fraction, int digits = 1);

}  // namespace sqp

#endif  // SQP_EVAL_TABLE_PRINTER_H_
