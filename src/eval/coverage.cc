#include "eval/coverage.h"

namespace sqp {

CoverageResult MeasureCoverage(const PredictionModel& model,
                               std::span<const GroundTruthEntry> contexts) {
  CoverageResult result;
  std::map<size_t, uint64_t> weight_by_length;
  std::map<size_t, uint64_t> covered_by_length;
  uint64_t covered_weight = 0;
  for (const GroundTruthEntry& entry : contexts) {
    const size_t len = entry.context.size();
    weight_by_length[len] += entry.support;
    result.total_weight += entry.support;
    if (model.Covers(entry.context)) {
      covered_by_length[len] += entry.support;
      covered_weight += entry.support;
    }
  }
  if (result.total_weight > 0) {
    result.overall = static_cast<double>(covered_weight) /
                     static_cast<double>(result.total_weight);
  }
  for (const auto& [len, weight] : weight_by_length) {
    const uint64_t covered = covered_by_length.count(len) > 0
                                 ? covered_by_length.at(len)
                                 : 0;
    result.by_context_length[len] =
        weight == 0 ? 0.0
                    : static_cast<double>(covered) /
                          static_cast<double>(weight);
  }
  return result;
}

std::string_view UnpredictableReasonName(UnpredictableReason reason) {
  switch (reason) {
    case UnpredictableReason::kCovered:
      return "covered";
    case UnpredictableReason::kNewQuery:
      return "(1) new query";
    case UnpredictableReason::kOnlySingletonSessions:
      return "(2) only in length-1 sessions";
    case UnpredictableReason::kOnlyLastPosition:
      return "(3) only at last position";
    case UnpredictableReason::kUntrainedContext:
      return "(4) context not a trained state";
  }
  return "unknown";
}

ReasonBreakdown ClassifyUnpredictable(
    const PredictionModel& model, const QueryRoles& training_roles,
    std::span<const GroundTruthEntry> contexts) {
  ReasonBreakdown breakdown;
  for (const GroundTruthEntry& entry : contexts) {
    breakdown.total_weight += entry.support;
    UnpredictableReason reason = UnpredictableReason::kCovered;
    if (!model.Covers(entry.context)) {
      const QueryId last = entry.context.back();
      if (training_roles.seen.count(last) == 0) {
        reason = UnpredictableReason::kNewQuery;
      } else if (training_roles.in_multi_session.count(last) == 0) {
        reason = UnpredictableReason::kOnlySingletonSessions;
      } else if (training_roles.at_non_last.count(last) == 0) {
        reason = UnpredictableReason::kOnlyLastPosition;
      } else {
        reason = UnpredictableReason::kUntrainedContext;
      }
    }
    breakdown.weight[static_cast<size_t>(reason)] += entry.support;
  }
  return breakdown;
}

}  // namespace sqp
