#ifndef SQP_EVAL_ENTROPY_H_
#define SQP_EVAL_ENTROPY_H_

#include <map>

#include "log/context_builder.h"

namespace sqp {

/// Average prediction entropy of the next query given contexts of each
/// length (paper Fig. 2; the worked example: "java" followed by "sun java"
/// 60x and "java island" 40x has entropy 0.29 in log base 10). Contexts are
/// weighted by their support. Requires a kPrefix or kSubstring index; Fig. 2
/// uses prefix contexts.
std::map<size_t, double> AveragePredictionEntropyByLength(
    const ContextIndex& index);

/// Entropy (log base 10) of one context's next-query distribution.
double ContextEntropy(const ContextEntry& entry);

}  // namespace sqp

#endif  // SQP_EVAL_ENTROPY_H_
