#ifndef SQP_EVAL_EVALUATOR_H_
#define SQP_EVAL_EVALUATOR_H_

#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/prediction_model.h"
#include "log/context_builder.h"

namespace sqp {

/// Controls for the NDCG accuracy sweep (paper Figs. 8-9).
struct AccuracyOptions {
  std::vector<size_t> ndcg_positions = {1, 3, 5};
  /// Contexts longer than this are skipped (paper plots lengths 1..4).
  size_t max_context_length = 4;
  /// If true (the paper's setting), NDCG is averaged over contexts the
  /// model covers; coverage is reported separately. If false, uncovered
  /// contexts score 0.
  bool covered_only = true;
};

/// NDCG results: ndcg[position][context_length] = support-weighted mean.
struct ModelAccuracy {
  std::string model;
  std::map<size_t, std::map<size_t, double>> ndcg;
  /// ndcg_overall[position] = support-weighted mean over all lengths.
  std::map<size_t, double> ndcg_overall;
  uint64_t evaluated_weight = 0;
};

/// Runs the paper's data-centric accuracy protocol for one model over the
/// test ground truth.
ModelAccuracy EvaluateAccuracy(const PredictionModel& model,
                               std::span<const GroundTruthEntry> ground_truth,
                               const AccuracyOptions& options);

}  // namespace sqp

#endif  // SQP_EVAL_EVALUATOR_H_
