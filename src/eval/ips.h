#ifndef SQP_EVAL_IPS_H_
#define SQP_EVAL_IPS_H_

/// Off-policy evaluation over the closed-loop feedback log: the
/// inverse-propensity-scored (IPS / Horvitz-Thompson) estimator.
///
/// A feedback log written under an exploration policy is click-biased —
/// clicks land on what was *shown*, and what was shown at slot 1 was
/// sampled from the policy's pmf, not served uniformly. Naively counting
/// "clicked the slot-1 item" therefore measures the logging policy, not
/// a candidate policy. IPS corrects the bias: each logged round where the
/// candidate ("target") policy would have served the same slot-1 item the
/// log did is reweighted by 1/propensity of that item, making the
/// estimate unbiased for the candidate's expected slot-1 click rate:
///
///   V_hat = (1/N) * sum_i  r_i * 1{target(x_i) == served_top1_i} / p_i
///
/// where r_i = 1 iff the click landed on slot 1, and p_i is the logged
/// sampling propensity of the item at slot 1 (serve/feedback.h logs it
/// with every impression). The requirement is the usual bandit coverage
/// condition: p_i > 0 wherever the target has mass — a greedy-only log
/// (every p_i == 1) cannot evaluate any policy that deviates, and the
/// estimator refuses with a typed error instead of silently reporting a
/// half-covered number.

#include <cstdint>
#include <functional>
#include <span>

#include "log/types.h"
#include "serve/feedback.h"
#include "util/status.h"

namespace sqp {

struct IpsOptions {
  /// Records whose slot-1 propensity is below this are rejected
  /// (kOutOfRange): a tiny propensity makes 1/p explode and one round
  /// dominates the estimate. Raise it to trade variance for bias.
  double min_propensity = 1e-3;

  /// When > 0, importance weights are clipped to this bound (clipped
  /// IPS: biased low, bounded variance). 0 = no clipping (pure IPS).
  double clip_weight = 0.0;
};

struct IpsEstimate {
  /// The propensity-weighted slot-1 click-rate estimate for the target
  /// policy.
  double value = 0.0;

  /// Standard error of `value` (sample std-dev of the per-record terms /
  /// sqrt(N)).
  double std_error = 0.0;

  /// Records that entered the estimate (all of `records` — rounds where
  /// the target disagrees with the log contribute 0, they are not
  /// dropped).
  size_t records_used = 0;
};

/// What the target policy would serve at slot 1 for a logged context.
/// Deterministic targets only (the indicator-match estimator above);
/// return kInvalidQueryId for contexts the target does not cover —
/// those rounds contribute 0.
using TargetTop1 =
    std::function<QueryId(std::span<const QueryId> context)>;

/// Estimates the target policy's expected slot-1 click rate from logged
/// feedback. Typed errors:
///  - kInvalidArgument: `records` is empty, a record has no served items,
///    or `target` is null;
///  - kOutOfRange: a slot-1 propensity is outside (0, 1] or below
///    options.min_propensity (degenerate log);
///  - kFailedPrecondition: every slot-1 propensity is exactly 1 (a
///    greedy-only log has no exploration to reweight — the off-policy
///    estimate would be meaningless for any deviating target).
Result<IpsEstimate> EstimateIpsAccuracy(
    std::span<const FeedbackRecord> records, const TargetTop1& target,
    const IpsOptions& options = {});

}  // namespace sqp

#endif  // SQP_EVAL_IPS_H_
