#include "eval/evaluator.h"

#include <algorithm>

#include "eval/ndcg.h"

namespace sqp {

ModelAccuracy EvaluateAccuracy(const PredictionModel& model,
                               std::span<const GroundTruthEntry> ground_truth,
                               const AccuracyOptions& options) {
  ModelAccuracy out;
  out.model = std::string(model.Name());

  const size_t max_position =
      options.ndcg_positions.empty()
          ? 5
          : *std::max_element(options.ndcg_positions.begin(),
                              options.ndcg_positions.end());

  // Accumulators: [position][length] -> (weighted ndcg, weight).
  std::map<size_t, std::map<size_t, std::pair<double, double>>> acc;
  std::map<size_t, std::pair<double, double>> acc_overall;

  for (const GroundTruthEntry& entry : ground_truth) {
    const size_t len = entry.context.size();
    if (options.max_context_length != 0 && len > options.max_context_length) {
      continue;
    }
    if (entry.ranked_next.empty()) continue;
    const Recommendation rec = model.Recommend(entry.context, max_position);
    if (options.covered_only && !rec.covered) continue;
    out.evaluated_weight += entry.support;

    std::vector<QueryId> predicted;
    predicted.reserve(rec.queries.size());
    for (const ScoredQuery& sq : rec.queries) predicted.push_back(sq.query);

    const double w = static_cast<double>(entry.support);
    for (size_t position : options.ndcg_positions) {
      const double ndcg = NdcgAtN(predicted, entry, position);
      auto& [sum, weight] = acc[position][len];
      sum += w * ndcg;
      weight += w;
      auto& [osum, oweight] = acc_overall[position];
      osum += w * ndcg;
      oweight += w;
    }
  }

  for (const auto& [position, by_length] : acc) {
    for (const auto& [len, sum_weight] : by_length) {
      const auto& [sum, weight] = sum_weight;
      out.ndcg[position][len] = weight == 0.0 ? 0.0 : sum / weight;
    }
  }
  for (const auto& [position, sum_weight] : acc_overall) {
    const auto& [sum, weight] = sum_weight;
    out.ndcg_overall[position] = weight == 0.0 ? 0.0 : sum / weight;
  }
  return out;
}

}  // namespace sqp
