#include "eval/entropy.h"

#include <vector>

#include "util/math_util.h"

namespace sqp {

double ContextEntropy(const ContextEntry& entry) {
  std::vector<double> probs;
  probs.reserve(entry.nexts.size());
  for (const NextQueryCount& nc : entry.nexts) {
    probs.push_back(static_cast<double>(nc.count));
  }
  return EntropyLog10(probs);
}

std::map<size_t, double> AveragePredictionEntropyByLength(
    const ContextIndex& index) {
  std::map<size_t, double> weighted_entropy;
  std::map<size_t, double> weight;
  for (const ContextEntry* entry : index.SortedEntries()) {
    const size_t len = entry->context.size();
    const double w = static_cast<double>(entry->total_count);
    weighted_entropy[len] += w * ContextEntropy(*entry);
    weight[len] += w;
  }
  std::map<size_t, double> out;
  for (const auto& [len, sum] : weighted_entropy) {
    out[len] = weight[len] == 0.0 ? 0.0 : sum / weight[len];
  }
  return out;
}

}  // namespace sqp
