#include "eval/log_loss.h"

#include <cmath>

namespace sqp {

double AverageLogLoss(const PredictionModel& model,
                      std::span<const AggregatedSession> test_sessions) {
  double loss = 0.0;
  double weight = 0.0;
  for (const AggregatedSession& session : test_sessions) {
    const auto& q = session.queries;
    if (q.size() < 2) continue;
    double session_loss = 0.0;
    for (size_t j = 1; j < q.size(); ++j) {
      const std::span<const QueryId> prefix(q.data(), j);
      double p = model.ConditionalProb(prefix, q[j]);
      if (p < 1e-300) p = 1e-300;
      session_loss -= std::log10(p);
    }
    const double f = static_cast<double>(session.frequency);
    loss += f * session_loss / static_cast<double>(q.size());
    weight += f;
  }
  return weight == 0.0 ? 0.0 : loss / weight;
}

}  // namespace sqp
