#include "eval/ips.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace sqp {

Result<IpsEstimate> EstimateIpsAccuracy(
    std::span<const FeedbackRecord> records, const TargetTop1& target,
    const IpsOptions& options) {
  if (records.empty()) {
    return Status::InvalidArgument("IPS needs at least one logged record");
  }
  if (!target) {
    return Status::InvalidArgument("IPS needs a target policy");
  }
  if (!(options.min_propensity > 0.0)) {
    return Status::InvalidArgument("min_propensity must be > 0");
  }

  // Validate the whole log before estimating anything: a degenerate
  // record anywhere poisons the estimate, so it is an error, not a skip.
  bool any_exploration = false;
  for (const FeedbackRecord& record : records) {
    if (record.served.empty()) {
      return Status::InvalidArgument(
          "impression " + std::to_string(record.record_id) +
          " has no served items");
    }
    const double p = record.served[0].propensity;
    if (!(p > 0.0) || p > 1.0 || !std::isfinite(p)) {
      return Status::OutOfRange(
          "impression " + std::to_string(record.record_id) +
          " has degenerate slot-1 propensity " + std::to_string(p) +
          " (must be in (0, 1])");
    }
    if (p < options.min_propensity) {
      return Status::OutOfRange(
          "impression " + std::to_string(record.record_id) +
          " has slot-1 propensity " + std::to_string(p) +
          " below min_propensity " + std::to_string(options.min_propensity));
    }
    if (p < 1.0) any_exploration = true;
  }
  if (!any_exploration) {
    return Status::FailedPrecondition(
        "greedy-only log (every slot-1 propensity is 1): no exploration to "
        "reweight, off-policy estimates are meaningless");
  }

  double sum = 0.0;
  double sum_sq = 0.0;
  for (const FeedbackRecord& record : records) {
    const QueryId wanted = target(record.context);
    double term = 0.0;
    if (wanted != kInvalidQueryId && record.served[0].query == wanted &&
        record.clicked_position == 0) {
      double weight = 1.0 / record.served[0].propensity;
      if (options.clip_weight > 0.0) {
        weight = std::min(weight, options.clip_weight);
      }
      term = weight;
    }
    sum += term;
    sum_sq += term * term;
  }

  const double n = static_cast<double>(records.size());
  IpsEstimate estimate;
  estimate.records_used = records.size();
  estimate.value = sum / n;
  if (records.size() > 1) {
    const double variance =
        std::max(0.0, (sum_sq - sum * sum / n) / (n - 1.0));
    estimate.std_error = std::sqrt(variance / n);
  }
  return estimate;
}

}  // namespace sqp
