#ifndef SQP_EVAL_COVERAGE_H_
#define SQP_EVAL_COVERAGE_H_

#include <array>
#include <map>
#include <span>
#include <string_view>

#include "core/prediction_model.h"
#include "log/context_builder.h"

namespace sqp {

/// Coverage of a model over a set of test contexts, weighted by context
/// support (paper Section V-E): the fraction of test query sequences for
/// which the model can produce a recommendation.
struct CoverageResult {
  double overall = 0.0;
  std::map<size_t, double> by_context_length;
  uint64_t total_weight = 0;
};

CoverageResult MeasureCoverage(const PredictionModel& model,
                               std::span<const GroundTruthEntry> contexts);

/// Why a test context cannot be served (paper Table VI). `q` below is the
/// user's current query, i.e. the last query of the context.
enum class UnpredictableReason {
  kCovered = 0,             // not unpredictable
  kNewQuery,                // (1) q never appears in training
  kOnlySingletonSessions,   // (2) q appears only in length-1 sessions
  kOnlyLastPosition,        // (3) q never precedes another query
  kUntrainedContext,        // (4) the exact context is not a trained state
};

inline constexpr size_t kNumUnpredictableReasons = 5;

std::string_view UnpredictableReasonName(UnpredictableReason reason);

/// Support-weighted tally of reasons for one model over the test contexts.
struct ReasonBreakdown {
  std::array<uint64_t, kNumUnpredictableReasons> weight = {};
  uint64_t total_weight = 0;
};

/// Classifies every test context: covered, else reasons (1)-(3) from the
/// training-corpus roles of the last context query, else reason (4) (only
/// reachable for models with exact-context states, i.e. N-gram).
ReasonBreakdown ClassifyUnpredictable(const PredictionModel& model,
                                      const QueryRoles& training_roles,
                                      std::span<const GroundTruthEntry> contexts);

}  // namespace sqp

#endif  // SQP_EVAL_COVERAGE_H_
