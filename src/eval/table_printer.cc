#include "eval/table_printer.h"

#include <algorithm>
#include <ostream>

#include "util/string_util.h"

namespace sqp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  auto print_rule = [&] {
    out << "+";
    for (size_t width : widths) out << std::string(width + 2, '-') << '+';
    out << '\n';
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void TablePrinter::PrintCsv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      if (row[c].find(',') != std::string::npos) {
        out << '"' << row[c] << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

std::string FormatPercent(double fraction, int digits) {
  return StrFormat("%.*f%%", digits, fraction * 100.0);
}

}  // namespace sqp
