#ifndef SQP_EVAL_NDCG_H_
#define SQP_EVAL_NDCG_H_

#include <span>

#include "log/context_builder.h"
#include "log/types.h"

namespace sqp {

/// Rating of a predicted query under a ground-truth entry: the j-th ranked
/// ground-truth query (0-based) rates n - j (5..1 for n = 5); queries
/// outside the ground-truth top-n rate 0 (paper Section V-C.2).
double GroundTruthRating(const GroundTruthEntry& truth, QueryId query,
                         size_t n);

/// NDCG@n of a predicted ranking against a ground-truth entry (Eq. 11):
/// N(n) = Z_n * sum_j (2^r(j) - 1) / log(1 + j). The normalizer Z_n makes
/// the ideal ordering score 1, so NDCG is invariant to the log base.
/// Returns 0 for an empty prediction; requires a non-empty ground truth.
double NdcgAtN(std::span<const QueryId> predicted,
               const GroundTruthEntry& truth, size_t n);

}  // namespace sqp

#endif  // SQP_EVAL_NDCG_H_
