#ifndef SQP_EVAL_PRECISION_RECALL_H_
#define SQP_EVAL_PRECISION_RECALL_H_

#include <cstdint>

namespace sqp {

/// Standard precision/recall pair with the raw counts it was computed from
/// (paper Section V-H step 3: precision = approved / predicted, recall =
/// approved / |pooled ground truth|).
struct PrecisionRecall {
  uint64_t num_predicted = 0;
  uint64_t num_approved = 0;
  uint64_t ground_truth_size = 0;

  double precision() const {
    return num_predicted == 0 ? 0.0
                              : static_cast<double>(num_approved) /
                                    static_cast<double>(num_predicted);
  }
  double recall() const {
    return ground_truth_size == 0 ? 0.0
                                  : static_cast<double>(num_approved) /
                                        static_cast<double>(ground_truth_size);
  }
};

}  // namespace sqp

#endif  // SQP_EVAL_PRECISION_RECALL_H_
