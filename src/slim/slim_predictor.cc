// The slim embedded predictor (include/sqp/slim.h): a C ABI shell around
// the runtime-free core layers. Everything model-shaped lives in
// core/serving_walk and core/blob_format — this file only does argument
// policing, arena bookkeeping, and the BlobError -> sqp_status_t mapping.
//
// Runtime-freedom discipline (CI's slim-abi job enforces it with nm):
// malloc/free only, no operator new, no exceptions/RTTI, no iostreams, no
// function-local statics with dynamic initializers. Compiled with
// -fno-exceptions -fno-rtti -fvisibility=hidden; the SQP_SLIM_API entry
// points carry default visibility explicitly.

#include "sqp/slim.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "core/blob_format.h"
#include "core/serving_walk.h"
#include "util/byte_io.h"

namespace serving = sqp::serving;

namespace {

// Matches the engine's defensive path-capacity floor
// (core/compact_snapshot.cc): request path capacity is
// min(context_len, max(sizing.path_depth, kPathCapacityFloor)), so both
// consumers truncate adversarial inputs identically.
constexpr size_t kPathCapacityFloor = 64;

// One aligned sub-allocation of the create-time arena. All carved types
// have alignment <= 8, so rounding every segment to 8 keeps them aligned.
size_t Aligned(size_t bytes) { return (bytes + 7) & ~size_t{7}; }

template <typename T>
T* Carve(uint8_t** cursor, size_t count) {
  T* p = reinterpret_cast<T*>(*cursor);
  *cursor += Aligned(count * sizeof(T));
  return p;
}

template <typename T>
const T* SectionAs(const uint8_t* blob, const serving::BlobLayout& layout,
                   serving::BlobSectionId id) {
  return reinterpret_cast<const T*>(
      blob + static_cast<size_t>(layout.sections[id].offset));
}

}  // namespace

struct sqp_slim_predictor {
  serving::ModelRef model;
  uint64_t snapshot_version = 0;
  uint64_t resident_bytes = 0;

  // Request scratch, carved from `arena` at create — one request at a
  // time, by contract in the header.
  int32_t* path = nullptr;
  size_t path_capacity = 0;
  size_t* matched = nullptr;
  double* weights = nullptr;
  double* level_weight = nullptr;
  serving::RawHit* raw = nullptr;
  size_t raw_capacity = 0;
  serving::DenseAccumulator acc;

  double* escape_pow = nullptr;  // owned (FinalizeModelRef storage)
  uint8_t* arena = nullptr;      // owned (scratch backing)
};

extern "C" SQP_SLIM_API sqp_status_t sqp_slim_create_from_buffer(
    const void* blob, size_t blob_size, sqp_slim_predictor** out_predictor) {
  if (out_predictor == nullptr || blob == nullptr || blob_size == 0) {
    return SQP_STATUS_INVALID_ARGUMENT;
  }
  if (reinterpret_cast<uintptr_t>(blob) % 8 != 0) {
    return SQP_STATUS_INVALID_ARGUMENT;
  }
  // The model arrays are read in place as little-endian typed pointers;
  // a big-endian host would need the engine loader's decode-and-own path.
  if (!sqp::HostIsLittleEndian()) {
    return SQP_STATUS_FAILED_PRECONDITION;
  }

  const uint8_t* bytes = static_cast<const uint8_t*>(blob);
  serving::BlobLayout layout;
  if (serving::ParseBlobLayout(bytes, blob_size, /*verify_checksums=*/true,
                               &layout) != serving::BlobError::kNone) {
    return SQP_STATUS_INVALID_ARGUMENT;
  }

  serving::ModelRef m;
  m.next_begin = SectionAs<uint32_t>(bytes, layout, serving::kSecNextBegin);
  m.child_begin = SectionAs<uint32_t>(bytes, layout, serving::kSecChildBegin);
  m.total_count = SectionAs<uint32_t>(bytes, layout, serving::kSecTotalCount);
  m.start_count = SectionAs<uint32_t>(bytes, layout, serving::kSecStartCount);
  m.count_shift = SectionAs<uint8_t>(bytes, layout, serving::kSecCountShift);
  if (layout.narrow_masks) {
    m.mask16 = SectionAs<uint16_t>(bytes, layout, serving::kSecMask16);
  } else {
    m.mask64 = SectionAs<uint64_t>(bytes, layout, serving::kSecMask64);
  }
  m.next_code = SectionAs<uint16_t>(bytes, layout, serving::kSecNextCode);
  m.num_nodes = static_cast<size_t>(layout.num_nodes);
  m.num_entries = static_cast<size_t>(layout.num_entries);
  m.num_edges = static_cast<size_t>(layout.num_edges);
  m.narrow_ids = layout.narrow_ids;
  if (layout.narrow_ids) {
    m.narrow = serving::PoolsRef<uint16_t, uint16_t>{
        SectionAs<uint16_t>(bytes, layout, serving::kSecNextQuery),
        SectionAs<uint16_t>(bytes, layout, serving::kSecEdgeQuery),
        SectionAs<uint16_t>(bytes, layout, serving::kSecEdgeChild),
        SectionAs<uint16_t>(bytes, layout, serving::kSecRootIndex),
        static_cast<size_t>(layout.root_index_size)};
  } else {
    m.wide = serving::PoolsRef<uint32_t, uint32_t>{
        SectionAs<uint32_t>(bytes, layout, serving::kSecNextQuery),
        SectionAs<uint32_t>(bytes, layout, serving::kSecEdgeQuery),
        SectionAs<uint32_t>(bytes, layout, serving::kSecEdgeChild),
        SectionAs<uint32_t>(bytes, layout, serving::kSecRootIndex),
        static_cast<size_t>(layout.root_index_size)};
  }
  m.weighting = layout.weighting;
  // Little-endian host (checked above): the on-disk doubles are the host
  // bit pattern, so the mixture arrays are served in place too.
  m.sigmas = SectionAs<double>(bytes, layout, serving::kSecSigmas);
  m.component_escape =
      SectionAs<double>(bytes, layout, serving::kSecComponentEscape);
  m.num_components = layout.num_components;

  serving::BlobError err =
      serving::ValidateBlobCountShifts(m.count_shift, layout.num_nodes);
  if (err == serving::BlobError::kNone) {
    err = layout.narrow_ids
              ? serving::ValidateBlobStructure<uint16_t, uint16_t>(
                    m.next_begin, m.child_begin, m.narrow.edge_query,
                    m.narrow.edge_child, m.narrow.root_child_by_query,
                    layout.root_index_size, layout.num_nodes,
                    layout.num_entries, layout.num_edges)
              : serving::ValidateBlobStructure<uint32_t, uint32_t>(
                    m.next_begin, m.child_begin, m.wide.edge_query,
                    m.wide.edge_child, m.wide.root_child_by_query,
                    layout.root_index_size, layout.num_nodes,
                    layout.num_entries, layout.num_edges);
  }
  if (err != serving::BlobError::kNone) {
    return SQP_STATUS_INVALID_ARGUMENT;
  }

  // Derived tables: escape powers plus the scratch sizing everything
  // below is carved from. depth_scratch is create-time-only work memory.
  const size_t pow_doubles =
      m.num_components * (serving::kEscapePowCap + 1);
  double* escape_pow =
      static_cast<double*>(std::malloc(pow_doubles * sizeof(double)));
  uint32_t* depth_scratch =
      static_cast<uint32_t*>(std::malloc(m.num_nodes * sizeof(uint32_t)));
  if (escape_pow == nullptr || depth_scratch == nullptr) {
    std::free(escape_pow);
    std::free(depth_scratch);
    return SQP_STATUS_RESOURCE_EXHAUSTED;
  }
  for (size_t i = 0; i < pow_doubles; ++i) escape_pow[i] = 1.0;
  std::memset(depth_scratch, 0, m.num_nodes * sizeof(uint32_t));
  serving::FinalizeModelRef(&m, escape_pow, depth_scratch);
  std::free(depth_scratch);

  const size_t path_capacity =
      m.sizing.path_depth > kPathCapacityFloor ? m.sizing.path_depth
                                               : kPathCapacityFloor;
  const size_t k = m.num_components;
  const size_t dense_slots = m.dense_merge ? m.sizing.dense_queries : 0;
  const size_t raw_capacity = m.dense_merge ? 0 : m.num_entries;
  const size_t arena_bytes =
      Aligned(path_capacity * sizeof(int32_t)) +
      Aligned(path_capacity * sizeof(double)) +  // level_weight
      Aligned(k * sizeof(size_t)) +              // matched
      Aligned(k * sizeof(double)) +              // weights
      Aligned(dense_slots * sizeof(double)) +    // acc.score
      Aligned(dense_slots * sizeof(uint32_t)) +  // acc.stamp
      Aligned(dense_slots * sizeof(uint32_t)) +  // acc.touched
      Aligned(raw_capacity * sizeof(serving::RawHit));

  sqp_slim_predictor* p = static_cast<sqp_slim_predictor*>(
      std::malloc(sizeof(sqp_slim_predictor)));
  uint8_t* arena = static_cast<uint8_t*>(std::malloc(arena_bytes));
  if (p == nullptr || arena == nullptr) {
    std::free(escape_pow);
    std::free(p);
    std::free(arena);
    return SQP_STATUS_RESOURCE_EXHAUSTED;
  }
  *p = sqp_slim_predictor{};
  p->model = m;
  p->snapshot_version = layout.snapshot_version;
  p->escape_pow = escape_pow;
  p->arena = arena;
  p->resident_bytes = sizeof(sqp_slim_predictor) +
                      pow_doubles * sizeof(double) + arena_bytes;

  uint8_t* cursor = arena;
  p->path = Carve<int32_t>(&cursor, path_capacity);
  p->path_capacity = path_capacity;
  p->level_weight = Carve<double>(&cursor, path_capacity);
  p->matched = Carve<size_t>(&cursor, k);
  p->weights = Carve<double>(&cursor, k);
  p->acc.score = Carve<double>(&cursor, dense_slots);
  p->acc.stamp = Carve<uint32_t>(&cursor, dense_slots);
  p->acc.touched = Carve<uint32_t>(&cursor, dense_slots);
  p->acc.capacity = dense_slots;
  // Stamps must start zeroed: 0 is never a live epoch.
  std::memset(p->acc.stamp, 0, dense_slots * sizeof(uint32_t));
  p->raw = Carve<serving::RawHit>(&cursor, raw_capacity);
  p->raw_capacity = raw_capacity;

  *out_predictor = p;
  return SQP_STATUS_OK;
}

extern "C" SQP_SLIM_API sqp_status_t sqp_slim_recommend(
    sqp_slim_predictor* predictor, const uint32_t* context,
    size_t context_len, size_t top_n, uint32_t* out_queries,
    double* out_scores, size_t* out_count, size_t* out_matched_len) {
  if (predictor == nullptr || out_count == nullptr) {
    return SQP_STATUS_INVALID_ARGUMENT;
  }
  *out_count = 0;
  if (out_matched_len != nullptr) *out_matched_len = 0;
  if (context == nullptr && context_len > 0) {
    return SQP_STATUS_INVALID_ARGUMENT;
  }
  if (top_n > 0 && (out_queries == nullptr || out_scores == nullptr)) {
    return SQP_STATUS_INVALID_ARGUMENT;
  }
  if (context_len == 0) return SQP_STATUS_NOT_FOUND;

  const serving::ModelRef& m = predictor->model;
  serving::WalkScratch ws;
  ws.path = predictor->path;
  ws.path_capacity = context_len < predictor->path_capacity
                         ? context_len
                         : predictor->path_capacity;
  ws.matched = predictor->matched;
  ws.weights = predictor->weights;
  ws.level_weight = predictor->level_weight;
  if (m.dense_merge) {
    predictor->acc.BeginGeneration();
    ws.acc = &predictor->acc;
  } else {
    ws.raw = predictor->raw;
    ws.raw_capacity = predictor->raw_capacity;
  }

  // Ranking writes straight into the caller's arrays — no copy, no
  // allocation.
  const serving::WalkResult result = serving::RecommendTopN(
      m, context, context_len, top_n, serving::ScalarKernels(),
      m.dense_merge, &ws, out_queries, out_scores);

  if (!result.covered) return SQP_STATUS_NOT_FOUND;
  *out_count = result.count;
  if (out_matched_len != nullptr) *out_matched_len = result.matched_length;
  return SQP_STATUS_OK;
}

extern "C" SQP_SLIM_API sqp_status_t sqp_slim_stats(
    const sqp_slim_predictor* predictor, sqp_slim_stats_t* out_stats) {
  if (predictor == nullptr || out_stats == nullptr) {
    return SQP_STATUS_INVALID_ARGUMENT;
  }
  if (out_stats->struct_size < sizeof(size_t)) {
    return SQP_STATUS_INVALID_ARGUMENT;
  }
  sqp_slim_stats_t stats;
  stats.struct_size = sizeof(sqp_slim_stats_t);
  stats.snapshot_version = predictor->snapshot_version;
  stats.num_nodes = predictor->model.num_nodes;
  stats.num_entries = predictor->model.num_entries;
  stats.num_edges = predictor->model.num_edges;
  stats.num_components = static_cast<uint32_t>(predictor->model.num_components);
  stats.dense_merge = predictor->model.dense_merge ? 1u : 0u;
  stats.resident_bytes = predictor->resident_bytes;
  const size_t copy_bytes = out_stats->struct_size < sizeof(stats)
                                ? out_stats->struct_size
                                : sizeof(stats);
  std::memcpy(out_stats, &stats, copy_bytes);
  return SQP_STATUS_OK;
}

extern "C" SQP_SLIM_API void sqp_slim_destroy(sqp_slim_predictor* predictor) {
  if (predictor == nullptr) return;
  std::free(predictor->escape_pow);
  std::free(predictor->arena);
  std::free(predictor);
}
