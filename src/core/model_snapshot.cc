#include "core/model_snapshot.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "util/math_util.h"

namespace sqp {
namespace internal {

void MergeAndRank(std::vector<ScoredQuery>* raw, size_t top_n,
                  Recommendation* rec) {
  // Stable, so a query's contributions are summed in push order (callers
  // push level-major). That makes the merged doubles deterministic and is
  // what pins the dense-accumulator walk bit-identical to this path.
  std::stable_sort(raw->begin(), raw->end(),
                   [](const ScoredQuery& a, const ScoredQuery& b) {
                     return a.query < b.query;
                   });
  size_t out = 0;
  for (size_t i = 0; i < raw->size();) {
    ScoredQuery merged = (*raw)[i];
    for (++i; i < raw->size() && (*raw)[i].query == merged.query; ++i) {
      merged.score += (*raw)[i].score;
    }
    (*raw)[out++] = merged;
  }
  raw->resize(out);
  RankTopN(raw, top_n, rec);
}

void RankTopN(std::vector<ScoredQuery>* merged, size_t top_n,
              Recommendation* rec) {
  const auto by_rank = [](const ScoredQuery& a, const ScoredQuery& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.query < b.query;
  };
  if (merged->size() > top_n) {
    std::nth_element(merged->begin(),
                     merged->begin() + static_cast<ptrdiff_t>(top_n),
                     merged->end(), by_rank);
    merged->resize(top_n);
  }
  std::sort(merged->begin(), merged->end(), by_rank);
  rec->queries.assign(merged->begin(), merged->end());
}

std::vector<const AggregatedSession*> SelectWeightPool(
    const std::vector<AggregatedSession>& sessions, size_t sample_size) {
  // Pseudo-test sample: the most frequent multi-query sessions, with
  // P(X_T) proportional to their aggregated frequency (Eq. 8/9).
  std::vector<const AggregatedSession*> pool;
  for (const AggregatedSession& s : sessions) {
    if (s.queries.size() >= 2) pool.push_back(&s);
  }
  std::sort(pool.begin(), pool.end(),
            [](const AggregatedSession* a, const AggregatedSession* b) {
              if (a->frequency != b->frequency) {
                return a->frequency > b->frequency;
              }
              return a->queries < b->queries;
            });
  if (pool.size() > sample_size) pool.resize(sample_size);
  return pool;
}

size_t SharedIndexDepth(const MvmmOptions& options) {
  size_t shared_depth = 0;
  for (const VmmOptions& c : options.components) {
    if (c.max_depth == 0) return 0;  // any unbounded component: unbounded
    shared_depth = std::max(shared_depth, c.max_depth);
  }
  return shared_depth;
}

void ComputeRawWeights(MixtureWeighting weighting,
                       const std::vector<double>& sigmas, size_t context_len,
                       const std::vector<size_t>& matched,
                       std::vector<double>* weights) {
  const size_t k = matched.size();
  weights->assign(k, 0.0);
  switch (weighting) {
    case MixtureWeighting::kGaussianEditDistance: {
      for (size_t c = 0; c < k; ++c) {
        // The matched state's context is the trailing matched[c] queries of
        // the online context, so the edit distance degenerates to the
        // number of dropped prefix queries.
        const double d = static_cast<double>(context_len - matched[c]);
        (*weights)[c] = GaussianPdf(d, sigmas[c]);
      }
      // With a tightly fitted sigma the Gaussian can underflow for every
      // component (all matches far from the context); fall back to
      // weighting by match depth so the mixture stays well defined.
      double total = 0.0;
      for (double w : *weights) total += w;
      if (total <= 1e-280) {
        for (size_t c = 0; c < k; ++c) {
          (*weights)[c] = 1.0 + static_cast<double>(matched[c]);
        }
      }
      break;
    }
    case MixtureWeighting::kUniform:
      weights->assign(k, 1.0);
      break;
    case MixtureWeighting::kLongestMatch: {
      size_t best = 0;
      for (size_t m : matched) best = std::max(best, m);
      for (size_t c = 0; c < k; ++c) {
        (*weights)[c] = matched[c] == best ? 1.0 : 0.0;
      }
      break;
    }
  }
}

namespace {

/// f(sigma) = sum_X P(X) log sum_D g(d_D; sigma_D) P_D(X), evaluated off a
/// (component, integer-distance) Gaussian lookup table.
double Objective(const std::vector<WeightSample>& samples,
                 const std::vector<double>& sigmas, size_t max_d) {
  const size_t k = sigmas.size();
  const size_t stride = max_d + 1;
  thread_local std::vector<double> g_table;
  g_table.assign(k * stride, 0.0);
  for (size_t c = 0; c < k; ++c) {
    for (size_t d = 0; d <= max_d; ++d) {
      g_table[c * stride + d] = GaussianPdf(static_cast<double>(d), sigmas[c]);
    }
  }
  double f = 0.0;
  for (const WeightSample& s : samples) {
    double mix = 0.0;
    for (size_t c = 0; c < k; ++c) {
      mix += g_table[c * stride + static_cast<size_t>(s.edit_distance[c])] *
             s.sequence_prob[c];
    }
    if (mix <= 0.0) mix = 1e-300;
    f += s.weight * std::log(mix);
  }
  return f;
}

/// Fused analytic gradient and analytic Hessian (row-major k x k) in a
/// single pass over the samples.
void FitDerivatives(const std::vector<WeightSample>& samples,
                    const std::vector<double>& sigmas, size_t max_d,
                    std::vector<double>* gradient,
                    std::vector<double>* hessian) {
  // For f = sum_X w log m, m = sum_c g_c P_c:
  //   grad_c = sum_X w g_c' P_c / m
  //   H_cj = sum_X w [ delta_cj g_c'' P_c / m - (g_c' P_c)(g_j' P_j) / m^2 ]
  // with g' = g (d^2/s^3 - 1/s) and g'' = g ((d^2/s^3 - 1/s)^2
  //                                          - 3 d^2/s^4 + 1/s^2).
  const size_t k = sigmas.size();
  const size_t stride = max_d + 1;
  thread_local std::vector<double> g_table;   // g
  thread_local std::vector<double> gp_table;  // g'
  thread_local std::vector<double> gt_table;  // g''
  g_table.assign(k * stride, 0.0);
  gp_table.assign(k * stride, 0.0);
  gt_table.assign(k * stride, 0.0);
  for (size_t c = 0; c < k; ++c) {
    const double sigma = sigmas[c];
    for (size_t di = 0; di <= max_d; ++di) {
      const double d = static_cast<double>(di);
      const double g = GaussianPdf(d, sigma);
      const double a = d * d / (sigma * sigma * sigma) - 1.0 / sigma;
      const double a_prime =
          -3.0 * d * d / (sigma * sigma * sigma * sigma) +
          1.0 / (sigma * sigma);
      g_table[c * stride + di] = g;
      gp_table[c * stride + di] = g * a;
      gt_table[c * stride + di] = g * (a * a + a_prime);
    }
  }

  gradient->assign(k, 0.0);
  hessian->assign(k * k, 0.0);
  std::vector<double> u(k);  // g_c' P_c
  for (const WeightSample& s : samples) {
    double mix = 0.0;
    for (size_t c = 0; c < k; ++c) {
      const size_t di = static_cast<size_t>(s.edit_distance[c]);
      u[c] = gp_table[c * stride + di] * s.sequence_prob[c];
      mix += g_table[c * stride + di] * s.sequence_prob[c];
    }
    if (mix <= 0.0) continue;
    const double inv = 1.0 / mix;
    for (size_t c = 0; c < k; ++c) {
      const size_t di = static_cast<size_t>(s.edit_distance[c]);
      (*gradient)[c] += s.weight * u[c] * inv;
      (*hessian)[c * k + c] +=
          s.weight * gt_table[c * stride + di] * s.sequence_prob[c] * inv;
      const double scaled = s.weight * u[c] * inv * inv;
      for (size_t j = 0; j < k; ++j) {
        (*hessian)[c * k + j] -= scaled * u[j];
      }
    }
  }
}

}  // namespace

MvmmFitReport FitSigmasFromSamples(std::vector<WeightSample>* samples,
                                   const MvmmOptions& options,
                                   std::vector<double>* sigmas) {
  MvmmFitReport report;
  if (samples->empty()) return report;
  const size_t k = sigmas->size();

  double weight_total = 0.0;
  for (const WeightSample& s : *samples) weight_total += s.weight;
  for (WeightSample& s : *samples) s.weight /= weight_total;

  // Edit distances are dropped-prefix counts: small integers. The fit
  // evaluators run off (component, distance) lookup tables sized by the
  // largest observed distance.
  size_t max_d = 0;
  for (const WeightSample& s : *samples) {
    for (double d : s.edit_distance) {
      max_d = std::max(max_d, static_cast<size_t>(d));
    }
  }

  // Damped Newton with the analytic Hessian (one pass over the samples per
  // iteration); gradient-ascent fallback keeps every accepted step an
  // improvement.
  double f = Objective(*samples, *sigmas, max_d);
  report.initial_objective = f;
  std::vector<double> grad;
  std::vector<double> hessian;
  for (size_t iter = 0; iter < options.max_newton_iterations; ++iter) {
    const double f_before = f;
    FitDerivatives(*samples, *sigmas, max_d, &grad, &hessian);
    double grad_norm = 0.0;
    for (double g : grad) grad_norm += g * g;
    grad_norm = std::sqrt(grad_norm);
    if (grad_norm < 1e-9) break;

    std::vector<double> step;
    bool have_newton =
        SolveLinearSystem(hessian, grad, k, &step);  // H * step = grad
    // At a maximum H is negative definite, so sigma_new = sigma - step
    // (Eq. 10). Reject the Newton direction if it is not an ascent move.
    bool accepted = false;
    if (have_newton) {
      double damping = 1.0;
      for (int attempt = 0; attempt < 8 && !accepted; ++attempt) {
        std::vector<double> trial = *sigmas;
        for (size_t i = 0; i < k; ++i) {
          trial[i] = std::max(options.min_sigma,
                              trial[i] - damping * step[i]);
        }
        const double ft = Objective(*samples, trial, max_d);
        if (ft > f) {
          *sigmas = std::move(trial);
          f = ft;
          accepted = true;
          report.used_newton = true;
        }
        damping *= 0.5;
      }
    }
    if (!accepted) {
      // Backtracking gradient ascent.
      double lr = 0.5;
      for (int attempt = 0; attempt < 12 && !accepted; ++attempt) {
        std::vector<double> trial = *sigmas;
        for (size_t i = 0; i < k; ++i) {
          trial[i] = std::max(options.min_sigma, trial[i] + lr * grad[i]);
        }
        const double ft = Objective(*samples, trial, max_d);
        if (ft > f) {
          *sigmas = std::move(trial);
          f = ft;
          accepted = true;
        }
        lr *= 0.5;
      }
    }
    ++report.iterations;
    if (!accepted) break;  // converged (no improving step)
    // Converged: the accepted step no longer moves the objective.
    const double improvement = f - f_before;
    if (improvement <
        options.convergence_tolerance * (1.0 + std::fabs(f_before))) {
      break;
    }
  }
  report.final_objective = f;
  return report;
}

}  // namespace internal

std::vector<VmmOptions> MvmmOptions::DefaultComponents(size_t max_depth) {
  // Paper Section IV-C.2 trains "K D-bounded VMM models, {P_D, D=1..K}",
  // each "with a range of epsilon values"; Section V-D uses 11 components.
  // The default crosses D = 1..deepest with epsilon in {0.0, 0.05} and adds
  // one (deepest, 0.1) component: 11 components at the default depth 5,
  // covering both the depth and the epsilon axes of the model family.
  const size_t deepest = max_depth == 0 ? 5 : max_depth;
  std::vector<VmmOptions> components;
  components.reserve(2 * deepest + 1);
  for (size_t depth = 1; depth <= deepest; ++depth) {
    for (double epsilon : {0.0, 0.05}) {
      VmmOptions vmm;
      vmm.epsilon = epsilon;
      vmm.max_depth = depth;
      components.push_back(vmm);
    }
  }
  VmmOptions last;
  last.epsilon = 0.1;
  last.max_depth = deepest;
  components.push_back(last);
  return components;
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::Build(
    const TrainingData& data, const MvmmOptions& options, uint64_t version) {
  SQP_RETURN_IF_ERROR(internal::ValidateTrainingData(data));
  std::shared_ptr<ModelSnapshot> snapshot(new ModelSnapshot());
  snapshot->options_ = options;
  if (snapshot->options_.components.empty()) {
    snapshot->options_.components =
        MvmmOptions::DefaultComponents(snapshot->options_.default_max_depth);
  }
  const size_t k = snapshot->options_.components.size();
  if (k > Pst::kMaxViews) {
    return Status::InvalidArgument(
        "ModelSnapshot supports at most Pst::kMaxViews components");
  }
  snapshot->vocabulary_size_ = data.vocabulary_size;
  snapshot->version_ = version;

  // One shared counting pass for all components. Depth must accommodate the
  // deepest component; any unbounded component forces an unbounded index.
  const size_t need_depth = internal::SharedIndexDepth(snapshot->options_);
  const ContextIndex* index = data.substring_index;
  const bool compatible =
      index != nullptr && index->CoversSubstringDepth(need_depth);
  ContextIndex local;
  if (!compatible) {
    local.Build(*data.sessions, ContextIndex::Mode::kSubstring, need_depth,
                snapshot->options_.training_threads);
    index = &local;
  }

  // Single-pass shared build: one maximal tree with per-node component
  // membership masks; every component becomes a pruned view of it.
  std::vector<PstOptions> views;
  views.reserve(k);
  for (const VmmOptions& c : snapshot->options_.components) {
    views.push_back(PstOptions{.epsilon = c.epsilon,
                               .max_depth = c.max_depth,
                               .min_support = c.min_support});
  }
  auto shared = std::make_shared<Pst>();
  SQP_RETURN_IF_ERROR(shared->BuildShared(*index, views));
  snapshot->pst_ = std::move(shared);

  snapshot->sigmas_.assign(k, snapshot->options_.initial_sigma);
  if (!snapshot->options_.fixed_sigmas.empty()) {
    if (snapshot->options_.fixed_sigmas.size() != k) {
      return Status::InvalidArgument(
          "fixed_sigmas must match the component count");
    }
    snapshot->sigmas_ = snapshot->options_.fixed_sigmas;
  } else if (snapshot->options_.weighting ==
             MixtureWeighting::kGaussianEditDistance) {
    snapshot->FitSigmas(*data.sessions);
  }

  // Publish-time scratch sizing: the engines hand this to
  // SnapshotScratch::Prepare so steady-state serving never grows a buffer.
  {
    const std::vector<Pst::Node>& nodes = snapshot->pst_->nodes();
    size_t max_depth = 0;
    uint64_t entries = 0;
    for (const Pst::Node& node : nodes) {
      max_depth = std::max(max_depth, node.context.size());
      entries += node.nexts.size();
    }
    snapshot->scratch_hint_ = ScratchSizing{
        .path_depth = max_depth,
        .num_components = k,
        .raw_entries =
            static_cast<size_t>(std::min<uint64_t>(entries, 4096)),
        .dense_queries = 0,  // the full walk ranks via sort-merge
    };
  }
  return std::shared_ptr<const ModelSnapshot>(std::move(snapshot));
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::WithSigmas(
    std::vector<double> sigmas) const {
  if (sigmas.size() != num_components()) {
    return Status::InvalidArgument(
        "WithSigmas must supply one sigma per component");
  }
  std::shared_ptr<ModelSnapshot> out(new ModelSnapshot(*this));
  out->sigmas_ = std::move(sigmas);
  return std::shared_ptr<const ModelSnapshot>(std::move(out));
}

size_t ModelSnapshot::SharedMatchDepths(std::span<const QueryId> context,
                                        std::vector<int32_t>* path,
                                        std::vector<size_t>* matched) const {
  const size_t depth = pst_->MatchPath(context, path);
  const size_t k = num_components();
  matched->assign(k, 0);
  const std::vector<Pst::ViewMask>& masks = pst_->view_masks();
  for (size_t c = 0; c < k; ++c) {
    const Pst::ViewMask bit = Pst::ViewMask{1} << c;
    // View membership is ancestor-closed, so the nodes carrying this
    // component's bit form a prefix of the path.
    size_t m = depth;
    while (m > 0 &&
           (masks[static_cast<size_t>((*path)[m - 1])] & bit) == 0) {
      --m;
    }
    (*matched)[c] = m;
  }
  return depth;
}

double ModelSnapshot::EscapeWeight(const Pst::Node& state, size_t context_len,
                                   size_t matched, size_t component) const {
  const size_t dropped = context_len - matched;
  if (dropped == 0) return 1.0;
  return internal::EscapeMass(
      state, dropped, options_.components[component].default_escape);
}

void ModelSnapshot::RawWeights(size_t context_len,
                               const std::vector<size_t>& matched,
                               std::vector<double>* weights) const {
  internal::ComputeRawWeights(options_.weighting, sigmas_, context_len,
                              matched, weights);
}

void ModelSnapshot::BuildWeightSample(const AggregatedSession& session,
                                      internal::WeightSample* sample) const {
  const size_t k = num_components();
  const std::vector<QueryId>& q = session.queries;
  sample->edit_distance.resize(k);
  sample->sequence_prob.assign(k, 1.0);

  thread_local std::vector<int32_t> path;
  thread_local std::vector<size_t> matched;
  thread_local std::vector<double> cond_at;  // per matched depth, 0 = root

  // Eq. 3 chain for every component off one tree walk per prefix: all
  // component states lie on the recorded path, so the smoothed conditional
  // is computed once per distinct matched depth instead of once per
  // component. The final prefix is the full context, whose matched depths
  // also yield the edit distances (d = dropped prefix queries).
  const std::vector<Pst::Node>& nodes = pst_->nodes();
  for (size_t i = 1; i < q.size(); ++i) {
    const std::span<const QueryId> prefix(q.data(), i);
    const size_t depth = SharedMatchDepths(prefix, &path, &matched);
    cond_at.assign(depth + 1, -1.0);
    for (size_t c = 0; c < k; ++c) {
      const size_t m = matched[c];
      const Pst::Node& state =
          m == 0 ? nodes[0] : nodes[static_cast<size_t>(path[m - 1])];
      if (cond_at[m] < 0.0) {
        cond_at[m] = internal::SmoothedProb(state.nexts, state.total_count,
                                            vocabulary_size_, q[i]);
      }
      sample->sequence_prob[c] *= EscapeWeight(state, i, m, c) * cond_at[m];
    }
    if (i + 1 == q.size()) {  // prefix == full context
      for (size_t c = 0; c < k; ++c) {
        sample->edit_distance[c] = static_cast<double>(i - matched[c]);
      }
    }
  }
}

void ModelSnapshot::FitSigmas(const std::vector<AggregatedSession>& sessions) {
  fit_report_ = MvmmFitReport{};
  const std::vector<const AggregatedSession*> pool =
      internal::SelectWeightPool(sessions, options_.weight_sample_size);
  if (pool.empty()) return;

  std::vector<internal::WeightSample> samples(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    samples[i].weight = static_cast<double>(pool[i]->frequency);
  }
  // Per-sample evaluation is independent and writes only its own slot, so
  // sharding it across workers leaves the result bit-identical.
  if (options_.training_threads > 1 && samples.size() > 1) {
    std::vector<std::thread> workers;
    const size_t num_workers =
        std::min(options_.training_threads, samples.size());
    std::atomic<size_t> next{0};
    for (size_t w = 0; w < num_workers; ++w) {
      workers.emplace_back([&] {
        while (true) {
          const size_t i = next.fetch_add(1);
          if (i >= samples.size()) return;
          BuildWeightSample(*pool[i], &samples[i]);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  } else {
    for (size_t i = 0; i < samples.size(); ++i) {
      BuildWeightSample(*pool[i], &samples[i]);
    }
  }
  fit_report_ = internal::FitSigmasFromSamples(&samples, options_, &sigmas_);
}

std::vector<double> ModelSnapshot::MixtureWeights(
    std::span<const QueryId> context, SnapshotScratch* scratch) const {
  SharedMatchDepths(context, &scratch->path, &scratch->matched);
  std::vector<double> weights;
  RawWeights(context.size(), scratch->matched, &weights);
  NormalizeInPlace(&weights);
  return weights;
}

Recommendation ModelSnapshot::Recommend(std::span<const QueryId> context,
                                        size_t top_n,
                                        SnapshotScratch* scratch) const {
  Recommendation rec;
  if (context.empty()) return rec;

  std::vector<int32_t>& path = scratch->path;
  std::vector<size_t>& matched = scratch->matched;
  std::vector<double>& level_weight = scratch->level_weight;
  std::vector<ScoredQuery>& raw = scratch->raw;

  const size_t depth = SharedMatchDepths(context, &path, &matched);
  if (depth == 0) return rec;  // uncovered, like its components
  std::vector<double>& weights = scratch->weights;
  RawWeights(context.size(), matched, &weights);
  NormalizeInPlace(&weights);

  // Combine escape-weighted generative scores across components (paper
  // Section IV-C.3: predicted queries of all components are re-ranked
  // w.r.t. generative probabilities and model weights). Each component
  // also contributes its matched state's suffix ancestors at
  // escape-discounted weight (Eq. 5 applied to ranking): deep states often
  // carry very few continuations, and the recursion fills the list with
  // shallower-context candidates without disturbing the deep ranking.
  // All matched states are nested suffixes of the context, so the per-level
  // weights accumulate on one path and every state's count list is touched
  // exactly once — no per-call hash map.
  raw.clear();
  const std::vector<Pst::Node>& nodes = pst_->nodes();
  level_weight.assign(depth, 0.0);
  for (size_t c = 0; c < num_components(); ++c) {
    if (weights[c] <= 0.0 || matched[c] == 0) continue;
    const Pst::Node& state = nodes[static_cast<size_t>(path[matched[c] - 1])];
    double lw = weights[c] *
                EscapeWeight(state, context.size(), matched[c], c);
    const double esc = options_.components[c].default_escape;
    for (size_t d = matched[c]; d >= 1; --d) {
      level_weight[d - 1] += lw;
      lw *= esc;
    }
  }
  for (size_t d = 0; d < depth; ++d) {
    if (level_weight[d] <= 0.0) continue;
    const Pst::Node& node = nodes[static_cast<size_t>(path[d])];
    if (node.total_count == 0) continue;
    const double scale =
        level_weight[d] / static_cast<double>(node.total_count);
    for (const NextQueryCount& nc : node.nexts) {
      raw.push_back(
          ScoredQuery{nc.query, scale * static_cast<double>(nc.count)});
    }
  }
  if (raw.empty()) return rec;

  rec.covered = true;
  rec.matched_length = depth;
  internal::MergeAndRank(&raw, top_n, &rec);
  return rec;
}

bool ModelSnapshot::Covers(std::span<const QueryId> context) const {
  if (context.empty()) return false;
  size_t matched = 0;
  pst_->MatchLongestSuffix(context, &matched);
  return matched >= 1;
}

double ModelSnapshot::ConditionalProb(std::span<const QueryId> context,
                                      QueryId next,
                                      SnapshotScratch* scratch) const {
  std::vector<int32_t>& path = scratch->path;
  std::vector<size_t>& matched = scratch->matched;
  std::vector<double>& cond_at = scratch->cond_at;
  const size_t depth = SharedMatchDepths(context, &path, &matched);
  std::vector<double>& weights = scratch->weights;
  RawWeights(context.size(), matched, &weights);
  NormalizeInPlace(&weights);
  const std::vector<Pst::Node>& nodes = pst_->nodes();
  cond_at.assign(depth + 1, -1.0);
  double p = 0.0;
  for (size_t c = 0; c < num_components(); ++c) {
    const size_t m = matched[c];
    const Pst::Node& state =
        m == 0 ? nodes[0] : nodes[static_cast<size_t>(path[m - 1])];
    if (cond_at[m] < 0.0) {
      cond_at[m] = internal::SmoothedProb(state.nexts, state.total_count,
                                          vocabulary_size_, next);
    }
    p += weights[c] * cond_at[m];
  }
  return p;
}

ModelStats ModelSnapshot::Stats() const {
  ModelStats stats;
  stats.name = "MVMM";
  // Merged-PST accounting (paper Section V-F.2) over the *actual* shared
  // structure: every node stored once, plus one membership mask per node.
  stats.num_states = pst_->size();
  stats.num_entries = pst_->num_entries();
  stats.memory_bytes = pst_->memory_bytes();
  return stats;
}

}  // namespace sqp
