#include "core/vmm_model.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace sqp {
namespace {

std::string MakeName(const VmmOptions& options) {
  std::string eps = options.epsilon == 0.0
                        ? std::string("0.0")
                        : StrFormat("%g", options.epsilon);
  if (options.max_depth > 0) {
    return StrFormat("%zu-bounded VMM (%s)", options.max_depth, eps.c_str());
  }
  return StrFormat("VMM (%s)", eps.c_str());
}

}  // namespace

namespace internal {

double EscapeMass(const Pst::Node& state, size_t dropped,
                  double default_escape) {
  double escape = 1.0;
  for (size_t i = 0; i + 1 < dropped; ++i) escape *= default_escape;
  if (state.total_count > 0 && state.start_count > 0 &&
      state.parent >= 0) {  // a real state with observed session starts
    escape *= static_cast<double>(state.start_count) /
              static_cast<double>(state.total_count);
  } else {
    escape *= default_escape;
  }
  return escape;
}

}  // namespace internal

VmmModel::VmmModel(VmmOptions options)
    : options_(options), name_(MakeName(options)) {}

Status VmmModel::Train(const TrainingData& data) {
  SQP_RETURN_IF_ERROR(internal::ValidateTrainingData(data));
  vocabulary_size_ = data.vocabulary_size;
  shared_pst_.reset();
  view_ = 0;

  PstOptions pst_options;
  pst_options.epsilon = options_.epsilon;
  pst_options.max_depth = options_.max_depth;
  pst_options.min_support = options_.min_support;

  // Reuse a shared counting pass when compatible (MVMM components share
  // one); otherwise count locally.
  const ContextIndex* index = data.substring_index;
  const bool compatible =
      index != nullptr && index->CoversSubstringDepth(options_.max_depth);
  ContextIndex local;
  if (!compatible) {
    local.Build(*data.sessions, ContextIndex::Mode::kSubstring,
                options_.max_depth);
    index = &local;
  }
  SQP_RETURN_IF_ERROR(pst_.Build(*index, pst_options));
  trained_ = true;
  return Status::OK();
}

Status VmmModel::TrainFromSharedPst(std::shared_ptr<const Pst> shared,
                                    size_t view, size_t vocabulary_size) {
  if (shared == nullptr || !shared->is_shared() ||
      view >= shared->num_views()) {
    return Status::InvalidArgument("invalid shared PST view");
  }
  if (vocabulary_size == 0) {
    return Status::InvalidArgument("vocabulary_size must be > 0");
  }
  pst_ = Pst();
  shared_pst_ = std::move(shared);
  view_ = view;
  vocabulary_size_ = vocabulary_size;
  trained_ = true;
  return Status::OK();
}

VmmMatch VmmModel::Match(std::span<const QueryId> context) const {
  SQP_CHECK(trained_);
  VmmMatch match;
  const Pst& tree = pst();
  match.state =
      shared_pst_ ? tree.MatchLongestSuffixView(context, view_,
                                                &match.matched_length)
                  : tree.MatchLongestSuffix(context, &match.matched_length);
  // Escape mass for the context disparity (Eq. 5-6): one escape step per
  // dropped prefix query. Intermediate suffixes are not PST states (that is
  // why they were dropped), so their Eq. 6 ratio is unavailable after
  // training; they contribute the configured default. The final step lands
  // on the matched state, whose Eq. 6 ratio start_count/total_count we have.
  const size_t dropped = context.size() - match.matched_length;
  if (dropped > 0) {
    match.escape_weight =
        internal::EscapeMass(*match.state, dropped, options_.default_escape);
  }
  return match;
}

Recommendation VmmModel::Recommend(std::span<const QueryId> context,
                                   size_t top_n) const {
  Recommendation rec;
  if (!trained_ || context.empty()) return rec;
  const VmmMatch match = Match(context);
  if (match.matched_length == 0) return rec;  // last query unseen: uncovered
  rec.covered = true;
  rec.matched_length = match.matched_length;
  internal::FillTopN(match.state->nexts, match.state->total_count, top_n,
                     &rec);
  return rec;
}

bool VmmModel::Covers(std::span<const QueryId> context) const {
  if (!trained_ || context.empty()) return false;
  size_t matched = 0;
  if (shared_pst_) {
    shared_pst_->MatchLongestSuffixView(context, view_, &matched);
  } else {
    pst_.MatchLongestSuffix(context, &matched);
  }
  return matched >= 1;
}

double VmmModel::ConditionalProb(std::span<const QueryId> context,
                                 QueryId next) const {
  if (!trained_) return 0.0;
  const VmmMatch match = Match(context);
  return internal::SmoothedProb(match.state->nexts, match.state->total_count,
                                vocabulary_size_, next);
}

double VmmModel::SequenceProb(std::span<const QueryId> sequence) const {
  SQP_CHECK(trained_);
  // P(q1) = 1 by convention (paper footnote 3); each later query is scored
  // against its full prefix, with escape penalties on context disparities.
  double prob = 1.0;
  for (size_t i = 1; i < sequence.size(); ++i) {
    const std::span<const QueryId> prefix = sequence.subspan(0, i);
    const VmmMatch match = Match(prefix);
    const double conditional =
        internal::SmoothedProb(match.state->nexts, match.state->total_count,
                               vocabulary_size_, sequence[i]);
    prob *= match.escape_weight * conditional;
  }
  return prob;
}

ModelStats VmmModel::Stats() const {
  ModelStats stats;
  stats.name = std::string(Name());
  if (shared_pst_) {
    stats.num_states = shared_pst_->view_num_states(view_);
    stats.num_entries = shared_pst_->view_num_entries(view_);
    stats.memory_bytes = shared_pst_->view_memory_bytes(view_);
  } else {
    stats.num_states = pst_.size();
    stats.num_entries = pst_.num_entries();
    stats.memory_bytes = pst_.memory_bytes();
  }
  return stats;
}

}  // namespace sqp
