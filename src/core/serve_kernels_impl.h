#ifndef SQP_CORE_SERVE_KERNELS_IMPL_H_
#define SQP_CORE_SERVE_KERNELS_IMPL_H_

/// Internal seam between the kernel dispatcher (serve_kernels.cc) and the
/// per-ISA translation units (serve_kernels_sse4.cc / serve_kernels_avx2.cc,
/// each compiled with exactly the -m flags its intrinsics need — see the
/// CMakeLists SIMD block). The dispatcher only ever calls these after a
/// cpuid check, so a binary built with the SIMD TUs still runs correctly
/// on hosts without the instruction sets.
///
/// The SQP_HAVE_SSE4_KERNELS / SQP_HAVE_AVX2_KERNELS macros are defined by
/// the build system for the whole sqp target whenever the compiler accepts
/// the per-file flags on an x86 host; on other architectures the SIMD TUs
/// compile to nothing and the dispatcher registers scalar only.

#include <cstddef>
#include <cstdint>

#include "core/serve_kernels.h"

namespace sqp::kernels {

#ifdef SQP_HAVE_SSE4_KERNELS
namespace sse4 {
void ScoreRunU16(const uint16_t* queries, const uint16_t* codes, size_t n,
                 double scale, DenseAccumulator* acc);
void ScoreRunU32(const uint32_t* queries, const uint16_t* codes, size_t n,
                 double scale, DenseAccumulator* acc);
}  // namespace sse4
#endif  // SQP_HAVE_SSE4_KERNELS

#ifdef SQP_HAVE_AVX2_KERNELS
namespace avx2 {
void ScoreRunU16(const uint16_t* queries, const uint16_t* codes, size_t n,
                 double scale, DenseAccumulator* acc);
void ScoreRunU32(const uint32_t* queries, const uint16_t* codes, size_t n,
                 double scale, DenseAccumulator* acc);
}  // namespace avx2
#endif  // SQP_HAVE_AVX2_KERNELS

}  // namespace sqp::kernels

#endif  // SQP_CORE_SERVE_KERNELS_IMPL_H_
