#include "core/pst.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/memory_accounting.h"
#include "util/edge_search.h"
#include "util/math_util.h"

namespace sqp {
namespace {

void SortNexts(std::vector<NextQueryCount>* nexts) {
  std::sort(nexts->begin(), nexts->end(),
            [](const NextQueryCount& a, const NextQueryCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.query < b.query;
            });
}

bool ByQuery(const NextQueryCount& a, const NextQueryCount& b) {
  return a.query < b.query;
}

double KlFromSortedParent(std::span<const NextQueryCount> sorted_parent,
                          std::span<const NextQueryCount> child) {
  // Query-sorted child copy in reusable scratch, then a single merge walk.
  // The old implementation built an unordered_map plus two vectors per
  // call — one allocation-heavy pass per candidate context during tree
  // growth. The parent side arrives pre-sorted (it is reused across all of
  // a node's children during shared builds).
  thread_local std::vector<NextQueryCount> q_sorted;
  q_sorted.assign(child.begin(), child.end());
  std::sort(q_sorted.begin(), q_sorted.end(), ByQuery);

  double p_total = 0.0;
  for (const NextQueryCount& nc : sorted_parent) {
    p_total += static_cast<double>(nc.count);
  }
  double q_total = 0.0;
  for (const NextQueryCount& nc : q_sorted) {
    q_total += static_cast<double>(nc.count);
  }
  if (p_total <= 0.0 || q_total <= 0.0) return 0.0;

  // Mirrors KlDivergenceLog10: p-side zeros contribute nothing, q-side
  // zeros are floored. Child-only support never contributes (p_i = 0).
  constexpr double kEpsilonFloor = 1e-12;
  double kl = 0.0;
  size_t j = 0;
  for (const NextQueryCount& pc : sorted_parent) {
    while (j < q_sorted.size() && q_sorted[j].query < pc.query) ++j;
    const double pi = static_cast<double>(pc.count) / p_total;
    double qi = (j < q_sorted.size() && q_sorted[j].query == pc.query)
                    ? static_cast<double>(q_sorted[j].count) / q_total
                    : 0.0;
    if (qi < kEpsilonFloor) qi = kEpsilonFloor;
    kl += pi * std::log10(pi / qi);
  }
  return kl;
}

}  // namespace

double PstGrowthKlCounts(std::span<const NextQueryCount> parent,
                         std::span<const NextQueryCount> child) {
  thread_local std::vector<NextQueryCount> p_sorted;
  p_sorted.assign(parent.begin(), parent.end());
  std::sort(p_sorted.begin(), p_sorted.end(), ByQuery);
  return KlFromSortedParent(p_sorted, child);
}

double PstGrowthKl(const ContextEntry& parent, const ContextEntry& child) {
  return PstGrowthKlCounts(parent.nexts, child.nexts);
}

Status Pst::Build(const ContextIndex& index, const PstOptions& options) {
  SQP_RETURN_IF_ERROR(BuildImpl(index, std::span<const PstOptions>(&options, 1),
                                /*shared=*/false));
  // A standalone tree exposes no views: num_views() == 0, is_shared()
  // false, exactly as after InitFromNodes.
  view_options_.clear();
  options_ = options;
  return Status::OK();
}

Status Pst::BuildShared(const ContextIndex& index,
                        std::span<const PstOptions> views) {
  if (views.empty()) {
    return Status::InvalidArgument("BuildShared needs at least one view");
  }
  if (views.size() > kMaxViews) {
    return Status::InvalidArgument("BuildShared supports at most 64 views");
  }
  return BuildImpl(index, views, /*shared=*/true);
}

Status Pst::BuildImpl(const ContextIndex& index,
                      std::span<const PstOptions> views, bool shared) {
  if (index.mode() != ContextIndex::Mode::kSubstring) {
    return Status::InvalidArgument(
        "Pst::Build requires a kSubstring ContextIndex");
  }
  size_t max_view_depth = 0;
  bool any_unbounded = false;
  uint64_t min_view_support = ~uint64_t{0};
  bool any_kl_needed = false;
  for (const PstOptions& view : views) {
    if (view.max_depth != 0 && index.max_context_length() != 0 &&
        index.max_context_length() < view.max_depth) {
      return Status::InvalidArgument(
          "ContextIndex is shallower than the requested PST depth");
    }
    if (view.epsilon < 0.0) {
      return Status::InvalidArgument("epsilon must be >= 0");
    }
    if (view.max_depth == 0) any_unbounded = true;
    max_view_depth = std::max(max_view_depth, view.max_depth);
    min_view_support = std::min(min_view_support, view.min_support);
    if (view.epsilon > 0.0) any_kl_needed = true;
  }
  const size_t shared_depth = any_unbounded ? 0 : max_view_depth;

  nodes_.clear();
  view_masks_.clear();
  view_options_.assign(views.begin(), views.end());
  if (shared) {
    // The maximal tree's own options: the loosest bound on every axis.
    options_ = PstOptions{.epsilon = 0.0,
                          .max_depth = shared_depth,
                          .min_support = min_view_support};
  }

  // Root node: the prior over next queries, pooled across all positions
  // (paper Fig. 3: "the conditional probabilities given the empty sequence e
  // is based on the priori probability of each query").
  nodes_.emplace_back();
  {
    std::unordered_map<QueryId, uint64_t> prior;
    for (size_t i = 0; i < index.size(); ++i) {
      const ContextEntry& entry = index.sorted_entry(i);
      if (entry.context.size() != 1) {
        if (entry.context.size() > 1) break;  // entries sorted by length
        continue;
      }
      // Occurrences of the query at session start (position 0)...
      prior[entry.context[0]] += entry.start_count;
      // ...plus occurrences at any later position (as someone's next query).
      for (const NextQueryCount& nc : entry.nexts) {
        prior[nc.query] += nc.count;
      }
    }
    Node& root = nodes_[0];
    root.nexts.reserve(prior.size());
    for (const auto& [query, count] : prior) {
      root.nexts.push_back(NextQueryCount{query, count});
      root.total_count += count;
    }
    SortNexts(&root.nexts);
  }

  // Maximal candidate pass, walking the index's arena trie instead of
  // re-hashing context vectors: the trie parent of a context is its PST
  // parent, so both the parent entry (for the KL statistic) and the parent
  // node id come straight from the arena. Entries arrive in (length, lex)
  // order, so parents are materialized before their children.
  std::vector<int32_t> node_of_trie(index.num_trie_nodes(), -1);
  node_of_trie[0] = 0;
  std::vector<double> growth_kl(1, 0.0);  // parallel to nodes_
  // Query-sorted parent distributions, cached per parent node: a parent's
  // nexts are re-read once per child during the KL sweep, so the sort
  // happens once per node instead of once per edge.
  std::vector<std::vector<NextQueryCount>> sorted_parent_cache;
  for (size_t i = 0; i < index.size(); ++i) {
    const ContextEntry& entry = index.sorted_entry(i);
    const size_t len = entry.context.size();
    if (shared_depth != 0 && len > shared_depth) break;  // sorted by length
    if (entry.total_count < min_view_support) continue;
    const int32_t trie_node = index.sorted_entry_node(i);
    const int32_t parent_pst = node_of_trie[static_cast<size_t>(
        index.trie_parent(trie_node))];
    SQP_CHECK(parent_pst >= 0);  // suffix closure of substring counting

    double kl = 0.0;
    if (len >= 2 && any_kl_needed) {
      const ContextEntry* parent_entry =
          index.entry_at(index.trie_parent(trie_node));
      SQP_CHECK(parent_entry != nullptr);
      sorted_parent_cache.resize(nodes_.size());
      std::vector<NextQueryCount>& sorted_parent =
          sorted_parent_cache[static_cast<size_t>(parent_pst)];
      if (sorted_parent.empty()) {
        sorted_parent.assign(parent_entry->nexts.begin(),
                             parent_entry->nexts.end());
        std::sort(sorted_parent.begin(), sorted_parent.end(), ByQuery);
      }
      kl = KlFromSortedParent(sorted_parent, entry.nexts);
    }

    Node node;
    node.context = entry.context;
    node.nexts = entry.nexts;
    node.total_count = entry.total_count;
    node.start_count = entry.start_count;
    node.parent = parent_pst;
    node_of_trie[static_cast<size_t>(trie_node)] =
        static_cast<int32_t>(nodes_.size());
    nodes_.push_back(std::move(node));
    growth_kl.push_back(kl);
  }

  // Per-view acceptance. A node is an *exact* state of a view if it passes
  // the view's depth/support bounds and (for |s| >= 2) the KL growth test;
  // suffix closure then propagates membership to every ancestor: ancestors
  // are shorter and have at least the child's support, so the closure
  // fill-ins always satisfy the view's bounds, exactly as in a standalone
  // build.
  std::vector<ViewMask> masks(nodes_.size(), 0);
  masks[0] = views.size() >= kMaxViews ? ~ViewMask{0}
                                       : ((ViewMask{1} << views.size()) - 1);
  for (size_t id = 1; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    const size_t len = node.context.size();
    for (size_t v = 0; v < views.size(); ++v) {
      const PstOptions& view = views[v];
      if (view.max_depth != 0 && len > view.max_depth) continue;
      if (node.total_count < view.min_support) continue;
      // ">=" so that epsilon = 0 keeps every observed context (the paper's
      // Fig. 4 "infinitely bounded VMM"), including fully redundant nodes
      // whose KL is exactly zero.
      if (len >= 2 && view.epsilon > 0.0 && growth_kl[id] < view.epsilon) {
        continue;
      }
      masks[id] |= ViewMask{1} << v;
    }
  }
  for (size_t id = nodes_.size(); id-- > 1;) {
    if (masks[id] != 0) {
      masks[static_cast<size_t>(nodes_[id].parent)] |= masks[id];
    }
  }

  // Compact away nodes no view accepted (parent-before-child order makes
  // this a single remapping pass).
  bool needs_compaction = false;
  for (size_t id = 1; id < nodes_.size(); ++id) {
    if (masks[id] == 0) {
      needs_compaction = true;
      break;
    }
  }
  if (needs_compaction) {
    std::vector<Node> kept;
    std::vector<ViewMask> kept_masks;
    std::vector<int32_t> remap(nodes_.size(), -1);
    kept.reserve(nodes_.size());
    kept_masks.reserve(nodes_.size());
    for (size_t id = 0; id < nodes_.size(); ++id) {
      if (id != 0 && masks[id] == 0) continue;
      remap[id] = static_cast<int32_t>(kept.size());
      Node node = std::move(nodes_[id]);
      if (node.parent >= 0) {
        node.parent = remap[static_cast<size_t>(node.parent)];
      }
      kept.push_back(std::move(node));
      kept_masks.push_back(masks[id]);
    }
    nodes_ = std::move(kept);
    masks = std::move(kept_masks);
  }

  RebuildChildren();
  if (shared) view_masks_ = std::move(masks);
  return Status::OK();
}

void Pst::RebuildChildren() {
  for (Node& node : nodes_) node.children.clear();
  // Nodes are in (length, lex) order, so each parent receives its edges in
  // ascending query order — the sorted-edge invariant holds by construction.
  for (size_t i = 1; i < nodes_.size(); ++i) {
    nodes_[static_cast<size_t>(nodes_[i].parent)].children.push_back(
        Edge{nodes_[i].context.front(), static_cast<int32_t>(i)});
  }
  BuildRootIndex();
}

void Pst::BuildRootIndex() {
  root_child_by_query_.clear();
  const std::vector<Edge>& children = nodes_[0].children;
  if (children.empty()) return;
  root_child_by_query_.assign(children.back().query + 1, -1);
  for (const Edge& edge : children) {
    root_child_by_query_[edge.query] = edge.child;
  }
}

Status Pst::InitFromNodes(std::vector<Node> nodes, const PstOptions& options) {
  if (nodes.empty()) {
    return Status::InvalidArgument("PST needs at least a root node");
  }
  if (!nodes[0].context.empty() || nodes[0].parent != -1) {
    return Status::InvalidArgument("node 0 must be the root (empty context)");
  }
  for (size_t i = 1; i < nodes.size(); ++i) {
    Node& node = nodes[i];
    if (node.context.empty()) {
      return Status::InvalidArgument("non-root node with empty context");
    }
    if (node.parent < 0 || static_cast<size_t>(node.parent) >= i) {
      return Status::InvalidArgument(
          "node parents must precede their children");
    }
    const Node& parent = nodes[static_cast<size_t>(node.parent)];
    if (parent.context.size() + 1 != node.context.size() ||
        !std::equal(node.context.begin() + 1, node.context.end(),
                    parent.context.begin())) {
      return Status::InvalidArgument(
          "node context must extend its parent by one oldest query");
    }
  }
  // Rebuild child edge arrays (callers may supply nodes in any valid
  // parent-before-child order, so sort each array and reject duplicates).
  for (Node& node : nodes) node.children.clear();
  for (size_t i = 1; i < nodes.size(); ++i) {
    nodes[static_cast<size_t>(nodes[i].parent)].children.push_back(
        Edge{nodes[i].context.front(), static_cast<int32_t>(i)});
  }
  for (Node& node : nodes) {
    std::sort(node.children.begin(), node.children.end(),
              [](const Edge& a, const Edge& b) { return a.query < b.query; });
    for (size_t i = 1; i < node.children.size(); ++i) {
      if (node.children[i - 1].query == node.children[i].query) {
        return Status::InvalidArgument("duplicate child edge in node list");
      }
    }
  }
  nodes_ = std::move(nodes);
  options_ = options;
  view_masks_.clear();
  view_options_.clear();
  BuildRootIndex();
  return Status::OK();
}

int32_t Pst::FindChild(int32_t node, QueryId query) const {
  if (node == 0) {
    return query < root_child_by_query_.size()
               ? root_child_by_query_[query]
               : -1;
  }
  const std::vector<Edge>& children =
      nodes_[static_cast<size_t>(node)].children;
  const int32_t at = FindEdgeIndex(std::span<const Edge>(children), query);
  return at < 0 ? -1 : children[static_cast<size_t>(at)].child;
}

const Pst::Node* Pst::MatchLongestSuffix(std::span<const QueryId> context,
                                         size_t* matched_length) const {
  SQP_CHECK(!nodes_.empty());
  int32_t cur = 0;
  size_t matched = 0;
  for (size_t back = 0; back < context.size(); ++back) {
    const int32_t child = FindChild(cur, context[context.size() - 1 - back]);
    if (child < 0) break;
    cur = child;
    ++matched;
  }
  if (matched_length != nullptr) *matched_length = matched;
  return &nodes_[static_cast<size_t>(cur)];
}

const Pst::Node* Pst::MatchLongestSuffixView(std::span<const QueryId> context,
                                             size_t view,
                                             size_t* matched_length) const {
  SQP_CHECK(!nodes_.empty());
  const ViewMask bit = ViewMask{1} << view;
  int32_t cur = 0;
  size_t matched = 0;
  for (size_t back = 0; back < context.size(); ++back) {
    const int32_t child = FindChild(cur, context[context.size() - 1 - back]);
    if (child < 0 || (mask_of(child) & bit) == 0) break;
    cur = child;
    ++matched;
  }
  if (matched_length != nullptr) *matched_length = matched;
  return &nodes_[static_cast<size_t>(cur)];
}

size_t Pst::MatchPath(std::span<const QueryId> context,
                      std::vector<int32_t>* path) const {
  SQP_CHECK(!nodes_.empty());
  path->clear();
  int32_t cur = 0;
  for (size_t back = 0; back < context.size(); ++back) {
    const int32_t child = FindChild(cur, context[context.size() - 1 - back]);
    if (child < 0) break;
    cur = child;
    path->push_back(cur);
  }
  return path->size();
}

const Pst::Node* Pst::FindNode(std::span<const QueryId> context) const {
  size_t matched = 0;
  const Node* node = MatchLongestSuffix(context, &matched);
  if (matched != context.size()) return nullptr;
  return node;
}

uint64_t Pst::num_entries() const {
  uint64_t entries = 0;
  for (const Node& node : nodes_) entries += node.nexts.size();
  return entries;
}

uint64_t Pst::memory_bytes() const {
  uint64_t bytes = 0;
  for (const Node& node : nodes_) {
    bytes += PstNodeBytes(node.context.size(), node.nexts.size(),
                          node.children.size(), /*with_view_mask=*/false);
  }
  bytes += view_masks_.size() * sizeof(ViewMask);
  bytes += root_child_by_query_.size() * sizeof(int32_t);
  return bytes;
}

uint64_t Pst::view_num_states(size_t view) const {
  SQP_CHECK(is_shared());
  const ViewMask bit = ViewMask{1} << view;
  uint64_t states = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (view_masks_[i] & bit) ++states;
  }
  return states;
}

uint64_t Pst::view_num_entries(size_t view) const {
  SQP_CHECK(is_shared());
  const ViewMask bit = ViewMask{1} << view;
  uint64_t entries = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (view_masks_[i] & bit) entries += nodes_[i].nexts.size();
  }
  return entries;
}

uint64_t Pst::view_memory_bytes(size_t view) const {
  SQP_CHECK(is_shared());
  const ViewMask bit = ViewMask{1} << view;
  uint64_t bytes = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if ((view_masks_[i] & bit) == 0) continue;
    const Node& node = nodes_[i];
    size_t view_children = 0;
    for (const Edge& edge : node.children) {
      if (view_masks_[static_cast<size_t>(edge.child)] & bit) {
        ++view_children;
      }
    }
    bytes += PstNodeBytes(node.context.size(), node.nexts.size(),
                          view_children, /*with_view_mask=*/false);
  }
  // The standalone tree would also carry a dense root fan-out index up to
  // its own largest depth-1 query (as memory_bytes does).
  QueryId max_root_query = 0;
  bool any_root_child = false;
  for (const Edge& edge : nodes_[0].children) {
    if (view_masks_[static_cast<size_t>(edge.child)] & bit) {
      max_root_query = edge.query;  // children sorted ascending
      any_root_child = true;
    }
  }
  if (any_root_child) {
    bytes += (static_cast<uint64_t>(max_root_query) + 1) * sizeof(int32_t);
  }
  return bytes;
}

Pst Pst::ExtractView(size_t view) const {
  SQP_CHECK(is_shared());
  const ViewMask bit = ViewMask{1} << view;
  Pst out;
  out.options_ = view_options_[view];
  std::vector<int32_t> remap(nodes_.size(), -1);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if ((view_masks_[i] & bit) == 0) continue;
    remap[i] = static_cast<int32_t>(out.nodes_.size());
    Node node = nodes_[i];
    node.children.clear();
    if (node.parent >= 0) {
      node.parent = remap[static_cast<size_t>(node.parent)];
    }
    out.nodes_.push_back(std::move(node));
  }
  out.RebuildChildren();
  return out;
}

}  // namespace sqp
