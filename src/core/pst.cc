#include "core/pst.h"

#include <algorithm>
#include <unordered_set>

#include "util/hash.h"
#include "util/math_util.h"

namespace sqp {
namespace {

void SortNexts(std::vector<NextQueryCount>* nexts) {
  std::sort(nexts->begin(), nexts->end(),
            [](const NextQueryCount& a, const NextQueryCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.query < b.query;
            });
}

}  // namespace

double PstGrowthKl(const ContextEntry& parent, const ContextEntry& child) {
  // Union support of both distributions, then KL(parent || child).
  std::unordered_map<QueryId, std::pair<double, double>> joint;
  for (const NextQueryCount& nc : parent.nexts) {
    joint[nc.query].first = static_cast<double>(nc.count);
  }
  for (const NextQueryCount& nc : child.nexts) {
    joint[nc.query].second = static_cast<double>(nc.count);
  }
  std::vector<double> p;
  std::vector<double> q;
  p.reserve(joint.size());
  q.reserve(joint.size());
  for (const auto& [query, counts] : joint) {
    p.push_back(counts.first);
    q.push_back(counts.second);
  }
  return KlDivergenceLog10(p, q);
}

Status Pst::Build(const ContextIndex& index, const PstOptions& options) {
  if (index.mode() != ContextIndex::Mode::kSubstring) {
    return Status::InvalidArgument(
        "Pst::Build requires a kSubstring ContextIndex");
  }
  if (options.max_depth != 0 && index.max_context_length() != 0 &&
      index.max_context_length() < options.max_depth) {
    return Status::InvalidArgument(
        "ContextIndex is shallower than the requested PST depth");
  }
  if (options.epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  nodes_.clear();
  options_ = options;

  // Root node: the prior over next queries, pooled across all positions
  // (paper Fig. 3: "the conditional probabilities given the empty sequence e
  // is based on the priori probability of each query").
  nodes_.emplace_back();
  Node& root = nodes_[0];
  {
    std::unordered_map<QueryId, uint64_t> prior;
    for (const ContextEntry* entry : index.SortedEntries()) {
      if (entry->context.size() != 1) continue;
      // Occurrences of the query at session start (position 0)...
      prior[entry->context[0]] += entry->start_count;
      // ...plus occurrences at any later position (as someone's next query).
      for (const NextQueryCount& nc : entry->nexts) {
        prior[nc.query] += nc.count;
      }
    }
    root.nexts.reserve(prior.size());
    for (const auto& [query, count] : prior) {
      root.nexts.push_back(NextQueryCount{query, count});
      root.total_count += count;
    }
    SortNexts(&root.nexts);
  }

  // Candidate selection: every indexed context within depth/support bounds.
  // Length-1 contexts are always states; a longer context s becomes a state
  // iff KL(P(.|parent(s)) || P(.|s)) > epsilon. Adding s also adds all of
  // its suffixes (suffix closure), even if they fail the KL test themselves.
  const std::vector<const ContextEntry*> entries = index.SortedEntries();
  std::unordered_set<std::vector<QueryId>, IdSequenceHash> accepted;
  for (const ContextEntry* entry : entries) {
    const size_t len = entry->context.size();
    if (options.max_depth != 0 && len > options.max_depth) continue;
    if (entry->total_count < options.min_support) continue;
    if (len == 1) {
      accepted.insert(entry->context);
      continue;
    }
    const std::vector<QueryId> parent_key(entry->context.begin() + 1,
                                          entry->context.end());
    const ContextEntry* parent = index.Lookup(parent_key);
    if (parent == nullptr) continue;  // cannot happen for substring indexes
    // ">=" so that epsilon = 0 keeps every observed context (the paper's
    // Fig. 4 "infinitely bounded VMM"), including fully redundant nodes
    // whose KL is exactly zero.
    if (PstGrowthKl(*parent, *entry) >= options.epsilon) {
      // Accept s and its whole suffix chain.
      std::vector<QueryId> suffix = entry->context;
      while (!suffix.empty()) {
        accepted.insert(suffix);
        suffix.erase(suffix.begin());
      }
    }
  }

  // Materialize nodes in increasing context length so parents exist first.
  std::vector<const ContextEntry*> to_add;
  to_add.reserve(accepted.size());
  for (const ContextEntry* entry : entries) {
    if (accepted.count(entry->context) > 0) to_add.push_back(entry);
  }
  // `entries` is already sorted by (length, lexicographic), so `to_add` is
  // in a parent-before-child safe order.
  for (const ContextEntry* entry : to_add) {
    GetOrAddNode(index, entry->context);
  }
  return Status::OK();
}

int32_t Pst::GetOrAddNode(const ContextIndex& index,
                          std::span<const QueryId> context) {
  if (context.empty()) return 0;
  // Find the parent (the suffix without the oldest query), then this node.
  const int32_t parent_id = GetOrAddNode(index, context.subspan(1));
  const QueryId oldest = context.front();
  auto it = nodes_[parent_id].children.find(oldest);
  if (it != nodes_[parent_id].children.end()) return it->second;

  const ContextEntry* entry = index.Lookup(context);
  SQP_CHECK(entry != nullptr);
  Node node;
  node.context.assign(context.begin(), context.end());
  node.nexts = entry->nexts;
  node.total_count = entry->total_count;
  node.start_count = entry->start_count;
  node.parent = parent_id;
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  nodes_[parent_id].children.emplace(oldest, id);
  return id;
}

Status Pst::InitFromNodes(std::vector<Node> nodes, const PstOptions& options) {
  if (nodes.empty()) {
    return Status::InvalidArgument("PST needs at least a root node");
  }
  if (!nodes[0].context.empty() || nodes[0].parent != -1) {
    return Status::InvalidArgument("node 0 must be the root (empty context)");
  }
  for (size_t i = 1; i < nodes.size(); ++i) {
    Node& node = nodes[i];
    if (node.context.empty()) {
      return Status::InvalidArgument("non-root node with empty context");
    }
    if (node.parent < 0 || static_cast<size_t>(node.parent) >= i) {
      return Status::InvalidArgument(
          "node parents must precede their children");
    }
    const Node& parent = nodes[static_cast<size_t>(node.parent)];
    if (parent.context.size() + 1 != node.context.size() ||
        !std::equal(node.context.begin() + 1, node.context.end(),
                    parent.context.begin())) {
      return Status::InvalidArgument(
          "node context must extend its parent by one oldest query");
    }
  }
  // Rebuild child maps.
  for (Node& node : nodes) node.children.clear();
  for (size_t i = 1; i < nodes.size(); ++i) {
    const QueryId oldest = nodes[i].context.front();
    auto [it, inserted] = nodes[static_cast<size_t>(nodes[i].parent)]
                              .children.emplace(oldest,
                                                static_cast<int32_t>(i));
    if (!inserted) {
      return Status::InvalidArgument("duplicate child edge in node list");
    }
  }
  nodes_ = std::move(nodes);
  options_ = options;
  return Status::OK();
}

const Pst::Node* Pst::MatchLongestSuffix(std::span<const QueryId> context,
                                         size_t* matched_length) const {
  SQP_CHECK(!nodes_.empty());
  int32_t cur = 0;
  size_t matched = 0;
  for (size_t back = 0; back < context.size(); ++back) {
    const QueryId q = context[context.size() - 1 - back];
    auto it = nodes_[cur].children.find(q);
    if (it == nodes_[cur].children.end()) break;
    cur = it->second;
    ++matched;
  }
  if (matched_length != nullptr) *matched_length = matched;
  return &nodes_[cur];
}

const Pst::Node* Pst::FindNode(std::span<const QueryId> context) const {
  size_t matched = 0;
  const Node* node = MatchLongestSuffix(context, &matched);
  if (matched != context.size()) return nullptr;
  return node;
}

uint64_t Pst::num_entries() const {
  uint64_t entries = 0;
  for (const Node& node : nodes_) entries += node.nexts.size();
  return entries;
}

uint64_t Pst::memory_bytes() const {
  uint64_t bytes = 0;
  for (const Node& node : nodes_) {
    bytes += sizeof(Node);
    bytes += node.context.size() * sizeof(QueryId);
    bytes += node.nexts.size() * sizeof(NextQueryCount);
    bytes += node.children.size() * (sizeof(QueryId) + sizeof(int32_t) + 16);
  }
  return bytes;
}

}  // namespace sqp
