#ifndef SQP_CORE_MODEL_SNAPSHOT_H_
#define SQP_CORE_MODEL_SNAPSHOT_H_

#include <memory>
#include <span>
#include <vector>

#include "core/prediction_model.h"
#include "core/serve_kernels.h"
#include "core/vmm_model.h"

namespace sqp {

namespace internal {
struct WeightSample;
}  // namespace internal

/// How MVMM weighs its components for an online context. The paper uses
/// the Gaussian-of-edit-distance scheme (Eq. 4); the alternatives exist for
/// ablation studies. The definition lives in the runtime-free walk layer
/// (core/serving_walk.h) so the slim embedded predictor shares it; this is
/// the engine-side spelling.
using MixtureWeighting = serving::MixtureWeighting;

/// Configuration of the Mixture Variable Memory Markov model (paper
/// Section IV-C). The default component set mirrors the paper's experiment:
/// 11 VMMs with epsilon in {0.0, 0.01, ..., 0.1}.
struct MvmmOptions {
  /// Component VMM configurations. Empty = the paper's 11-epsilon default.
  std::vector<VmmOptions> components;

  /// Component weighting scheme (ablation switch; the paper's is default).
  MixtureWeighting weighting = MixtureWeighting::kGaussianEditDistance;

  /// Depth bound applied to default components (0 = unbounded).
  size_t default_max_depth = 0;

  /// Number of training sequences (most frequent first) used to fit the
  /// per-component Gaussian widths sigma_D.
  size_t weight_sample_size = 2000;

  /// Newton iterations for the sigma fit (Eq. 10).
  size_t max_newton_iterations = 25;

  /// The sigma fit stops once an accepted step improves the objective by
  /// less than this relative amount — Newton converges in a handful of
  /// iterations and the remaining budget buys only noise-level gains.
  double convergence_tolerance = 1e-9;

  /// Lower clamp on sigma (the Gaussian degenerates below this).
  double min_sigma = 0.05;

  /// Initial sigma for every component.
  double initial_sigma = 1.0;

  /// When non-empty (size == component count), the Gaussian widths are
  /// taken verbatim and the per-corpus Newton fit is skipped. This is how
  /// a sharded deployment keeps every shard serving with ONE globally
  /// fitted sigma vector (serve/sharded_engine.h) and how a shard rebuild
  /// stays weight-consistent with the rest of the fleet; it also lets
  /// ablations replay a previously fitted weighting exactly.
  std::vector<double> fixed_sigmas;

  /// Worker threads for training (paper Section V-F.1). With at most
  /// Pst::kMaxViews components the trees come from one shared single-pass
  /// build and the threads shard the counting pass and the sigma-fit sample
  /// sweep; beyond that the standalone fallback shards per-component
  /// training itself. 0 = sequential. Results are identical either way.
  size_t training_threads = 0;

  /// Returns the paper's default component set.
  static std::vector<VmmOptions> DefaultComponents(size_t max_depth);
};

/// Diagnostics from the sigma (mixture-weight) optimization.
struct MvmmFitReport {
  size_t iterations = 0;
  double initial_objective = 0.0;
  double final_objective = 0.0;
  bool used_newton = false;  // false = fell back to gradient ascent only
};

/// What a snapshot knows about the scratch capacity its inference needs:
/// published alongside the snapshot so serving threads can reserve every
/// per-thread buffer up front instead of growing them across the first
/// requests (ServingSnapshot::ScratchHint / SnapshotScratch::Prepare).
/// Defined in the walk layer (core/serving_walk.h), where the compact
/// model computes it, so slim callers size scratch without engine headers.
using ScratchSizing = serving::ScratchSizing;

/// Per-thread scratch buffers for snapshot inference. A snapshot itself is
/// immutable; every mutable byte a query touches lives here, so any number
/// of threads can serve off one snapshot with one scratch each.
///
/// Thread-safety: a SnapshotScratch must be used by at most one thread at a
/// time, but carries no state between calls — sharing one instance per
/// thread across snapshots and models is safe.
struct SnapshotScratch {
  std::vector<int32_t> path;
  std::vector<size_t> matched;
  std::vector<double> level_weight;
  std::vector<double> weights;
  std::vector<double> cond_at;
  std::vector<ScoredQuery> raw;
  /// Storage behind the compact walk's epoch-stamped dense accumulator
  /// (core/serving_walk.h); unused by the full snapshot.
  kernels::AccumulatorStorage acc;
  /// Sparse-merge candidate buffer and ranked-list staging of the compact
  /// walk (the raw-pointer walk layer scores into these).
  std::vector<serving::RawHit> walk_raw;
  std::vector<uint32_t> topn_query;
  std::vector<double> topn_score;
  /// Identity of the snapshot this scratch was last Prepare()d for (the
  /// engines' once-per-generation pre-sizing token; perf-only — serving
  /// with an unprepared scratch is always correct).
  const void* prepared_for = nullptr;

  /// Reserves every buffer for `sizing` so steady-state serving performs
  /// no allocations. Idempotent and cheap once capacities are in place.
  void Prepare(const ScratchSizing& sizing) {
    path.reserve(sizing.path_depth);
    level_weight.reserve(sizing.path_depth);
    cond_at.reserve(sizing.path_depth + 1);
    matched.reserve(sizing.num_components);
    weights.reserve(sizing.num_components);
    raw.reserve(sizing.raw_entries);
    walk_raw.reserve(sizing.raw_entries);
    acc.Reserve(sizing.dense_queries);
  }
};

/// The serving contract every publishable model variant implements: an
/// *immutable*, fully-built recommendation state tagged with the corpus
/// version it was trained against. RecommenderEngine publishes
/// shared_ptr<const ServingSnapshot> through one atomic swap, so both the
/// full ModelSnapshot and the quantized CompactSnapshot ride the same seam.
///
/// Thread-safety contract (the invariant every scaling PR builds on):
///  - After construction a snapshot is deeply immutable; any number of
///    threads may call the const methods concurrently with one
///    SnapshotScratch per thread and no other synchronization.
///  - A query is answered from exactly one fully-built snapshot: readers
///    never observe a model mid-build, because a snapshot only becomes
///    reachable by being published *after* its builder returned.
class ServingSnapshot {
 public:
  virtual ~ServingSnapshot() = default;

  /// Ranked top-N next-query recommendation for `context` (the user's
  /// session so far, oldest first). Uncovered contexts yield an empty,
  /// covered=false result. Safe from any thread; `scratch` must not be
  /// shared between concurrent calls.
  virtual Recommendation Recommend(std::span<const QueryId> context,
                                   size_t top_n,
                                   SnapshotScratch* scratch) const = 0;

  /// True iff at least one component matches a non-root state. Safe from
  /// any thread.
  virtual bool Covers(std::span<const QueryId> context) const = 0;

  /// Size accounting of this serving variant (paper Table VII), computed
  /// through core/memory_accounting.h so full and compact footprints are
  /// directly comparable.
  virtual ModelStats Stats() const = 0;

  /// The corpus/dictionary generation this snapshot reflects (e.g. a
  /// retrain counter). Carried, never interpreted.
  uint64_t version() const { return version_; }

  /// Scratch capacities one request against this snapshot can need, so an
  /// engine can pre-size its per-lane scratches once per published
  /// generation (see SnapshotScratch::Prepare). Purely a sizing hint —
  /// zeros are always safe.
  virtual ScratchSizing ScratchHint() const { return {}; }

 protected:
  uint64_t version_ = 0;
};

/// An immutable, fully-trained MVMM serving state: the shared multi-view
/// PST, the fitted per-component sigma weights, and the corpus/dictionary
/// version it was trained against. Built off to the side (possibly on a
/// background thread) and published to readers by swapping a
/// shared_ptr<const ServingSnapshot>; readers hold no hidden mutable state
/// beyond their SnapshotScratch (see the ServingSnapshot contract).
class ModelSnapshot final : public ServingSnapshot {
 public:
  /// Trains a snapshot from `data`. `options.components` (or the default
  /// set) must fit in Pst::kMaxViews — the snapshot is always a shared-tree
  /// build. `version` tags the corpus/dictionary state the snapshot reflects
  /// (e.g. a retrain generation); it is carried, not interpreted.
  static Result<std::shared_ptr<const ModelSnapshot>> Build(
      const TrainingData& data, const MvmmOptions& options,
      uint64_t version = 0);

  /// A snapshot sharing this snapshot's tree (the Pst is shared_ptr-owned,
  /// so no node is copied) but serving with `sigmas` instead of the fitted
  /// ones. Returns InvalidArgument on a component-count mismatch. The
  /// sharded trainer uses this to stamp one global sigma fit onto
  /// independently built per-shard trees.
  Result<std::shared_ptr<const ModelSnapshot>> WithSigmas(
      std::vector<double> sigmas) const;

  /// Mixture recommendation over the shared tree (paper Section IV-C.3).
  Recommendation Recommend(std::span<const QueryId> context, size_t top_n,
                           SnapshotScratch* scratch) const override;

  /// Smoothed mixture conditional P(next | context). Full-precision only:
  /// the compact serving variant drops the exact counts this needs.
  double ConditionalProb(std::span<const QueryId> context, QueryId next,
                         SnapshotScratch* scratch) const;

  /// True iff at least one component matches a non-root state.
  bool Covers(std::span<const QueryId> context) const override;

  /// Normalized per-component mixture weights for `context`.
  std::vector<double> MixtureWeights(std::span<const QueryId> context,
                                     SnapshotScratch* scratch) const;

  /// Merged-tree accounting (paper Table VII / Section V-F.2).
  ModelStats Stats() const override;
  ScratchSizing ScratchHint() const override { return scratch_hint_; }
  const std::shared_ptr<const Pst>& pst() const { return pst_; }
  const std::vector<double>& sigmas() const { return sigmas_; }
  const MvmmFitReport& fit_report() const { return fit_report_; }
  const MvmmOptions& options() const { return options_; }
  size_t vocabulary_size() const { return vocabulary_size_; }
  size_t num_components() const { return options_.components.size(); }

  /// One shared-tree walk: fills `path` with the matched chain and
  /// `matched` with each component's matched length (the deepest path node
  /// carrying the component's view bit). Returns the full-tree match depth.
  size_t SharedMatchDepths(std::span<const QueryId> context,
                           std::vector<int32_t>* path,
                           std::vector<size_t>* matched) const;

 private:
  ModelSnapshot() = default;

  /// Unnormalized component weights under the configured weighting scheme.
  void RawWeights(size_t context_len, const std::vector<size_t>& matched,
                  std::vector<double>* weights) const;

  /// Escape weight of component c for a state matched at `matched` of
  /// `context_len` queries (Eq. 5-6, as VmmModel::Match).
  double EscapeWeight(const Pst::Node& state, size_t context_len,
                      size_t matched, size_t component) const;

  /// Eq. 3 chain for one pseudo-test session off shared-tree walks.
  void BuildWeightSample(const AggregatedSession& session,
                         internal::WeightSample* sample) const;

  void FitSigmas(const std::vector<AggregatedSession>& sessions);

  MvmmOptions options_;
  std::shared_ptr<const Pst> pst_;
  std::vector<double> sigmas_;
  MvmmFitReport fit_report_;
  size_t vocabulary_size_ = 0;
  ScratchSizing scratch_hint_;
};

namespace internal {

/// One pseudo-test sequence of the sigma fit (Eq. 8/9): its normalized
/// sampling weight plus per-component edit distances and generative
/// probabilities.
struct WeightSample {
  double weight = 0.0;                // P(X_T), normalized by the fitter
  std::vector<double> edit_distance;  // d_D(X_T) per component
  std::vector<double> sequence_prob;  // \hat{P}_D(X_T) per component
};

/// The sigma-fit sample pool: the most frequent multi-query sessions,
/// deterministically ordered (frequency desc, then lexicographic).
std::vector<const AggregatedSession*> SelectWeightPool(
    const std::vector<AggregatedSession>& sessions, size_t sample_size);

/// Maximizes f(sigma) = sum_X P(X) log sum_D g(d_D; sigma_D) P_D(X) by
/// damped Newton with analytic derivatives (Eq. 7-10), with a backtracking
/// gradient-ascent fallback. Normalizes the sample weights in place;
/// `sigmas` carries the initial point and receives the fitted values.
/// Shared by ModelSnapshot::Build and the MvmmModel standalone fallback so
/// the two fits cannot drift.
MvmmFitReport FitSigmasFromSamples(std::vector<WeightSample>* samples,
                                   const MvmmOptions& options,
                                   std::vector<double>* sigmas);

/// Deduplicates (query, score) contributions by query and fills the top-N
/// ranking (score desc, query asc). `raw` is scratch owned by the caller.
void MergeAndRank(std::vector<ScoredQuery>* raw, size_t top_n,
                  Recommendation* rec);

/// The ranking tail of MergeAndRank for already-deduplicated candidates
/// (each query at most once in `merged`): fills the top-N ranking
/// (score desc, query asc). The ranking order is a strict total order, so
/// the result is independent of the input order — the dense-accumulator
/// walk hands its touched list over in first-touch order and still ranks
/// identically to the sort-merge path.
void RankTopN(std::vector<ScoredQuery>* merged, size_t top_n,
              Recommendation* rec);

/// Per-thread reusable inference scratch. Scratch carries no state between
/// calls, so sharing one instance per thread across snapshots/models is
/// safe.
inline SnapshotScratch& ThreadScratch() {
  thread_local SnapshotScratch scratch;
  return scratch;
}

/// Depth a shared kSubstring ContextIndex must cover for `options`'
/// components (0 = unbounded), i.e. the deepest component bound.
size_t SharedIndexDepth(const MvmmOptions& options);

/// Unnormalized per-component weights for a context of `context_len`
/// queries whose component matched lengths are `matched` (Eq. 4 plus the
/// ablation variants, including the all-underflow depth fallback). Shared
/// by ModelSnapshot and the MvmmModel standalone fallback so the weighting
/// scheme cannot drift between the two paths.
void ComputeRawWeights(MixtureWeighting weighting,
                       const std::vector<double>& sigmas, size_t context_len,
                       const std::vector<size_t>& matched,
                       std::vector<double>* weights);

}  // namespace internal
}  // namespace sqp

#endif  // SQP_CORE_MODEL_SNAPSHOT_H_
