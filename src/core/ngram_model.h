#ifndef SQP_CORE_NGRAM_MODEL_H_
#define SQP_CORE_NGRAM_MODEL_H_

#include <unordered_map>

#include "core/prediction_model.h"
#include "util/hash.h"

namespace sqp {

/// Configuration of the variable-length N-gram model.
struct NgramOptions {
  /// Longest context stored as a state (0 = unbounded). The paper's
  /// variable-length N-gram keeps a series of fixed-N models; contexts
  /// longer than the longest trained state are simply uncovered.
  size_t max_context_length = 0;
};

/// The naive **variable-length N-gram** model (paper Section IV-A): for a
/// user context of i-1 queries, predicts from the i-gram model, i.e. only an
/// exact match of the *entire* context (as a session prefix) counts as
/// evidence. With context length 1 this degenerates to Adjacency restricted
/// to prefix positions. High accuracy on matched contexts; very low
/// coverage on long ones (paper Figs. 8, 10, 11).
class NgramModel : public PredictionModel {
 public:
  explicit NgramModel(NgramOptions options = {});

  std::string_view Name() const override { return "N-gram"; }
  Status Train(const TrainingData& data) override;
  Recommendation Recommend(std::span<const QueryId> context,
                           size_t top_n) const override;
  bool Covers(std::span<const QueryId> context) const override;
  double ConditionalProb(std::span<const QueryId> context,
                         QueryId next) const override;
  ModelStats Stats() const override;

  const NgramOptions& options() const { return options_; }

 private:
  const ContextEntry* Find(std::span<const QueryId> context) const;

  NgramOptions options_;
  std::unordered_map<std::vector<QueryId>, ContextEntry, IdSequenceHash>
      table_;
  size_t vocabulary_size_ = 0;
};

}  // namespace sqp

#endif  // SQP_CORE_NGRAM_MODEL_H_
