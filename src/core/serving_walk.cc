// The runtime-free compact serving walk (see serving_walk.h for the
// layering contract). Every function here is an exact port of the
// pre-split CompactServingBase / model_snapshot arithmetic — same
// operations in the same order, so both consumers (engine tiers and the
// slim embedded predictor) serve bit-identical recommendations.
//
// Discipline: no allocation, no exceptions, no statics with dynamic
// initializers, no iostreams. <algorithm> is used for the header-only
// lower_bound/sort/min/max; <cmath> for libm.

#include "core/serving_walk.h"

#include <algorithm>

namespace sqp::serving {

namespace {

constexpr KernelTable kScalarTable = {
    &ScoreRunScalar<uint16_t>,
    &ScoreRunScalar<uint32_t>,
};

inline uint64_t MaskOf(const ModelRef& m, size_t node) {
  return m.mask64 != nullptr ? m.mask64[node] : uint64_t{m.mask16[node]};
}

/// Depth-1 step: the root's dense fan-out index, one O(1) array load
/// (absent = node 0 = -1).
template <typename QT, typename NT>
inline int32_t RootChildIn(const PoolsRef<QT, NT>& pools, uint32_t query) {
  if (query >= pools.root_index_size) return -1;
  const int32_t child = static_cast<int32_t>(pools.root_child_by_query[query]);
  return child == 0 ? -1 : child;
}

/// Child of non-root `node` along `query` in the CSR edge pool, or -1.
/// The root is served by RootChildIn, which keeps this loop branch-lean.
template <typename QT, typename NT>
inline int32_t FindChildIn(const ModelRef& m, const PoolsRef<QT, NT>& pools,
                           int32_t node, uint32_t query) {
  const uint32_t begin = m.child_begin[static_cast<size_t>(node)];
  const uint32_t end = m.child_begin[static_cast<size_t>(node) + 1];
  const QT* first = pools.edge_query + begin;
  const QT* last = pools.edge_query + end;
  const QT* at = std::lower_bound(first, last, static_cast<QT>(query));
  if (at == last || *at != static_cast<QT>(query)) return -1;
  return static_cast<int32_t>(
      pools.edge_child[static_cast<size_t>(begin + (at - first))]);
}

/// Longest-suffix walk recording the matched chain. Prefetches each
/// matched node's edge run and nexts slice so the binary search and the
/// scoring pass hit warm lines.
template <typename QT, typename NT>
size_t MatchPathIn(const ModelRef& m, const PoolsRef<QT, NT>& pools,
                   const uint32_t* context, size_t len, int32_t* path,
                   size_t path_capacity) {
  if (len == 0 || path_capacity == 0) return 0;
  int32_t cur = RootChildIn(pools, context[len - 1]);
  if (cur < 0) return 0;
  size_t depth = 0;
  path[depth++] = cur;
  for (size_t back = 1; back < len && depth < path_capacity; ++back) {
    const size_t id = static_cast<size_t>(cur);
    // Warm the matched node's edge run (the next lookup binary-searches
    // it) and its nexts slice (the scoring pass streams it).
    PrefetchRead(pools.edge_query + m.child_begin[id]);
    PrefetchRead(pools.next_query + m.next_begin[id]);
    PrefetchRead(m.next_code + m.next_begin[id]);
    const int32_t child = FindChildIn(m, pools, cur, context[len - 1 - back]);
    if (child < 0) break;
    cur = child;
    path[depth++] = cur;
  }
  return depth;
}

/// Strict total ranking order of the result lists: score desc, query asc.
inline bool RankBefore(double score_a, uint32_t query_a, double score_b,
                       uint32_t query_b) {
  if (score_a != score_b) return score_a > score_b;
  return query_a < query_b;
}

/// Streaming top-N selection into the caller's arrays, kept sorted under
/// RankBefore. Selection under a strict total order has a unique result,
/// so this produces exactly the list the legacy nth_element + sort
/// (model_snapshot's RankTopN) produced from the same candidates.
struct TopNSink {
  uint32_t* queries;
  double* scores;
  size_t top_n;
  size_t count = 0;

  inline void Offer(uint32_t query, double score) {
    if (count == top_n) {
      if (top_n == 0 ||
          !RankBefore(score, query, scores[count - 1], queries[count - 1])) {
        return;
      }
      --count;  // evict the current last
    }
    size_t pos = count;
    while (pos > 0 && RankBefore(score, query, scores[pos - 1],
                                 queries[pos - 1])) {
      queries[pos] = queries[pos - 1];
      scores[pos] = scores[pos - 1];
      --pos;
    }
    queries[pos] = query;
    scores[pos] = score;
    ++count;
  }
};

template <typename QT, typename NT>
WalkResult RecommendIn(const ModelRef& m, const PoolsRef<QT, NT>& pools,
                       const uint32_t* context, size_t len, size_t top_n,
                       const KernelTable& kernels, bool use_dense,
                       WalkScratch* scratch, uint32_t* out_queries,
                       double* out_scores) {
  WalkResult result;
  if (len == 0) return result;

  const size_t depth = MatchPathIn(m, pools, context, len, scratch->path,
                                   scratch->path_capacity);
  if (depth == 0) return result;
  const int32_t* path = scratch->path;

  // Per-component matched depths off the membership masks: view membership
  // is ancestor-closed, so each component's bit covers a prefix of the
  // path (exactly ModelSnapshot::SharedMatchDepths).
  const size_t k = m.num_components;
  size_t* matched = scratch->matched;
  for (size_t c = 0; c < k; ++c) {
    const uint64_t bit = uint64_t{1} << c;
    size_t depth_c = depth;
    while (depth_c > 0 &&
           (MaskOf(m, static_cast<size_t>(path[depth_c - 1])) & bit) == 0) {
      --depth_c;
    }
    matched[c] = depth_c;
  }

  double* weights = scratch->weights;
  ComputeWeights(m.weighting, m.sigmas, k, len, matched, weights);
  NormalizeWeights(weights, k);

  // Escape-weighted per-level accumulation, then one pass over the CSR
  // nexts slices — operation-for-operation the full snapshot's ranking
  // loop, with `(code << shift)` standing in for the exact count.
  double* level_weight = scratch->level_weight;
  for (size_t d = 0; d < depth; ++d) level_weight[d] = 0.0;
  for (size_t c = 0; c < k; ++c) {
    if (weights[c] <= 0.0 || matched[c] == 0) continue;
    const int32_t state = path[matched[c] - 1];
    double lw = weights[c] * EscapeWeight(m, state, len - matched[c], c);
    const double esc = m.component_escape[c];
    for (size_t d = matched[c]; d >= 1; --d) {
      level_weight[d - 1] += lw;
      lw *= esc;
    }
  }

  if (use_dense) {
    // Dense level-major accumulation: each level's nexts run streams
    // through the scoring kernel into the epoch-stamped per-query array —
    // no per-entry push and no sort-merge. Summing per query in level
    // order is exactly the order the (stable) sort-merge sums in, and
    // ldexp folds the dequantization shift into the scale exactly
    // (power-of-two scaling), so scores and top-N lists are bit-identical
    // to the sparse path.
    DenseAccumulator* acc = scratch->acc;
    for (size_t d = 0; d < depth; ++d) {
      if (level_weight[d] <= 0.0) continue;
      const size_t node = static_cast<size_t>(path[d]);
      if (m.total_count[node] == 0) continue;
      if (d + 1 < depth) {
        // Warm the next level's slice while this one streams.
        const size_t nn = static_cast<size_t>(path[d + 1]);
        PrefetchRead(pools.next_query + m.next_begin[nn]);
        PrefetchRead(m.next_code + m.next_begin[nn]);
      }
      const double scale =
          std::ldexp(level_weight[d] / static_cast<double>(m.total_count[node]),
                     m.count_shift[node]);
      const uint32_t begin = m.next_begin[node];
      ScoreRun(kernels, pools.next_query + begin, m.next_code + begin,
               m.next_begin[node + 1] - begin, scale, acc);
    }
    if (acc->touched_count == 0) return result;
    TopNSink sink{out_queries, out_scores, top_n};
    for (size_t i = 0; i < acc->touched_count; ++i) {
      const uint32_t q = acc->touched[i];
      sink.Offer(q, acc->score[q]);
    }
    result.count = sink.count;
    result.matched_length = depth;
    result.covered = true;
    return result;
  }

  // Sparse sort-merge: per-entry push, order-preserving sort by
  // (query, seq), run summation in push order. Kept as the fallback for
  // pathologically sparse id spaces and as the reference the kernel
  // equivalence suite pins the dense walk against.
  RawHit* raw = scratch->raw;
  size_t num_raw = 0;
  for (size_t d = 0; d < depth; ++d) {
    if (level_weight[d] <= 0.0) continue;
    const size_t node = static_cast<size_t>(path[d]);
    if (m.total_count[node] == 0) continue;
    const double scale =
        level_weight[d] / static_cast<double>(m.total_count[node]);
    const uint8_t shift = m.count_shift[node];
    const uint32_t begin = m.next_begin[node];
    const uint32_t end = m.next_begin[node + 1];
    for (uint32_t i = begin; i < end && num_raw < scratch->raw_capacity;
         ++i) {
      const uint64_t count = static_cast<uint64_t>(m.next_code[i]) << shift;
      raw[num_raw] = RawHit{static_cast<uint32_t>(pools.next_query[i]),
                            static_cast<uint32_t>(num_raw),
                            scale * static_cast<double>(count)};
      ++num_raw;
    }
  }
  if (num_raw == 0) return result;

  // (query asc, seq asc) == the legacy stable_sort-by-query order.
  std::sort(raw, raw + num_raw, [](const RawHit& a, const RawHit& b) {
    if (a.query != b.query) return a.query < b.query;
    return a.seq < b.seq;
  });
  TopNSink sink{out_queries, out_scores, top_n};
  for (size_t i = 0; i < num_raw;) {
    const uint32_t query = raw[i].query;
    double score = raw[i].score;
    for (++i; i < num_raw && raw[i].query == query; ++i) {
      score += raw[i].score;
    }
    sink.Offer(query, score);
  }
  result.count = sink.count;
  result.matched_length = depth;
  result.covered = true;
  return result;
}

}  // namespace

const KernelTable& ScalarKernels() { return kScalarTable; }

void FinalizeModelRef(ModelRef* m, double* escape_pow_storage,
                      uint32_t* depth_scratch) {
  // Escape power tables: the same left-to-right multiply chain as the old
  // per-request loop (1.0 * e * e * ...), so every looked-up power is
  // bit-identical to what the loop produced.
  const size_t k = m->num_components;
  for (size_t c = 0; c < k; ++c) {
    double* row = escape_pow_storage + c * (kEscapePowCap + 1);
    row[0] = 1.0;
    for (size_t j = 1; j <= kEscapePowCap; ++j) {
      row[j] = row[j - 1] * m->component_escape[c];
    }
  }
  m->escape_pow = escape_pow_storage;

  // Dense-accumulator bound: one past the largest query id in the nexts
  // pool. Blob query ids are not range-validated, so a hand-built wide
  // blob could claim an arbitrarily sparse id space; past the limit the
  // walk keeps the sort-merge instead of sizing an O(id space) array.
  uint64_t bound = 0;
  if (m->narrow_ids) {
    for (size_t i = 0; i < m->num_entries; ++i) {
      bound = std::max(bound,
                       static_cast<uint64_t>(m->narrow.next_query[i]) + 1);
    }
  } else {
    for (size_t i = 0; i < m->num_entries; ++i) {
      bound = std::max(bound,
                       static_cast<uint64_t>(m->wide.next_query[i]) + 1);
    }
  }
  m->scored_query_bound = bound;
  m->dense_merge = bound <= kDenseQueryBoundLimit;

  // The derivations below run before the load path's structural
  // validation has vetted a blob, so they must stay in-bounds on
  // malformed CSR offsets (a bad blob merely mis-sizes hints here and is
  // then rejected by validation).
  m->max_next_run = 0;
  for (size_t node = 0; node < m->num_nodes; ++node) {
    if (m->next_begin[node + 1] > m->next_begin[node]) {
      m->max_next_run = std::max(
          m->max_next_run, m->next_begin[node + 1] - m->next_begin[node]);
    }
  }

  // Tree depth for path-array pre-sizing: ids are parent-before-child in
  // every well-formed layout, so one forward sweep settles all depths.
  size_t max_depth = 0;
  if (m->num_nodes > 0 && depth_scratch != nullptr) {
    for (size_t i = 0; i < m->num_nodes; ++i) depth_scratch[i] = 0;
    const auto sweep = [&](const auto* edge_child) {
      for (size_t node = 0; node < m->num_nodes; ++node) {
        const size_t end =
            std::min<size_t>(m->child_begin[node + 1], m->num_edges);
        for (size_t e = m->child_begin[node]; e < end; ++e) {
          const size_t child = static_cast<size_t>(edge_child[e]);
          if (child > node && child < m->num_nodes) {
            depth_scratch[child] = depth_scratch[node] + 1;
            max_depth = std::max<size_t>(max_depth, depth_scratch[child]);
          }
        }
      }
    };
    if (m->narrow_ids) {
      sweep(m->narrow.edge_child);
    } else {
      sweep(m->wide.edge_child);
    }
  }
  m->sizing.path_depth = max_depth;
  m->sizing.num_components = k;
  m->sizing.raw_entries = std::min<size_t>(m->num_entries, size_t{4096});
  m->sizing.dense_queries =
      m->dense_merge ? static_cast<size_t>(m->scored_query_bound) : 0;
}

size_t MatchPath(const ModelRef& m, const uint32_t* context, size_t len,
                 int32_t* path, size_t path_capacity) {
  return m.narrow_ids
             ? MatchPathIn(m, m.narrow, context, len, path, path_capacity)
             : MatchPathIn(m, m.wide, context, len, path, path_capacity);
}

bool Covers(const ModelRef& m, const uint32_t* context, size_t len) {
  if (len == 0) return false;
  return (m.narrow_ids ? RootChildIn(m.narrow, context[len - 1])
                       : RootChildIn(m.wide, context[len - 1])) >= 0;
}

void ComputeWeights(MixtureWeighting weighting, const double* sigmas,
                    size_t k, size_t context_len, const size_t* matched,
                    double* weights) {
  for (size_t c = 0; c < k; ++c) weights[c] = 0.0;
  switch (weighting) {
    case MixtureWeighting::kGaussianEditDistance: {
      for (size_t c = 0; c < k; ++c) {
        // The matched state's context is the trailing matched[c] queries
        // of the online context, so the edit distance degenerates to the
        // number of dropped prefix queries.
        const double d = static_cast<double>(context_len - matched[c]);
        weights[c] = GaussianPdf(d, sigmas[c]);
      }
      // With a tightly fitted sigma the Gaussian can underflow for every
      // component (all matches far from the context); fall back to
      // weighting by match depth so the mixture stays well defined.
      double total = 0.0;
      for (size_t c = 0; c < k; ++c) total += weights[c];
      if (total <= 1e-280) {
        for (size_t c = 0; c < k; ++c) {
          weights[c] = 1.0 + static_cast<double>(matched[c]);
        }
      }
      break;
    }
    case MixtureWeighting::kUniform:
      for (size_t c = 0; c < k; ++c) weights[c] = 1.0;
      break;
    case MixtureWeighting::kLongestMatch: {
      size_t best = 0;
      for (size_t c = 0; c < k; ++c) best = std::max(best, matched[c]);
      for (size_t c = 0; c < k; ++c) {
        weights[c] = matched[c] == best ? 1.0 : 0.0;
      }
      break;
    }
  }
}

void NormalizeWeights(double* weights, size_t k) {
  double total = 0.0;
  for (size_t c = 0; c < k; ++c) total += weights[c];
  if (total <= 0.0) return;
  for (size_t c = 0; c < k; ++c) weights[c] /= total;
}

double EscapePow(const ModelRef& m, size_t component, size_t power) {
  const double* row = m.escape_pow + component * (kEscapePowCap + 1);
  if (power <= kEscapePowCap) return row[power];
  // Contexts deeper than the table cap are vanishingly rare; extend the
  // chain from the table's last entry so the rounding sequence matches
  // the pre-table loop exactly.
  double escape = row[kEscapePowCap];
  const double base = m.component_escape[component];
  for (size_t j = kEscapePowCap; j < power; ++j) escape *= base;
  return escape;
}

double EscapeWeight(const ModelRef& m, int32_t node, size_t dropped,
                    size_t component) {
  if (dropped == 0) return 1.0;
  double escape = EscapePow(m, component, dropped - 1);
  const size_t id = static_cast<size_t>(node);
  // The same branch EscapeMass takes on exact counts: a real (non-root)
  // state with observed session starts contributes start/total, anything
  // else the component default.
  if (node != 0 && m.total_count[id] > 0 && m.start_count[id] > 0) {
    escape *= static_cast<double>(m.start_count[id]) /
              static_cast<double>(m.total_count[id]);
  } else {
    escape *= m.component_escape[component];
  }
  return escape;
}

WalkResult RecommendTopN(const ModelRef& m, const uint32_t* context,
                         size_t len, size_t top_n,
                         const KernelTable& kernels, bool use_dense,
                         WalkScratch* scratch, uint32_t* out_queries,
                         double* out_scores) {
  return m.narrow_ids
             ? RecommendIn(m, m.narrow, context, len, top_n, kernels,
                           use_dense, scratch, out_queries, out_scores)
             : RecommendIn(m, m.wide, context, len, top_n, kernels,
                           use_dense, scratch, out_queries, out_scores);
}

}  // namespace sqp::serving
