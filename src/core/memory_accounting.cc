#include "core/memory_accounting.h"

#include "core/pst.h"
#include "log/types.h"

namespace sqp {

uint64_t PstNodeBytes(size_t context_length, size_t num_nexts,
                      size_t num_children, bool with_view_mask) {
  uint64_t bytes = sizeof(Pst::Node);
  bytes += static_cast<uint64_t>(context_length) * sizeof(QueryId);
  bytes += static_cast<uint64_t>(num_nexts) * sizeof(NextQueryCount);
  bytes += static_cast<uint64_t>(num_children) * sizeof(Pst::Edge);
  if (with_view_mask) bytes += sizeof(Pst::ViewMask);
  return bytes;
}

uint64_t ContextTableBytes(uint64_t num_states, uint64_t num_entries,
                           uint64_t num_key_ids) {
  return num_states * (sizeof(ContextEntry) + kHashSlotOverheadBytes) +
         num_key_ids * sizeof(QueryId) +
         num_entries * sizeof(NextQueryCount);
}

}  // namespace sqp
