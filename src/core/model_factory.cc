#include "core/model_factory.h"

#include "core/adjacency_model.h"
#include "core/cooccurrence_model.h"

namespace sqp {

std::string_view ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kAdjacency:
      return "Adjacency";
    case ModelKind::kCooccurrence:
      return "Co-occurrence";
    case ModelKind::kNgram:
      return "N-gram";
    case ModelKind::kVmm:
      return "VMM";
    case ModelKind::kMvmm:
      return "MVMM";
    case ModelKind::kClickCluster:
      return "Click-cluster";
    case ModelKind::kHmm:
      return "HMM";
  }
  return "Unknown";
}

std::unique_ptr<PredictionModel> CreateModel(const ModelConfig& config) {
  switch (config.kind) {
    case ModelKind::kAdjacency:
      return std::make_unique<AdjacencyModel>();
    case ModelKind::kCooccurrence:
      return std::make_unique<CooccurrenceModel>();
    case ModelKind::kNgram:
      return std::make_unique<NgramModel>(config.ngram);
    case ModelKind::kVmm:
      return std::make_unique<VmmModel>(config.vmm);
    case ModelKind::kMvmm:
      return std::make_unique<MvmmModel>(config.mvmm);
    case ModelKind::kClickCluster:
      return std::make_unique<ClickClusterModel>(config.click_cluster);
    case ModelKind::kHmm:
      return std::make_unique<HmmModel>(config.hmm);
  }
  return nullptr;
}

std::vector<std::unique_ptr<PredictionModel>> CreatePaperSuite(
    size_t vmm_max_depth) {
  std::vector<std::unique_ptr<PredictionModel>> models;
  models.push_back(std::make_unique<AdjacencyModel>());
  models.push_back(std::make_unique<CooccurrenceModel>());
  models.push_back(std::make_unique<NgramModel>());
  for (double epsilon : {0.0, 0.05, 0.1}) {
    VmmOptions vmm;
    vmm.epsilon = epsilon;
    vmm.max_depth = vmm_max_depth;
    models.push_back(std::make_unique<VmmModel>(vmm));
  }
  MvmmOptions mvmm;
  mvmm.default_max_depth = vmm_max_depth;
  models.push_back(std::make_unique<MvmmModel>(mvmm));
  return models;
}

Status TrainAll(const std::vector<std::unique_ptr<PredictionModel>>& models,
                const TrainingData& data) {
  for (const auto& model : models) {
    SQP_RETURN_IF_ERROR(model->Train(data));
  }
  return Status::OK();
}

}  // namespace sqp
