#include "core/serialization.h"

#include <cstring>
#include <filesystem>
#include <system_error>
#include <fstream>

#include "util/byte_io.h"
#include "util/string_util.h"

namespace sqp {
namespace {

// Field-level I/O goes through util/byte_io.h (little-endian on disk,
// truncation-safe reads) — the same helpers core/snapshot_io.cc uses, so
// the repo has exactly one byte-order convention.
constexpr char kVmmMagic[8] = {'S', 'Q', 'P', 'V', 'M', 'M', '0', '1'};

}  // namespace

Status SaveVmmModel(const VmmModel& model, const std::string& path) {
  if (!model.trained_) {
    return Status::FailedPrecondition("cannot save an untrained VMM");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  out.write(kVmmMagic, sizeof(kVmmMagic));
  ByteWriter w(&out);
  w.F64(model.options_.epsilon);
  w.U64(model.options_.max_depth);
  w.U64(model.options_.min_support);
  w.F64(model.options_.default_escape);
  w.U64(model.vocabulary_size_);
  // A component of a shared multi-view tree persists only its own view,
  // materialized as a standalone tree (the on-disk format is unchanged).
  Pst extracted;
  const Pst* tree = &model.pst_;
  if (model.shared_pst_ != nullptr) {
    extracted = model.shared_pst_->ExtractView(model.view_);
    tree = &extracted;
  }
  const auto& nodes = tree->nodes();
  w.U64(nodes.size());
  for (const Pst::Node& node : nodes) {
    w.I32(node.parent);
    w.U32(static_cast<uint32_t>(node.context.size()));
    for (QueryId q : node.context) w.U32(q);
    w.U64(node.total_count);
    w.U64(node.start_count);
    w.U32(static_cast<uint32_t>(node.nexts.size()));
    for (const NextQueryCount& nc : node.nexts) {
      w.U32(nc.query);
      w.U64(nc.count);
    }
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadVmmModel(const std::string& path, VmmModel* model) {
  std::error_code ec;
  const uintmax_t file_size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("cannot stat " + path);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  char magic[8];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kVmmMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("bad VMM file magic: " + path);
  }
  ByteReader r(&in);
  VmmOptions options;
  uint64_t max_depth = 0;
  uint64_t vocab = 0;
  uint64_t node_count = 0;
  if (!r.F64(&options.epsilon) || !r.U64(&max_depth) ||
      !r.U64(&options.min_support) || !r.F64(&options.default_escape) ||
      !r.U64(&vocab) || !r.U64(&node_count)) {
    return Status::InvalidArgument("truncated VMM header: " + path);
  }
  // Harden against corrupted size fields: every node occupies at least 28
  // bytes on disk, so counts larger than the file itself are corruption,
  // not data. The same bound guards the per-node vector lengths below.
  if (!(options.epsilon >= 0.0) || max_depth > file_size ||
      node_count > file_size / 28 || vocab == 0) {
    return Status::InvalidArgument("corrupt VMM header fields: " + path);
  }
  options.max_depth = static_cast<size_t>(max_depth);
  std::vector<Pst::Node> nodes;
  nodes.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    Pst::Node node;
    uint32_t context_len = 0;
    if (!r.I32(&node.parent) || !r.U32(&context_len)) {
      return Status::InvalidArgument("truncated VMM node header");
    }
    if (context_len > file_size / 4) {
      return Status::InvalidArgument("corrupt VMM node context length");
    }
    node.context.resize(context_len);
    for (uint32_t j = 0; j < context_len; ++j) {
      if (!r.U32(&node.context[j])) {
        return Status::InvalidArgument("truncated VMM node context");
      }
      if (node.context[j] >= vocab) {
        return Status::InvalidArgument("corrupt VMM context query id");
      }
    }
    uint32_t next_count = 0;
    if (!r.U64(&node.total_count) || !r.U64(&node.start_count) ||
        !r.U32(&next_count)) {
      return Status::InvalidArgument("truncated VMM node counts");
    }
    if (next_count > file_size / 12) {
      return Status::InvalidArgument("corrupt VMM next-count length");
    }
    node.nexts.resize(next_count);
    uint64_t sum = 0;
    for (uint32_t j = 0; j < next_count; ++j) {
      if (!r.U32(&node.nexts[j].query) || !r.U64(&node.nexts[j].count)) {
        return Status::InvalidArgument("truncated VMM next-count entry");
      }
      if (node.nexts[j].query >= vocab ||
          node.nexts[j].count > UINT64_MAX - sum) {
        return Status::InvalidArgument("corrupt VMM next-count entry");
      }
      sum += node.nexts[j].count;
      if (j > 0 && (node.nexts[j - 1].count < node.nexts[j].count ||
                    (node.nexts[j - 1].count == node.nexts[j].count &&
                     node.nexts[j - 1].query >= node.nexts[j].query))) {
        return Status::InvalidArgument("corrupt VMM next-count ordering");
      }
    }
    // The persisted total must equal the sum of the entries, and session
    // starts cannot exceed occurrences.
    if (node.total_count != sum || node.start_count > node.total_count) {
      return Status::InvalidArgument("inconsistent VMM node counts");
    }
    nodes.push_back(std::move(node));
  }

  VmmModel loaded(options);
  PstOptions pst_options;
  pst_options.epsilon = options.epsilon;
  pst_options.max_depth = options.max_depth;
  pst_options.min_support = options.min_support;
  SQP_RETURN_IF_ERROR(
      loaded.pst_.InitFromNodes(std::move(nodes), pst_options));
  loaded.vocabulary_size_ = static_cast<size_t>(vocab);
  loaded.trained_ = true;
  *model = std::move(loaded);
  return Status::OK();
}

Status SaveDictionary(const QueryDictionary& dictionary,
                      const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  for (size_t id = 0; id < dictionary.size(); ++id) {
    out << dictionary.Text(static_cast<QueryId>(id)) << '\n';
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status LoadDictionary(const std::string& path, QueryDictionary* dictionary) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  QueryDictionary loaded;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    loaded.Intern(line);
  }
  *dictionary = std::move(loaded);
  return Status::OK();
}

}  // namespace sqp
