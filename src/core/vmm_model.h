#ifndef SQP_CORE_VMM_MODEL_H_
#define SQP_CORE_VMM_MODEL_H_

#include <memory>

#include "core/prediction_model.h"
#include "core/pst.h"

namespace sqp {

/// Configuration of one VMM (paper Section IV-B): a D-bounded back-off
/// N-gram learned as a PST, with the context-escape smoothing of Eq. 5-6.
struct VmmOptions {
  /// PST growth threshold (see PstOptions::epsilon).
  double epsilon = 0.05;
  /// Context bound D (0 = unbounded). "2-bounded VMM (0.1)" in the paper is
  /// VmmOptions{.epsilon = 0.1, .max_depth = 2}.
  size_t max_depth = 0;
  /// Minimum weighted support for a candidate context.
  uint64_t min_support = 1;
  /// Escape probability used when the suffix being escaped into was itself
  /// never observed, so Eq. 6 has an empty denominator. Only affects the
  /// generative weight seen by the MVMM mixture, never the within-model
  /// ranking.
  double default_escape = 0.1;
};

/// Result of matching a context against the VMM: the state used for
/// prediction plus the escape mass accumulated while bridging the context
/// disparity (paper Section IV-C.2(b)).
struct VmmMatch {
  const Pst::Node* state = nullptr;  // never null after a successful Train
  size_t matched_length = 0;         // trailing queries matched
  /// Product of escape probabilities over the dropped prefix queries; 1.0
  /// when the entire context matched a state.
  double escape_weight = 1.0;
};

/// Variable Memory Markov model for sequential query prediction.
class VmmModel : public PredictionModel {
 public:
  explicit VmmModel(VmmOptions options = {});

  std::string_view Name() const override { return name_; }
  Status Train(const TrainingData& data) override;
  Recommendation Recommend(std::span<const QueryId> context,
                           size_t top_n) const override;
  bool Covers(std::span<const QueryId> context) const override;
  double ConditionalProb(std::span<const QueryId> context,
                         QueryId next) const override;
  ModelStats Stats() const override;

  /// Matches `context` and reports the state, matched length and escape
  /// weight. Exposed for the MVMM mixture and for tests.
  VmmMatch Match(std::span<const QueryId> context) const;

  /// Generative probability of a full query sequence (Eq. 3), including
  /// escape penalties on context disparities; the first query contributes
  /// probability 1 (paper footnote 3). Used by the MVMM weight learner.
  double SequenceProb(std::span<const QueryId> sequence) const;

  const Pst& pst() const { return pst_; }
  const VmmOptions& options() const { return options_; }
  size_t vocabulary_size() const { return vocabulary_size_; }

 private:
  friend Status SaveVmmModel(const VmmModel&, const std::string&);
  friend Status LoadVmmModel(const std::string&, VmmModel*);

  VmmOptions options_;
  std::string name_;
  Pst pst_;
  size_t vocabulary_size_ = 0;
  bool trained_ = false;
};

}  // namespace sqp

#endif  // SQP_CORE_VMM_MODEL_H_
