#ifndef SQP_CORE_VMM_MODEL_H_
#define SQP_CORE_VMM_MODEL_H_

#include <memory>

#include "core/prediction_model.h"
#include "core/pst.h"

namespace sqp {

/// Configuration of one VMM (paper Section IV-B): a D-bounded back-off
/// N-gram learned as a PST, with the context-escape smoothing of Eq. 5-6.
struct VmmOptions {
  /// PST growth threshold (see PstOptions::epsilon).
  double epsilon = 0.05;
  /// Context bound D (0 = unbounded). "2-bounded VMM (0.1)" in the paper is
  /// VmmOptions{.epsilon = 0.1, .max_depth = 2}.
  size_t max_depth = 0;
  /// Minimum weighted support for a candidate context.
  uint64_t min_support = 1;
  /// Escape probability used when the suffix being escaped into was itself
  /// never observed, so Eq. 6 has an empty denominator. Only affects the
  /// generative weight seen by the MVMM mixture, never the within-model
  /// ranking.
  double default_escape = 0.1;
};

/// Result of matching a context against the VMM: the state used for
/// prediction plus the escape mass accumulated while bridging the context
/// disparity (paper Section IV-C.2(b)).
struct VmmMatch {
  const Pst::Node* state = nullptr;  // never null after a successful Train
  size_t matched_length = 0;         // trailing queries matched
  /// Product of escape probabilities over the dropped prefix queries; 1.0
  /// when the entire context matched a state.
  double escape_weight = 1.0;
};

namespace internal {

/// Escape mass of Eq. 5-6 for a state reached after dropping `dropped` > 0
/// prefix queries: one default-escape factor per intermediate drop, then
/// the matched state's start_count/total_count ratio (or the default when
/// the state has no observed session starts / is the root). Shared by
/// VmmModel::Match and the MVMM shared-tree path so the two cannot drift.
double EscapeMass(const Pst::Node& state, size_t dropped,
                  double default_escape);

}  // namespace internal

/// Variable Memory Markov model for sequential query prediction.
///
/// A VMM either owns its tree (standalone Train) or serves as one *view* of
/// a shared multi-view tree built by Pst::BuildShared — the MVMM training
/// path, where 11 components share a single node pool and differ only in
/// per-node membership bits.
class VmmModel : public PredictionModel {
 public:
  explicit VmmModel(VmmOptions options = {});

  std::string_view Name() const override { return name_; }
  Status Train(const TrainingData& data) override;

  /// Adopts view `view` of a shared tree built by Pst::BuildShared with
  /// this model's options at position `view`. The tree is shared (and kept
  /// alive) by all sibling components.
  Status TrainFromSharedPst(std::shared_ptr<const Pst> shared, size_t view,
                            size_t vocabulary_size);

  Recommendation Recommend(std::span<const QueryId> context,
                           size_t top_n) const override;
  bool Covers(std::span<const QueryId> context) const override;
  double ConditionalProb(std::span<const QueryId> context,
                         QueryId next) const override;
  ModelStats Stats() const override;

  /// Matches `context` and reports the state, matched length and escape
  /// weight. Exposed for the MVMM mixture and for tests.
  VmmMatch Match(std::span<const QueryId> context) const;

  /// Generative probability of a full query sequence (Eq. 3), including
  /// escape penalties on context disparities; the first query contributes
  /// probability 1 (paper footnote 3). Used by the MVMM weight learner.
  double SequenceProb(std::span<const QueryId> sequence) const;

  /// The active tree: the owned standalone tree, or the shared tree when
  /// this model is a view (callers seeing the shared tree must respect the
  /// view masks; prefer Match/Recommend, which already do).
  const Pst& pst() const { return shared_pst_ ? *shared_pst_ : pst_; }
  bool is_shared_view() const { return shared_pst_ != nullptr; }
  size_t view_index() const { return view_; }
  const VmmOptions& options() const { return options_; }
  size_t vocabulary_size() const { return vocabulary_size_; }

 private:
  friend Status SaveVmmModel(const VmmModel&, const std::string&);
  friend Status LoadVmmModel(const std::string&, VmmModel*);

  VmmOptions options_;
  std::string name_;
  Pst pst_;                                // owned (standalone) tree
  std::shared_ptr<const Pst> shared_pst_;  // shared multi-view tree
  size_t view_ = 0;
  size_t vocabulary_size_ = 0;
  bool trained_ = false;
};

}  // namespace sqp

#endif  // SQP_CORE_VMM_MODEL_H_
