#ifndef SQP_CORE_BLOB_FORMAT_H_
#define SQP_CORE_BLOB_FORMAT_H_

/// The compact snapshot blob format, as a runtime-free layer (same
/// discipline as core/serving_walk.h: no allocation, no exceptions, no
/// iostreams, no statics with dynamic initializers). This header is the
/// single definition of the on-disk layout — header, section table, META
/// fields, structural invariants — shared by three consumers:
///
///   - core/snapshot_io (engine save/load/map) builds its byte spans off
///     ParseBlobLayout and wraps every BlobError in a typed Status;
///   - the slim embedded predictor (src/slim/) parses a caller-provided
///     buffer with exactly the same checks and maps BlobError onto its
///     pinned sqp_status_t codes;
///   - tests/ and the golden-blob suite, which pin the layout bytes.
///
/// Layout (all little-endian on disk):
///
///   [0,64)    header: magic, format version u32, section count u32,
///             file size u64, section-table crc u32, ..., header crc u32
///   [64,...)  section table: (id u32, crc u32, offset u64, size u64) rows
///   ...       64-byte-aligned sections, located by id
///
/// Error taxonomy: every way a blob can be malformed yields one BlobError
/// enumerator. The engine maps all of them onto kInvalidArgument (a
/// corrupt blob is a caller-input problem, not data loss — the file on
/// disk is what it is); slim maps them onto SQP_STATUS_INVALID_ARGUMENT.
/// Both consumers therefore agree on the observable error class for any
/// given corruption, which tests/slim/ asserts byte-for-byte.

#include <cstddef>
#include <cstdint>

#include "core/serving_walk.h"

namespace sqp::serving {

// ------------------------------------------------------------- constants

inline constexpr size_t kBlobHeaderSize = 64;
/// Section row: id u32, crc u32, offset u64, size u64.
inline constexpr size_t kBlobSectionRowSize = 24;
inline constexpr size_t kBlobSectionAlignment = 64;
inline constexpr size_t kBlobMetaSize = 64;
inline constexpr uint32_t kBlobMaxSections = 64;

/// On-disk format version this build writes and accepts.
inline constexpr uint32_t kBlobFormatVersion = 1;

/// The 8-byte magic at offset 0 of every snapshot blob.
inline constexpr char kBlobMagic[8] = {'S', 'Q', 'P', 'S', 'N', 'A', 'P', '1'};

/// Section ids. The writer emits every id below in this order; readers
/// locate sections by id, so future versions may append new ids without
/// renumbering (a format-version bump is needed only for incompatible
/// changes to existing sections).
enum BlobSectionId : uint32_t {
  kSecMeta = 1,
  kSecSigmas = 2,
  kSecComponentEscape = 3,
  kSecNextBegin = 4,
  kSecChildBegin = 5,
  kSecTotalCount = 6,
  kSecStartCount = 7,
  kSecCountShift = 8,
  kSecMask16 = 9,
  kSecMask64 = 10,
  kSecNextQuery = 11,
  kSecNextCode = 12,
  kSecEdgeQuery = 13,
  kSecEdgeChild = 14,
  kSecRootIndex = 15,
};
inline constexpr uint32_t kBlobNumKnownSections = 15;

/// META section flags.
inline constexpr uint32_t kBlobFlagNarrowIds = 1u << 0;
inline constexpr uint32_t kBlobFlagNarrowMasks = 1u << 1;

// ---------------------------------------------------------------- errors

/// Every distinct way a blob can fail to parse or validate. kNone == 0 is
/// success; everything else is a malformed-input class both consumers map
/// onto their InvalidArgument spelling.
enum class BlobError : int {
  kNone = 0,
  kTruncatedHeader,
  kBadMagic,
  kHeaderCrc,
  kVersionMismatch,  // format_version in BlobLayout says what was read
  kFileSizeMismatch,
  kSectionCount,
  kSectionTablePastEnd,
  kSectionTableCrc,
  kDuplicateSection,
  kMisalignedSection,
  kSectionPastEnd,
  kMissingSection,
  kSectionCrc,
  kMetaSize,
  kUnknownWeighting,
  kNodeCount,
  kEntryCount,
  kComponentCount,
  kNarrowMaskComponents,
  kNarrowIdNodes,
  kSectionSizeMismatch,
  kCountShiftRange,
  kCsrStart,
  kCsrTerminal,
  kCsrNotMonotone,
  kEdgeOrder,
  kEdgeChildRange,
  kRootIndexRange,
};

/// Static description of `error` (never null; stable storage).
const char* BlobErrorMessage(BlobError error);

// --------------------------------------------------------------- parsing

struct BlobSectionRef {
  uint64_t offset = 0;
  uint64_t size = 0;
};

/// The validated layout of one blob: decoded META fields plus the byte
/// extent of every known section (indexed by BlobSectionId; all present
/// and size-checked against the META element counts once ParseBlobLayout
/// returns kNone). Offsets are relative to the blob base and 64-byte
/// aligned, so reinterpreting a section as its fixed-width element type
/// is naturally aligned.
struct BlobLayout {
  uint32_t format_version = 0;
  uint64_t snapshot_version = 0;
  MixtureWeighting weighting = MixtureWeighting::kGaussianEditDistance;
  bool narrow_ids = false;
  bool narrow_masks = false;
  uint64_t top_k = 0;
  uint64_t num_nodes = 0;
  uint64_t num_entries = 0;
  uint64_t num_edges = 0;
  uint64_t root_index_size = 0;
  uint32_t num_components = 0;
  BlobSectionRef sections[kBlobNumKnownSections + 1];
};

/// Parses and validates header, section table, META and section sizes of
/// a blob entirely in place. Every length and offset is checked against
/// `size` before any section byte is touched: corrupt or truncated input
/// yields a BlobError, never a read past the buffer. Does NOT check the
/// structural invariants of the CSR arrays — run ValidateBlobStructure
/// (over host-order arrays) before serving.
BlobError ParseBlobLayout(const uint8_t* blob, size_t size,
                          bool verify_checksums, BlobLayout* out);

// --------------------------------------------- structural validation

/// Structural invariants the serving walk relies on, checked over decoded
/// (host-order) arrays so a validated blob can never push the walk out of
/// bounds: CSR offsets nondecreasing with the META totals as final
/// values, child/root ids inside the node table, per-node edge queries
/// strictly ascending (the walk binary-searches them).
template <typename QT, typename NT>
BlobError ValidateBlobStructure(const uint32_t* next_begin,
                                const uint32_t* child_begin,
                                const QT* edge_query, const NT* edge_child,
                                const NT* root_index,
                                uint64_t root_index_size, uint64_t num_nodes,
                                uint64_t num_entries, uint64_t num_edges) {
  if (next_begin[0] != 0 || child_begin[0] != 0) return BlobError::kCsrStart;
  if (next_begin[num_nodes] != num_entries ||
      child_begin[num_nodes] != num_edges) {
    return BlobError::kCsrTerminal;
  }
  // Offsets first, edges second: full monotonicity (plus the terminal
  // values above) bounds every CSR slice, so the edge walk below cannot
  // index past the pools even on input where only a later offset is bad.
  for (uint64_t i = 0; i < num_nodes; ++i) {
    if (next_begin[i] > next_begin[i + 1] ||
        child_begin[i] > child_begin[i + 1]) {
      return BlobError::kCsrNotMonotone;
    }
  }
  for (uint64_t i = 0; i < num_nodes; ++i) {
    for (uint32_t e = child_begin[i]; e < child_begin[i + 1]; ++e) {
      if (e + 1 < child_begin[i + 1] && edge_query[e] >= edge_query[e + 1]) {
        return BlobError::kEdgeOrder;
      }
      const uint64_t child = edge_child[e];
      if (child == 0 || child >= num_nodes) {
        return BlobError::kEdgeChildRange;
      }
    }
  }
  for (uint64_t i = 0; i < root_index_size; ++i) {
    if (static_cast<uint64_t>(root_index[i]) >= num_nodes) {
      return BlobError::kRootIndexRange;
    }
  }
  return BlobError::kNone;
}

/// Dequantization shifts must stay below the count width.
inline BlobError ValidateBlobCountShifts(const uint8_t* count_shift,
                                         uint64_t num_nodes) {
  for (uint64_t i = 0; i < num_nodes; ++i) {
    if (count_shift[i] >= 64) return BlobError::kCountShiftRange;
  }
  return BlobError::kNone;
}

}  // namespace sqp::serving

#endif  // SQP_CORE_BLOB_FORMAT_H_
