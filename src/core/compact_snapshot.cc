#include "core/compact_snapshot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "core/memory_accounting.h"
#include "util/math_util.h"

namespace sqp {

namespace internal {
std::atomic<bool>& ForceSparseMergeForTest() {
  static std::atomic<bool> force{false};
  return force;
}
}  // namespace internal

namespace {

/// Saturating narrowing for the per-node count headers. Counts beyond
/// 2^32 would need corpora far past the paper's scale; the clamp keeps the
/// layout sound rather than wrapping, at documented precision loss.
uint32_t SaturateU32(uint64_t value) {
  return value > std::numeric_limits<uint32_t>::max()
             ? std::numeric_limits<uint32_t>::max()
             : static_cast<uint32_t>(value);
}

/// Block shift of a node: smallest s with (max_count >> s) <= 65535.
uint8_t BlockShift(uint64_t max_count) {
  uint8_t shift = 0;
  while ((max_count >> shift) > 0xffff) ++shift;
  return shift;
}

/// The kept-entry indices of every node under the truncation policy:
///
///  (a) per-node top-K — `nexts` is sorted by descending count (ties by
///      ascending query), so the base slice is the node's own ranking
///      prefix;
///  (b) aggregate closure — the full model's *served* top-K list at the
///      node's exact context is pinned at every path level that carries
///      the query, so serving any context whose suffix matches the node
///      exactly reproduces the full top-K list verbatim (every pinned
///      candidate keeps all its per-level contributions, i.e. its exact
///      full-precision score);
///  (c) ancestor closure — a query kept in a node is also kept in every
///      ancestor (its counts nest, so it always appears there), so any
///      candidate kept at the deepest path level that lists it carries its
///      exact full-precision score. (A query can still be truncated from a
///      node *deeper* than the ones keeping it — contexts whose walk ends
///      there serve it with the deep contribution understated; (b) exists
///      to make that rare, and BENCH_memory.json tracks the residual
///      disagreement rate.)
///
/// The root keeps nothing: serving never reads the root's nexts (ranking
/// levels are non-root path nodes), so packing them would be dead weight.
///
/// Cost: when any node truncates, pass (b) runs one full Recommend per
/// tree node — O(n * top_k * depth) on top of the model build. That is
/// the price of the preservation property; both passes are skipped
/// entirely when no node exceeds top_k.
std::vector<std::vector<uint32_t>> KeptEntries(const ModelSnapshot& full,
                                               size_t top_k) {
  const std::vector<Pst::Node>& nodes = full.pst()->nodes();
  const size_t n = nodes.size();
  std::vector<std::vector<uint8_t>> flag(n);
  bool any_truncated = false;
  for (size_t id = 1; id < n; ++id) {
    flag[id].assign(nodes[id].nexts.size(), 0);
    const size_t base = std::min(top_k, nodes[id].nexts.size());
    std::fill(flag[id].begin(), flag[id].begin() + base, 1);
    any_truncated |= base < nodes[id].nexts.size();
  }

  // Lazily-built (query -> entry index) maps, shared by passes (b)/(c).
  std::vector<std::unordered_map<QueryId, uint32_t>> index_of(n);
  const auto entry_index = [&](size_t node, QueryId query) -> int64_t {
    std::unordered_map<QueryId, uint32_t>& map = index_of[node];
    if (map.empty() && !nodes[node].nexts.empty()) {
      map.reserve(nodes[node].nexts.size());
      for (uint32_t i = 0; i < nodes[node].nexts.size(); ++i) {
        map.emplace(nodes[node].nexts[i].query, i);
      }
    }
    const auto it = map.find(query);
    return it == map.end() ? -1 : static_cast<int64_t>(it->second);
  };

  // (b) aggregate closure; (c) ancestor closure, as a reverse sweep that
  // sees every descendant before its ancestor (node ids are
  // parent-before-child). Both are no-ops when nothing was truncated.
  if (any_truncated) {
    SnapshotScratch scratch;
    for (size_t id = 1; id < n; ++id) {
      const Recommendation rec =
          full.Recommend(nodes[id].context, top_k, &scratch);
      for (const ScoredQuery& sq : rec.queries) {
        for (int32_t a = static_cast<int32_t>(id); a > 0;
             a = nodes[static_cast<size_t>(a)].parent) {
          const int64_t i = entry_index(static_cast<size_t>(a), sq.query);
          if (i >= 0) {
            flag[static_cast<size_t>(a)][static_cast<size_t>(i)] = 1;
          }
        }
      }
    }
    for (size_t id = n; id-- > 1;) {
      const int32_t parent = nodes[id].parent;
      if (parent <= 0) continue;
      for (uint32_t i = 0; i < flag[id].size(); ++i) {
        if (!flag[id][i]) continue;
        const int64_t j = entry_index(static_cast<size_t>(parent),
                                      nodes[id].nexts[i].query);
        if (j >= 0) {
          flag[static_cast<size_t>(parent)][static_cast<size_t>(j)] = 1;
        }
      }
    }
  }

  std::vector<std::vector<uint32_t>> kept(n);
  for (size_t id = 1; id < n; ++id) {
    for (uint32_t i = 0; i < flag[id].size(); ++i) {
      if (flag[id][i]) kept[id].push_back(i);
    }
  }
  return kept;
}

}  // namespace

void CompactSnapshot::BindViews() {
  next_begin_ = own_next_begin_;
  child_begin_ = own_child_begin_;
  total_count_ = own_total_count_;
  start_count_ = own_start_count_;
  count_shift_ = own_count_shift_;
  mask16_ = own_mask16_;
  mask64_ = own_mask64_;
  next_code_ = own_next_code_;
  narrow_view_ = NarrowPoolsView{narrow_.next_query, narrow_.edge_query,
                                 narrow_.edge_child,
                                 narrow_.root_child_by_query};
  wide_view_ = WidePoolsView{wide_.next_query, wide_.edge_query,
                             wide_.edge_child, wide_.root_child_by_query};
  FinalizeDerived();
}

std::shared_ptr<const CompactSnapshot> CompactSnapshot::FromSnapshot(
    const ModelSnapshot& full, const CompactOptions& options) {
  std::shared_ptr<CompactSnapshot> out(new CompactSnapshot());
  out->options_ = options;
  out->version_ = full.version();
  out->weighting_ = full.options().weighting;
  out->sigmas_ = full.sigmas();
  out->component_escape_.reserve(full.options().components.size());
  for (const VmmOptions& component : full.options().components) {
    out->component_escape_.push_back(component.default_escape);
  }

  const Pst& pst = *full.pst();
  const std::vector<Pst::Node>& nodes = pst.nodes();
  const size_t n = nodes.size();
  const bool narrow_masks = out->component_escape_.size() <= 16;

  // Adaptive id width: 16-bit pools whenever every query id and node id
  // fits (node 0, the root, is never a child, so it doubles as the root
  // index's absent sentinel).
  QueryId max_query = 0;
  for (const Pst::Node& node : nodes) {
    for (const NextQueryCount& nc : node.nexts) {
      max_query = std::max(max_query, nc.query);
    }
    if (!node.context.empty()) {
      max_query = std::max(max_query, node.context.front());
    }
  }
  out->is_narrow_ =
      n <= std::numeric_limits<uint16_t>::max() &&
      max_query < std::numeric_limits<uint16_t>::max();

  out->own_next_begin_.reserve(n + 1);
  out->own_child_begin_.reserve(n + 1);
  out->own_total_count_.reserve(n);
  out->own_start_count_.reserve(n);
  out->own_count_shift_.reserve(n);
  if (narrow_masks) {
    out->own_mask16_.reserve(n);
  } else {
    out->own_mask64_.reserve(n);
  }

  const std::vector<std::vector<uint32_t>> kept =
      KeptEntries(full, options.top_k == 0
                            ? std::numeric_limits<size_t>::max()
                            : options.top_k);

  const auto push_entry = [&](QueryId query, uint16_t code) {
    if (out->is_narrow_) {
      out->narrow_.next_query.push_back(static_cast<uint16_t>(query));
    } else {
      out->wide_.next_query.push_back(query);
    }
    out->own_next_code_.push_back(code);
  };
  const auto push_edge = [&](QueryId query, int32_t child) {
    if (out->is_narrow_) {
      out->narrow_.edge_query.push_back(static_cast<uint16_t>(query));
      out->narrow_.edge_child.push_back(static_cast<uint16_t>(child));
    } else {
      out->wide_.edge_query.push_back(query);
      out->wide_.edge_child.push_back(static_cast<uint32_t>(child));
    }
  };

  for (size_t id = 0; id < n; ++id) {
    const Pst::Node& node = nodes[id];
    out->own_next_begin_.push_back(
        static_cast<uint32_t>(out->own_next_code_.size()));
    out->own_child_begin_.push_back(static_cast<uint32_t>(
        out->is_narrow_ ? out->narrow_.edge_query.size()
                        : out->wide_.edge_query.size()));
    out->own_total_count_.push_back(SaturateU32(node.total_count));
    out->own_start_count_.push_back(SaturateU32(node.start_count));
    const Pst::ViewMask mask = pst.mask_of(static_cast<int32_t>(id));
    if (narrow_masks) {
      out->own_mask16_.push_back(static_cast<uint16_t>(mask));
    } else {
      out->own_mask64_.push_back(mask);
    }

    // Ancestor-closed top-K truncation (see KeptEntries) over the
    // descending-sorted count list. Block-scaled quantization: whenever the
    // node's largest count fits 16 bits the shift is 0 and every code IS
    // the exact count — dequantized serving arithmetic is then
    // bit-identical to the full tree. Shifted nodes keep the ranking
    // (>> is monotone) and clamp sub-resolution counts to one code step so
    // observed continuations never quantize to probability zero.
    const uint64_t max_count = node.nexts.empty() ? 0 : node.nexts[0].count;
    const uint8_t shift = BlockShift(max_count);
    out->own_count_shift_.push_back(shift);
    for (uint32_t i : kept[id]) {
      const uint64_t code = node.nexts[i].count >> shift;
      push_entry(node.nexts[i].query,
                 static_cast<uint16_t>(code == 0 ? 1 : code));
    }

    for (const Pst::Edge& edge : node.children) {
      push_edge(edge.query, edge.child);
    }
  }
  out->own_next_begin_.push_back(
      static_cast<uint32_t>(out->own_next_code_.size()));
  out->own_child_begin_.push_back(static_cast<uint32_t>(
      out->is_narrow_ ? out->narrow_.edge_query.size()
                      : out->wide_.edge_query.size()));

  // Dense root fan-out, as in the full tree (absent = node 0).
  const auto build_root_index = [&](auto& pools) {
    const uint32_t root_edges = out->own_child_begin_[1];
    if (root_edges == 0) return;
    const QueryId max_root_query = pools.edge_query[root_edges - 1];
    pools.root_child_by_query.assign(static_cast<size_t>(max_root_query) + 1,
                                     0);
    for (uint32_t e = 0; e < root_edges; ++e) {
      pools.root_child_by_query[pools.edge_query[e]] = pools.edge_child[e];
    }
  };
  if (out->is_narrow_) {
    build_root_index(out->narrow_);
  } else {
    build_root_index(out->wide_);
  }

  const auto shrink = [](auto& pools) {
    pools.next_query.shrink_to_fit();
    pools.edge_query.shrink_to_fit();
    pools.edge_child.shrink_to_fit();
  };
  shrink(out->narrow_);
  shrink(out->wide_);
  out->own_next_code_.shrink_to_fit();
  out->BindViews();
  return out;
}

template <typename P>
int32_t CompactServingBase::FindChildIn(const P& pools, int32_t node,
                                        QueryId query) const {
  const uint32_t begin = child_begin_[static_cast<size_t>(node)];
  const uint32_t end = child_begin_[static_cast<size_t>(node) + 1];
  const auto* first = pools.edge_query.data() + begin;
  const auto* last = pools.edge_query.data() + end;
  const auto* at = std::lower_bound(first, last, query);
  if (at == last || *at != query) return -1;
  return static_cast<int32_t>(
      pools.edge_child[static_cast<size_t>(begin + (at - first))]);
}

template <typename P>
size_t CompactServingBase::MatchPathIn(const P& pools,
                                       std::span<const QueryId> context,
                                       std::vector<int32_t>* path) const {
  path->clear();
  if (context.empty()) return 0;
  // Depth 1 is the root's dense fan-out index: one array load instead of a
  // binary search over the (large) root edge run.
  int32_t cur = RootChildIn(pools, context.back());
  if (cur < 0) return 0;
  path->push_back(cur);
  for (size_t back = 1; back < context.size(); ++back) {
    const size_t id = static_cast<size_t>(cur);
    // Warm the matched node's edge run (the next lookup binary-searches
    // it) and its nexts slice (the scoring pass streams it).
    kernels::PrefetchRead(pools.edge_query.data() + child_begin_[id]);
    kernels::PrefetchRead(pools.next_query.data() + next_begin_[id]);
    kernels::PrefetchRead(next_code_.data() + next_begin_[id]);
    const int32_t child =
        FindChildIn(pools, cur, context[context.size() - 1 - back]);
    if (child < 0) break;
    cur = child;
    path->push_back(cur);
  }
  return path->size();
}

size_t CompactServingBase::MatchedDepth(
    std::span<const QueryId> context) const {
  std::vector<int32_t> path;
  return is_narrow_ ? MatchPathIn(narrow_view_, context, &path)
                    : MatchPathIn(wide_view_, context, &path);
}

double CompactServingBase::EscapePow(size_t component, size_t power) const {
  const double* row = escape_pow_.data() + component * (kEscapePowCap + 1);
  if (power <= kEscapePowCap) return row[power];
  // Contexts deeper than the table cap are vanishingly rare; extend the
  // chain from the table's last entry so the rounding sequence matches the
  // pre-table loop exactly.
  double escape = row[kEscapePowCap];
  const double base = component_escape_[component];
  for (size_t j = kEscapePowCap; j < power; ++j) escape *= base;
  return escape;
}

double CompactServingBase::EscapeWeight(int32_t node, size_t dropped,
                                        size_t component) const {
  if (dropped == 0) return 1.0;
  double escape = EscapePow(component, dropped - 1);
  const size_t id = static_cast<size_t>(node);
  // The same branch EscapeMass takes on exact counts: a real (non-root)
  // state with observed session starts contributes start/total, anything
  // else the component default.
  if (node != 0 && total_count_[id] > 0 && start_count_[id] > 0) {
    escape *= static_cast<double>(start_count_[id]) /
              static_cast<double>(total_count_[id]);
  } else {
    escape *= component_escape_[component];
  }
  return escape;
}

void CompactServingBase::FinalizeDerived() {
  // Escape power tables: the same left-to-right multiply chain as the old
  // per-request loop (1.0 * e * e * ...), so every looked-up power is
  // bit-identical to what the loop produced.
  const size_t k = component_escape_.size();
  escape_pow_.assign(k * (kEscapePowCap + 1), 1.0);
  for (size_t c = 0; c < k; ++c) {
    double* row = escape_pow_.data() + c * (kEscapePowCap + 1);
    for (size_t j = 1; j <= kEscapePowCap; ++j) {
      row[j] = row[j - 1] * component_escape_[c];
    }
  }

  // Dense-accumulator bound: one past the largest query id in the nexts
  // pool. Blob query ids are not range-validated, so a hand-built wide
  // blob could claim an arbitrarily sparse id space; past the limit the
  // walk keeps the legacy sort-merge instead of sizing an O(id space)
  // per-thread array.
  uint64_t bound = 0;
  const auto scan = [&bound](const auto& next_query) {
    for (const auto q : next_query) {
      bound = std::max(bound, static_cast<uint64_t>(q) + 1);
    }
  };
  if (is_narrow_) {
    scan(narrow_view_.next_query);
  } else {
    scan(wide_view_.next_query);
  }
  scored_query_bound_ = bound;
  dense_merge_ = bound <= kDenseQueryBoundLimit;

  // The derivations below run before the load path's structural
  // validation has vetted a blob, so they must stay in-bounds on
  // malformed CSR offsets (a bad blob merely mis-sizes hints here and is
  // then rejected by ValidateParsed).
  max_next_run_ = 0;
  for (size_t node = 0; node + 1 < next_begin_.size(); ++node) {
    if (next_begin_[node + 1] > next_begin_[node]) {
      max_next_run_ =
          std::max(max_next_run_, next_begin_[node + 1] - next_begin_[node]);
    }
  }

  // Tree depth for path-vector pre-sizing: ids are parent-before-child in
  // every well-formed layout, so one forward sweep settles all depths.
  size_t max_depth = 0;
  if (!total_count_.empty()) {
    std::vector<uint32_t> depth_of(total_count_.size(), 0);
    const auto sweep = [&](const auto& edge_child) {
      const size_t num_edges = edge_child.size();
      for (size_t node = 0; node + 1 < child_begin_.size(); ++node) {
        const size_t end =
            std::min<size_t>(child_begin_[node + 1], num_edges);
        for (size_t e = child_begin_[node]; e < end; ++e) {
          const size_t child = static_cast<size_t>(edge_child[e]);
          if (child > node && child < depth_of.size()) {
            depth_of[child] = depth_of[node] + 1;
            max_depth = std::max<size_t>(max_depth, depth_of[child]);
          }
        }
      }
    };
    if (is_narrow_) {
      sweep(narrow_view_.edge_child);
    } else {
      sweep(wide_view_.edge_child);
    }
  }
  scratch_hint_.path_depth = max_depth;
  scratch_hint_.num_components = k;
  scratch_hint_.raw_entries =
      std::min<size_t>(next_code_.size(), size_t{4096});
  scratch_hint_.dense_queries =
      dense_merge_ ? static_cast<size_t>(scored_query_bound_) : 0;
}

ScratchSizing CompactServingBase::ScratchHint() const { return scratch_hint_; }

template <typename P>
Recommendation CompactServingBase::RecommendIn(
    const P& pools, std::span<const QueryId> context, size_t top_n,
    SnapshotScratch* scratch) const {
  Recommendation rec;
  if (context.empty()) return rec;

  std::vector<int32_t>& path = scratch->path;
  std::vector<size_t>& matched = scratch->matched;
  std::vector<double>& level_weight = scratch->level_weight;
  std::vector<ScoredQuery>& raw = scratch->raw;

  const size_t depth = MatchPathIn(pools, context, &path);
  if (depth == 0) return rec;

  // Per-component matched depths off the membership masks: view membership
  // is ancestor-closed, so each component's bit covers a prefix of the path
  // (exactly ModelSnapshot::SharedMatchDepths).
  const size_t k = sigmas_.size();
  matched.assign(k, 0);
  for (size_t c = 0; c < k; ++c) {
    const Pst::ViewMask bit = Pst::ViewMask{1} << c;
    size_t m = depth;
    while (m > 0 && (mask_of(static_cast<size_t>(path[m - 1])) & bit) == 0) {
      --m;
    }
    matched[c] = m;
  }

  std::vector<double>& weights = scratch->weights;
  internal::ComputeRawWeights(weighting_, sigmas_, context.size(), matched,
                              &weights);
  NormalizeInPlace(&weights);

  // Escape-weighted per-level accumulation, then one pass over the CSR
  // nexts slices — operation-for-operation the full snapshot's ranking
  // loop, with `(code << shift)` standing in for the exact count.
  raw.clear();
  level_weight.assign(depth, 0.0);
  for (size_t c = 0; c < k; ++c) {
    if (weights[c] <= 0.0 || matched[c] == 0) continue;
    const int32_t state = path[matched[c] - 1];
    double lw = weights[c] *
                EscapeWeight(state, context.size() - matched[c], c);
    const double esc = component_escape_[c];
    for (size_t d = matched[c]; d >= 1; --d) {
      level_weight[d - 1] += lw;
      lw *= esc;
    }
  }

  const bool dense =
      dense_merge_ &&
      !internal::ForceSparseMergeForTest().load(std::memory_order_relaxed);
  if (dense) {
    // Dense level-major accumulation: each level's nexts run streams
    // through the dispatched scoring kernel into the epoch-stamped
    // per-query array — no per-entry push_back and no sort-merge. Summing
    // per query in level order is exactly the order the (stable)
    // sort-merge sums in, and ldexp folds the dequantization shift into
    // the scale exactly (power-of-two scaling), so scores and top-N lists
    // are bit-identical to the sparse path.
    kernels::DenseAccumulator& acc = scratch->acc;
    acc.BeginGeneration(static_cast<size_t>(scored_query_bound_));
    const kernels::KernelTable& kt = kernels::ActiveKernels();
    for (size_t d = 0; d < depth; ++d) {
      if (level_weight[d] <= 0.0) continue;
      const size_t node = static_cast<size_t>(path[d]);
      if (total_count_[node] == 0) continue;
      if (d + 1 < depth) {
        // Warm the next level's slice while this one streams.
        const size_t nn = static_cast<size_t>(path[d + 1]);
        kernels::PrefetchRead(pools.next_query.data() + next_begin_[nn]);
        kernels::PrefetchRead(next_code_.data() + next_begin_[nn]);
      }
      const double scale = std::ldexp(
          level_weight[d] / static_cast<double>(total_count_[node]),
          count_shift_[node]);
      const uint32_t begin = next_begin_[node];
      kernels::ScoreRun(kt, pools.next_query.data() + begin,
                        next_code_.data() + begin,
                        next_begin_[node + 1] - begin, scale, &acc);
    }
    if (acc.touched.empty()) return rec;
    raw.reserve(acc.touched.size());
    for (const uint32_t q : acc.touched) {
      raw.push_back(ScoredQuery{static_cast<QueryId>(q), acc.score[q]});
    }
    rec.covered = true;
    rec.matched_length = depth;
    internal::RankTopN(&raw, top_n, &rec);
    return rec;
  }

  // Legacy sparse merge: per-entry push then sort-merge. Kept verbatim as
  // the fallback for pathologically sparse id spaces and as the reference
  // the kernel equivalence suite pins the dense walk against.
  for (size_t d = 0; d < depth; ++d) {
    if (level_weight[d] <= 0.0) continue;
    const size_t node = static_cast<size_t>(path[d]);
    if (total_count_[node] == 0) continue;
    const double scale =
        level_weight[d] / static_cast<double>(total_count_[node]);
    const uint8_t shift = count_shift_[node];
    const uint32_t begin = next_begin_[node];
    const uint32_t end = next_begin_[node + 1];
    for (uint32_t i = begin; i < end; ++i) {
      const uint64_t count = static_cast<uint64_t>(next_code_[i]) << shift;
      raw.push_back(ScoredQuery{static_cast<QueryId>(pools.next_query[i]),
                                scale * static_cast<double>(count)});
    }
  }
  if (raw.empty()) return rec;

  rec.covered = true;
  rec.matched_length = depth;
  internal::MergeAndRank(&raw, top_n, &rec);
  return rec;
}

Recommendation CompactServingBase::Recommend(std::span<const QueryId> context,
                                             size_t top_n,
                                             SnapshotScratch* scratch) const {
  return is_narrow_ ? RecommendIn(narrow_view_, context, top_n, scratch)
                    : RecommendIn(wide_view_, context, top_n, scratch);
}

bool CompactServingBase::Covers(std::span<const QueryId> context) const {
  if (context.empty()) return false;
  return (is_narrow_ ? RootChildIn(narrow_view_, context.back())
                     : RootChildIn(wide_view_, context.back())) >= 0;
}

uint64_t CompactServingBase::ServingBytes() const {
  return next_begin_.size_bytes() + child_begin_.size_bytes() +
         total_count_.size_bytes() + start_count_.size_bytes() +
         count_shift_.size_bytes() + mask16_.size_bytes() +
         mask64_.size_bytes() + next_code_.size_bytes() +
         narrow_view_.flat_bytes() + wide_view_.flat_bytes() +
         FlatBytes(sigmas_) + FlatBytes(component_escape_);
}

ModelStats CompactSnapshot::Stats() const {
  ModelStats stats;
  stats.name = "MVMM (compact)";
  stats.num_states = num_nodes();
  stats.num_entries = num_entries();
  stats.memory_bytes = ServingBytes();
  return stats;
}

}  // namespace sqp
